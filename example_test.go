package glasswing_test

import (
	"fmt"

	"glasswing"
)

// The complete lifecycle: build a simulated cluster, load data, run a job,
// inspect the result. Virtual times are deterministic, so this example's
// output is stable.
func Example() {
	cluster := glasswing.NewCluster(glasswing.ClusterConfig{Nodes: 2, BlockSize: 4 << 10})
	cluster.LoadText("in", []byte("go gophers go\nrun gophers run\n"))
	res, err := cluster.Run(glasswing.WordCountApp(), glasswing.Config{
		Input:       []string{"in"},
		Collector:   glasswing.HashTable,
		UseCombiner: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.App, res.Nodes, res.OutputPairs)
	// Output: WC 2 3
}

// The native runtime executes the same application on the real host.
func ExampleRunNative() {
	blocks := glasswing.SplitText([]byte("a b a\nb a b\n"), 1<<10)
	res, err := glasswing.RunNative(glasswing.WordCountApp(), blocks, glasswing.NativeConfig{
		Collector:   glasswing.HashTable,
		UseCombiner: true,
		Partitions:  1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.App, res.OutputPairs)
	// Output: WC 2
}
