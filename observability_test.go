package glasswing

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"glasswing/internal/apps"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tracedWCRun executes the deterministic 2-node traced WC job every
// observability test shares. The sim clock is virtual, so the span set —
// and therefore the exported trace — is bit-identical across runs.
func tracedWCRun(t *testing.T) *Result {
	t.Helper()
	data, want := apps.WCData(7, 128<<10, 1200)
	cluster := NewCluster(ClusterConfig{Nodes: 2, BlockSize: 16 << 10})
	cluster.LoadText("input", data)
	res, err := cluster.Run(WordCountApp(), Config{
		Input:       []string{"input"},
		Collector:   HashTable,
		UseCombiner: true,
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	return res
}

// The Chrome trace of the deterministic traced run is pinned byte-for-byte.
// Regenerate with `go test -run TestChromeTraceGolden -update .` after an
// intentional exporter or scheduler change.
func TestChromeTraceGolden(t *testing.T) {
	res := tracedWCRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, TraceSpans(res), TraceInstants(res)...); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wc_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from %s (%d vs %d bytes); rerun with -update if intentional",
			golden, buf.Len(), len(want))
	}
}

// The analyzer's per-row busy totals must agree with the sim Trace's own
// accounting, and a pipelined multi-node run must overlap (> 1 stage-second
// retired per wall second).
func TestAnalyzerAgreesWithTrace(t *testing.T) {
	res := tracedWCRun(t)
	rep := AnalyzePipeline(TraceSpans(res))
	if len(rep.Rows) == 0 {
		t.Fatal("no analyzer rows from traced run")
	}
	nodes := map[int]bool{}
	for _, row := range rep.Rows {
		nodes[row.Node] = true
		want := res.Trace.Busy(row.Node, row.Stage)
		if math.Abs(row.Busy-want) > 1e-9 {
			t.Errorf("busy(%d, %s) = %v, Trace.Busy = %v", row.Node, row.Stage, row.Busy, want)
		}
	}
	if len(nodes) != 2 {
		t.Errorf("analyzer saw %d nodes, want 2", len(nodes))
	}
	if rep.OverlapFactor <= 1.0 {
		t.Errorf("overlap factor = %v, want > 1.0 for a pipelined run", rep.OverlapFactor)
	}
	if rep.CriticalPath <= 0 || rep.CriticalPath > rep.Wall+1e-9 {
		t.Errorf("critical path %v outside (0, wall=%v]", rep.CriticalPath, rep.Wall)
	}
}
