// Command nativebench measures the native runtime's pinned benchmark
// scenarios (internal/nativebench) and writes BENCH_native.json — the
// repo's tracked wall-clock trajectory. Run it after any change to the
// native hot path and commit the refreshed file:
//
//	go run ./cmd/nativebench -out BENCH_native.json
//
// Fields per row: ns_per_op (wall time per full job), bytes_per_op /
// allocs_per_op (heap traffic per job), pairs_per_sec (intermediate pairs
// produced per wall second), mb_per_sec (input bytes per wall second).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"glasswing/internal/nativebench"
)

type report struct {
	Generated  string               `json:"generated"`
	GoVersion  string               `json:"go_version"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Scenarios  []nativebench.Result `json:"scenarios"`
}

func main() {
	out := flag.String("out", "BENCH_native.json", "output file ('-' for stdout)")
	only := flag.String("only", "", "run only the scenario with this name")
	flag.Parse()

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	row := func(r nativebench.Result) {
		fmt.Fprintf(os.Stderr, "%-18s %12d ns/op %12d B/op %9d allocs/op %14.0f pairs/s %8.1f MB/s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.PairsPerSec, r.MBPerSec)
		rep.Scenarios = append(rep.Scenarios, r)
	}
	for _, s := range nativebench.Scenarios() {
		if *only != "" && s.Name != *only {
			continue
		}
		row(nativebench.Measure(s))
	}
	for _, s := range nativebench.DistScenarios() {
		if *only != "" && s.Name != *only {
			continue
		}
		row(nativebench.MeasureDist(s))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nativebench:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nativebench:", err)
		os.Exit(1)
	}
}
