// Command conformance runs the cross-runtime conformance matrix and prints
// one row per cell: runtime, application, metamorphic axis, variant, the
// canonical output digest, and the verdict (digest equality with the
// sequential reference, the app verifier, and — for the instrumented
// runtimes — the record/byte conservation ledger).
//
// Usage:
//
//	conformance [-runtime sim,native,dist,service] [-app WC,TS] [-axis chunk,faults] [-q]
//
// Exits non-zero if any cell fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"glasswing/internal/conformance"
)

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	runtimes := flag.String("runtime", "", "comma-separated runtimes (sim,native,hadoop,gpmr,dist,service; empty = all)")
	apps := flag.String("app", "", "comma-separated applications (WC,TS,KM; empty = all)")
	axes := flag.String("axis", "", "comma-separated axes (baseline,chunk,workers,partitions,compress,overlap,collector,faults,elastic,locality; empty = all)")
	quiet := flag.Bool("q", false, "suppress per-cell rows; print only the summary matrix")
	flag.Parse()

	opt := conformance.Options{
		Runtimes: splitList(*runtimes),
		Apps:     splitList(*apps),
		Axes:     splitList(*axes),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*quiet {
		fmt.Fprintln(w, "RUNTIME\tAPP\tAXIS\tVARIANT\tDIGEST\tRESULT")
	}
	cells := conformance.RunMatrix(opt, func(c conformance.Cell) {
		if *quiet {
			return
		}
		verdict := "ok"
		if c.Err != nil {
			verdict = "FAIL: " + strings.ReplaceAll(c.Err.Error(), "\n", "; ")
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.12s\t%s\n", c.Runtime, c.App, c.Axis, c.Variant, c.Digest, verdict)
		w.Flush()
	})
	if !*quiet {
		fmt.Fprintln(w)
	}

	// Summary matrix: per runtime x app, cells passed / run, axes covered.
	type key struct{ runtime, app string }
	type tally struct {
		pass, total int
		axes        map[string]bool
	}
	sums := map[key]*tally{}
	failed := 0
	for _, c := range cells {
		k := key{c.Runtime, c.App}
		t := sums[k]
		if t == nil {
			t = &tally{axes: map[string]bool{}}
			sums[k] = t
		}
		t.total++
		t.axes[c.Axis] = true
		if c.Err == nil {
			t.pass++
		} else {
			failed++
		}
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].runtime != keys[j].runtime {
			return keys[i].runtime < keys[j].runtime
		}
		return keys[i].app < keys[j].app
	})
	fmt.Fprintln(w, "RUNTIME\tAPP\tCELLS\tAXES")
	for _, k := range keys {
		t := sums[k]
		fmt.Fprintf(w, "%s\t%s\t%d/%d\t%d\n", k.runtime, k.app, t.pass, t.total, len(t.axes))
	}
	w.Flush()

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "conformance: %d of %d cells FAILED\n", failed, len(cells))
		os.Exit(1)
	}
	fmt.Printf("conformance: all %d cells passed\n", len(cells))
}
