// Command benchtables regenerates the paper's evaluation tables and
// figures on the simulated cluster and prints them as aligned text tables.
//
// Usage:
//
//	benchtables [-run id[,id...]] [-quick] [-list]
//
// Without -run it executes every experiment in paper order. -quick uses the
// unit-test dataset sizes (fast, coarser numbers); the default sizes are
// the calibrated benchmark scale recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glasswing/internal/expt"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "use quick (unit-test) dataset sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range expt.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Paper)
		}
		return
	}
	sizes := expt.Default()
	if *quick {
		sizes = expt.Quick()
	}
	if *runIDs == "" {
		expt.RunAll(os.Stdout, sizes)
		return
	}
	for _, id := range strings.Split(*runIDs, ",") {
		e := expt.Lookup(strings.TrimSpace(id))
		if e == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		e.Run(sizes).Print(os.Stdout)
	}
}
