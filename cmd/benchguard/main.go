// Command benchguard is the benchmark regression gate: it measures the
// pinned native scenarios fresh (or reads a previously measured report) and
// diffs them against the committed BENCH_native.json baseline, failing when
// allocs_per_op regresses past its budget (default 25%; 10% for the
// batch-allocated wc-hash/wc-pool scenarios), a per-stage busy time past
// its wider one (default 50% — stage wall time is noisy even on serialized
// probes; wider still for the dist rows, whose spans are concurrent wall
// time on a live cluster; see nativebench.GuardOpts), or a dist row's
// shuffle_bytes past
// 10% — wire volume is deterministic, so a fatter encoding or broken frame
// coalescing fails immediately. Raw wall time is reported but never gated —
// shared CI hardware is too noisy for a hard ns/op threshold.
//
// Usage:
//
//	benchguard [-baseline BENCH_native.json] [-fresh report.json] \
//	           [-max-ratio 1.25] [-stage-max-ratio 1.5]
//
// With no -fresh, the scenarios are measured in-process, which takes a few
// minutes at benchmark fidelity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"glasswing/internal/nativebench"
)

type report struct {
	Scenarios []nativebench.Result `json:"scenarios"`
}

func readReport(path string) (report, error) {
	var rep report
	blob, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_native.json", "committed baseline report")
	freshPath := flag.String("fresh", "", "fresh report to diff (empty = measure scenarios now)")
	maxRatio := flag.Float64("max-ratio", 0, "allowed fresh/base allocs_per_op ratio (0 = default 1.25)")
	stageMaxRatio := flag.Float64("stage-max-ratio", 0, "allowed fresh/base stage_ns ratio (0 = default 1.5)")
	flag.Parse()

	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	var fresh []nativebench.Result
	if *freshPath != "" {
		rep, err := readReport(*freshPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		fresh = rep.Scenarios
	} else {
		for _, s := range nativebench.Scenarios() {
			fmt.Fprintf(os.Stderr, "measuring %s...\n", s.Name)
			fresh = append(fresh, nativebench.Measure(s))
		}
		for _, s := range nativebench.DistScenarios() {
			fmt.Fprintf(os.Stderr, "measuring %s...\n", s.Name)
			fresh = append(fresh, nativebench.MeasureDist(s))
		}
	}

	regs := nativebench.CompareResults(base.Scenarios, fresh, nativebench.GuardOpts{
		MaxRatio:      *maxRatio,
		StageMaxRatio: *stageMaxRatio,
		// The batch-kernel scenarios allocate a few large slabs per op
		// instead of hundreds of thousands of per-record cells; at that
		// count one reintroduced per-record allocation site shows up as a
		// multiple, so their budget is much tighter than the default 25%.
		AllocOverride: map[string]float64{
			"wc-hash": 1.10,
			"wc-pool": 1.10,
		},
		// The dist rows run a real loopback cluster: their stage spans are
		// concurrent wall time across worker goroutines and TCP pumps, not
		// the serialized min-of-5 probes the default 1.5x budget was tuned
		// for, and swing ~2x run to run on shared hosts. The out-of-core
		// row adds spill-file disk I/O on top. The wider budgets still trip
		// on the regressions worth blocking — lost pipeline overlap or
		// accidentally quadratic work land as large multiples — while the
		// tight shuffle_bytes / spill_bytes / locality gates above keep the
		// deterministic dist metrics on a short leash.
		StageOverride: map[string]float64{
			"dist-wc-3w":  2.0,
			"dist-ts-3w":  2.0,
			"dist-wc-ooc": 2.5,
		},
	})
	if len(regs) == 0 {
		fmt.Printf("benchguard: %d scenarios within budget vs %s\n", len(base.Scenarios), *baseline)
		return
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "benchguard: REGRESSION:", r)
	}
	os.Exit(1)
}
