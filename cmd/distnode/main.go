// Command distnode runs one node of a real distributed glasswing cluster:
// a coordinator that serves a job to TCP workers, or a worker that joins
// one. Each invocation is one OS process; point N workers at a
// coordinator's address and the job runs with its shuffle streamed
// worker-to-worker over real sockets, overlapped with map compute.
//
// Usage:
//
//	distnode -serve ADDR -workers N [-app wc|ts|km] [-size BYTES]
//	         [-partitions P] [-chunk BYTES] [-verify] [-trace-out FILE]
//	         [-metrics-out FILE] [-journal FILE [-resume]] [-elastic SPEC]
//	distnode -join ADDR [-listen ADDR]
//	distnode -jobsvc ADDR [-fleet N]    (resident multi-tenant job service)
//
// The cluster is elastic: extra `distnode -join` processes started mid-job
// are admitted live and given partitions to own, and -elastic schedules
// membership changes (e.g. "drain:0@4" retires worker 0 after 4 map tasks
// resolve, handing its partitions off first). With -journal the
// coordinator checkpoints every state change to an fsynced append-only
// file; if it crashes (or an -elastic "restart@..." event crashes it on
// schedule), re-running with the same -serve address plus -resume replays
// the journal and finishes the job — workers redial in on their own.
//
// A three-node run on one machine:
//
//	distnode -serve 127.0.0.1:9700 -workers 3 -app wc -verify &
//	distnode -join 127.0.0.1:9700 &
//	distnode -join 127.0.0.1:9700 &
//	distnode -join 127.0.0.1:9700
//
// The coordinator generates the input, splits it into blocks, and ships
// each block inside its map-task assignment; workers resolve the kernel
// from the app name and parameter blob, so no filesystem or code is
// shared between processes.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"

	"glasswing/internal/dist"
	"glasswing/internal/jobsvc"
	"glasswing/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distnode: ")
	var (
		serve      = flag.String("serve", "", "coordinator mode: listen address for workers (e.g. 127.0.0.1:9700)")
		join       = flag.String("join", "", "worker mode: coordinator address to join")
		listen     = flag.String("listen", "127.0.0.1:0", "worker mode: shuffle listen address peers dial (use a reachable host:port for multi-host runs)")
		workers    = flag.Int("workers", 3, "coordinator mode: workers to wait for")
		appName    = flag.String("app", "wc", "application: wc, ts, km")
		size       = flag.Int("size", 1<<20, "approximate input size in bytes")
		partitions = flag.Int("partitions", 0, "reduce partitions (0 = default)")
		chunk      = flag.Int("chunk", 0, "map block size in bytes (0 = default)")
		verify     = flag.Bool("verify", false, "verify output against a reference implementation")
		traceOut   = flag.String("trace-out", "", "write the run's Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics snapshot as JSON to this file")
		rejoinGrace = flag.Duration("rejoin-grace", 0, "worker mode: how long to retry re-dialing a crashed coordinator before giving up (0 = exit on coordinator loss)")

		journal    = flag.String("journal", "", "coordinator mode: checkpoint journal path (append-only, fsynced)")
		resume     = flag.Bool("resume", false, "coordinator mode: resume a crashed job from -journal instead of starting fresh")
		elastic    = flag.String("elastic", "", "coordinator mode: membership schedule kind[:worker]@threshold[,...] — drain:W, restart; threshold N fires after N map tasks resolve, rN after N reduce outputs accept")

		input       = flag.String("input", "", "coordinator mode: read the input from this file instead of generating it (-app wc or ts)")
		noCombiner  = flag.Bool("no-combiner", false, "coordinator mode: disable the map-side combiner")
		bstore      = flag.String("blockstore", "", "coordinator mode: ingest input into worker block stores — 'local' (locality-preferred scheduling) or 'remote' (forced-remote baseline); empty ships blocks inside task assignments")
		replication = flag.Int("replication", 0, "coordinator mode: block replicas per block (0 = 3, capped at cluster width)")
		spillThresh = flag.Int64("spill-threshold", 0, "worker mode: spill committed shuffle partitions to disk past this many resident bytes (0 = never)")
		storeDir    = flag.String("store-dir", "", "worker mode: scratch directory for block replicas and spill files (default: OS temp)")

		jobsvcAddr  = flag.String("jobsvc", "", "job-service mode: run the resident multi-tenant coordinator on this HTTP address")
		fleet       = flag.Int("fleet", 8, "job-service mode: worker-slot budget shared by all jobs")
		allowFaults = flag.Bool("jobsvc-faults", false, "job-service mode: allow fault-injection request fields")
	)
	flag.Parse()

	switch {
	case *join != "" && *serve != "":
		log.Fatal("pick one of -serve (coordinator) or -join (worker)")
	case *jobsvcAddr != "":
		svc := jobsvc.New(jobsvc.Config{
			FleetWorkers:        *fleet,
			AllowFaultInjection: *allowFaults,
			Events:              slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		})
		ln, err := net.Listen("tcp", *jobsvcAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("job service listening on http://%s (fleet: %d worker slots)", ln.Addr(), *fleet)
		err = (&http.Server{Handler: svc.Handler()}).Serve(ln)
		log.Fatal(err)
	case *join != "":
		tel := obs.NewTelemetry()
		tun := dist.Tuning{RejoinGrace: *rejoinGrace, SpillThreshold: *spillThresh, WorkDir: *storeDir}
		if err := dist.Join(*join, *listen, tun, tel); err != nil {
			log.Fatal(err)
		}
		fmt.Println("worker done")
		// A worker's slice of the ledger — including its locality and spill
		// counters — lives in its own telemetry; snapshot it on request.
		writeTrace(*traceOut, tel)
		writeMetrics(*metricsOut, tel)
	case *serve != "":
		var (
			job    dist.Job
			blocks [][]byte
			check  func(*dist.Result) error
			err    error
		)
		if *input != "" {
			data, rerr := os.ReadFile(*input)
			if rerr != nil {
				log.Fatal(rerr)
			}
			job, blocks, check, err = dist.FileJob(*appName, data, *partitions, *chunk, !*noCombiner)
		} else {
			job, blocks, check, err = dist.DemoJob(*appName, *size, *partitions, *chunk)
			if *noCombiner {
				job.UseCombiner = false
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		tel := obs.NewTelemetry()
		o := dist.Options{
			Job:         job,
			Workers:     *workers,
			Blocks:      blocks,
			Telemetry:   tel,
			NewApp:      dist.RegistryResolver,
			JournalPath: *journal,
			Resume:      *resume,
			Blockstore:  *bstore,
			Replication: *replication,
		}
		if *resume && *journal == "" {
			log.Fatal("-resume needs -journal")
		}
		if *elastic != "" {
			o.Elastic, err = dist.ParseElastic(*elastic)
			if err != nil {
				log.Fatal(err)
			}
			if dist.HasRestart(o.Elastic) && *journal == "" {
				log.Fatal("-elastic restart events need -journal to resume from")
			}
		}
		res, err := dist.Serve(*serve, o)
		if err != nil {
			if dist.CoordinatorRestarted(err) {
				log.Printf("coordinator crashed on schedule; the job is journaled, not failed")
				log.Fatalf("resume it: distnode -serve %s -workers %d -app %s -size %d -journal %s -resume",
					*serve, *workers, *appName, *size, *journal)
			}
			log.Fatal(err)
		}
		fmt.Printf("%s (dist, %d workers): total %v (map %v, reduce %v), %d blocks in, %d intermediate pairs, %d output pairs\n",
			res.App, res.Workers, res.Total, res.MapElapsed, res.ReduceElapsed,
			len(blocks), res.IntermediatePairs, res.OutputPairs)
		if res.WorkersJoined > 0 || res.WorkersDrained > 0 || res.WorkersLost > 0 || res.Resumed {
			fmt.Printf("elasticity: %d joined, %d drained, %d lost, resumed: %v\n",
				res.WorkersJoined, res.WorkersDrained, res.WorkersLost, res.Resumed)
		}
		fmt.Printf("trace %016x; clock offsets:", res.TraceID)
		for w := 0; w < res.Workers; w++ {
			if off, ok := res.ClockOffsets[w]; ok {
				fmt.Printf(" w%d %+.3fms (rtt %.3fms)", w, off*1e3, res.ClockRTTs[w]*1e3)
			}
		}
		fmt.Println()
		if *verify {
			if err := check(res); err != nil {
				log.Fatalf("output verification FAILED: %v", err)
			}
			fmt.Println("output verified against reference implementation")
		}
		writeTrace(*traceOut, tel)
		writeMetrics(*metricsOut, tel)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeTrace(path string, tel *obs.Telemetry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteChromeTrace(f, tel.Spans.Spans(), tel.Spans.Instants()...); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote Chrome trace to %s\n", path)
}

func writeMetrics(path string, tel *obs.Telemetry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tel.Metrics.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote metrics snapshot to %s\n", path)
}
