// Command datagen writes deterministic benchmark inputs to disk — the
// multi-gigabyte WC and TeraSort datasets the out-of-core and locality
// experiments ingest into the block store. Generation is streamed in fixed
// chunks with per-chunk seeds derived from the base seed, so any size is
// reproducible byte for byte without ever holding the whole file in memory:
//
//	go run ./cmd/datagen -app wc -size 2g -seed 7 -out wc.txt
//	go run ./cmd/datagen -app ts -size 1g -seed 7 -out ts.dat
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"glasswing/internal/workload"
)

// genChunk is the generation granularity: large enough that the Zipf tables
// warm up per chunk, small enough to bound resident memory.
const genChunk = 8 << 20

// parseSize accepts plain bytes or k/m/g suffixes (binary units).
func parseSize(s string) (int64, error) {
	mult := int64(1)
	ls := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(ls, "g"):
		mult, ls = 1<<30, ls[:len(ls)-1]
	case strings.HasSuffix(ls, "m"):
		mult, ls = 1<<20, ls[:len(ls)-1]
	case strings.HasSuffix(ls, "k"):
		mult, ls = 1<<10, ls[:len(ls)-1]
	}
	n, err := strconv.ParseInt(ls, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	out := flag.String("out", "", "output file (required)")
	app := flag.String("app", "wc", "dataset shape: wc (wiki text) or ts (TeraSort records)")
	size := flag.String("size", "64m", "approximate output size (accepts k/m/g suffixes)")
	seed := flag.Int64("seed", 1, "base seed; per-chunk seeds derive from it")
	vocab := flag.Int("vocab", 0, "wc only: distinct-word vocabulary (0 = size/400, the demo ratio)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	total, err := parseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriterSize(f, 1<<20)

	var written int64
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "datagen: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	for chunk := int64(0); written < total; chunk++ {
		want := total - written
		if want > genChunk {
			want = genChunk
		}
		// Each chunk gets its own derived seed, so chunk k of an N-byte file
		// equals chunk k of any larger file with the same base seed.
		cseed := *seed*1_000_003 + chunk
		var data []byte
		switch *app {
		case "wc":
			v := *vocab
			if v <= 0 {
				v = int(total / 400)
			}
			data = workload.WikiText(cseed, int(want), v)
		case "ts":
			// Round up to whole records; the final chunk may overshoot the
			// requested size by at most one record.
			n := (int(want) + workload.TeraRecordSize - 1) / workload.TeraRecordSize
			data = workload.TeraGen(cseed, n)
		default:
			fmt.Fprintf(os.Stderr, "datagen: unknown -app %q (wc, ts)\n", *app)
			os.Exit(2)
		}
		if _, err := w.Write(data); err != nil {
			fail(err)
		}
		written += int64(len(data))
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d bytes of %s to %s (seed %d)\n", written, *app, *out, *seed)
}
