// Command glasswing runs one of the paper's five MapReduce applications on
// a simulated cluster (or, with -native, on the real host) and prints the
// job's timing profile.
//
// Usage:
//
//	glasswing -app wc|pvc|ts|km|mm [-nodes N] [-gpu] [-fs hdfs|local]
//	          [-size BYTES] [-slow FACTOR] [-buffering 1|2|3]
//	          [-partitions P] [-partition-threads N] [-collector hash|pool]
//	          [-fault-seed S -map-fault P -reduce-fault P] [-kill NODE@T,...]
//	          [-speculate FACTOR] [-max-attempts N] [-verify]
//	          [-trace-out FILE] [-metrics-out FILE] [-report]
//	glasswing -dist N -app wc|ts|km ...       (N-worker TCP cluster in one process)
//	glasswing -coordinator ADDR -dist N ...   (serve a job to N remote workers)
//	glasswing -worker ADDR                    (join a remote coordinator)
//	glasswing -serve ADDR [-fleet N]          (resident multi-tenant job service, HTTP API)
//
// Every run processes real generated data; -verify checks the output
// against an independent reference implementation. The fault flags exercise
// the §III-E fault tolerance: seeded random attempt failures, scheduled
// node deaths and speculative execution, all deterministic per seed.
//
// The -dist family runs the genuinely distributed runtime (internal/dist):
// -dist N alone spins up a coordinator plus N workers inside this process,
// connected over real loopback TCP with the shuffle streamed
// worker-to-worker during the map phase. -coordinator/-worker split the
// same cluster across processes or machines (cmd/distnode is the
// standalone equivalent).
//
// The observability flags work on both runtimes: -trace-out writes Chrome
// trace_event JSON (open in chrome://tracing or ui.perfetto.dev),
// -metrics-out writes a metrics snapshot as JSON, and -report prints the
// pipeline stall analysis (per-stage busy/stall/occupancy, overlap factor).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"glasswing"
	"glasswing/internal/apps"
	"glasswing/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("glasswing: ")
	var (
		appName    = flag.String("app", "wc", "application: wc, pvc, ts, km, mm")
		nodes      = flag.Int("nodes", 4, "cluster nodes")
		gpu        = flag.Bool("gpu", false, "run kernels on the GPU (device 1)")
		fsKind     = flag.String("fs", "hdfs", "file system: hdfs or local")
		size       = flag.Int("size", 2<<20, "approximate input size in bytes")
		slow       = flag.Float64("slow", 1, "hardware slowdown factor (simulate larger data)")
		buffering  = flag.Int("buffering", 2, "pipeline buffering level (1-3)")
		parts      = flag.Int("partitions", 8, "intermediate partitions per node (P)")
		pthreads   = flag.Int("partition-threads", 8, "partitioner threads (N)")
		collector  = flag.String("collector", "hash", "map output collector: hash or pool")
		combine    = flag.Bool("combiner", true, "run the combiner (hash collector only)")
		verify     = flag.Bool("verify", false, "verify output against a reference implementation")
		trace      = flag.Bool("trace", false, "print the pipeline activity timeline (Gantt)")
		useNative  = flag.Bool("native", false, "run on the native runtime (real host, wall-clock) instead of the simulated cluster")
		traceOut   = flag.String("trace-out", "", "write the run's Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics snapshot as JSON to this file")
		report     = flag.Bool("report", false, "print the pipeline stall analysis (busy/stall/occupancy per stage)")

		serveAddr   = flag.String("serve", "", "run the resident multi-tenant job service on this HTTP address (e.g. 127.0.0.1:8844)")
		fleetSlots  = flag.Int("fleet", 8, "worker-slot budget shared by all jobs in -serve mode")
		serveFaults = flag.Bool("serve-faults", false, "allow fault-injection request fields in -serve mode (CI and conformance)")

		distWorkers = flag.Int("dist", 0, "run on the distributed runtime with N TCP workers (0 disables)")
		elastic     = flag.String("elastic", "", "membership schedule for -dist runs: kind[:worker]@threshold[,...] — join, drain:W, kill:W, restart; threshold N fires after N map tasks resolve, rN after N reduce outputs accept")
		journalPath = flag.String("journal", "", "coordinator checkpoint journal path for -dist runs (restart events resume from it)")
		coordAddr   = flag.String("coordinator", "", "serve the job as a distributed coordinator at this address (workers join with -worker)")
		workerJoin  = flag.String("worker", "", "join a distributed coordinator at this address as a worker")
		workerAddr  = flag.String("worker-listen", "127.0.0.1:0", "shuffle listen address for -worker (use a reachable host:port across machines)")
		distInput   = flag.String("input", "", "-dist runs: read the input from this file (wc or ts) instead of generating it")
		bstore      = flag.String("blockstore", "", "-dist runs: ingest input into worker block stores — 'local' (locality-preferred) or 'remote' (forced-remote baseline)")
		replication = flag.Int("replication", 0, "-dist runs: block replicas per block (0 = 3, capped at cluster width)")
		spillThresh = flag.Int64("spill-threshold", 0, "-dist runs: workers spill committed shuffle partitions to disk past this many resident bytes (0 = never)")
		storeDir    = flag.String("store-dir", "", "-dist runs: worker scratch directory for block replicas and spill files (default: OS temp)")

		faultSeed   = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		mapFault    = flag.Float64("map-fault", 0, "probability a map attempt fails (0 disables)")
		reduceFault = flag.Float64("reduce-fault", 0, "probability a reduce attempt fails (0 disables)")
		kill        = flag.String("kill", "", "node deaths as NODE@SECONDS[,NODE@SECONDS...], timed from map-phase start")
		speculate   = flag.Float64("speculate", 0, "speculative execution slowdown threshold (0 disables)")
		maxAttempts = flag.Int("max-attempts", 0, "max failed attempts per task before the job fails (0 = default 4)")
	)
	flag.Parse()

	if *serveAddr != "" {
		runServe(*serveAddr, *fleetSlots, *serveFaults)
		return
	}
	if *workerJoin != "" {
		runDistWorker(*workerJoin, *workerAddr)
		return
	}
	if *distWorkers > 0 || *coordAddr != "" {
		runDistJob(distJobConfig{
			app:            *appName,
			size:           *size,
			partitions:     *parts,
			workers:        *distWorkers,
			serveAddr:      *coordAddr,
			elastic:        *elastic,
			journal:        *journalPath,
			verify:         *verify,
			traceOut:       *traceOut,
			metricsOut:     *metricsOut,
			report:         *report,
			input:          *distInput,
			combiner:       *combine,
			blockstore:     *bstore,
			replication:    *replication,
			spillThreshold: *spillThresh,
			storeDir:       *storeDir,
		})
		return
	}

	cc := glasswing.ClusterConfig{
		Nodes:     *nodes,
		GPU:       *gpu,
		SlowDown:  *slow,
		BlockSize: int64(*size / 64),
	}
	if *fsKind == "local" {
		cc.FS = glasswing.LocalFS
	}
	cluster := glasswing.NewCluster(cc)

	cfg := glasswing.Config{
		Buffering:         *buffering,
		PartitionsPerNode: *parts,
		PartitionThreads:  *pthreads,
		Compress:          true,
	}
	cfg.Trace = *trace || *traceOut != "" || *report
	reg := glasswing.NewMetricsRegistry()
	cfg.Metrics = reg
	if *collector == "pool" {
		cfg.Collector = glasswing.BufferPool
	} else {
		cfg.Collector = glasswing.HashTable
		cfg.UseCombiner = *combine
	}
	if *gpu {
		cfg.Device = 1
	}

	haveFaults := *mapFault > 0 || *reduceFault > 0 || *kill != "" || *speculate > 0
	if *mapFault > 0 || *reduceFault > 0 {
		cfg.FaultInjector, cfg.ReduceFaultInjector = glasswing.SeededFaults(*faultSeed, *mapFault, *reduceFault)
	}
	if *kill != "" {
		nf, err := parseKills(*kill)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NodeFailures = nf
	}
	cfg.SpeculativeSlowdown = *speculate
	cfg.MaxTaskAttempts = *maxAttempts
	if *useNative && haveFaults {
		log.Fatal("fault injection flags apply to the simulated cluster only, not -native")
	}

	var (
		app      *glasswing.App
		run      func() (*glasswing.Result, error)
		validate func(*glasswing.Result) error
	)
	switch *appName {
	case "wc":
		data, want := apps.WCData(1, *size, *size/400)
		cluster.LoadText("input", data)
		app = glasswing.WordCountApp()
		cfg.Input = []string{"input"}
		run = func() (*glasswing.Result, error) { return cluster.Run(app, cfg) }
		validate = func(r *glasswing.Result) error { return apps.VerifyCounts(r.Output(), want) }
	case "pvc":
		data, want := apps.PVCData(2, *size)
		cluster.LoadText("input", data)
		app = glasswing.PageviewCountApp()
		cfg.Input = []string{"input"}
		run = func() (*glasswing.Result, error) { return cluster.Run(app, cfg) }
		validate = func(r *glasswing.Result) error { return apps.VerifyCounts(r.Output(), want) }
	case "ts":
		data := apps.TSData(3, *size/workload.TeraRecordSize)
		cluster.LoadRecords("input", data, workload.TeraRecordSize)
		app = glasswing.TeraSortApp()
		cfg.Input = []string{"input"}
		cfg.Collector = glasswing.BufferPool
		cfg.UseCombiner = false
		cfg.Partitioner = glasswing.TeraSortPartitioner(data, 64)
		cfg.OutputReplication = 1
		run = func() (*glasswing.Result, error) { return cluster.Run(app, cfg) }
		validate = func(r *glasswing.Result) error { return apps.VerifyTeraSort(r.Output(), data) }
	case "km":
		points := *size / 16
		data, spec := apps.KMData(4, points, 4, 64)
		cluster.LoadRecords("input", data, int64(spec.Dim*4))
		app = glasswing.KMeansApp(spec)
		cfg.Input = []string{"input"}
		run = func() (*glasswing.Result, error) {
			return cluster.RunWithBroadcast(app, cfg, spec.CentersBytes())
		}
		validate = func(r *glasswing.Result) error { return apps.VerifyKMeans(r.Output(), data, spec) }
	case "mm":
		spec := glasswing.MatMulSpec{N: 256, Tile: 32}
		input, a, b, err := apps.MMData(5, spec)
		if err != nil {
			log.Fatal(err)
		}
		cluster.LoadRecords("input", input, int64(spec.RecordSize()))
		app = glasswing.MatMulApp(spec)
		cfg.Input = []string{"input"}
		cfg.Collector = glasswing.BufferPool
		cfg.UseCombiner = false
		run = func() (*glasswing.Result, error) { return cluster.Run(app, cfg) }
		validate = func(r *glasswing.Result) error { return apps.VerifyMatMul(r.Output(), a, b, spec) }
	default:
		log.Fatalf("unknown app %q (wc, pvc, ts, km, mm)", *appName)
	}

	if *useNative {
		runNativeJob(*appName, *size, *traceOut, *metricsOut, *report)
		return
	}

	res, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(glasswing.Summary(res))
	st := res.MaxMapStage()
	fmt.Printf("map pipeline busy: input=%.2fs stage=%.2fs kernel=%.2fs retrieve=%.2fs partition=%.2fs\n",
		st.Input, st.Stage, st.Kernel, st.Retrieve, st.Partition)
	rt := res.MaxReduceStage()
	fmt.Printf("reduce pipeline busy: input=%.2fs kernel=%.2fs output=%.2fs\n",
		rt.Input, rt.Kernel, rt.Partition)
	if haveFaults || res.Stats != (glasswing.JobStats{}) {
		fmt.Printf("fault tolerance: %d map retries, %d reduce retries, %d node(s) lost, %d map re-executions, %d speculative wins\n",
			res.Stats.MapRetries, res.Stats.ReduceRetries, res.Stats.NodesLost,
			res.Stats.MapRecoveries, res.Stats.SpeculativeWins)
	}
	if *verify {
		if err := validate(res); err != nil {
			log.Fatalf("output verification FAILED: %v", err)
		}
		fmt.Println("output verified against reference implementation")
	}
	if *trace && res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.String())
	}
	if *report {
		fmt.Println()
		glasswing.AnalyzePipeline(glasswing.TraceSpans(res)).WriteTable(os.Stdout)
	}
	writeTraceFile(*traceOut, glasswing.TraceSpans(res), glasswing.TraceInstants(res), nil)
	writeMetricsFile(*metricsOut, reg)
}

// writeTraceFile exports spans as Chrome trace_event JSON (no-op without a
// path). meta, when non-nil, rides in the trace's otherData object.
func writeTraceFile(path string, spans []glasswing.Span, instants []glasswing.TraceInstant, meta map[string]any) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := glasswing.WriteChromeTraceWithMeta(f, spans, meta, instants...); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
}

// writeMetricsFile snapshots the registry as JSON (no-op without a path).
func writeMetricsFile(path string, reg *glasswing.MetricsRegistry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote metrics snapshot to %s\n", path)
}

// parseKills parses the -kill flag: comma-separated NODE@SECONDS entries,
// e.g. "2@0.5,3@1.2", timed from the start of the map phase.
func parseKills(spec string) ([]glasswing.NodeFailure, error) {
	var out []glasswing.NodeFailure
	for _, part := range strings.Split(spec, ",") {
		node, at, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("bad -kill entry %q: want NODE@SECONDS", part)
		}
		n, err := strconv.Atoi(node)
		if err != nil {
			return nil, fmt.Errorf("bad -kill node in %q: %v", part, err)
		}
		t, err := strconv.ParseFloat(at, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -kill time in %q: %v", part, err)
		}
		out = append(out, glasswing.NodeFailure{Node: n, At: t})
	}
	return out, nil
}

// runNativeJob executes the selected application on the native runtime.
func runNativeJob(appName string, size int, traceOut, metricsOut string, report bool) {
	var (
		app    *glasswing.App
		blocks [][]byte
		cfg    glasswing.NativeConfig
		check  func(*glasswing.NativeResult) error
	)
	cfg.Collector = glasswing.HashTable
	tel := glasswing.NewTelemetry()
	if traceOut != "" || metricsOut != "" || report {
		cfg.Telemetry = tel
	}
	switch appName {
	case "wc":
		data, want := apps.WCData(1, size, size/400)
		blocks = glasswing.SplitText(data, 64<<10)
		app = glasswing.WordCountApp()
		cfg.UseCombiner = true
		check = func(r *glasswing.NativeResult) error { return apps.VerifyCounts(r.Output(), want) }
	case "pvc":
		data, want := apps.PVCData(2, size)
		blocks = glasswing.SplitText(data, 64<<10)
		app = glasswing.PageviewCountApp()
		cfg.UseCombiner = true
		check = func(r *glasswing.NativeResult) error { return apps.VerifyCounts(r.Output(), want) }
	case "ts":
		data := apps.TSData(3, size/workload.TeraRecordSize)
		blocks = glasswing.SplitRecords(data, 64<<10, workload.TeraRecordSize)
		app = glasswing.TeraSortApp()
		cfg.Collector = glasswing.BufferPool
		cfg.Partitioner = glasswing.TeraSortPartitioner(data, 64)
		check = func(r *glasswing.NativeResult) error { return apps.VerifyTeraSort(r.Output(), data) }
	case "km":
		data, spec := apps.KMData(4, size/16, 4, 64)
		blocks = glasswing.SplitRecords(data, 64<<10, int64(spec.Dim*4))
		app = glasswing.KMeansApp(spec)
		cfg.UseCombiner = true
		check = func(r *glasswing.NativeResult) error { return apps.VerifyKMeans(r.Output(), data, spec) }
	case "mm":
		spec := glasswing.MatMulSpec{N: 256, Tile: 32}
		input, a, b, err := apps.MMData(5, spec)
		if err != nil {
			log.Fatal(err)
		}
		blocks = glasswing.SplitRecords(input, 64<<10, int64(spec.RecordSize()))
		app = glasswing.MatMulApp(spec)
		cfg.Collector = glasswing.BufferPool
		check = func(r *glasswing.NativeResult) error { return apps.VerifyMatMul(r.Output(), a, b, spec) }
	default:
		log.Fatalf("unknown app %q (wc, pvc, ts, km, mm)", appName)
	}
	res, err := glasswing.RunNative(app, blocks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (native): total %v (map %v, merge %v, reduce %v), %d output pairs, %d spill files\n",
		res.App, res.Total, res.MapElapsed, res.MergeDelay, res.ReduceElapsed, res.OutputPairs, res.SpillFiles)
	if err := check(res); err != nil {
		log.Fatalf("output verification FAILED: %v", err)
	}
	fmt.Println("output verified against reference implementation")
	if report {
		fmt.Println()
		glasswing.AnalyzePipeline(tel.Spans.Spans()).WriteTable(os.Stdout)
	}
	writeTraceFile(traceOut, tel.Spans.Spans(), tel.Spans.Instants(), nil)
	writeMetricsFile(metricsOut, tel.Metrics)
}
