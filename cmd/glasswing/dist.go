package main

import (
	"fmt"
	"log"
	"os"

	"glasswing"
	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// distJobConfig selects how the distributed runtime runs a job: loopback
// (workers > 0, serveAddr empty) spawns the whole cluster in-process over
// real TCP; serveAddr set makes this process the coordinator and waits for
// remote -worker / distnode processes to join.
type distJobConfig struct {
	app            string
	size           int
	partitions     int
	workers        int
	serveAddr      string
	elastic        string
	journal        string
	verify         bool
	traceOut       string
	metricsOut     string
	report         bool
	input          string
	combiner       bool
	blockstore     string
	replication    int
	spillThreshold int64
	storeDir       string
}

func runDistJob(c distJobConfig) {
	var (
		job    dist.Job
		blocks [][]byte
		check  func(*dist.Result) error
		err    error
	)
	if c.input != "" {
		data, rerr := os.ReadFile(c.input)
		if rerr != nil {
			log.Fatal(rerr)
		}
		job, blocks, check, err = dist.FileJob(c.app, data, c.partitions, 0, c.combiner)
	} else {
		job, blocks, check, err = dist.DemoJob(c.app, c.size, c.partitions, 0)
		job.UseCombiner = job.UseCombiner && c.combiner
	}
	if err != nil {
		log.Fatal(err)
	}
	if c.workers <= 0 {
		c.workers = 3
	}
	tel := obs.NewTelemetry()
	o := dist.Options{
		Job:         job,
		Workers:     c.workers,
		Blocks:      blocks,
		Telemetry:   tel,
		KillWorker:  -1,
		JournalPath: c.journal,
		Blockstore:  c.blockstore,
		Replication: c.replication,
	}
	o.Tuning.SpillThreshold = c.spillThreshold
	o.Tuning.WorkDir = c.storeDir
	if c.elastic != "" {
		o.Elastic, err = dist.ParseElastic(c.elastic)
		if err != nil {
			log.Fatal(err)
		}
		if dist.HasRestart(o.Elastic) && c.journal == "" {
			log.Fatal("glasswing: -elastic restart events need -journal to resume from")
		}
	}
	var res *dist.Result
	if c.serveAddr != "" {
		o.NewApp = dist.RegistryResolver
		res, err = dist.Serve(c.serveAddr, o)
	} else {
		res, err = dist.RunLoopback(o)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (dist, %d workers): total %v (map %v, reduce %v), %d blocks in, %d intermediate pairs, %d output pairs\n",
		res.App, res.Workers, res.Total, res.MapElapsed, res.ReduceElapsed,
		len(blocks), res.IntermediatePairs, res.OutputPairs)
	if res.MapRetries > 0 || res.WorkersLost > 0 {
		fmt.Printf("fault tolerance: %d map retries, %d worker(s) lost, %d map re-executions\n",
			res.MapRetries, res.WorkersLost, res.MapRecoveries)
	}
	if res.WorkersJoined > 0 || res.WorkersDrained > 0 || res.Resumed {
		fmt.Printf("elasticity: %d worker(s) joined, %d drained, coordinator resumed: %v\n",
			res.WorkersJoined, res.WorkersDrained, res.Resumed)
	}
	if read := res.ReadLocalBytes + res.ReadRemoteBytes; read > 0 {
		fmt.Printf("block store: %d B read locally, %d B remote (%.0f%% local)\n",
			res.ReadLocalBytes, res.ReadRemoteBytes, 100*float64(res.ReadLocalBytes)/float64(read))
	}
	if res.SpillRecords > 0 {
		fmt.Printf("out-of-core: %d records spilled to disk (%d B on disk)\n",
			res.SpillRecords, res.SpillBytes)
	}
	if c.verify {
		if err := check(res); err != nil {
			log.Fatalf("output verification FAILED: %v", err)
		}
		fmt.Println("output verified against reference implementation")
	}
	if c.report {
		fmt.Println()
		glasswing.AnalyzePipeline(tel.Spans.Spans()).WriteTable(os.Stdout)
		printWireReport(tel.Metrics)
	}
	writeTraceFile(c.traceOut, tel.Spans.Spans(), tel.Spans.Instants(),
		glasswing.TraceMeta(tel.Metrics,
			"dist_frame_bytes", "dist_shuffle_bytes_total",
			"dist_net_queue_ns_total", "dist_net_write_ns_total"))
	writeMetricsFile(c.metricsOut, tel.Metrics)
}

// printWireReport prints the shuffle wire's frame-size distribution (with
// interpolated quantiles) and the net/send queue-vs-write split under
// -report, after the stage table.
func printWireReport(reg *glasswing.MetricsRegistry) {
	byName := make(map[string]glasswing.Metric)
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	frames, ok := byName["dist_frame_bytes"]
	if !ok || frames.Count == 0 {
		return
	}
	fmt.Printf("\nshuffle wire: %d frames, %.0f B on the wire (mean %.0f B/frame, p50 %.0f, p95 %.0f, p99 %.0f)\n",
		frames.Count, frames.Sum, frames.Sum/float64(frames.Count),
		frames.P50, frames.P95, frames.P99)
	fmt.Print("frame sizes:")
	for _, b := range frames.Buckets {
		if b.Count > 0 {
			fmt.Printf("  ≤%sB:%d", b.Le, b.Count)
		}
	}
	fmt.Println()
	queue := reg.Counter("dist_net_queue_ns_total").Value()
	write := reg.Counter("dist_net_write_ns_total").Value()
	if queue+write > 0 {
		fmt.Printf("net/send split: %.2fms queued, %.2fms writing\n",
			float64(queue)/1e6, float64(write)/1e6)
	}
	for _, row := range []struct{ name, label string }{
		{"dist_net_queue_seconds", "queue wait"},
		{"dist_net_write_seconds", "socket write"},
	} {
		if h, ok := byName[row.name]; ok && h.Count > 0 {
			fmt.Printf("%s per frame: p50 %.3fms, p95 %.3fms, p99 %.3fms (%d frames)\n",
				row.label, h.P50*1e3, h.P95*1e3, h.P99*1e3, h.Count)
		}
	}
	local := reg.Counter("dist_read_local_bytes_total").Value()
	remote := reg.Counter("dist_read_remote_bytes_total").Value()
	if local+remote > 0 {
		fmt.Printf("block reads: %d B local, %d B remote (%.0f%% local), %d B ingested\n",
			local, remote, 100*float64(local)/float64(local+remote),
			reg.Counter("dist_block_ingest_bytes_total").Value())
	}
	if spilled := reg.Counter("conserv_spill_records_total").Value(); spilled > 0 {
		fmt.Printf("spills: %d records in %d run files, %d B raw -> %d B stored\n",
			spilled, reg.Counter("conserv_spill_files_total").Value(),
			reg.Counter("conserv_spill_raw_bytes_total").Value(),
			reg.Counter("conserv_spill_stored_bytes_total").Value())
	}
}

// runDistWorker joins a remote coordinator and blocks until the job ends.
func runDistWorker(coordAddr, listenAddr string) {
	if err := dist.Join(coordAddr, listenAddr, dist.Tuning{}, obs.NewTelemetry()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker done")
}
