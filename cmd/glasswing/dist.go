package main

import (
	"fmt"
	"log"
	"os"

	"glasswing"
	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// distJobConfig selects how the distributed runtime runs a job: loopback
// (workers > 0, serveAddr empty) spawns the whole cluster in-process over
// real TCP; serveAddr set makes this process the coordinator and waits for
// remote -worker / distnode processes to join.
type distJobConfig struct {
	app        string
	size       int
	partitions int
	workers    int
	serveAddr  string
	verify     bool
	traceOut   string
	metricsOut string
	report     bool
}

func runDistJob(c distJobConfig) {
	job, blocks, check, err := dist.DemoJob(c.app, c.size, c.partitions, 0)
	if err != nil {
		log.Fatal(err)
	}
	if c.workers <= 0 {
		c.workers = 3
	}
	tel := obs.NewTelemetry()
	o := dist.Options{
		Job:        job,
		Workers:    c.workers,
		Blocks:     blocks,
		Telemetry:  tel,
		KillWorker: -1,
	}
	var res *dist.Result
	if c.serveAddr != "" {
		o.NewApp = dist.RegistryResolver
		res, err = dist.Serve(c.serveAddr, o)
	} else {
		res, err = dist.RunLoopback(o)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (dist, %d workers): total %v (map %v, reduce %v), %d blocks in, %d intermediate pairs, %d output pairs\n",
		res.App, res.Workers, res.Total, res.MapElapsed, res.ReduceElapsed,
		len(blocks), res.IntermediatePairs, res.OutputPairs)
	if res.MapRetries > 0 || res.WorkersLost > 0 {
		fmt.Printf("fault tolerance: %d map retries, %d worker(s) lost, %d map re-executions\n",
			res.MapRetries, res.WorkersLost, res.MapRecoveries)
	}
	if c.verify {
		if err := check(res); err != nil {
			log.Fatalf("output verification FAILED: %v", err)
		}
		fmt.Println("output verified against reference implementation")
	}
	if c.report {
		fmt.Println()
		glasswing.AnalyzePipeline(tel.Spans.Spans()).WriteTable(os.Stdout)
	}
	writeTraceFile(c.traceOut, tel.Spans.Spans(), tel.Spans.Instants())
	writeMetricsFile(c.metricsOut, tel.Metrics)
}

// runDistWorker joins a remote coordinator and blocks until the job ends.
func runDistWorker(coordAddr, listenAddr string) {
	if err := dist.Join(coordAddr, listenAddr, dist.Tuning{}, obs.NewTelemetry()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker done")
}
