package main

import (
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"glasswing/internal/jobsvc"
)

// runServe starts the resident multi-tenant job service: a coordinator
// owning a shared worker fleet, accepting jobs over the HTTP/JSON API
// until interrupted.
//
//	POST   /jobs              submit (tenant, app, base64 input, priority)
//	GET    /jobs/{id}         poll status
//	GET    /jobs/{id}/result  fetch output (base64 kv wire format)
//	GET    /jobs/{id}/trace   per-job merged cluster Chrome trace
//	GET    /jobs/{id}/metrics per-job conservation counters
//	GET    /metrics           service metrics (JSON; ?format=prom for Prometheus)
//	GET    /metrics/stream    live SSE metric snapshots
//
// The structured event journal (admissions, evictions, dispatches,
// retries, worker deaths — keyed by tenant/job/trace id) goes to stderr
// as JSON lines.
func runServe(addr string, fleet int, allowFaults bool) {
	svc := jobsvc.New(jobsvc.Config{
		FleetWorkers:        fleet,
		AllowFaultInjection: allowFaults,
		Events:              slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("-serve: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	log.Printf("job service listening on http://%s (fleet: %d worker slots)", ln.Addr(), fleet)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("shutting down: draining running jobs")
		srv.Close()
		svc.Close()
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("-serve: %v", err)
	}
	svc.Close()
}
