module glasswing

go 1.22
