package glasswing

import (
	"encoding/binary"
	"fmt"
	"math"
)

// KMeansIterations drives K-Means to convergence: the paper's evaluation
// runs a single iteration ("since this shows the performance well for all
// frameworks", §IV-A2), but the algorithm is iterative — each MapReduce job
// consumes the previous job's centers, shipped to all nodes like Hadoop's
// DistributedCache. The virtual clock accumulates across jobs, so the
// returned total time is the full clustering cost on the simulated cluster.
type KMeansIterations struct {
	// Spec holds the dimensionality and the final centers after Run.
	Spec KMeansSpec
	// Iterations actually executed.
	Iterations int
	// TotalTime is the summed virtual job time.
	TotalTime float64
	// Moved is the last iteration's maximum center displacement.
	Moved float64
	// Results holds the per-iteration job results.
	Results []*Result
}

// RunKMeans executes K-Means iterations on the cluster until no center
// moves more than eps or maxIter is reached. The dataset must already be
// loaded under inputName (fixed records of Spec.Dim float32 coordinates).
func RunKMeans(c *Cluster, inputName string, spec KMeansSpec, cfg Config, eps float64, maxIter int) (*KMeansIterations, error) {
	if maxIter <= 0 {
		maxIter = 20
	}
	out := &KMeansIterations{Spec: spec}
	cfg.Input = []string{inputName}
	for it := 0; it < maxIter; it++ {
		iterCfg := cfg
		iterCfg.OutputPath = fmt.Sprintf("%s-centers-%d", inputName, it)
		res, err := c.RunWithBroadcast(KMeansApp(out.Spec), iterCfg, out.Spec.CentersBytes())
		if err != nil {
			return nil, fmt.Errorf("glasswing: k-means iteration %d: %w", it, err)
		}
		out.Results = append(out.Results, res)
		out.TotalTime += res.JobTime
		out.Iterations++

		next, err := decodeCenters(res, out.Spec)
		if err != nil {
			return nil, fmt.Errorf("glasswing: k-means iteration %d: %w", it, err)
		}
		out.Moved = maxDisplacement(out.Spec.Centers, next)
		out.Spec.Centers = next
		if out.Moved <= eps {
			return out, nil
		}
	}
	return out, nil
}

// decodeCenters extracts the new centers from a KM job's output. Centers
// that received no points keep their previous position.
func decodeCenters(res *Result, spec KMeansSpec) ([][]float32, error) {
	next := make([][]float32, len(spec.Centers))
	for i, c := range spec.Centers {
		next[i] = append([]float32(nil), c...)
	}
	for _, pr := range res.Output() {
		if len(pr.Key) != 4 {
			return nil, fmt.Errorf("bad center key length %d", len(pr.Key))
		}
		cid := int(binary.LittleEndian.Uint32(pr.Key))
		if cid < 0 || cid >= len(next) {
			return nil, fmt.Errorf("center id %d out of range", cid)
		}
		if len(pr.Value) != spec.Dim*8+8 {
			return nil, fmt.Errorf("bad center value length %d", len(pr.Value))
		}
		for d := 0; d < spec.Dim; d++ {
			next[cid][d] = float32(math.Float64frombits(binary.LittleEndian.Uint64(pr.Value[d*8:])))
		}
	}
	return next, nil
}

func maxDisplacement(a, b [][]float32) float64 {
	var worst float64
	for i := range a {
		var d2 float64
		for d := range a[i] {
			diff := float64(a[i][d] - b[i][d])
			d2 += diff * diff
		}
		worst = math.Max(worst, math.Sqrt(d2))
	}
	return worst
}
