package glasswing

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, each regenerating its rows/series on the
// simulated cluster and reporting the headline virtual time as a custom
// metric (virtual-seconds). Wall-clock ns/op measures the simulator, not
// the simulated system — the virtual metrics are the reproduction.
//
// Benchmarks run the Quick dataset sizes so `go test -bench=.` stays in
// minutes; `go run ./cmd/benchtables` regenerates the full calibrated
// tables recorded in EXPERIMENTS.md.

import (
	"strconv"
	"testing"

	"glasswing/internal/expt"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// benchExperiment runs one registered experiment per iteration and reports
// the first and last numeric cells of its headline column as metrics.
func benchExperiment(b *testing.B, id, metricColumn string) {
	e := expt.Lookup(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	s := expt.Quick()
	var tab *expt.Table
	for i := 0; i < b.N; i++ {
		tab = e.Run(s)
	}
	if metricColumn != "" && len(tab.Rows) > 0 {
		first, err1 := strconv.ParseFloat(tab.Cell(0, metricColumn), 64)
		last, err2 := strconv.ParseFloat(tab.Cell(len(tab.Rows)-1, metricColumn), 64)
		if err1 == nil {
			b.ReportMetric(first, "vsec-first-row")
		}
		if err2 == nil {
			b.ReportMetric(last, "vsec-last-row")
		}
	}
}

// Figure 1 and Table I: the pipeline timeline and the system comparison.

func BenchmarkFig1PipelineTrace(b *testing.B) { benchExperiment(b, "fig1", "") }

// Figure 2: I/O-bound horizontal scalability (Hadoop vs Glasswing, HDFS).

func BenchmarkFig2aPVC(b *testing.B) { benchExperiment(b, "fig2a", "glasswing(s)") }
func BenchmarkFig2bWC(b *testing.B)  { benchExperiment(b, "fig2b", "glasswing(s)") }
func BenchmarkFig2cTS(b *testing.B)  { benchExperiment(b, "fig2c", "glasswing(s)") }

// Figure 3: compute-bound applications, CPU and GPU, vs Hadoop and GPMR.

func BenchmarkFig3aKMCPU(b *testing.B)   { benchExperiment(b, "fig3a", "glasswing(s)") }
func BenchmarkFig3bMMCPU(b *testing.B)   { benchExperiment(b, "fig3b", "glasswing(s)") }
func BenchmarkFig3cKMGPU(b *testing.B)   { benchExperiment(b, "fig3c", "gw-gpu-hdfs(s)") }
func BenchmarkFig3dMMGPU(b *testing.B)   { benchExperiment(b, "fig3d", "gw-gpu-hdfs(s)") }
func BenchmarkFig3eKMSmall(b *testing.B) { benchExperiment(b, "fig3e", "glasswing(s)") }

// Tables II and III: map-pipeline breakdowns.

func BenchmarkTableIIWCBreakdown(b *testing.B)  { benchExperiment(b, "tab2", "") }
func BenchmarkTableIIIKMBreakdown(b *testing.B) { benchExperiment(b, "tab3", "") }

// Figure 4: intermediate-data handling (partitioner threads, partitions).

func BenchmarkFig4aPartitionThreads(b *testing.B) { benchExperiment(b, "fig4a", "partitioning(s)") }
func BenchmarkFig4bMergeDelay(b *testing.B)       { benchExperiment(b, "fig4b", "P=8") }

// Figure 5: reduce-pipeline key concurrency.

func BenchmarkFig5ReduceConcurrency(b *testing.B) { benchExperiment(b, "fig5", "reduce-elapsed(s)") }

// Vertical scalability (§IV-C): the device zoo and K20m scaling.

func BenchmarkVerticalDevices(b *testing.B)     { benchExperiment(b, "vert", "KM(s)") }
func BenchmarkVerticalK20mScaling(b *testing.B) { benchExperiment(b, "vert-k20m", "time(s)") }

// Ablations of the design choices DESIGN.md calls out.

func BenchmarkAblationOverlap(b *testing.B)     { benchExperiment(b, "abl-olap", "overlapped(s)") }
func BenchmarkAblationBuffering(b *testing.B)   { benchExperiment(b, "abl-buf", "double(s)") }
func BenchmarkAblationPushPull(b *testing.B)    { benchExperiment(b, "abl-push", "job(s)") }
func BenchmarkAblationCompression(b *testing.B) { benchExperiment(b, "abl-comp", "job(s)") }
func BenchmarkAblationNetwork(b *testing.B)     { benchExperiment(b, "abl-net", "job(s)") }

// Extension: the HadoopCL comparison the paper could not run.
func BenchmarkExtHadoopCL(b *testing.B) { benchExperiment(b, "ext-hadoopcl", "hadoopcl-gpu(s)") }

// Extension: heterogeneous cluster scheduling (paper §II, Shirahata et al.).
func BenchmarkExtHeterogeneous(b *testing.B) { benchExperiment(b, "ext-hetero", "job(s)") }

// Extension: a straggler node, with and without speculative execution.
func BenchmarkExtStraggler(b *testing.B) { benchExperiment(b, "ext-straggler", "job(s)") }

// Micro-benchmarks of the substrates (wall-clock: these measure the real
// Go implementation, not the simulation).

func BenchmarkKVMarshal(b *testing.B) {
	pairs := make([]kv.Pair, 1000)
	for i := range pairs {
		pairs[i] = kv.Pair{
			Key:   []byte("key-" + strconv.Itoa(i%100)),
			Value: []byte(strconv.Itoa(i)),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob := kv.Marshal(pairs)
		if _, err := kv.Unmarshal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVMergeRuns(b *testing.B) {
	var runs []*kv.Run
	for r := 0; r < 8; r++ {
		var buf kv.Buffer
		for i := 0; i < 500; i++ {
			buf.AddKV([]byte("k"+strconv.Itoa((i*7+r)%300)), []byte{byte(i)})
		}
		buf.Sort()
		runs = append(runs, kv.NewRun(buf.Pairs, false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.MergeRuns(runs, false)
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	// How many simulated events per second the DES kernel sustains.
	env := sim.NewEnv()
	env.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	env.Run()
}

func BenchmarkEndToEndWordCount(b *testing.B) {
	// Full job per iteration: the wall cost of simulating one WC run.
	data := []byte{}
	for i := 0; i < 2000; i++ {
		data = append(data, "alpha beta gamma delta epsilon zeta\n"...)
	}
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		cluster := NewCluster(ClusterConfig{Nodes: 4, BlockSize: 8 << 10})
		cluster.LoadText("in", data)
		res, err := cluster.Run(WordCountApp(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.JobTime
	}
	b.ReportMetric(last, "vsec-job")
}
