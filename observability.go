package glasswing

import (
	"io"

	"glasswing/internal/obs"
)

// The unified observability layer: a metrics registry, span recording, a
// Chrome trace_event exporter and a pipeline stall analyzer, shared by the
// simulated and native runtimes. Enable sim tracing with Config.Trace,
// native spans with NativeConfig.Telemetry; hand either runtime a registry
// (Config.Metrics / Telemetry.Metrics) to collect counters and gauges.

type (
	// Span is one interval of pipeline activity on a node's stage track.
	Span = obs.Span
	// TraceInstant is a zero-duration event (e.g. a node death).
	TraceInstant = obs.Instant
	// MetricsRegistry holds counters, gauges and histograms with
	// lock-cheap atomic recording, snapshottable to JSON.
	MetricsRegistry = obs.Registry
	// Metric is one snapshotted metric value.
	Metric = obs.Metric
	// Telemetry bundles a registry and a span buffer for the native
	// runtime.
	Telemetry = obs.Telemetry
	// PipelineReport is the per-stage busy/stall/occupancy analysis of a
	// traced run.
	PipelineReport = obs.Report
	// StageReport is one (node, stage) row of a PipelineReport.
	StageReport = obs.StageReport
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTelemetry returns a Telemetry bundle with a fresh registry and span
// buffer.
func NewTelemetry() *Telemetry { return obs.NewTelemetry() }

// TraceSpans extracts a traced sim result's spans for the exporter and
// analyzer (empty if the job ran without Config.Trace).
func TraceSpans(r *Result) []Span { return r.Trace.ObsSpans() }

// TraceInstants extracts a traced sim result's instant events (node deaths).
func TraceInstants(r *Result) []TraceInstant { return r.Trace.ObsInstants() }

// WriteChromeTrace exports spans (plus optional instants) as Chrome
// trace_event JSON: one process per node, one track per pipeline stage. The
// output opens in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, spans []Span, instants ...TraceInstant) error {
	return obs.WriteChromeTrace(w, spans, instants...)
}

// WriteChromeTraceWithMeta is WriteChromeTrace plus a run-level metadata
// object (e.g. obs.TraceMeta output) carried in the trace's otherData field;
// nil meta writes exactly what WriteChromeTrace writes.
func WriteChromeTraceWithMeta(w io.Writer, spans []Span, meta map[string]any, instants ...TraceInstant) error {
	return obs.WriteChromeTraceWithMeta(w, spans, meta, instants...)
}

// TraceMeta pulls named metrics out of reg as a metadata object for
// WriteChromeTraceWithMeta.
func TraceMeta(reg *MetricsRegistry, names ...string) map[string]any {
	return obs.TraceMeta(reg, names...)
}

// WriteMetricsProm writes a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): histograms as cumulative _bucket/_sum/
// _count series, counters and gauges as single samples.
func WriteMetricsProm(w io.Writer, reg *MetricsRegistry) error { return reg.WriteProm(w) }

// AnalyzePipeline computes per-stage busy/stall time, occupancy, the overlap
// factor and a critical-path estimate from a run's spans.
func AnalyzePipeline(spans []Span) *PipelineReport { return obs.Analyze(spans) }

// RenderTrace renders a traced sim result's Gantt chart (kept for parity
// with Result.Trace.Render; prefer WriteChromeTrace for real inspection).
func RenderTrace(r *Result, w io.Writer, width int) {
	if r.Trace == nil {
		return
	}
	r.Trace.Render(w, width)
}
