// Package glasswing is a from-scratch reproduction of Glasswing, the
// MapReduce framework of "Scaling MapReduce Vertically and Horizontally"
// (El-Helw, Hofman, Bal — SC 2014).
//
// Glasswing scales horizontally by distributing coarse-grained work across
// cluster nodes and vertically by exploiting fine-grained parallelism on
// OpenCL compute devices. Its core is a 5-stage pipeline
// (Input → Stage → Kernel → Retrieve → Output) that overlaps disk access,
// host<->device transfers, computation and inter-node communication, plus
// an intermediate-data manager that caches, spills and continuously merges
// partitions concurrently with the map phase.
//
// Because no OpenCL runtime, GPUs, or 16-node InfiniBand cluster are
// available here, the framework runs on a deterministic simulated cluster:
// applications process real data and produce verifiable output, while the
// time every stage takes is charged against calibrated hardware models
// (CPU pools, GPUs, Xeon Phi, disks, NICs, PCIe links). See DESIGN.md for
// the substitution map and EXPERIMENTS.md for the regenerated evaluation.
//
// # Quick start
//
//	cluster := glasswing.NewCluster(glasswing.ClusterConfig{Nodes: 4})
//	cluster.LoadText("input", corpus)
//	result, err := cluster.Run(glasswing.WordCountApp(), glasswing.Config{
//		Input:       []string{"input"},
//		Collector:   glasswing.HashTable,
//		UseCombiner: true,
//	})
//
// The returned Result carries the job's virtual execution time, the
// per-stage pipeline breakdowns, and the output key/value pairs.
package glasswing

import (
	"fmt"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// Re-exported core types: the paper's Configuration and OpenCL APIs.
type (
	// App bundles an application's kernels, cost models and input format.
	App = core.App
	// Config carries the job parameters (device, buffering level,
	// partitioner threads N, partitions per node P, collector, ...).
	Config = core.Config
	// CostModel expresses kernel work in device ops.
	CostModel = core.CostModel
	// MapFunc is an application map kernel.
	MapFunc = core.MapFunc
	// ReduceFunc is an application reduce or combine kernel.
	ReduceFunc = core.ReduceFunc
	// Result reports a finished job.
	Result = core.Result
	// StageTimes is a per-stage pipeline busy-time breakdown.
	StageTimes = core.StageTimes
	// CollectorKind selects the map-output collection mechanism.
	CollectorKind = core.CollectorKind
	// JobStats breaks down a job's fault-tolerance activity (§III-E):
	// injected map/reduce retries, nodes lost, map re-executions after a
	// node death, and speculative-execution wins.
	JobStats = core.JobStats
	// NodeFailure schedules a whole-node death At seconds after the map
	// phase begins (Config.NodeFailures).
	NodeFailure = core.NodeFailure
)

// SeededFaults derives deterministic map and reduce fault injectors from a
// seed: each (task, attempt) pair fails with probability pMap / pReduce,
// decided by a pure hash, so one seed reproduces the exact same failure
// schedule on every run. Plug the results into Config.FaultInjector and
// Config.ReduceFaultInjector.
func SeededFaults(seed int64, pMap, pReduce float64) (mapInj func(file string, split, attempt int) bool, reduceInj func(part, attempt int) bool) {
	return core.SeededFaults(seed, pMap, pReduce)
}

// Collector mechanisms (§III-F of the paper).
const (
	// HashTable stores each key once with chained values and supports a
	// combiner.
	HashTable = core.HashTable
	// BufferPool is the simple shared output pool: one atomic per emit.
	BufferPool = core.BufferPool
)

// FSKind selects the file system substrate.
type FSKind int

const (
	// HDFS is the simulated Hadoop distributed file system with 3-way
	// replication and locality-aware reads, accessed through a modeled
	// libhdfs/JNI bridge (the paper's comparison setup).
	HDFS FSKind = iota
	// LocalFS keeps every file fully replicated on every node's local
	// disk (the layout of the paper's GPMR comparison).
	LocalFS
)

// ClusterConfig describes the simulated cluster to build.
type ClusterConfig struct {
	// Nodes is the number of worker nodes (default 1).
	Nodes int
	// GPU attaches an NVidia GTX480 to every node (DAS-4 Type-1 layout).
	GPU bool
	// Type2 uses DAS-4 Type-2 nodes (dual 6-core Xeon; K20m when GPU).
	Type2 bool
	// FS selects the file system (default HDFS).
	FS FSKind
	// BlockSize is the DFS block / split size (default 256 KiB).
	BlockSize int64
	// SlowDown divides every hardware rate by this factor, letting small
	// datasets stand in for the paper's GB-scale ones (default 1).
	SlowDown float64
}

// Cluster is a simulated cluster plus its file system, ready to run jobs.
type Cluster struct {
	Env   *sim.Env
	HW    *hw.Cluster
	FS    dfs.Preloader
	specs ClusterConfig
}

// NewCluster builds a simulated cluster.
func NewCluster(cc ClusterConfig) *Cluster {
	if cc.Nodes <= 0 {
		cc.Nodes = 1
	}
	if cc.BlockSize <= 0 {
		cc.BlockSize = 256 << 10
	}
	env := sim.NewEnv()
	spec := hw.Type1(cc.GPU)
	if cc.Type2 {
		spec = hw.Type2(cc.GPU)
	}
	if cc.SlowDown > 1 {
		spec = spec.Slowed(cc.SlowDown)
	}
	cluster := hw.NewCluster(env, cc.Nodes, spec)
	var fs dfs.Preloader
	if cc.FS == LocalFS {
		fs = dfs.NewLocal(cluster, cc.BlockSize)
	} else {
		d := dfs.New(cluster, cc.BlockSize, 3)
		d.JNI = dfs.DefaultJNI
		fs = d
	}
	return &Cluster{Env: env, HW: cluster, FS: fs, specs: cc}
}

// LoadText stores a text dataset with line-aligned splits (experiment
// setup; costs no virtual time).
func (c *Cluster) LoadText(name string, data []byte) {
	c.FS.PreloadBlocks(name, dfs.SplitLines(data, c.specs.BlockSize), 0)
}

// LoadRecords stores a binary dataset of fixed-size records with
// record-aligned splits.
func (c *Cluster) LoadRecords(name string, data []byte, recordSize int64) {
	c.FS.PreloadBlocks(name, dfs.SplitFixed(data, c.specs.BlockSize, recordSize), 0)
}

// Run executes app under cfg on this cluster and returns the result. The
// virtual clock keeps advancing across successive Run calls (iterative
// algorithms simply call Run again).
func (c *Cluster) Run(app *App, cfg Config) (*Result, error) {
	return core.Run(&core.Runtime{Cluster: c.HW, FS: c.FS}, app, cfg)
}

// RunWithBroadcast is Run preceded by a broadcast of auxiliary data from
// node 0 to all nodes (the DistributedCache analog KM uses for its
// centers).
func (c *Cluster) RunWithBroadcast(app *App, cfg Config, bytes int64) (*Result, error) {
	rt := &core.Runtime{
		Cluster: c.HW,
		FS:      c.FS,
		Prelude: func(p *sim.Proc, cl *hw.Cluster) { cl.Broadcast(p, cl.Nodes[0], bytes) },
	}
	return core.Run(rt, app, cfg)
}

// The five applications of the paper's evaluation, ready to run.

// WordCountApp returns the WC application (word frequencies; hash-table
// collector plus combiner is the tuned configuration).
func WordCountApp() *App { return apps.WordCount() }

// PageviewCountApp returns the PVC application (URL frequencies over web
// server logs; I/O-bound, sparse keys).
func PageviewCountApp() *App { return apps.PageviewCount() }

// TeraSortApp returns the TS application. Pair it with a partitioner from
// TeraSortPartitioner for totally ordered output.
func TeraSortApp() *App { return apps.TeraSort() }

// TeraSortPartitioner samples the input (every sampleEvery-th record) and
// returns the range partitioner that gives TeraSort total order.
func TeraSortPartitioner(data []byte, sampleEvery int) func(key []byte, n int) int {
	return apps.TeraPartitioner(data, sampleEvery)
}

// KMeansSpec re-exports the K-Means configuration.
type KMeansSpec = apps.KMeansSpec

// KMeansApp returns one K-Means iteration over spec.
func KMeansApp(spec KMeansSpec) *App { return apps.KMeans(spec) }

// MatMulSpec re-exports the Matrix Multiply configuration.
type MatMulSpec = apps.MMSpec

// MatMulApp returns the tiled matrix multiplication application.
func MatMulApp(spec MatMulSpec) *App { return apps.MatMul(spec) }

// Summary formats the headline metrics of a result.
func Summary(r *Result) string {
	return fmt.Sprintf(
		"%s on %d node(s): job %.2fs (map %.2fs, merge delay %.2fs, reduce %.2fs), %d output pairs, %s intermediate",
		r.App, r.Nodes, r.JobTime, r.MapElapsed, r.MergeDelay, r.ReduceElapsed,
		r.OutputPairs, byteSize(r.IntermediateBytes))
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
