package glasswing

import (
	"strings"
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/workload"
)

func TestQuickstartWordCount(t *testing.T) {
	data, want := apps.WCData(1, 256<<10, 2000)
	cluster := NewCluster(ClusterConfig{Nodes: 4, BlockSize: 32 << 10})
	cluster.LoadText("input", data)
	res, err := cluster.Run(WordCountApp(), Config{
		Input:       []string{"input"},
		Collector:   HashTable,
		UseCombiner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	s := Summary(res)
	if !strings.Contains(s, "WC on 4 node(s)") {
		t.Errorf("summary = %q", s)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(ClusterConfig{})
	if len(c.HW.Nodes) != 1 {
		t.Fatalf("default cluster size = %d", len(c.HW.Nodes))
	}
	if c.FS.Name() != "HDFS" {
		t.Fatalf("default FS = %q", c.FS.Name())
	}
	c2 := NewCluster(ClusterConfig{FS: LocalFS, Nodes: 2, GPU: true})
	if c2.FS.Name() != "localFS" {
		t.Fatalf("FS = %q", c2.FS.Name())
	}
	if c2.HW.Nodes[0].Accelerator() == nil {
		t.Fatal("GPU cluster has no accelerator")
	}
	c3 := NewCluster(ClusterConfig{Type2: true, GPU: true})
	if got := c3.HW.Nodes[0].Accelerator().Profile.Name; !strings.Contains(got, "K20m") {
		t.Fatalf("Type-2 GPU = %q, want K20m", got)
	}
}

func TestTeraSortViaFacade(t *testing.T) {
	data := workload.TeraGen(2, 4000)
	cluster := NewCluster(ClusterConfig{Nodes: 4, BlockSize: 32 << 10})
	cluster.LoadRecords("ts", data, workload.TeraRecordSize)
	res, err := cluster.Run(TeraSortApp(), Config{
		Input:             []string{"ts"},
		Collector:         BufferPool,
		Partitioner:       TeraSortPartitioner(data, 16),
		OutputReplication: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyTeraSort(res.Output(), data); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansGPUViaFacade(t *testing.T) {
	data, spec := apps.KMData(3, 4096, 4, 16)
	cluster := NewCluster(ClusterConfig{Nodes: 2, GPU: true, BlockSize: 8 << 10})
	cluster.LoadRecords("km", data, int64(spec.Dim*4))
	res, err := cluster.RunWithBroadcast(KMeansApp(spec), Config{
		Input:       []string{"km"},
		Device:      1,
		Collector:   HashTable,
		UseCombiner: true,
	}, spec.CentersBytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyKMeans(res.Output(), data, spec); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessiveRunsAdvanceClock(t *testing.T) {
	data, _ := apps.WCData(4, 64<<10, 500)
	cluster := NewCluster(ClusterConfig{Nodes: 2, BlockSize: 16 << 10})
	cluster.LoadText("in", data)
	cfg := Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true, OutputPath: "o1"}
	if _, err := cluster.Run(WordCountApp(), cfg); err != nil {
		t.Fatal(err)
	}
	t1 := cluster.Env.Now()
	cfg.OutputPath = "o2"
	if _, err := cluster.Run(WordCountApp(), cfg); err != nil {
		t.Fatal(err)
	}
	if cluster.Env.Now() <= t1 {
		t.Fatal("second run did not advance the virtual clock")
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
	}
	for n, want := range cases {
		if got := byteSize(n); got != want {
			t.Errorf("byteSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunKMeansConverges(t *testing.T) {
	data, spec := apps.KMData(9, 6000, 4, 8)
	cluster := NewCluster(ClusterConfig{Nodes: 2, BlockSize: 8 << 10})
	cluster.LoadRecords("points", data, int64(spec.Dim*4))
	out, err := RunKMeans(cluster, "points", spec, Config{
		Collector: HashTable, UseCombiner: true,
	}, 1e-3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", out.Iterations)
	}
	if out.Iterations >= 25 && out.Moved > 1e-3 {
		t.Fatalf("did not converge in 25 iterations (moved %g)", out.Moved)
	}
	if out.TotalTime <= out.Results[0].JobTime {
		t.Fatal("total time should accumulate over iterations")
	}
	// Converged centers must reproduce themselves: one more iteration
	// assigns the same points to the same centers.
	final := KMeansSpec{Dim: spec.Dim, Centers: out.Spec.Centers}
	ref := apps.KMRef(data, final)
	if len(ref) == 0 {
		t.Fatal("no assignments at convergence")
	}
	t.Logf("converged in %d iterations, total virtual time %.2fs", out.Iterations, out.TotalTime)
}

func TestRunKMeansBadInput(t *testing.T) {
	_, spec := apps.KMData(9, 100, 4, 4)
	cluster := NewCluster(ClusterConfig{Nodes: 1})
	if _, err := RunKMeans(cluster, "missing", spec, Config{Collector: HashTable, UseCombiner: true}, 1e-3, 3); err == nil {
		t.Fatal("missing input should fail")
	}
}
