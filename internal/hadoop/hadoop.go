// Package hadoop is a structural model of Hadoop 1.x (the paper compares
// against stable 1.0.x), faithful in the properties the paper's analysis
// rests on and deliberately lacking Glasswing's three advantages:
//
//   - coarse-grained parallelism only: a map task is a single Java thread
//     that reads, maps, sorts and spills sequentially — overlap comes only
//     from running many tasks per node, never within a task;
//   - a pull-based shuffle: reducers fetch map output after maps publish it,
//     paying the extra latency the paper attributes to pulling (§IV-A1);
//   - JVM execution costs: a per-record object/serialization overhead and a
//     compute multiplier relative to the OpenCL kernels.
//
// The same application kernels (core.App) run here, so outputs are
// comparable bit-for-bit with Glasswing's; only the execution model and the
// charged costs differ. Speculative execution is disabled and the
// mapper/reducer counts are assumed pre-swept, as in the paper's setup.
package hadoop

import (
	"fmt"
	"sort"

	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// JVM and framework cost constants. Calibration targets the paper's
// single-node bands: Glasswing CPU is >= 1.2x faster than Hadoop across the
// five applications (§IV-A conclusions).
const (
	// javaComputeFactor multiplies application kernel ops (interpreted /
	// JIT / bounds-checked Java vs. tuned OpenCL C).
	javaComputeFactor = 1.8
	// javaPerRecordOps is charged per record or emitted pair: Writable
	// boxing, object churn, stream framing.
	javaPerRecordOps = 250
	// javaReadPerByte is the Java stream-decode cost of input bytes.
	javaReadPerByte = 0.8
	// taskStartupSecs is per-task launch cost (JVM reuse enabled).
	taskStartupSecs = 0.12
	// heartbeatSecs is the TaskTracker heartbeat: tasks are handed out on
	// heartbeat boundaries, adding scheduling latency per wave.
	heartbeatSecs = 0.35
	// jobStartupSecs covers job submission, InputFormat splits, JobTracker
	// setup — far heavier than Glasswing's library start.
	jobStartupSecs = 2.2
	// shuffleSlowstart is the completed-maps fraction before reducers
	// begin fetching.
	shuffleSlowstart = 0.05
	// sortFactor is io.sort.factor: the reducer merges fetched runs when
	// more than this many accumulate.
	sortFactor = 10
)

// Config mirrors the Hadoop job knobs the paper tuned.
type Config struct {
	Input             []string
	OutputPath        string
	OutputReplication int
	// MapSlots and ReduceSlots are per-node concurrent task slots; the
	// defaults occupy all hardware threads, matching the paper's sweep.
	MapSlots    int
	ReduceSlots int
	// Reducers is the total number of reduce tasks (0 = 4 per node).
	Reducers int
	// UseCombiner runs App.Combine over each spill.
	UseCombiner bool
	// Speculative enables speculative execution: once no pending map
	// tasks remain, idle slots re-execute in-flight tasks that have run
	// noticeably longer than the median, and the first copy to finish
	// wins. The paper disables it ("the DAS cluster is extremely
	// stable"); it exists here for the straggler experiments.
	Speculative bool
	// Partitioner overrides hash partitioning.
	Partitioner func(key []byte, n int) int
	// SortBuffer is io.sort.mb in bytes (map-side spill threshold).
	SortBuffer int64
}

func (c Config) withDefaults(cpu hw.DeviceProfile) Config {
	if c.OutputPath == "" {
		c.OutputPath = "hadoop-out"
	}
	if c.MapSlots == 0 {
		c.MapSlots = cpu.HWThreads
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = cpu.HWThreads / 2
	}
	if c.Partitioner == nil {
		c.Partitioner = kv.Partition
	}
	if c.SortBuffer == 0 {
		c.SortBuffer = 100 << 20
	}
	return c
}

// Runtime binds Hadoop to a cluster and file system (its native HDFS client
// is Java, so JNI mode must be off on the DFS — Hadoop pays Java costs here
// instead).
type Runtime struct {
	Cluster *hw.Cluster
	FS      dfs.FS
	// Prelude mirrors DistributedCache distribution before the job.
	Prelude func(p *sim.Proc, c *hw.Cluster)
}

// Result reports a Hadoop job.
type Result struct {
	App     string
	Nodes   int
	JobTime float64
	// MapPhase is submission until the last map task finished.
	MapPhase float64
	// ShuffleDrain is the post-map time reducers still spent fetching and
	// merging before reduce functions could run.
	ShuffleDrain float64
	// ReducePhase is the remaining time until the last reducer committed.
	ReducePhase float64
	// SpeculativeWasted counts duplicate map attempts that lost the race.
	SpeculativeWasted int

	outputs map[int][]kv.Pair
}

// Output returns final pairs in reducer order.
func (r *Result) Output() []kv.Pair {
	ids := make([]int, 0, len(r.outputs))
	for id := range r.outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []kv.Pair
	for _, id := range ids {
		out = append(out, r.outputs[id]...)
	}
	return out
}

// mapOutput is one map task's partitioned, sorted output, published on the
// mapper's local disk for reducers to pull.
type mapOutput struct {
	node *hw.Node
	runs map[int]*kv.Run // reducer id -> run
}

type job struct {
	cluster *hw.Cluster
	fs      dfs.FS
	app     *core.App
	cfg     Config

	tasks     []taskRef
	state     []taskState
	started   []float64
	runningOn []*hw.Node
	durations []float64
	completed []*mapOutput
	doneCount int
	mapsDone  *sim.Signal
	outputs   map[int][]kv.Pair
	// SpeculativeWasted counts duplicate attempts whose original won.
	wasted int
}

type taskState int8

const (
	taskPending taskState = iota
	taskRunning
	taskDuplicated
	taskDone
)

type taskRef struct {
	file *dfs.File
	idx  int
}

// Run executes app as a Hadoop job and returns the result.
func Run(rt *Runtime, app *core.App, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(rt.Cluster.Nodes[0].CPUProfile)
	if cfg.Reducers == 0 {
		cfg.Reducers = 4 * len(rt.Cluster.Nodes)
	}
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("hadoop: app %q needs Parse and Map", app.Name)
	}
	if len(cfg.Input) == 0 {
		return nil, fmt.Errorf("hadoop: no input files")
	}
	env := rt.Cluster.Env
	j := &job{
		cluster:  rt.Cluster,
		fs:       rt.FS,
		app:      app,
		cfg:      cfg,
		mapsDone: sim.NewSignal(env),
		outputs:  make(map[int][]kv.Pair),
	}
	for _, name := range cfg.Input {
		f, err := rt.FS.Open(name)
		if err != nil {
			return nil, err
		}
		for idx := range f.Blocks {
			j.tasks = append(j.tasks, taskRef{file: f, idx: idx})
		}
	}
	j.state = make([]taskState, len(j.tasks))
	j.started = make([]float64, len(j.tasks))
	j.runningOn = make([]*hw.Node, len(j.tasks))

	res := &Result{App: app.Name, Nodes: len(rt.Cluster.Nodes), outputs: j.outputs}

	env.Spawn("jobtracker", func(p *sim.Proc) {
		jobStart := p.Now()
		p.Delay(jobStartupSecs)
		if rt.Prelude != nil {
			rt.Prelude(p, rt.Cluster)
		}

		// Map slots across the cluster.
		var slotProcs []*sim.Proc
		for _, node := range rt.Cluster.Nodes {
			for s := 0; s < cfg.MapSlots; s++ {
				node := node
				pr := env.Spawn(fmt.Sprintf("%s/mapslot%d", node.Name, s), func(q *sim.Proc) {
					j.mapSlotLoop(q, node)
				})
				slotProcs = append(slotProcs, pr)
			}
		}

		// Reducers start with the slowstart delay, then fetch as map
		// outputs are published.
		reduceSlots := sim.NewResource(env, cfg.ReduceSlots*len(rt.Cluster.Nodes))
		var redProcs []*sim.Proc
		var reduceComputeStart []float64
		reduceComputeStart = make([]float64, cfg.Reducers)
		for r := 0; r < cfg.Reducers; r++ {
			r := r
			node := rt.Cluster.Nodes[r%len(rt.Cluster.Nodes)]
			pr := env.Spawn(fmt.Sprintf("%s/reducer%d", node.Name, r), func(q *sim.Proc) {
				reduceComputeStart[r] = j.reducerTask(q, node, r, reduceSlots)
			})
			redProcs = append(redProcs, pr)
		}

		// The map phase ends when every task has a winning attempt; with
		// speculation, losing duplicates may still be draining.
		j.mapsDone.Wait(p)
		res.MapPhase = p.Now() - jobStart
		mapsDoneAt := p.Now()
		_ = slotProcs

		for _, pr := range redProcs {
			pr.Done().Wait(p)
		}
		res.JobTime = p.Now() - jobStart
		res.SpeculativeWasted = j.wasted
		lastStart := mapsDoneAt
		for _, t := range reduceComputeStart {
			lastStart = max(lastStart, t)
		}
		res.ShuffleDrain = lastStart - mapsDoneAt
		res.ReducePhase = p.Now() - lastStart
	})
	env.Run()
	return res, nil
}

// mapSlotLoop pulls map tasks until none remain. Task handout happens on
// heartbeat boundaries; locality is approximated by letting every slot take
// the oldest task (with full input replication locality is even anyway, and
// the paper ensured well-balanced executions). With speculation, slots that
// run dry re-execute laggard in-flight tasks.
func (j *job) mapSlotLoop(p *sim.Proc, node *hw.Node) {
	for {
		idx, ok := j.nextTask(node)
		if !ok {
			if !j.cfg.Speculative {
				return
			}
			idx = j.pickSpeculative(p.Now(), node)
			if idx < 0 {
				if j.allMapsDone() {
					return
				}
				// Wait a heartbeat for a laggard to qualify.
				p.Delay(heartbeatSecs)
				continue
			}
		}
		p.Delay(heartbeatSecs / 2)
		p.Delay(taskStartupSecs)
		out := j.mapTask(p, node, j.tasks[idx])
		if j.state[idx] == taskDone {
			// The other copy won; discard this attempt's output.
			j.wasted++
			continue
		}
		j.state[idx] = taskDone
		j.doneCount++
		j.durations = append(j.durations, p.Now()-j.started[idx])
		j.completed = append(j.completed, out)
		if j.doneCount == len(j.tasks) {
			// Every task has a winning copy: the map phase is over, even
			// if losing duplicates are still draining (real Hadoop kills
			// them; here they finish and are discarded).
			j.mapsDone.Fire(nil)
		}
	}
}

// nextTask claims a pending task, preferring local blocks.
func (j *job) nextTask(node *hw.Node) (int, bool) {
	for i, t := range j.tasks {
		if j.state[i] == taskPending && j.fs.LocalTo(t.file, t.idx, node) {
			j.state[i] = taskRunning
			j.started[i] = node.Env().Now()
			j.runningOn[i] = node
			return i, true
		}
	}
	for i := range j.tasks {
		if j.state[i] == taskPending {
			j.state[i] = taskRunning
			j.started[i] = node.Env().Now()
			j.runningOn[i] = node
			return i, true
		}
	}
	return -1, false
}

// allMapsDone reports whether every map task has completed.
func (j *job) allMapsDone() bool {
	for i := range j.tasks {
		if j.state[i] != taskDone {
			return false
		}
	}
	return true
}

// pickSpeculative selects an in-flight task that has been running far
// longer than the median completed task (Hadoop's laggard heuristic),
// skipping tasks already duplicated and tasks running on this very node
// (re-running on the straggler itself would not help).
func (j *job) pickSpeculative(now float64, node *hw.Node) int {
	if len(j.durations) == 0 {
		return -1
	}
	if len(j.durations) < 3 {
		return -1 // too few samples for a stable laggard estimate
	}
	med := medianOf(j.durations)
	best, bestElapsed := -1, 0.0
	for i := range j.tasks {
		if j.state[i] != taskRunning || j.runningOn[i] == node {
			continue
		}
		elapsed := now - j.started[i]
		if elapsed > 1.8*med && elapsed > bestElapsed {
			best, bestElapsed = i, elapsed
		}
	}
	if best >= 0 {
		j.state[best] = taskDuplicated
	}
	return best
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// mapTask executes one map task: read, map, sort, spill — all sequential
// within the task (single Java thread) — and returns its output for the
// caller to publish.
func (j *job) mapTask(p *sim.Proc, node *hw.Node, t taskRef) *mapOutput {
	app, cfg := j.app, j.cfg
	block, err := j.fs.ReadBlock(p, node, t.file, t.idx)
	if err != nil {
		panic(err)
	}
	node.HostWork(p, javaReadPerByte*float64(len(block)), 1)
	recs := app.Parse(block)
	node.HostWork(p, app.ParseCostPerByte*javaComputeFactor*float64(len(block)), 1)

	// Map over all records into the sort buffer.
	var buf kv.Buffer
	emits := 0
	for _, rec := range recs {
		app.Map(rec, func(k, v []byte) {
			buf.Add(kv.Pair{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
			emits++
		})
	}
	mapOps := app.MapCost.OpsPerRecord*float64(len(recs)) +
		app.MapCost.OpsPerByte*float64(len(block)) +
		app.MapCost.OpsPerEmit*float64(emits)
	mapOps = mapOps*javaComputeFactor + javaPerRecordOps*float64(len(recs)+emits)
	node.HostWork(p, mapOps, 1)

	// Sort + spill, partitioned by reducer. Spill count follows the sort
	// buffer; each spill is sorted, combined (optionally) and written.
	spills := int(buf.Bytes()/cfg.SortBuffer) + 1
	out := &mapOutput{node: node, runs: make(map[int]*kv.Run)}
	perReducer := make(map[int]*kv.Buffer)
	for _, pr := range buf.Pairs {
		r := cfg.Partitioner(pr.Key, cfg.Reducers)
		b := perReducer[r]
		if b == nil {
			b = &kv.Buffer{}
			perReducer[r] = b
		}
		b.Add(pr)
	}
	sortOps := (sortCostJava(buf.Len()) + costSerializeJava*float64(buf.Bytes())) * float64(spills)
	node.HostWork(p, sortOps, 1)
	var spillBytes int64
	for r := 0; r < cfg.Reducers; r++ {
		b, ok := perReducer[r]
		if !ok {
			continue
		}
		b.Sort()
		pairs := b.Pairs
		if cfg.UseCombiner && j.app.Combine != nil {
			pairs = combinePairs(j.app, pairs)
			node.HostWork(p, float64(b.Len())*javaPerRecordOps/4, 1)
		}
		run := kv.NewRun(pairs, false)
		out.runs[r] = run
		spillBytes += run.StoredBytes()
	}
	node.Disk.Write(p, spillBytes)
	if spills > 1 {
		// Extra spill merge pass: read + merge + rewrite.
		node.Disk.Read(p, spillBytes)
		node.HostWork(p, mergeCostJava(buf.Len(), spills), 1)
		node.Disk.Write(p, spillBytes)
	}
	return out
}

// combinePairs applies the app combiner over sorted pairs.
func combinePairs(app *core.App, pairs []kv.Pair) []kv.Pair {
	gi := kv.NewGroupIter(kv.NewSliceIter(pairs))
	var out []kv.Pair
	for {
		g, ok := gi.Next()
		if !ok {
			return out
		}
		app.Combine(g.Key, g.Values, func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
}

// reducerTask pulls its partition of every map output, merges, reduces and
// writes the final file. It returns the time reduce computation started
// (shuffle fully drained).
func (j *job) reducerTask(p *sim.Proc, node *hw.Node, r int, slots *sim.Resource) float64 {
	// Slowstart: reducers are scheduled a bit after the job begins.
	p.Delay(jobStartupSecs * shuffleSlowstart)
	slots.Acquire(p, 1)
	defer slots.Release(1)
	p.Delay(taskStartupSecs)

	var fetched []*kv.Run
	var fetchedPairs int
	next := 0
	for {
		for next < len(j.completed) {
			out := j.completed[next]
			next++
			run, ok := out.runs[r]
			if !ok {
				continue
			}
			// Pull: read the mapper's disk, cross the network.
			out.node.Disk.Read(p, run.StoredBytes())
			j.cluster.Transfer(p, out.node, node, run.StoredBytes())
			fetched = append(fetched, run)
			fetchedPairs += run.Records
			if len(fetched) > sortFactor {
				// Intermediate merge to keep the final fan-in bounded; at
				// these volumes Hadoop's shuffle merges in memory.
				node.HostWork(p, mergeCostJava(fetchedPairs, len(fetched)), 1)
				fetched = []*kv.Run{kv.MergeRuns(fetched, false)}
			}
		}
		if j.mapsDone.Fired() && next >= len(j.completed) {
			break
		}
		// Poll for newly published outputs on the heartbeat cadence.
		p.Delay(heartbeatSecs / 2)
	}

	// Final merge + group + reduce.
	node.HostWork(p, mergeCostJava(fetchedPairs, len(fetched)+1), 1)
	iters := make([]kv.Iterator, len(fetched))
	for i, run := range fetched {
		iters[i] = run.Iter()
	}
	computeStart := p.Now()
	gi := kv.NewGroupIter(kv.Merge(iters...))
	var out []kv.Pair
	var ops float64
	var nvals int
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		nvals += len(g.Values)
		ops += j.app.ReduceCost.OpsPerRecord +
			j.app.ReduceCost.OpsPerValue*float64(len(g.Values)) +
			j.app.ReduceCost.OpsPerByte*float64(g.Bytes())
		if j.app.Reduce == nil {
			for _, v := range g.Values {
				out = append(out, kv.Pair{Key: g.Key, Value: v})
			}
			continue
		}
		j.app.Reduce(g.Key, g.Values, func(k, v []byte) {
			ops += j.app.ReduceCost.OpsPerEmit
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
	node.HostWork(p, ops*javaComputeFactor+javaPerRecordOps*float64(nvals+len(out)), 1)
	blob := kv.Marshal(out)
	node.HostWork(p, costSerializeJava*float64(len(blob)), 1)
	if _, err := j.fs.Write(p, node, fmt.Sprintf("%s-%05d", j.cfg.OutputPath, r), blob, j.cfg.OutputReplication); err != nil {
		panic(err)
	}
	j.outputs[r] = out
	return computeStart
}
