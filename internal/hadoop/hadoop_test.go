package hadoop

import (
	"strconv"
	"strings"
	"testing"

	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

func wcApp() *core.App {
	sum := func(key []byte, values [][]byte, emit func(k, v []byte)) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
	}
	return &core.App{
		Name: "wc",
		Parse: func(block []byte) []kv.Pair {
			var recs []kv.Pair
			for _, line := range strings.Split(string(block), "\n") {
				if line != "" {
					recs = append(recs, kv.Pair{Value: []byte(line)})
				}
			}
			return recs
		},
		ParseCostPerByte: 1,
		Map: func(rec kv.Pair, emit func(k, v []byte)) {
			for _, w := range strings.Fields(string(rec.Value)) {
				emit([]byte(w), []byte("1"))
			}
		},
		MapCost:     core.CostModel{OpsPerRecord: 50, OpsPerByte: 8, OpsPerEmit: 20},
		Combine:     sum,
		CombineCost: core.CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
		Reduce:      sum,
		ReduceCost:  core.CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
	}
}

func corpus(lines int) ([]byte, map[string]int) {
	var sb strings.Builder
	want := map[string]int{}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < lines; i++ {
		for j := 0; j <= i%3; j++ {
			w := words[(i+j)%len(words)]
			sb.WriteString(w)
			sb.WriteByte(' ')
			want[w]++
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), want
}

func setup(nodes int, lines int) (*Runtime, map[string]int) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, nodes, hw.Type1(false))
	d := dfs.New(cluster, 4<<10, min(3, nodes))
	data, want := corpus(lines)
	d.PreloadBlocks("in", dfs.SplitLines(data, 4<<10), 0)
	return &Runtime{Cluster: cluster, FS: d}, want
}

func checkCounts(t *testing.T, res *Result, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, pr := range res.Output() {
		n, err := strconv.Atoi(string(pr.Value))
		if err != nil {
			t.Fatalf("bad count %q", pr.Value)
		}
		got[string(pr.Key)] += n
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("word %q: got %d, want %d", w, got[w], n)
		}
	}
}

func TestWordCountCorrect(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		rt, want := setup(nodes, 600)
		res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, res, want)
		if res.JobTime < jobStartupSecs {
			t.Fatalf("job time %g below bare startup", res.JobTime)
		}
	}
}

func TestWordCountNoCombiner(t *testing.T) {
	rt, want := setup(2, 500)
	res, err := Run(rt, wcApp(), Config{Input: []string{"in"}})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res, want)
}

func TestPhasesAccounted(t *testing.T) {
	rt, _ := setup(2, 800)
	res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, UseCombiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapPhase <= 0 || res.ReducePhase <= 0 {
		t.Fatalf("phases not accounted: %+v", res)
	}
	if res.MapPhase+res.ShuffleDrain+res.ReducePhase > res.JobTime*1.001 {
		t.Fatalf("phase sum exceeds job time: %+v", res)
	}
}

func TestMoreNodesFaster(t *testing.T) {
	run := func(nodes int) float64 {
		env := sim.NewEnv()
		// Dilate the hardware so per-node work dominates the fixed
		// JobTracker overheads, as it would at real dataset sizes.
		cluster := hw.NewCluster(env, nodes, hw.Type1(false).Slowed(100))
		d := dfs.New(cluster, 256<<10, min(3, nodes))
		data, _ := corpus(120000)
		d.PreloadBlocks("in", dfs.SplitLines(data, 256<<10), 0)
		rt := &Runtime{Cluster: cluster, FS: d}
		res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.JobTime
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Fatalf("4 nodes (%g) not faster than 1 (%g)", four, one)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		rt, _ := setup(3, 500)
		res, err := Run(rt, wcApp(), Config{Input: []string{"in"}})
		if err != nil {
			t.Fatal(err)
		}
		return res.JobTime
	}
	if run() != run() {
		t.Fatal("nondeterministic job time")
	}
}

func TestValidation(t *testing.T) {
	rt, _ := setup(1, 10)
	if _, err := Run(rt, &core.App{Name: "x"}, Config{Input: []string{"in"}}); err == nil {
		t.Error("want error for app without kernels")
	}
	if _, err := Run(rt, wcApp(), Config{}); err == nil {
		t.Error("want error for missing input")
	}
	if _, err := Run(rt, wcApp(), Config{Input: []string{"none"}}); err == nil {
		t.Error("want error for missing file")
	}
}

func TestCombinerEquivalence(t *testing.T) {
	// With and without the combiner, the final counts are identical —
	// the combiner only moves aggregation earlier.
	rt1, want := setup(3, 700)
	with, err := Run(rt1, wcApp(), Config{Input: []string{"in"}, UseCombiner: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2, _ := setup(3, 700)
	without, err := Run(rt2, wcApp(), Config{Input: []string{"in"}})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, with, want)
	checkCounts(t, without, want)
	// And the combiner must not be slower (it shrinks shuffle+reduce).
	if with.JobTime > without.JobTime*1.05 {
		t.Errorf("combiner run (%g) slower than plain (%g)", with.JobTime, without.JobTime)
	}
}

func TestReducerCountSweep(t *testing.T) {
	// Any reducer count computes the same answer.
	for _, reducers := range []int{1, 3, 16} {
		rt, want := setup(2, 400)
		res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, Reducers: reducers, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		checkCounts(t, res, want)
	}
}

func TestPullShuffleOverlapsMapPhase(t *testing.T) {
	// Reducers start fetching before the map phase finishes (slowstart):
	// the shuffle drain after maps must be below total map time.
	rt, _ := setup(4, 4000)
	res, err := Run(rt, wcApp(), Config{Input: []string{"in"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffleDrain >= res.MapPhase {
		t.Fatalf("shuffle drain %g should be below map phase %g (copy overlaps maps)", res.ShuffleDrain, res.MapPhase)
	}
}
