package hadoop

import "math"

// Java-side data-plane costs (ops). Heavier than Glasswing's C++ host code
// equivalents in internal/core/costs.go by roughly the javaComputeFactor.
const (
	costSortPerCmpJava = 60.0
	costSerializeJava  = 2.5
	costMergePerJava   = 95.0
)

// sortCostJava returns the ops to sort n pairs in the map task's buffer.
func sortCostJava(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) * costSortPerCmpJava
}

// mergeCostJava returns the ops to k-way merge n pairs on the reducer.
func mergeCostJava(n, k int) float64 {
	if n == 0 || k < 2 {
		return float64(n) * 10
	}
	return float64(n) * math.Log2(float64(k)) * costMergePerJava
}
