// Package faultcheck is the differential fault-injection harness: every
// application runs once fault-free to establish a baseline output digest,
// then repeatedly under seeded random fault schedules — injected map and
// reduce attempt failures, whole-node deaths, speculative execution — and
// every faulty run must produce byte-identical output while the job's
// fault-tolerance counters match the schedule that was actually injected.
//
// MapReduce's §III-E guarantee is exactly this: failures change when and
// where work runs, never what the job computes. The simulation is
// deterministic, so any digest mismatch is a real recovery bug, not noise.
package faultcheck

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"glasswing"
	"glasswing/internal/apps"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// digest fingerprints a job's complete output in partition order.
func digest(res *glasswing.Result) string {
	sum := sha256.Sum256(kv.Marshal(res.Output()))
	return hex.EncodeToString(sum[:])
}

// appCase runs one application on a fresh cluster. mutate edits the job
// config before the run (fault injectors, node failures, speculation); the
// runner also verifies the output against ground truth, so a faulty run
// must be not merely self-consistent but correct.
type appCase struct {
	name  string
	nodes int
	run   func(t *testing.T, mutate func(*glasswing.Config)) *glasswing.Result
}

func cases() []appCase {
	return []appCase{
		{name: "WordCount", nodes: 4, run: runWordCount},
		{name: "TeraSort", nodes: 4, run: runTeraSort},
		{name: "KMeans", nodes: 3, run: runKMeans},
	}
}

func runWordCount(t *testing.T, mutate func(*glasswing.Config)) *glasswing.Result {
	t.Helper()
	data, want := apps.WCData(1, 192<<10, 1500)
	cluster := glasswing.NewCluster(glasswing.ClusterConfig{Nodes: 4, BlockSize: 16 << 10})
	cluster.LoadText("in", data)
	cfg := glasswing.Config{
		Input:           []string{"in"},
		Collector:       glasswing.HashTable,
		UseCombiner:     true,
		MaxTaskAttempts: 8,
	}
	mutate(&cfg)
	res, err := cluster.Run(glasswing.WordCountApp(), cfg)
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatalf("WordCount output: %v", err)
	}
	return res
}

func runTeraSort(t *testing.T, mutate func(*glasswing.Config)) *glasswing.Result {
	t.Helper()
	data := workload.TeraGen(2, 3000)
	cluster := glasswing.NewCluster(glasswing.ClusterConfig{Nodes: 4, BlockSize: 32 << 10})
	cluster.LoadRecords("ts", data, workload.TeraRecordSize)
	cfg := glasswing.Config{
		Input:             []string{"ts"},
		Collector:         glasswing.BufferPool,
		Partitioner:       glasswing.TeraSortPartitioner(data, 16),
		OutputReplication: 1,
		MaxTaskAttempts:   8,
	}
	mutate(&cfg)
	res, err := cluster.Run(glasswing.TeraSortApp(), cfg)
	if err != nil {
		t.Fatalf("TeraSort: %v", err)
	}
	if err := apps.VerifyTeraSort(res.Output(), data); err != nil {
		t.Fatalf("TeraSort output: %v", err)
	}
	return res
}

func runKMeans(t *testing.T, mutate func(*glasswing.Config)) *glasswing.Result {
	t.Helper()
	data, spec := apps.KMData(3, 4096, 4, 16)
	cluster := glasswing.NewCluster(glasswing.ClusterConfig{Nodes: 3, BlockSize: 8 << 10})
	cluster.LoadRecords("km", data, int64(spec.Dim*4))
	cfg := glasswing.Config{
		Input:           []string{"km"},
		Collector:       glasswing.HashTable,
		UseCombiner:     true,
		MaxTaskAttempts: 8,
	}
	mutate(&cfg)
	res, err := cluster.RunWithBroadcast(glasswing.KMeansApp(spec), cfg, spec.CentersBytes())
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if err := apps.VerifyKMeans(res.Output(), data, spec); err != nil {
		t.Fatalf("KMeans output: %v", err)
	}
	return res
}

// countingFaults wraps SeededFaults so the test knows exactly how many
// failures the schedule injected: the framework's JobStats must agree.
func countingFaults(seed int64, pMap, pReduce float64) (mi func(string, int, int) bool, ri func(int, int) bool, nMap, nReduce *int) {
	m, r := glasswing.SeededFaults(seed, pMap, pReduce)
	nMap, nReduce = new(int), new(int)
	mi = func(file string, split, attempt int) bool {
		if m(file, split, attempt) {
			*nMap++
			return true
		}
		return false
	}
	ri = func(part, attempt int) bool {
		if r(part, attempt) {
			*nReduce++
			return true
		}
		return false
	}
	return mi, ri, nMap, nReduce
}

// TestDifferentialFaultSchedules is the harness core: per application, a
// fault-free baseline followed by seeded random map+reduce fault schedules
// (7 seeds x 3 apps = 21 schedules). Every schedule must reproduce the
// baseline digest and report exactly the injected failure counts.
func TestDifferentialFaultSchedules(t *testing.T) {
	for _, ac := range cases() {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			baseline := ac.run(t, func(*glasswing.Config) {})
			if baseline.Stats != (glasswing.JobStats{}) {
				t.Fatalf("fault-free baseline reports fault activity: %+v", baseline.Stats)
			}
			want := digest(baseline)

			for seed := int64(1); seed <= 7; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					pMap := 0.02 + 0.10*rng.Float64()
					pReduce := 0.05 + 0.20*rng.Float64()
					mi, ri, nMap, nReduce := countingFaults(seed, pMap, pReduce)

					res := ac.run(t, func(c *glasswing.Config) {
						c.FaultInjector = mi
						c.ReduceFaultInjector = ri
					})

					if got := digest(res); got != want {
						t.Fatalf("seed %d (pMap=%.3f pReduce=%.3f): output digest %s != baseline %s",
							seed, pMap, pReduce, got, want)
					}
					if res.Stats.MapRetries != *nMap || res.Stats.ReduceRetries != *nReduce {
						t.Fatalf("seed %d: stats report %d/%d map/reduce retries, schedule injected %d/%d",
							seed, res.Stats.MapRetries, res.Stats.ReduceRetries, *nMap, *nReduce)
					}
					if res.TaskRetries != res.Stats.MapRetries {
						t.Fatalf("TaskRetries=%d diverges from Stats.MapRetries=%d",
							res.TaskRetries, res.Stats.MapRetries)
					}
					if res.Stats.NodesLost != 0 || res.Stats.SpeculativeWins != 0 {
						t.Fatalf("seed %d: unexpected node/speculation activity: %+v", seed, res.Stats)
					}
				})
			}
		})
	}
}

// TestDifferentialNodeDeath kills a node partway through each application's
// map phase (placed as a fraction of the baseline's MapElapsed — NodeFailure
// times are anchored to map-phase start). The dead node's intermediate data
// is lost, yet the output must still match the baseline digest. At least one
// scenario must demonstrate actual re-execution of completed map work.
func TestDifferentialNodeDeath(t *testing.T) {
	recoveries := 0
	for _, ac := range cases() {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			baseline := ac.run(t, func(*glasswing.Config) {})
			want := digest(baseline)

			for _, frac := range []float64{0.35, 0.7} {
				frac := frac
				t.Run(fmt.Sprintf("at%.0f%%", frac*100), func(t *testing.T) {
					victim := ac.nodes - 2 // never node 0, never the last index
					res := ac.run(t, func(c *glasswing.Config) {
						c.NodeFailures = []glasswing.NodeFailure{
							{Node: victim, At: frac * baseline.MapElapsed},
						}
					})
					if got := digest(res); got != want {
						t.Fatalf("node %d death at %.0f%% of map: digest %s != baseline %s",
							victim, frac*100, got, want)
					}
					if res.Stats.NodesLost != 1 {
						t.Fatalf("NodesLost = %d, want 1", res.Stats.NodesLost)
					}
					recoveries += res.Stats.MapRecoveries
				})
			}
		})
	}
	if recoveries == 0 {
		t.Error("no node-death scenario re-executed any completed map task")
	}
}

// TestDifferentialSpeculationAndCombined turns on speculative execution —
// alone and on top of a fault schedule with a node death — and checks the
// output still matches the fault-free baseline. First-finisher-wins must
// never let a loser attempt's output leak into the result.
func TestDifferentialSpeculationAndCombined(t *testing.T) {
	for _, ac := range cases() {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			baseline := ac.run(t, func(*glasswing.Config) {})
			want := digest(baseline)

			t.Run("speculation", func(t *testing.T) {
				res := ac.run(t, func(c *glasswing.Config) {
					c.SpeculativeSlowdown = 1.5
				})
				if got := digest(res); got != want {
					t.Fatalf("speculation: digest %s != baseline %s", got, want)
				}
			})

			t.Run("combined", func(t *testing.T) {
				mi, ri, _, _ := countingFaults(11, 0.08, 0.12)
				res := ac.run(t, func(c *glasswing.Config) {
					c.FaultInjector = mi
					c.ReduceFaultInjector = ri
					c.SpeculativeSlowdown = 2
					c.NodeFailures = []glasswing.NodeFailure{
						{Node: ac.nodes - 2, At: 0.5 * baseline.MapElapsed},
					}
				})
				if got := digest(res); got != want {
					t.Fatalf("combined faults: digest %s != baseline %s", got, want)
				}
				if res.Stats.NodesLost != 1 {
					t.Fatalf("NodesLost = %d, want 1", res.Stats.NodesLost)
				}
			})
		})
	}
}

// TestScheduleReproducibility runs the same seeded schedule twice and
// demands bit-identical results — digest and all counters. This is what
// makes a harness failure debuggable: any schedule that ever fails can be
// replayed exactly.
func TestScheduleReproducibility(t *testing.T) {
	run := func() (*glasswing.Result, int, int) {
		mi, ri, nMap, nReduce := countingFaults(5, 0.1, 0.15)
		res := runWordCount(t, func(c *glasswing.Config) {
			c.FaultInjector = mi
			c.ReduceFaultInjector = ri
		})
		return res, *nMap, *nReduce
	}
	r1, m1, red1 := run()
	r2, m2, red2 := run()
	if digest(r1) != digest(r2) {
		t.Fatal("same fault schedule produced different outputs")
	}
	if r1.Stats != r2.Stats || m1 != m2 || red1 != red2 {
		t.Fatalf("same fault schedule produced different stats: %+v vs %+v (injected %d/%d vs %d/%d)",
			r1.Stats, r2.Stats, m1, red1, m2, red2)
	}
	if r1.JobTime != r2.JobTime {
		t.Fatalf("same fault schedule produced different virtual times: %g vs %g", r1.JobTime, r2.JobTime)
	}
}
