package nativebench

import (
	"testing"

	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// DistScenario is one pinned distributed-runtime workload: a loopback TCP
// cluster with a fixed worker count running a DemoJob. Timed iterations
// include cluster formation — a real dist job pays for connection setup,
// so the benchmark does too.
type DistScenario struct {
	Name string
	// Build constructs the run options. Input synthesis is excluded from
	// timing (Build runs once, before the timer starts).
	Build func() dist.Options
}

// DistScenarios returns the tracked distributed scenario table. Worker and
// partition counts are pinned, like the native table, so rows are
// comparable across machines and PRs.
func DistScenarios() []DistScenario {
	return []DistScenario{
		{
			// The shuffle-plane hot path: word count across 3 workers, small
			// blocks so every mapper streams runs to remote partitions while
			// later blocks are still being mapped.
			Name: "dist-wc-3w",
			Build: func() dist.Options {
				return distDemo("wc", 1<<20, 8, 16<<10)
			},
		},
		{
			// Bulk-volume variant: TeraSort moves every input byte through
			// the network shuffle (no combiner, value-carrying pairs).
			Name: "dist-ts-3w",
			Build: func() dist.Options {
				return distDemo("ts", 1<<20, 8, 16<<10)
			},
		},
		{
			// Out-of-core variant: the input is ingested into worker block
			// stores (locality-preferred placement, replication 2), the
			// combiner is off so the full pair volume crosses the shuffle,
			// and a spill threshold far below that volume forces committed
			// partitions through the disk spill / merge-readback path. The
			// tracked row pins bytes spilled and the locality hit ratio
			// alongside wall clock.
			Name: "dist-wc-ooc",
			Build: func() dist.Options {
				o := distDemo("wc", 1<<20, 8, 16<<10)
				o.Job.UseCombiner = false
				o.Blockstore = "local"
				o.Replication = 2
				o.Tuning.SpillThreshold = 64 << 10
				return o
			},
		},
	}
}

// distDemo builds pinned 3-worker loopback options for one DemoJob. The
// table is static, so a bad app name is a programming error — panic.
func distDemo(app string, size, partitions, chunk int) dist.Options {
	job, blocks, _, err := dist.DemoJob(app, size, partitions, chunk)
	if err != nil {
		panic(err)
	}
	return dist.Options{Job: job, Workers: 3, Blocks: blocks, KillWorker: -1}
}

// BenchDist runs one distributed scenario under a testing.B.
func BenchDist(b *testing.B, s DistScenario) {
	o := s.Build()
	var in int64
	for _, blk := range o.Blocks {
		in += int64(len(blk))
	}
	b.SetBytes(in)
	b.ReportAllocs()
	var pairs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dist.RunLoopback(o)
		if err != nil {
			b.Fatal(err)
		}
		pairs += int64(res.IntermediatePairs)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pairs)/sec, "pairs/s")
	}
}

// MeasureDist benchmarks one distributed scenario and folds the outcome
// into a Result row, then probes instrumented runs for the stage and
// shuffle-volume columns. Stage busy time is summed from telemetry spans
// (net/send covers each frame's queue-plus-write tenure, so it can exceed
// wall time when transfers overlap); the per-stage minimum across probes
// drops scheduler noise, as in Measure.
func MeasureDist(s DistScenario) Result {
	r := testing.Benchmark(func(b *testing.B) { BenchDist(b, s) })
	res := Result{
		Name:        s.Name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		PairsPerSec: r.Extra["pairs/s"],
	}
	if r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	for probe := 0; probe < 3; probe++ {
		o := s.Build()
		o.Telemetry = obs.NewTelemetry()
		if _, err := dist.RunLoopback(o); err != nil {
			break
		}
		busy := map[string]int64{}
		for _, sp := range o.Telemetry.Spans.Spans() {
			busy[sp.Stage] += int64((sp.End - sp.Start) * 1e9)
		}
		// The net/send split: queue residence vs socket write, published by
		// the worker ledgers as counters rather than spans.
		for stage, name := range map[string]string{
			"net/queue": "dist_net_queue_ns_total",
			"net/write": "dist_net_write_ns_total",
		} {
			if v := o.Telemetry.Metrics.Counter(name).Value(); v > 0 {
				busy[stage] = v
			}
		}
		if res.StageNs == nil {
			res.StageNs = make(map[string]int64, len(busy))
		}
		for stage, ns := range busy {
			if cur, ok := res.StageNs[stage]; !ok || ns < cur {
				res.StageNs[stage] = ns
			}
		}
		res.ShuffleBytes = o.Telemetry.Metrics.Counter("dist_shuffle_bytes_total").Value()
		res.ReadLocalBytes = o.Telemetry.Metrics.Counter("dist_read_local_bytes_total").Value()
		res.ReadRemoteBytes = o.Telemetry.Metrics.Counter("dist_read_remote_bytes_total").Value()
		res.SpillFiles = int(o.Telemetry.Metrics.Counter("conserv_spill_files_total").Value())
		res.SpillBytes = o.Telemetry.Metrics.Counter("conserv_spill_stored_bytes_total").Value()
	}
	return res
}
