package nativebench

import "testing"

func guardBase() []Result {
	return []Result{
		{
			Name:        "wc-hash",
			AllocsPerOp: 100000,
			StageNs:     map[string]int64{"map/kernel": 100e6, "merge": 50e6, "reduce": 1e6},
		},
		{Name: "terasort", AllocsPerOp: 500, StageNs: map[string]int64{"merge": 10e6}},
	}
}

func TestGuardPassesWithinBudget(t *testing.T) {
	fresh := []Result{
		{
			Name:        "wc-hash",
			AllocsPerOp: 120000, // +20%, inside the 25% alloc budget
			// merge +40%: past the alloc budget but inside the wider 50%
			// stage budget — stage time gets noise headroom, allocs don't.
			StageNs: map[string]int64{"map/kernel": 110e6, "merge": 70e6, "reduce": 9e6},
		},
		{Name: "terasort", AllocsPerOp: 5000, StageNs: map[string]int64{"merge": 12e6}},
	}
	if regs := CompareResults(guardBase(), fresh, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
}

func TestGuardFlagsAllocRegression(t *testing.T) {
	fresh := []Result{
		{Name: "wc-hash", AllocsPerOp: 130000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}},
		{Name: "terasort", StageNs: map[string]int64{"merge": 10e6}},
	}
	regs := CompareResults(guardBase(), fresh, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" || regs[0].Scenario != "wc-hash" {
		t.Fatalf("expected one wc-hash allocs_per_op regression, got %v", regs)
	}
}

func TestGuardFlagsStageRegression(t *testing.T) {
	fresh := []Result{
		{
			Name:        "wc-hash",
			AllocsPerOp: 100000,
			// merge blew up 2x; reduce also "blew up" but its 1ms baseline is
			// under the noise floor and must be ignored.
			StageNs: map[string]int64{"map/kernel": 100e6, "merge": 100e6, "reduce": 10e6},
		},
		{Name: "terasort", StageNs: map[string]int64{"merge": 10e6}},
	}
	regs := CompareResults(guardBase(), fresh, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "stage_ns/merge" {
		t.Fatalf("expected one stage_ns/merge regression, got %v", regs)
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Fatalf("ratio = %.2f, want ~2.0", regs[0].Ratio)
	}
}

func TestGuardFlagsMissingScenario(t *testing.T) {
	fresh := []Result{
		{Name: "wc-hash", AllocsPerOp: 100000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}},
	}
	regs := CompareResults(guardBase(), fresh, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Scenario != "terasort" {
		t.Fatalf("expected terasort flagged missing, got %v", regs)
	}
}

func TestGuardIgnoresTinyAllocBase(t *testing.T) {
	// terasort's 500-alloc baseline is under MinAllocs: even a 10x jump must
	// not trip the guard (relative noise on tiny counts).
	fresh := []Result{
		{Name: "wc-hash", AllocsPerOp: 100000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}},
		{Name: "terasort", AllocsPerOp: 5000, StageNs: map[string]int64{"merge": 10e6}},
	}
	if regs := CompareResults(guardBase(), fresh, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
}

func TestGuardCustomRatio(t *testing.T) {
	fresh := []Result{
		{Name: "wc-hash", AllocsPerOp: 110000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}},
		{Name: "terasort", StageNs: map[string]int64{"merge": 10e6}},
	}
	if regs := CompareResults(guardBase(), fresh, GuardOpts{MaxRatio: 1.05}); len(regs) != 1 {
		t.Fatalf("expected the tighter 5%% budget to flag +10%% allocs, got %v", regs)
	}
}

func TestGuardAllocOverride(t *testing.T) {
	// +20% allocs on wc-hash: inside the default 25% budget, outside a
	// per-scenario 10% override. terasort keeps the default.
	fresh := []Result{
		{Name: "wc-hash", AllocsPerOp: 120000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}},
		{Name: "terasort", StageNs: map[string]int64{"merge": 10e6}},
	}
	opts := GuardOpts{AllocOverride: map[string]float64{"wc-hash": 1.10}}
	regs := CompareResults(guardBase(), fresh, opts)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" || regs[0].Scenario != "wc-hash" {
		t.Fatalf("expected the 10%% override to flag +20%% allocs, got %v", regs)
	}
}

func TestGuardFlagsShuffleBytes(t *testing.T) {
	base := []Result{{Name: "dist-wc", ShuffleBytes: 100000, StageNs: map[string]int64{"net/send": 50e6}}}
	within := []Result{{Name: "dist-wc", ShuffleBytes: 105000, StageNs: map[string]int64{"net/send": 50e6}}}
	if regs := CompareResults(base, within, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("+5%% shuffle bytes is inside the 10%% budget, got %v", regs)
	}
	fatter := []Result{{Name: "dist-wc", ShuffleBytes: 120000, StageNs: map[string]int64{"net/send": 50e6}}}
	regs := CompareResults(base, fatter, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "shuffle_bytes" {
		t.Fatalf("expected +20%% shuffle bytes flagged, got %v", regs)
	}
	// A scenario with no baseline shuffle volume (native rows) is never
	// gated on it.
	nonDist := []Result{{Name: "wc-hash", AllocsPerOp: 100000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}, ShuffleBytes: 999999}}
	if regs := CompareResults(guardBase()[:1], nonDist, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("native row gated on shuffle_bytes: %v", regs)
	}
}

func TestGuardFlagsLocalityAndSpill(t *testing.T) {
	base := []Result{{Name: "dist-wc-ooc", ReadLocalBytes: 80000, ReadRemoteBytes: 20000, SpillBytes: 50000}}
	within := []Result{{Name: "dist-wc-ooc", ReadLocalBytes: 60000, ReadRemoteBytes: 40000, SpillBytes: 55000}}
	if regs := CompareResults(base, within, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("60%% local and +10%% spill are inside budget, got %v", regs)
	}
	// Locality collapse below the 50% floor is flagged even though the run
	// still completed.
	cold := []Result{{Name: "dist-wc-ooc", ReadLocalBytes: 30000, ReadRemoteBytes: 70000, SpillBytes: 50000}}
	regs := CompareResults(base, cold, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "read_local_bytes" {
		t.Fatalf("expected locality floor violation flagged, got %v", regs)
	}
	// Spilling nothing means the out-of-core path stopped engaging; spilling
	// far more means eviction went wild. Both gate.
	for _, spill := range []int64{0, 100000} {
		fresh := []Result{{Name: "dist-wc-ooc", ReadLocalBytes: 80000, ReadRemoteBytes: 20000, SpillBytes: spill}}
		regs := CompareResults(base, fresh, GuardOpts{})
		if len(regs) != 1 || regs[0].Metric != "spill_bytes" {
			t.Fatalf("spill %d: expected spill_bytes flagged, got %v", spill, regs)
		}
	}
	// Rows without baseline block-store reads (plain dist, native) are never
	// gated on locality.
	plain := []Result{{Name: "wc-hash", AllocsPerOp: 100000, StageNs: map[string]int64{"map/kernel": 100e6, "merge": 50e6}, ReadLocalBytes: 0, ReadRemoteBytes: 999}}
	if regs := CompareResults(guardBase()[:1], plain, GuardOpts{}); len(regs) != 0 {
		t.Fatalf("non-blockstore row gated on locality: %v", regs)
	}
}

func TestGuardStageOverride(t *testing.T) {
	// A per-scenario stage override widens the budget for that scenario
	// alone: a 2x swing passes the overridden dist row but still gates an
	// identical swing elsewhere, and blowing through even the wide budget
	// gates the overridden row too.
	base := []Result{
		{Name: "dist-wc-3w", StageNs: map[string]int64{"net/send": 100e6}},
		{Name: "dist-wc", StageNs: map[string]int64{"net/send": 100e6}},
	}
	fresh := []Result{
		{Name: "dist-wc-3w", StageNs: map[string]int64{"net/send": 190e6}},
		{Name: "dist-wc", StageNs: map[string]int64{"net/send": 190e6}},
	}
	opts := GuardOpts{StageOverride: map[string]float64{"dist-wc-3w": 2.0}}
	regs := CompareResults(base, fresh, opts)
	if len(regs) != 1 || regs[0].Scenario != "dist-wc" || regs[0].Metric != "stage_ns/net/send" {
		t.Fatalf("expected only the non-overridden row flagged, got %v", regs)
	}
	blown := []Result{
		{Name: "dist-wc-3w", StageNs: map[string]int64{"net/send": 250e6}},
		{Name: "dist-wc", StageNs: map[string]int64{"net/send": 100e6}},
	}
	regs = CompareResults(base, blown, opts)
	if len(regs) != 1 || regs[0].Scenario != "dist-wc-3w" {
		t.Fatalf("expected overridden row flagged past its wide budget, got %v", regs)
	}
}

func TestGuardIgnoresQueueStage(t *testing.T) {
	// net/queue is scheduler contention, not pipeline work: a 10x swing must
	// never gate, while a real stage regression alongside it still does.
	base := []Result{{Name: "dist-wc", StageNs: map[string]int64{"net/queue": 50e6, "net/send": 50e6}}}
	fresh := []Result{{Name: "dist-wc", StageNs: map[string]int64{"net/queue": 500e6, "net/send": 110e6}}}
	regs := CompareResults(base, fresh, GuardOpts{})
	if len(regs) != 1 || regs[0].Metric != "stage_ns/net/send" {
		t.Fatalf("expected only net/send flagged, got %v", regs)
	}
}
