//go:build !race

package nativebench

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
