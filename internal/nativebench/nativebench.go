// Package nativebench pins the wall-clock benchmark scenarios for the
// native runtime. The same scenario table backs the repo's
// `go test -bench Native` benchmarks (bench_native_test.go) and the
// `cmd/nativebench` binary that writes BENCH_native.json, so the tracked
// trajectory and the interactive numbers can never drift apart.
//
// Sizes and worker counts are pinned (not GOMAXPROCS-relative) so numbers
// are comparable across machines and across PRs.
package nativebench

import (
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/native"
	"glasswing/internal/obs"
	"glasswing/internal/workload"
)

// Scenario is one pinned native-runtime workload: an application, a
// deterministic dataset, and a fixed Config.
type Scenario struct {
	Name string
	// Build constructs the app, its input blocks, and the run config.
	// Construction cost (dataset synthesis) is excluded from timing.
	Build func() (*core.App, [][]byte, native.Config)
}

// pinned worker geometry, deliberately independent of GOMAXPROCS.
func pinnedCfg() native.Config {
	return native.Config{
		KernelWorkers:    4,
		PartitionThreads: 2,
		Partitions:       8,
		Buffering:        2,
	}
}

// Scenarios returns the tracked scenario table. Names are stable
// identifiers — BENCH_native.json rows key on them.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// The allocation-critical path: every emit goes through the
			// hash collector, no combiner, so value chains survive to the
			// partitioner.
			Name: "wc-hash",
			Build: func() (*core.App, [][]byte, native.Config) {
				data, _ := apps.WCData(11, 1<<20, 5000)
				cfg := pinnedCfg()
				cfg.Collector = core.HashTable
				return apps.WordCount(), dfs.SplitLines(data, 64<<10), cfg
			},
		},
		{
			Name: "wc-hash-combine",
			Build: func() (*core.App, [][]byte, native.Config) {
				data, _ := apps.WCData(11, 1<<20, 5000)
				cfg := pinnedCfg()
				cfg.Collector = core.HashTable
				cfg.UseCombiner = true
				return apps.WordCount(), dfs.SplitLines(data, 64<<10), cfg
			},
		},
		{
			Name: "wc-pool",
			Build: func() (*core.App, [][]byte, native.Config) {
				data, _ := apps.WCData(11, 1<<20, 5000)
				cfg := pinnedCfg()
				cfg.Collector = core.BufferPool
				return apps.WordCount(), dfs.SplitLines(data, 64<<10), cfg
			},
		},
		{
			// Spill-pressure variant: a small cache threshold forces the
			// partition store through its spill/readback machinery.
			Name: "wc-spill",
			Build: func() (*core.App, [][]byte, native.Config) {
				data, _ := apps.WCData(11, 1<<20, 5000)
				cfg := pinnedCfg()
				cfg.Collector = core.HashTable
				cfg.UseCombiner = true
				cfg.CacheThreshold = 128 << 10
				return apps.WordCount(), dfs.SplitLines(data, 64<<10), cfg
			},
		},
		{
			Name: "terasort",
			Build: func() (*core.App, [][]byte, native.Config) {
				data := apps.TSData(12, 20000)
				cfg := pinnedCfg()
				cfg.Collector = core.BufferPool
				cfg.Partitioner = apps.TeraPartitioner(data, 32)
				return apps.TeraSort(), dfs.SplitFixed(data, 64<<10, workload.TeraRecordSize), cfg
			},
		},
		{
			Name: "kmeans",
			Build: func() (*core.App, [][]byte, native.Config) {
				data, spec := apps.KMData(13, 20000, 16, 4)
				cfg := pinnedCfg()
				cfg.Collector = core.HashTable
				cfg.UseCombiner = true
				return apps.KMeans(spec), dfs.SplitFixed(data, 16<<10, int64(spec.Dim*4)), cfg
			},
		},
	}
}

// Bench runs one scenario under a testing.B, reporting allocations and a
// pairs/s throughput metric (intermediate pairs produced per wall second).
func Bench(b *testing.B, s Scenario) {
	app, blocks, cfg := s.Build()
	var in int64
	for _, blk := range blocks {
		in += int64(len(blk))
	}
	b.SetBytes(in)
	b.ReportAllocs()
	var pairs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := native.Run(app, blocks, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pairs += int64(res.IntermediatePairs)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pairs)/sec, "pairs/s")
	}
}

// Result is one measured scenario, the row schema of BENCH_native.json.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`

	// Telemetry of one instrumented run after the timed iterations (the
	// benchmark loop itself runs uninstrumented): per-stage busy
	// nanoseconds and spill activity.
	StageNs    map[string]int64 `json:"stage_ns,omitempty"`
	SpillFiles int              `json:"spill_files,omitempty"`
	SpillBytes int64            `json:"spill_bytes,omitempty"`
	// ShuffleBytes is the network shuffle volume of one instrumented run
	// (dist scenarios only): bytes of kv runs enqueued to remote peers.
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// ReadLocalBytes / ReadRemoteBytes split one instrumented run's input
	// reads by locality (dist block-store scenarios only): the hit ratio
	// local/(local+remote) is a guarded metric.
	ReadLocalBytes  int64 `json:"read_local_bytes,omitempty"`
	ReadRemoteBytes int64 `json:"read_remote_bytes,omitempty"`
}

// Measure benchmarks one scenario via testing.Benchmark and folds the
// outcome into a Result, then does extra instrumented runs for the
// stage/spill telemetry columns.
//
// The probe runs serialize the pipeline (one kernel worker, one partition
// thread, buffering 1): with concurrent stages, a span's wall time absorbs
// whatever other goroutines the scheduler interleaves into it — on a
// GOMAXPROCS-capped host the same stage swings several-fold between
// processes, useless for a regression gate. Serialized, a span covers only
// its own stage's work, so stage_ns tracks per-stage work inflation
// stably; concurrent wall time is what ns_per_op (the timed loop, pinned
// config) is for. The per-stage minimum across probes drops residual
// preemption noise — interference only ever inflates busy time.
func Measure(s Scenario) Result {
	r := testing.Benchmark(func(b *testing.B) { Bench(b, s) })
	res := Result{
		Name:        s.Name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		PairsPerSec: r.Extra["pairs/s"],
	}
	if r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	app, blocks, cfg := s.Build()
	cfg.KernelWorkers = 1
	cfg.PartitionThreads = 1
	cfg.Buffering = 1
	for probe := 0; probe < 5; probe++ {
		cfg.Telemetry = obs.NewTelemetry()
		run, err := native.Run(app, blocks, cfg)
		if err != nil {
			break
		}
		if res.StageNs == nil {
			res.StageNs = make(map[string]int64, len(run.Stages))
		}
		for stage, d := range run.Stages {
			if cur, ok := res.StageNs[stage]; !ok || int64(d) < cur {
				res.StageNs[stage] = int64(d)
			}
		}
		res.SpillFiles = run.SpillFiles
		res.SpillBytes = run.SpillBytes
	}
	return res
}
