package nativebench

import (
	"fmt"
	"sort"
)

// Regression is one metric that moved past the guard threshold between the
// committed baseline and a fresh measurement.
type Regression struct {
	Scenario string
	Metric   string // "allocs_per_op" or "stage_ns/<stage>"
	Base     int64
	Fresh    int64
	Ratio    float64 // Fresh / Base
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %d -> %d (%.2fx)", r.Scenario, r.Metric, r.Base, r.Fresh, r.Ratio)
}

// GuardOpts tunes the regression guard.
type GuardOpts struct {
	// MaxRatio is the allowed fresh/base ratio for allocs_per_op; above it
	// the metric is flagged (0 = the default 1.25, i.e. a 25% regression
	// budget — allocation counts are deterministic enough for a tight gate).
	MaxRatio float64
	// StageMaxRatio is the allowed fresh/base ratio for per-stage busy time
	// (0 = the default 1.5). Stage wall time carries ±30-40% run-to-run
	// noise on shared or CPU-capped hosts even with serialized minimum-of-5
	// probes; a tighter budget makes the gate flap, and the regressions
	// worth blocking (lost sort efficiency, accidentally quadratic work,
	// broken spill batching) show up as multiples, not +30%. Tighten via
	// the flag on quiet dedicated hardware.
	StageMaxRatio float64
	// MinStageNs ignores stages whose baseline busy time is below this floor:
	// short stages are dominated by scheduler noise — even the minimum over
	// several probe runs swings ~30% below ~10ms — and a 25% budget on them
	// would make the guard flap (0 = the default 10ms).
	MinStageNs int64
	// MinAllocs ignores scenarios whose baseline allocation count is below
	// this floor (0 = the default 1000).
	MinAllocs int64
	// AllocOverride tightens (or loosens) the allocs_per_op budget for
	// individual scenarios by name. Scenarios whose hot path is fully
	// batch-allocated sit at a few thousand large allocations per op, where
	// even one stray per-record allocation site multiplies the count — a
	// tighter gate catches it the day it lands.
	AllocOverride map[string]float64
	// StageOverride widens (or tightens) the stage budget for individual
	// scenarios by name. The default budget assumes the native serialized
	// min-of-5 probes; dist scenarios can't serialize — their spans cover
	// concurrent wall time on a live loopback cluster (and disk I/O for
	// the out-of-core row), which swings ~2x run to run. A wider budget
	// there still catches the regressions worth blocking (lost overlap,
	// accidentally quadratic work), which show up as large multiples.
	StageOverride map[string]float64
	// ShuffleMaxRatio is the allowed fresh/base shuffle_bytes ratio for
	// scenarios whose baseline records network shuffle volume (0 = the
	// default 1.1). Wire volume is a function of the dataset and the frame
	// coalescing, both deterministic up to flush-timing boundary effects of
	// a few bytes per frame, so the budget is tight: a fatter wire encoding
	// or broken coalescing shows up immediately.
	ShuffleMaxRatio float64
	// MinLocalRatio is the locality-hit floor for scenarios whose baseline
	// records block-store reads (0 = the default 0.5): a fresh run reading
	// less than this fraction of its input locally means the affinity deal
	// or the placement wheel broke, which wall clock alone won't catch on
	// a loopback host where "remote" is just another socket.
	MinLocalRatio float64
	// SpillMaxRatio is the allowed fresh/base spill_bytes ratio for
	// scenarios whose baseline spills (0 = the default 1.25). The spilled
	// volume is a function of the dataset and the eviction policy; a fresh
	// run spilling nothing at all is also flagged — the out-of-core path
	// silently stopped engaging.
	SpillMaxRatio float64
}

func (o GuardOpts) withDefaults() GuardOpts {
	if o.MaxRatio <= 0 {
		o.MaxRatio = 1.25
	}
	if o.StageMaxRatio <= 0 {
		o.StageMaxRatio = 1.5
	}
	if o.MinStageNs <= 0 {
		o.MinStageNs = 10e6
	}
	if o.MinAllocs <= 0 {
		o.MinAllocs = 1000
	}
	if o.ShuffleMaxRatio <= 0 {
		o.ShuffleMaxRatio = 1.1
	}
	if o.MinLocalRatio <= 0 {
		o.MinLocalRatio = 0.5
	}
	if o.SpillMaxRatio <= 0 {
		o.SpillMaxRatio = 1.25
	}
	return o
}

// CompareResults diffs fresh measurements against the committed baseline and
// returns every guarded metric that regressed past the budget. Guarded
// metrics are allocs_per_op (deterministic enough for a hard gate) and the
// per-stage busy nanoseconds; raw ns_per_op is deliberately not gated — end
// to-end wall time on shared CI hardware is too noisy for a hard threshold,
// and a real slowdown surfaces in the stage totals anyway. A scenario present
// in the baseline but missing from the fresh report is itself a regression
// (the benchmark silently stopped covering it).
func CompareResults(base, fresh []Result, o GuardOpts) []Regression {
	o = o.withDefaults()
	freshByName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		freshByName[r.Name] = r
	}
	var regs []Regression
	for _, b := range base {
		f, ok := freshByName[b.Name]
		if !ok {
			regs = append(regs, Regression{Scenario: b.Name, Metric: "missing", Ratio: 0})
			continue
		}
		if b.AllocsPerOp >= o.MinAllocs {
			budget := o.MaxRatio
			if over, ok := o.AllocOverride[b.Name]; ok && over > 0 {
				budget = over
			}
			if ratio := float64(f.AllocsPerOp) / float64(b.AllocsPerOp); ratio > budget {
				regs = append(regs, Regression{
					Scenario: b.Name, Metric: "allocs_per_op",
					Base: b.AllocsPerOp, Fresh: f.AllocsPerOp, Ratio: ratio,
				})
			}
		}
		if b.ShuffleBytes > 0 {
			if ratio := float64(f.ShuffleBytes) / float64(b.ShuffleBytes); ratio > o.ShuffleMaxRatio {
				regs = append(regs, Regression{
					Scenario: b.Name, Metric: "shuffle_bytes",
					Base: b.ShuffleBytes, Fresh: f.ShuffleBytes, Ratio: ratio,
				})
			}
		}
		if b.ReadLocalBytes+b.ReadRemoteBytes > 0 {
			// The hit-ratio floor compares the fresh run against the absolute
			// MinLocalRatio, not the baseline's ratio: locality legitimately
			// jitters with work stealing, but falling below half means the
			// placement machinery is off.
			read := f.ReadLocalBytes + f.ReadRemoteBytes
			if read == 0 || float64(f.ReadLocalBytes)/float64(read) < o.MinLocalRatio {
				regs = append(regs, Regression{
					Scenario: b.Name, Metric: "read_local_bytes",
					Base: b.ReadLocalBytes, Fresh: f.ReadLocalBytes,
					Ratio: float64(f.ReadLocalBytes) / float64(max(b.ReadLocalBytes, 1)),
				})
			}
		}
		if b.SpillBytes > 0 {
			ratio := float64(f.SpillBytes) / float64(b.SpillBytes)
			if f.SpillBytes == 0 || ratio > o.SpillMaxRatio {
				regs = append(regs, Regression{
					Scenario: b.Name, Metric: "spill_bytes",
					Base: b.SpillBytes, Fresh: f.SpillBytes, Ratio: ratio,
				})
			}
		}
		stageBudget := o.StageMaxRatio
		if over, ok := o.StageOverride[b.Name]; ok && over > 0 {
			stageBudget = over
		}
		stages := make([]string, 0, len(b.StageNs))
		for stage := range b.StageNs {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			bns := b.StageNs[stage]
			if bns < o.MinStageNs {
				continue
			}
			if stage == "net/queue" {
				// Queue residence is scheduler contention, not pipeline work:
				// it collapses when the write pump gets its own core and
				// balloons on a saturated one. Tracked in the report, never
				// gated.
				continue
			}
			if ratio := float64(f.StageNs[stage]) / float64(bns); ratio > stageBudget {
				regs = append(regs, Regression{
					Scenario: b.Name, Metric: "stage_ns/" + stage,
					Base: bns, Fresh: f.StageNs[stage], Ratio: ratio,
				})
			}
		}
	}
	return regs
}
