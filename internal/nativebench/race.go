//go:build race

package nativebench

// RaceEnabled reports whether the race detector is compiled in. Throughput
// floors are meaningless under its 2-10x slowdown, so perf-asserting tests
// skip themselves when it is on.
const RaceEnabled = true
