// Package gpmr models GPMR (Stuart & Owens), the CUDA cluster MapReduce the
// paper compares against for the compute-bound applications. The properties
// the comparison rests on (§IV-A2, Fig 3):
//
//   - GPU-only: every kernel runs on the accelerator; no CPU fallback.
//   - No I/O overlap: a node first reads ALL of its input from the local
//     file system, then starts its computation pipeline, so total time is
//     the SUM of I/O and compute where Glasswing pays only the MAX.
//   - In-core intermediate data: everything must fit in host memory; runs
//     exceeding it fail (the limitation the paper calls out in §II).
//   - The published experiment layout: input fully replicated on every
//     node's local file system.
//   - The MM application computes intermediate submatrices but has no
//     reduce; it generates input on the fly and excludes generation time.
//
// Applications are the same core.App kernels used by Glasswing and Hadoop,
// so outputs remain comparable.
package gpmr

import (
	"fmt"
	"sort"

	"glasswing/internal/cl"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// hostPrepPerByte is the single-threaded host-side cost (ops/byte) of
// converting records into GPU-friendly buffers inside GPMR's compute
// pipeline. GPMR's host code is research-grade and single-threaded;
// calibrated so that, for the I/O-dominant 16-center KM of Fig 3(e),
// "reading the data from the nodes local disks takes twice as long as the
// computation" (§IV-A2).
const hostPrepPerByte = 5.0

// Config controls a GPMR run.
type Config struct {
	Input []string
	// PartialReduce runs the app combiner on-device per chunk (GPMR's
	// partial reduction).
	PartialReduce bool
	// GenerateInput skips file reading entirely: input blocks are
	// produced on the fly and generation time is excluded from the
	// reported numbers, as GPMR's MM does.
	GenerateInput bool
	// Partitioner overrides hash partitioning across nodes.
	Partitioner func(key []byte, n int) int
	// KernelThreads is the map kernel global size (0 = 4x device lanes).
	KernelThreads int
	// KernelInefficiency multiplies map-kernel compute cost (default 1).
	// The paper attributes Glasswing's MM win over GPMR to "the Glasswing
	// GPU kernel [being] more carefully performance-engineered" (§IV-A2);
	// the MM experiment models GPMR's naive kernel with this factor.
	KernelInefficiency float64
}

// Runtime binds GPMR to a cluster. Every node must carry an accelerator.
type Runtime struct {
	Cluster *hw.Cluster
	FS      dfs.FS
}

// Result reports a GPMR run. The paper's Fig 3(e) plots both lines: total
// time including I/O, and the computation pipeline alone.
type Result struct {
	App     string
	Nodes   int
	JobTime float64 // includes input I/O
	IOTime  float64 // the blocking up-front read (max over nodes)
	Compute float64 // JobTime - IOTime

	outputs map[int][]kv.Pair
}

// Output returns final pairs in node order.
func (r *Result) Output() []kv.Pair {
	ids := make([]int, 0, len(r.outputs))
	for id := range r.outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []kv.Pair
	for _, id := range ids {
		out = append(out, r.outputs[id]...)
	}
	return out
}

// Run executes app under GPMR's model and returns the result.
func Run(rt *Runtime, app *core.App, cfg Config) (*Result, error) {
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("gpmr: app %q needs Parse and Map", app.Name)
	}
	if len(cfg.Input) == 0 {
		return nil, fmt.Errorf("gpmr: no input files")
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = kv.Partition
	}
	if cfg.KernelInefficiency <= 0 {
		cfg.KernelInefficiency = 1
	}
	nNodes := len(rt.Cluster.Nodes)
	ctxs := make([]*cl.Context, nNodes)
	for i, n := range rt.Cluster.Nodes {
		gpu := n.Accelerator()
		if gpu == nil {
			return nil, fmt.Errorf("gpmr: node %d has no GPU — GPMR is GPU-only", i)
		}
		ctxs[i] = cl.NewContext(gpu)
	}

	// Static assignment: block i of every file goes to node i % nNodes
	// (the data is fully replicated locally, so any assignment is local).
	assigned := make([][]*dfs.Block, nNodes)
	for _, name := range cfg.Input {
		f, err := rt.FS.Open(name)
		if err != nil {
			return nil, err
		}
		for idx, b := range f.Blocks {
			assigned[idx%nNodes] = append(assigned[idx%nNodes], b)
		}
	}

	env := rt.Cluster.Env
	res := &Result{App: app.Name, Nodes: nNodes, outputs: make(map[int][]kv.Pair)}
	// exchange[dst] collects the pairs pushed to dst during the exchange.
	exchange := make([][]kv.Pair, nNodes)
	ioTimes := make([]float64, nNodes)

	env.Spawn("gpmr-master", func(p *sim.Proc) {
		start := p.Now()

		// Phase 1+2 per node: blocking read of all input, then the chunked
		// GPU map pipeline with partial reduction.
		var phase1 []*sim.Proc
		for ni := range rt.Cluster.Nodes {
			ni := ni
			pr := env.Spawn(fmt.Sprintf("gpmr-node%03d", ni), func(q *sim.Proc) {
				node := rt.Cluster.Nodes[ni]
				ctx := ctxs[ni]
				// Read ALL input first — no overlap with compute.
				t0 := q.Now()
				if !cfg.GenerateInput {
					for _, b := range assigned[ni] {
						node.Disk.Read(q, int64(len(b.Data)))
					}
				}
				ioTimes[ni] = q.Now() - t0

				// Compute pipeline: chunk = block.
				var interBytes int64
				var partials []kv.Pair
				for _, b := range assigned[ni] {
					recs := app.Parse(b.Data)
					node.HostWork(q, (app.ParseCostPerByte+hostPrepPerByte)*float64(len(b.Data)), 1)
					ctx.EnqueueWrite(q, int64(len(b.Data)))
					pairs, st := execMap(app, recs, int64(len(b.Data)), cfg, ctx)
					st.Ops *= cfg.KernelInefficiency
					threads := cfg.KernelThreads
					if threads <= 0 {
						threads = 4 * ctx.Device.Profile.HWThreads
					}
					ctx.Launch(q, threads, st)
					if cfg.PartialReduce && app.Combine != nil {
						pairs = partialReduce(app, pairs, ctx, q)
					}
					var vol int64
					for _, pr := range pairs {
						vol += pr.Size()
					}
					ctx.EnqueueRead(q, vol)
					interBytes += vol
					partials = append(partials, pairs...)
					if interBytes > node.MemBytes {
						panic(fmt.Sprintf("gpmr: intermediate data (%d bytes) exceeds host memory on node %d — GPMR cannot run out-of-core", interBytes, ni))
					}
				}

				// Exchange: partition across nodes, push over the network.
				buckets := make([][]kv.Pair, nNodes)
				for _, pr := range partials {
					d := cfg.Partitioner(pr.Key, nNodes)
					buckets[d] = append(buckets[d], pr)
				}
				for d, bucket := range buckets {
					if len(bucket) == 0 {
						continue
					}
					var bytes int64
					for _, pr := range bucket {
						bytes += pr.Size()
					}
					if d != ni {
						rt.Cluster.Transfer(q, node, rt.Cluster.Nodes[d], bytes)
					}
					exchange[d] = append(exchange[d], bucket...)
				}
			})
			phase1 = append(phase1, pr)
		}
		for _, pr := range phase1 {
			pr.Done().Wait(p)
		}

		// Phase 3 per node: GPU sort + reduce over received pairs.
		var phase2 []*sim.Proc
		for ni := range rt.Cluster.Nodes {
			ni := ni
			pr := env.Spawn(fmt.Sprintf("gpmr-reduce%03d", ni), func(q *sim.Proc) {
				ctx := ctxs[ni]
				pairs := exchange[ni]
				if len(pairs) == 0 {
					res.outputs[ni] = nil
					return
				}
				var buf kv.Buffer
				var bytes int64
				for _, pr := range pairs {
					buf.Add(pr)
					bytes += pr.Size()
				}
				ctx.EnqueueWrite(q, bytes)
				buf.Sort()
				// GPU bitonic-style sort charge.
				ctx.Launch(q, 4*ctx.Device.Profile.HWThreads, cl.Stats{
					Ops:   sortOpsGPU(buf.Len()),
					Bytes: 2 * float64(bytes),
				})
				out := reduceAll(app, buf.Pairs, ctx, q)
				var vol int64
				for _, pr := range out {
					vol += pr.Size()
				}
				ctx.EnqueueRead(q, vol)
				res.outputs[ni] = out
			})
			phase2 = append(phase2, pr)
		}
		for _, pr := range phase2 {
			pr.Done().Wait(p)
		}
		res.JobTime = p.Now() - start
	})
	env.Run()

	for _, t := range ioTimes {
		res.IOTime = max(res.IOTime, t)
	}
	res.Compute = res.JobTime - res.IOTime
	return res, nil
}

// execMap runs the map kernel over records, returning pairs and the launch
// stats.
func execMap(app *core.App, recs []kv.Pair, bytes int64, cfg Config, ctx *cl.Context) ([]kv.Pair, cl.Stats) {
	var pairs []kv.Pair
	emits := 0
	emit := func(k, v []byte) {
		pairs = append(pairs, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		emits++
	}
	threads := cfg.KernelThreads
	if threads <= 0 {
		threads = 4 * ctx.Device.Profile.HWThreads
	}
	cl.Range(len(recs), threads, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			app.Map(recs[i], emit)
		}
	})
	st := cl.Stats{
		Ops: app.MapCost.OpsPerRecord*float64(len(recs)) +
			app.MapCost.OpsPerByte*float64(bytes) +
			app.MapCost.OpsPerEmit*float64(emits),
		AtomicOps: float64(emits),
		Bytes:     float64(bytes),
	}
	return pairs, st
}

// partialReduce runs the combiner on-device over one chunk's pairs.
func partialReduce(app *core.App, pairs []kv.Pair, ctx *cl.Context, q *sim.Proc) []kv.Pair {
	var buf kv.Buffer
	for _, pr := range pairs {
		buf.Add(pr)
	}
	buf.Sort()
	var out []kv.Pair
	var ops float64
	gi := kv.NewGroupIter(kv.NewSliceIter(buf.Pairs))
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		ops += app.CombineCost.OpsPerRecord + app.CombineCost.OpsPerValue*float64(len(g.Values))
		app.Combine(g.Key, g.Values, func(k, v []byte) {
			ops += app.CombineCost.OpsPerEmit
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
	ctx.Launch(q, 4*ctx.Device.Profile.HWThreads, cl.Stats{
		Ops:   ops + sortOpsGPU(buf.Len()),
		Bytes: 2 * float64(buf.Bytes()),
	})
	return out
}

// reduceAll runs the reduce kernel over sorted pairs (identity when the app
// has no reduce, like MM).
func reduceAll(app *core.App, pairs []kv.Pair, ctx *cl.Context, q *sim.Proc) []kv.Pair {
	if app.Reduce == nil {
		return pairs
	}
	var out []kv.Pair
	var ops float64
	var bytes float64
	gi := kv.NewGroupIter(kv.NewSliceIter(pairs))
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		ops += app.ReduceCost.OpsPerRecord +
			app.ReduceCost.OpsPerValue*float64(len(g.Values)) +
			app.ReduceCost.OpsPerByte*float64(g.Bytes())
		bytes += float64(g.Bytes())
		app.Reduce(g.Key, g.Values, func(k, v []byte) {
			ops += app.ReduceCost.OpsPerEmit
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
	ctx.Launch(q, 4*ctx.Device.Profile.HWThreads, cl.Stats{Ops: ops, Bytes: bytes})
	return out
}

// sortOpsGPU approximates a device sort of n pairs.
func sortOpsGPU(n int) float64 {
	if n < 2 {
		return 0
	}
	f := float64(n)
	// Bitonic networks are n*log^2(n); cheap per step.
	l := log2(f)
	return f * l * l * 4
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}
