package gpmr

import (
	"strconv"
	"strings"
	"testing"

	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

func wcApp() *core.App {
	sum := func(key []byte, values [][]byte, emit func(k, v []byte)) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
	}
	return &core.App{
		Name: "wc",
		Parse: func(block []byte) []kv.Pair {
			var recs []kv.Pair
			for _, line := range strings.Split(string(block), "\n") {
				if line != "" {
					recs = append(recs, kv.Pair{Value: []byte(line)})
				}
			}
			return recs
		},
		ParseCostPerByte: 1,
		Map: func(rec kv.Pair, emit func(k, v []byte)) {
			for _, w := range strings.Fields(string(rec.Value)) {
				emit([]byte(w), []byte("1"))
			}
		},
		MapCost:     core.CostModel{OpsPerRecord: 50, OpsPerByte: 8, OpsPerEmit: 20},
		Combine:     sum,
		CombineCost: core.CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
		Reduce:      sum,
		ReduceCost:  core.CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
	}
}

func setup(nodes, lines int, gpu bool) (*Runtime, map[string]int) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, nodes, hw.Type1(gpu))
	l := dfs.NewLocal(cluster, 4<<10)
	var sb strings.Builder
	want := map[string]int{}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < lines; i++ {
		w := words[i%len(words)]
		sb.WriteString(w + " " + w + "\n")
		want[w] += 2
	}
	l.PreloadBlocks("in", dfs.SplitLines([]byte(sb.String()), 4<<10), 0)
	return &Runtime{Cluster: cluster, FS: l}, want
}

func TestRequiresGPU(t *testing.T) {
	rt, _ := setup(2, 100, false)
	if _, err := Run(rt, wcApp(), Config{Input: []string{"in"}}); err == nil {
		t.Fatal("GPMR must refuse to run without GPUs")
	}
}

func TestWordCountCorrect(t *testing.T) {
	for _, partial := range []bool{false, true} {
		rt, want := setup(2, 600, true)
		res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, PartialReduce: partial})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, pr := range res.Output() {
			n, _ := strconv.Atoi(string(pr.Value))
			got[string(pr.Key)] += n
		}
		for w, n := range want {
			if got[w] != n {
				t.Errorf("partial=%v word %q: got %d, want %d", partial, w, got[w], n)
			}
		}
	}
}

func TestTotalIsSumOfIOAndCompute(t *testing.T) {
	rt, _ := setup(1, 4000, true)
	res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, PartialReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOTime <= 0 {
		t.Fatal("no I/O time charged")
	}
	if res.Compute <= 0 {
		t.Fatal("no compute time")
	}
	// The defining GPMR property: no overlap, so JobTime ~ IO + compute.
	if res.JobTime < res.IOTime+res.Compute*0.999 {
		t.Fatalf("total %g < IO %g + compute %g", res.JobTime, res.IOTime, res.Compute)
	}
}

func TestGenerateInputSkipsIO(t *testing.T) {
	rt, _ := setup(1, 1000, true)
	res, err := Run(rt, wcApp(), Config{Input: []string{"in"}, GenerateInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOTime != 0 {
		t.Fatalf("GenerateInput should zero the I/O phase, got %g", res.IOTime)
	}
}

func TestValidation(t *testing.T) {
	rt, _ := setup(1, 10, true)
	if _, err := Run(rt, &core.App{Name: "x"}, Config{Input: []string{"in"}}); err == nil {
		t.Error("want error for app without kernels")
	}
	if _, err := Run(rt, wcApp(), Config{}); err == nil {
		t.Error("want error for missing input")
	}
	if _, err := Run(rt, wcApp(), Config{Input: []string{"none"}}); err == nil {
		t.Error("want error for missing file")
	}
}
