package hadoopcl

import (
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

func setup(nodes int, gpu bool) (*Runtime, []byte, apps.KMeansSpec) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, nodes, hw.Type1(gpu))
	d := dfs.New(cluster, 8<<10, min(3, nodes))
	data, spec := apps.KMData(21, 8000, 4, 32)
	d.PreloadBlocks("km", dfs.SplitFixed(data, 8<<10, int64(spec.Dim*4)), 0)
	return &Runtime{Cluster: cluster, FS: d}, data, spec
}

func TestKMeansCorrectOnCPUAndGPU(t *testing.T) {
	for _, device := range []int{0, 1} {
		rt, data, spec := setup(2, true)
		res, err := Run(rt, apps.KMeans(spec), Config{
			Input: []string{"km"}, Device: device, UseCombiner: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := apps.VerifyKMeans(res.Output(), data, spec); err != nil {
			t.Fatalf("device %d: %v", device, err)
		}
		if res.KernelTime <= 0 {
			t.Fatalf("device %d: no kernel time recorded", device)
		}
	}
}

func TestGPUBeatsCPUKernel(t *testing.T) {
	run := func(device int) float64 {
		rt, _, spec := setup(1, true)
		spec.ModelCenters = 4096
		res, err := Run(rt, apps.KMeans(spec), Config{
			Input: []string{"km"}, Device: device, UseCombiner: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.KernelTime
	}
	cpu := run(0)
	gpu := run(1)
	if gpu >= cpu {
		t.Fatalf("GPU kernel time (%g) should beat CPU (%g)", gpu, cpu)
	}
}

func TestWordCountCorrect(t *testing.T) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, 2, hw.Type1(true))
	d := dfs.New(cluster, 16<<10, 2)
	data, want := apps.WCData(22, 128<<10, 1500)
	d.PreloadBlocks("wc", dfs.SplitLines(data, 16<<10), 0)
	rt := &Runtime{Cluster: cluster, FS: d}
	res, err := Run(rt, apps.WordCount(), Config{Input: []string{"wc"}, Device: 1, UseCombiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	rt, _, _ := setup(1, false)
	if _, err := Run(rt, &core.App{Name: "x"}, Config{Input: []string{"km"}}); err == nil {
		t.Error("app without kernels should fail")
	}
	if _, err := Run(rt, apps.WordCount(), Config{}); err == nil {
		t.Error("missing input should fail")
	}
	if _, err := Run(rt, apps.WordCount(), Config{Input: []string{"km"}, Device: 7}); err == nil {
		t.Error("bad device should fail")
	}
}
