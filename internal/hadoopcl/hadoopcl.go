// Package hadoopcl models HadoopCL (Grossman et al.), the system the paper
// calls "highly relevant work" but could not evaluate because "it is not
// yet open-sourced" (§IV footnote). This implementation completes that
// comparison as an extension.
//
// HadoopCL keeps Hadoop's execution model — JobTracker, task slots, one
// coarse-grained map task per split, a pull shuffle — but translates the
// Java map/reduce functions to OpenCL kernels with APARAPI and runs them on
// a compute device. The modeled consequences, per the paper's §II
// discussion:
//
//   - kernels accelerate on the device, one launch per task (no chunk
//     pipeline, no overlap inside a task);
//   - APARAPI restricts kernels to primitive arrays: every task pays a
//     host-side conversion of records into primitive buffers and of kernel
//     output back into Java objects, on top of Hadoop's usual per-record
//     costs;
//   - everything around the kernels (sort, spill, shuffle, merge, HDFS)
//     stays Java, so Hadoop's framework costs remain.
package hadoopcl

import (
	"fmt"
	"sort"

	"glasswing/internal/cl"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// Cost constants; the Java-side ones mirror internal/hadoop.
const (
	javaComputeFactor = 1.8
	javaPerRecordOps  = 250
	javaReadPerByte   = 0.8
	taskStartupSecs   = 0.12
	heartbeatSecs     = 0.35
	jobStartupSecs    = 2.2
	// aparapiPerByte is the host-side cost of marshalling records into
	// primitive arrays for the kernel and decoding the kernel's primitive
	// output back into Writables — APARAPI permits nothing richer.
	aparapiPerByte = 3.0
	// aparapiLaunchSecs is APARAPI's per-task translation/dispatch cost
	// (bytecode-to-OpenCL caching, buffer registration).
	aparapiLaunchSecs = 0.01
)

// Config carries the HadoopCL job knobs.
type Config struct {
	Input             []string
	OutputPath        string
	OutputReplication int
	// Device selects the per-node compute device (0 = CPU, 1 = first
	// accelerator).
	Device int
	// MapSlots is per-node concurrent map tasks. HadoopCL shares one
	// device among a node's tasks, so the default is modest.
	MapSlots int
	// Reducers is the total reduce task count (0 = 4 per node).
	Reducers int
	// UseCombiner runs App.Combine over each task's kernel output.
	UseCombiner bool
	// Partitioner overrides hash partitioning.
	Partitioner func(key []byte, n int) int
}

func (c Config) withDefaults() Config {
	if c.OutputPath == "" {
		c.OutputPath = "hadoopcl-out"
	}
	if c.MapSlots == 0 {
		c.MapSlots = 8
	}
	if c.Partitioner == nil {
		c.Partitioner = kv.Partition
	}
	return c
}

// Runtime binds HadoopCL to a cluster and file system.
type Runtime struct {
	Cluster *hw.Cluster
	FS      dfs.FS
	Prelude func(p *sim.Proc, c *hw.Cluster)
}

// Result reports a HadoopCL job.
type Result struct {
	App     string
	Nodes   int
	JobTime float64
	// KernelTime is total device busy time across nodes.
	KernelTime float64

	outputs map[int][]kv.Pair
}

// Output returns final pairs in reducer order.
func (r *Result) Output() []kv.Pair {
	ids := make([]int, 0, len(r.outputs))
	for id := range r.outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []kv.Pair
	for _, id := range ids {
		out = append(out, r.outputs[id]...)
	}
	return out
}

type mapOutput struct {
	node *hw.Node
	runs map[int]*kv.Run
}

type taskRef struct {
	file *dfs.File
	idx  int
}

// Run executes app as a HadoopCL job.
func Run(rt *Runtime, app *core.App, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Reducers == 0 {
		cfg.Reducers = 4 * len(rt.Cluster.Nodes)
	}
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("hadoopcl: app %q needs Parse and Map", app.Name)
	}
	if len(cfg.Input) == 0 {
		return nil, fmt.Errorf("hadoopcl: no input files")
	}
	env := rt.Cluster.Env
	ctxs := make([]*cl.Context, len(rt.Cluster.Nodes))
	for i, n := range rt.Cluster.Nodes {
		if cfg.Device < 0 || cfg.Device >= len(n.Devices) {
			return nil, fmt.Errorf("hadoopcl: node %d has no device %d", i, cfg.Device)
		}
		ctxs[i] = cl.NewContext(n.Devices[cfg.Device])
	}
	var tasks []taskRef
	for _, name := range cfg.Input {
		f, err := rt.FS.Open(name)
		if err != nil {
			return nil, err
		}
		for idx := range f.Blocks {
			tasks = append(tasks, taskRef{file: f, idx: idx})
		}
	}

	res := &Result{App: app.Name, Nodes: len(rt.Cluster.Nodes), outputs: make(map[int][]kv.Pair)}
	var completed []*mapOutput
	mapsDone := sim.NewSignal(env)
	next := 0

	env.Spawn("hadoopcl-jobtracker", func(p *sim.Proc) {
		start := p.Now()
		p.Delay(jobStartupSecs)
		if rt.Prelude != nil {
			rt.Prelude(p, rt.Cluster)
		}
		var slots []*sim.Proc
		for ni := range rt.Cluster.Nodes {
			ni := ni
			for s := 0; s < cfg.MapSlots; s++ {
				pr := env.Spawn(fmt.Sprintf("hadoopcl-n%02d-slot%d", ni, s), func(q *sim.Proc) {
					for {
						if next >= len(tasks) {
							return
						}
						t := tasks[next]
						next++
						q.Delay(heartbeatSecs/2 + taskStartupSecs)
						out := mapTask(q, rt, ctxs[ni], app, cfg, ni, t)
						completed = append(completed, out)
					}
				})
				slots = append(slots, pr)
			}
		}
		for _, pr := range slots {
			pr.Done().Wait(p)
		}
		mapsDone.Fire(nil)

		// Reduce: same pull model as Hadoop, on the host (HadoopCL's
		// reduce kernels are often left on the CPU; we keep reduce in
		// Java for the counting apps, which is its common deployment).
		var reds []*sim.Proc
		for r := 0; r < cfg.Reducers; r++ {
			r := r
			node := rt.Cluster.Nodes[r%len(rt.Cluster.Nodes)]
			pr := env.Spawn(fmt.Sprintf("hadoopcl-red%d", r), func(q *sim.Proc) {
				reduceTask(q, rt, app, cfg, node, r, completed, res)
			})
			reds = append(reds, pr)
		}
		for _, pr := range reds {
			pr.Done().Wait(p)
		}
		res.JobTime = p.Now() - start
		for _, ctx := range ctxs {
			res.KernelTime += ctx.KernelTime
		}
	})
	env.Run()
	return res, nil
}

// mapTask reads a split, converts it through APARAPI's primitive-array
// interface, runs the map kernel in ONE launch, converts the output back,
// then sorts/spills like Hadoop.
func mapTask(p *sim.Proc, rt *Runtime, ctx *cl.Context, app *core.App, cfg Config, ni int, t taskRef) *mapOutput {
	node := rt.Cluster.Nodes[ni]
	block, err := rt.FS.ReadBlock(p, node, t.file, t.idx)
	if err != nil {
		panic(err)
	}
	node.HostWork(p, javaReadPerByte*float64(len(block)), 1)
	recs := app.Parse(block)
	node.HostWork(p, app.ParseCostPerByte*javaComputeFactor*float64(len(block)), 1)

	// APARAPI marshalling in: records into primitive arrays.
	node.HostWork(p, aparapiPerByte*float64(len(block)), 1)
	p.Delay(aparapiLaunchSecs)

	// One kernel launch over the whole split.
	var pairs []kv.Pair
	var emitted int64
	emit := func(k, v []byte) {
		pairs = append(pairs, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		emitted += int64(len(k) + len(v))
	}
	threads := ctx.Device.Profile.HWThreads
	cl.Range(len(recs), threads, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			app.Map(recs[i], emit)
		}
	})
	ctx.EnqueueWrite(p, int64(len(block)))
	ctx.Launch(p, threads, cl.Stats{
		Ops: app.MapCost.OpsPerRecord*float64(len(recs)) +
			app.MapCost.OpsPerByte*float64(len(block)) +
			app.MapCost.OpsPerEmit*float64(len(pairs)),
		AtomicOps: float64(len(pairs)),
		Bytes:     float64(len(block)) + float64(emitted),
	})
	ctx.EnqueueRead(p, emitted)

	// APARAPI marshalling out: primitive arrays back into Writables.
	node.HostWork(p, aparapiPerByte*float64(emitted)+javaPerRecordOps*float64(len(pairs)), 1)

	// Hadoop-style sort/partition/spill on the host.
	perReducer := make(map[int]*kv.Buffer)
	for _, pr := range pairs {
		r := cfg.Partitioner(pr.Key, cfg.Reducers)
		b := perReducer[r]
		if b == nil {
			b = &kv.Buffer{}
			perReducer[r] = b
		}
		b.Add(pr)
	}
	out := &mapOutput{node: node, runs: make(map[int]*kv.Run)}
	var spill int64
	var sortOps float64
	for r := 0; r < cfg.Reducers; r++ {
		b, ok := perReducer[r]
		if !ok {
			continue
		}
		b.Sort()
		ps := b.Pairs
		if cfg.UseCombiner && app.Combine != nil {
			ps = combine(app, ps)
		}
		run := kv.NewRun(ps, false)
		out.runs[r] = run
		spill += run.StoredBytes()
		sortOps += 60 * float64(b.Len())
	}
	node.HostWork(p, sortOps, 1)
	node.Disk.Write(p, spill)
	return out
}

func combine(app *core.App, pairs []kv.Pair) []kv.Pair {
	gi := kv.NewGroupIter(kv.NewSliceIter(pairs))
	var out []kv.Pair
	for {
		g, ok := gi.Next()
		if !ok {
			return out
		}
		app.Combine(g.Key, g.Values, func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
}

// reduceTask pulls this reducer's portions, merges, reduces in Java, and
// writes the final file.
func reduceTask(p *sim.Proc, rt *Runtime, app *core.App, cfg Config, node *hw.Node, r int, completed []*mapOutput, res *Result) {
	p.Delay(taskStartupSecs)
	var fetched []*kv.Run
	var pairsN int
	for _, out := range completed {
		run, ok := out.runs[r]
		if !ok {
			continue
		}
		out.node.Disk.Read(p, run.StoredBytes())
		rt.Cluster.Transfer(p, out.node, node, run.StoredBytes())
		fetched = append(fetched, run)
		pairsN += run.Records
	}
	node.HostWork(p, 95*float64(pairsN), 1)
	iters := make([]kv.Iterator, len(fetched))
	for i, run := range fetched {
		iters[i] = run.Iter()
	}
	gi := kv.NewGroupIter(kv.Merge(iters...))
	var out []kv.Pair
	var ops float64
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		ops += app.ReduceCost.OpsPerRecord + app.ReduceCost.OpsPerValue*float64(len(g.Values))
		if app.Reduce == nil {
			for _, v := range g.Values {
				out = append(out, kv.Pair{Key: g.Key, Value: v})
			}
			continue
		}
		app.Reduce(g.Key, g.Values, func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
	node.HostWork(p, ops*javaComputeFactor+javaPerRecordOps*float64(pairsN+len(out)), 1)
	blob := kv.Marshal(out)
	if _, err := rt.FS.Write(p, node, fmt.Sprintf("%s-%05d", cfg.OutputPath, r), blob, cfg.OutputReplication); err != nil {
		panic(err)
	}
	res.outputs[r] = out
}
