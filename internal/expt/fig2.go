package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hadoop"
	"glasswing/internal/workload"
)

// fig2Nodes is the cluster-size sweep of the horizontal-scalability plots.
var fig2Nodes = []int{1, 2, 4, 8, 16}

// tsNodes skips the small clusters: the paper could not run TS below 4
// nodes for lack of disk space; we keep 2 as the smallest.
var tsNodes = []int{2, 4, 8, 16}

// Fig2PVC regenerates Figure 2(a): Pageview Count execution time and
// speedup, Hadoop vs Glasswing CPU, on HDFS.
func Fig2PVC(s Sizes) *Table {
	data, want := apps.PVCData(11, s.PVCBytes)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitLines(data, blockSize)
	app := apps.PageviewCount()
	return ioBoundFigure(s, "fig2a", "Figure 2(a)", "PVC: pageview count over sparse web logs",
		fig2Nodes, blocks, blockSize, app,
		func(cfg *core.Config) {},
		func(cfg *hadoop.Config) {},
		func(out *core.Result) { mustVerify(apps.VerifyCounts(out.Output(), want), "PVC") },
	)
}

// Fig2WC regenerates Figure 2(b): WordCount.
func Fig2WC(s Sizes) *Table {
	data, want := apps.WCData(12, s.WCBytes, s.Vocab)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitLines(data, blockSize)
	app := apps.WordCount()
	return ioBoundFigure(s, "fig2b", "Figure 2(b)", "WC: word count over wiki text",
		fig2Nodes, blocks, blockSize, app,
		func(cfg *core.Config) {},
		func(cfg *hadoop.Config) {},
		func(out *core.Result) { mustVerify(apps.VerifyCounts(out.Output(), want), "WC") },
	)
}

// Fig2TS regenerates Figure 2(c): TeraSort with total-order output and
// output replication 1.
func Fig2TS(s Sizes) *Table {
	data := apps.TSData(13, s.TSRecords)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitFixed(data, blockSize, workload.TeraRecordSize)
	app := apps.TeraSort()
	part := apps.TeraPartitioner(data, 64)
	return ioBoundFigure(s, "fig2c", "Figure 2(c)", "TS: TeraSort, totally ordered output",
		tsNodes, blocks, blockSize, app,
		func(cfg *core.Config) {
			cfg.Collector = core.BufferPool
			cfg.UseCombiner = false
			cfg.Partitioner = part
			cfg.OutputReplication = 1
		},
		func(cfg *hadoop.Config) {
			cfg.UseCombiner = false
			cfg.Partitioner = part
			cfg.OutputReplication = 1
		},
		func(out *core.Result) { mustVerify(apps.VerifyTeraSort(out.Output(), data), "TS") },
	)
}

// ioBoundFigure runs one I/O-bound app over the node sweep on both
// frameworks and assembles the execution-time + speedup table.
func ioBoundFigure(s Sizes, id, paper, title string, nodesSweep []int,
	blocks [][]byte, blockSize int64, app *core.App,
	tuneG func(*core.Config), tuneH func(*hadoop.Config),
	verify func(*core.Result)) *Table {

	t := &Table{
		ID: id, Paper: paper, Title: title,
		Columns: []string{"nodes", "hadoop(s)", "glasswing(s)", "hadoop-speedup", "glasswing-speedup", "gw/hadoop"},
	}
	var hTimes, gTimes []float64
	var totalBytes int
	for _, b := range blocks {
		totalBytes += len(b)
	}
	for _, n := range nodesSweep {
		// Hadoop on its own cluster instance.
		envH, clH := newCluster(n, false, s.Slow)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("in", blocks, 0)
		hcfg := hadoop.Config{Input: []string{"in"}, UseCombiner: app.Combine != nil}
		tuneH(&hcfg)
		hres := hadoopRun(clH, dH, app, hcfg, nil)
		hTimes = append(hTimes, hres.JobTime)
		_ = envH

		// Glasswing instrumented to use HDFS via libhdfs (JNI), like the
		// paper's comparison setup.
		envG, clG := newCluster(n, false, s.Slow)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("in", blocks, 0)
		gcfg := core.Config{
			Input:          []string{"in"},
			Collector:      core.HashTable,
			UseCombiner:    app.Combine != nil,
			Compress:       true,
			CacheThreshold: int64(totalBytes) / int64(2*n),
		}
		tuneG(&gcfg)
		gres := glasswing(clG, dG, app, gcfg, nil)
		gTimes = append(gTimes, gres.JobTime)
		if n == nodesSweep[0] {
			verify(gres)
		}
		_ = envG
	}
	hSp, gSp := speedup(hTimes), speedup(gTimes)
	for i, n := range nodesSweep {
		t.AddRow(n, hTimes[i], gTimes[i], hSp[i], gSp[i], gTimes[i]/hTimes[i])
	}
	last := len(nodesSweep) - 1
	t.Note("single-node advantage: Glasswing %.2fx faster than Hadoop", hTimes[0]/gTimes[0])
	t.Note("%d-node advantage: %.2fx", nodesSweep[last], hTimes[last]/gTimes[last])
	return t
}
