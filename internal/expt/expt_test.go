package expt

import (
	"strconv"
	"strings"
	"testing"
)

// cellF parses a numeric table cell.
func cellF(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("%s row %d col %q: %v", tab.ID, row, col, err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Paper: "p", Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("str", 1234.5678)
	tab.Note("note %d", 7)
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== x", "a", "b", "1", "2.50", "str", "1235", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
	if tab.Cell(0, "b") != "2.50" {
		t.Errorf("Cell = %q", tab.Cell(0, "b"))
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "tab1", "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e",
		"tab2", "tab3", "fig4a", "fig4b", "fig5", "vert", "vert-k20m",
		"abl-olap", "abl-buf", "abl-push", "abl-comp", "abl-net", "ext-hadoopcl", "ext-hetero", "ext-straggler",
		"obs-stall"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All), len(want))
	}
	for _, id := range want {
		if Lookup(id) == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown id should be nil")
	}
}

// TestPipelineStallsShape: the traced stall analysis reports every map
// pipeline stage and its notes carry the overlap-factor comparison.
func TestPipelineStallsShape(t *testing.T) {
	tab := PipelineStalls(Quick())
	stages := map[string]bool{}
	for _, row := range tab.Rows {
		stages[row[0]] = true
	}
	for _, stage := range []string{"map/input", "map/kernel", "map/partition", "reduce/kernel"} {
		if !stages[stage] {
			t.Errorf("stall table missing stage %q (rows: %v)", stage, tab.Rows)
		}
	}
	if len(tab.Notes) < 2 || !strings.Contains(tab.Notes[0], "overlap factor") {
		t.Errorf("expected overlap-factor note, got %v", tab.Notes)
	}
}

// TestFig2WCShape asserts the headline WC relationships at quick scale:
// Glasswing beats Hadoop at every cluster size and scales at least as well.
// TestFig1Renders: the traced pipeline timeline covers every stage of both
// pipelines and shows activity.
func TestFig1Renders(t *testing.T) {
	tab := Fig1(Quick())
	var all strings.Builder
	for _, row := range tab.Rows {
		all.WriteString(row[0])
		all.WriteByte('\n')
	}
	out := all.String()
	for _, stage := range []string{"map/input", "map/stage", "map/kernel", "map/retrieve", "map/partition", "merge", "reduce/input", "reduce/kernel", "reduce/output"} {
		if !strings.Contains(out, stage) {
			t.Errorf("figure 1 timeline missing stage %q", stage)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("no activity rendered")
	}
}

func TestTableIComplete(t *testing.T) {
	tab := TableI(Quick())
	if len(tab.Rows) != 12 {
		t.Fatalf("Table I has %d rows, want 12 (as in the paper)", len(tab.Rows))
	}
	if tab.Rows[len(tab.Rows)-1][0] != "Glasswing" {
		t.Fatal("Glasswing must be the last row, as in the paper")
	}
}

func TestFig2WCShape(t *testing.T) {
	tab := Fig2WC(Quick())
	for r := range tab.Rows {
		h := cellF(t, tab, r, "hadoop(s)")
		g := cellF(t, tab, r, "glasswing(s)")
		if g >= h {
			t.Errorf("row %d: glasswing (%g) not faster than hadoop (%g)", r, g, h)
		}
	}
	gw1 := cellF(t, tab, 0, "glasswing(s)")
	gwN := cellF(t, tab, len(tab.Rows)-1, "glasswing(s)")
	if gwN >= gw1 {
		t.Errorf("glasswing does not scale: 1 node %g, max nodes %g", gw1, gwN)
	}
	h1 := cellF(t, tab, 0, "hadoop(s)")
	ratio := h1 / gw1
	if ratio < 1.2 || ratio > 4.5 {
		t.Errorf("single-node WC advantage %.2fx outside the paper band [1.2, 4.5]", ratio)
	}
}

// TestFig3KMShape asserts the compute-bound relationships: GPU beats CPU
// beats Hadoop, and Glasswing GPU is competitive with GPMR.
func TestFig3KMShape(t *testing.T) {
	tab := Fig3KMGPU(Quick())
	for r := range tab.Rows {
		h := cellF(t, tab, r, "hadoop(s)")
		c := cellF(t, tab, r, "gw-cpu(s)")
		g := cellF(t, tab, r, "gw-gpu-hdfs(s)")
		if c >= h {
			t.Errorf("row %d: glasswing CPU (%g) not faster than Hadoop (%g)", r, c, h)
		}
		if g >= c {
			t.Errorf("row %d: GPU (%g) not faster than CPU (%g)", r, g, c)
		}
	}
	h1 := cellF(t, tab, 0, "hadoop(s)")
	g1 := cellF(t, tab, 0, "gw-gpu-hdfs(s)")
	if h1/g1 < 3 {
		t.Errorf("single-node GPU gain %.1fx too small", h1/g1)
	}
}

// TestTableIIShape asserts the paper's Table II relationships. The
// kernel-time contrast between collectors needs the benchmark-scale WC
// dataset to rise above contention noise; the experiment is single-node
// and still fast.
func TestTableIIShape(t *testing.T) {
	s := Quick()
	s.WCBytes = Default().WCBytes
	tab := TableII(s)
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	get := func(metric, config string) float64 {
		for _, row := range tab.Rows {
			if row[0] == metric {
				v, err := strconv.ParseFloat(row[col[config]], 64)
				if err != nil {
					t.Fatalf("parse %s/%s: %v", metric, config, err)
				}
				return v
			}
		}
		t.Fatalf("no metric %q", metric)
		return 0
	}
	// Simple collection: cheapest kernel, most expensive partitioning.
	if get("Kernel", "simple(dbl)") >= get("Kernel", "hash(dbl)") {
		t.Error("simple collection kernel should beat plain hash table")
	}
	if get("Partitioning", "simple(dbl)") <= get("Partitioning", "hash+comb(dbl)") {
		t.Error("simple collection partitioning should exceed hash+combiner")
	}
	// The combiner shrinks downstream work.
	if get("Reduce time", "hash(dbl)") <= get("Reduce time", "hash+comb(dbl)") {
		t.Error("no-combiner reduce should exceed combiner reduce")
	}
	// Single buffering serializes the input group.
	if get("Map elapsed", "hash+comb(single)") < get("Map elapsed", "hash+comb(dbl)") {
		t.Error("single buffering should not beat double buffering")
	}
}

// TestTableIIIShape asserts the CPU/GPU contrast of Table III.
func TestTableIIIShape(t *testing.T) {
	tab := TableIII(Quick())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	get := func(metric, config string) float64 {
		for _, row := range tab.Rows {
			if row[0] == metric {
				v, _ := strconv.ParseFloat(row[col[config]], 64)
				return v
			}
		}
		t.Fatalf("no metric %q", metric)
		return 0
	}
	if get("Kernel", "gpu:hash+comb") >= get("Kernel", "cpu:hash+comb") {
		t.Error("GPU kernel should beat CPU kernel for compute-bound KM")
	}
	// Stage/Retrieve must be active on the GPU, disabled on the CPU.
	if get("Stage", "cpu:hash+comb") != 0 {
		t.Error("CPU Stage should be zero (unified memory)")
	}
	if get("Stage", "gpu:hash+comb") <= 0 {
		t.Error("GPU Stage should be non-zero")
	}
	// Partitioning is cheaper when the kernel is not contending for the CPU.
	if get("Partitioning", "gpu:hash") > get("Partitioning", "cpu:hash")*1.05 {
		t.Error("GPU-device partitioning should not exceed CPU-device partitioning")
	}
}

// TestFig4aShape: partitioning parallelizes with N.
func TestFig4aShape(t *testing.T) {
	tab := Fig4a(Quick())
	p1 := cellF(t, tab, 0, "partitioning(s)")
	p8 := cellF(t, tab, 3, "partitioning(s)")
	if p8 >= p1 {
		t.Errorf("partitioning with N=8 (%g) should beat N=1 (%g)", p8, p1)
	}
	if p1/p8 < 1.5 {
		t.Errorf("partitioning speedup N=1->8 only %.2fx", p1/p8)
	}
}

// TestFig5Shape: kernel-launch amortization.
func TestFig5Shape(t *testing.T) {
	tab := Fig5(Quick())
	e1 := cellF(t, tab, 0, "reduce-elapsed(s)")
	e4096 := cellF(t, tab, 3, "reduce-elapsed(s)")
	if e4096 >= e1 {
		t.Errorf("4096 concurrent keys (%g) should beat one key per launch (%g)", e4096, e1)
	}
	k1 := cellF(t, tab, 0, "reduce-kernel(s)")
	k4096 := cellF(t, tab, 3, "reduce-kernel(s)")
	if k4096 >= k1 {
		t.Errorf("kernel busy time should fall with concurrency: %g vs %g", k4096, k1)
	}
	// Keys-per-thread amortizes thread spawn further.
	kpt1 := cellF(t, tab, 3, "reduce-kernel(s)")
	kpt16 := cellF(t, tab, 6, "reduce-kernel(s)")
	if kpt16 > kpt1 {
		t.Errorf("16 keys/thread (%g) should not exceed 1 key/thread (%g)", kpt16, kpt1)
	}
}

// TestVerticalShape: every accelerator beats the CPU for compute-bound KM.
func TestVerticalShape(t *testing.T) {
	tab := Vertical(Quick())
	cpu := cellF(t, tab, 0, "KM(s)")
	for r := 1; r < len(tab.Rows); r++ {
		dev := cellF(t, tab, r, "KM(s)")
		if dev >= cpu {
			t.Errorf("device row %d (%s): KM %g not faster than CPU %g", r, tab.Rows[r][0], dev, cpu)
		}
	}
	// Device generations must be ordered sensibly: K20m >= GTX480 speedup.
	g480 := cellF(t, tab, 1, "KM-speedup-vs-CPU")
	k20 := cellF(t, tab, 3, "KM-speedup-vs-CPU")
	if k20 < g480 {
		t.Errorf("K20m speedup (%g) below GTX480 (%g)", k20, g480)
	}
}

func TestK20mScalingShape(t *testing.T) {
	tab := VerticalK20mScaling(Quick())
	last := len(tab.Rows) - 1
	sp := cellF(t, tab, last, "speedup")
	// At quick scale fixed costs cap the curve; the calibrated run in
	// EXPERIMENTS.md reaches ~6.4x on 8 nodes.
	if sp < 2.0 {
		t.Errorf("8-node K20m speedup %.2f too low", sp)
	}
}

// TestExtHadoopCLShape: HadoopCL lands between Hadoop and Glasswing GPU.
func TestExtHadoopCLShape(t *testing.T) {
	tab := ExtHadoopCL(Quick())
	for r := range tab.Rows {
		h := cellF(t, tab, r, "hadoop(s)")
		c := cellF(t, tab, r, "hadoopcl-gpu(s)")
		g := cellF(t, tab, r, "glasswing-gpu(s)")
		// At quick scale the single-node point is dominated by Hadoop
		// framework overheads both systems share; require the win from
		// 2 nodes up (the calibrated run has it everywhere).
		if r > 0 && c >= h {
			t.Errorf("row %d: HadoopCL (%g) should beat plain Hadoop (%g)", r, c, h)
		}
		if g >= c {
			t.Errorf("row %d: Glasswing GPU (%g) should beat HadoopCL (%g)", r, g, c)
		}
	}
}

// TestExtHeterogeneousShape: mixed beats all-CPU; weighted beats even.
func TestExtHeterogeneousShape(t *testing.T) {
	tab := ExtHeterogeneous(Quick())
	allCPU := cellF(t, tab, 0, "job(s)")
	staticEven := cellF(t, tab, 1, "job(s)")
	weighted := cellF(t, tab, 2, "job(s)")
	dynamic := cellF(t, tab, 3, "job(s)")
	// A static even split buys almost nothing: the makespan is set by the
	// CPU stragglers, same as the homogeneous cluster — that is the point.
	if staticEven > allCPU*1.02 {
		t.Errorf("static-even (%g) should not exceed all-CPU (%g)", staticEven, allCPU)
	}
	if weighted >= staticEven {
		t.Errorf("capacity-weighted (%g) should beat the static even split (%g)", weighted, staticEven)
	}
	if dynamic >= staticEven {
		t.Errorf("dynamic stealing (%g) should beat the static even split (%g)", dynamic, staticEven)
	}
}

// TestExtStragglerShape: speculation recovers part of the straggler's cost.
func TestExtStragglerShape(t *testing.T) {
	tab := ExtStraggler(Quick())
	plain := cellF(t, tab, 0, "map-phase(s)")
	spec := cellF(t, tab, 1, "map-phase(s)")
	if spec >= plain {
		t.Errorf("speculative Hadoop map phase (%g) should beat plain (%g) with a straggler", spec, plain)
	}
	static := cellF(t, tab, 2, "map-phase(s)")
	dynamic := cellF(t, tab, 3, "map-phase(s)")
	if dynamic >= static {
		t.Errorf("dynamic scheduling map phase (%g) should beat static (%g) with a straggler", dynamic, static)
	}
}

func TestAblationShapes(t *testing.T) {
	s := Quick()
	ol := AblationOverlap(s)
	for r := range ol.Rows {
		if cellF(t, ol, r, "sequential/overlapped") < 1.0 {
			t.Errorf("overlap should not hurt: row %d", r)
		}
	}
	buf := AblationBuffering(s)
	for r := range buf.Rows {
		if cellF(t, buf, r, "double(s)") > cellF(t, buf, r, "single(s)")*1.02 {
			t.Errorf("double buffering slower than single in row %d", r)
		}
	}
	comp := AblationCompression(s)
	if cellF(t, comp, 0, "intermediate-bytes") >= cellF(t, comp, 1, "intermediate-bytes") {
		t.Error("compression should shrink intermediate data")
	}
	pp := AblationPushPull(s)
	if cellF(t, pp, 1, "merge-delay(s)") <= cellF(t, pp, 0, "merge-delay(s)") {
		t.Error("pull shuffle should pay a larger merge delay than push")
	}
	// The fabric only shows once the shuffle volume outgrows what the
	// pipeline can hide; use the benchmark-scale TS dataset.
	s2 := s
	s2.TSRecords = Default().TSRecords
	net := AblationNetwork(s2)
	if cellF(t, net, 1, "job(s)") <= cellF(t, net, 0, "job(s)") {
		t.Error("GbE should be slower than IPoIB for shuffle-heavy TS")
	}
}
