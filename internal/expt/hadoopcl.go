package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/hadoop"
	"glasswing/internal/hadoopcl"
)

// ExtHadoopCL completes the comparison the paper wanted but could not run:
// "We would have liked to include HadoopCL in our evaluation as it is
// highly relevant work, but its authors indicated that it is not yet
// open-sourced" (§IV footnote). Compute-bound KM on the GPU: plain Hadoop,
// HadoopCL (Hadoop's execution model with APARAPI-translated kernels on
// the device), and Glasswing GPU.
func ExtHadoopCL(s Sizes) *Table {
	data, spec, app := kmSetup(s, s.KMCenters)
	blockSize := blockSizeFor(len(data), 256)
	blocks := kmBlocks(data, spec.Dim, blockSize)

	t := &Table{
		ID: "ext-hadoopcl", Paper: "extension (paper §IV footnote)",
		Title:   "KM on GPU: Hadoop vs HadoopCL vs Glasswing",
		Columns: []string{"nodes", "hadoop(s)", "hadoopcl-gpu(s)", "glasswing-gpu(s)", "hadoopcl/glasswing"},
	}
	for _, n := range fig2Nodes {
		_, clH := newCluster(n, false, s.SlowCompute)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("km", blocks, 0)
		hres := hadoopRun(clH, dH, app, hadoop.Config{Input: []string{"km"}, UseCombiner: true}, spec.Prelude())

		_, clC := newCluster(n, true, s.SlowCompute)
		dC := newHDFS(clC, blockSize, false)
		dC.PreloadBlocks("km", blocks, 0)
		cres, err := hadoopcl.Run(&hadoopcl.Runtime{Cluster: clC, FS: dC, Prelude: spec.Prelude()}, app,
			hadoopcl.Config{Input: []string{"km"}, Device: 1, UseCombiner: true})
		if err != nil {
			panic(err)
		}

		_, clG := newCluster(n, true, s.SlowCompute)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("km", blocks, 0)
		gres := glasswing(clG, dG, app, core.Config{
			Input: []string{"km"}, Device: 1, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())

		if n == 1 {
			mustVerify(apps.VerifyKMeans(cres.Output(), data, spec), "HadoopCL KM")
			mustVerify(apps.VerifyKMeans(gres.Output(), data, spec), "Glasswing KM")
		}
		t.AddRow(n, hres.JobTime, cres.JobTime, gres.JobTime, cres.JobTime/gres.JobTime)
	}
	t.Note("HadoopCL accelerates the kernels but keeps Hadoop's per-task overheads, APARAPI conversions and pull shuffle — it lands between the baselines, as the paper's §II analysis predicts")
	return t
}
