package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/obs"
)

// PipelineStalls traces a WC breakdown run through the observability layer
// and reports the analyzer's per-stage busy/active/stall/occupancy rows.
// The overlap factor (stage-seconds retired per wall second) quantifies the
// paper's pipelining claim the same way AblationOverlap does by elapsed
// time; a NoOverlap run is analyzed alongside as the serial reference.
func PipelineStalls(s Sizes) *Table {
	t := &Table{
		ID: "obs-stall", Paper: "§IV-B (stall analysis)",
		Title:   "WC pipeline stall analysis (1 node, local FS, traced)",
		Columns: []string{"stage", "spans", "busy(s)", "active(s)", "stall(s)", "occupancy"},
	}
	blocks, blockSize, want := wcBreakdownData(s)
	run := func(noOverlap bool) *obs.Report {
		cfg := core.Config{
			Collector: core.HashTable, UseCombiner: true, Compress: true,
			Trace: true, NoOverlap: noOverlap,
		}
		res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "stall WC")
		return obs.Analyze(res.Trace.ObsSpans())
	}
	rep := run(false)
	for _, row := range rep.Rows {
		t.AddRow(row.Stage, row.Spans, row.Busy, row.Active, row.Stall, row.Occupancy)
	}
	seq := run(true)
	t.Note("overlap factor %.2fx overlapped vs %.2fx sequential (1.0 = fully serial)",
		rep.OverlapFactor, seq.OverlapFactor)
	t.Note("critical path %.1fs of %.1fs wall; total stage busy %.1fs",
		rep.CriticalPath, rep.Wall, rep.TotalBusy)
	return t
}
