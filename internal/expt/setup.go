package expt

import (
	"fmt"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/gpmr"
	"glasswing/internal/hadoop"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// Sizes parameterizes every experiment's dataset and the hardware slowdown
// used by the horizontal-scalability runs. Default reflects the ratios of
// the paper's datasets; Quick shrinks everything for fast unit tests.
type Sizes struct {
	// Slow is the hardware time-dilation factor for the I/O-bound cluster
	// experiments (see hw.NodeSpec.Slowed): real bytes * Slow ~ the
	// paper's volumes.
	Slow float64
	// SlowCompute is the gentler dilation for the compute-bound
	// experiments, whose virtual dominance comes from the kernel cost
	// models (KMModelCenters / MMModelTile) rather than from I/O volume —
	// this keeps constant-size structures (cluster centers, output tiles)
	// from being over-dilated.
	SlowCompute float64

	WCBytes   int // paper: 70 GB of Wikipedia dump
	Vocab     int
	PVCBytes  int // paper: 36 GB of WikiBench traces
	TSRecords int // paper: 1 TB of TeraGen records

	KMPoints  int // paper: 2^30-ish points
	KMDim     int // paper: 4 dimensions
	KMCenters int // centers actually computed
	// KMModelCenters is the charged center count (paper: 1024+ so that
	// I/O is negligible against computation, §IV-A2).
	KMModelCenters int
	KMSmall        int // paper: 16 centers (unmodified GPMR, I/O dominant)

	MMN    int // paper: tens-of-thousands-wide square matrices
	MMTile int
	// MMModelTile is the charged tile size (picked so MM is compute-bound
	// on the CPU but I/O-bound on the GPU with HDFS, as in §IV-A2).
	MMModelTile int
}

// Default returns the benchmark-scale sizes (a few MB real, paper-scale
// virtual).
func Default() Sizes {
	return Sizes{
		Slow:           2500,
		SlowCompute:    300,
		WCBytes:        6 << 20,
		Vocab:          15000,
		PVCBytes:       5 << 20,
		TSRecords:      80000, // 8 MB
		KMPoints:       1 << 17,
		KMDim:          4,
		KMCenters:      256,
		KMModelCenters: 4096,
		KMSmall:        16,
		MMN:            512,
		MMTile:         64,
		MMModelTile:    192,
	}
}

// Quick returns unit-test-scale sizes.
func Quick() Sizes {
	return Sizes{
		Slow:           1500,
		SlowCompute:    150,
		WCBytes:        512 << 10,
		Vocab:          4000,
		PVCBytes:       384 << 10,
		TSRecords:      8000,
		KMPoints:       1 << 14,
		KMDim:          4,
		KMCenters:      64,
		KMModelCenters: 2048,
		KMSmall:        16,
		MMN:            128,
		MMTile:         32,
		MMModelTile:    96,
	}
}

// newCluster builds a cluster of Type-1 nodes, optionally slowed.
func newCluster(nodes int, gpu bool, slow float64) (*sim.Env, *hw.Cluster) {
	env := sim.NewEnv()
	spec := hw.Type1(gpu)
	if slow > 1 {
		spec = spec.Slowed(slow)
	}
	return env, hw.NewCluster(env, nodes, spec)
}

// newHDFS attaches a DFS with replication 3 (capped by cluster size); jni
// selects the libhdfs access-cost mode (used by Glasswing runs, not by
// Hadoop, which pays Java costs inside its own model).
func newHDFS(cluster *hw.Cluster, blockSize int64, jni bool) *dfs.DFS {
	d := dfs.New(cluster, blockSize, 3)
	if jni {
		d.JNI = dfs.DefaultJNI
	}
	return d
}

// blockSizeFor splits total bytes into ~chunks blocks, keeping blocks at
// least 16 KiB.
func blockSizeFor(total, chunks int) int64 {
	bs := int64(total / chunks)
	if bs < 4<<10 {
		bs = 4 << 10
	}
	return bs
}

// glasswing runs app on cluster+fs and panics on error (experiment wiring
// bugs should be loud).
func glasswing(cluster *hw.Cluster, fs dfs.FS, app *core.App, cfg core.Config, prelude func(*sim.Proc, *hw.Cluster)) *core.Result {
	res, err := core.Run(&core.Runtime{Cluster: cluster, FS: fs, Prelude: prelude}, app, cfg)
	if err != nil {
		panic(fmt.Sprintf("expt: glasswing %s: %v", app.Name, err))
	}
	return res
}

func hadoopRun(cluster *hw.Cluster, fs dfs.FS, app *core.App, cfg hadoop.Config, prelude func(*sim.Proc, *hw.Cluster)) *hadoop.Result {
	res, err := hadoop.Run(&hadoop.Runtime{Cluster: cluster, FS: fs, Prelude: prelude}, app, cfg)
	if err != nil {
		panic(fmt.Sprintf("expt: hadoop %s: %v", app.Name, err))
	}
	return res
}

func gpmrRun(cluster *hw.Cluster, fs dfs.FS, app *core.App, cfg gpmr.Config) *gpmr.Result {
	res, err := gpmr.Run(&gpmr.Runtime{Cluster: cluster, FS: fs}, app, cfg)
	if err != nil {
		panic(fmt.Sprintf("expt: gpmr %s: %v", app.Name, err))
	}
	return res
}

// mustVerify aborts the experiment if an output check fails — regenerated
// numbers from wrong answers would be worthless.
func mustVerify(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("expt: %s output verification failed: %v", what, err))
	}
}

// speedup computes t1/tn series against the 1-node (first) entry.
func speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = times[0] / t
		}
	}
	return out
}

// kmSetup builds the KM dataset and app for the given center count. The
// many-centers variant charges the paper's model center count; the
// small-centers variant (Fig 3e) charges exactly what it computes.
func kmSetup(s Sizes, centers int) ([]byte, apps.KMeansSpec, *core.App) {
	data, spec := apps.KMData(41, s.KMPoints, s.KMDim, centers)
	if centers == s.KMCenters {
		spec.ModelCenters = s.KMModelCenters
	}
	return data, spec, apps.KMeans(spec)
}
