package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// ExtHeterogeneous explores the setting the paper cites Shirahata et al.
// for (§II): a cluster where only some nodes carry GPUs. Compute-bound KM
// on 8 nodes, 4 of them with a GTX480:
//
//   - all-CPU: every node computes on its CPU (the homogeneous floor);
//   - mixed, even split: GPU nodes use their GPU, splits divided evenly —
//     the GPU nodes finish early and idle while CPU nodes straggle;
//   - mixed, capacity-weighted: the coordinator assigns splits in
//     proportion to device peak throughput (Config.BalanceByDevice).
func ExtHeterogeneous(s Sizes) *Table {
	data, spec, app := kmSetup(s, s.KMCenters)
	blockSize := blockSizeFor(len(data), 256)
	blocks := kmBlocks(data, spec.Dim, blockSize)

	const nodes = 8
	devices := make([]int, nodes)
	for i := 0; i < nodes/2; i++ {
		devices[i] = 1 // first half carries GPUs
	}

	run := func(perNode []int, balance, static bool) *core.Result {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, nodes, hw.Type1(true).Slowed(s.SlowCompute))
		l := dfs.NewLocal(cluster, blockSize)
		l.PreloadBlocks("km", blocks, 0)
		res := glasswing(cluster, l, app, core.Config{
			Input:            []string{"km"},
			DevicePerNode:    perNode,
			BalanceByDevice:  balance,
			StaticScheduling: static,
			Collector:        core.HashTable,
			UseCombiner:      true,
		}, spec.Prelude())
		mustVerify(apps.VerifyKMeans(res.Output(), data, spec), "hetero KM")
		return res
	}

	t := &Table{
		ID: "ext-hetero", Paper: "extension (paper §II, Shirahata et al.)",
		Title:   "Heterogeneous cluster: 8 nodes, 4 with a GTX480 (KM)",
		Columns: []string{"configuration", "job(s)", "map(s)"},
	}
	allCPU := run(make([]int, nodes), false, false)
	staticEven := run(devices, false, true)
	staticWeighted := run(devices, true, true)
	dynamic := run(devices, false, false)
	t.AddRow("all-CPU (homogeneous)", allCPU.JobTime, allCPU.MapElapsed)
	t.AddRow("mixed, static even split", staticEven.JobTime, staticEven.MapElapsed)
	t.AddRow("mixed, static capacity-weighted", staticWeighted.JobTime, staticWeighted.MapElapsed)
	t.AddRow("mixed, dynamic (stealing)", dynamic.JobTime, dynamic.MapElapsed)
	t.Note("a static even split leaves GPU nodes idle while CPU nodes straggle; capacity-weighted assignment or the default dynamic stealing recovers the mixed cluster's capacity")
	return t
}
