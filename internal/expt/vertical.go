package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// Vertical regenerates the paper's vertical-scalability evaluation
// (§IV headline 3): the same Glasswing KM and MM applications, unchanged,
// across the full device zoo — multi-core CPU, three GPU generations and
// the Xeon Phi — exercising the OpenCL abstraction's device portability.
func Vertical(s Sizes) *Table {
	type rig struct {
		name   string
		host   hw.NodeSpec
		device int // index into node.Devices
	}
	rigs := []rig{
		{"CPU (dual Xeon E5620)", hw.Type1(false), 0},
		{"GTX480 (Type-1 host)", hw.Type1(true), 1},
		{"GTX680 (Type-2 host)", withAccel(hw.Type2(false), hw.GTX680), 1},
		{"K20m (Type-2 host)", hw.Type2(true), 1},
		{"XeonPhi (Type-2 host)", withAccel(hw.Type2(false), hw.XeonPhi), 1},
	}

	kmData, kmSpec := apps.KMData(31, s.KMPoints/2, s.KMDim, s.KMCenters)
	kmSpec.ModelCenters = s.KMModelCenters
	kmApp := apps.KMeans(kmSpec)
	kmBS := blockSizeFor(len(kmData), 64)
	kmBlk := dfs.SplitFixed(kmData, kmBS, int64(kmSpec.Dim*4))

	mmSpec := apps.MMSpec{N: s.MMN / 2, Tile: s.MMTile / 2, ModelTile: s.MMModelTile}
	mmIn, mmA, mmB, err := apps.MMData(32, mmSpec)
	if err != nil {
		panic(err)
	}
	mmApp := apps.MatMul(mmSpec)
	mmBS := blockSizeFor(len(mmIn), 64)
	mmBlk := dfs.SplitFixed(mmIn, mmBS, int64(mmSpec.RecordSize()))

	t := &Table{
		ID: "vert", Paper: "§IV-C",
		Title:   "Vertical scalability: one node, same kernels, different devices",
		Columns: []string{"device", "KM(s)", "KM-speedup-vs-CPU", "MM(s)", "MM-speedup-vs-CPU"},
	}
	var kmCPU, mmCPU float64
	for i, r := range rigs {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, 1, r.host.Slowed(s.SlowCompute))
		l := dfs.NewLocal(cluster, kmBS)
		l.PreloadBlocks("km", kmBlk, 0)
		kmRes := glasswing(cluster, l, kmApp, core.Config{
			Input: []string{"km"}, Device: r.device,
			Collector: core.HashTable, UseCombiner: true,
		}, kmSpec.Prelude())
		mustVerify(apps.VerifyKMeans(kmRes.Output(), kmData, kmSpec), "vertical KM "+r.name)

		env2 := sim.NewEnv()
		cluster2 := hw.NewCluster(env2, 1, r.host.Slowed(s.SlowCompute))
		l2 := dfs.NewLocal(cluster2, mmBS)
		l2.PreloadBlocks("mm", mmBlk, 0)
		mmRes := glasswing(cluster2, l2, mmApp, core.Config{
			Input: []string{"mm"}, Device: r.device, Collector: core.BufferPool,
		}, nil)
		if i == 0 {
			kmCPU, mmCPU = kmRes.JobTime, mmRes.JobTime
			mustVerify(apps.VerifyMatMul(mmRes.Output(), mmA, mmB, mmSpec), "vertical MM")
		}
		t.AddRow(r.name, kmRes.JobTime, kmCPU/kmRes.JobTime, mmRes.JobTime, mmCPU/mmRes.JobTime)
	}
	t.Note("same application code and API on every device (paper §I, §III)")
	return t
}

// VerticalK20mScaling regenerates the paper's K20m consistency check: KM on
// up to 8 Type-2 nodes ("we ran Glasswing KM and MM on up to N Type-2 nodes
// equipped with a K20m and obtained consistent scaling results").
func VerticalK20mScaling(s Sizes) *Table {
	data, spec := apps.KMData(33, s.KMPoints, s.KMDim, s.KMCenters)
	spec.ModelCenters = s.KMModelCenters
	app := apps.KMeans(spec)
	blockSize := blockSizeFor(len(data), 128)
	blocks := dfs.SplitFixed(data, blockSize, int64(spec.Dim*4))

	t := &Table{
		ID: "vert-k20m", Paper: "§IV-A2 (Type-2 consistency)",
		Title:   "KM on K20m Type-2 nodes",
		Columns: []string{"nodes", "time(s)", "speedup"},
	}
	var times []float64
	nodesSweep := []int{1, 2, 4, 8}
	for _, n := range nodesSweep {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, n, hw.Type2(true).Slowed(s.SlowCompute))
		l := dfs.NewLocal(cluster, blockSize)
		l.PreloadBlocks("km", blocks, 0)
		res := glasswing(cluster, l, app, core.Config{
			Input: []string{"km"}, Device: 1,
			Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())
		times = append(times, res.JobTime)
	}
	sp := speedup(times)
	for i, n := range nodesSweep {
		t.AddRow(n, times[i], sp[i])
	}
	return t
}

// withAccel attaches a different accelerator to a host spec.
func withAccel(spec hw.NodeSpec, accel hw.DeviceProfile) hw.NodeSpec {
	spec.Accels = []hw.DeviceProfile{accel}
	return spec
}
