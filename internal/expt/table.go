// Package expt regenerates every table and figure of the paper's evaluation
// section (§IV) on the simulated cluster. Each experiment returns a Table
// whose rows/series correspond to what the paper plots; DESIGN.md carries
// the experiment index, EXPERIMENTS.md the recorded paper-vs-measured
// comparison.
//
// Two scaling regimes are used, both documented in DESIGN.md:
//
//   - Horizontal-scalability experiments (Fig 2, Fig 3) run MB-scale real
//     datasets on hardware slowed by hw.NodeSpec.Slowed so the virtual
//     timeline matches the paper's GB/TB-scale jobs.
//   - Pipeline-breakdown experiments (Tables II/III, Figs 4/5) run at full
//     hardware speed on deliberately small datasets, exactly as the paper
//     does ("smaller data sets were used to emphasize the performance
//     differences", §IV-B).
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated figure or table: a titled grid of cells plus
// free-form notes (observations the paper's prose makes about the data).
type Table struct {
	ID      string // experiment id, e.g. "fig2a"
	Paper   string // what the paper calls it, e.g. "Figure 2(a)"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an observation line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		switch {
		case v == 0:
			return "0"
		case v < 0.01:
			return fmt.Sprintf("%.4f", v)
		case v < 10:
			return fmt.Sprintf("%.2f", v)
		case v < 100:
			return fmt.Sprintf("%.1f", v)
		default:
			return fmt.Sprintf("%.0f", v)
		}
	case string:
		return v
	default:
		return fmt.Sprint(v)
	}
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s  %s — %s ==\n", t.ID, t.Paper, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Cell looks a value up by column name in row i (testing convenience).
func (t *Table) Cell(row int, column string) string {
	for i, c := range t.Columns {
		if c == column {
			return t.Rows[row][i]
		}
	}
	panic(fmt.Sprintf("expt: no column %q in %s", column, t.ID))
}
