package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// Pipeline-breakdown experiments run on ONE node without HDFS, with
// deliberately small datasets, as the paper does (§IV-B): "The pipeline
// analysis was performed on one Type-1 node without HDFS. Smaller data sets
// were used to emphasize the performance differences."
//
// A mild hardware slowdown keeps the numbers in readable seconds without
// perturbing the stage relationships the tables demonstrate.
const breakdownSlow = 100

// breakdownRun executes WC (or another app) on one node + local FS and
// returns the result.
func breakdownRun(app *core.App, blocks [][]byte, blockSize int64, cfg core.Config, gpu bool, prelude func(*sim.Proc, *hw.Cluster)) *core.Result {
	_, cluster := newCluster(1, gpu, breakdownSlow)
	l := dfs.NewLocal(cluster, blockSize)
	l.PreloadBlocks("in", blocks, 0)
	cfg.Input = []string{"in"}
	return glasswing(cluster, l, app, cfg, prelude)
}

// wcBreakdownData builds the small WC dataset used by Table II and Fig 4.
func wcBreakdownData(s Sizes) ([][]byte, int64, map[string]uint64) {
	bytes := s.WCBytes / 2
	data, want := apps.WCData(21, bytes, bytes/400)
	blockSize := blockSizeFor(len(data), 32)
	return dfs.SplitLines(data, blockSize), blockSize, want
}

// tableIIConfigs are the paper's four Table II columns.
func tableIIConfigs(cacheThreshold int64) []struct {
	Name string
	Cfg  core.Config
} {
	base := core.Config{CacheThreshold: cacheThreshold, Compress: true}
	hashComb := base
	hashComb.Collector, hashComb.UseCombiner = core.HashTable, true
	hashOnly := base
	hashOnly.Collector = core.HashTable
	simple := base
	simple.Collector = core.BufferPool
	single := hashComb
	single.Buffering = 1
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"hash+combiner", hashComb},
		{"hash-table", hashOnly},
		{"simple-collection", simple},
		{"hash+comb-single-buf", single},
	}
}

// TableII regenerates Table II: the WC map-pipeline time breakdown under
// the three output-collection configurations (double buffering) plus the
// hash+combiner configuration under single buffering.
func TableII(s Sizes) *Table {
	blocks, blockSize, want := wcBreakdownData(s)
	var total int64
	for _, b := range blocks {
		total += int64(len(b))
	}
	t := &Table{
		ID: "tab2", Paper: "Table II",
		Title:   "WC map pipeline time breakdown (seconds), 1 node, local FS",
		Columns: []string{"metric", "hash+comb(dbl)", "hash(dbl)", "simple(dbl)", "hash+comb(single)"},
	}
	configs := tableIIConfigs(total / 8)
	var results []*core.Result
	for _, c := range configs {
		res := breakdownRun(apps.WordCount(), blocks, blockSize, c.Cfg, false, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "TableII/"+c.Name)
		results = append(results, res)
	}
	row := func(metric string, get func(*core.Result) float64) {
		cells := []any{metric}
		for _, r := range results {
			cells = append(cells, get(r))
		}
		t.AddRow(cells...)
	}
	row("Input", func(r *core.Result) float64 { return r.MaxMapStage().Input })
	row("Kernel", func(r *core.Result) float64 { return r.MaxMapStage().Kernel })
	row("Partitioning", func(r *core.Result) float64 { return r.MaxMapStage().Partition })
	row("Map elapsed", func(r *core.Result) float64 { return r.MapElapsed })
	row("Merge delay", func(r *core.Result) float64 { return r.MergeDelay })
	row("Reduce time", func(r *core.Result) float64 { return r.ReduceElapsed })
	t.Note("paper: simple collection lowers kernel time but partitioning decodes every occurrence and dominates")
	t.Note("paper: single buffering serializes the input group: map elapsed ~ Input + Kernel")
	return t
}

// TableIII regenerates Table III: the KM map-pipeline breakdown under the
// same three configurations, on (a) the CPU and (b) the GTX480.
func TableIII(s Sizes) *Table {
	data, spec := apps.KMData(22, s.KMPoints/2, s.KMDim, s.KMCenters)
	spec.ModelCenters = s.KMModelCenters
	app := apps.KMeans(spec)
	blockSize := blockSizeFor(len(data), 32)
	blocks := dfs.SplitFixed(data, blockSize, int64(spec.Dim*4))

	t := &Table{
		ID: "tab3", Paper: "Table III",
		Title:   "KM map pipeline time breakdown (seconds), 1 node, local FS",
		Columns: []string{"metric", "cpu:hash+comb", "cpu:hash", "cpu:simple", "gpu:hash+comb", "gpu:hash", "gpu:simple"},
	}
	configs := tableIIConfigs(int64(len(data)) / 8)[:3]
	var results []*core.Result
	for _, gpu := range []bool{false, true} {
		for _, c := range configs {
			cfg := c.Cfg
			if gpu {
				cfg.Device = 1
			}
			res := breakdownRun(app, blocks, blockSize, cfg, gpu, nil)
			mustVerify(apps.VerifyKMeans(res.Output(), data, spec), "TableIII")
			results = append(results, res)
		}
	}
	row := func(metric string, get func(*core.Result) float64) {
		cells := []any{metric}
		for _, r := range results {
			cells = append(cells, get(r))
		}
		t.AddRow(cells...)
	}
	row("Input", func(r *core.Result) float64 { return r.MaxMapStage().Input })
	row("Stage", func(r *core.Result) float64 { return r.MaxMapStage().Stage })
	row("Kernel", func(r *core.Result) float64 { return r.MaxMapStage().Kernel })
	row("Retrieve", func(r *core.Result) float64 { return r.MaxMapStage().Retrieve })
	row("Partitioning", func(r *core.Result) float64 { return r.MaxMapStage().Partition })
	row("Map elapsed", func(r *core.Result) float64 { return r.MapElapsed })
	row("Merge delay", func(r *core.Result) float64 { return r.MergeDelay })
	row("Reduce time", func(r *core.Result) float64 { return r.ReduceElapsed })
	t.Note("paper: GPU kernel+elapsed beat the CPU; partitioning drops on the GPU because kernel threads no longer contend for host cores")
	return t
}

// Fig4a regenerates Figure 4(a): WC Kernel and Partitioning stage times as
// a function of the number of partitioner threads N.
func Fig4a(s Sizes) *Table {
	blocks, blockSize, _ := wcBreakdownData(s)
	var total int64
	for _, b := range blocks {
		total += int64(len(b))
	}
	t := &Table{
		ID: "fig4a", Paper: "Figure 4(a)",
		Title:   "WC map pipeline stages vs partitioner threads N",
		Columns: []string{"N", "partitioning(s)", "kernel(s)", "map-elapsed(s)"},
	}
	var part1, partMax float64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cfg := core.Config{
			Collector:         core.HashTable,
			PartitionThreads:  n,
			CacheThreshold:    total / 8,
			PartitionsPerNode: 8,
			Compress:          true,
		}
		res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
		st := res.MaxMapStage()
		if n == 1 {
			part1 = st.Partition
		}
		partMax = st.Partition
		t.AddRow(n, st.Partition, st.Kernel, res.MapElapsed)
	}
	t.Note("partitioning parallelizes: %0.1fx from N=1 to N=32 (paper: drops below kernel from N=2)", part1/partMax)
	return t
}

// Fig4b regenerates Figure 4(b): merge delay as a function of N for
// several partition counts P.
func Fig4b(s Sizes) *Table {
	blocks, blockSize, _ := wcBreakdownData(s)
	var total int64
	for _, b := range blocks {
		total += int64(len(b))
	}
	t := &Table{
		ID: "fig4b", Paper: "Figure 4(b)",
		Title:   "WC merge delay (s) vs partitioner threads N, per partition count P",
		Columns: []string{"N", "P=1", "P=2", "P=4", "P=8"},
	}
	ps := []int{1, 2, 4, 8}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cells := []any{n}
		for _, p := range ps {
			cfg := core.Config{
				Collector:         core.HashTable,
				PartitionThreads:  n,
				PartitionsPerNode: p,
				MergeThreads:      p,
				CacheThreshold:    total / 16,
				Compress:          true,
			}
			res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
			cells = append(cells, res.MergeDelay)
		}
		t.AddRow(cells...)
	}
	t.Note("paper: increasing P sharply decreases merge delay; increasing N increases it (mergers starved during map)")
	return t
}

// Fig5 regenerates Figure 5: the WC reduce-pipeline breakdown for a
// varying number of concurrently processed keys, with a large unique-key
// space, plus the keys-per-thread amortization. Full-speed hardware: the
// effect under study is kernel-launch overhead.
func Fig5(s Sizes) *Table {
	bytes := s.WCBytes / 2
	// A large vocabulary gives the sparse key space the paper stresses
	// ("millions of unique keys"); here proportionally scaled down.
	data, want := apps.WCData(23, bytes, bytes/8)
	blockSize := blockSizeFor(len(data), 32)
	blocks := dfs.SplitLines(data, blockSize)

	t := &Table{
		ID: "fig5", Paper: "Figure 5",
		Title:   "WC reduce pipeline vs concurrent keys (keys/thread = 1)",
		Columns: []string{"concurrent-keys", "keys/thread", "reduce-input(s)", "reduce-kernel(s)", "reduce-elapsed(s)", "unique-keys"},
	}
	run := func(ck, kpt int) *core.Result {
		cfg := core.Config{
			Collector:      core.HashTable,
			UseCombiner:    true,
			ConcurrentKeys: ck,
			KeysPerThread:  kpt,
			Compress:       true,
		}
		res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "Fig5")
		return res
	}
	for _, ck := range []int{1, 16, 256, 4096, 65536} {
		res := run(ck, 1)
		st := res.MaxReduceStage()
		t.AddRow(ck, 1, st.Input, st.Kernel, res.ReduceElapsed, len(want))
	}
	for _, kpt := range []int{4, 16} {
		res := run(4096, kpt)
		st := res.MaxReduceStage()
		t.AddRow(4096, kpt, st.Input, st.Kernel, res.ReduceElapsed, len(want))
	}
	t.Note("one key per launch pays a kernel invocation per key; concurrency amortizes launch overhead, keys/thread amortizes thread spawn")
	return t
}
