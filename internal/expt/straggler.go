package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hadoop"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// ExtStraggler removes the paper's stability assumption: "Hadoop was
// configured to disable redundant speculative computation, since the DAS
// cluster is extremely stable" (§IV-A). Here one of 8 nodes runs 4x slower,
// and the comparison adds Hadoop with speculation back on. Glasswing has no
// task re-execution or work stealing (§III-E), so the straggler stretches
// its statically assigned share.
func ExtStraggler(s Sizes) *Table {
	data, want := apps.WCData(61, s.WCBytes, s.Vocab)
	// Many small splits: tasks must outnumber the fast nodes' slots or
	// Hadoop's dynamic slots dodge the straggler without speculation.
	blockSize := blockSizeFor(len(data), 512)
	blocks := dfs.SplitLines(data, blockSize)

	const nodes = 8
	mkCluster := func() (*sim.Env, *hw.Cluster) {
		env := sim.NewEnv()
		specs := make([]hw.NodeSpec, nodes)
		for i := range specs {
			specs[i] = hw.Type1(false).Slowed(s.Slow)
		}
		specs[nodes-1] = hw.Type1(false).Slowed(s.Slow * 8) // the straggler
		return env, hw.NewClusterWithSpecs(env, specs)
	}

	t := &Table{
		ID: "ext-straggler", Paper: "extension (§IV-A assumption)",
		Title:   "One 8x straggler in 8 nodes (WC)",
		Columns: []string{"system", "job(s)", "map-phase(s)", "notes"},
	}

	_, clH := mkCluster()
	dH := newHDFS(clH, blockSize, false)
	dH.PreloadBlocks("in", blocks, 0)
	plain := hadoopRun(clH, dH, apps.WordCount(), hadoop.Config{Input: []string{"in"}, UseCombiner: true}, nil)

	_, clS := mkCluster()
	dS := newHDFS(clS, blockSize, false)
	dS.PreloadBlocks("in", blocks, 0)
	spec := hadoopRun(clS, dS, apps.WordCount(), hadoop.Config{Input: []string{"in"}, UseCombiner: true, Speculative: true}, nil)

	runGW := func(static bool) *core.Result {
		_, clG := mkCluster()
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("in", blocks, 0)
		return glasswing(clG, dG, apps.WordCount(), core.Config{
			Input: []string{"in"}, Collector: core.HashTable, UseCombiner: true, Compress: true,
			StaticScheduling: static,
		}, nil)
	}
	gwStatic := runGW(true)
	gwDyn := runGW(false)
	mustVerify(apps.VerifyCounts(gwDyn.Output(), want), "straggler WC")
	mustVerify(apps.VerifyCounts(spec.Output(), want), "straggler WC speculative")

	t.AddRow("hadoop, no speculation", plain.JobTime, plain.MapPhase, "paper's configuration")
	t.AddRow("hadoop, speculative", spec.JobTime, spec.MapPhase, formatCell(spec.SpeculativeWasted)+" wasted duplicate(s)")
	t.AddRow("glasswing, static splits", gwStatic.JobTime, gwStatic.MapElapsed, "straggler keeps its full share")
	t.AddRow("glasswing, dynamic+stealing", gwDyn.JobTime, gwDyn.MapElapsed, "default coordinator")
	t.Note("map-task speculation recovers Hadoop's map phase; reducers hosted on the straggler still drag its job (map-only speculation, as modeled)")
	t.Note("Glasswing's dynamic coordinator steals the straggler's backlog; static assignment stretches the map phase")
	return t
}
