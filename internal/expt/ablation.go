package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
	"glasswing/internal/workload"
)

// The ablations isolate the design choices DESIGN.md calls out: pipeline
// overlap (the paper's central claim), buffering depth (§III-D), push vs
// pull intermediate-data delivery (§IV-A1), and intermediate compression
// (§III-B). None of these has a direct figure in the paper; they quantify
// the prose.

// AblationOverlap compares the Glasswing pipeline with stage overlap
// enabled vs fully serialized stages, for WC (I/O + compute mix) and KM
// (compute-bound), one node.
func AblationOverlap(s Sizes) *Table {
	t := &Table{
		ID: "abl-olap", Paper: "§I / §IV-A claim",
		Title:   "Pipeline overlap ablation (1 node, local FS)",
		Columns: []string{"app", "overlapped(s)", "sequential(s)", "sequential/overlapped"},
	}
	blocks, blockSize, want := wcBreakdownData(s)
	run := func(noOverlap bool) *core.Result {
		cfg := core.Config{Collector: core.HashTable, UseCombiner: true, NoOverlap: noOverlap, Compress: true}
		res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "ablation WC")
		return res
	}
	over := run(false)
	seq := run(true)
	t.AddRow("WC", over.MapElapsed, seq.MapElapsed, seq.MapElapsed/over.MapElapsed)

	data, spec := apps.KMData(51, s.KMPoints/2, s.KMDim, s.KMCenters)
	spec.ModelCenters = s.KMModelCenters
	app := apps.KMeans(spec)
	bs := blockSizeFor(len(data), 32)
	kblocks := dfs.SplitFixed(data, bs, int64(spec.Dim*4))
	runKM := func(noOverlap bool) *core.Result {
		cfg := core.Config{Collector: core.HashTable, UseCombiner: true, NoOverlap: noOverlap, Device: 1}
		return breakdownRun(app, kblocks, bs, cfg, true, nil)
	}
	overKM := runKM(false)
	seqKM := runKM(true)
	t.AddRow("KM-gpu", overKM.MapElapsed, seqKM.MapElapsed, seqKM.MapElapsed/overKM.MapElapsed)
	t.Note("overlap hides the cheaper of I/O and compute; the gain is the paper's core architectural claim")
	return t
}

// AblationBuffering sweeps the pipeline buffering level (§III-D).
func AblationBuffering(s Sizes) *Table {
	t := &Table{
		ID: "abl-buf", Paper: "§III-D",
		Title:   "Buffering level sweep (1 node)",
		Columns: []string{"app", "single(s)", "double(s)", "triple(s)"},
	}
	blocks, blockSize, _ := wcBreakdownData(s)
	var wcTimes []any
	wcTimes = append(wcTimes, "WC")
	for b := 1; b <= 3; b++ {
		cfg := core.Config{Collector: core.HashTable, UseCombiner: true, Buffering: b, Compress: true}
		res := breakdownRun(apps.WordCount(), blocks, blockSize, cfg, false, nil)
		wcTimes = append(wcTimes, res.MapElapsed)
	}
	t.AddRow(wcTimes...)

	data, spec := apps.KMData(52, s.KMPoints/2, s.KMDim, s.KMCenters)
	spec.ModelCenters = s.KMModelCenters
	app := apps.KMeans(spec)
	bs := blockSizeFor(len(data), 32)
	kblocks := dfs.SplitFixed(data, bs, int64(spec.Dim*4))
	var kmTimes []any
	kmTimes = append(kmTimes, "KM-gpu")
	for b := 1; b <= 3; b++ {
		cfg := core.Config{Collector: core.HashTable, UseCombiner: true, Buffering: b, Device: 1}
		res := breakdownRun(app, kblocks, bs, cfg, true, nil)
		kmTimes = append(kmTimes, res.MapElapsed)
	}
	t.AddRow(kmTimes...)
	t.Note("double/triple buffering relaxes the intra-group interlock at the cost of more buffers (§III-D)")
	return t
}

// AblationPushPull compares Glasswing's push shuffle against a Hadoop-style
// reducer pull on a multi-node run.
func AblationPushPull(s Sizes) *Table {
	data, want := apps.WCData(53, s.WCBytes, s.Vocab)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitLines(data, blockSize)
	t := &Table{
		ID: "abl-push", Paper: "§IV-A1 claim",
		Title:   "Push vs pull intermediate-data delivery (8 nodes, HDFS)",
		Columns: []string{"mode", "job(s)", "merge-delay(s)"},
	}
	run := func(pull bool) *core.Result {
		_, cl := newCluster(8, false, s.Slow)
		d := newHDFS(cl, blockSize, true)
		d.PreloadBlocks("in", blocks, 0)
		res := glasswing(cl, d, apps.WordCount(), core.Config{
			Input: []string{"in"}, Collector: core.HashTable, UseCombiner: true,
			PullShuffle: pull, Compress: true,
			CacheThreshold: int64(len(data)) / 16,
		}, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "push/pull WC")
		return res
	}
	push := run(false)
	pull := run(true)
	t.AddRow("push (Glasswing)", push.JobTime, push.MergeDelay)
	t.AddRow("pull (Hadoop-style)", pull.JobTime, pull.MergeDelay)
	t.Note("pushing lets receipt and merging overlap the map phase; pulling pays the latency after it (§IV-A1)")
	return t
}

// AblationCompression toggles intermediate-data compression (§III-B).
func AblationCompression(s Sizes) *Table {
	data, want := apps.WCData(54, s.WCBytes, s.Vocab)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitLines(data, blockSize)
	t := &Table{
		ID: "abl-comp", Paper: "§III-B",
		Title:   "Intermediate compression (4 nodes, HDFS)",
		Columns: []string{"mode", "job(s)", "intermediate-bytes"},
	}
	run := func(compress bool) *core.Result {
		_, cl := newCluster(4, false, s.Slow)
		d := newHDFS(cl, blockSize, true)
		d.PreloadBlocks("in", blocks, 0)
		res := glasswing(cl, d, apps.WordCount(), core.Config{
			Input: []string{"in"}, Collector: core.HashTable, UseCombiner: false,
			Compress:       compress,
			CacheThreshold: int64(len(data)) / 8,
		}, nil)
		mustVerify(apps.VerifyCounts(res.Output(), want), "compression WC")
		return res
	}
	on := run(true)
	off := run(false)
	t.AddRow("compressed", on.JobTime, int(on.IntermediateBytes))
	t.AddRow("raw", off.JobTime, int(off.IntermediateBytes))
	t.Note("serialized+compressed partitions trade CPU for disk/network volume (§III-B)")
	return t
}

// AblationNetwork swaps the cluster fabric between plain Gigabit Ethernet
// and IP-over-InfiniBand (both present on DAS-4; the paper runs everything
// over IPoIB). TeraSort shuffles its entire dataset across the fabric, so
// it exposes the difference where the counting workloads (combiners,
// compression) hide it.
func AblationNetwork(s Sizes) *Table {
	data := apps.TSData(55, s.TSRecords)
	blockSize := blockSizeFor(len(data), 96)
	blocks := dfs.SplitFixed(data, blockSize, workload.TeraRecordSize)
	part := apps.TeraPartitioner(data, 64)
	t := &Table{
		ID: "abl-net", Paper: "§IV setup",
		Title:   "Fabric sensitivity: GbE vs IPoIB (8 nodes, TeraSort)",
		Columns: []string{"fabric", "job(s)", "map(s)", "merge-delay(s)"},
	}
	run := func(nic hw.NICProfile, label string) {
		env := sim.NewEnv()
		spec := hw.Type1(false)
		spec.NIC = nic
		cluster := hw.NewCluster(env, 8, spec.Slowed(s.Slow))
		d := dfs.New(cluster, blockSize, 3)
		d.JNI = dfs.DefaultJNI
		d.PreloadBlocks("in", blocks, 0)
		res := glasswing(cluster, d, apps.TeraSort(), core.Config{
			Input: []string{"in"}, Collector: core.BufferPool,
			Partitioner:       part,
			OutputReplication: 1,
			// Raw intermediate data: the whole dataset crosses the
			// fabric, which is the point of this ablation.
			Compress:       false,
			CacheThreshold: int64(len(data)) / 16,
		}, nil)
		mustVerify(apps.VerifyTeraSort(res.Output(), data), "fabric TS")
		t.AddRow(label, res.JobTime, res.MapElapsed, res.MergeDelay)
	}
	run(hw.IPoIB, "IPoIB (paper setup)")
	run(hw.GigE, "GbE")
	t.Note("TeraSort moves ~7/8 of every byte across the fabric; GbE stretches the shuffle the map phase must hide")
	return t
}
