package expt

import (
	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/gpmr"
	"glasswing/internal/hadoop"
)

// kmBlocks builds the aligned KM input blocks.
func kmBlocks(data []byte, dim int, blockSize int64) [][]byte {
	return dfs.SplitFixed(data, blockSize, int64(dim*4))
}

// Fig3KMCPU regenerates Figure 3(a): K-Means on the CPU (HDFS), Hadoop vs
// Glasswing.
func Fig3KMCPU(s Sizes) *Table {
	data, spec, app := kmSetup(s, s.KMCenters)
	blockSize := blockSizeFor(len(data), 256)
	blocks := kmBlocks(data, spec.Dim, blockSize)

	t := &Table{
		ID: "fig3a", Paper: "Figure 3(a)",
		Title:   "KM (many centers) on CPU via HDFS",
		Columns: []string{"nodes", "hadoop(s)", "glasswing(s)", "hadoop-speedup", "glasswing-speedup"},
	}
	var hT, gT []float64
	for _, n := range fig2Nodes {
		_, clH := newCluster(n, false, s.SlowCompute)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("km", blocks, 0)
		hres := hadoopRun(clH, dH, app, hadoop.Config{Input: []string{"km"}, UseCombiner: true}, spec.Prelude())
		hT = append(hT, hres.JobTime)

		_, clG := newCluster(n, false, s.SlowCompute)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("km", blocks, 0)
		gres := glasswing(clG, dG, app, core.Config{
			Input: []string{"km"}, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())
		gT = append(gT, gres.JobTime)
		if n == 1 {
			mustVerify(apps.VerifyKMeans(gres.Output(), data, spec), "KM glasswing")
			mustVerify(apps.VerifyKMeans(hres.Output(), data, spec), "KM hadoop")
		}
	}
	hSp, gSp := speedup(hT), speedup(gT)
	for i, n := range fig2Nodes {
		t.AddRow(n, hT[i], gT[i], hSp[i], gSp[i])
	}
	t.Note("single-node advantage: Glasswing CPU %.2fx over Hadoop", hT[0]/gT[0])
	return t
}

// Fig3MMCPU regenerates Figure 3(b): Matrix Multiply on the CPU (HDFS).
func Fig3MMCPU(s Sizes) *Table {
	spec := apps.MMSpec{N: s.MMN, Tile: s.MMTile, ModelTile: s.MMModelTile}
	input, a, b, err := apps.MMData(42, spec)
	if err != nil {
		panic(err)
	}
	app := apps.MatMul(spec)
	blockSize := blockSizeFor(len(input), 256)
	blocks := dfs.SplitFixed(input, blockSize, int64(spec.RecordSize()))

	t := &Table{
		ID: "fig3b", Paper: "Figure 3(b)",
		Title:   "MM on CPU via HDFS",
		Columns: []string{"nodes", "hadoop(s)", "glasswing(s)", "hadoop-speedup", "glasswing-speedup"},
	}
	var hT, gT []float64
	for _, n := range fig2Nodes {
		_, clH := newCluster(n, false, s.SlowCompute)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("mm", blocks, 0)
		hres := hadoopRun(clH, dH, app, hadoop.Config{Input: []string{"mm"}}, nil)
		hT = append(hT, hres.JobTime)

		_, clG := newCluster(n, false, s.SlowCompute)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("mm", blocks, 0)
		gres := glasswing(clG, dG, app, core.Config{
			Input: []string{"mm"}, Collector: core.BufferPool,
		}, nil)
		gT = append(gT, gres.JobTime)
		if n == 1 {
			mustVerify(apps.VerifyMatMul(gres.Output(), a, b, spec), "MM glasswing")
			mustVerify(apps.VerifyMatMul(hres.Output(), a, b, spec), "MM hadoop")
		}
	}
	hSp, gSp := speedup(hT), speedup(gT)
	for i, n := range fig2Nodes {
		t.AddRow(n, hT[i], gT[i], hSp[i], gSp[i])
	}
	t.Note("single-node advantage: Glasswing CPU %.2fx over Hadoop", hT[0]/gT[0])
	return t
}

// Fig3KMGPU regenerates Figure 3(c): KM with many centers on the GPU —
// Hadoop (HDFS) and Glasswing CPU (HDFS) for reference, GPMR (local FS,
// code adapted for many centers) and Glasswing GPU on both HDFS and the
// local FS.
func Fig3KMGPU(s Sizes) *Table {
	data, spec, app := kmSetup(s, s.KMCenters)
	blockSize := blockSizeFor(len(data), 256)
	blocks := kmBlocks(data, spec.Dim, blockSize)

	t := &Table{
		ID: "fig3c", Paper: "Figure 3(c)",
		Title: "KM (many centers) on GPU",
		Columns: []string{"nodes", "hadoop(s)", "gw-cpu(s)", "gpmr(s)",
			"gw-gpu-hdfs(s)", "gw-gpu-local(s)"},
	}
	var h1, g1 float64
	for _, n := range fig2Nodes {
		_, clH := newCluster(n, false, s.SlowCompute)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("km", blocks, 0)
		hres := hadoopRun(clH, dH, app, hadoop.Config{Input: []string{"km"}, UseCombiner: true}, spec.Prelude())

		_, clC := newCluster(n, false, s.SlowCompute)
		dC := newHDFS(clC, blockSize, true)
		dC.PreloadBlocks("km", blocks, 0)
		cres := glasswing(clC, dC, app, core.Config{
			Input: []string{"km"}, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())

		_, clP := newCluster(n, true, s.SlowCompute)
		lP := dfs.NewLocal(clP, blockSize)
		lP.PreloadBlocks("km", blocks, 0)
		pres := gpmrRun(clP, lP, app, gpmr.Config{Input: []string{"km"}, PartialReduce: true})

		_, clG := newCluster(n, true, s.SlowCompute)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("km", blocks, 0)
		gres := glasswing(clG, dG, app, core.Config{
			Input: []string{"km"}, Device: 1, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())

		_, clL := newCluster(n, true, s.SlowCompute)
		lL := dfs.NewLocal(clL, blockSize)
		lL.PreloadBlocks("km", blocks, 0)
		lres := glasswing(clL, lL, app, core.Config{
			Input: []string{"km"}, Device: 1, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())

		if n == 1 {
			h1, g1 = hres.JobTime, gres.JobTime
			mustVerify(apps.VerifyKMeans(gres.Output(), data, spec), "KM gw-gpu")
			mustVerify(apps.VerifyKMeans(pres.Output(), data, spec), "KM gpmr")
		}
		t.AddRow(n, hres.JobTime, cres.JobTime, pres.JobTime, gres.JobTime, lres.JobTime)
	}
	t.Note("single-node GPU gain over Hadoop: %.1fx (paper: ~20x)", h1/g1)
	return t
}

// Fig3MMGPU regenerates Figure 3(d): MM on the GPU. GPMR's MM generates
// input on the fly (its I/O line is compute-only); Glasswing GPU runs on
// HDFS and local FS, exposing the libhdfs/JNI gap.
func Fig3MMGPU(s Sizes) *Table {
	spec := apps.MMSpec{N: s.MMN, Tile: s.MMTile, ModelTile: s.MMModelTile}
	input, a, b, err := apps.MMData(43, spec)
	if err != nil {
		panic(err)
	}
	app := apps.MatMul(spec)
	blockSize := blockSizeFor(len(input), 256)
	blocks := dfs.SplitFixed(input, blockSize, int64(spec.RecordSize()))

	t := &Table{
		ID: "fig3d", Paper: "Figure 3(d)",
		Title:   "MM on GPU",
		Columns: []string{"nodes", "hadoop(s)", "gw-cpu(s)", "gpmr(s)", "gw-gpu-hdfs(s)", "gw-gpu-local(s)"},
	}
	for _, n := range fig2Nodes {
		_, clH := newCluster(n, false, s.SlowCompute)
		dH := newHDFS(clH, blockSize, false)
		dH.PreloadBlocks("mm", blocks, 0)
		hres := hadoopRun(clH, dH, app, hadoop.Config{Input: []string{"mm"}}, nil)

		_, clC := newCluster(n, false, s.SlowCompute)
		dC := newHDFS(clC, blockSize, true)
		dC.PreloadBlocks("mm", blocks, 0)
		cres := glasswing(clC, dC, app, core.Config{Input: []string{"mm"}, Collector: core.BufferPool}, nil)

		_, clP := newCluster(n, true, s.SlowCompute)
		lP := dfs.NewLocal(clP, blockSize)
		lP.PreloadBlocks("mm", blocks, 0)
		pres := gpmrRun(clP, lP, app, gpmr.Config{Input: []string{"mm"}, GenerateInput: true, KernelInefficiency: 5})

		_, clG := newCluster(n, true, s.SlowCompute)
		dG := newHDFS(clG, blockSize, true)
		dG.PreloadBlocks("mm", blocks, 0)
		gres := glasswing(clG, dG, app, core.Config{
			Input: []string{"mm"}, Device: 1, Collector: core.BufferPool,
		}, nil)

		_, clL := newCluster(n, true, s.SlowCompute)
		lL := dfs.NewLocal(clL, blockSize)
		lL.PreloadBlocks("mm", blocks, 0)
		lres := glasswing(clL, lL, app, core.Config{
			Input: []string{"mm"}, Device: 1, Collector: core.BufferPool,
		}, nil)

		if n == 1 {
			mustVerify(apps.VerifyMatMul(gres.Output(), a, b, spec), "MM gw-gpu")
		}
		t.AddRow(n, hres.JobTime, cres.JobTime, pres.JobTime, gres.JobTime, lres.JobTime)
	}
	t.Note("HDFS vs local FS on the GPU exposes the libhdfs/JNI overhead (paper §IV-A2)")
	return t
}

// Fig3KMSmall regenerates Figure 3(e): KM with few centers (unmodified
// GPMR configuration) on the local FS. The workload is I/O dominant;
// GPMR's total is IO+compute where Glasswing's is ~max(IO, compute).
func Fig3KMSmall(s Sizes) *Table {
	data, spec, app := kmSetup(s, s.KMSmall)
	blockSize := blockSizeFor(len(data), 256)
	blocks := kmBlocks(data, spec.Dim, blockSize)

	t := &Table{
		ID: "fig3e", Paper: "Figure 3(e)",
		Title:   "KM (few centers) on GPU, local FS",
		Columns: []string{"nodes", "gpmr-compute(s)", "gpmr-total(s)", "glasswing(s)", "gpmr/gw"},
	}
	for _, n := range fig2Nodes {
		_, clP := newCluster(n, true, s.Slow)
		lP := dfs.NewLocal(clP, blockSize)
		lP.PreloadBlocks("km", blocks, 0)
		pres := gpmrRun(clP, lP, app, gpmr.Config{Input: []string{"km"}, PartialReduce: true})

		_, clG := newCluster(n, true, s.Slow)
		lG := dfs.NewLocal(clG, blockSize)
		lG.PreloadBlocks("km", blocks, 0)
		gres := glasswing(clG, lG, app, core.Config{
			Input: []string{"km"}, Device: 1, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())
		if n == 1 {
			mustVerify(apps.VerifyKMeans(gres.Output(), data, spec), "KM-small glasswing")
		}
		t.AddRow(n, pres.Compute, pres.JobTime, gres.JobTime, pres.JobTime/gres.JobTime)
	}
	t.Note("paper: GPMR total ~1.5x Glasswing for all cluster sizes")
	return t
}
