package expt

import "io"

// Experiment binds an experiment id to the function regenerating it.
type Experiment struct {
	ID    string
	Paper string
	Run   func(Sizes) *Table
}

// All lists every experiment in the order the paper presents them.
var All = []Experiment{
	{"fig1", "Figure 1", Fig1},
	{"tab1", "Table I", TableI},
	{"fig2a", "Figure 2(a)", Fig2PVC},
	{"fig2b", "Figure 2(b)", Fig2WC},
	{"fig2c", "Figure 2(c)", Fig2TS},
	{"fig3a", "Figure 3(a)", Fig3KMCPU},
	{"fig3b", "Figure 3(b)", Fig3MMCPU},
	{"fig3c", "Figure 3(c)", Fig3KMGPU},
	{"fig3d", "Figure 3(d)", Fig3MMGPU},
	{"fig3e", "Figure 3(e)", Fig3KMSmall},
	{"tab2", "Table II", TableII},
	{"tab3", "Table III", TableIII},
	{"fig4a", "Figure 4(a)", Fig4a},
	{"fig4b", "Figure 4(b)", Fig4b},
	{"fig5", "Figure 5", Fig5},
	{"vert", "Section IV-C", Vertical},
	{"vert-k20m", "Section IV-A2 (Type-2)", VerticalK20mScaling},
	{"abl-olap", "ablation: overlap", AblationOverlap},
	{"abl-buf", "ablation: buffering", AblationBuffering},
	{"abl-push", "ablation: push vs pull", AblationPushPull},
	{"abl-comp", "ablation: compression", AblationCompression},
	{"abl-net", "ablation: GbE vs IPoIB fabric", AblationNetwork},
	{"ext-hadoopcl", "extension: HadoopCL comparison", ExtHadoopCL},
	{"ext-hetero", "extension: heterogeneous cluster scheduling", ExtHeterogeneous},
	{"ext-straggler", "extension: straggler + speculative execution", ExtStraggler},
	{"obs-stall", "observability: pipeline stall analysis", PipelineStalls},
}

// Lookup finds an experiment by id, or nil.
func Lookup(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// RunAll executes every experiment at the given sizes, printing each table
// to w as it completes.
func RunAll(w io.Writer, s Sizes) []*Table {
	var tables []*Table
	for _, e := range All {
		t := e.Run(s)
		t.Print(w)
		tables = append(tables, t)
	}
	return tables
}
