package expt

import (
	"strings"

	"glasswing/internal/apps"
	"glasswing/internal/core"
)

// Fig1 regenerates Figure 1 — the paper's diagram of the 5-stage map and
// reduce pipelines — not as a static drawing but as the measured activity
// timeline of a real traced run: every stage of both pipelines plus the
// concurrent merge phase, with the overlap visible.
func Fig1(s Sizes) *Table {
	blocks, blockSize, want := wcBreakdownData(s)
	var total int64
	for _, b := range blocks {
		total += int64(len(b))
	}
	res := breakdownRun(apps.WordCount(), blocks, blockSize, core.Config{
		Device:         1, // GPU, so the Stage and Retrieve stages are alive
		Collector:      core.HashTable,
		UseCombiner:    true,
		Compress:       true,
		CacheThreshold: total / 8,
		Trace:          true,
	}, true, nil)
	mustVerify(apps.VerifyCounts(res.Output(), want), "Fig1 WC")

	t := &Table{
		ID: "fig1", Paper: "Figure 1",
		Title:   "The 5-stage map and reduce pipelines, as actually executed (WC, 1 node, GPU)",
		Columns: []string{"timeline"},
	}
	var sb strings.Builder
	res.Trace.Render(&sb, 96)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		t.AddRow(line)
	}
	t.Note("each '#' column is pipeline activity; rows overlap where the paper's Figure 1 draws concurrent stages")
	return t
}

// TableI regenerates Table I — the paper's comparison between Glasswing and
// related projects — annotated with what this repository implements.
func TableI(Sizes) *Table {
	t := &Table{
		ID: "tab1", Paper: "Table I",
		Title:   "Comparison between Glasswing and related projects",
		Columns: []string{"system", "out-of-core", "compute-device", "cluster", "in-this-repo"},
	}
	t.AddRow("Phoenix", "no", "CPU-only", "no", "-")
	t.AddRow("Tiled-MapReduce", "no", "NUMA CPU", "no", "-")
	t.AddRow("Mars", "no", "GPU-only", "no", "-")
	t.AddRow("Ji et al.", "no", "GPU-only", "no", "-")
	t.AddRow("MapCG", "no", "CPU/GPU", "no", "-")
	t.AddRow("Chen et al.", "no", "GPU-only", "no", "-")
	t.AddRow("GPMR", "no", "GPU-only", "yes", "internal/gpmr (baseline)")
	t.AddRow("Chen et al. (Fusion)", "no", "AMD Fusion", "no", "-")
	t.AddRow("Merge", "no", "any", "no", "-")
	t.AddRow("HadoopCL", "yes", "APARAPI", "yes", "internal/hadoopcl (extension)")
	t.AddRow("Hadoop", "yes", "CPU-only", "yes", "internal/hadoop (baseline)")
	t.AddRow("Glasswing", "yes", "OpenCL", "yes", "internal/core + internal/native")
	t.Note("rows follow the paper's Table I; the last column maps the comparable systems built here")
	return t
}
