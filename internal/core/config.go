// Package core implements Glasswing, the paper's contribution: a MapReduce
// framework structured as a light-weight library that scales horizontally by
// distributing coarse-grained work over cluster nodes and vertically by
// exploiting fine-grained parallelism on OpenCL compute devices.
//
// The framework has three phases (§III): a map phase and a reduce phase,
// each an instantiation of the 5-stage Glasswing pipeline
// (Input → Stage → Kernel → Retrieve → Output), and a merge phase that
// manages intermediate data concurrently with the map phase. The pipeline
// overlaps disk access, host<->device memory transfers, computation and
// inter-node communication; single/double/triple buffering controls how far
// stages within the input and output groups may run ahead of each other.
package core

import (
	"fmt"

	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// CollectorKind selects the mechanism map kernels use to collect and store
// their output key/value pairs (§III-F).
type CollectorKind int

const (
	// HashTable stores each key's contents once and chains its values; it
	// is the only collector that supports a combiner.
	HashTable CollectorKind = iota
	// BufferPool is the simple shared output pool: each emit is a single
	// atomic bump allocation. Cheap in the kernel, expensive to partition
	// (each key/value occurrence is decoded individually, §IV-B1).
	BufferPool
)

func (c CollectorKind) String() string {
	if c == HashTable {
		return "hash table"
	}
	return "buffer pool"
}

// CostModel expresses an application kernel's work in device ops (see
// package hw for the unit). The engine accumulates these while executing
// the real kernel body and charges the result to the simulated device.
type CostModel struct {
	// OpsPerRecord is charged per map record or per reduce key.
	OpsPerRecord float64
	// OpsPerByte is charged per byte of input the kernel touches.
	OpsPerByte float64
	// OpsPerValue is charged per reduce/combine input value.
	OpsPerValue float64
	// OpsPerEmit is the non-atomic cost of producing one output pair
	// (the atomic part is owned by the collector).
	OpsPerEmit float64
	// OpsPerBatch is charged once per kernel launch, independent of batch
	// size: the fixed launch/dispatch overhead that batch-oriented kernels
	// amortize over many records (the per-launch constant the Xeon Phi
	// vectorized-map work eliminates from the per-record path).
	OpsPerBatch float64
}

// MapFunc is an application map kernel: it consumes one record and emits
// key/value pairs, exactly the shape of the paper's OpenCL map functions.
type MapFunc func(rec kv.Pair, emit func(key, value []byte))

// ReduceFunc is an application reduce (or combine) kernel: it consumes one
// key with its values and emits output pairs.
type ReduceFunc func(key []byte, values [][]byte, emit func(key, value []byte))

// App is a Glasswing application: the map/reduce/combine kernels plus their
// cost models and the input record format. The paper's Glasswing OpenCL API
// corresponds to the kernel functions; its Configuration API corresponds to
// Config.
type App struct {
	Name string

	// Parse splits one raw input block into records (the input format).
	Parse func(block []byte) []kv.Pair
	// ParseCostPerByte is the host-side cost of Parse in ops/byte,
	// charged in the pipeline's Input stage.
	ParseCostPerByte float64

	Map     MapFunc
	MapCost CostModel
	// MapBatch, if non-nil, is the batch form of the map kernel: one call
	// consumes a whole chunk of records and appends output into a columnar
	// kv.Batch, with no per-record closure dispatch or per-emit allocation.
	// Runtimes with a batch fast path (native, dist) prefer it; the others
	// keep calling Map. Apps built with NewBatchApp derive Map from
	// MapBatch, so the two can never emit different pairs.
	MapBatch MapBatchFunc

	// Combine, if non-nil, is the application-specific combiner: a local
	// reduce over the results of one map chunk. Only supported with the
	// HashTable collector (§III-F).
	Combine     ReduceFunc
	CombineCost CostModel

	// Reduce, if nil, skips reduction entirely: the framework writes each
	// merged, sorted partition directly (TeraSort, §IV-A1).
	Reduce     ReduceFunc
	ReduceCost CostModel
	// ReduceBatch, if non-nil, is the batch form of the reduce kernel: it
	// appends output pairs for one key group into a kv.Batch instead of
	// passing them through an emit closure that must copy them out.
	ReduceBatch ReduceBatchFunc
}

// Config carries the job parameters of the paper's Configuration API.
type Config struct {
	// Input names the files to process.
	Input []string
	// OutputPath prefixes the output partition files.
	OutputPath string
	// OutputReplication is the DFS replication of job output (TeraSort
	// uses 1, everything else the DFS default).
	OutputReplication int

	// Device selects the compute device on every node: 0 is the CPU,
	// 1 the first accelerator.
	Device int
	// DevicePerNode, if non-empty, overrides Device per node (index i is
	// node i's device). It enables heterogeneous clusters where only some
	// nodes carry accelerators — the scheduling setting of Shirahata et
	// al. that the paper cites in §II.
	DevicePerNode []int
	// BalanceByDevice weights the coordinator's split assignment by each
	// node's device peak throughput instead of splitting evenly, so a
	// GPU node receives proportionally more input in a mixed cluster.
	BalanceByDevice bool
	// Buffering is the pipeline buffering level: 1 (single), 2 (double)
	// or 3 (triple) buffers per pipeline group (§III-D).
	Buffering int
	// MapThreads and ReduceThreads are the kernel global sizes (0 = a
	// sensible default for the device). These are the paper's predominant
	// tuning variables (§I).
	MapThreads    int
	ReduceThreads int

	// PartitionThreads is N: host threads speeding up the map pipeline's
	// partitioning stage (§III-A, Fig 4a).
	PartitionThreads int
	// PartitionsPerNode is P: intermediate partitions per node. More
	// partitions mean cheaper key comparisons, parallel merging and
	// parallel flushing (§IV-B3, Fig 4b).
	PartitionsPerNode int
	// CacheThreshold is the aggregate in-memory intermediate cache size
	// (bytes) above which partitions are merged and flushed to disk.
	CacheThreshold int64
	// MaxSpillFiles caps the number of on-disk run files per partition;
	// beyond it the continuous multi-way merger compacts them (§III-B).
	MaxSpillFiles int
	// MergeThreads is the number of merger/flusher threads (the paper's
	// experiments set it equal to P; 0 keeps that default).
	MergeThreads int

	// Collector picks the kernel output mechanism.
	Collector CollectorKind
	// UseCombiner runs App.Combine over each chunk's hash table.
	UseCombiner bool
	// Compress stores intermediate runs DEFLATE-compressed (§III-B).
	Compress bool

	// ConcurrentKeys is the number of intermediate keys one reduce kernel
	// launch processes in parallel (§III-C, Fig 5).
	ConcurrentKeys int
	// KeysPerThread makes each reduce kernel thread process several keys
	// sequentially, amortizing thread-creation overhead (§III-C).
	KeysPerThread int
	// ThreadsPerKey processes a single key with multiple threads
	// (parallel per-key reduction for compute-heavy reducers).
	ThreadsPerKey int
	// MaxValuesPerLaunch bounds one kernel invocation; longer value lists
	// carry state across launches in per-key scratch buffers (§III-C).
	MaxValuesPerLaunch int

	// Partitioner overrides hash partitioning (TeraSort installs a
	// sampled range partitioner to achieve total order).
	Partitioner func(key []byte, n int) int

	// Overlap enables pipeline overlap. It defaults to true; the
	// sequential mode exists as an ablation of the paper's central claim.
	NoOverlap bool
	// PullShuffle switches intermediate data delivery from Glasswing's
	// push to a Hadoop-style reducer-side pull (ablation, §IV-A1).
	PullShuffle bool

	// FaultInjector, if set, is consulted after every map kernel
	// execution: returning true fails the task attempt. The framework
	// then applies the standard MapReduce recovery the paper describes
	// as a bookkeeping-only addition (§III-E): the attempt's partial
	// output is discarded (nothing has been partitioned or pushed yet —
	// durability starts at the partitioning stage) and the split is
	// rescheduled on the same node. Time already spent reading and
	// computing the failed attempt stays charged, as it would in
	// reality.
	FaultInjector func(file string, split, attempt int) bool
	// ReduceFaultInjector, if set, is consulted when a reduce task
	// finishes processing its partition: returning true fails the attempt.
	// The partial output is discarded and the partition requeues through
	// the reduce-side scheduler, bounded by MaxTaskAttempts — the reduce
	// half of §III-E's "like Hadoop's" fault tolerance.
	ReduceFaultInjector func(part, attempt int) bool
	// MaxTaskAttempts bounds injected failures per task — map split or
	// reduce partition — (default 4, Hadoop's mapred.map.max.attempts);
	// exceeding it fails the job.
	MaxTaskAttempts int
	// NodeFailures schedules whole-node deaths: at each entry's time
	// (seconds after the map phase begins) the node stops mid-job, its local
	// intermediate store becomes unreachable, completed map tasks whose
	// output lived only there re-execute on surviving nodes, and the
	// schedulers stop assigning it work. Failures that would fire after
	// the map phase, target an already-dead node, or would kill the last
	// live node are skipped. Incompatible with PullShuffle.
	NodeFailures []NodeFailure
	// SpeculativeSlowdown enables speculative execution: an attempt
	// running longer than SpeculativeSlowdown x the median completed
	// attempt time gets a backup copy on an idle node and the first
	// finisher wins. 0 disables it (the paper runs Hadoop both ways and
	// disables it on the stable DAS cluster, §IV-A).
	SpeculativeSlowdown float64

	// Trace records a per-stage activity timeline in Result.Trace,
	// visualizing the pipeline overlap (Trace.Render draws a Gantt chart).
	Trace bool
	// Metrics, if set, receives the job's counters and gauges: the
	// fault-tolerance activity behind Result.Stats, the headline timings,
	// and per-stage busy time. A registry may be shared across runs —
	// counters accumulate, and Result.Stats still reports only this run's
	// activity. Nil runs with a private registry.
	Metrics *obs.Registry

	// StaticScheduling pins every split to its affinity-assigned node
	// instead of the default dynamic hand-out with work stealing
	// (ablation; see the straggler experiment).
	StaticScheduling bool
}

// withDefaults fills zero fields with the defaults used throughout the
// paper's evaluation.
func (c Config) withDefaults() Config {
	if c.OutputPath == "" {
		c.OutputPath = "out"
	}
	if c.Buffering == 0 {
		c.Buffering = 2
	}
	if c.Buffering < 1 || c.Buffering > 3 {
		panic(fmt.Sprintf("core: buffering level %d out of range [1,3]", c.Buffering))
	}
	if c.PartitionThreads == 0 {
		c.PartitionThreads = 8
	}
	if c.PartitionsPerNode == 0 {
		c.PartitionsPerNode = 8
	}
	if c.MergeThreads == 0 {
		c.MergeThreads = c.PartitionsPerNode
	}
	if c.CacheThreshold == 0 {
		c.CacheThreshold = 64 << 20
	}
	if c.MaxSpillFiles == 0 {
		c.MaxSpillFiles = 8
	}
	if c.ConcurrentKeys == 0 {
		c.ConcurrentKeys = 4096
	}
	if c.KeysPerThread == 0 {
		c.KeysPerThread = 4
	}
	if c.ThreadsPerKey == 0 {
		c.ThreadsPerKey = 1
	}
	if c.MaxValuesPerLaunch == 0 {
		c.MaxValuesPerLaunch = 1 << 16
	}
	if c.Partitioner == nil {
		c.Partitioner = kv.Partition
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 4
	}
	return c
}
