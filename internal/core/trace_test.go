package core

import (
	"strings"
	"testing"
)

// A span much shorter than one chart column must still paint a cell: the
// truncated lo and the rounded-up hi can land on the same column, which used
// to drop the span from the Gantt chart entirely.
func TestTraceRenderSubColumnSpan(t *testing.T) {
	tr := &Trace{}
	tr.add(0, "map/kernel", 0, 100) // sets the window: one column = 1s
	tr.add(0, "merge", 50.2, 50.3)  // a tenth of a column
	tr.add(0, "spill", 99.95, 100)  // sub-column at the very edge of the window
	var sb strings.Builder
	tr.Render(&sb, 100)
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.Contains(line, "merge") && !strings.Contains(line, "spill") {
			continue
		}
		if !strings.Contains(line, "#") {
			t.Errorf("sub-column span renders no cells:\n%s", sb.String())
		}
	}
}

func TestTraceMarksAndConversion(t *testing.T) {
	tr := &Trace{}
	tr.add(1, "map/kernel", 1, 2)
	tr.mark(1, "node-death", 1.5)
	if len(tr.Marks) != 1 || tr.Marks[0].Name != "node-death" {
		t.Fatalf("marks = %+v", tr.Marks)
	}
	spans, instants := tr.ObsSpans(), tr.ObsInstants()
	if len(spans) != 1 || spans[0].Stage != "map/kernel" || spans[0].Node != 1 {
		t.Errorf("ObsSpans = %+v", spans)
	}
	if len(instants) != 1 || instants[0].At != 1.5 {
		t.Errorf("ObsInstants = %+v", instants)
	}

	// nil traces convert to empty, and mark/Span are no-ops.
	var nilTr *Trace
	nilTr.mark(0, "x", 1)
	if nilTr.ObsSpans() != nil || nilTr.ObsInstants() != nil {
		t.Error("nil trace should convert to nil slices")
	}
}
