package core

import (
	"strconv"

	"glasswing/internal/obs"
)

// jobCounters routes the fault-tolerance counters through the metrics
// registry. The registry is the source of truth — JobStats is derived from
// it at the end of the run. Because a registry may be shared across runs
// (iterative jobs, benchmark sweeps), each job records the counter values at
// start and reports the difference.
type jobCounters struct {
	mapRetries      *obs.Counter
	reduceRetries   *obs.Counter
	nodesLost       *obs.Counter
	mapRecoveries   *obs.Counter
	speculativeWins *obs.Counter
	base            JobStats
}

func newJobCounters(reg *obs.Registry) *jobCounters {
	c := &jobCounters{
		mapRetries:      reg.Counter("map_retries_total"),
		reduceRetries:   reg.Counter("reduce_retries_total"),
		nodesLost:       reg.Counter("nodes_lost_total"),
		mapRecoveries:   reg.Counter("map_recoveries_total"),
		speculativeWins: reg.Counter("speculative_wins_total"),
	}
	c.base = c.totals()
	return c
}

func (c *jobCounters) totals() JobStats {
	return JobStats{
		MapRetries:      int(c.mapRetries.Value()),
		ReduceRetries:   int(c.reduceRetries.Value()),
		NodesLost:       int(c.nodesLost.Value()),
		MapRecoveries:   int(c.mapRecoveries.Value()),
		SpeculativeWins: int(c.speculativeWins.Value()),
	}
}

// stats returns this run's activity: the registry totals minus the values
// captured when the job started.
func (c *jobCounters) stats() JobStats {
	t := c.totals()
	return JobStats{
		MapRetries:      t.MapRetries - c.base.MapRetries,
		ReduceRetries:   t.ReduceRetries - c.base.ReduceRetries,
		NodesLost:       t.NodesLost - c.base.NodesLost,
		MapRecoveries:   t.MapRecoveries - c.base.MapRecoveries,
		SpeculativeWins: t.SpeculativeWins - c.base.SpeculativeWins,
	}
}

// publishResult exposes the finished job's headline numbers and per-stage
// busy breakdown as gauges, so a metrics snapshot alone reconstructs the
// paper's Tables II/III figures without holding the Result.
func publishResult(reg *obs.Registry, res *Result) {
	reg.Gauge("job_time_seconds").Set(res.JobTime)
	reg.Gauge("map_elapsed_seconds").Set(res.MapElapsed)
	reg.Gauge("merge_delay_seconds").Set(res.MergeDelay)
	reg.Gauge("reduce_elapsed_seconds").Set(res.ReduceElapsed)
	reg.Gauge("intermediate_bytes").Set(float64(res.IntermediateBytes))
	reg.Gauge("output_pairs").Set(float64(res.OutputPairs))
	publishStages(reg, "map", res.MapStages)
	publishStages(reg, "reduce", res.ReduceStages)
}

func publishStages(reg *obs.Registry, phase string, all []StageTimes) {
	for node, st := range all {
		if st.Elapsed == 0 {
			continue // node never ran this phase (dead, or reduce skipped)
		}
		set := func(stage string, v float64) {
			reg.Gauge("stage_busy_seconds",
				obs.L("node", strconv.Itoa(node)),
				obs.L("phase", phase),
				obs.L("stage", stage)).Set(v)
		}
		set("input", st.Input)
		set("stage", st.Stage)
		set("kernel", st.Kernel)
		set("retrieve", st.Retrieve)
		set("partition", st.Partition)
		set("elapsed", st.Elapsed)
	}
}
