package core

import (
	"strconv"

	"glasswing/internal/obs"
)

// jobCounters routes the fault-tolerance counters through the metrics
// registry. The registry is the source of truth — JobStats is derived from
// it at the end of the run. Because a registry may be shared across runs
// (iterative jobs, benchmark sweeps), each job records the counter values at
// start and reports the difference.
type jobCounters struct {
	mapRetries      *obs.Counter
	reduceRetries   *obs.Counter
	nodesLost       *obs.Counter
	mapRecoveries   *obs.Counter
	speculativeWins *obs.Counter
	base            JobStats

	conserv conservCounters
}

// conservCounters is the job's record/byte conservation ledger (the
// ConservationMetricNames vocabulary): every stage boundary counts what it
// consumed and produced, so a metrics snapshot can prove the pipeline
// neither lost nor duplicated data. All sites count winning attempts only —
// a resolved task whose twin lost the race contributes nothing — except the
// explicit drop/loss counters, which account for data that legitimately
// vanished (dead stores, dedup of re-executed tasks).
type conservCounters struct {
	mapRecordsIn    *obs.Counter // input records consumed by resolved map tasks
	mapPairsOut     *obs.Counter // pairs emitted by resolved map tasks
	partRecords     *obs.Counter // pairs serialized into partition runs
	partRuns        *obs.Counter // runs produced by the partitioning stage
	partRawBytes    *obs.Counter // payload bytes entering runs
	partStoredBytes *obs.Counter // encoded bytes leaving runs (post-compression)

	storeAccepted    *obs.Counter // records accepted into intermediate stores
	storeDupDropped  *obs.Counter // records dropped as re-delivery duplicates
	storeDeadDropped *obs.Counter // records dropped en route to / at a dead node
	storeLost        *obs.Counter // accepted records lost with a dead store

	mergeRecordsIn  *obs.Counter // records entering intermediate merges
	mergeRecordsOut *obs.Counter // records leaving intermediate merges

	reduceRecordsIn *obs.Counter // records read by winning reduce attempts
	reduceGroupsIn  *obs.Counter // key groups read by winning reduce attempts
	outputPairs     *obs.Counter // pairs persisted by winning reduce attempts
}

// ConservationMetricNames lists the ledger counters both runtimes publish
// (internal/conformance reads them back to check records in == records out
// per stage).
func ConservationMetricNames() []string {
	return []string{
		"conserv_map_records_in_total",
		"conserv_map_pairs_out_total",
		"conserv_partition_records_total",
		"conserv_partition_runs_total",
		"conserv_partition_raw_bytes_total",
		"conserv_partition_stored_bytes_total",
		"conserv_store_accepted_records_total",
		"conserv_store_dup_dropped_records_total",
		"conserv_store_dead_dropped_records_total",
		"conserv_store_lost_records_total",
		"conserv_merge_records_in_total",
		"conserv_merge_records_out_total",
		"conserv_reduce_records_in_total",
		"conserv_reduce_groups_in_total",
		"conserv_output_pairs_total",
	}
}

func newConservCounters(reg *obs.Registry) conservCounters {
	return conservCounters{
		mapRecordsIn:     reg.Counter("conserv_map_records_in_total"),
		mapPairsOut:      reg.Counter("conserv_map_pairs_out_total"),
		partRecords:      reg.Counter("conserv_partition_records_total"),
		partRuns:         reg.Counter("conserv_partition_runs_total"),
		partRawBytes:     reg.Counter("conserv_partition_raw_bytes_total"),
		partStoredBytes:  reg.Counter("conserv_partition_stored_bytes_total"),
		storeAccepted:    reg.Counter("conserv_store_accepted_records_total"),
		storeDupDropped:  reg.Counter("conserv_store_dup_dropped_records_total"),
		storeDeadDropped: reg.Counter("conserv_store_dead_dropped_records_total"),
		storeLost:        reg.Counter("conserv_store_lost_records_total"),
		mergeRecordsIn:   reg.Counter("conserv_merge_records_in_total"),
		mergeRecordsOut:  reg.Counter("conserv_merge_records_out_total"),
		reduceRecordsIn:  reg.Counter("conserv_reduce_records_in_total"),
		reduceGroupsIn:   reg.Counter("conserv_reduce_groups_in_total"),
		outputPairs:      reg.Counter("conserv_output_pairs_total"),
	}
}

func newJobCounters(reg *obs.Registry) *jobCounters {
	c := &jobCounters{
		mapRetries:      reg.Counter("map_retries_total"),
		reduceRetries:   reg.Counter("reduce_retries_total"),
		nodesLost:       reg.Counter("nodes_lost_total"),
		mapRecoveries:   reg.Counter("map_recoveries_total"),
		speculativeWins: reg.Counter("speculative_wins_total"),
		conserv:         newConservCounters(reg),
	}
	c.base = c.totals()
	return c
}

func (c *jobCounters) totals() JobStats {
	return JobStats{
		MapRetries:      int(c.mapRetries.Value()),
		ReduceRetries:   int(c.reduceRetries.Value()),
		NodesLost:       int(c.nodesLost.Value()),
		MapRecoveries:   int(c.mapRecoveries.Value()),
		SpeculativeWins: int(c.speculativeWins.Value()),
	}
}

// stats returns this run's activity: the registry totals minus the values
// captured when the job started.
func (c *jobCounters) stats() JobStats {
	t := c.totals()
	return JobStats{
		MapRetries:      t.MapRetries - c.base.MapRetries,
		ReduceRetries:   t.ReduceRetries - c.base.ReduceRetries,
		NodesLost:       t.NodesLost - c.base.NodesLost,
		MapRecoveries:   t.MapRecoveries - c.base.MapRecoveries,
		SpeculativeWins: t.SpeculativeWins - c.base.SpeculativeWins,
	}
}

// publishResult exposes the finished job's headline numbers and per-stage
// busy breakdown as gauges, so a metrics snapshot alone reconstructs the
// paper's Tables II/III figures without holding the Result.
func publishResult(reg *obs.Registry, res *Result) {
	reg.Gauge("job_time_seconds").Set(res.JobTime)
	reg.Gauge("map_elapsed_seconds").Set(res.MapElapsed)
	reg.Gauge("merge_delay_seconds").Set(res.MergeDelay)
	reg.Gauge("reduce_elapsed_seconds").Set(res.ReduceElapsed)
	reg.Gauge("intermediate_bytes").Set(float64(res.IntermediateBytes))
	reg.Gauge("output_pairs").Set(float64(res.OutputPairs))
	publishStages(reg, "map", res.MapStages)
	publishStages(reg, "reduce", res.ReduceStages)
}

func publishStages(reg *obs.Registry, phase string, all []StageTimes) {
	for node, st := range all {
		if st.Elapsed == 0 {
			continue // node never ran this phase (dead, or reduce skipped)
		}
		set := func(stage string, v float64) {
			reg.Gauge("stage_busy_seconds",
				obs.L("node", strconv.Itoa(node)),
				obs.L("phase", phase),
				obs.L("stage", stage)).Set(v)
		}
		set("input", st.Input)
		set("stage", st.Stage)
		set("kernel", st.Kernel)
		set("retrieve", st.Retrieve)
		set("partition", st.Partition)
		set("elapsed", st.Elapsed)
	}
}
