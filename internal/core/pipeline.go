package core

import (
	"fmt"

	"glasswing/internal/cl"
	"glasswing/internal/dfs"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// splitRef identifies one input split (a DFS block).
type splitRef struct {
	file *dfs.File
	idx  int
}

// mapChunk travels through the map pipeline's input group.
type mapChunk struct {
	task    schedTask[splitRef]
	records []kv.Pair
	bytes   int64
}

// outChunk travels through the output group.
type outChunk struct {
	task          schedTask[splitRef]
	pairs         []kv.Pair
	records       int // input records the chunk was mapped from
	volume        int64
	decodePerPair float64
}

// StageTimes is the per-stage busy-time breakdown of one pipeline
// instantiation, the instrumentation behind the paper's Tables II/III.
type StageTimes struct {
	Input     float64
	Stage     float64
	Kernel    float64
	Retrieve  float64
	Partition float64 // "Output" for the reduce pipeline
	Elapsed   float64
}

// runMapPipeline executes one node's instantiation of the 5-stage map
// pipeline (§III-A): Input reads and splits input files; Stage delivers the
// split to the compute device; Kernel runs the OpenCL map threads; Retrieve
// collects the produced pairs back to host memory; Partition sorts,
// partitions, persists and pushes the intermediate data. With overlap the
// five stages are independent processes coupled by queues and gated by the
// buffer pools; otherwise every chunk passes through the stages
// back-to-back (ablation).
//
// Fault tolerance runs through the shared scheduler (§III-E): a split is
// resolved when its output has been partitioned and handed off for delivery
// — not merely computed — so a node death can tell exactly which completed
// work it lost. If the node dies mid-phase, each stage drops in-flight
// chunks at its next boundary (abandoning them back to the scheduler) and
// drains; blocking charges already started run to completion, modeling
// failure-detection delay.
func (j *job) runMapPipeline(p *sim.Proc, nodeIdx int) StageTimes {
	env := p.Env()
	node := j.cluster.Nodes[nodeIdx]
	ctx := j.ctxs[nodeIdx]
	cfg := j.cfg
	var times StageTimes
	start := p.Now()

	inBufs := sim.NewResource(env, cfg.Buffering)
	outBufs := sim.NewResource(env, cfg.Buffering)
	stageQ := sim.NewQueue[mapChunk](env, 0)
	kernelQ := sim.NewQueue[mapChunk](env, 0)
	retrQ := sim.NewQueue[outChunk](env, 0)
	partQ := sim.NewQueue[outChunk](env, 0)

	dead := func() bool { return j.deadNodes[nodeIdx] }
	// retry handles an injected attempt failure: discard the attempt's
	// output and reschedule the split, unless a twin attempt is still
	// running (it decides the task's fate) or attempts are exhausted.
	retry := func(t schedTask[splitRef]) {
		j.counters.mapRetries.Inc()
		if j.sched.fail(t, nodeIdx) == failExhausted {
			// Record the job failure; the task counts as resolved so the
			// pipelines drain instead of deadlocking.
			if j.failErr == nil {
				j.failErr = fmt.Errorf("core: split %d of %q failed %d attempts",
					t.payload.idx, t.payload.file.FileName, j.cfg.MaxTaskAttempts)
			}
		}
	}

	input := func(p *sim.Proc) {
		for {
			t, ok := j.sched.next(p, nodeIdx)
			if !ok {
				stageQ.Close()
				return
			}
			inBufs.Acquire(p, 1)
			if dead() {
				inBufs.Release(1)
				j.sched.abandon(t, nodeIdx)
				stageQ.Close()
				return
			}
			t0 := p.Now()
			block, err := j.fs.ReadBlock(p, node, t.payload.file, t.payload.idx)
			if err != nil {
				panic(err)
			}
			recs := j.app.Parse(block)
			node.HostWork(p, j.app.ParseCostPerByte*float64(len(block)), 1)
			times.Input += p.Now() - t0
			j.trace.add(nodeIdx, "map/input", t0, p.Now())
			if dead() {
				inBufs.Release(1)
				j.sched.abandon(t, nodeIdx)
				stageQ.Close()
				return
			}
			stageQ.Put(p, mapChunk{task: t, records: recs, bytes: int64(len(block))})
		}
	}

	stage := func(p *sim.Proc) {
		for {
			c, ok := stageQ.Get(p)
			if !ok {
				kernelQ.Close()
				return
			}
			if dead() {
				inBufs.Release(1)
				j.sched.abandon(c.task, nodeIdx)
				continue
			}
			t0 := p.Now()
			ctx.EnqueueWrite(p, c.bytes)
			times.Stage += p.Now() - t0
			j.trace.add(nodeIdx, "map/stage", t0, p.Now())
			kernelQ.Put(p, c)
		}
	}

	kernel := func(p *sim.Proc) {
		coll := newCollector(j.app, cfg)
		for {
			c, ok := kernelQ.Get(p)
			if !ok {
				retrQ.Close()
				return
			}
			if dead() {
				inBufs.Release(1)
				j.sched.abandon(c.task, nodeIdx)
				continue
			}
			outBufs.Acquire(p, 1)
			t0 := p.Now()
			oc := j.execMapKernel(p, ctx, coll, c)
			times.Kernel += p.Now() - t0
			j.trace.add(nodeIdx, "map/kernel", t0, p.Now())
			j.traceAttempt(nodeIdx, c.task.attempt, c.task.spec, t0, p.Now())
			inBufs.Release(1)
			if dead() {
				outBufs.Release(1)
				j.sched.abandon(c.task, nodeIdx)
				continue
			}
			if cfg.FaultInjector != nil && cfg.FaultInjector(c.task.payload.file.FileName, c.task.payload.idx, c.task.attempt) {
				// Task failure: discard the attempt's output (it never
				// reached the durable partitioning stage) and reschedule
				// the split. The wasted read/compute time stays charged.
				outBufs.Release(1)
				retry(c.task)
				continue
			}
			retrQ.Put(p, oc)
		}
	}

	retrieve := func(p *sim.Proc) {
		for {
			oc, ok := retrQ.Get(p)
			if !ok {
				partQ.Close()
				return
			}
			if dead() {
				outBufs.Release(1)
				j.sched.abandon(oc.task, nodeIdx)
				continue
			}
			t0 := p.Now()
			ctx.EnqueueRead(p, oc.volume)
			times.Retrieve += p.Now() - t0
			j.trace.add(nodeIdx, "map/retrieve", t0, p.Now())
			partQ.Put(p, oc)
		}
	}

	partition := func(p *sim.Proc) {
		for {
			oc, ok := partQ.Get(p)
			if !ok {
				return
			}
			if dead() {
				outBufs.Release(1)
				j.sched.abandon(oc.task, nodeIdx)
				continue
			}
			t0 := p.Now()
			j.partitionChunk(p, nodeIdx, oc)
			times.Partition += p.Now() - t0
			j.trace.add(nodeIdx, "map/partition", t0, p.Now())
			outBufs.Release(1)
		}
	}

	if cfg.NoOverlap {
		// Ablation: the same work with the stages interlocked end-to-end.
		for {
			t, ok := j.sched.next(p, nodeIdx)
			if !ok {
				break
			}
			if dead() {
				j.sched.abandon(t, nodeIdx)
				break
			}
			t0 := p.Now()
			block, err := j.fs.ReadBlock(p, node, t.payload.file, t.payload.idx)
			if err != nil {
				panic(err)
			}
			recs := j.app.Parse(block)
			node.HostWork(p, j.app.ParseCostPerByte*float64(len(block)), 1)
			times.Input += p.Now() - t0
			c := mapChunk{task: t, records: recs, bytes: int64(len(block))}

			t0 = p.Now()
			ctx.EnqueueWrite(p, c.bytes)
			times.Stage += p.Now() - t0

			coll := newCollector(j.app, cfg)
			t0 = p.Now()
			oc := j.execMapKernel(p, ctx, coll, c)
			times.Kernel += p.Now() - t0
			j.traceAttempt(nodeIdx, t.attempt, t.spec, t0, p.Now())
			if dead() {
				j.sched.abandon(t, nodeIdx)
				break
			}
			if cfg.FaultInjector != nil && cfg.FaultInjector(t.payload.file.FileName, t.payload.idx, t.attempt) {
				retry(t)
				continue
			}

			t0 = p.Now()
			ctx.EnqueueRead(p, oc.volume)
			times.Retrieve += p.Now() - t0

			t0 = p.Now()
			j.partitionChunk(p, nodeIdx, oc)
			times.Partition += p.Now() - t0
		}
		times.Elapsed = p.Now() - start
		return times
	}

	procs := []*sim.Proc{
		env.Spawn(node.Name+"/map-input", input),
		env.Spawn(node.Name+"/map-stage", stage),
		env.Spawn(node.Name+"/map-kernel", kernel),
		env.Spawn(node.Name+"/map-retrieve", retrieve),
		env.Spawn(node.Name+"/map-partition", partition),
	}
	for _, pr := range procs {
		pr.Done().Wait(p)
	}
	times.Elapsed = p.Now() - start
	return times
}

// traceAttempt records the extra trace rows that make recovery work
// visible: "retry" for any attempt beyond the first, "speculative" for
// backup copies.
func (j *job) traceAttempt(nodeIdx, attempt int, spec bool, start, end float64) {
	if spec {
		j.trace.add(nodeIdx, "speculative", start, end)
	} else if attempt > 1 {
		j.trace.add(nodeIdx, "retry", start, end)
	}
}

// execMapKernel runs the application's map function over one chunk with the
// configured number of OpenCL threads, harvesting output through the
// collector, then charges the launch to the device.
func (j *job) execMapKernel(p *sim.Proc, ctx *cl.Context, coll collector, c mapChunk) outChunk {
	cfg := j.cfg
	threads := cfg.MapThreads
	if threads <= 0 {
		threads = ctx.Device.Profile.HWThreads
	}
	coll.reset()
	emit := func(k, v []byte) { coll.emit(k, v) }
	cl.Range(len(c.records), threads, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			j.app.Map(c.records[i], emit)
		}
	})
	st := coll.kernelStats()
	st.Ops += j.app.MapCost.OpsPerBatch +
		j.app.MapCost.OpsPerRecord*float64(len(c.records)) +
		j.app.MapCost.OpsPerByte*float64(c.bytes) +
		j.app.MapCost.OpsPerEmit*float64(coll.emits())
	st.Bytes += float64(c.bytes)
	pairs, extra, decodePerPair := coll.finish()
	st.Add(extra)
	ctx.Launch(p, threads, st)
	var vol int64
	for _, pr := range pairs {
		vol += pr.Size()
	}
	return outChunk{task: c.task, pairs: pairs, records: len(c.records), volume: vol, decodePerPair: decodePerPair}
}

// partitionChunk implements the pipeline's final stage for one chunk: N
// partitioner threads decode the collector output, split it into the global
// partitions, sort each, persist it locally for durability, and push each
// partition to its destination node (§III-A). The split resolves here —
// only once its runs are handed off for delivery — and the hand-off itself
// is atomic (it never parks), so a task is either fully delivered or not at
// all. If a twin attempt already resolved the task, this copy's output is
// discarded.
func (j *job) partitionChunk(p *sim.Proc, nodeIdx int, oc outChunk) {
	cfg := j.cfg
	node := j.cluster.Nodes[nodeIdx]
	nParts := cfg.PartitionsPerNode * len(j.cluster.Nodes)
	n := cfg.PartitionThreads

	// Decode + bucket, charged at partitioner-thread parallelism.
	ops := oc.decodePerPair*float64(len(oc.pairs)) +
		costDecodePerByte*float64(oc.volume) +
		costPartitionPerPair*float64(len(oc.pairs))
	buckets := make(map[int][]kv.Pair)
	for _, pr := range oc.pairs {
		g := cfg.Partitioner(pr.Key, nParts)
		buckets[g] = append(buckets[g], pr)
	}
	// Sort and serialize every non-empty bucket.
	var runs []struct {
		g   int
		run *kv.Run
	}
	var stored int64
	for g := 0; g < nParts; g++ {
		bucket, ok := buckets[g]
		if !ok {
			continue
		}
		var buf kv.Buffer
		for _, pr := range bucket {
			buf.Add(pr)
		}
		buf.Sort()
		ops += sortCost(buf.Len()) + costSerializePerByte*float64(buf.Bytes())
		if cfg.Compress {
			ops += costCompressPerByte * float64(buf.Bytes())
		}
		run := kv.NewRun(buf.Pairs, cfg.Compress)
		runs = append(runs, struct {
			g   int
			run *kv.Run
		}{g, run})
		stored += run.StoredBytes()
	}
	node.HostWork(p, ops, n)

	if j.deadNodes[nodeIdx] {
		// The node died while partitioning: nothing was delivered.
		j.sched.abandon(oc.task, nodeIdx)
		return
	}
	if !j.sched.resolveFirst(oc.task.id, nodeIdx) {
		// A twin attempt (speculative backup or original) won the race;
		// this copy's output is discarded.
		return
	}
	if oc.task.spec {
		j.counters.speculativeWins.Inc()
	}

	// Conservation ledger: this attempt's output is the one that counts.
	// (A task re-executed after a node death resolves again, so under node
	// failures these map-side totals exceed the dataset; the store-side
	// ledger stays exact through the dup/dead/lost counters.)
	cons := &j.counters.conserv
	cons.mapRecordsIn.Add(int64(oc.records))
	cons.mapPairsOut.Add(int64(len(oc.pairs)))
	for _, r := range runs {
		cons.partRecords.Add(int64(r.run.Records))
		cons.partRawBytes.Add(r.run.RawBytes)
		cons.partStoredBytes.Add(r.run.StoredBytes())
	}
	cons.partRuns.Add(int64(len(runs)))

	// Durability: the node's map output is persisted locally in addition
	// to the copy that feeds intermediate-data processing (§III-E). The
	// write is write-behind — the OS page cache absorbs it off the
	// critical path, though it still occupies the disk.
	p.Env().Spawn(node.Name+"/durability", func(q *sim.Proc) {
		node.Disk.Write(q, stored)
	})

	// Hand each Partition to the async sender (or the local cache).
	for _, r := range runs {
		j.deliver(p, nodeIdx, oc.task.id, r.g, r.run)
	}
}
