package core

import "glasswing/internal/sim"

// mapScheduler hands out input splits to the nodes' map pipelines the way
// the paper's coordinator does: "Glasswing's job coordinator is like
// Hadoop's: both use a dedicated master node; Glasswing's scheduler
// considers file affinity in its job allocation" (§IV-A). Each split is
// initially assigned to a node holding a local replica; a node that runs
// dry steals from the most-loaded peer, so a slow node cannot strand work
// (Config.StaticScheduling disables stealing for the straggler ablation).
//
// Failed attempts re-enter the scheduler, so re-executed tasks (§III-E) can
// land on any node with capacity. The scheduler is driven entirely inside
// the simulation's serialized world — no locking.
type mapScheduler struct {
	env       *sim.Env
	static    bool
	queues    [][]taskAttempt
	remaining int
	cond      *sim.Signal
}

func newMapScheduler(env *sim.Env, assigned [][]splitRef, static bool) *mapScheduler {
	s := &mapScheduler{env: env, static: static, cond: sim.NewSignal(env)}
	for _, splits := range assigned {
		q := make([]taskAttempt, 0, len(splits))
		for _, sp := range splits {
			q = append(q, taskAttempt{sp: sp, attempt: 1})
		}
		s.queues = append(s.queues, q)
		s.remaining += len(splits)
	}
	return s
}

// next blocks p until a split is available for node (its own queue first,
// then stolen from the most-loaded peer) or all splits have been resolved
// (ok=false).
func (s *mapScheduler) next(p *sim.Proc, node int) (taskAttempt, bool) {
	for {
		if len(s.queues[node]) > 0 {
			t := s.queues[node][0]
			s.queues[node] = s.queues[node][1:]
			return t, true
		}
		if !s.static {
			victim, most := -1, 0
			for i, q := range s.queues {
				if i != node && len(q) > most {
					victim, most = i, len(q)
				}
			}
			if victim >= 0 {
				// Steal from the tail: the head is the victim's most local
				// work, the tail is what it would reach last.
				q := s.queues[victim]
				t := q[len(q)-1]
				s.queues[victim] = q[:len(q)-1]
				return t, true
			}
		}
		if s.remaining == 0 {
			return taskAttempt{}, false
		}
		// Work may still appear: a running attempt can fail and requeue.
		s.wait(p)
	}
}

// requeue returns a failed attempt to its node's queue (any node may steal
// it from there).
func (s *mapScheduler) requeue(node int, t taskAttempt) {
	s.queues[node] = append(s.queues[node], t)
	s.broadcast()
}

// resolve marks one split permanently finished (successful kernel run, or
// given up after MaxTaskAttempts).
func (s *mapScheduler) resolve() {
	s.remaining--
	if s.remaining <= 0 {
		s.broadcast()
	}
}

func (s *mapScheduler) wait(p *sim.Proc) {
	c := s.cond
	c.Wait(p)
}

func (s *mapScheduler) broadcast() {
	c := s.cond
	s.cond = sim.NewSignal(s.env)
	c.Fire(nil)
}
