package core

import (
	"math"
	"sort"

	"glasswing/internal/sim"
)

// taskID uniquely identifies a schedulable unit of work — a map split or a
// reduce partition — across all of its attempts.
type taskID string

// schedTask is one handed-out attempt of a task. Attempts count from 1 and
// increase monotonically across retries, node-loss re-executions and
// speculative backups, so fault injectors keyed by attempt see each
// execution exactly once.
type schedTask[T any] struct {
	id      taskID
	payload T
	attempt int
	// spec marks a speculative backup of an attempt running elsewhere; the
	// first finisher wins and the loser's output is discarded.
	spec bool
}

// runningAttempt tracks one in-flight attempt for straggler detection and
// first-finisher resolution.
type runningAttempt struct {
	node  int
	start float64
	spec  bool
}

// failOutcome reports what the scheduler did with a failed attempt.
type failOutcome int

const (
	// failRequeued: the task went back to a queue for another attempt.
	failRequeued failOutcome = iota
	// failDropped: a twin attempt is still running (or already resolved),
	// so this copy is simply discarded.
	failDropped
	// failExhausted: the task accumulated MaxTaskAttempts failures and the
	// job must fail; the task is resolved so the pipelines drain.
	failExhausted
)

// speculativeMinSamples is the number of completed attempts needed before
// the median duration is considered meaningful for straggler detection.
const speculativeMinSamples = 3

// taskScheduler hands out tasks to the nodes' pipelines the way the paper's
// coordinator does: "Glasswing's job coordinator is like Hadoop's: both use
// a dedicated master node; Glasswing's scheduler considers file affinity in
// its job allocation" (§IV-A). Each task is initially assigned to an
// affinity node; a node that runs dry steals from the most-loaded peer, so
// a slow node cannot strand work (static disables stealing for the
// straggler ablation).
//
// Beyond the paper's map-only coordinator, the same scheduler now drives
// the full §III-E fault-tolerance story:
//
//   - failed attempts re-enter a queue (fail), bounded by maxFailures;
//   - attempts stranded on a dead node are returned (abandon);
//   - resolved tasks whose delivered output died with a node are re-queued
//     (reexecute), the Hadoop node-loss behaviour;
//   - an idle node may launch a speculative backup of an attempt running
//     longer than specFactor x the median completed-attempt time, and the
//     first finisher wins (resolveFirst).
//
// One generic instantiation serves both the map side (payload splitRef) and
// the reduce side (payload reduceRef). The scheduler runs entirely inside
// the simulation's serialized world — no locking — and never iterates maps,
// so it is deterministic.
type taskScheduler[T any] struct {
	env    *sim.Env
	static bool
	// stealRequeued restricts stealing to requeued (attempt > 1) tasks:
	// the reduce side keeps its affinity placement for first attempts so
	// the fault-free timeline is unchanged, but retries may land anywhere.
	stealRequeued bool
	specFactor    float64
	maxFailures   int

	queues    [][]schedTask[T]
	dead      []bool
	remaining int
	cond      *sim.Signal

	payloads   map[taskID]T
	maxAttempt map[taskID]int
	failures   map[taskID]int
	resolved   map[taskID]bool
	gaveUp     map[taskID]bool
	speculated map[taskID]bool
	running    map[taskID][]runningAttempt
	runOrder   []taskID // deterministic iteration order over running

	durations []float64
	durSorted bool
	timerAt   float64
	rr        int
}

func newTaskScheduler[T any](env *sim.Env, nodes int, static bool, specFactor float64, maxFailures int) *taskScheduler[T] {
	return &taskScheduler[T]{
		env:         env,
		static:      static,
		specFactor:  specFactor,
		maxFailures: maxFailures,
		queues:      make([][]schedTask[T], nodes),
		dead:        make([]bool, nodes),
		cond:        sim.NewSignal(env),
		payloads:    make(map[taskID]T),
		maxAttempt:  make(map[taskID]int),
		failures:    make(map[taskID]int),
		resolved:    make(map[taskID]bool),
		gaveUp:      make(map[taskID]bool),
		speculated:  make(map[taskID]bool),
		running:     make(map[taskID][]runningAttempt),
		timerAt:     math.Inf(1),
	}
}

// addTask registers a task on its affinity node's queue (attempt 1).
func (s *taskScheduler[T]) addTask(node int, id taskID, payload T) {
	s.payloads[id] = payload
	s.maxAttempt[id] = 1
	s.queues[node] = append(s.queues[node], schedTask[T]{id: id, payload: payload, attempt: 1})
	s.remaining++
}

// next blocks p until a task is available for node — its own queue first,
// then stolen from the most-loaded peer, then a speculative backup — or all
// tasks have been resolved (ok = false). A dead node receives no work.
func (s *taskScheduler[T]) next(p *sim.Proc, node int) (schedTask[T], bool) {
	for {
		if s.dead[node] {
			return schedTask[T]{}, false
		}
		if len(s.queues[node]) > 0 {
			t := s.queues[node][0]
			s.queues[node] = s.queues[node][1:]
			s.noteStart(t, node)
			return t, true
		}
		if !s.static {
			// Steal from the tail: the head is the victim's most local
			// work, the tail is what it would reach last.
			victim, most := -1, 0
			for i, q := range s.queues {
				if i == node || len(q) <= most {
					continue
				}
				if s.stealRequeued && q[len(q)-1].attempt == 1 {
					continue
				}
				victim, most = i, len(q)
			}
			if victim >= 0 {
				q := s.queues[victim]
				t := q[len(q)-1]
				s.queues[victim] = q[:len(q)-1]
				s.noteStart(t, node)
				return t, true
			}
		}
		if t, ok := s.speculate(node); ok {
			s.noteStart(t, node)
			return t, true
		}
		if s.remaining == 0 {
			return schedTask[T]{}, false
		}
		// Work may still appear: a running attempt can fail and requeue, a
		// node death can re-open resolved tasks, or a running attempt can
		// become eligible for speculation.
		s.wait(p)
	}
}

func (s *taskScheduler[T]) noteStart(t schedTask[T], node int) {
	if t.attempt > s.maxAttempt[t.id] {
		s.maxAttempt[t.id] = t.attempt
	}
	if len(s.running[t.id]) == 0 {
		s.runOrder = append(s.runOrder, t.id)
	}
	s.running[t.id] = append(s.running[t.id], runningAttempt{node: node, start: s.env.Now(), spec: t.spec})
}

// endAttempt removes node's in-flight attempt of id and returns it.
func (s *taskScheduler[T]) endAttempt(id taskID, node int) (runningAttempt, bool) {
	rs := s.running[id]
	for i, r := range rs {
		if r.node == node {
			s.running[id] = append(rs[:i:i], rs[i+1:]...)
			if len(s.running[id]) == 0 {
				delete(s.running, id)
				for j, o := range s.runOrder {
					if o == id {
						s.runOrder = append(s.runOrder[:j], s.runOrder[j+1:]...)
						break
					}
				}
			}
			return r, true
		}
	}
	return runningAttempt{}, false
}

// resolveFirst marks id resolved if this attempt is the first to finish,
// and reports whether the caller won. Losers (a twin attempt finished
// earlier) must discard their output.
func (s *taskScheduler[T]) resolveFirst(id taskID, node int) bool {
	r, ran := s.endAttempt(id, node)
	if s.resolved[id] {
		return false
	}
	s.resolved[id] = true
	if ran {
		s.durations = append(s.durations, s.env.Now()-r.start)
		s.durSorted = false
	}
	s.remaining--
	if s.remaining == 0 || s.specFactor > 0 {
		s.broadcast()
	}
	return true
}

// isResolved reports whether id has already been resolved (a twin won, or
// the task was given up).
func (s *taskScheduler[T]) isResolved(id taskID) bool { return s.resolved[id] }

// fail records a failed attempt. The task is requeued unless a twin attempt
// is still running (it decides the task's fate) or the accumulated failures
// reach maxFailures (the caller must fail the job).
func (s *taskScheduler[T]) fail(t schedTask[T], node int) failOutcome {
	s.endAttempt(t.id, node)
	if s.resolved[t.id] {
		return failDropped
	}
	s.failures[t.id]++
	if len(s.running[t.id]) > 0 {
		return failDropped
	}
	if s.failures[t.id] >= s.maxFailures {
		s.gaveUp[t.id] = true
		s.resolved[t.id] = true
		s.remaining--
		s.broadcast()
		return failExhausted
	}
	s.requeueOn(node, schedTask[T]{id: t.id, payload: t.payload, attempt: s.maxAttempt[t.id] + 1})
	return failRequeued
}

// abandon returns an in-flight attempt whose node died mid-execution. If a
// twin attempt is still running elsewhere the abandoned copy is dropped;
// abandoned attempts do not count against maxFailures.
func (s *taskScheduler[T]) abandon(t schedTask[T], node int) {
	s.endAttempt(t.id, node)
	if s.resolved[t.id] || len(s.running[t.id]) > 0 {
		s.broadcast()
		return
	}
	s.requeueOn(node, schedTask[T]{id: t.id, payload: t.payload, attempt: s.maxAttempt[t.id] + 1})
}

// reexecute re-queues an already-resolved task whose delivered output was
// lost with a dead node (§III-E: "a failing node loses its intermediate
// data, so its completed map tasks are re-executed"). It reports whether a
// re-execution was actually scheduled: pending or in-flight tasks recover
// through their normal path and are left alone.
func (s *taskScheduler[T]) reexecute(id taskID) bool {
	if !s.resolved[id] || s.gaveUp[id] {
		return false
	}
	delete(s.resolved, id)
	s.remaining++
	s.requeueOn(s.pickLive(), schedTask[T]{id: id, payload: s.payloads[id], attempt: s.maxAttempt[id] + 1})
	return true
}

// requeueOn appends a task to node's queue (or a live node's if node is
// dead) and wakes waiters; any node may then steal it.
func (s *taskScheduler[T]) requeueOn(node int, t schedTask[T]) {
	if s.dead[node] {
		node = s.pickLive()
	}
	if t.attempt > s.maxAttempt[t.id] {
		s.maxAttempt[t.id] = t.attempt
	}
	delete(s.speculated, t.id) // a queued task may be backed up again later
	s.queues[node] = append(s.queues[node], t)
	s.broadcast()
}

// markDead removes node from scheduling: its queue is redistributed over
// surviving nodes and it is never handed work again.
func (s *taskScheduler[T]) markDead(node int) {
	if s.dead[node] {
		return
	}
	s.dead[node] = true
	moved := s.queues[node]
	s.queues[node] = nil
	for _, t := range moved {
		i := s.pickLive()
		s.queues[i] = append(s.queues[i], t)
	}
	s.broadcast()
}

// pickLive returns a live node index, round-robin for balance.
func (s *taskScheduler[T]) pickLive() int {
	n := len(s.queues)
	for i := 0; i < n; i++ {
		s.rr = (s.rr + 1) % n
		if !s.dead[s.rr] {
			return s.rr
		}
	}
	return 0
}

// speculate hands an idle node a backup copy of the slowest running attempt
// once that attempt has run for at least specFactor x the median completed
// attempt duration (Hadoop's speculative execution, which the paper's
// evaluation disables on the "extremely stable" DAS cluster, §IV-A).
func (s *taskScheduler[T]) speculate(node int) (schedTask[T], bool) {
	if s.specFactor <= 0 || len(s.durations) < speculativeMinSamples {
		return schedTask[T]{}, false
	}
	threshold := s.specFactor * s.median()
	now := s.env.Now()
	var best taskID
	var bestStart float64
	next := math.Inf(1)
	for _, id := range s.runOrder {
		if s.resolved[id] || s.speculated[id] {
			continue
		}
		for _, r := range s.running[id] {
			if r.spec || s.dead[r.node] || r.node == node {
				continue
			}
			// One expression decides both "over threshold" and the wake-up
			// deadline: computing them differently (now-start >= threshold
			// vs start+threshold) can disagree in the last float bit and
			// re-arm the timer at the current instant forever.
			due := r.start + threshold
			if due <= now {
				if best == "" || r.start < bestStart {
					best, bestStart = id, r.start
				}
			} else if due < next {
				next = due
			}
		}
	}
	if best == "" {
		s.armTimer(next)
		return schedTask[T]{}, false
	}
	s.speculated[best] = true
	return schedTask[T]{id: best, payload: s.payloads[best], attempt: s.maxAttempt[best] + 1, spec: true}, true
}

// armTimer schedules a wake-up at the instant the earliest running attempt
// crosses the speculation threshold.
func (s *taskScheduler[T]) armTimer(at float64) {
	if math.IsInf(at, 1) {
		return
	}
	if at < s.env.Now() {
		at = s.env.Now()
	}
	if s.timerAt > s.env.Now() && at >= s.timerAt {
		return // an earlier wake-up is already pending
	}
	s.timerAt = at
	s.env.At(at, func() {
		if s.timerAt == at {
			s.timerAt = math.Inf(1)
		}
		s.broadcast()
	})
}

func (s *taskScheduler[T]) median() float64 {
	if !s.durSorted {
		sort.Float64s(s.durations)
		s.durSorted = true
	}
	n := len(s.durations)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.durations[n/2]
	}
	return (s.durations[n/2-1] + s.durations[n/2]) / 2
}

// awaitDone blocks p until every task is resolved. Loser attempts (a twin
// already resolved their task) may still be draining in the pipelines —
// like Hadoop's killed speculative attempts, they no longer gate phase
// completion.
func (s *taskScheduler[T]) awaitDone(p *sim.Proc) {
	for s.remaining > 0 {
		s.wait(p)
	}
}

func (s *taskScheduler[T]) wait(p *sim.Proc) {
	c := s.cond
	c.Wait(p)
}

func (s *taskScheduler[T]) broadcast() {
	c := s.cond
	s.cond = sim.NewSignal(s.env)
	c.Fire(nil)
}
