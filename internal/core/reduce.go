package core

import (
	"fmt"

	"glasswing/internal/cl"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// reduceRef identifies one reduce task: a global partition and the
// node/store that currently holds its intermediate data.
type reduceRef struct {
	global int
	owner  int
	local  int
}

// reduceChunk is a batch of ConcurrentKeys key groups heading to the device.
type reduceChunk struct {
	task   schedTask[reduceRef]
	groups []kv.Group
	bytes  int64
	last   bool // last chunk of the attempt
	// pairsIn/groupsIn, set on the last chunk, are the attempt's whole
	// input (records and key groups read from the partition store); the
	// kernel stage adds them to the conservation ledger iff this attempt
	// wins the task.
	pairsIn  int
	groupsIn int
}

// reduceOut is the output of one reduce kernel launch.
type reduceOut struct {
	task   schedTask[reduceRef]
	pairs  []kv.Pair
	volume int64
	last   bool
	// drop on the last chunk discards the attempt's accumulated output:
	// the attempt failed (injected fault) or lost to a twin.
	drop bool
}

// runReducePipeline executes one node's 5-stage reduce pipeline (§III-C):
// the input reader performs one last multi-way merge over each partition's
// runs and batches key groups; Stage/Kernel/Retrieve mirror the map
// pipeline; the output stage writes final data to persistent storage.
//
// Partitions arrive through the reduce-side scheduler (§III-E): first
// attempts stay pinned to the node that holds the partition's data, so the
// fault-free order is the owner's local iteration; a failed attempt requeues
// and may run anywhere — a remote node pays the owner's disk read plus one
// fabric transfer of the stored partition. Speculative backups race the
// original and the first finisher's output wins.
func (j *job) runReducePipeline(p *sim.Proc, nodeIdx int) StageTimes {
	env := p.Env()
	node := j.cluster.Nodes[nodeIdx]
	ctx := j.ctxs[nodeIdx]
	cfg := j.cfg
	var times StageTimes
	start := p.Now()

	inBufs := sim.NewResource(env, cfg.Buffering)
	outBufs := sim.NewResource(env, cfg.Buffering)
	stageQ := sim.NewQueue[reduceChunk](env, 0)
	kernelQ := sim.NewQueue[reduceChunk](env, 0)
	retrQ := sim.NewQueue[reduceOut](env, 0)
	outQ := sim.NewQueue[reduceOut](env, 0)

	input := func(p *sim.Proc) {
		for {
			t, ok := j.redSched.next(p, nodeIdx)
			if !ok {
				stageQ.Close()
				return
			}
			ps := j.managers[t.payload.owner].parts[t.payload.local]
			runs := ps.runs()
			var stored, raw int64
			var pairsN int
			for _, r := range runs {
				pairsN += r.Records
				raw += r.RawBytes
			}
			for _, r := range ps.onDisk {
				stored += r.StoredBytes()
			}
			t0 := p.Now()
			j.cluster.Nodes[t.payload.owner].Disk.Read(p, stored)
			if t.payload.owner != nodeIdx {
				// Re-queued or speculative attempt away from the data: the
				// whole stored partition crosses the fabric.
				j.cluster.Transfer(p, j.cluster.Nodes[t.payload.owner], node, ps.storedTotal())
			}
			ops := mergeCost(pairsN, len(runs)) + costGroupPerValue*float64(pairsN)
			if cfg.Compress {
				ops += costDecompressPerByte * float64(raw)
			}
			node.HostWork(p, ops, 1)
			iters := make([]kv.Iterator, len(runs))
			for i, r := range runs {
				iters[i] = r.Iter()
			}
			gi := kv.NewGroupIter(kv.Merge(iters...))
			var batch []kv.Group
			var batchBytes int64
			var groupsN int
			flush := func(last bool) {
				times.Input += p.Now() - t0
				j.trace.add(nodeIdx, "reduce/input", t0, p.Now())
				c := reduceChunk{task: t, groups: batch, bytes: batchBytes, last: last}
				if last {
					c.pairsIn, c.groupsIn = pairsN, groupsN
				}
				stageQ.Put(p, c)
				batch, batchBytes = nil, 0
				t0 = p.Now()
			}
			for {
				g, ok := gi.Next()
				if !ok {
					break
				}
				groupsN++
				batch = append(batch, g)
				batchBytes += g.Bytes()
				if len(batch) >= cfg.ConcurrentKeys {
					inBufs.Acquire(p, 1)
					flush(false)
				}
			}
			// Always emit a final (possibly empty) chunk: it resolves the
			// attempt, and the output stage writes every partition file,
			// keeping TS partition numbering dense.
			inBufs.Acquire(p, 1)
			flush(true)
		}
	}

	stage := func(p *sim.Proc) {
		for {
			c, ok := stageQ.Get(p)
			if !ok {
				kernelQ.Close()
				return
			}
			t0 := p.Now()
			ctx.EnqueueWrite(p, c.bytes)
			times.Stage += p.Now() - t0
			kernelQ.Put(p, c)
		}
	}

	kernel := func(p *sim.Proc) {
		for {
			c, ok := kernelQ.Get(p)
			if !ok {
				retrQ.Close()
				return
			}
			outBufs.Acquire(p, 1)
			t0 := p.Now()
			ro := j.execReduceKernel(p, ctx, c)
			times.Kernel += p.Now() - t0
			j.trace.add(nodeIdx, "reduce/kernel", t0, p.Now())
			j.traceAttempt(nodeIdx, c.task.attempt, c.task.spec, t0, p.Now())
			inBufs.Release(1)
			if c.last {
				// The attempt's fate is decided once its whole partition
				// has been processed.
				if cfg.ReduceFaultInjector != nil && cfg.ReduceFaultInjector(c.task.payload.global, c.task.attempt) {
					j.counters.reduceRetries.Inc()
					if j.redSched.fail(c.task, nodeIdx) == failExhausted {
						if j.failErr == nil {
							j.failErr = fmt.Errorf("core: reduce partition %d failed %d attempts",
								c.task.payload.global, cfg.MaxTaskAttempts)
						}
					}
					ro.drop = true
				} else if j.redSched.resolveFirst(c.task.id, nodeIdx) {
					if c.task.spec {
						j.counters.speculativeWins.Inc()
					}
					// Ledger: the winning attempt's input is what the
					// reduce phase consumed for this partition.
					j.counters.conserv.reduceRecordsIn.Add(int64(c.pairsIn))
					j.counters.conserv.reduceGroupsIn.Add(int64(c.groupsIn))
				} else {
					ro.drop = true // a twin attempt won the race
				}
			}
			retrQ.Put(p, ro)
		}
	}

	retrieve := func(p *sim.Proc) {
		for {
			ro, ok := retrQ.Get(p)
			if !ok {
				outQ.Close()
				return
			}
			t0 := p.Now()
			ctx.EnqueueRead(p, ro.volume)
			times.Retrieve += p.Now() - t0
			outQ.Put(p, ro)
		}
	}

	output := func(p *sim.Proc) {
		var partPairs []kv.Pair
		for {
			ro, ok := outQ.Get(p)
			if !ok {
				return
			}
			t0 := p.Now()
			partPairs = append(partPairs, ro.pairs...)
			if ro.last {
				if ro.drop {
					// Failed or losing attempt: its partial output never
					// reaches persistent storage.
					partPairs = nil
				} else {
					name := fmt.Sprintf("%s-%05d", cfg.OutputPath, ro.task.payload.global)
					blob := kv.Marshal(partPairs)
					node.HostWork(p, costSerializePerByte*float64(len(blob)), 1)
					if _, err := j.fs.Write(p, node, name, blob, cfg.OutputReplication); err != nil {
						panic(err)
					}
					j.counters.conserv.outputPairs.Add(int64(len(partPairs)))
					j.outputs[ro.task.payload.global] = partPairs
					partPairs = nil
				}
			}
			times.Partition += p.Now() - t0
			j.trace.add(nodeIdx, "reduce/output", t0, p.Now())
			outBufs.Release(1)
		}
	}

	procs := []*sim.Proc{
		env.Spawn(node.Name+"/red-input", input),
		env.Spawn(node.Name+"/red-stage", stage),
		env.Spawn(node.Name+"/red-kernel", kernel),
		env.Spawn(node.Name+"/red-retrieve", retrieve),
		env.Spawn(node.Name+"/red-output", output),
	}
	for _, pr := range procs {
		pr.Done().Wait(p)
	}
	times.Elapsed = p.Now() - start
	return times
}

// execReduceKernel runs the application reduce function over a batch of key
// groups. ConcurrentKeys keys are processed in the same launch, each kernel
// thread handling KeysPerThread keys sequentially and each key optionally
// spread over ThreadsPerKey threads; keys whose value lists exceed
// MaxValuesPerLaunch pay extra launches with scratch-buffer state (§III-C).
func (j *job) execReduceKernel(p *sim.Proc, ctx *cl.Context, c reduceChunk) reduceOut {
	cfg := j.cfg
	if j.app.Reduce == nil {
		// No reduce function (TeraSort): intermediate data is final once
		// merged; pass pairs through untouched at zero device cost.
		var pairs []kv.Pair
		var vol int64
		for _, g := range c.groups {
			for _, v := range g.Values {
				pairs = append(pairs, kv.Pair{Key: g.Key, Value: v})
				vol += int64(len(g.Key) + len(v))
			}
		}
		return reduceOut{task: c.task, pairs: pairs, volume: vol, last: c.last}
	}

	if len(c.groups) == 0 {
		return reduceOut{task: c.task, last: c.last}
	}

	var st cl.Stats
	st.Ops += j.app.ReduceCost.OpsPerBatch
	var pairs []kv.Pair
	var vol int64
	emit := func(k, v []byte) {
		st.Ops += j.app.ReduceCost.OpsPerEmit
		st.AtomicOps++
		pr := kv.Pair{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
		pairs = append(pairs, pr)
		vol += pr.Size()
		st.Bytes += float64(pr.Size())
	}
	extraLaunches := 0
	for _, g := range c.groups {
		st.Ops += j.app.ReduceCost.OpsPerRecord +
			j.app.ReduceCost.OpsPerValue*float64(len(g.Values)) +
			j.app.ReduceCost.OpsPerByte*float64(g.Bytes())
		st.Bytes += float64(g.Bytes())
		if len(g.Values) > cfg.MaxValuesPerLaunch {
			extraLaunches += (len(g.Values)-1)/cfg.MaxValuesPerLaunch + 1 - 1
		}
		j.app.Reduce(g.Key, g.Values, emit)
	}
	threads := cfg.ReduceThreads
	if threads <= 0 {
		threads = (len(c.groups) + cfg.KeysPerThread - 1) / cfg.KeysPerThread * cfg.ThreadsPerKey
	}
	ctx.Launch(p, threads, st)
	if extraLaunches > 0 {
		// State carried across launches through per-key scratch buffers.
		p.Delay(float64(extraLaunches) * ctx.Device.Profile.LaunchOverhead)
		ctx.EnqueueWrite(p, int64(extraLaunches)*scratchStateBytes)
		ctx.EnqueueRead(p, int64(extraLaunches)*scratchStateBytes)
	}
	return reduceOut{task: c.task, pairs: pairs, volume: vol, last: c.last}
}
