package core

import (
	"fmt"

	"glasswing/internal/cl"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// reduceChunk is a batch of ConcurrentKeys key groups heading to the device.
type reduceChunk struct {
	part   int // global partition id
	groups []kv.Group
	bytes  int64
	last   bool // last chunk of the partition
}

// reduceOut is the output of one reduce kernel launch.
type reduceOut struct {
	part   int
	pairs  []kv.Pair
	volume int64
	last   bool
}

// runReducePipeline executes one node's 5-stage reduce pipeline (§III-C):
// the input reader performs one last multi-way merge over each partition's
// runs and batches key groups; Stage/Kernel/Retrieve mirror the map
// pipeline; the output stage writes final data to persistent storage.
func (j *job) runReducePipeline(p *sim.Proc, nodeIdx int) StageTimes {
	env := p.Env()
	node := j.cluster.Nodes[nodeIdx]
	ctx := j.ctxs[nodeIdx]
	cfg := j.cfg
	mgr := j.managers[nodeIdx]
	var times StageTimes
	start := p.Now()

	inBufs := sim.NewResource(env, cfg.Buffering)
	outBufs := sim.NewResource(env, cfg.Buffering)
	stageQ := sim.NewQueue[reduceChunk](env, 0)
	kernelQ := sim.NewQueue[reduceChunk](env, 0)
	retrQ := sim.NewQueue[reduceOut](env, 0)
	outQ := sim.NewQueue[reduceOut](env, 0)

	input := func(p *sim.Proc) {
		for _, ps := range mgr.parts {
			runs := ps.runs()
			var stored, raw int64
			var pairsN int
			for _, r := range runs {
				pairsN += r.Records
				raw += r.RawBytes
			}
			for _, r := range ps.onDisk {
				stored += r.StoredBytes()
			}
			t0 := p.Now()
			node.Disk.Read(p, stored)
			ops := mergeCost(pairsN, len(runs)) + costGroupPerValue*float64(pairsN)
			if cfg.Compress {
				ops += costDecompressPerByte * float64(raw)
			}
			node.HostWork(p, ops, 1)
			iters := make([]kv.Iterator, len(runs))
			for i, r := range runs {
				iters[i] = r.Iter()
			}
			gi := kv.NewGroupIter(kv.Merge(iters...))
			var batch []kv.Group
			var batchBytes int64
			flush := func(last bool) {
				times.Input += p.Now() - t0
				j.trace.add(nodeIdx, "reduce/input", t0, p.Now())
				stageQ.Put(p, reduceChunk{part: ps.global, groups: batch, bytes: batchBytes, last: last})
				batch, batchBytes = nil, 0
				t0 = p.Now()
			}
			for {
				g, ok := gi.Next()
				if !ok {
					break
				}
				batch = append(batch, g)
				batchBytes += g.Bytes()
				if len(batch) >= cfg.ConcurrentKeys {
					inBufs.Acquire(p, 1)
					flush(false)
				}
			}
			// Always emit a final (possibly empty) chunk so the output
			// stage writes every partition file, keeping TS partition
			// numbering dense.
			inBufs.Acquire(p, 1)
			flush(true)
		}
		stageQ.Close()
	}

	stage := func(p *sim.Proc) {
		for {
			c, ok := stageQ.Get(p)
			if !ok {
				kernelQ.Close()
				return
			}
			t0 := p.Now()
			ctx.EnqueueWrite(p, c.bytes)
			times.Stage += p.Now() - t0
			kernelQ.Put(p, c)
		}
	}

	kernel := func(p *sim.Proc) {
		for {
			c, ok := kernelQ.Get(p)
			if !ok {
				retrQ.Close()
				return
			}
			outBufs.Acquire(p, 1)
			t0 := p.Now()
			ro := j.execReduceKernel(p, ctx, c)
			times.Kernel += p.Now() - t0
			j.trace.add(nodeIdx, "reduce/kernel", t0, p.Now())
			inBufs.Release(1)
			retrQ.Put(p, ro)
		}
	}

	retrieve := func(p *sim.Proc) {
		for {
			ro, ok := retrQ.Get(p)
			if !ok {
				outQ.Close()
				return
			}
			t0 := p.Now()
			ctx.EnqueueRead(p, ro.volume)
			times.Retrieve += p.Now() - t0
			outQ.Put(p, ro)
		}
	}

	output := func(p *sim.Proc) {
		var partPairs []kv.Pair
		for {
			ro, ok := outQ.Get(p)
			if !ok {
				return
			}
			t0 := p.Now()
			partPairs = append(partPairs, ro.pairs...)
			if ro.last {
				name := fmt.Sprintf("%s-%05d", cfg.OutputPath, ro.part)
				blob := kv.Marshal(partPairs)
				node.HostWork(p, costSerializePerByte*float64(len(blob)), 1)
				if _, err := j.fs.Write(p, node, name, blob, cfg.OutputReplication); err != nil {
					panic(err)
				}
				j.outputs[ro.part] = partPairs
				partPairs = nil
			}
			times.Partition += p.Now() - t0
			j.trace.add(nodeIdx, "reduce/output", t0, p.Now())
			outBufs.Release(1)
		}
	}

	procs := []*sim.Proc{
		env.Spawn(node.Name+"/red-input", input),
		env.Spawn(node.Name+"/red-stage", stage),
		env.Spawn(node.Name+"/red-kernel", kernel),
		env.Spawn(node.Name+"/red-retrieve", retrieve),
		env.Spawn(node.Name+"/red-output", output),
	}
	for _, pr := range procs {
		pr.Done().Wait(p)
	}
	times.Elapsed = p.Now() - start
	return times
}

// execReduceKernel runs the application reduce function over a batch of key
// groups. ConcurrentKeys keys are processed in the same launch, each kernel
// thread handling KeysPerThread keys sequentially and each key optionally
// spread over ThreadsPerKey threads; keys whose value lists exceed
// MaxValuesPerLaunch pay extra launches with scratch-buffer state (§III-C).
func (j *job) execReduceKernel(p *sim.Proc, ctx *cl.Context, c reduceChunk) reduceOut {
	cfg := j.cfg
	if j.app.Reduce == nil {
		// No reduce function (TeraSort): intermediate data is final once
		// merged; pass pairs through untouched at zero device cost.
		var pairs []kv.Pair
		var vol int64
		for _, g := range c.groups {
			for _, v := range g.Values {
				pairs = append(pairs, kv.Pair{Key: g.Key, Value: v})
				vol += int64(len(g.Key) + len(v))
			}
		}
		return reduceOut{part: c.part, pairs: pairs, volume: vol, last: c.last}
	}

	if len(c.groups) == 0 {
		return reduceOut{part: c.part, last: c.last}
	}

	var st cl.Stats
	var pairs []kv.Pair
	var vol int64
	emit := func(k, v []byte) {
		st.Ops += j.app.ReduceCost.OpsPerEmit
		st.AtomicOps++
		pr := kv.Pair{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
		pairs = append(pairs, pr)
		vol += pr.Size()
		st.Bytes += float64(pr.Size())
	}
	extraLaunches := 0
	for _, g := range c.groups {
		st.Ops += j.app.ReduceCost.OpsPerRecord +
			j.app.ReduceCost.OpsPerValue*float64(len(g.Values)) +
			j.app.ReduceCost.OpsPerByte*float64(g.Bytes())
		st.Bytes += float64(g.Bytes())
		if len(g.Values) > cfg.MaxValuesPerLaunch {
			extraLaunches += (len(g.Values)-1)/cfg.MaxValuesPerLaunch + 1 - 1
		}
		j.app.Reduce(g.Key, g.Values, emit)
	}
	threads := cfg.ReduceThreads
	if threads <= 0 {
		threads = (len(c.groups) + cfg.KeysPerThread - 1) / cfg.KeysPerThread * cfg.ThreadsPerKey
	}
	ctx.Launch(p, threads, st)
	if extraLaunches > 0 {
		// State carried across launches through per-key scratch buffers.
		p.Delay(float64(extraLaunches) * ctx.Device.Profile.LaunchOverhead)
		ctx.EnqueueWrite(p, int64(extraLaunches)*scratchStateBytes)
		ctx.EnqueueRead(p, int64(extraLaunches)*scratchStateBytes)
	}
	return reduceOut{part: c.part, pairs: pairs, volume: vol, last: c.last}
}
