package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"glasswing/internal/sim"
)

// schedScenario drives one randomized schedule through a taskScheduler:
// workers pull tasks, sleep a random service time, then resolve or fail
// them; a chaos process meanwhile kills nodes (always sparing one) and
// re-opens resolved tasks the way killNode does for lost intermediate
// output. The scheduler's bookkeeping invariants must hold no matter how
// the pieces interleave:
//
//   - no task is lost: every task ends resolved (won or given up);
//   - no task is double-resolved: resolveFirst returns true exactly once
//     per "epoch" (the span between re-executions);
//   - remaining reaches exactly 0 and the run drains completely (queues
//     empty, no in-flight attempts).
//
// The simulation is serialized and the rand.Source is seeded, so each
// scenario is fully deterministic.
func schedScenario(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	env := sim.NewEnv()
	nodes := 2 + rng.Intn(4)
	tasks := 5 + rng.Intn(40)
	maxFail := 2 + rng.Intn(3)
	static := rng.Intn(4) == 0
	spec := 0.0
	if rng.Intn(2) == 0 {
		spec = 1.0 + rng.Float64()*2
	}

	s := newTaskScheduler[int](env, nodes, static, spec, maxFail)
	s.stealRequeued = rng.Intn(2) == 0

	ids := make([]taskID, tasks)
	for i := range ids {
		ids[i] = taskID(fmt.Sprintf("t%02d", i))
		s.addTask(rng.Intn(nodes), ids[i], i)
	}

	wins := map[taskID]int{}    // resolveFirst returned true
	reexecs := map[taskID]int{} // reexecute returned true

	for w := 0; w < nodes; w++ {
		w := w
		env.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
			for {
				tk, ok := s.next(p, w)
				if !ok {
					return
				}
				p.Delay(1e-3 + rng.Float64()*1e-2)
				if s.dead[w] {
					// The node died mid-attempt: hand the task back the
					// way the job does for a killed node's pipelines.
					s.abandon(tk, w)
					return
				}
				if rng.Float64() < 0.3 {
					s.fail(tk, w)
					continue
				}
				if s.resolveFirst(tk.id, w) {
					wins[tk.id]++
				}
			}
		})
	}

	env.Spawn("chaos", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			p.Delay(rng.Float64() * 0.04)
			if s.remaining == 0 {
				return
			}
			switch rng.Intn(3) {
			case 0: // kill a node, always sparing the last live one
				var live []int
				for n := range s.dead {
					if !s.dead[n] {
						live = append(live, n)
					}
				}
				if len(live) > 1 {
					s.markDead(live[rng.Intn(len(live))])
				}
			case 1: // re-open a resolved task (lost intermediate output)
				var done []taskID
				for id := range s.resolved {
					if !s.gaveUp[id] {
						done = append(done, id)
					}
				}
				sort.Slice(done, func(a, b int) bool { return done[a] < done[b] })
				if len(done) > 0 {
					id := done[rng.Intn(len(done))]
					if s.reexecute(id) {
						reexecs[id]++
					}
				}
			}
		}
	})

	env.RunUntil(1e9) // panics on deadlock, listing the parked processes

	if s.remaining != 0 {
		t.Fatalf("seed %d: remaining = %d after drain, want 0", seed, s.remaining)
	}
	if len(s.running) != 0 || len(s.runOrder) != 0 {
		t.Fatalf("seed %d: %d attempts still in flight after drain", seed, len(s.running))
	}
	for n, q := range s.queues {
		if len(q) != 0 {
			t.Fatalf("seed %d: node %d queue still holds %d tasks", seed, n, len(q))
		}
	}
	for _, id := range ids {
		if !s.resolved[id] {
			t.Fatalf("seed %d: task %s was lost (never resolved)", seed, id)
		}
		// Each re-execution re-opens the task for exactly one more win;
		// a task that exhausted its attempts ends on a give-up instead.
		want := reexecs[id] + 1
		if s.gaveUp[id] {
			want = reexecs[id]
		}
		if wins[id] != want {
			t.Fatalf("seed %d: task %s resolved %d times, want %d (reexecs %d, gaveUp %v)",
				seed, id, wins[id], want, reexecs[id], s.gaveUp[id])
		}
	}
}

func TestSchedulerPropertyRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) { schedScenario(t, seed) })
	}
}

// TestSchedulerExhaustionResolves pins the give-up path: a task whose every
// attempt fails must still resolve (so pipelines drain) while being marked
// given up, without consuming more than maxFailures attempts.
func TestSchedulerExhaustionResolves(t *testing.T) {
	env := sim.NewEnv()
	s := newTaskScheduler[int](env, 2, false, 0, 3)
	s.addTask(0, "doomed", 0)
	s.addTask(1, "fine", 1)

	outcomes := []failOutcome{}
	env.Spawn("worker0", func(p *sim.Proc) {
		for {
			tk, ok := s.next(p, 0)
			if !ok {
				return
			}
			p.Delay(1e-3)
			if tk.id == "doomed" {
				outcomes = append(outcomes, s.fail(tk, 0))
				continue
			}
			s.resolveFirst(tk.id, 0)
		}
	})
	env.RunUntil(1e9)

	if want := []failOutcome{failRequeued, failRequeued, failExhausted}; len(outcomes) != len(want) {
		t.Fatalf("outcomes = %v, want %v", outcomes, want)
	} else {
		for i := range want {
			if outcomes[i] != want[i] {
				t.Fatalf("outcomes = %v, want %v", outcomes, want)
			}
		}
	}
	if !s.gaveUp["doomed"] || !s.resolved["doomed"] {
		t.Fatalf("doomed task not given up + resolved: gaveUp=%v resolved=%v",
			s.gaveUp["doomed"], s.resolved["doomed"])
	}
	if s.remaining != 0 {
		t.Fatalf("remaining = %d, want 0", s.remaining)
	}
}

// TestSchedulerSpeculationFirstWinner pins the two-attempt race: a backup
// launched for a straggling attempt resolves the task once, and the loser's
// resolveFirst reports false so its output is discarded.
func TestSchedulerSpeculationFirstWinner(t *testing.T) {
	env := sim.NewEnv()
	s := newTaskScheduler[int](env, 2, false, 2, 4)
	for i := 0; i < 4; i++ {
		s.addTask(0, taskID(fmt.Sprintf("t%d", i)), i)
	}

	specs, winners := 0, map[taskID]int{}
	for w := 0; w < 2; w++ {
		w := w
		env.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
			for {
				tk, ok := s.next(p, w)
				if !ok {
					return
				}
				d := 1e-3
				if tk.id == "t3" && !tk.spec {
					d = 1.0 // the original t3 attempt straggles hard
				}
				if tk.spec {
					specs++
				}
				p.Delay(d)
				if s.resolveFirst(tk.id, w) {
					winners[tk.id]++
				}
			}
		})
	}
	env.RunUntil(1e9)

	if specs == 0 {
		t.Fatal("no speculative backup was launched for the straggling attempt")
	}
	for id, n := range winners {
		if n != 1 {
			t.Fatalf("task %s won %d times, want exactly 1", id, n)
		}
	}
	if len(winners) != 4 || s.remaining != 0 {
		t.Fatalf("winners=%d remaining=%d, want 4 and 0", len(winners), s.remaining)
	}
}
