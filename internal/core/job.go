package core

import (
	"fmt"
	"sort"

	"glasswing/internal/cl"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// Runtime binds Glasswing to a simulated cluster and file system. Like the
// paper's deployment, the framework is a library: no daemons, a job
// coordinator on a master that assigns splits with file affinity, and one
// pipeline instantiation per slave node.
type Runtime struct {
	Cluster *hw.Cluster
	FS      dfs.FS
	// Prelude, if set, runs on the master before the map phase starts
	// (KM uses it to broadcast the cluster centers, the Glasswing analog
	// of Hadoop's DistributedCache).
	Prelude func(p *sim.Proc, c *hw.Cluster)
}

// Result reports a finished job: the paper's headline metrics plus the
// per-stage breakdowns behind Tables II/III and Figs 4/5.
type Result struct {
	App   string
	Nodes int

	// JobTime is total virtual execution time in seconds.
	JobTime float64
	// MapElapsed is the map-pipeline phase (max over nodes).
	MapElapsed float64
	// MergeDelay is the §III-B metric: merging time after the map phase
	// completes and before reduction starts (max over nodes).
	MergeDelay float64
	// ReduceElapsed is the reduce-pipeline phase (max over nodes).
	ReduceElapsed float64

	// MapStages and ReduceStages are per-node busy-time breakdowns.
	MapStages    []StageTimes
	ReduceStages []StageTimes

	// IntermediateBytes is the stored intermediate volume at reduce start.
	IntermediateBytes int64
	// OutputPairs counts final key/value pairs.
	OutputPairs int
	// TaskRetries counts map task attempts that failed and were
	// re-executed (§III-E fault tolerance).
	TaskRetries int
	// Trace is the activity timeline (nil unless Config.Trace).
	Trace *Trace

	outputs map[int][]kv.Pair
}

// Output returns the job's final pairs in partition order (for TeraSort
// this concatenation is totally ordered).
func (r *Result) Output() []kv.Pair {
	parts := make([]int, 0, len(r.outputs))
	for g := range r.outputs {
		parts = append(parts, g)
	}
	sort.Ints(parts)
	var out []kv.Pair
	for _, g := range parts {
		out = append(out, r.outputs[g]...)
	}
	return out
}

// MaxMapStage returns the per-stage maxima across nodes — the numbers the
// paper's breakdown tables report for a single-node run.
func (r *Result) MaxMapStage() StageTimes { return maxStages(r.MapStages) }

// MaxReduceStage is the reduce-pipeline analog of MaxMapStage.
func (r *Result) MaxReduceStage() StageTimes { return maxStages(r.ReduceStages) }

func maxStages(all []StageTimes) StageTimes {
	var m StageTimes
	for _, s := range all {
		m.Input = max(m.Input, s.Input)
		m.Stage = max(m.Stage, s.Stage)
		m.Kernel = max(m.Kernel, s.Kernel)
		m.Retrieve = max(m.Retrieve, s.Retrieve)
		m.Partition = max(m.Partition, s.Partition)
		m.Elapsed = max(m.Elapsed, s.Elapsed)
	}
	return m
}

// pullItem is intermediate data awaiting reducer-side fetch (PullShuffle
// ablation).
type pullItem struct {
	src   int
	local int
	run   *kv.Run
}

// job is the in-flight state of one MapReduce execution.
type job struct {
	cluster  *hw.Cluster
	fs       dfs.FS
	app      *App
	cfg      Config
	ctxs     []*cl.Context
	managers []*interManager
	pending  map[int][]pullItem
	outputs  map[int][]kv.Pair
	retries  int
	failErr  error
	trace    *Trace
	sched    *mapScheduler

	// senders deliver intermediate Partitions asynchronously so the
	// partitioning stage never blocks on the network: communication
	// overlaps computation (§I, the pipeline's core claim).
	senders []*sim.Queue[pushMsg]
}

// pushMsg is one Partition en route to its destination node.
type pushMsg struct {
	dest  int
	local int
	run   *kv.Run
}

// senderLoop drains one node's push queue over the fabric.
func (j *job) senderLoop(p *sim.Proc, nodeIdx int) {
	for {
		m, ok := j.senders[nodeIdx].Get(p)
		if !ok {
			return
		}
		j.cluster.Transfer(p, j.cluster.Nodes[nodeIdx], j.cluster.Nodes[m.dest], m.run.StoredBytes())
		j.managers[m.dest].add(m.local, m.run)
	}
}

// Run executes app under cfg on the runtime's cluster and returns the
// result. It drives the simulation to completion; the environment must not
// already be running.
func Run(rt *Runtime, app *App, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("core: app %q needs Parse and Map", app.Name)
	}
	if len(cfg.Input) == 0 {
		return nil, fmt.Errorf("core: no input files")
	}
	env := rt.Cluster.Env
	j := &job{
		cluster: rt.Cluster,
		fs:      rt.FS,
		app:     app,
		cfg:     cfg,
		pending: make(map[int][]pullItem),
		outputs: make(map[int][]kv.Pair),
	}
	if cfg.Trace {
		j.trace = &Trace{}
	}
	for i, n := range rt.Cluster.Nodes {
		dev := cfg.Device
		if len(cfg.DevicePerNode) > 0 {
			if len(cfg.DevicePerNode) != len(rt.Cluster.Nodes) {
				return nil, fmt.Errorf("core: DevicePerNode has %d entries for %d nodes",
					len(cfg.DevicePerNode), len(rt.Cluster.Nodes))
			}
			dev = cfg.DevicePerNode[i]
		}
		if dev < 0 || dev >= len(n.Devices) {
			return nil, fmt.Errorf("core: node %d has no device %d", i, dev)
		}
		j.ctxs = append(j.ctxs, cl.NewContext(n.Devices[dev]))
		mgr := newInterManager(env, n, cfg, i*cfg.PartitionsPerNode)
		mgr.nodeIdx = i
		mgr.trace = j.trace
		j.managers = append(j.managers, mgr)
	}
	splits, err := j.assignSplits()
	if err != nil {
		return nil, err
	}
	if err := j.checkDeviceMemory(splits); err != nil {
		return nil, err
	}
	j.sched = newMapScheduler(env, splits, cfg.StaticScheduling)

	res := &Result{
		App:          app.Name,
		Nodes:        len(rt.Cluster.Nodes),
		MapStages:    make([]StageTimes, len(rt.Cluster.Nodes)),
		ReduceStages: make([]StageTimes, len(rt.Cluster.Nodes)),
		outputs:      j.outputs,
	}

	env.Spawn("glasswing-master", func(p *sim.Proc) {
		jobStart := p.Now()
		p.Delay(jobStartup)
		if rt.Prelude != nil {
			rt.Prelude(p, rt.Cluster)
		}
		for _, m := range j.managers {
			m.start(env)
		}

		// Map phase: one pipeline per node plus one async sender per
		// node, all concurrent.
		mapStart := p.Now()
		var mapProcs, sendProcs []*sim.Proc
		for i := range rt.Cluster.Nodes {
			i := i
			j.senders = append(j.senders, sim.NewQueue[pushMsg](env, 0))
			sendProcs = append(sendProcs, env.Spawn(fmt.Sprintf("node%03d/sender", i), func(q *sim.Proc) {
				j.senderLoop(q, i)
			}))
			pr := env.Spawn(fmt.Sprintf("node%03d/map", i), func(q *sim.Proc) {
				res.MapStages[i] = j.runMapPipeline(q, i)
			})
			mapProcs = append(mapProcs, pr)
		}
		for _, pr := range mapProcs {
			pr.Done().Wait(p)
		}
		res.MapElapsed = p.Now() - mapStart
		for _, m := range j.managers {
			m.mapDoneAt = p.Now()
		}
		// In-flight pushes drain during the merge phase (the merge phase
		// "continues until it has received all data sent to it by map
		// pipeline instantiations at other nodes", §III).
		for _, q := range j.senders {
			q.Close()
		}
		for _, pr := range sendProcs {
			pr.Done().Wait(p)
		}

		// Pull-mode shuffle fetch (ablation): reducers fetch their
		// partitions only now, where push mode delivered them during map.
		if cfg.PullShuffle {
			var fetchers []*sim.Proc
			for dest, items := range j.pending {
				dest, items := dest, items
				pr := env.Spawn(fmt.Sprintf("node%03d/fetch", dest), func(q *sim.Proc) {
					for _, it := range items {
						j.cluster.Transfer(q, j.cluster.Nodes[it.src], j.cluster.Nodes[dest], it.run.StoredBytes())
						j.managers[dest].add(it.local, it.run)
					}
				})
				fetchers = append(fetchers, pr)
			}
			for _, pr := range fetchers {
				pr.Done().Wait(p)
			}
		}

		// Merge phase completion: all data has arrived everywhere.
		for _, m := range j.managers {
			m.inputDone.Fire(nil)
		}
		for _, m := range j.managers {
			m.done.Wait(p)
		}
		for _, m := range j.managers {
			res.MergeDelay = max(res.MergeDelay, m.mergeDelay)
			res.IntermediateBytes += m.storedBytes()
		}

		// Reduce phase.
		reduceStart := p.Now()
		var redProcs []*sim.Proc
		for i := range rt.Cluster.Nodes {
			i := i
			pr := env.Spawn(fmt.Sprintf("node%03d/reduce", i), func(q *sim.Proc) {
				res.ReduceStages[i] = j.runReducePipeline(q, i)
			})
			redProcs = append(redProcs, pr)
		}
		for _, pr := range redProcs {
			pr.Done().Wait(p)
		}
		res.ReduceElapsed = p.Now() - reduceStart
		res.JobTime = p.Now() - jobStart
	})
	env.Run()

	if j.failErr != nil {
		return nil, j.failErr
	}
	for _, pairs := range j.outputs {
		res.OutputPairs += len(pairs)
	}
	res.TaskRetries = j.retries
	res.Trace = j.trace
	return res, nil
}

// checkDeviceMemory verifies the configured buffering level fits the
// device's memory: the pipeline needs Buffering input buffers and Buffering
// output buffers per phase, and "double or triple buffering comes at the
// cost of more buffers, which may be a limited resource for GPUs" (§III-D).
// Output buffers are sized like input buffers (collector output is bounded
// by a small multiple of the input chunk; one buffer-sized allocation per
// level is the paper's granularity).
func (j *job) checkDeviceMemory(splits [][]splitRef) error {
	var maxBlock int64
	for _, per := range splits {
		for _, sp := range per {
			if n := int64(len(sp.file.Blocks[sp.idx].Data)); n > maxBlock {
				maxBlock = n
			}
		}
	}
	need := int64(j.cfg.Buffering) * 2 * maxBlock * 2 // in+out groups, 2x slack
	for i, ctx := range j.ctxs {
		if ctx.Unified() {
			continue
		}
		if need > ctx.Device.MemBytes {
			return fmt.Errorf("core: buffering level %d needs %d bytes of device memory on node %d's %s (%d available) — lower Buffering or the block size",
				j.cfg.Buffering, need, i, ctx.Device.Profile.Name, ctx.Device.MemBytes)
		}
	}
	return nil
}

// assignSplits distributes input blocks over nodes, preferring nodes that
// hold a local replica (the coordinator "considers file affinity in its job
// allocation", §IV-A), balancing counts among candidates.
func (j *job) assignSplits() ([][]splitRef, error) {
	n := len(j.cluster.Nodes)
	per := make([][]splitRef, n)
	counts := make([]float64, n)
	// With BalanceByDevice, each node's assignment is weighted by its
	// selected device's peak throughput, so in a heterogeneous cluster the
	// accelerator nodes draw proportionally more splits (the Shirahata et
	// al. setting, paper §II).
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = 1
		if j.cfg.BalanceByDevice {
			weight[i] = j.ctxs[i].Device.Profile.Peak()
		}
	}
	for _, name := range j.cfg.Input {
		f, err := j.fs.Open(name)
		if err != nil {
			return nil, err
		}
		for idx := range f.Blocks {
			best := -1
			for _, loc := range f.Blocks[idx].Locations {
				if loc.ID < 0 || loc.ID >= n {
					continue
				}
				if best == -1 || counts[loc.ID]/weight[loc.ID] < counts[best]/weight[best] {
					best = loc.ID
				}
			}
			if best == -1 {
				// No local replica anywhere (cannot happen with our file
				// systems, but stay safe): round-robin.
				best = idx % n
			}
			per[best] = append(per[best], splitRef{file: f, idx: idx})
			counts[best]++
		}
	}
	return per, nil
}
