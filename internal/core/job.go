package core

import (
	"fmt"
	"sort"
	"strconv"

	"glasswing/internal/cl"
	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
	"glasswing/internal/sim"
)

// Runtime binds Glasswing to a simulated cluster and file system. Like the
// paper's deployment, the framework is a library: no daemons, a job
// coordinator on a master that assigns splits with file affinity, and one
// pipeline instantiation per slave node.
type Runtime struct {
	Cluster *hw.Cluster
	FS      dfs.FS
	// Prelude, if set, runs on the master before the map phase starts
	// (KM uses it to broadcast the cluster centers, the Glasswing analog
	// of Hadoop's DistributedCache).
	Prelude func(p *sim.Proc, c *hw.Cluster)
}

// Result reports a finished job: the paper's headline metrics plus the
// per-stage breakdowns behind Tables II/III and Figs 4/5.
type Result struct {
	App   string
	Nodes int

	// JobTime is total virtual execution time in seconds.
	JobTime float64
	// MapElapsed is the map-pipeline phase (max over nodes).
	MapElapsed float64
	// MergeDelay is the §III-B metric: merging time after the map phase
	// completes and before reduction starts (max over nodes).
	MergeDelay float64
	// ReduceElapsed is the reduce-pipeline phase (max over nodes).
	ReduceElapsed float64

	// MapStages and ReduceStages are per-node busy-time breakdowns.
	MapStages    []StageTimes
	ReduceStages []StageTimes

	// IntermediateBytes is the stored intermediate volume at reduce start.
	IntermediateBytes int64
	// OutputPairs counts final key/value pairs.
	OutputPairs int
	// TaskRetries counts map task attempts that failed and were
	// re-executed (§III-E fault tolerance); it mirrors Stats.MapRetries.
	TaskRetries int
	// Stats breaks down all fault-tolerance activity (§III-E).
	Stats JobStats
	// Trace is the activity timeline (nil unless Config.Trace).
	Trace *Trace

	outputs map[int][]kv.Pair
}

// Output returns the job's final pairs in partition order (for TeraSort
// this concatenation is totally ordered).
func (r *Result) Output() []kv.Pair {
	parts := make([]int, 0, len(r.outputs))
	for g := range r.outputs {
		parts = append(parts, g)
	}
	sort.Ints(parts)
	var out []kv.Pair
	for _, g := range parts {
		out = append(out, r.outputs[g]...)
	}
	return out
}

// MaxMapStage returns the per-stage maxima across nodes — the numbers the
// paper's breakdown tables report for a single-node run.
func (r *Result) MaxMapStage() StageTimes { return maxStages(r.MapStages) }

// MaxReduceStage is the reduce-pipeline analog of MaxMapStage.
func (r *Result) MaxReduceStage() StageTimes { return maxStages(r.ReduceStages) }

func maxStages(all []StageTimes) StageTimes {
	var m StageTimes
	for _, s := range all {
		m.Input = max(m.Input, s.Input)
		m.Stage = max(m.Stage, s.Stage)
		m.Kernel = max(m.Kernel, s.Kernel)
		m.Retrieve = max(m.Retrieve, s.Retrieve)
		m.Partition = max(m.Partition, s.Partition)
		m.Elapsed = max(m.Elapsed, s.Elapsed)
	}
	return m
}

// pullItem is intermediate data awaiting reducer-side fetch (PullShuffle
// ablation).
type pullItem struct {
	src   int
	local int
	task  taskID
	run   *kv.Run
}

// ownerRef locates a global partition's store: the manager of node and the
// local index within it. Node death reassigns ownership to a survivor.
type ownerRef struct {
	node  int
	local int
}

// job is the in-flight state of one MapReduce execution.
type job struct {
	cluster  *hw.Cluster
	fs       dfs.FS
	app      *App
	cfg      Config
	ctxs     []*cl.Context
	managers []*interManager
	pending  map[int][]pullItem
	outputs  map[int][]kv.Pair
	counters *jobCounters
	failErr  error
	trace    *Trace
	sched    *taskScheduler[splitRef]
	redSched *taskScheduler[reduceRef]

	// owners maps each global partition to the node/store currently
	// responsible for it; killNode rewires entries of a dead node.
	owners    []ownerRef
	deadNodes []bool
	// deliveredTo records, per resolved map task, the set of owner nodes
	// its output reached; deliveredOrder keeps deterministic iteration.
	deliveredTo    map[taskID]map[int]bool
	deliveredOrder []taskID
	// sending/sendingDest/sendingActive track each sender's in-flight
	// transfer so killNode can account for data lost on the wire.
	sending       []taskID
	sendingDest   []int
	sendingActive []bool
	mapDone       bool
	rrNode        int

	// senders deliver intermediate Partitions asynchronously so the
	// partitioning stage never blocks on the network: communication
	// overlaps computation (§I, the pipeline's core claim).
	senders []*sim.Queue[pushMsg]
}

// pushMsg is one Partition en route to its destination node.
type pushMsg struct {
	dest  int
	local int
	task  taskID
	run   *kv.Run
}

// mapTaskID names a split across all of its attempts.
func mapTaskID(sp splitRef) taskID {
	return taskID(sp.file.FileName + "#" + strconv.Itoa(sp.idx))
}

// senderLoop drains one node's push queue over the fabric. Traffic from or
// to a dead node is dropped: killNode purges the queues and re-executes the
// affected tasks, and these checks catch transfers already in flight.
func (j *job) senderLoop(p *sim.Proc, nodeIdx int) {
	for {
		m, ok := j.senders[nodeIdx].Get(p)
		if !ok {
			return
		}
		if j.deadNodes[nodeIdx] || j.deadNodes[m.dest] {
			j.counters.conserv.storeDeadDropped.Add(int64(m.run.Records))
			continue
		}
		j.sending[nodeIdx], j.sendingDest[nodeIdx], j.sendingActive[nodeIdx] = m.task, m.dest, true
		j.cluster.Transfer(p, j.cluster.Nodes[nodeIdx], j.cluster.Nodes[m.dest], m.run.StoredBytes())
		j.sendingActive[nodeIdx] = false
		if j.deadNodes[nodeIdx] || j.deadNodes[m.dest] {
			j.counters.conserv.storeDeadDropped.Add(int64(m.run.Records))
			continue
		}
		j.managers[m.dest].addRun(m.local, m.task, m.run)
	}
}

// deliver routes one partitioned run of task id to global partition g's
// current owner and records the delivery for node-loss recovery.
func (j *job) deliver(p *sim.Proc, src int, id taskID, g int, run *kv.Run) {
	own := j.owners[g]
	j.noteDelivered(id, own.node)
	if own.node == src {
		j.managers[own.node].addRun(own.local, id, run)
		return
	}
	if j.cfg.PullShuffle {
		j.pending[own.node] = append(j.pending[own.node], pullItem{src: src, local: own.local, task: id, run: run})
		return
	}
	j.senders[src].Put(p, pushMsg{dest: own.node, local: own.local, task: id, run: run})
}

func (j *job) noteDelivered(id taskID, node int) {
	m := j.deliveredTo[id]
	if m == nil {
		m = make(map[int]bool)
		j.deliveredTo[id] = m
		j.deliveredOrder = append(j.deliveredOrder, id)
	}
	m[node] = true
}

// pickLiveNode returns a live node index, round-robin for balance.
func (j *job) pickLiveNode() int {
	n := len(j.deadNodes)
	for i := 0; i < n; i++ {
		j.rrNode = (j.rrNode + 1) % n
		if !j.deadNodes[j.rrNode] {
			return j.rrNode
		}
	}
	return 0
}

// killNode applies one scheduled node failure (§III-E: "a failing node
// loses its intermediate data, so its completed map tasks are re-executed").
// It runs in scheduler-callback context, so it must never park:
//
//   - the node's outbound queue, its in-flight transfer, and live nodes'
//     traffic destined to it are dropped;
//   - its partitions are adopted (empty) by survivors and ownership rewired;
//   - every resolved map task whose output is now incomplete re-executes on
//     a surviving node;
//   - the schedulers stop assigning the node work, and its pipeline stages
//     drain cooperatively at their next boundary.
//
// Failures after the map phase, of an already-dead node, or that would kill
// the last live node are skipped. "After the map phase" includes remaining
// == 0 with mapDone not yet set: once the last split resolves the phase is
// over, even if the master's wake-up event has not fired yet — the input
// stages may already have exited, so re-opened work could strand.
func (j *job) killNode(d int) {
	if j.mapDone || j.sched.remaining == 0 || d < 0 || d >= len(j.deadNodes) || j.deadNodes[d] {
		return
	}
	live := 0
	for i := range j.deadNodes {
		if !j.deadNodes[i] && i != d {
			live++
		}
	}
	if live == 0 {
		return
	}
	j.deadNodes[d] = true
	j.counters.nodesLost.Inc()
	j.trace.mark(d, "node-death", j.cluster.Env.Now())

	var rexOrder []taskID
	rexSeen := make(map[taskID]bool)
	addRex := func(id taskID) {
		if !rexSeen[id] {
			rexSeen[id] = true
			rexOrder = append(rexOrder, id)
		}
	}
	// The dead node's queued outbound traffic and in-flight transfer die
	// with it.
	for _, m := range j.senders[d].Filter(func(pushMsg) bool { return false }) {
		j.counters.conserv.storeDeadDropped.Add(int64(m.run.Records))
		addRex(m.task)
	}
	if j.sendingActive[d] {
		addRex(j.sending[d])
	}
	// Live nodes' traffic destined to the dead node is undeliverable.
	for s := range j.senders {
		if s == d {
			continue
		}
		for _, m := range j.senders[s].Filter(func(m pushMsg) bool { return m.dest != d }) {
			j.counters.conserv.storeDeadDropped.Add(int64(m.run.Records))
			addRex(m.task)
		}
		if j.sendingActive[s] && j.sendingDest[s] == d {
			addRex(j.sending[s])
		}
	}
	// Output already stored at the dead node is lost.
	for _, id := range j.deliveredOrder {
		if j.deliveredTo[id][d] {
			addRex(id)
		}
	}

	// Survivors adopt the dead node's partitions (empty — re-executed
	// tasks rebuild their content) and ownership rewires before any
	// re-executed task can deliver.
	for _, ps := range j.managers[d].parts {
		t := j.pickLiveNode()
		local := j.managers[t].adoptPart(j.cluster.Env, ps.global)
		j.owners[ps.global] = ownerRef{node: t, local: local}
	}
	j.managers[d].markDead()

	for _, id := range rexOrder {
		delete(j.deliveredTo[id], d)
		if j.sched.reexecute(id) {
			j.counters.mapRecoveries.Inc()
		}
	}
	j.sched.markDead(d)
}

// validateFaultConfig rejects inconsistent fault-injection settings.
func validateFaultConfig(cfg Config, nodes int) error {
	for _, nf := range cfg.NodeFailures {
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("core: NodeFailures names node %d of %d", nf.Node, nodes)
		}
		if nf.At < 0 {
			return fmt.Errorf("core: NodeFailures time %g is negative", nf.At)
		}
	}
	if len(cfg.NodeFailures) > 0 && cfg.PullShuffle {
		return fmt.Errorf("core: NodeFailures is incompatible with PullShuffle")
	}
	if cfg.SpeculativeSlowdown < 0 {
		return fmt.Errorf("core: SpeculativeSlowdown %g is negative", cfg.SpeculativeSlowdown)
	}
	return nil
}

// Run executes app under cfg on the runtime's cluster and returns the
// result. It drives the simulation to completion; the environment must not
// already be running.
func Run(rt *Runtime, app *App, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("core: app %q needs Parse and Map", app.Name)
	}
	if len(cfg.Input) == 0 {
		return nil, fmt.Errorf("core: no input files")
	}
	if err := validateFaultConfig(cfg, len(rt.Cluster.Nodes)); err != nil {
		return nil, err
	}
	env := rt.Cluster.Env
	n := len(rt.Cluster.Nodes)
	j := &job{
		cluster:       rt.Cluster,
		fs:            rt.FS,
		app:           app,
		cfg:           cfg,
		pending:       make(map[int][]pullItem),
		outputs:       make(map[int][]kv.Pair),
		deadNodes:     make([]bool, n),
		deliveredTo:   make(map[taskID]map[int]bool),
		sending:       make([]taskID, n),
		sendingDest:   make([]int, n),
		sendingActive: make([]bool, n),
	}
	if cfg.Trace {
		j.trace = &Trace{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	j.counters = newJobCounters(reg)
	for i, node := range rt.Cluster.Nodes {
		dev := cfg.Device
		if len(cfg.DevicePerNode) > 0 {
			if len(cfg.DevicePerNode) != n {
				return nil, fmt.Errorf("core: DevicePerNode has %d entries for %d nodes",
					len(cfg.DevicePerNode), n)
			}
			dev = cfg.DevicePerNode[i]
		}
		if dev < 0 || dev >= len(node.Devices) {
			return nil, fmt.Errorf("core: node %d has no device %d", i, dev)
		}
		ctx := cl.NewContext(node.Devices[dev])
		if j.trace != nil {
			// cl command-queue operations land on the same timeline as the
			// pipeline rows ("cl/write", "cl/kernel", "cl/read" tracks).
			ctx.Sink, ctx.Node = j.trace, i
		}
		j.ctxs = append(j.ctxs, ctx)
		mgr := newInterManager(env, node, cfg, i*cfg.PartitionsPerNode)
		mgr.nodeIdx = i
		mgr.trace = j.trace
		mgr.conserv = &j.counters.conserv
		j.managers = append(j.managers, mgr)
	}
	for g := 0; g < n*cfg.PartitionsPerNode; g++ {
		j.owners = append(j.owners, ownerRef{node: g / cfg.PartitionsPerNode, local: g % cfg.PartitionsPerNode})
	}
	splits, err := j.assignSplits()
	if err != nil {
		return nil, err
	}
	if err := j.checkDeviceMemory(splits); err != nil {
		return nil, err
	}
	j.sched = newTaskScheduler[splitRef](env, n, cfg.StaticScheduling, cfg.SpeculativeSlowdown, cfg.MaxTaskAttempts)
	for node, per := range splits {
		for _, sp := range per {
			j.sched.addTask(node, mapTaskID(sp), sp)
		}
	}

	res := &Result{
		App:          app.Name,
		Nodes:        n,
		MapStages:    make([]StageTimes, n),
		ReduceStages: make([]StageTimes, n),
		outputs:      j.outputs,
	}

	env.Spawn("glasswing-master", func(p *sim.Proc) {
		jobStart := p.Now()
		p.Delay(jobStartup)
		if rt.Prelude != nil {
			rt.Prelude(p, rt.Cluster)
		}
		for _, m := range j.managers {
			m.start(env)
		}

		// Map phase: one pipeline per node plus one async sender per
		// node, all concurrent.
		mapStart := p.Now()
		var sendProcs []*sim.Proc
		for i := range rt.Cluster.Nodes {
			i := i
			j.senders = append(j.senders, sim.NewQueue[pushMsg](env, 0))
			sendProcs = append(sendProcs, env.Spawn(fmt.Sprintf("node%03d/sender", i), func(q *sim.Proc) {
				j.senderLoop(q, i)
			}))
			env.Spawn(fmt.Sprintf("node%03d/map", i), func(q *sim.Proc) {
				res.MapStages[i] = j.runMapPipeline(q, i)
			})
		}
		// Node failures are scheduled only after the senders and pipelines
		// exist; a failure instant that already passed during startup fires
		// immediately.
		for _, nf := range cfg.NodeFailures {
			nf := nf
			at := mapStart + nf.At
			if at < p.Now() {
				at = p.Now()
			}
			env.At(at, func() { j.killNode(nf.Node) })
		}
		// The map phase completes when every split is resolved and no
		// scheduled node failure can re-open work — not when the last
		// pipeline drains: a loser attempt (its twin already resolved the
		// task, or its node died) keeps draining in the background like a
		// killed Hadoop attempt, without gating the job. In a fault-free
		// run the last resolve coincides with the last pipeline's exit, so
		// the timeline is unchanged.
		j.sched.awaitDone(p)
		j.mapDone = true
		res.MapElapsed = p.Now() - mapStart
		for _, m := range j.managers {
			m.mapDoneAt = p.Now()
		}
		// In-flight pushes drain during the merge phase (the merge phase
		// "continues until it has received all data sent to it by map
		// pipeline instantiations at other nodes", §III).
		for _, q := range j.senders {
			q.Close()
		}
		for _, pr := range sendProcs {
			pr.Done().Wait(p)
		}

		// Pull-mode shuffle fetch (ablation): reducers fetch their
		// partitions only now, where push mode delivered them during map.
		if cfg.PullShuffle {
			var fetchers []*sim.Proc
			for dest, items := range j.pending {
				dest, items := dest, items
				pr := env.Spawn(fmt.Sprintf("node%03d/fetch", dest), func(q *sim.Proc) {
					for _, it := range items {
						j.cluster.Transfer(q, j.cluster.Nodes[it.src], j.cluster.Nodes[dest], it.run.StoredBytes())
						j.managers[dest].addRun(it.local, it.task, it.run)
					}
				})
				fetchers = append(fetchers, pr)
			}
			for _, pr := range fetchers {
				pr.Done().Wait(p)
			}
		}

		// Merge phase completion: all data has arrived everywhere.
		for _, m := range j.managers {
			m.inputDone.Fire(nil)
		}
		for _, m := range j.managers {
			m.done.Wait(p)
		}
		for _, m := range j.managers {
			res.MergeDelay = max(res.MergeDelay, m.mergeDelay)
			res.IntermediateBytes += m.storedBytes()
		}

		// Reduce phase: partitions are tasks of a second scheduler so a
		// failed reduce attempt can requeue anywhere (§III-E). First
		// attempts stay pinned to the partition's owner — remote stealing
		// is restricted to requeued work, so the fault-free timeline is
		// exactly the per-node iteration it always was.
		reduceStart := p.Now()
		j.redSched = newTaskScheduler[reduceRef](env, n, cfg.StaticScheduling, cfg.SpeculativeSlowdown, cfg.MaxTaskAttempts)
		j.redSched.stealRequeued = true
		for i, dead := range j.deadNodes {
			if dead {
				j.redSched.dead[i] = true
			}
		}
		for g := range j.owners {
			own := j.owners[g]
			j.redSched.addTask(own.node, taskID("part#"+strconv.Itoa(g)), reduceRef{global: g, owner: own.node, local: own.local})
		}
		var redProcs []*sim.Proc
		for i := range rt.Cluster.Nodes {
			if j.deadNodes[i] {
				continue
			}
			i := i
			pr := env.Spawn(fmt.Sprintf("node%03d/reduce", i), func(q *sim.Proc) {
				res.ReduceStages[i] = j.runReducePipeline(q, i)
			})
			redProcs = append(redProcs, pr)
		}
		for _, pr := range redProcs {
			pr.Done().Wait(p)
		}
		res.ReduceElapsed = p.Now() - reduceStart
		res.JobTime = p.Now() - jobStart
	})
	env.Run()

	if j.failErr != nil {
		return nil, j.failErr
	}
	for _, pairs := range j.outputs {
		res.OutputPairs += len(pairs)
	}
	res.Stats = j.counters.stats()
	res.TaskRetries = res.Stats.MapRetries
	res.Trace = j.trace
	publishResult(reg, res)
	return res, nil
}

// checkDeviceMemory verifies the configured buffering level fits the
// device's memory: the pipeline needs Buffering input buffers and Buffering
// output buffers per phase, and "double or triple buffering comes at the
// cost of more buffers, which may be a limited resource for GPUs" (§III-D).
// Output buffers are sized like input buffers (collector output is bounded
// by a small multiple of the input chunk; one buffer-sized allocation per
// level is the paper's granularity).
func (j *job) checkDeviceMemory(splits [][]splitRef) error {
	var maxBlock int64
	for _, per := range splits {
		for _, sp := range per {
			if n := int64(len(sp.file.Blocks[sp.idx].Data)); n > maxBlock {
				maxBlock = n
			}
		}
	}
	need := int64(j.cfg.Buffering) * 2 * maxBlock * 2 // in+out groups, 2x slack
	for i, ctx := range j.ctxs {
		if ctx.Unified() {
			continue
		}
		if need > ctx.Device.MemBytes {
			return fmt.Errorf("core: buffering level %d needs %d bytes of device memory on node %d's %s (%d available) — lower Buffering or the block size",
				j.cfg.Buffering, need, i, ctx.Device.Profile.Name, ctx.Device.MemBytes)
		}
	}
	return nil
}

// assignSplits distributes input blocks over nodes, preferring nodes that
// hold a local replica (the coordinator "considers file affinity in its job
// allocation", §IV-A), balancing counts among candidates.
func (j *job) assignSplits() ([][]splitRef, error) {
	n := len(j.cluster.Nodes)
	per := make([][]splitRef, n)
	counts := make([]float64, n)
	// With BalanceByDevice, each node's assignment is weighted by its
	// selected device's peak throughput, so in a heterogeneous cluster the
	// accelerator nodes draw proportionally more splits (the Shirahata et
	// al. setting, paper §II).
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = 1
		if j.cfg.BalanceByDevice {
			weight[i] = j.ctxs[i].Device.Profile.Peak()
		}
	}
	for _, name := range j.cfg.Input {
		f, err := j.fs.Open(name)
		if err != nil {
			return nil, err
		}
		for idx := range f.Blocks {
			best := -1
			for _, loc := range f.Blocks[idx].Locations {
				if loc.ID < 0 || loc.ID >= n {
					continue
				}
				if best == -1 || counts[loc.ID]/weight[loc.ID] < counts[best]/weight[best] {
					best = loc.ID
				}
			}
			if best == -1 {
				// No local replica anywhere (cannot happen with our file
				// systems, but stay safe): round-robin.
				best = idx % n
			}
			per[best] = append(per[best], splitRef{file: f, idx: idx})
			counts[best]++
		}
	}
	return per, nil
}
