package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"glasswing/internal/obs"
)

// Span is one traced interval of pipeline activity.
type Span struct {
	Node  int
	Stage string // "map/input", "map/kernel", "reduce/output", ...
	Start float64
	End   float64
}

// Mark is one traced instant — an event with no duration, such as a node
// death. Instants are kept apart from Spans so every Span keeps the
// invariant End > Start.
type Mark struct {
	Node int
	Name string
	At   float64
}

// Trace is a job's activity timeline, recorded when Config.Trace is set.
// It shows the overlap the Glasswing pipeline achieves — which stages run
// concurrently, where the pipeline stalls, how the merge phase interleaves
// with the map phase.
type Trace struct {
	Spans []Span
	Marks []Mark
}

func (t *Trace) add(node int, stage string, start, end float64) {
	if t == nil || end <= start {
		return
	}
	t.Spans = append(t.Spans, Span{Node: node, Stage: stage, Start: start, End: end})
}

func (t *Trace) mark(node int, name string, at float64) {
	if t == nil {
		return
	}
	t.Marks = append(t.Marks, Mark{Node: node, Name: name, At: at})
}

// Span implements obs.SpanSink, so a Trace can be handed to instrumented
// components (cl command queues) as their span destination.
func (t *Trace) Span(s obs.Span) {
	t.add(s.Node, s.Stage, s.Start, s.End)
}

// ObsSpans converts the trace for the obs exporter and analyzer.
func (t *Trace) ObsSpans() []obs.Span {
	if t == nil {
		return nil
	}
	out := make([]obs.Span, len(t.Spans))
	for i, s := range t.Spans {
		out[i] = obs.Span{Node: s.Node, Stage: s.Stage, Start: s.Start, End: s.End}
	}
	return out
}

// ObsInstants converts the trace's marks for the obs exporter.
func (t *Trace) ObsInstants() []obs.Instant {
	if t == nil {
		return nil
	}
	out := make([]obs.Instant, len(t.Marks))
	for i, m := range t.Marks {
		out[i] = obs.Instant{Node: m.Node, Name: m.Name, At: m.At}
	}
	return out
}

// Window returns the earliest start and latest end across all spans. A nil
// or empty trace has no window: it returns the documented zero (0, 0)
// rather than the (+Inf, -Inf) a naive min/max fold would produce.
func (t *Trace) Window() (start, end float64) {
	if t == nil || len(t.Spans) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, s := range t.Spans {
		start = math.Min(start, s.Start)
		end = math.Max(end, s.End)
	}
	return start, end
}

// Busy returns the total busy time of one node's stage.
func (t *Trace) Busy(node int, stage string) float64 {
	var total float64
	for _, s := range t.Spans {
		if s.Node == node && s.Stage == stage {
			total += s.End - s.Start
		}
	}
	return total
}

// Render writes an ASCII Gantt chart, one row per (node, stage), width
// columns across the job's time window. Concurrent activity shows as
// overlapping filled regions on different rows.
func (t *Trace) Render(w io.Writer, width int) {
	if width < 20 {
		width = 20
	}
	start, end := t.Window()
	if end <= start {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	type key struct {
		node  int
		stage string
	}
	rows := map[key][]Span{}
	var keys []key
	for _, s := range t.Spans {
		k := key{s.Node, s.Stage}
		if _, ok := rows[k]; !ok {
			keys = append(keys, k)
		}
		rows[k] = append(rows[k], s)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return stageOrder(keys[i].stage) < stageOrder(keys[j].stage)
	})
	scale := float64(width) / (end - start)
	fmt.Fprintf(w, "timeline %.3fs .. %.3fs (%.3fs total), one column = %.4fs\n",
		start, end, end-start, (end-start)/float64(width))
	for _, k := range keys {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = ' '
		}
		for _, s := range rows[k] {
			lo := int((s.Start - start) * scale)
			hi := int(math.Ceil((s.End - start) * scale))
			if hi > width {
				hi = width
			}
			if lo >= width {
				lo = width - 1
			}
			// A span shorter than one column still paints one cell; lo ==
			// hi would otherwise drop it from the chart entirely.
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				cells[i] = '#'
			}
		}
		fmt.Fprintf(w, "node%02d %-16s |%s|\n", k.node, k.stage, string(cells))
	}
}

// stageOrder keeps pipeline rows in execution order (shared with the obs
// exporter and analyzer so every view agrees on track layout).
func stageOrder(stage string) string { return obs.TrackOrder(stage) }

// String renders the trace at a default width.
func (t *Trace) String() string {
	var sb strings.Builder
	t.Render(&sb, 100)
	return sb.String()
}
