package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// toyWordCount is a minimal word-count App used throughout the core tests.
func toyWordCount() *App {
	sum := func(key []byte, values [][]byte, emit func(k, v []byte)) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
	}
	return &App{
		Name: "toy-wc",
		Parse: func(block []byte) []kv.Pair {
			var recs []kv.Pair
			for _, line := range strings.Split(string(block), "\n") {
				if line != "" {
					recs = append(recs, kv.Pair{Value: []byte(line)})
				}
			}
			return recs
		},
		ParseCostPerByte: 1,
		Map: func(rec kv.Pair, emit func(k, v []byte)) {
			for _, w := range strings.Fields(string(rec.Value)) {
				emit([]byte(w), []byte("1"))
			}
		},
		MapCost:     CostModel{OpsPerRecord: 50, OpsPerByte: 8, OpsPerEmit: 20},
		Combine:     sum,
		CombineCost: CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
		Reduce:      sum,
		ReduceCost:  CostModel{OpsPerRecord: 20, OpsPerValue: 10, OpsPerEmit: 20},
	}
}

// corpus builds a small text with known word counts.
func corpus(lines int) ([]byte, map[string]int) {
	var sb strings.Builder
	want := map[string]int{}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < lines; i++ {
		for j := 0; j <= i%3; j++ {
			w := words[(i+j)%len(words)]
			sb.WriteString(w)
			sb.WriteByte(' ')
			want[w]++
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), want
}

func newRuntime(nodes int, withGPU bool, blockSize int64) (*Runtime, *dfs.DFS) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, nodes, hw.Type1(withGPU))
	d := dfs.New(cluster, blockSize, min(3, nodes))
	return &Runtime{Cluster: cluster, FS: d}, d
}

// preloadText installs a text corpus with line-aligned splits.
func preloadText(d *dfs.DFS, name string, data []byte) {
	d.PreloadBlocks(name, dfs.SplitLines(data, d.BlockSize), 0)
}

func checkWordCounts(t *testing.T, res *Result, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, pr := range res.Output() {
		n, err := strconv.Atoi(string(pr.Value))
		if err != nil {
			t.Fatalf("bad count %q for key %q", pr.Value, pr.Key)
		}
		got[string(pr.Key)] += n
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("word %q: got %d, want %d", w, got[w], n)
		}
	}
}

func TestWordCountEndToEndSingleNode(t *testing.T) {
	rt, d := newRuntime(1, false, 4<<10)
	data, want := corpus(500)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true, Compress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.JobTime <= 0 || res.MapElapsed <= 0 || res.ReduceElapsed <= 0 {
		t.Fatalf("degenerate timings: %+v", res)
	}
}

func TestWordCountEndToEndCluster(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		for _, coll := range []CollectorKind{HashTable, BufferPool} {
			name := fmt.Sprintf("%dnodes-%v", nodes, coll)
			t.Run(name, func(t *testing.T) {
				rt, d := newRuntime(nodes, false, 4<<10)
				data, want := corpus(800)
				preloadText(d, "in", data)
				cfg := Config{Input: []string{"in"}, Collector: coll}
				if coll == HashTable {
					cfg.UseCombiner = true
				}
				res, err := Run(rt, toyWordCount(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				checkWordCounts(t, res, want)
			})
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		rt, d := newRuntime(3, false, 4<<10)
		data, _ := corpus(400)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.JobTime != b.JobTime || a.MapElapsed != b.MapElapsed || a.MergeDelay != b.MergeDelay {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCombinerShrinksIntermediateData(t *testing.T) {
	run := func(useComb bool) *Result {
		rt, d := newRuntime(2, false, 4<<10)
		data, want := corpus(600)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: useComb,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	with := run(true)
	without := run(false)
	if with.IntermediateBytes >= without.IntermediateBytes {
		t.Fatalf("combiner did not shrink intermediate data: %d vs %d",
			with.IntermediateBytes, without.IntermediateBytes)
	}
}

func TestBufferingLevelsAllCorrectAndOverlapHelps(t *testing.T) {
	var times []float64
	for _, buf := range []int{1, 2, 3} {
		rt, d := newRuntime(1, false, 2<<10)
		data, want := corpus(600)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true, Buffering: buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		times = append(times, res.JobTime)
	}
	if times[1] > times[0]*1.001 {
		t.Errorf("double buffering (%g) should not be slower than single (%g)", times[1], times[0])
	}
}

func TestNoOverlapAblationSlower(t *testing.T) {
	run := func(noOverlap bool) *Result {
		rt, d := newRuntime(1, false, 2<<10)
		data, want := corpus(800)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true, NoOverlap: noOverlap,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	overlapped := run(false)
	sequential := run(true)
	if sequential.MapElapsed <= overlapped.MapElapsed {
		t.Fatalf("sequential map (%g) should be slower than pipelined (%g)",
			sequential.MapElapsed, overlapped.MapElapsed)
	}
}

func TestPullShuffleSlowerThanPush(t *testing.T) {
	run := func(pull bool) *Result {
		rt, d := newRuntime(4, false, 2<<10)
		data, want := corpus(800)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true, PullShuffle: pull,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	push := run(false)
	pull := run(true)
	if pull.MergeDelay <= push.MergeDelay {
		t.Fatalf("pull shuffle merge delay (%g) should exceed push (%g)",
			pull.MergeDelay, push.MergeDelay)
	}
}

func TestGPUDeviceRuns(t *testing.T) {
	rt, d := newRuntime(2, true, 4<<10)
	data, want := corpus(500)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Device: 1, Collector: HashTable, UseCombiner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	// Discrete device: Stage/Retrieve must actually cost something.
	st := res.MaxMapStage()
	if st.Stage <= 0 || st.Retrieve <= 0 {
		t.Fatalf("GPU Stage/Retrieve should be non-zero: %+v", st)
	}
	// CPU runs must have them disabled.
	rt2, d2 := newRuntime(2, true, 4<<10)
	d2.Preload("in", data, 0)
	res2, err := Run(rt2, toyWordCount(), Config{
		Input: []string{"in"}, Device: 0, Collector: HashTable, UseCombiner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2 := res2.MaxMapStage()
	if st2.Stage != 0 || st2.Retrieve != 0 {
		t.Fatalf("unified Stage/Retrieve should be zero: %+v", st2)
	}
}

func TestIdentityJobNoReduceKeepsOrder(t *testing.T) {
	// A no-reduce app (TeraSort-style) with a range partitioner: output
	// concatenated by partition must be globally sorted.
	app := &App{
		Name: "toy-sort",
		Parse: func(block []byte) []kv.Pair {
			var recs []kv.Pair
			for i := 0; i+4 <= len(block); i += 4 {
				recs = append(recs, kv.Pair{Key: block[i : i+2], Value: block[i+2 : i+4]})
			}
			return recs
		},
		ParseCostPerByte: 1,
		Map:              func(rec kv.Pair, emit func(k, v []byte)) { emit(rec.Key, rec.Value) },
		MapCost:          CostModel{OpsPerRecord: 10, OpsPerByte: 2, OpsPerEmit: 10},
	}
	var data []byte
	rng := uint32(12345)
	for i := 0; i < 4000; i++ {
		rng = rng*1664525 + 1013904223
		data = append(data, byte('a'+rng%26), byte('a'+(rng>>8)%26), byte(rng>>16), byte(rng>>24))
	}
	rt, d := newRuntime(4, false, 1<<10)
	d.PreloadBlocks("in", dfs.SplitFixed(data, 1<<10, 4), 0)
	res, err := Run(rt, app, Config{
		Input: []string{"in"}, Collector: BufferPool,
		Partitioner: func(key []byte, n int) int {
			// Range partition on the first byte: preserves global order.
			return int(key[0]-'a') * n / 26
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output()
	if len(out) != 4000 {
		t.Fatalf("output pairs = %d, want 4000", len(out))
	}
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) > 0 {
			t.Fatalf("output not totally ordered at %d: %q > %q", i, out[i-1].Key, out[i].Key)
		}
	}
}

func TestMergeDelayRespondsToCachePressure(t *testing.T) {
	run := func(threshold int64) *Result {
		rt, d := newRuntime(1, false, 1<<10)
		data, want := corpus(1200)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: false,
			CacheThreshold: threshold, PartitionsPerNode: 2, MaxSpillFiles: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	tight := run(2 << 10) // force spills and merges
	loose := run(1 << 30) // everything stays cached
	if tight.JobTime <= loose.JobTime {
		t.Fatalf("spilling run (%g) should be slower than cached run (%g)",
			tight.JobTime, loose.JobTime)
	}
}

func TestConfigValidation(t *testing.T) {
	rt, d := newRuntime(1, false, 4<<10)
	d.Preload("in", []byte("x"), 0)
	if _, err := Run(rt, &App{Name: "broken"}, Config{Input: []string{"in"}}); err == nil {
		t.Error("app without Map/Parse should fail")
	}
	app := toyWordCount()
	if _, err := Run(rt, app, Config{}); err == nil {
		t.Error("missing input should fail")
	}
	if _, err := Run(rt, app, Config{Input: []string{"in"}, Device: 5}); err == nil {
		t.Error("bad device index should fail")
	}
	if _, err := Run(rt, app, Config{Input: []string{"nope"}}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestOutputWrittenToFS(t *testing.T) {
	rt, d := newRuntime(2, false, 4<<10)
	data, _ := corpus(300)
	preloadText(d, "in", data)
	cfg := Config{Input: []string{"in"}, OutputPath: "result", PartitionsPerNode: 2,
		Collector: HashTable, UseCombiner: true}
	if _, err := Run(rt, toyWordCount(), cfg); err != nil {
		t.Fatal(err)
	}
	found := 0
	for g := 0; g < 4; g++ {
		if d.Exists(fmt.Sprintf("result-%05d", g)) {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("found %d output partition files, want 4", found)
	}
}

func TestTaskFailureReExecution(t *testing.T) {
	// Every split fails exactly twice before succeeding; the output must
	// still be exactly right and the retries accounted.
	rt, d := newRuntime(2, false, 2<<10)
	data, want := corpus(600)
	preloadText(d, "in", data)
	attempts := map[[2]int]int{}
	var splits int
	if f, err := d.Open("in"); err == nil {
		splits = len(f.Blocks)
	}
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		FaultInjector: func(file string, split, attempt int) bool {
			attempts[[2]int{split, attempt}]++
			return attempt <= 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.TaskRetries != 2*splits {
		t.Fatalf("TaskRetries = %d, want %d", res.TaskRetries, 2*splits)
	}
	for key, n := range attempts {
		if n != 1 {
			t.Fatalf("split %d attempt %d ran %d times", key[0], key[1], n)
		}
	}
}

func TestTaskFailureCostsTime(t *testing.T) {
	run := func(fail bool) *Result {
		rt, d := newRuntime(1, false, 2<<10)
		data, want := corpus(600)
		preloadText(d, "in", data)
		cfg := Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true}
		if fail {
			cfg.FaultInjector = func(_ string, split, attempt int) bool {
				return split%2 == 0 && attempt == 1
			}
		}
		res, err := Run(rt, toyWordCount(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	clean := run(false)
	faulty := run(true)
	if faulty.TaskRetries == 0 {
		t.Fatal("no retries recorded")
	}
	if faulty.JobTime <= clean.JobTime {
		t.Fatalf("re-execution should cost time: faulty %g vs clean %g", faulty.JobTime, clean.JobTime)
	}
}

func TestTaskFailureExhaustsAttempts(t *testing.T) {
	rt, d := newRuntime(1, false, 2<<10)
	data, _ := corpus(100)
	preloadText(d, "in", data)
	_, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		MaxTaskAttempts: 2,
		FaultInjector:   func(string, int, int) bool { return true },
	})
	if err == nil {
		t.Fatal("expected job failure after exhausting attempts")
	}
}

func TestNoOverlapFaultRetry(t *testing.T) {
	rt, d := newRuntime(1, false, 2<<10)
	data, want := corpus(400)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true, NoOverlap: true,
		FaultInjector: func(_ string, split, attempt int) bool { return split == 0 && attempt == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
	}
}

func TestDeviceMemoryBudget(t *testing.T) {
	// Triple buffering of huge blocks must not fit a GTX480's 1.5 GiB.
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, 1, hw.Type1(true))
	d := dfs.New(cluster, 512<<20, 1)
	big := make([]byte, 600<<20)
	for i := 0; i < len(big); i += 101 {
		big[i] = '\n'
	}
	d.Preload("in", big, 0)
	rt := &Runtime{Cluster: cluster, FS: d}
	_, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Device: 1, Buffering: 3,
		Collector: HashTable, UseCombiner: true,
	})
	if err == nil {
		t.Fatal("triple-buffered 512MiB blocks should exceed GTX480 memory")
	}
}

func TestTraceRecordsOverlap(t *testing.T) {
	rt, d := newRuntime(2, true, 2<<10)
	data, want := corpus(600)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Device: 1, Collector: HashTable, UseCombiner: true,
		Trace: true, CacheThreshold: 1 << 10, PartitionsPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	tr := res.Trace
	if tr == nil || len(tr.Spans) == 0 {
		t.Fatal("no trace recorded")
	}
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.End <= sp.Start {
			t.Fatalf("degenerate span %+v", sp)
		}
		stages[sp.Stage] = true
	}
	for _, want := range []string{"map/input", "map/stage", "map/kernel", "map/retrieve", "map/partition", "reduce/input", "reduce/kernel", "reduce/output"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}
	// Busy times from the trace must match the stage accounting.
	st := res.MapStages[0]
	if got := tr.Busy(0, "map/input"); got < st.Input*0.99 || got > st.Input*1.01 {
		t.Errorf("trace input busy %g vs stage accounting %g", got, st.Input)
	}
	// Overlap: some map/input span must intersect a map/kernel span.
	overlaps := false
	for _, a := range tr.Spans {
		if a.Stage != "map/input" {
			continue
		}
		for _, b := range tr.Spans {
			if b.Stage == "map/kernel" && a.Node == b.Node && a.Start < b.End && b.Start < a.End {
				overlaps = true
			}
		}
	}
	if !overlaps {
		t.Error("expected input/kernel overlap in the pipeline trace")
	}
	// The Gantt renderer must produce a sane chart.
	out := tr.String()
	if !strings.Contains(out, "map/kernel") || !strings.Contains(out, "#") {
		t.Errorf("render output unexpected:\n%s", out)
	}
	start, end := tr.Window()
	if !(start >= 0 && end > start) {
		t.Errorf("bad window %g..%g", start, end)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	rt, d := newRuntime(1, false, 4<<10)
	data, _ := corpus(100)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace should be nil unless requested")
	}
}

// TestQuickRandomConfigCorrectness is the engine's central property: for
// ANY combination of buffering level, collector, combiner, compression,
// partition counts, thread counts, cache thresholds, shuffle mode, overlap
// mode and device, the job computes exactly the same answer.
func TestQuickRandomConfigCorrectness(t *testing.T) {
	data, want := corpus(500)
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>8) % n
		}
		nodes := 1 + next(4)
		cfg := Config{
			Input:             []string{"in"},
			Buffering:         1 + next(3),
			PartitionThreads:  1 + next(16),
			PartitionsPerNode: 1 + next(8),
			CacheThreshold:    int64(1 << (8 + next(16))),
			MaxSpillFiles:     1 + next(8),
			ConcurrentKeys:    1 + next(2048),
			KeysPerThread:     1 + next(8),
			ThreadsPerKey:     1 + next(4),
			Compress:          next(2) == 0,
			NoOverlap:         next(8) == 0,
			PullShuffle:       next(4) == 0,
		}
		gpu := next(2) == 0
		if gpu {
			cfg.Device = 1
		}
		switch next(3) {
		case 0:
			cfg.Collector = HashTable
			cfg.UseCombiner = true
		case 1:
			cfg.Collector = HashTable
		default:
			cfg.Collector = BufferPool
		}
		rt, d := newRuntime(nodes, true, int64(1<<(10+next(4))))
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), cfg)
		if err != nil {
			t.Logf("seed %d: %v (cfg %+v)", seed, err, cfg)
			return false
		}
		got := map[string]int{}
		for _, pr := range res.Output() {
			n, err := strconv.Atoi(string(pr.Value))
			if err != nil {
				return false
			}
			got[string(pr.Key)] += n
		}
		if len(got) != len(want) {
			t.Logf("seed %d: %d distinct keys, want %d (cfg %+v)", seed, len(got), len(want), cfg)
			return false
		}
		for w, n := range want {
			if got[w] != n {
				t.Logf("seed %d: key %q = %d, want %d (cfg %+v)", seed, w, got[w], n, cfg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
