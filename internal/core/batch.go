package core

import "glasswing/internal/kv"

// MapBatchFunc is the batch-oriented map kernel contract: one invocation
// consumes a slab of records and appends every emitted pair into out. The
// callee may keep per-batch scratch on its own stack — amortized over the
// whole batch — but must not retain state across invocations: a batch
// kernel is called concurrently from multiple workers.
type MapBatchFunc func(recs []kv.Pair, out *kv.Batch)

// ReduceBatchFunc is the batch-oriented reduce kernel contract: one key
// group in, output pairs appended to out. Appended bytes are copied into
// the batch slab, so the kernel may emit views into key/values or stack
// scratch.
type ReduceBatchFunc func(key []byte, values [][]byte, out *kv.Batch)

// MapFromBatch adapts a batch map kernel to the per-record MapFunc
// contract. The wrapper exists for the runtimes without a batch fast path
// (sim, hadoop, gpmr): they keep their per-record call sites, and because
// the wrapper runs the same batch kernel body, the emitted pair sequence
// is identical by construction. It trades a small per-record Batch for
// that fidelity — fine off the hot path, which is the point of having a
// batch fast path elsewhere.
func MapFromBatch(mb MapBatchFunc) MapFunc {
	return func(rec kv.Pair, emit func(key, value []byte)) {
		var out kv.Batch
		recs := [1]kv.Pair{rec}
		mb(recs[:], &out)
		for i := 0; i < out.Len(); i++ {
			p := out.Pair(i)
			emit(p.Key, p.Value)
		}
	}
}

// ReduceFromBatch adapts a batch reduce kernel to the per-group ReduceFunc
// contract, mirroring MapFromBatch.
func ReduceFromBatch(rb ReduceBatchFunc) ReduceFunc {
	return func(key []byte, values [][]byte, emit func(key, value []byte)) {
		var out kv.Batch
		rb(key, values, &out)
		for i := 0; i < out.Len(); i++ {
			p := out.Pair(i)
			emit(p.Key, p.Value)
		}
	}
}

// FinishBatchApp derives the per-record kernels of an App from its batch
// kernels where only the batch form was provided. Apps define the batch
// form once and call this, so the per-record compatibility surface can
// never drift from the batch implementation.
func FinishBatchApp(app *App) *App {
	if app.Map == nil && app.MapBatch != nil {
		app.Map = MapFromBatch(app.MapBatch)
	}
	if app.Reduce == nil && app.ReduceBatch != nil {
		app.Reduce = ReduceFromBatch(app.ReduceBatch)
	}
	return app
}
