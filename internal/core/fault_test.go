package core

import (
	"strconv"
	"strings"
	"testing"

	"glasswing/internal/dfs"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// richCorpus is corpus with a wide vocabulary: the shared helper's six
// words hash into only a handful of the global partitions, so a node can
// die without ever having received intermediate data. Node-death tests
// need every node's partitions populated to have something to lose.
func richCorpus(lines int) ([]byte, map[string]int) {
	var sb strings.Builder
	want := map[string]int{}
	for i := 0; i < lines; i++ {
		for j := 0; j <= i%3; j++ {
			w := "w" + strconv.Itoa((i*7+j*131)%256)
			sb.WriteString(w)
			sb.WriteByte(' ')
			want[w]++
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), want
}

// --- reduce-task re-execution ---

func TestReduceFaultRetry(t *testing.T) {
	// Every partition's first reduce attempt fails; the job must retry
	// each one and still produce exactly the right output.
	run := func(inject bool) *Result {
		rt, d := newRuntime(2, false, 2<<10)
		data, want := corpus(600)
		preloadText(d, "in", data)
		cfg := Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
			PartitionsPerNode: 2}
		if inject {
			cfg.ReduceFaultInjector = func(part, attempt int) bool { return attempt == 1 }
		}
		res, err := Run(rt, toyWordCount(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	clean := run(false)
	faulty := run(true)
	if faulty.Stats.ReduceRetries != 4 {
		t.Fatalf("ReduceRetries = %d, want 4 (one per partition)", faulty.Stats.ReduceRetries)
	}
	if clean.Stats.ReduceRetries != 0 {
		t.Fatalf("clean run recorded %d reduce retries", clean.Stats.ReduceRetries)
	}
	if faulty.JobTime <= clean.JobTime {
		t.Fatalf("reduce re-execution should cost time: faulty %g vs clean %g",
			faulty.JobTime, clean.JobTime)
	}
}

func TestReduceFaultRetryRunsElsewhere(t *testing.T) {
	// A partition that keeps failing on its owner must eventually be
	// stolen by another node (requeued reduce work is stealable) and
	// succeed there.
	rt, d := newRuntime(2, false, 2<<10)
	data, want := corpus(400)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		PartitionsPerNode: 1, MaxTaskAttempts: 6,
		// Partition 0 lives on node 0; fail it there twice so a retry can
		// migrate. (The injector has no node argument, so fail the first
		// two attempts regardless of placement.)
		ReduceFaultInjector: func(part, attempt int) bool { return part == 0 && attempt <= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.ReduceRetries != 2 {
		t.Fatalf("ReduceRetries = %d, want 2", res.Stats.ReduceRetries)
	}
}

func TestReduceFaultExhaustsAttempts(t *testing.T) {
	rt, d := newRuntime(1, false, 2<<10)
	data, _ := corpus(100)
	preloadText(d, "in", data)
	_, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		MaxTaskAttempts:     2,
		ReduceFaultInjector: func(part, attempt int) bool { return part == 0 },
	})
	if err == nil {
		t.Fatal("expected job failure after exhausting reduce attempts")
	}
}

// --- node-level failure ---

func TestNodeDeathReExecutesMapWork(t *testing.T) {
	// Establish the fault-free map-phase length, then kill a node halfway
	// through it. Completed map tasks whose output lived on the dead node
	// must re-execute on survivors — visible as retry spans and
	// MapRecoveries — and the final output must be exactly right.
	baseline := func() *Result {
		rt, d := newRuntime(4, false, 1<<10)
		data, _ := richCorpus(1200)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	rt, d := newRuntime(4, false, 1<<10)
	data, want := richCorpus(1200)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		Trace:        true,
		NodeFailures: []NodeFailure{{Node: 2, At: baseline.MapElapsed * 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.NodesLost != 1 {
		t.Fatalf("NodesLost = %d, want 1", res.Stats.NodesLost)
	}
	if res.Stats.MapRecoveries == 0 {
		t.Fatal("node death halfway through the map phase lost no completed map output — expected MapRecoveries > 0")
	}
	retrySpans := 0
	for _, s := range res.Trace.Spans {
		if s.Stage == "retry" {
			if s.Node == 2 {
				t.Fatalf("retry span on the dead node: %+v", s)
			}
			retrySpans++
		}
	}
	if retrySpans == 0 {
		t.Fatal("no retry spans in trace despite MapRecoveries > 0")
	}
	if res.JobTime <= baseline.JobTime {
		t.Fatalf("losing a node should cost time: %g vs baseline %g", res.JobTime, baseline.JobTime)
	}
}

func TestNodeDeathSparesLastLiveNode(t *testing.T) {
	// A failure schedule that would kill the only (or last) live node is
	// skipped; the job completes normally.
	rt, d := newRuntime(1, false, 2<<10)
	data, want := corpus(300)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		NodeFailures: []NodeFailure{{Node: 0, At: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.NodesLost != 0 {
		t.Fatalf("NodesLost = %d, want 0 (last live node is spared)", res.Stats.NodesLost)
	}
}

func TestNodeDeathAfterMapPhaseSkipped(t *testing.T) {
	rt, d := newRuntime(2, false, 2<<10)
	data, want := corpus(300)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		NodeFailures: []NodeFailure{{Node: 1, At: 1e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.NodesLost != 0 {
		t.Fatalf("NodesLost = %d, want 0 (failure scheduled after the map phase)", res.Stats.NodesLost)
	}
}

func TestNodeDeathAtTimeZero(t *testing.T) {
	// Death before the first split completes: nothing has been delivered,
	// so there is nothing to recover, but the node's share must still be
	// redistributed and the output stay correct.
	rt, d := newRuntime(3, false, 2<<10)
	data, want := richCorpus(600)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		NodeFailures: []NodeFailure{{Node: 0, At: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.NodesLost != 1 {
		t.Fatalf("NodesLost = %d, want 1", res.Stats.NodesLost)
	}
}

func TestTwoNodeDeaths(t *testing.T) {
	baseline := func() *Result {
		rt, d := newRuntime(4, false, 1<<10)
		data, _ := richCorpus(1000)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	rt, d := newRuntime(4, false, 1<<10)
	data, want := richCorpus(1000)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		NodeFailures: []NodeFailure{
			{Node: 1, At: baseline.MapElapsed * 0.3},
			{Node: 3, At: baseline.MapElapsed * 0.7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.NodesLost != 2 {
		t.Fatalf("NodesLost = %d, want 2", res.Stats.NodesLost)
	}
}

func TestNodeDeathWithMapFaults(t *testing.T) {
	// Combined scenario: injected map faults plus a node death.
	baseline := func() *Result {
		rt, d := newRuntime(3, false, 1<<10)
		data, _ := richCorpus(900)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	rt, d := newRuntime(3, false, 1<<10)
	data, want := richCorpus(900)
	preloadText(d, "in", data)
	res, err := Run(rt, toyWordCount(), Config{
		Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
		MaxTaskAttempts: 8,
		FaultInjector:   func(_ string, split, attempt int) bool { return split%3 == 0 && attempt == 1 },
		NodeFailures:    []NodeFailure{{Node: 1, At: baseline.MapElapsed * 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCounts(t, res, want)
	if res.Stats.MapRetries == 0 || res.Stats.NodesLost != 1 {
		t.Fatalf("stats = %+v, want MapRetries > 0 and NodesLost == 1", res.Stats)
	}
}

func TestNodeFailureValidation(t *testing.T) {
	rt, d := newRuntime(2, false, 2<<10)
	data, _ := corpus(100)
	preloadText(d, "in", data)
	app := toyWordCount()
	base := Config{Input: []string{"in"}, Collector: HashTable, UseCombiner: true}

	cfg := base
	cfg.NodeFailures = []NodeFailure{{Node: 7, At: 1}}
	if _, err := Run(rt, app, cfg); err == nil {
		t.Error("out-of-range NodeFailures node should fail")
	}
	cfg = base
	cfg.NodeFailures = []NodeFailure{{Node: 0, At: -1}}
	if _, err := Run(rt, app, cfg); err == nil {
		t.Error("negative NodeFailures time should fail")
	}
	cfg = base
	cfg.NodeFailures = []NodeFailure{{Node: 0, At: 1}}
	cfg.PullShuffle = true
	if _, err := Run(rt, app, cfg); err == nil {
		t.Error("NodeFailures with PullShuffle should fail")
	}
	cfg = base
	cfg.SpeculativeSlowdown = -2
	if _, err := Run(rt, app, cfg); err == nil {
		t.Error("negative SpeculativeSlowdown should fail")
	}
}

// --- speculative execution ---

// stragglerRuntime builds a cluster where the last node is slower by
// factor. All nodes get SSDs: a map attempt on a spinning disk is
// dominated by the fixed (deliberately undilated) 6ms seek, which would
// mask the slowdown entirely at small block sizes.
func stragglerRuntime(nodes int, factor float64, blockSize int64) (*Runtime, *dfs.DFS) {
	env := sim.NewEnv()
	specs := make([]hw.NodeSpec, nodes)
	for i := range specs {
		specs[i] = hw.Type1(false)
		specs[i].Disk = hw.SSDLocal
	}
	specs[nodes-1] = specs[nodes-1].Slowed(factor)
	cluster := hw.NewClusterWithSpecs(env, specs)
	// Full replication: a speculative backup must not have to fetch its
	// block from the straggler's slowed disk and NIC.
	d := dfs.New(cluster, blockSize, nodes)
	return &Runtime{Cluster: cluster, FS: d}, d
}

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	// One node 8x slower. With dynamic stealing, the straggler's queue
	// drains to the fast nodes, but whatever attempt it is actually
	// running stretches the map phase tail. Speculation launches a backup
	// on an idle fast node and the first finisher wins.
	run := func(specFactor float64) *Result {
		rt, d := stragglerRuntime(4, 32, 64<<10)
		data, want := richCorpus(90000)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
			Trace: true, SpeculativeSlowdown: specFactor,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	plain := run(0)
	spec := run(2)
	if plain.Stats.SpeculativeWins != 0 {
		t.Fatalf("speculation disabled but %d wins recorded", plain.Stats.SpeculativeWins)
	}
	if spec.Stats.SpeculativeWins == 0 {
		t.Fatal("no speculative wins against a 32x straggler")
	}
	if spec.MapElapsed >= plain.MapElapsed {
		t.Fatalf("speculation should shorten the map phase: %g vs %g",
			spec.MapElapsed, plain.MapElapsed)
	}
	found := false
	for _, s := range spec.Trace.Spans {
		if s.Stage == "speculative" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no speculative spans in trace despite SpeculativeWins > 0")
	}
}

func TestSpeculativeExecutionFaultFreeStable(t *testing.T) {
	// On a homogeneous cluster with no faults, enabling speculation must
	// not change the result or record wins (attempts all track the
	// median; no straggler crosses the threshold).
	run := func(specFactor float64) *Result {
		rt, d := newRuntime(3, false, 2<<10)
		data, want := corpus(600)
		preloadText(d, "in", data)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
			SpeculativeSlowdown: specFactor,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkWordCounts(t, res, want)
		return res
	}
	plain := run(0)
	spec := run(3)
	if spec.Stats.SpeculativeWins != 0 {
		t.Fatalf("homogeneous fault-free run recorded %d speculative wins", spec.Stats.SpeculativeWins)
	}
	if plain.OutputPairs != spec.OutputPairs {
		t.Fatalf("speculation changed output: %d vs %d pairs", plain.OutputPairs, spec.OutputPairs)
	}
}

// --- Trace.Window regression (satellite bugfix) ---

func TestTraceWindowEmpty(t *testing.T) {
	var empty Trace
	if s, e := empty.Window(); s != 0 || e != 0 {
		t.Fatalf("empty trace Window = (%g, %g), want (0, 0)", s, e)
	}
	var nilTrace *Trace
	if s, e := nilTrace.Window(); s != 0 || e != 0 {
		t.Fatalf("nil trace Window = (%g, %g), want (0, 0)", s, e)
	}
	tr := &Trace{}
	tr.add(0, "map/input", 1.5, 2.5)
	if s, e := tr.Window(); s != 1.5 || e != 2.5 {
		t.Fatalf("Window = (%g, %g), want (1.5, 2.5)", s, e)
	}
}

// --- SeededFaults determinism (satellite helper) ---

func TestSeededFaultsDeterministic(t *testing.T) {
	m1, r1 := SeededFaults(42, 0.3, 0.3)
	m2, r2 := SeededFaults(42, 0.3, 0.3)
	mapFired, reduceFired := 0, 0
	for split := 0; split < 50; split++ {
		for attempt := 1; attempt <= 4; attempt++ {
			a, b := m1("in", split, attempt), m2("in", split, attempt)
			if a != b {
				t.Fatalf("map injector not deterministic at (%d,%d)", split, attempt)
			}
			if a {
				mapFired++
			}
			c, e := r1(split, attempt), r2(split, attempt)
			if c != e {
				t.Fatalf("reduce injector not deterministic at (%d,%d)", split, attempt)
			}
			if c {
				reduceFired++
			}
		}
	}
	if mapFired == 0 || reduceFired == 0 {
		t.Fatalf("p=0.3 over 200 rolls fired map=%d reduce=%d times", mapFired, reduceFired)
	}

	// Different seeds must differ somewhere.
	m3, _ := SeededFaults(43, 0.3, 0.3)
	same := true
	for split := 0; split < 50 && same; split++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if m1("in", split, attempt) != m3("in", split, attempt) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}

	// Zero probability never fires.
	mz, rz := SeededFaults(7, 0, 0)
	for split := 0; split < 20; split++ {
		if mz("in", split, 1) || rz(split, 1) {
			t.Fatal("p=0 injector fired")
		}
	}
}

// --- deterministic replay with faults ---

func TestFaultScenarioDeterministic(t *testing.T) {
	run := func() *Result {
		rt, d := newRuntime(3, false, 1<<10)
		data, _ := richCorpus(800)
		preloadText(d, "in", data)
		mi, ri := SeededFaults(11, 0.1, 0.2)
		res, err := Run(rt, toyWordCount(), Config{
			Input: []string{"in"}, Collector: HashTable, UseCombiner: true,
			MaxTaskAttempts: 10, FaultInjector: mi, ReduceFaultInjector: ri,
			NodeFailures: []NodeFailure{{Node: 2, At: 0.3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.JobTime != b.JobTime || a.Stats != b.Stats || a.OutputPairs != b.OutputPairs {
		t.Fatalf("fault scenario not deterministic:\n  a: t=%g %+v\n  b: t=%g %+v",
			a.JobTime, a.Stats, b.JobTime, b.Stats)
	}
}
