package core

import "hash/fnv"

// NodeFailure schedules the death of one simulated node At seconds after
// the map phase begins (see Config.NodeFailures). Anchoring At to the map
// phase rather than job start lets callers place deaths as fractions of a
// baseline run's MapElapsed without knowing the job's startup overhead.
type NodeFailure struct {
	Node int
	At   float64
}

// JobStats counts the fault-tolerance machinery's activity during a job
// (§III-E). All counters are zero in a fault-free run.
type JobStats struct {
	// MapRetries counts map attempts that failed by fault injection and
	// were re-executed (mirrored as Result.TaskRetries).
	MapRetries int
	// ReduceRetries counts reduce attempts failed by fault injection.
	ReduceRetries int
	// NodesLost counts node failures that were actually applied.
	NodesLost int
	// MapRecoveries counts completed map tasks re-executed because their
	// delivered intermediate output died with a node.
	MapRecoveries int
	// SpeculativeWins counts tasks whose speculative backup finished
	// before the original attempt.
	SpeculativeWins int
}

// SeededFaults derives deterministic map and reduce fault injectors from a
// seed: each (task, attempt) pair fails with probability pMap / pReduce,
// decided by a pure hash so the same seed reproduces the exact failure
// scenario across runs, platforms and test shards. Either probability may
// be 0 to disable that side.
func SeededFaults(seed int64, pMap, pReduce float64) (mapInj func(file string, split, attempt int) bool, reduceInj func(part, attempt int) bool) {
	mapInj = func(file string, split, attempt int) bool {
		h := fnv.New64a()
		h.Write([]byte(file))
		return faultRoll(seed, int64(h.Sum64())^0x6d61, int64(split), int64(attempt), pMap)
	}
	reduceInj = func(part, attempt int) bool {
		return faultRoll(seed, 0x7265, int64(part), int64(attempt), pReduce)
	}
	return mapInj, reduceInj
}

// faultRoll maps (seed, domain, task, attempt) to [0,1) via splitmix64 and
// compares against p. Purely functional: no state, no global RNG.
func faultRoll(seed, domain, task, attempt int64, p float64) bool {
	if p <= 0 {
		return false
	}
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(domain), uint64(task), uint64(attempt)} {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11)/float64(1<<53) < p
}
