package core

import (
	"fmt"

	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
)

// partStore is one local intermediate partition: an in-memory cache of
// serialized runs plus the on-disk run files the continuous merger manages.
type partStore struct {
	global      int // global partition id
	cached      []*kv.Run
	cachedBytes int64
	onDisk      []*kv.Run
	// seen records which map tasks already contributed a run, so the
	// re-delivery of a task re-executed after a node death is dropped at
	// surviving partitions instead of duplicating data.
	seen map[taskID]bool
}

func newPartStore(global int) *partStore {
	return &partStore{global: global, seen: make(map[taskID]bool)}
}

func (ps *partStore) runs() []*kv.Run {
	out := make([]*kv.Run, 0, len(ps.onDisk)+len(ps.cached))
	out = append(out, ps.onDisk...)
	out = append(out, ps.cached...)
	return out
}

// storedTotal is the partition's full stored volume (cache + disk) — what a
// remote reduce attempt must move over the fabric.
func (ps *partStore) storedTotal() int64 {
	var total int64
	for _, r := range ps.runs() {
		total += r.StoredBytes()
	}
	return total
}

// interManager implements §III-B: per-node intermediate data management.
// Each node caches incoming Partitions in memory, merges and flushes them
// to disk when the aggregate cache exceeds a threshold, and continuously
// multi-way merges on-disk runs so the file count stays bounded. Merger
// threads run concurrently with the map pipeline, contending for the CPU;
// the merge delay — merging time left after the map phase completes and
// before reduction may start — is the paper's §III-B performance metric.
type interManager struct {
	node    *hw.Node
	nodeIdx int
	trace   *Trace
	cfg     Config
	// conserv is the job's conservation ledger (set by Run; nil-field-safe
	// because counters are only touched when non-nil).
	conserv *conservCounters
	parts   []*partStore

	wake       []*sim.Queue[struct{}]
	mergerSigs []*sim.Signal
	slots      *sim.Resource
	inputDone  *sim.Signal // all intermediate data has arrived at this node
	done       *sim.Signal // mergers quiesced; fired with the merge delay
	// dead marks the node as failed: its stores are lost and further
	// deliveries are dropped (§III-E node-level failure).
	dead bool

	// mapDoneAt is when the map phase completed; the merge delay is
	// measured from here (§III-B), so pull-mode fetches count toward it.
	mapDoneAt  float64
	mergeDelay float64
}

func newInterManager(env *sim.Env, node *hw.Node, cfg Config, firstGlobal int) *interManager {
	m := &interManager{
		node:      node,
		cfg:       cfg,
		inputDone: sim.NewSignal(env),
		done:      sim.NewSignal(env),
		slots:     sim.NewResource(env, cfg.MergeThreads),
	}
	for i := 0; i < cfg.PartitionsPerNode; i++ {
		m.parts = append(m.parts, newPartStore(firstGlobal+i))
		m.wake = append(m.wake, sim.NewQueue[struct{}](env, 1))
	}
	return m
}

// addRun appends task's run to local partition idx's cache. It runs in the
// sender's process (partition stage or remote push), so the insert itself is
// free; the run's serialization and transport were charged by the sender.
// Deliveries to a dead node and re-deliveries of a task already seen by this
// partition (a node-loss re-execution fanning out again) are dropped.
func (m *interManager) addRun(idx int, task taskID, run *kv.Run) {
	if m.dead {
		if m.conserv != nil {
			m.conserv.storeDeadDropped.Add(int64(run.Records))
		}
		return
	}
	if run.Records == 0 {
		return
	}
	ps := m.parts[idx]
	if ps.seen[task] {
		if m.conserv != nil {
			m.conserv.storeDupDropped.Add(int64(run.Records))
		}
		return
	}
	ps.seen[task] = true
	ps.cached = append(ps.cached, run)
	ps.cachedBytes += run.StoredBytes()
	if m.conserv != nil {
		m.conserv.storeAccepted.Add(int64(run.Records))
	}
	if m.aggregateCache() > m.cfg.CacheThreshold {
		for i := range m.parts {
			if m.parts[i].cachedBytes > 0 {
				m.wake[i].TryPut(struct{}{})
			}
		}
	} else if len(ps.cached) > 2*m.cfg.MaxSpillFiles {
		// Run-count pressure: the continuous merger compacts cached runs
		// during the map phase so the reduce reader's final merge stays
		// cheap (§III-B: files "continuously merged ... so the number of
		// intermediate data files is limited to a configurable count").
		m.wake[idx].TryPut(struct{}{})
	}
}

func (m *interManager) aggregateCache() int64 {
	var total int64
	for _, ps := range m.parts {
		total += ps.cachedBytes
	}
	return total
}

// start spawns the merger processes. The returned done signal fires when
// every merger has quiesced after inputDone.
func (m *interManager) start(env *sim.Env) {
	for i := range m.parts {
		m.spawnMerger(env, i)
	}
	env.Spawn(m.node.Name+"/merge-join", func(p *sim.Proc) {
		m.inputDone.Wait(p)
		// Index loops: partitions adopted from a dead node appended their
		// own wake queue and merger after start.
		for i := 0; i < len(m.wake); i++ {
			m.wake[i].Close()
		}
		for i := 0; i < len(m.mergerSigs); i++ {
			m.mergerSigs[i].Wait(p)
		}
		m.mergeDelay = p.Now() - m.mapDoneAt
		m.done.Fire(m.mergeDelay)
	})
}

func (m *interManager) spawnMerger(env *sim.Env, idx int) {
	proc := env.Spawn(fmt.Sprintf("%s/merger%d", m.node.Name, idx), func(p *sim.Proc) {
		m.mergerLoop(p, idx)
	})
	m.mergerSigs = append(m.mergerSigs, proc.Done())
}

// adoptPart takes over global partition `global` from a dead node: a fresh,
// empty store (the data died with the node — re-executed map tasks rebuild
// it) with its own wake queue and merger. It returns the local index for
// the rewired ownerRef.
func (m *interManager) adoptPart(env *sim.Env, global int) int {
	m.parts = append(m.parts, newPartStore(global))
	m.wake = append(m.wake, sim.NewQueue[struct{}](env, 1))
	idx := len(m.parts) - 1
	m.spawnMerger(env, idx)
	return idx
}

// markDead drops all of the node's intermediate data — "a failing node
// loses its intermediate data" (§III-E) — and quiesces its mergers. Safe in
// scheduler-callback context (never parks).
func (m *interManager) markDead() {
	m.dead = true
	for i, ps := range m.parts {
		if m.conserv != nil {
			var lost int64
			for _, r := range ps.runs() {
				lost += int64(r.Records)
			}
			m.conserv.storeLost.Add(lost)
		}
		ps.cached, ps.cachedBytes, ps.onDisk = nil, 0, nil
		m.wake[i].Close()
	}
}

func (m *interManager) mergerLoop(p *sim.Proc, idx int) {
	for {
		_, ok := m.wake[idx].Get(p)
		m.service(p, idx)
		if !ok {
			// Input is complete: compact the partition to its final state
			// so the reduce reader's last merge has minimal fan-in —
			// this is the work the merge delay measures (§III-B).
			ps := m.parts[idx]
			if len(ps.cached) > 1 {
				m.compactCache(p, ps)
			}
			m.service(p, idx)
			return
		}
	}
}

// service performs the merge/flush obligations of partition idx until it is
// within policy.
func (m *interManager) service(p *sim.Proc, idx int) {
	ps := m.parts[idx]
	for {
		switch {
		case ps.cachedBytes > 0 && m.aggregateCache() > m.cfg.CacheThreshold:
			m.flush(p, ps)
		case len(ps.cached) > 2*m.cfg.MaxSpillFiles:
			m.compactCache(p, ps)
		case len(ps.onDisk) > m.cfg.MaxSpillFiles:
			m.compactDisk(p, ps)
		default:
			return
		}
	}
}

// flush merges the cached runs of ps into a single run and writes it to
// disk, charging merge CPU (weight 1: one merger thread) and disk I/O.
func (m *interManager) flush(p *sim.Proc, ps *partStore) {
	t0 := p.Now()
	defer func() { m.trace.add(m.nodeIdx, "merge", t0, p.Now()) }()
	// Detach the cached runs before any blocking charge: the partition
	// stage keeps adding runs while this merger waits for CPU and disk,
	// and those must not be lost.
	runs := ps.cached
	if len(runs) == 0 {
		return
	}
	ps.cached = nil
	ps.cachedBytes = 0
	m.slots.Acquire(p, 1)
	defer m.slots.Release(1)
	var pairsN int
	var raw int64
	for _, r := range runs {
		pairsN += r.Records
		raw += r.RawBytes
	}
	ops := mergeCost(pairsN, len(runs)) + costSerializePerByte*float64(raw)
	if m.cfg.Compress {
		ops += (costDecompressPerByte + costCompressPerByte) * float64(raw)
	}
	m.node.HostWork(p, ops, 1)
	if m.dead {
		// The node died mid-flush: the detached runs were not in the store
		// when markDead counted its loss, so account for them here.
		if m.conserv != nil {
			m.conserv.storeLost.Add(int64(pairsN))
		}
		return
	}
	merged := kv.MergeRuns(runs, m.cfg.Compress)
	if m.conserv != nil {
		m.conserv.mergeRecordsIn.Add(int64(pairsN))
		m.conserv.mergeRecordsOut.Add(int64(merged.Records))
	}
	m.node.Disk.Write(p, merged.StoredBytes())
	ps.onDisk = append(ps.onDisk, merged)
}

// compactCache merges the cached runs of ps in memory (no disk I/O): the
// cache is within the size threshold but holds too many small runs for the
// reduce reader's final merge to be cheap.
func (m *interManager) compactCache(p *sim.Proc, ps *partStore) {
	t0 := p.Now()
	defer func() { m.trace.add(m.nodeIdx, "merge", t0, p.Now()) }()
	runs := ps.cached
	if len(runs) < 2 {
		return
	}
	ps.cached = nil
	ps.cachedBytes = 0
	m.slots.Acquire(p, 1)
	defer m.slots.Release(1)
	var pairsN int
	var raw int64
	for _, r := range runs {
		pairsN += r.Records
		raw += r.RawBytes
	}
	ops := mergeCost(pairsN, len(runs)) + costSerializePerByte*float64(raw)
	if m.cfg.Compress {
		ops += (costDecompressPerByte + costCompressPerByte) * float64(raw)
	}
	m.node.HostWork(p, ops, 1)
	if m.dead {
		if m.conserv != nil {
			m.conserv.storeLost.Add(int64(pairsN))
		}
		return
	}
	merged := kv.MergeRuns(runs, m.cfg.Compress)
	if m.conserv != nil {
		m.conserv.mergeRecordsIn.Add(int64(pairsN))
		m.conserv.mergeRecordsOut.Add(int64(merged.Records))
	}
	ps.cached = append(ps.cached, merged)
	ps.cachedBytes += merged.StoredBytes()
}

// compactDisk merges all on-disk runs of ps into one.
func (m *interManager) compactDisk(p *sim.Proc, ps *partStore) {
	t0 := p.Now()
	defer func() { m.trace.add(m.nodeIdx, "merge", t0, p.Now()) }()
	// Detach before blocking (see flush); concurrent flushes of this
	// partition cannot run — one merger per partition — but stay safe.
	runs := ps.onDisk
	if len(runs) < 2 {
		return
	}
	ps.onDisk = nil
	m.slots.Acquire(p, 1)
	defer m.slots.Release(1)
	var pairsN int
	var stored, raw int64
	for _, r := range runs {
		pairsN += r.Records
		stored += r.StoredBytes()
		raw += r.RawBytes
	}
	m.node.Disk.Read(p, stored)
	ops := mergeCost(pairsN, len(runs)) + costSerializePerByte*float64(raw)
	if m.cfg.Compress {
		ops += (costDecompressPerByte + costCompressPerByte) * float64(raw)
	}
	m.node.HostWork(p, ops, 1)
	if m.dead {
		if m.conserv != nil {
			m.conserv.storeLost.Add(int64(pairsN))
		}
		return
	}
	merged := kv.MergeRuns(runs, m.cfg.Compress)
	if m.conserv != nil {
		m.conserv.mergeRecordsIn.Add(int64(pairsN))
		m.conserv.mergeRecordsOut.Add(int64(merged.Records))
	}
	m.node.Disk.Write(p, merged.StoredBytes())
	ps.onDisk = append(ps.onDisk, merged)
}

// stats for reporting.
func (m *interManager) storedBytes() int64 {
	var total int64
	for _, ps := range m.parts {
		for _, r := range ps.runs() {
			total += r.StoredBytes()
		}
	}
	return total
}
