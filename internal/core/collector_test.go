package core

import (
	"bytes"
	"fmt"
	"testing"

	"glasswing/internal/kv"
)

func sumU32(key []byte, values [][]byte, emit func(k, v []byte)) {
	var total uint32
	for _, v := range values {
		total += uint32(v[0])
	}
	emit(key, []byte{byte(total)})
}

func TestHashCollectorStoresKeysOnce(t *testing.T) {
	c := &hashCollector{}
	c.reset()
	for i := 0; i < 10; i++ {
		c.emit([]byte("hot"), []byte{1})
	}
	c.emit([]byte("cold"), []byte{1})
	if c.emits() != 11 {
		t.Fatalf("emits = %d", c.emits())
	}
	pairs, _, decode := c.finish()
	if len(pairs) != 11 {
		t.Fatalf("pairs = %d (each value kept)", len(pairs))
	}
	if decode != costDecodeHashPair {
		t.Fatalf("decode cost = %g", decode)
	}
	// Values of the same key are contiguous after the compaction kernel.
	firstCold := -1
	lastHot := -1
	for i, p := range pairs {
		if string(p.Key) == "cold" && firstCold < 0 {
			firstCold = i
		}
		if string(p.Key) == "hot" {
			lastHot = i
		}
	}
	if firstCold >= 0 && firstCold < lastHot {
		t.Fatal("values of the same key are not contiguous")
	}
}

func TestHashCollectorContentionGrowsWithRepetition(t *testing.T) {
	atomicsFor := func(repeats int) float64 {
		c := &hashCollector{}
		c.reset()
		for i := 0; i < repeats; i++ {
			c.emit([]byte("k"), []byte{1})
		}
		return c.kernelStats().AtomicOps
	}
	lo := atomicsFor(4)
	hi := atomicsFor(64)
	// Paper §IV-B1: threads loop multiple times under repetition. Cost per
	// emit must grow, not just total.
	if hi/64 <= lo/4 {
		t.Fatalf("per-emit atomic cost should grow with repetition: %g vs %g", hi/64, lo/4)
	}
}

func TestHashCollectorCombinerAggregates(t *testing.T) {
	c := &hashCollector{combine: sumU32, combineCost: CostModel{OpsPerValue: 5}}
	c.reset()
	c.emit([]byte("a"), []byte{1})
	c.emit([]byte("a"), []byte{2})
	c.emit([]byte("b"), []byte{7})
	pairs, extra, _ := c.finish()
	if len(pairs) != 2 {
		t.Fatalf("combined pairs = %d, want 2", len(pairs))
	}
	got := map[string]byte{}
	for _, p := range pairs {
		got[string(p.Key)] = p.Value[0]
	}
	if got["a"] != 3 || got["b"] != 7 {
		t.Fatalf("combined values wrong: %v", got)
	}
	if extra.Ops <= 0 {
		t.Fatal("combiner kernel work not charged")
	}
}

func TestPoolCollectorFlatCost(t *testing.T) {
	c := &poolCollector{}
	c.reset()
	for i := 0; i < 100; i++ {
		c.emit([]byte("same"), []byte{1})
	}
	st := c.kernelStats()
	if st.AtomicOps != 100 {
		t.Fatalf("pool atomics = %g, want exactly one per emit", st.AtomicOps)
	}
	pairs, extra, decode := c.finish()
	if len(pairs) != 100 || extra.Ops != 0 {
		t.Fatalf("pool finish: %d pairs, extra %g", len(pairs), extra.Ops)
	}
	if decode != costDecodeSimplePair || decode <= costDecodeHashPair {
		t.Fatalf("pool decode cost %g must exceed hash decode %g", decode, costDecodeHashPair)
	}
}

func TestCollectorsCopyEmittedBytes(t *testing.T) {
	// Kernels may reuse buffers between emits; collectors must copy.
	for _, coll := range []collector{&hashCollector{}, &poolCollector{}} {
		coll.reset()
		buf := []byte("x")
		coll.emit([]byte("k"), buf)
		buf[0] = 'y'
		pairs, _, _ := coll.finish()
		if !bytes.Equal(pairs[0].Value, []byte("x")) {
			t.Errorf("%T aliased the emitted value", coll)
		}
	}
}

func TestNewCollectorValidation(t *testing.T) {
	app := &App{Name: "t"}
	if c := newCollector(app, Config{Collector: BufferPool}.withDefaults()); c == nil {
		t.Fatal("nil pool collector")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UseCombiner without Combine must panic")
		}
	}()
	newCollector(app, Config{Collector: HashTable, UseCombiner: true}.withDefaults())
}

func TestThreadsPerKeySpeedsUpReduce(t *testing.T) {
	// A compute-heavy reducer with few keys: spreading each key over
	// multiple threads shortens the reduce kernel (paper §III-C, "parallel
	// reduction ... advantageous to compute-intensive applications").
	heavy := &App{
		Name:             "heavy-reduce",
		Parse:            func(b []byte) []kv.Pair { return []kv.Pair{{Value: b}} },
		ParseCostPerByte: 0.1,
		Map: func(rec kv.Pair, emit func(k, v []byte)) {
			for i := 0; i < 64; i++ {
				emit([]byte{byte('a' + i%4)}, []byte{1})
			}
		},
		MapCost: CostModel{OpsPerRecord: 100, OpsPerEmit: 10},
		Reduce:  sumU32,
		// Very expensive per key.
		ReduceCost: CostModel{OpsPerRecord: 5e8, OpsPerValue: 1000},
	}
	run := func(tpk int) float64 {
		rt, d := newRuntime(1, false, 4<<10)
		d.Preload("in", bytes.Repeat([]byte("z"), 4<<10), 0)
		res, err := Run(rt, heavy, Config{
			Input: []string{"in"}, Collector: BufferPool,
			ThreadsPerKey: tpk, PartitionsPerNode: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ReduceElapsed
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Fatalf("4 threads/key (%g) should beat 1 (%g)", four, one)
	}
}

func TestScratchBuffersForHugeValueLists(t *testing.T) {
	// One key with a value list far beyond MaxValuesPerLaunch: the reduce
	// pays extra launches carrying scratch state, so a tiny launch bound
	// is slower than a large one — and the answer stays identical.
	app := toyWordCount()
	mkData := func() []byte {
		var sb bytes.Buffer
		for i := 0; i < 3000; i++ {
			sb.WriteString("same\n")
		}
		return sb.Bytes()
	}
	run := func(maxVals int) (*Result, float64) {
		rt, d := newRuntime(1, false, 2<<10)
		preloadText(d, "in", mkData())
		res, err := Run(rt, app, Config{
			Input: []string{"in"}, Collector: BufferPool,
			MaxValuesPerLaunch: maxVals,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The extra launches land in the kernel stage's busy time; the
		// pipeline may hide them from the phase's elapsed time (that is
		// the point of the pipeline), so assert on busy time.
		return res, res.MaxReduceStage().Kernel
	}
	resSmall, small := run(16)
	resBig, big := run(1 << 20)
	if small <= big {
		t.Fatalf("tiny launch bound (kernel busy %g) should cost more than one launch (%g)", small, big)
	}
	countOf := func(r *Result) uint64 {
		var total uint64
		for _, pr := range r.Output() {
			var v int
			if _, err := fmt.Sscanf(string(pr.Value), "%d", &v); err != nil {
				t.Fatalf("bad count %q: %v", pr.Value, err)
			}
			total += uint64(v)
		}
		return total
	}
	if countOf(resSmall) != countOf(resBig) {
		t.Fatal("scratch-buffer path changed the answer")
	}
}
