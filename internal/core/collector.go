package core

import (
	"math"

	"glasswing/internal/cl"
	"glasswing/internal/kv"
)

// collector is the device-side mechanism that harvests map kernel output
// (§III-F). Both implementations process real pairs; alongside, they count
// the atomic work and memory traffic the hardware would spend, which the
// kernel stage folds into its launch stats.
type collector interface {
	reset()
	emit(key, value []byte)
	// emits returns the number of pairs collected since reset.
	emits() int
	// kernelStats is the atomic/traffic cost accumulated by emits so far.
	kernelStats() cl.Stats
	// finish ends the chunk: it returns the intermediate pairs, any extra
	// kernel work (combiner or compaction kernel), and the host-side cost
	// of decoding one pair in the partitioning stage.
	finish() (pairs []kv.Pair, extra cl.Stats, decodePerPair float64)
}

// newCollector builds the collector selected by cfg for app.
func newCollector(app *App, cfg Config) collector {
	if cfg.Collector == HashTable {
		var comb ReduceFunc
		if cfg.UseCombiner {
			comb = app.Combine
			if comb == nil {
				// Combining with no combiner function degenerates to a
				// plain hash table; the paper's API ties combiners to the
				// hash-table mechanism, so requesting one without
				// providing one is an application bug.
				panic("core: UseCombiner set but App.Combine is nil")
			}
		}
		return &hashCollector{combine: comb, combineCost: app.CombineCost}
	}
	return &poolCollector{}
}

// hashCollector stores each key once with a chained value list. Inserting
// under high key repetition contends: threads loop on the bucket before
// they can append (§IV-B1), modeled as log-growing atomic probes.
type hashCollector struct {
	order   []string
	entries map[string][][]byte
	nemits  int
	stats   cl.Stats

	combine     ReduceFunc
	combineCost CostModel
}

func (h *hashCollector) reset() {
	h.order = h.order[:0]
	// Clear the table in place rather than reallocating: the map's buckets
	// (sized by the largest chunk seen) are reused by every later chunk —
	// the same reset trick the native runtime's pooled chunk state uses.
	if h.entries == nil {
		h.entries = make(map[string][][]byte, 64)
	} else {
		clear(h.entries)
	}
	h.nemits = 0
	h.stats = cl.Stats{}
}

func (h *hashCollector) emit(key, value []byte) {
	k := string(key)
	vals, ok := h.entries[k]
	if !ok {
		h.order = append(h.order, k)
	}
	v := append([]byte(nil), value...)
	h.entries[k] = append(vals, v)
	h.nemits++
	// One successful atomic claim, plus retries that grow with how
	// contended this key already is within the chunk.
	h.stats.AtomicOps += 1 + math.Log2(1+float64(len(vals)))
	h.stats.Bytes += float64(len(key) + len(value))
}

func (h *hashCollector) emits() int { return h.nemits }

func (h *hashCollector) kernelStats() cl.Stats { return h.stats }

func (h *hashCollector) finish() ([]kv.Pair, cl.Stats, float64) {
	var extra cl.Stats
	var pairs []kv.Pair
	if h.combine != nil {
		// The combiner runs as a device kernel over the hash table,
		// aggregating each key's values in place.
		for _, k := range h.order {
			vals := h.entries[k]
			extra.Ops += h.combineCost.OpsPerRecord +
				h.combineCost.OpsPerValue*float64(len(vals))
			for _, v := range vals {
				extra.Bytes += float64(len(v))
			}
			h.combine([]byte(k), vals, func(key, value []byte) {
				extra.Ops += h.combineCost.OpsPerEmit
				pairs = append(pairs, kv.Pair{
					Key:   append([]byte(nil), key...),
					Value: append([]byte(nil), value...),
				})
			})
		}
	} else {
		// Without a combiner Glasswing still runs a compacting kernel
		// after map() to place values of the same key in contiguous
		// memory, relieving the pipeline from decoding the whole hash
		// table memory space (§IV-B1).
		for _, k := range h.order {
			key := []byte(k)
			for _, v := range h.entries[k] {
				pairs = append(pairs, kv.Pair{Key: key, Value: v})
				extra.Ops += 12
				extra.Bytes += float64(len(key) + len(v))
			}
		}
	}
	return pairs, extra, costDecodeHashPair
}

// poolCollector is the simple shared buffer pool: each thread allocates
// space with a single atomic operation (§IV-B1). Kernel-side it is the
// cheapest mechanism; the price is paid in the partitioning stage, which
// must decode every occurrence individually.
type poolCollector struct {
	pairs []kv.Pair
	stats cl.Stats
}

func (b *poolCollector) reset() {
	b.pairs = b.pairs[:0]
	b.stats = cl.Stats{}
}

func (b *poolCollector) emit(key, value []byte) {
	b.pairs = append(b.pairs, kv.Pair{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	b.stats.AtomicOps++
	b.stats.Bytes += float64(len(key) + len(value))
}

func (b *poolCollector) emits() int { return len(b.pairs) }

func (b *poolCollector) kernelStats() cl.Stats { return b.stats }

func (b *poolCollector) finish() ([]kv.Pair, cl.Stats, float64) {
	out := make([]kv.Pair, len(b.pairs))
	copy(out, b.pairs)
	return out, cl.Stats{}, costDecodeSimplePair
}
