package core

import "math"

// Host-side cost constants, in device ops (see package hw). These model the
// C++ host code of Glasswing: decoding kernel output, partitioning, sorting,
// serialization and merging. They are deliberately in one place so the
// calibration against the paper's single-node numbers is auditable.
const (
	// costDecodeHashPair is the per-pair cost of decoding hash-table
	// kernel output: values of one key lie contiguously, so decoding is a
	// cheap batch walk (§IV-B1).
	costDecodeHashPair = 40.0
	// costDecodeSimplePair is the per-occurrence cost with the simple
	// buffer-pool collector: "the partitioning stage has to decode each
	// key/value occurrence individually" (§IV-B1), which is what makes
	// partitioning the dominant stage in Table II config (iii).
	costDecodeSimplePair = 220.0
	// costDecodePerByte is the per-byte copy cost of either decode.
	costDecodePerByte = 1.0
	// costPartitionPerPair covers hashing a key and appending to its
	// partition bucket.
	costPartitionPerPair = 18.0
	// costSortPerCmp scales the n*log2(n) comparison count of sorting a
	// partition's pairs.
	costSortPerCmp = 28.0
	// costSerializePerByte frames pairs for disk/network.
	costSerializePerByte = 1.2
	// costCompressPerByte / costDecompressPerByte model DEFLATE
	// (BestSpeed) over intermediate runs.
	costCompressPerByte   = 9.0
	costDecompressPerByte = 4.5
	// costMergePerPair is the heap step of the multi-way merger.
	costMergePerPair = 45.0
	// costGroupPerValue folds sorted pairs into reduce groups.
	costGroupPerValue = 8.0
	// jobStartup is Glasswing's job-launch overhead in seconds: it is a
	// single-tenant library, so this is small (no JVM, no daemons).
	jobStartup = 0.08
	// scratchStateBytes is the per-key state carried across reduce kernel
	// launches for oversized value lists (§III-C).
	scratchStateBytes = 64
)

// sortCost returns the host ops to sort n pairs.
func sortCost(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) * costSortPerCmp
}

// mergeCost returns the host ops to k-way merge n pairs.
func mergeCost(n, k int) float64 {
	if n == 0 || k < 2 {
		return float64(n) * 5 // straight copy
	}
	return float64(n) * math.Log2(float64(k)) * costMergePerPair
}
