package conformance

import (
	"errors"
	"fmt"

	"glasswing/internal/obs"
)

// Ledger is one run's conservation account, read back from the conserv_*
// counters both instrumented runtimes publish into their obs registry
// (internal/core's jobCounters and internal/native's recorder use the same
// metric vocabulary, so one reader serves both).
type Ledger struct {
	MapRecordsIn int64 // parsed records consumed by map kernels
	MapPairsOut  int64 // pairs leaving map kernels (post-combine if any)

	PartitionRecords     int64 // pairs serialized into partition runs
	PartitionRuns        int64 // runs produced
	PartitionRawBytes    int64 // run payload volume before encoding
	PartitionStoredBytes int64 // encoded run volume (post-compression)

	StoreAccepted    int64 // records accepted by the intermediate store
	StoreDupDropped  int64 // duplicate task output rejected (sim re-execution)
	StoreDeadDropped int64 // output addressed to a dead store (sim node death)
	StoreLost        int64 // records lost with a dying store (sim node death)
	StoreSettled     int64 // lost records a final accepted reduce had already consumed (dist)

	SpillRecords     int64 // records written to spill files (native)
	SpillRawBytes    int64 // spill payload volume before framing (native)
	SpillStoredBytes int64 // on-disk spill volume after compression (native)

	MergeIn  int64 // records entering compaction merges
	MergeOut int64 // records leaving compaction merges

	ReduceRecordsIn int64 // records read by winning reduce attempts
	ReduceGroupsIn  int64 // key groups consumed by reduce input stages
	OutputPairs     int64 // final pairs committed to output

	// Wire shuffle accounting (dist runtime only): every record and encoded
	// byte enqueued onto a network connection must either arrive at its
	// destination or be explicitly accounted lost with a dying worker —
	// sent == recv + lost, exactly, even across a kill.
	NetRecordsSent int64 // records enqueued onto shuffle connections
	NetBytesSent   int64 // encoded run bytes enqueued onto shuffle connections
	NetRecordsRecv int64 // records decoded at live destinations
	NetBytesRecv   int64 // encoded run bytes decoded at live destinations
	NetRecordsLost int64 // records dropped with dead connections/workers
	NetBytesLost   int64 // encoded run bytes dropped with dead connections/workers

	// Block-store read accounting (dist runtime with Options.Blockstore):
	// every input byte a map task consumes is read either off the mapper's
	// own replica or over the peer mesh / coordinator fallback — local +
	// remote must equal the job's input volume exactly.
	ReadLocalBytes  int64 // block bytes served from the mapper's own store
	ReadRemoteBytes int64 // block bytes fetched from peers or the coordinator
}

// ReadLedger extracts the conservation counters from a registry; names that
// were never written read as zero.
func ReadLedger(reg *obs.Registry) Ledger {
	return LedgerFromCounters(func(name string) int64 { return reg.Counter(name).Value() })
}

// LedgerFromCounters rebuilds a Ledger from a counter lookup — the remote
// twin of ReadLedger, used when a run's registry arrives serialized over an
// API (the job service's GET /jobs/{id}/metrics) instead of in-process.
// Names the lookup doesn't know must read as zero.
func LedgerFromCounters(c func(name string) int64) Ledger {
	return Ledger{
		MapRecordsIn:         c("conserv_map_records_in_total"),
		MapPairsOut:          c("conserv_map_pairs_out_total"),
		PartitionRecords:     c("conserv_partition_records_total"),
		PartitionRuns:        c("conserv_partition_runs_total"),
		PartitionRawBytes:    c("conserv_partition_raw_bytes_total"),
		PartitionStoredBytes: c("conserv_partition_stored_bytes_total"),
		StoreAccepted:        c("conserv_store_accepted_records_total"),
		StoreDupDropped:      c("conserv_store_dup_dropped_records_total"),
		StoreDeadDropped:     c("conserv_store_dead_dropped_records_total"),
		StoreLost:            c("conserv_store_lost_records_total"),
		StoreSettled:         c("conserv_store_settled_records_total"),
		SpillRecords:         c("conserv_spill_records_total"),
		SpillRawBytes:        c("conserv_spill_raw_bytes_total"),
		SpillStoredBytes:     c("conserv_spill_stored_bytes_total"),
		MergeIn:              c("conserv_merge_records_in_total"),
		MergeOut:             c("conserv_merge_records_out_total"),
		ReduceRecordsIn:      c("conserv_reduce_records_in_total"),
		ReduceGroupsIn:       c("conserv_reduce_groups_in_total"),
		OutputPairs:          c("conserv_output_pairs_total"),
		NetRecordsSent:       c("conserv_net_records_sent_total"),
		NetBytesSent:         c("conserv_net_bytes_sent_total"),
		NetRecordsRecv:       c("conserv_net_records_recv_total"),
		NetBytesRecv:         c("conserv_net_bytes_recv_total"),
		NetRecordsLost:       c("conserv_net_records_lost_total"),
		NetBytesLost:         c("conserv_net_bytes_lost_total"),
		ReadLocalBytes:       c("dist_read_local_bytes_total"),
		ReadRemoteBytes:      c("dist_read_remote_bytes_total"),
	}
}

// CheckOpts qualifies which ledger invariants apply to a run.
type CheckOpts struct {
	// Sim distinguishes the simulated core (which has fault tolerance and
	// always groups reduce input) from the native pipeline.
	Sim bool
	// Faulty marks runs with injected task faults or node deaths: map-side
	// production counters legitimately over-count there (re-executed work
	// is counted again; the store dedups it), so only store-onward
	// invariants are exact.
	Faulty bool
	// Elastic marks runs whose coordinator crashed and resumed mid-job:
	// attempts in flight at the crash may be legitimately re-executed after
	// resume (map-side over-count, deduplicated at the store), but no
	// worker died — unlike Faulty, the wire must stay loss-free.
	Elastic bool
	// Combiner marks runs where map output is combined: pair counts and
	// bytes shrink below the reference's no-combiner volumes.
	Combiner bool
	// Compress marks runs with DEFLATE-compressed intermediate runs.
	Compress bool
	// HasReduce marks apps with a reduce function; the native runtime only
	// counts reduce groups on that path (reduce-less output is drained
	// without grouping).
	HasReduce bool
	// WantSpill asserts the run was forced to spill (native cache
	// threshold axis): zero spill activity would mean the axis tested
	// nothing.
	WantSpill bool
	// Dist marks runs of the distributed runtime, enabling the wire
	// conservation invariants (net sent == recv + lost) and asserting that
	// a multi-worker run actually moved shuffle data over connections.
	Dist bool
	// Blockstore ("local" or "remote") marks dist runs whose input was
	// ingested into worker block stores: the read ledger must conserve
	// (local + remote == InputBytes), locality-preferred scheduling must
	// serve at least half the input locally, and forced-remote must serve
	// none of it locally.
	Blockstore string
	// InputBytes is the job's total input volume, the right-hand side of
	// the block-read conservation equation (Blockstore runs only).
	InputBytes int64
}

// Check verifies the conservation invariants of one run against the
// reference expectation, returning every violated invariant joined into one
// error (nil when the ledger balances).
func (l Ledger) Check(exp Expected, o CheckOpts) error {
	var errs []error
	eq := func(what string, got, want int64) {
		if got != want {
			errs = append(errs, fmt.Errorf("%s: got %d, want %d", what, got, want))
		}
	}

	if !o.Faulty && !o.Elastic {
		// Fault-free, the map side is exact: every input record is mapped
		// exactly once and every emitted pair is serialized and accepted
		// exactly once.
		eq("map records in != input records", l.MapRecordsIn, exp.Records)
		eq("partition records != map pairs out", l.PartitionRecords, l.MapPairsOut)
		eq("store accepted != partition records", l.StoreAccepted, l.PartitionRecords)
		eq("dup-dropped records", l.StoreDupDropped, 0)
		eq("dead-dropped records", l.StoreDeadDropped, 0)
		eq("lost records", l.StoreLost, 0)
		eq("settled records", l.StoreSettled, 0)
		if !o.Combiner {
			eq("map pairs out != reference intermediate pairs", l.MapPairsOut, exp.InterPairs)
			eq("partition raw bytes != reference intermediate bytes", l.PartitionRawBytes, exp.InterBytes)
		}
	}

	// Store-onward invariants hold even under faults: re-executed map
	// output is deduplicated at the store, losing attempts never commit,
	// and a winning reduce attempt reads exactly what its partition's
	// store holds. Records a dying store takes down AFTER a final reduce
	// consumed them are booked both lost and settled, so they cancel out of
	// the recoverable-loss balance.
	eq("reduce records in != store accepted - lost + settled",
		l.ReduceRecordsIn, l.StoreAccepted-l.StoreLost+l.StoreSettled)
	eq("merge records out != in", l.MergeOut, l.MergeIn)
	if o.Sim || o.HasReduce {
		eq("reduce groups != reference distinct keys", l.ReduceGroupsIn, exp.DistinctKeys)
	}
	eq("output pairs != reference output pairs", l.OutputPairs, exp.OutputPairs)

	// Byte accounting: uncompressed run encoding adds only uvarint framing
	// (two length prefixes of at most 5 bytes per pair, plus at most 10
	// bytes of record count per run); compression must at least produce
	// non-empty blobs.
	if !o.Compress {
		lo, hi := l.PartitionRawBytes, l.PartitionRawBytes+10*l.PartitionRecords+10*l.PartitionRuns
		if l.PartitionStoredBytes < lo || l.PartitionStoredBytes > hi {
			errs = append(errs, fmt.Errorf("stored bytes %d outside framing bounds [%d,%d]",
				l.PartitionStoredBytes, lo, hi))
		}
	} else if l.PartitionRecords > 0 && l.PartitionStoredBytes <= 0 {
		errs = append(errs, fmt.Errorf("compressed run bytes not accounted: %d", l.PartitionStoredBytes))
	}

	if o.Dist {
		// Wire conservation: the shuffle plane may not leak. Every record
		// and byte enqueued is either decoded at a live destination or
		// flushed as lost with a dead connection — balanced even across a
		// worker kill.
		eq("net records sent != recv + lost", l.NetRecordsSent, l.NetRecordsRecv+l.NetRecordsLost)
		eq("net bytes sent != recv + lost", l.NetBytesSent, l.NetBytesRecv+l.NetBytesLost)
		if !o.Faulty {
			eq("net lost records on a fault-free run", l.NetRecordsLost, 0)
			eq("net lost bytes on a fault-free run", l.NetBytesLost, 0)
		}
	} else {
		// Non-dist runtimes never touch the wire counters.
		eq("net records sent on a non-dist run", l.NetRecordsSent, 0)
	}

	if o.Blockstore != "" && !o.Faulty {
		eq("block reads local + remote != input bytes",
			l.ReadLocalBytes+l.ReadRemoteBytes, o.InputBytes)
		switch o.Blockstore {
		case "local":
			if 2*l.ReadLocalBytes < o.InputBytes {
				errs = append(errs, fmt.Errorf("locality-preferred run read only %d of %d input bytes locally",
					l.ReadLocalBytes, o.InputBytes))
			}
		case "remote":
			eq("local reads on a forced-remote run", l.ReadLocalBytes, 0)
		}
	}

	if o.WantSpill && l.SpillRecords == 0 {
		errs = append(errs, errors.New("spill axis ran without spilling"))
	}
	if l.SpillRecords > 0 {
		if !o.Compress {
			lo, hi := l.SpillRawBytes, l.SpillRawBytes+10*l.SpillRecords
			if l.SpillStoredBytes < lo || l.SpillStoredBytes > hi {
				errs = append(errs, fmt.Errorf("spill bytes %d outside framing bounds [%d,%d]",
					l.SpillStoredBytes, lo, hi))
			}
		} else if l.SpillStoredBytes <= 0 {
			errs = append(errs, fmt.Errorf("compressed spill bytes not accounted: %d", l.SpillStoredBytes))
		}
	}
	return errors.Join(errs...)
}
