package conformance

import (
	"errors"
	"fmt"
	"os"

	"glasswing"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/dist"
	"glasswing/internal/gpmr"
	"glasswing/internal/hadoop"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/native"
	"glasswing/internal/obs"
	"glasswing/internal/sim"
)

// RuntimeNames lists the engines the matrix covers. The simulated core, the
// native pipeline, the distributed TCP runtime and the job-service HTTP
// path are fully instrumented (digest + verifier + ledger); the Hadoop and
// GPMR baseline models share the same kernels and are held to digest +
// verifier equality.
var RuntimeNames = []string{"sim", "native", "hadoop", "gpmr", "dist", "service"}

// Cell is one executed point of the runtime x app x axis matrix.
type Cell struct {
	Runtime string
	App     string
	Axis    string
	Variant string
	Digest  string
	Err     error
}

// Key formats the cell's coordinates.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s", c.Runtime, c.App, c.Axis, c.Variant)
}

// Options filters the matrix; empty slices select everything.
type Options struct {
	Runtimes []string
	Apps     []string
	Axes     []string
}

func selected(want []string, name string) bool {
	if len(want) == 0 {
		return true
	}
	for _, w := range want {
		if w == name {
			return true
		}
	}
	return false
}

// RunMatrix executes every selected cell, invoking report (when non-nil)
// after each one, and returns all cells. Every cell runs on a fresh cluster
// and a fresh metrics registry, so cells are independent.
func RunMatrix(opt Options, report func(Cell)) []Cell {
	var cells []Cell
	add := func(c Cell) {
		cells = append(cells, c)
		if report != nil {
			report(c)
		}
	}
	for _, j := range Jobs() {
		if !selected(opt.Apps, j.Name) {
			continue
		}
		exp := Reference(j)
		if selected(opt.Runtimes, "sim") {
			runSimApp(j, exp, opt, add)
		}
		if selected(opt.Runtimes, "native") {
			runNativeApp(j, exp, opt, add)
		}
		if selected(opt.Runtimes, "hadoop") {
			runHadoopApp(j, exp, opt, add)
		}
		if selected(opt.Runtimes, "gpmr") {
			runGpmrApp(j, exp, opt, add)
		}
		if selected(opt.Runtimes, "dist") {
			runDistApp(j, exp, opt, add)
		}
		if selected(opt.Runtimes, "service") {
			runServiceApp(j, exp, opt, add)
		}
	}
	return cells
}

// baseBlock is the job's baseline DFS block / native chunk size: about six
// splits, record-aligned for binary inputs.
func (j Job) baseBlock() int64 {
	b := int64(len(j.Data)) / 6
	if j.RecordSize > 0 {
		b -= b % j.RecordSize
		if b < j.RecordSize {
			b = j.RecordSize
		}
	}
	if b < 2<<10 {
		b = 2 << 10
	}
	return b
}

// blockFor scales the baseline block by the variant's chunk multiplier.
func (j Job) blockFor(mul float64) int64 {
	if mul == 0 {
		mul = 1
	}
	b := int64(float64(j.baseBlock()) * mul)
	if j.RecordSize > 0 {
		b -= b % j.RecordSize
		if b < j.RecordSize {
			b = j.RecordSize
		}
	}
	if b < 1<<10 {
		b = 1 << 10
	}
	return b
}

// splitBlocks cuts the job's input the way its runtime's DFS would.
func splitBlocks(j Job, block int64) [][]byte {
	if j.RecordSize > 0 {
		return dfs.SplitFixed(j.Data, block, j.RecordSize)
	}
	return dfs.SplitLines(j.Data, block)
}

// verdict folds a run's digest, app verifier and ledger check into one cell
// error.
func verdict(j Job, exp Expected, dig string, out []kv.Pair, ledgerErr error) error {
	var errs []error
	if dig != exp.Digest {
		errs = append(errs, fmt.Errorf("digest %.12s != reference %.12s", dig, exp.Digest))
	}
	if err := j.Verify(out); err != nil {
		errs = append(errs, fmt.Errorf("verifier: %w", err))
	}
	if ledgerErr != nil {
		errs = append(errs, fmt.Errorf("ledger: %w", ledgerErr))
	}
	return errors.Join(errs...)
}

// ---- Simulated core (internal/core via the glasswing facade). ----

type simVariant struct {
	axis, name string
	nodes      int     // 0 = 3
	gpu        bool    // run on the accelerator device
	blockMul   float64 // 0 = 1
	faulty     bool    // injected faults: map-side ledger equalities waived
	nodeDeath  bool    // kill a node mid-map (needs the baseline's MapElapsed)
	mutate     func(*core.Config)
}

// simVariants is the metamorphic axis table for the simulated runtime: every
// variant must reproduce the reference digest exactly.
func simVariants(j Job) []simVariant {
	vs := []simVariant{
		{axis: "baseline", name: "n3"},
		{axis: "chunk", name: "half-block", blockMul: 0.5},
		{axis: "chunk", name: "double-block", blockMul: 2},
		{axis: "workers", name: "n2", nodes: 2},
		{axis: "workers", name: "n5", nodes: 5},
		{axis: "workers", name: "gpu", gpu: true},
		{axis: "partitions", name: "p1", mutate: func(c *core.Config) { c.PartitionsPerNode = 1 }},
		{axis: "partitions", name: "p4", mutate: func(c *core.Config) { c.PartitionsPerNode = 4 }},
		{axis: "compress", name: "deflate", mutate: func(c *core.Config) { c.Compress = true }},
		{axis: "overlap", name: "sequential", mutate: func(c *core.Config) { c.NoOverlap = true }},
		{axis: "overlap", name: "single-buffer", mutate: func(c *core.Config) { c.Buffering = 1 }},
		{axis: "overlap", name: "triple-buffer", mutate: func(c *core.Config) { c.Buffering = 3 }},
	}
	if j.Collector == core.HashTable {
		vs = append(vs, simVariant{axis: "collector", name: "buffer-pool",
			mutate: func(c *core.Config) { c.Collector = core.BufferPool }})
	} else {
		vs = append(vs, simVariant{axis: "collector", name: "hash-table",
			mutate: func(c *core.Config) { c.Collector = core.HashTable }})
	}
	if j.CombinerOK {
		vs = append(vs, simVariant{axis: "collector", name: "combiner",
			mutate: func(c *core.Config) { c.Collector = core.HashTable; c.UseCombiner = true }})
	}
	vs = append(vs,
		simVariant{axis: "faults", name: "seed3", faulty: true, mutate: func(c *core.Config) {
			c.FaultInjector, c.ReduceFaultInjector = core.SeededFaults(3, 0.05, 0.10)
		}},
		simVariant{axis: "faults", name: "seed9", faulty: true, mutate: func(c *core.Config) {
			c.FaultInjector, c.ReduceFaultInjector = core.SeededFaults(9, 0.12, 0.06)
		}},
		simVariant{axis: "faults", name: "node-death", faulty: true, nodeDeath: true},
	)
	return vs
}

func runSimApp(j Job, exp Expected, opt Options, add func(Cell)) {
	var base *glasswing.Result
	ensureBase := func() error {
		if base != nil {
			return nil
		}
		res, _, err := runSim(j, simVariant{})
		if err != nil {
			return err
		}
		base = res
		return nil
	}
	for _, v := range simVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "sim", App: j.Name, Axis: v.axis, Variant: v.name}
		if v.nodeDeath {
			// The death time is placed mid-map, as a fraction of the
			// baseline's map phase.
			if err := ensureBase(); err != nil {
				cell.Err = fmt.Errorf("baseline for node-death: %w", err)
				add(cell)
				continue
			}
		}
		res, led, err := runSimWithBase(j, v, base)
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		if v.axis == "baseline" {
			base = res
		}
		out := res.Output()
		cell.Digest = Digest(out)
		cfg := simConfig(j, v)
		cell.Err = verdict(j, exp, cell.Digest, out, led.Check(exp, CheckOpts{
			Sim:       true,
			Faulty:    v.faulty,
			Combiner:  cfg.UseCombiner,
			Compress:  cfg.Compress,
			HasReduce: j.New().Reduce != nil,
		}))
		add(cell)
	}
}

// simConfig builds the variant's job config (shared by the run itself and
// the ledger-check flag derivation).
func simConfig(j Job, v simVariant) core.Config {
	cfg := core.Config{
		Input:             []string{"in"},
		Collector:         j.Collector,
		Partitioner:       j.Partitioner,
		OutputReplication: j.OutputReplication,
		PartitionsPerNode: 2,
		PartitionThreads:  2,
		MaxTaskAttempts:   8,
	}
	if v.gpu {
		cfg.Device = 1
	}
	if v.mutate != nil {
		v.mutate(&cfg)
	}
	return cfg
}

func runSim(j Job, v simVariant) (*glasswing.Result, Ledger, error) {
	return runSimWithBase(j, v, nil)
}

func runSimWithBase(j Job, v simVariant, base *glasswing.Result) (*glasswing.Result, Ledger, error) {
	nodes := v.nodes
	if nodes == 0 {
		nodes = 3
	}
	cluster := glasswing.NewCluster(glasswing.ClusterConfig{
		Nodes:     nodes,
		GPU:       v.gpu,
		BlockSize: j.blockFor(v.blockMul),
	})
	if j.RecordSize > 0 {
		cluster.LoadRecords("in", j.Data, j.RecordSize)
	} else {
		cluster.LoadText("in", j.Data)
	}
	reg := obs.NewRegistry()
	cfg := simConfig(j, v)
	cfg.Metrics = reg
	if v.nodeDeath && base != nil {
		cfg.NodeFailures = []core.NodeFailure{{Node: 1, At: 0.4 * base.MapElapsed}}
	}
	app := j.New()
	var res *glasswing.Result
	var err error
	if j.Broadcast > 0 {
		res, err = cluster.RunWithBroadcast(app, cfg, j.Broadcast)
	} else {
		res, err = cluster.Run(app, cfg)
	}
	if err != nil {
		return nil, Ledger{}, err
	}
	return res, ReadLedger(reg), nil
}

// ---- Native pipeline (internal/native). ----

type nativeVariant struct {
	axis, name string
	blockMul   float64
	wantSpill  bool
	mutate     func(*native.Config)
}

// nativeVariants is the native runtime's metamorphic axis table. The spill
// variants shrink the cache threshold far below the intermediate volume so
// the spill/read-back path is genuinely exercised.
func nativeVariants(j Job) []nativeVariant {
	vs := []nativeVariant{
		{axis: "baseline", name: "kw4-pt2"},
		{axis: "chunk", name: "half-block", blockMul: 0.5},
		{axis: "chunk", name: "double-block", blockMul: 2},
		{axis: "workers", name: "kw1-pt1", mutate: func(c *native.Config) { c.KernelWorkers, c.PartitionThreads = 1, 1 }},
		{axis: "workers", name: "kw8-pt4", mutate: func(c *native.Config) { c.KernelWorkers, c.PartitionThreads = 8, 4 }},
		{axis: "partitions", name: "p2", mutate: func(c *native.Config) { c.Partitions = 2 }},
		{axis: "partitions", name: "p13", mutate: func(c *native.Config) { c.Partitions = 13 }},
		{axis: "compress", name: "deflate", mutate: func(c *native.Config) { c.Compress = true }},
		{axis: "compress", name: "spill", wantSpill: true, mutate: func(c *native.Config) { c.CacheThreshold = 8 << 10 }},
		{axis: "compress", name: "deflate-spill", wantSpill: true, mutate: func(c *native.Config) {
			c.Compress = true
			c.CacheThreshold = 4 << 10
		}},
		{axis: "overlap", name: "single-buffer", mutate: func(c *native.Config) { c.Buffering = 1 }},
		{axis: "overlap", name: "triple-buffer", mutate: func(c *native.Config) { c.Buffering = 3 }},
	}
	if j.Collector == core.HashTable {
		vs = append(vs, nativeVariant{axis: "collector", name: "buffer-pool",
			mutate: func(c *native.Config) { c.Collector = core.BufferPool }})
	} else {
		vs = append(vs, nativeVariant{axis: "collector", name: "hash-table",
			mutate: func(c *native.Config) { c.Collector = core.HashTable }})
	}
	if j.CombinerOK {
		vs = append(vs, nativeVariant{axis: "collector", name: "combiner",
			mutate: func(c *native.Config) { c.Collector = core.HashTable; c.UseCombiner = true }})
	}
	return vs
}

func runNativeApp(j Job, exp Expected, opt Options, add func(Cell)) {
	for _, v := range nativeVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "native", App: j.Name, Axis: v.axis, Variant: v.name}
		cfg := native.Config{
			KernelWorkers:    4,
			PartitionThreads: 2,
			Partitions:       4,
			Buffering:        2,
			Collector:        j.Collector,
			Partitioner:      j.Partitioner,
			Telemetry:        obs.NewTelemetry(),
		}
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		app := j.New()
		res, err := native.Run(app, splitBlocks(j, j.blockFor(v.blockMul)), cfg)
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		out := res.Output()
		cell.Digest = Digest(out)
		led := ReadLedger(cfg.Telemetry.Metrics)
		cell.Err = verdict(j, exp, cell.Digest, out, led.Check(exp, CheckOpts{
			Combiner:  cfg.UseCombiner,
			Compress:  cfg.Compress,
			HasReduce: app.Reduce != nil,
			WantSpill: v.wantSpill,
		}))
		add(cell)
	}
}

// ---- Baseline models (internal/hadoop, internal/gpmr). ----
//
// The models share the App kernels, so their outputs must be bit-identical
// too; they are not conserv_*-instrumented, so cells check digest +
// verifier only.

type modelVariant struct {
	axis, name string
	nodes      int // 0 = 3
	blockMul   float64
	reducers   int  // hadoop only; 0 = 4
	combiner   bool // hadoop WC only
	partial    bool // gpmr WC only: on-device partial reduction
}

func hadoopVariants(j Job) []modelVariant {
	vs := []modelVariant{
		{axis: "baseline", name: "n3"},
		{axis: "chunk", name: "double-block", blockMul: 2},
		{axis: "workers", name: "n2", nodes: 2},
		{axis: "workers", name: "n5", nodes: 5},
		{axis: "partitions", name: "r2", reducers: 2},
		{axis: "partitions", name: "r7", reducers: 7},
	}
	if j.CombinerOK {
		vs = append(vs, modelVariant{axis: "collector", name: "combiner", combiner: true})
	}
	return vs
}

func runHadoopApp(j Job, exp Expected, opt Options, add func(Cell)) {
	for _, v := range hadoopVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "hadoop", App: j.Name, Axis: v.axis, Variant: v.name}
		nodes := v.nodes
		if nodes == 0 {
			nodes = 3
		}
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, nodes, hw.Type1(false))
		fs := dfs.New(cluster, j.blockFor(v.blockMul), 3)
		fs.PreloadBlocks("in", splitBlocks(j, j.blockFor(v.blockMul)), 0)
		rt := &hadoop.Runtime{Cluster: cluster, FS: fs}
		if j.Broadcast > 0 {
			bytes := j.Broadcast
			rt.Prelude = func(p *sim.Proc, c *hw.Cluster) { c.Broadcast(p, c.Nodes[0], bytes) }
		}
		reducers := v.reducers
		if reducers == 0 {
			reducers = 4
		}
		res, err := hadoop.Run(rt, j.New(), hadoop.Config{
			Input:             []string{"in"},
			Reducers:          reducers,
			UseCombiner:       v.combiner,
			Partitioner:       j.Partitioner,
			OutputReplication: j.OutputReplication,
		})
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		out := res.Output()
		cell.Digest = Digest(out)
		cell.Err = verdict(j, exp, cell.Digest, out, nil)
		add(cell)
	}
}

// ---- Distributed runtime (internal/dist, loopback TCP). ----
//
// Every cell runs a real coordinator + N worker goroutines over 127.0.0.1
// sockets: the shuffle crosses the kernel's TCP stack, and the ledger check
// additionally enforces the wire conservation invariants (Dist: true).

type distVariant struct {
	axis, name   string
	workers      int     // 0 = 3
	partitions   int     // 0 = 4
	blockMul     float64 // 0 = 1
	compress     bool
	altCollector bool // flip the job's tuned collector
	combiner     bool // HashTable + combiner (CombinerOK apps only)
	mapFault     bool // deterministic injected attempt failures
	kill         bool // kill a worker mid-map
	// elastic is a membership schedule in dist.ParseElastic syntax
	// (join@2, drain:0@2, restart@2, kill:1@r1, ...); restart events get a
	// throwaway checkpoint journal wired up automatically.
	elastic string
	// blockstore ingests the input into worker block stores ("local" or
	// "remote") with replication 2 over 3 workers, so placement genuinely
	// decides which reads are local; spill additionally caps resident
	// shuffle memory far below the intermediate volume, forcing the
	// out-of-core reduce path.
	blockstore string
	spill      bool
}

func distVariants(j Job) []distVariant {
	vs := []distVariant{
		{axis: "baseline", name: "w3"},
		{axis: "workers", name: "w2", workers: 2},
		{axis: "workers", name: "w5", workers: 5},
		{axis: "partitions", name: "p2", partitions: 2},
		{axis: "partitions", name: "p9", partitions: 9},
		{axis: "chunk", name: "half-block", blockMul: 0.5},
		{axis: "chunk", name: "double-block", blockMul: 2},
		{axis: "compress", name: "deflate", compress: true},
		{axis: "collector", name: "alt", altCollector: true},
	}
	if j.CombinerOK {
		vs = append(vs, distVariant{axis: "collector", name: "combiner", combiner: true})
	}
	vs = append(vs,
		// Block-store cells: the same job with its input ingested into the
		// cluster's disks. Locality-preferred placement must read at least
		// half the input off mappers' own replicas, the forced-remote
		// baseline must read none of it locally, and the out-of-core cell
		// must actually spill — all byte-identical to the baseline digest.
		distVariant{axis: "locality", name: "local-preferred", blockstore: "local"},
		distVariant{axis: "locality", name: "forced-remote", blockstore: "remote"},
		distVariant{axis: "locality", name: "out-of-core", blockstore: "local", spill: true},
		// Injected attempt failures die before partitioning, so nothing
		// touches the wire and the retry cell stays fully exact (not Faulty).
		distVariant{axis: "faults", name: "map-retry", mapFault: true},
		// The kill cell murders a worker after two map resolutions: homes
		// re-assign, resolved tasks re-execute, and the wire + store ledgers
		// must still balance to the byte.
		distVariant{axis: "faults", name: "worker-kill", kill: true},
		// A worker killed after a reduce partition has already been accepted:
		// the once-fatal carve-out. Surviving partitions re-execute; the
		// accepted one stands.
		distVariant{axis: "faults", name: "reduce-kill", elastic: "kill:1@r1"},
		// Elastic membership: these cells change the cluster mid-job without
		// any fault, so every ledger invariant stays fully exact — a joiner
		// takes over partitions and map work, a drained worker hands its
		// partitions off, and a crashed coordinator resumes from its journal
		// (restart alone may re-execute in-flight attempts: Elastic, not
		// Faulty — the wire must stay loss-free).
		distVariant{axis: "elastic", name: "live-join", elastic: "join@2"},
		distVariant{axis: "elastic", name: "drain", elastic: "drain:0@2"},
		distVariant{axis: "elastic", name: "coordinator-restart", elastic: "restart@2"},
	)
	return vs
}

// elasticExpect sums what a parsed elastic schedule must visibly do to the
// run: joins, drains, kills and whether the coordinator resumed. Conformance
// asserts the Result (or JobStats) reports exactly these — a cell whose
// event silently never fired would otherwise pass as a vacuous baseline.
func elasticExpect(evs []dist.ElasticEvent) (joins, drains, kills int, resumed bool) {
	for _, ev := range evs {
		switch ev.Kind {
		case "join":
			joins++
		case "drain":
			drains++
		case "kill":
			kills++
		case "restart":
			resumed = true
		}
	}
	return
}

func runDistApp(j Job, exp Expected, opt Options, add func(Cell)) {
	for _, v := range distVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "dist", App: j.Name, Axis: v.axis, Variant: v.name}
		workers := v.workers
		if workers == 0 {
			workers = 3
		}
		partitions := v.partitions
		if partitions == 0 {
			partitions = 4
		}
		collector := j.Collector
		if v.altCollector {
			if collector == core.HashTable {
				collector = core.BufferPool
			} else {
				collector = core.HashTable
			}
		}
		if v.combiner {
			collector = core.HashTable
		}
		tel := obs.NewTelemetry()
		o := dist.Options{
			Job: dist.Job{
				App:         dist.AppSpec{Name: j.Name},
				Partitions:  partitions,
				Collector:   collector,
				UseCombiner: v.combiner,
				Compress:    v.compress,
			},
			Workers:   workers,
			Blocks:    splitBlocks(j, j.blockFor(v.blockMul)),
			Telemetry: tel,
			NewApp: func(dist.AppSpec) (*core.App, func(key []byte, n int) int, error) {
				return j.New(), j.Partitioner, nil
			},
			KillWorker: -1,
		}
		if v.blockstore != "" {
			o.Blockstore = v.blockstore
			o.Replication = 2
		}
		if v.spill {
			dir, err := os.MkdirTemp("", "glasswing-conf-spill-*")
			if err != nil {
				cell.Err = err
				add(cell)
				continue
			}
			defer os.RemoveAll(dir)
			o.Tuning.SpillThreshold = 2 << 10
			o.Tuning.WorkDir = dir
		}
		if v.mapFault {
			o.MapFault = func(task, attempt int) bool { return attempt == 0 && task%3 == 0 }
		}
		if v.kill {
			o.KillWorker = 1
			o.KillAfterMapDone = 2
		}
		var wantJoins, wantDrains, wantKills int
		var wantResume bool
		if v.elastic != "" {
			evs, err := dist.ParseElastic(v.elastic)
			if err != nil {
				cell.Err = err
				add(cell)
				continue
			}
			o.Elastic = evs
			wantJoins, wantDrains, wantKills, wantResume = elasticExpect(evs)
			if dist.HasRestart(evs) {
				jf, err := os.CreateTemp("", "glasswing-conf-journal-*")
				if err != nil {
					cell.Err = err
					add(cell)
					continue
				}
				jf.Close()
				o.JournalPath = jf.Name()
			}
		}
		res, err := dist.RunLoopback(o)
		if o.JournalPath != "" {
			os.Remove(o.JournalPath)
		}
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		out := res.Output()
		cell.Digest = Digest(out)
		led := ReadLedger(tel.Metrics)
		cell.Err = verdict(j, exp, cell.Digest, out, led.Check(exp, CheckOpts{
			Dist:       true,
			Faulty:     v.kill || wantKills > 0,
			Elastic:    wantResume,
			Combiner:   v.combiner,
			Compress:   v.compress,
			HasReduce:  j.New().Reduce != nil,
			Blockstore: v.blockstore,
			InputBytes: res.InputBytes,
			WantSpill:  v.spill,
		}))
		if cell.Err == nil && v.elastic != "" {
			switch {
			case res.WorkersJoined != wantJoins:
				cell.Err = fmt.Errorf("elastic cell joined %d workers, want %d", res.WorkersJoined, wantJoins)
			case res.WorkersDrained != wantDrains:
				cell.Err = fmt.Errorf("elastic cell drained %d workers, want %d", res.WorkersDrained, wantDrains)
			case res.WorkersLost < wantKills:
				cell.Err = fmt.Errorf("elastic cell lost %d workers, want >= %d", res.WorkersLost, wantKills)
			case res.Resumed != wantResume:
				cell.Err = fmt.Errorf("elastic cell resumed=%v, want %v", res.Resumed, wantResume)
			}
		}
		add(cell)
	}
}

func gpmrVariants(j Job) []modelVariant {
	vs := []modelVariant{
		{axis: "baseline", name: "n3"},
		{axis: "chunk", name: "double-block", blockMul: 2},
		{axis: "workers", name: "n2", nodes: 2},
		{axis: "workers", name: "n5", nodes: 5},
	}
	if j.CombinerOK {
		vs = append(vs, modelVariant{axis: "collector", name: "partial-reduce", partial: true})
	}
	return vs
}

func runGpmrApp(j Job, exp Expected, opt Options, add func(Cell)) {
	for _, v := range gpmrVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "gpmr", App: j.Name, Axis: v.axis, Variant: v.name}
		nodes := v.nodes
		if nodes == 0 {
			nodes = 3
		}
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, nodes, hw.Type1(true))
		fs := dfs.NewLocal(cluster, j.blockFor(v.blockMul))
		fs.PreloadBlocks("in", splitBlocks(j, j.blockFor(v.blockMul)), 0)
		rt := &gpmr.Runtime{Cluster: cluster, FS: fs}
		res, err := gpmr.Run(rt, j.New(), gpmr.Config{
			Input:         []string{"in"},
			Partitioner:   j.Partitioner,
			PartialReduce: v.partial,
		})
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		out := res.Output()
		cell.Digest = Digest(out)
		cell.Err = verdict(j, exp, cell.Digest, out, nil)
		add(cell)
	}
}
