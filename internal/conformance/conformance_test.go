package conformance

import (
	"testing"
)

// TestReference sanity-checks the sequential reference engine itself: jobs
// exist, expectations are internally consistent, and the digest is stable
// across recomputation.
func TestReference(t *testing.T) {
	jobs := Jobs()
	if len(jobs) != 3 {
		t.Fatalf("want 3 conformance jobs, got %d", len(jobs))
	}
	for _, j := range jobs {
		exp1 := Reference(j)
		exp2 := Reference(j)
		if exp1 != exp2 {
			t.Errorf("%s: reference not deterministic: %+v vs %+v", j.Name, exp1, exp2)
		}
		if exp1.Records == 0 || exp1.InterPairs == 0 || exp1.OutputPairs == 0 || exp1.DistinctKeys == 0 {
			t.Errorf("%s: degenerate expectation %+v", j.Name, exp1)
		}
		if exp1.InterBytes <= exp1.InterPairs {
			t.Errorf("%s: intermediate bytes %d implausibly small for %d pairs",
				j.Name, exp1.InterBytes, exp1.InterPairs)
		}
	}
}

// runRuntimeMatrix executes one runtime's full slice of the matrix and
// fails on any cell whose digest, verifier, or ledger check does not hold.
func runRuntimeMatrix(t *testing.T, runtime string, wantAxes int) {
	t.Helper()
	cells := RunMatrix(Options{Runtimes: []string{runtime}}, nil)
	if len(cells) == 0 {
		t.Fatalf("no cells ran for runtime %q", runtime)
	}
	axes := map[string]bool{}
	apps := map[string]bool{}
	for _, c := range cells {
		axes[c.Axis] = true
		apps[c.App] = true
		if c.Err != nil {
			t.Errorf("%s: %v", c.Key(), c.Err)
		} else if c.Digest == "" {
			t.Errorf("%s: empty digest", c.Key())
		}
	}
	if len(apps) != 3 {
		t.Errorf("runtime %q covered %d apps, want 3", runtime, len(apps))
	}
	if len(axes) < wantAxes {
		t.Errorf("runtime %q covered %d axes, want >= %d", runtime, len(axes), wantAxes)
	}
	t.Logf("runtime %s: %d cells, %d apps, %d axes", runtime, len(cells), len(apps), len(axes))
}

func TestMatrixSim(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "sim", 8)
}

func TestMatrixNative(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "native", 6)
}

func TestMatrixHadoop(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "hadoop", 4)
}

func TestMatrixGPMR(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "gpmr", 4)
}

func TestMatrixDist(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "dist", 7)
}

// TestMatrixService re-runs the dist axis table through the job service's
// HTTP API: JSON submission, admission, priority queue, scheduler, fleet,
// then digest + verifier + a wire ledger rebuilt from the serialized
// per-job registry. Same axes as dist — the service layer must be
// semantically invisible.
func TestMatrixService(t *testing.T) {
	t.Parallel()
	runRuntimeMatrix(t, "service", 7)
}

// TestMatrixDistCellCount pins the dist matrix's breadth: the ISSUE's
// acceptance floor is 20 executed axis cells including the worker-kill one.
func TestMatrixDistCellCount(t *testing.T) {
	t.Parallel()
	cells := RunMatrix(Options{Runtimes: []string{"dist"}}, nil)
	if len(cells) < 20 {
		t.Fatalf("dist matrix ran %d cells, want >= 20", len(cells))
	}
	kills := 0
	for _, c := range cells {
		if c.Variant == "worker-kill" {
			kills++
			if c.Err != nil {
				t.Errorf("%s: %v", c.Key(), c.Err)
			}
		}
	}
	if kills != 3 {
		t.Errorf("worker-kill ran for %d apps, want 3", kills)
	}
}

// TestCrossRuntimeDigests pins the property the whole subsystem exists for:
// for each app, the baseline cells of every runtime produce byte-identical
// canonical digests (they are each already compared against the reference,
// but this states the cross-runtime claim directly).
func TestCrossRuntimeDigests(t *testing.T) {
	t.Parallel()
	cells := RunMatrix(Options{Axes: []string{"baseline"}}, nil)
	byApp := map[string]map[string]string{} // app -> runtime -> digest
	for _, c := range cells {
		if c.Err != nil {
			t.Errorf("%s: %v", c.Key(), c.Err)
			continue
		}
		if byApp[c.App] == nil {
			byApp[c.App] = map[string]string{}
		}
		byApp[c.App][c.Runtime] = c.Digest
	}
	for app, digests := range byApp {
		if len(digests) != len(RuntimeNames) {
			t.Errorf("%s: baseline ran on %d runtimes, want %d", app, len(digests), len(RuntimeNames))
		}
		var first string
		for _, d := range digests {
			if first == "" {
				first = d
			} else if d != first {
				t.Errorf("%s: divergent baseline digests across runtimes: %v", app, digests)
				break
			}
		}
	}
}
