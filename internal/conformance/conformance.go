// Package conformance is the cross-runtime MapReduce-semantics test bed:
// a declarative spec of what every Glasswing engine must compute, executed
// against all runtimes that share an application (the simulated core, the
// native wall-clock pipeline, and the Hadoop/GPMR baseline models) and
// against a metamorphic axis table asserting that execution geometry —
// chunk size, worker count, partition count, compression, pipeline overlap,
// injected faults — never changes the answer.
//
// Each job is reduced to two artifacts:
//
//   - a canonical output digest: output pairs sorted key-then-value,
//     marshalled, SHA-256 hashed. Every key lands in exactly one partition,
//     so the digest is invariant across partition counts and runtimes; any
//     two runs of the same job must produce byte-identical digests.
//   - a conservation ledger: the conserv_* counters the core and native
//     runtimes thread through internal/obs, proving records and bytes are
//     neither lost nor invented at any pipeline boundary (see ledger.go).
//
// Float determinism: KMeans sums float64 coordinates, and float addition is
// not associative — so KM runs with the combiner OFF everywhere in this
// package. Without a combiner every runtime feeds reduce the full value
// multiset in byte-sorted order (runs are key-then-value sorted and merges
// preserve that order), making the sums bit-exact across engines. WC's
// uint32 sums are exact in any order, so WC additionally exercises the
// combiner axis.
package conformance

import (
	"crypto/sha256"
	"encoding/hex"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dist"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// Job declares one conformance workload: an application, its dataset, and
// everything a runtime needs to execute it plus verify the result.
type Job struct {
	Name string
	// New builds a fresh App (kernels are stateless; a fresh value per run
	// keeps cells independent).
	New func() *core.App
	// Data is the raw input; RecordSize 0 means newline-delimited text,
	// otherwise fixed-size binary records.
	Data       []byte
	RecordSize int64
	// Partitioner overrides hash partitioning (TeraSort's sampled range
	// partitioner; it adapts to any partition count).
	Partitioner func(key []byte, n int) int
	// Broadcast is the prelude payload in bytes (KM ships its centers).
	Broadcast int64
	// Params is the app's registry parameter blob (dist.AppSpec.Params) for
	// runtimes that resolve kernels by name over a wire API — the job
	// service axis — instead of taking a constructor closure. Encodes the
	// same partitioner sample / center spec the closure path uses, so both
	// paths run identical kernels.
	Params []byte
	// Collector is the tuned collector for this app; the collector axis
	// runs the other one.
	Collector core.CollectorKind
	// CombinerOK marks apps whose combiner preserves bit-exact output
	// (integer aggregation). KM's float sums are not associative: false.
	CombinerOK bool
	// OutputReplication passes through to DFS output writes (TS uses 1).
	OutputReplication int
	// Verify checks output pairs against an app-specific reference,
	// independent of the digest comparison.
	Verify func(out []kv.Pair) error
}

// Jobs returns the conformance workloads: the three paper applications that
// all four runtimes share (WC, TS, KM — §IV-A). Datasets are seeded, so
// every call returns identical bytes.
func Jobs() []Job {
	wcData, wcWant := apps.WCData(21, 96<<10, 1200)
	tsData := apps.TSData(22, 2000)
	kmData, kmSpec := apps.KMData(23, 4096, 4, 8)
	return []Job{
		{
			Name:       "WC",
			New:        apps.WordCount,
			Data:       wcData,
			Collector:  core.HashTable,
			CombinerOK: true,
			Verify:     func(out []kv.Pair) error { return apps.VerifyCounts(out, wcWant) },
		},
		{
			Name:              "TS",
			New:               apps.TeraSort,
			Data:              tsData,
			RecordSize:        workload.TeraRecordSize,
			Partitioner:       apps.TeraPartitioner(tsData, 16),
			Params:            dist.EncodeTSParams(apps.TeraSample(tsData, 16)),
			Collector:         core.BufferPool,
			OutputReplication: 1,
			Verify:            func(out []kv.Pair) error { return apps.VerifyTeraSort(out, tsData) },
		},
		{
			Name:       "KM",
			New:        func() *core.App { return apps.KMeans(kmSpec) },
			Data:       kmData,
			RecordSize: int64(kmSpec.Dim * 4),
			Broadcast:  kmSpec.CentersBytes(),
			Params:     dist.EncodeKMParams(kmSpec),
			Collector:  core.HashTable,
			Verify:     func(out []kv.Pair) error { return apps.VerifyKMeans(out, kmData, kmSpec) },
		},
	}
}

// Digest canonicalizes output pairs — sort key-then-value, marshal, hash —
// so any two runs of the same job are comparable regardless of partition
// count, partition order, or runtime.
func Digest(pairs []kv.Pair) string {
	cp := make([]kv.Pair, len(pairs))
	copy(cp, pairs)
	kv.SortPairs(cp)
	sum := sha256.Sum256(kv.Marshal(cp))
	return hex.EncodeToString(sum[:])
}

// Expected is the reference sequential engine's account of a job: what every
// runtime must produce (Digest, OutputPairs) and the volumes the
// conservation ledger must balance against.
type Expected struct {
	// Records is the parsed input record count.
	Records int64
	// InterPairs and InterBytes are the map-emitted pair count and payload
	// volume with no combiner.
	InterPairs int64
	InterBytes int64
	// DistinctKeys is the number of distinct intermediate keys — the total
	// reduce group count across all partitions.
	DistinctKeys int64
	// OutputPairs and Digest describe the final output.
	OutputPairs int64
	Digest      string
}

// Reference runs j on the trivial sequential engine: parse everything, map
// every record, sort, group, reduce. No chunking, no partitions, no
// concurrency — the executable definition of the job's semantics that every
// real runtime is compared against.
func Reference(j Job) Expected {
	app := j.New()
	recs := app.Parse(j.Data)
	var inter []kv.Pair
	emit := func(k, v []byte) {
		inter = append(inter, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	for _, rec := range recs {
		app.Map(rec, emit)
	}
	exp := Expected{Records: int64(len(recs)), InterPairs: int64(len(inter))}
	for _, pr := range inter {
		exp.InterBytes += pr.Size()
	}
	kv.SortPairs(inter)

	var out []kv.Pair
	oemit := func(k, v []byte) {
		out = append(out, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	gi := kv.NewGroupIter(kv.NewSliceIter(inter))
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		exp.DistinctKeys++
		if app.Reduce == nil {
			// Reduce-less apps (TS): merged intermediate data is final.
			for _, v := range g.Values {
				out = append(out, kv.Pair{Key: g.Key, Value: v})
			}
			continue
		}
		app.Reduce(g.Key, g.Values, oemit)
	}
	exp.OutputPairs = int64(len(out))
	exp.Digest = Digest(out)
	return exp
}
