package conformance

import (
	"encoding/base64"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"glasswing/internal/core"
	"glasswing/internal/dist"
	"glasswing/internal/jobsvc"
	"glasswing/internal/kv"
)

// ---- Job service (internal/jobsvc over HTTP). ----
//
// The service axis re-runs the distributed runtime's metamorphic table, but
// every job travels the whole multi-tenant service path: JSON-encoded over
// HTTP into the admission gate, through the priority queue and scheduler,
// onto a fleet-budgeted loopback cluster, and back out as a base64 result
// plus a serialized per-job metric registry. The digests must match the
// reference byte-for-byte and the wire ledger — rebuilt client-side from
// the /metrics JSON — must balance exactly, proving the service layer
// neither perturbs job semantics nor mixes concurrent jobs' accounting.

// serviceEnv is one running in-process service: real listener, real HTTP.
type serviceEnv struct {
	svc *jobsvc.Service
	srv *http.Server
	ln  net.Listener
	cli jobsvc.Client
}

func startService() (*serviceEnv, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("service listen: %w", err)
	}
	svc := jobsvc.New(jobsvc.Config{
		FleetWorkers:        8,
		AllowFaultInjection: true, // the faults axis re-runs kill/retry cells
	})
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	return &serviceEnv{
		svc: svc,
		srv: srv,
		ln:  ln,
		cli: jobsvc.Client{Base: "http://" + ln.Addr().String()},
	}, nil
}

func (e *serviceEnv) stop() {
	e.srv.Close()
	e.svc.Close()
}

// runServiceCell pushes one dist variant through the full API round trip
// and returns the output digest, pairs, remote-rebuilt ledger and the
// job's reported stats.
func runServiceCell(e *serviceEnv, j Job, v distVariant) (string, []kv.Pair, Ledger, *jobsvc.JobStats, error) {
	workers := v.workers
	if workers == 0 {
		workers = 3
	}
	partitions := v.partitions
	if partitions == 0 {
		partitions = 4
	}
	collector := "hash"
	if j.Collector == core.BufferPool {
		collector = "pool"
	}
	if v.altCollector {
		if collector == "hash" {
			collector = "pool"
		} else {
			collector = "hash"
		}
	}
	if v.combiner {
		collector = "hash"
	}
	req := jobsvc.Request{
		Tenant:      "conformance",
		App:         strings.ToLower(j.Name),
		InputB64:    base64.StdEncoding.EncodeToString(j.Data),
		ParamsB64:   base64.StdEncoding.EncodeToString(j.Params),
		RecordSize:  int(j.RecordSize),
		Chunk:       int(j.blockFor(v.blockMul)),
		Partitions:  partitions,
		Workers:     workers,
		Collector:   collector,
		UseCombiner: v.combiner,
		Compress:    v.compress,
	}
	if v.mapFault {
		req.MapFaultMod = 3 // same deterministic schedule as the dist axis
	}
	if v.kill {
		kw := 1
		req.KillWorker = &kw
		req.KillAfterMapDone = 2
	}
	req.Elastic = v.elastic // membership schedule rides the API verbatim

	st, err := e.cli.Submit(req)
	if err != nil {
		return "", nil, Ledger{}, nil, fmt.Errorf("submit: %w", err)
	}
	st, err = e.cli.WaitDone(st.ID, 2*time.Minute)
	if err != nil {
		return "", nil, Ledger{}, nil, err
	}
	if st.State != jobsvc.StateDone {
		return "", nil, Ledger{}, nil, fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	out, err := e.cli.ResultPairs(st.ID)
	if err != nil {
		return "", nil, Ledger{}, nil, fmt.Errorf("result: %w", err)
	}
	counters, err := e.cli.JobCounters(st.ID)
	if err != nil {
		return "", nil, Ledger{}, nil, fmt.Errorf("job metrics: %w", err)
	}
	led := LedgerFromCounters(func(name string) int64 { return counters[name] })
	return Digest(out), out, led, st.Stats, nil
}

func runServiceApp(j Job, exp Expected, opt Options, add func(Cell)) {
	env, envErr := startService()
	if envErr == nil {
		defer env.stop()
	}
	for _, v := range distVariants(j) {
		if !selected(opt.Axes, v.axis) {
			continue
		}
		cell := Cell{Runtime: "service", App: j.Name, Axis: v.axis, Variant: v.name}
		if envErr != nil {
			cell.Err = envErr
			add(cell)
			continue
		}
		dig, out, led, stats, err := runServiceCell(env, j, v)
		if err != nil {
			cell.Err = err
			add(cell)
			continue
		}
		var wantJoins, wantDrains, wantKills int
		var wantResume bool
		if v.elastic != "" {
			evs, perr := dist.ParseElastic(v.elastic)
			if perr != nil {
				cell.Err = perr
				add(cell)
				continue
			}
			wantJoins, wantDrains, wantKills, wantResume = elasticExpect(evs)
		}
		cell.Digest = dig
		cell.Err = verdict(j, exp, dig, out, led.Check(exp, CheckOpts{
			Dist:      true,
			Faulty:    v.kill || wantKills > 0,
			Elastic:   wantResume,
			Combiner:  v.combiner,
			Compress:  v.compress,
			HasReduce: j.New().Reduce != nil,
		}))
		if cell.Err == nil && v.elastic != "" {
			switch {
			case stats == nil:
				cell.Err = fmt.Errorf("elastic cell finished without stats")
			case stats.WorkersJoined != wantJoins:
				cell.Err = fmt.Errorf("elastic cell joined %d workers, want %d", stats.WorkersJoined, wantJoins)
			case stats.WorkersDrained != wantDrains:
				cell.Err = fmt.Errorf("elastic cell drained %d workers, want %d", stats.WorkersDrained, wantDrains)
			case stats.WorkersLost < wantKills:
				cell.Err = fmt.Errorf("elastic cell lost %d workers, want >= %d", stats.WorkersLost, wantKills)
			case stats.Resumed != wantResume:
				cell.Err = fmt.Errorf("elastic cell resumed=%v, want %v", stats.Resumed, wantResume)
			}
		}
		add(cell)
	}
}
