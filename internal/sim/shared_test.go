package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSharedSingleFlow(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 100, 4) // 100 units/s per thread, 4 threads
	var end float64
	env.Spawn("p", func(p *Proc) {
		s.Use(p, 200, 1) // 200 units at 100/s
		end = p.Now()
	})
	env.Run()
	almost(t, end, 2, 1e-9, "single weight-1 flow")
}

func TestSharedWeightSpeedsUp(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 100, 8)
	var end float64
	env.Spawn("p", func(p *Proc) {
		s.Use(p, 800, 4) // 4 threads uncontended -> 400/s
		end = p.Now()
	})
	env.Run()
	almost(t, end, 2, 1e-9, "weight-4 flow")
}

func TestSharedWeightCappedByCapacity(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 100, 4)
	var end float64
	env.Spawn("p", func(p *Proc) {
		s.Use(p, 800, 16) // asks for 16 threads, only 4 exist -> 400/s
		end = p.Now()
	})
	env.Run()
	almost(t, end, 2, 1e-9, "oversized weight capped")
}

func TestSharedEqualContention(t *testing.T) {
	// Two equal flows on a capacity-1 pipe: each gets half the rate.
	env := NewEnv()
	s := NewShared(env, 100, 1)
	var ends []float64
	for i := 0; i < 2; i++ {
		env.Spawn("p", func(p *Proc) {
			s.Use(p, 100, 1)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	for _, e := range ends {
		almost(t, e, 2, 1e-9, "contended completion")
	}
}

func TestSharedProportionalShares(t *testing.T) {
	// Weight 3 and weight 1 on a 4-thread pool at unit rate 1:
	// each is uncontended (total weight 4 == capacity), so flow A (w=3)
	// finishes 300 units at t=100, flow B (w=1) 100 units at t=100.
	env := NewEnv()
	s := NewShared(env, 1, 4)
	var endA, endB float64
	env.Spawn("a", func(p *Proc) { s.Use(p, 300, 3); endA = p.Now() })
	env.Spawn("b", func(p *Proc) { s.Use(p, 100, 1); endB = p.Now() })
	env.Run()
	almost(t, endA, 100, 1e-6, "flow A")
	almost(t, endB, 100, 1e-6, "flow B")
}

func TestSharedOversubscribedProportional(t *testing.T) {
	// Capacity 2, two weight-2 flows: each gets 2*min(1, 2/4)=1 unit-rate.
	env := NewEnv()
	s := NewShared(env, 10, 2)
	var ends []float64
	for i := 0; i < 2; i++ {
		env.Spawn("p", func(p *Proc) {
			s.Use(p, 100, 2)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	for _, e := range ends {
		almost(t, e, 10, 1e-6, "oversubscribed completion")
	}
}

func TestSharedDepartureSpeedsUpRemaining(t *testing.T) {
	// Flow A: 100 units. Flow B: 300 units. Capacity-1 pipe at rate 100.
	// Shared until A leaves at t=2 (50/s each); B then runs at 100/s and
	// finishes its remaining 200 units at t=2+2=4.
	env := NewEnv()
	s := NewShared(env, 100, 1)
	var endA, endB float64
	env.Spawn("a", func(p *Proc) { s.Use(p, 100, 1); endA = p.Now() })
	env.Spawn("b", func(p *Proc) { s.Use(p, 300, 1); endB = p.Now() })
	env.Run()
	almost(t, endA, 2, 1e-6, "flow A end")
	almost(t, endB, 4, 1e-6, "flow B end")
}

func TestSharedLateArrivalSlowsDown(t *testing.T) {
	// A starts alone (rate 100). B arrives at t=1 with 100 units.
	// A has 100 left at t=1; both at 50/s -> both finish at t=3.
	env := NewEnv()
	s := NewShared(env, 100, 1)
	var endA, endB float64
	env.Spawn("a", func(p *Proc) { s.Use(p, 200, 1); endA = p.Now() })
	env.Spawn("b", func(p *Proc) {
		p.Delay(1)
		s.Use(p, 100, 1)
		endB = p.Now()
	})
	env.Run()
	almost(t, endA, 3, 1e-6, "flow A end")
	almost(t, endB, 3, 1e-6, "flow B end")
}

func TestSharedZeroAmountNoop(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 100, 1)
	env.Spawn("p", func(p *Proc) {
		s.Use(p, 0, 1)
		s.Use(p, -5, 1)
		if p.Now() != 0 {
			t.Errorf("zero-amount Use advanced time to %g", p.Now())
		}
	})
	env.Run()
}

func TestSharedTimeFor(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 100, 4)
	almost(t, s.TimeFor(200, 1), 2, 1e-12, "weight 1")
	almost(t, s.TimeFor(200, 2), 1, 1e-12, "weight 2")
	almost(t, s.TimeFor(800, 100), 2, 1e-12, "capped weight")
	almost(t, s.TimeFor(0, 1), 0, 0, "zero amount")
}

func TestQuickSharedConservation(t *testing.T) {
	// Property: total service delivered equals total work demanded, and the
	// makespan is between work/full-rate and the serialized sum.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		env := NewEnv()
		s := NewShared(env, 10, 2)
		var total float64
		for _, r := range raw {
			amount := float64(r%1000) + 1
			total += amount
			env.Spawn("p", func(p *Proc) { s.Use(p, amount, 1) })
		}
		end := env.Run()
		lower := total / (10 * 2) // everything at full pooled rate
		upper := total / 10       // fully serialized at one thread each
		// Single flow can't exceed per-flow rate 10, so with n flows the
		// bound depends on arrival pattern; allow tolerance.
		return end >= lower-1e-6 && end <= upper+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedManyFlowsNumericalStability(t *testing.T) {
	env := NewEnv()
	s := NewShared(env, 1e9, 16)
	n := 100
	var done int
	for i := 0; i < n; i++ {
		amount := float64((i + 1)) * 1e7
		env.Spawn("p", func(p *Proc) {
			s.Use(p, amount, float64(1+i%4))
			done++
		})
	}
	end := env.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if math.IsNaN(end) || math.IsInf(end, 0) || end <= 0 {
		t.Fatalf("bad end time %g", end)
	}
}
