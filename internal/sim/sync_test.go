package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(1)
			q.Put(p, i)
		}
		q.Close()
	})
	env.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
}

func TestQueueCapacityBlocksProducer(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 2)
	var putDone, getStart float64
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until the consumer takes one at t=10
		putDone = p.Now()
	})
	env.Spawn("consumer", func(p *Proc) {
		p.Delay(10)
		getStart = p.Now()
		q.Get(p)
		q.Get(p)
		q.Get(p)
	})
	env.Run()
	if putDone < getStart {
		t.Fatalf("third Put finished at %g before consumer started at %g", putDone, getStart)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env, 0)
	var got []string
	var sawClose bool
	env.Spawn("c", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				sawClose = true
				return
			}
			got = append(got, v)
		}
	})
	env.Spawn("p", func(p *Proc) {
		q.Put(p, "a")
		q.Put(p, "b")
		q.Close()
	})
	env.Run()
	if !sawClose || len(got) != 2 {
		t.Fatalf("got=%v sawClose=%v", got, sawClose)
	}
}

func TestQueueTryPut(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 1)
	env.Spawn("p", func(p *Proc) {
		if !q.TryPut(1) {
			t.Error("TryPut into empty bounded queue failed")
		}
		if q.TryPut(2) {
			t.Error("TryPut into full queue succeeded")
		}
		q.Get(p)
		if !q.TryPut(3) {
			t.Error("TryPut after drain failed")
		}
	})
	env.Run()
}

func TestResourceMutualExclusion(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var busy, maxBusy int
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			r.Acquire(p, 1)
			busy++
			if busy > maxBusy {
				maxBusy = busy
			}
			p.Delay(1)
			busy--
			r.Release(1)
		})
	}
	env.Run()
	if maxBusy != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxBusy)
	}
	almost(t, env.Now(), 4, 1e-9, "serialized total time")
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("w", func(p *Proc) {
			p.Delay(float64(i) * 0.001) // arrival order 0..4
			r.Acquire(p, 2)             // full-capacity requests serialize
			order = append(order, i)
			p.Delay(1)
			r.Release(2)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want arrival order", order)
		}
	}
}

func TestResourcePartialAcquire(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 3)
	var t2 float64
	env.Spawn("big", func(p *Proc) {
		r.Acquire(p, 2)
		p.Delay(5)
		r.Release(2)
	})
	env.Spawn("small", func(p *Proc) {
		p.Delay(0.1)
		r.Acquire(p, 1) // fits alongside big
		t2 = p.Now()
		r.Release(1)
	})
	env.Run()
	almost(t, t2, 0.1, 1e-9, "small acquire should not wait")
}

func TestResourceTryAcquire(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	env.Spawn("p", func(p *Proc) {
		if !r.TryAcquire(2) {
			t.Error("TryAcquire on idle resource failed")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire over capacity succeeded")
		}
		r.Release(2)
		if !r.TryAcquire(1) {
			t.Error("TryAcquire after release failed")
		}
		r.Release(1)
	})
	env.Run()
}

func TestQuickQueuePreservesAllItems(t *testing.T) {
	// Property: everything put is got, in order, for any capacity.
	f := func(items []uint8, capRaw uint8) bool {
		capacity := int(capRaw % 5) // 0..4
		env := NewEnv()
		q := NewQueue[uint8](env, capacity)
		var got []uint8
		env.Spawn("prod", func(p *Proc) {
			for _, it := range items {
				q.Put(p, it)
			}
			q.Close()
		})
		env.Spawn("cons", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		env.Run()
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
