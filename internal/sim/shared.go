package sim

import "math"

// Shared is a weighted processor-sharing resource: a capacity of identical
// service units (CPU hardware threads, link bandwidth) divided among the
// currently active flows in proportion to their weights.
//
// A flow of weight w receives service at rate
//
//	UnitRate * w * min(1, Capacity/totalWeight)
//
// so an uncontended flow of weight w progresses at w*UnitRate (but never
// faster than Capacity*UnitRate), and under contention the capacity is split
// proportionally. This models both
//
//   - a CPU pool: UnitRate = ops/sec of one hardware thread, Capacity = the
//     number of hardware threads, weight = the number of software threads an
//     activity runs; and
//   - a shared pipe (NIC, PCIe link, disk): UnitRate = bytes/sec, Capacity=1,
//     weight = 1 per transfer, which degenerates to egalitarian processor
//     sharing.
//
// Completion times are recomputed whenever the active-flow set changes, in
// the classic event-driven PS fashion.
type Shared struct {
	env      *Env
	UnitRate float64
	Capacity float64

	flows   map[*psFlow]struct{}
	totalW  float64
	lastT   float64
	pending *event
}

type psFlow struct {
	remaining float64
	weight    float64
	proc      *Proc
	done      bool
}

// NewShared returns a weighted processor-sharing resource.
func NewShared(env *Env, unitRate, capacity float64) *Shared {
	if unitRate <= 0 || capacity <= 0 {
		panic("sim: NewShared rates must be positive")
	}
	return &Shared{env: env, UnitRate: unitRate, Capacity: capacity, flows: make(map[*psFlow]struct{})}
}

// rateOf returns the current service rate of flow f.
func (s *Shared) rateOf(f *psFlow) float64 {
	scale := 1.0
	if s.totalW > s.Capacity {
		scale = s.Capacity / s.totalW
	}
	return s.UnitRate * f.weight * scale
}

// advance applies elapsed service to all active flows.
func (s *Shared) advance() {
	dt := s.env.now - s.lastT
	if dt > 0 {
		for f := range s.flows {
			f.remaining -= s.rateOf(f) * dt
		}
	}
	s.lastT = s.env.now
}

// reschedule cancels the pending completion event and schedules a new one at
// the earliest completion among active flows.
func (s *Shared) reschedule() {
	if s.pending != nil {
		s.pending.canceled = true
		s.pending = nil
	}
	if len(s.flows) == 0 {
		return
	}
	tmin := math.Inf(1)
	for f := range s.flows {
		t := f.remaining / s.rateOf(f)
		if t < tmin {
			tmin = t
		}
	}
	if tmin < 0 {
		tmin = 0
	}
	s.pending = s.env.schedule(s.env.now+tmin, s.complete)
}

// complete fires finished flows and reschedules. Runs in scheduler context.
func (s *Shared) complete() {
	s.pending = nil
	s.advance()
	const eps = 1e-9
	var finished []*psFlow
	for f := range s.flows {
		if f.remaining <= eps*math.Max(1, f.weight)*s.UnitRate {
			finished = append(finished, f)
		}
	}
	// Deterministic wake order: by process name, then pointer-insertion
	// order is not stable for maps, so sort by a stable key. Flows are
	// given increasing ids via remaining ties broken by proc name.
	sortFlows(finished)
	for _, f := range finished {
		delete(s.flows, f)
		s.totalW -= f.weight
		f.done = true
	}
	s.reschedule()
	for _, f := range finished {
		s.env.wake(f.proc)
	}
}

func sortFlows(fs []*psFlow) {
	// Insertion sort by (proc name, weight); flow sets are small.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && flowLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func flowLess(a, b *psFlow) bool {
	if a.proc.Name != b.proc.Name {
		return a.proc.Name < b.proc.Name
	}
	return a.weight < b.weight
}

// Use consumes amount units of service with the given weight, blocking the
// process until the service completes under processor sharing. Zero or
// negative amounts return immediately.
func (s *Shared) Use(p *Proc, amount, weight float64) {
	if amount <= 0 {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	f := &psFlow{remaining: amount, weight: weight, proc: p}
	s.advance()
	s.flows[f] = struct{}{}
	s.totalW += weight
	s.reschedule()
	for !f.done {
		p.park()
	}
}

// TimeFor returns the uncontended service time for amount at weight: the
// lower bound a flow would take on an otherwise idle resource.
func (s *Shared) TimeFor(amount, weight float64) float64 {
	if amount <= 0 {
		return 0
	}
	if weight <= 0 {
		weight = 1
	}
	rate := s.UnitRate * math.Min(weight, s.Capacity)
	return amount / rate
}

// ActiveFlows returns the number of flows currently in service.
func (s *Shared) ActiveFlows() int { return len(s.flows) }

// Utilization returns total active weight divided by capacity (may exceed 1
// when oversubscribed).
func (s *Shared) Utilization() float64 { return s.totalW / s.Capacity }
