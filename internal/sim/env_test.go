package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestDelayAdvancesClock(t *testing.T) {
	env := NewEnv()
	var at float64
	env.Spawn("p", func(p *Proc) {
		p.Delay(2.5)
		at = p.Now()
	})
	env.Run()
	almost(t, at, 2.5, 1e-12, "delay end time")
	almost(t, env.Now(), 2.5, 1e-12, "env end time")
}

func TestZeroAndNegativeDelay(t *testing.T) {
	env := NewEnv()
	order := []string{}
	env.Spawn("a", func(p *Proc) {
		p.Delay(0)
		order = append(order, "a")
	})
	env.Spawn("b", func(p *Proc) {
		p.Delay(-1)
		order = append(order, "b")
	})
	env.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
	if env.Now() != 0 {
		t.Fatalf("clock moved for zero delays: %g", env.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	// Events at the same timestamp fire in scheduling order.
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.At(1.0, func() { order = append(order, i) })
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childTime float64
	env.Spawn("parent", func(p *Proc) {
		p.Delay(1)
		child := env.Spawn("child", func(c *Proc) {
			c.Delay(2)
			childTime = c.Now()
		})
		child.Done().Wait(p)
		if p.Now() != childTime {
			t.Errorf("parent resumed at %g, child finished at %g", p.Now(), childTime)
		}
	})
	env.Run()
	almost(t, childTime, 3, 1e-12, "child end")
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.At(1, func() { fired++ })
	env.At(5, func() { fired++ })
	env.RunUntil(2)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	almost(t, env.Now(), 2, 0, "clock at limit")
	env.RunUntil(10)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	env := NewEnv()
	sig := NewSignal(env)
	env.Spawn("stuck", func(p *Proc) { sig.Wait(p) })
	env.Run()
}

func TestPastEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	env := NewEnv()
	env.At(5, func() {})
	env.Run()
	env.At(1, func() {})
}

func TestSignalBroadcastAndLateWait(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var woke []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		env.Spawn(n, func(p *Proc) {
			v := sig.Wait(p)
			if v != 42 {
				t.Errorf("signal value = %v, want 42", v)
			}
			woke = append(woke, n)
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Delay(3)
		sig.Fire(42)
		sig.Fire(99) // idempotent
	})
	env.Spawn("late", func(p *Proc) {
		p.Delay(7)
		if v := sig.Wait(p); v != 42 {
			t.Errorf("late wait value = %v", v)
		}
		woke = append(woke, "late")
	})
	env.Run()
	if len(woke) != 4 {
		t.Fatalf("woke = %v", woke)
	}
	if woke[3] != "late" {
		t.Fatalf("late waiter order wrong: %v", woke)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// The same scenario must give the same trace on every run.
	run := func() []float64 {
		env := NewEnv()
		var trace []float64
		pool := NewShared(env, 10, 4)
		for i := 0; i < 6; i++ {
			w := float64(1 + i%3)
			env.Spawn("w", func(p *Proc) {
				p.Delay(0.1 * w)
				pool.Use(p, 25, w)
				trace = append(trace, p.Now())
			})
		}
		env.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestQuickDelaySum(t *testing.T) {
	// Property: a chain of delays ends at the (clamped) sum of delays.
	f := func(raw []int16) bool {
		env := NewEnv()
		var want float64
		for _, r := range raw {
			d := float64(r) / 100
			if d > 0 {
				want += d
			}
		}
		env.Spawn("p", func(p *Proc) {
			for _, r := range raw {
				p.Delay(float64(r) / 100)
			}
		})
		env.Run()
		return math.Abs(env.Now()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
