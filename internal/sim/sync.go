package sim

// Signal is a one-shot broadcast event. Processes Wait on it; Fire wakes all
// current and future waiters. A fired signal stays fired; Wait on a fired
// signal returns immediately with the fired value.
type Signal struct {
	env     *Env
	fired   bool
	val     any
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the value passed to Fire, or nil if not fired.
func (s *Signal) Value() any { return s.val }

// Fire marks the signal fired and schedules all waiters to resume at the
// current virtual time. Firing an already-fired signal is a no-op.
func (s *Signal) Fire(val any) {
	if s.fired {
		return
	}
	s.fired = true
	s.val = val
	for _, p := range s.waiters {
		s.env.wakeLater(p)
	}
	s.waiters = nil
}

// Wait suspends p until the signal fires and returns the fired value.
func (s *Signal) Wait(p *Proc) any {
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	return s.val
}

// WaitAll joins all of the given signals.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// Queue is a FIFO channel between processes, with an optional capacity
// bound. A capacity of 0 means unbounded. Close marks the end of the stream:
// Get on a closed, drained queue returns ok=false.
type Queue[T any] struct {
	env     *Env
	items   []T
	cap     int
	closed  bool
	getters []*Proc
	putters []*Proc
}

// NewQueue returns a queue with the given capacity bound (0 = unbounded).
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends an item, blocking while the queue is at capacity.
// Put on a closed queue panics.
func (q *Queue[T]) Put(p *Proc, item T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.park()
		q.putters = remove(q.putters, p)
	}
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, item)
	q.wakeGetters()
}

// TryPut appends an item without blocking; it reports false if the queue is
// at capacity.
func (q *Queue[T]) TryPut(item T) bool {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, item)
	q.wakeGetters()
	return true
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. It returns ok=false when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.getters = append(q.getters, p)
		p.park()
		q.getters = remove(q.getters, p)
	}
	item = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return item, true
}

// Filter retains only the buffered items for which keep returns true and
// returns the removed ones in FIFO order. Blocked putters are woken (removal
// may have opened capacity). It supports node-down handling: a dead node's
// in-flight traffic is purged from sender queues without disturbing the rest
// of the stream.
func (q *Queue[T]) Filter(keep func(T) bool) []T {
	var kept, removed []T
	for _, it := range q.items {
		if keep(it) {
			kept = append(kept, it)
		} else {
			removed = append(removed, it)
		}
	}
	q.items = kept
	if len(removed) > 0 {
		q.wakePutters()
	}
	return removed
}

// Close marks the queue as finished. Blocked getters drain remaining items
// and then observe ok=false. Close is idempotent.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.wakeGetters()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

func (q *Queue[T]) wakeGetters() {
	for _, g := range q.getters {
		q.env.wakeLater(g)
	}
}

func (q *Queue[T]) wakePutters() {
	for _, w := range q.putters {
		q.env.wakeLater(w)
	}
}

func remove(ps []*Proc, p *Proc) []*Proc {
	for i, q := range ps {
		if q == p {
			return append(ps[:i], ps[i+1:]...)
		}
	}
	return ps
}

// Resource is a counting semaphore with FIFO waiters: a pool of n identical
// units (buffers, task slots, ...). Acquire blocks until the requested units
// are available.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with capacity units available.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource capacity must be positive")
	}
	return &Resource{env: env, cap: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire takes n units, blocking until they are available. Requests are
// served in FIFO order of first arrival.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.cap {
		panic("sim: Acquire exceeds resource capacity")
	}
	for {
		// FIFO: only the oldest waiter may claim freed capacity.
		if r.inUse+n <= r.cap && (len(r.waiters) == 0 || r.waiters[0] == p) {
			break
		}
		if !contains(r.waiters, p) {
			r.waiters = append(r.waiters, p)
		}
		p.park()
	}
	r.waiters = remove(r.waiters, p)
	r.inUse += n
	// The next waiter may also fit in what remains.
	if len(r.waiters) > 0 {
		r.env.wakeLater(r.waiters[0])
	}
}

// TryAcquire takes n units without blocking, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if r.inUse+n > r.cap || len(r.waiters) > 0 {
		return false
	}
	r.inUse += n
	return true
}

// Release returns n units to the pool and wakes the oldest waiter.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Release of units never acquired")
	}
	if len(r.waiters) > 0 {
		r.env.wakeLater(r.waiters[0])
	}
}

func contains(ps []*Proc, p *Proc) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
