// Package sim implements a deterministic, process-based discrete-event
// simulation kernel in the style of SimPy.
//
// A simulation consists of an Environment holding a virtual clock and an
// event queue, and a set of Processes. Each process is a goroutine, but the
// kernel enforces strict alternation: at any instant exactly one goroutine —
// either the scheduler or a single process — is running. Processes hand
// control back to the scheduler whenever they wait (Delay, Signal.Wait,
// Queue.Get, Resource.Acquire, Shared.Use, ...). This makes simulations fully
// deterministic: given the same inputs, every run produces the same virtual
// timeline, regardless of GOMAXPROCS.
//
// Events scheduled for the same virtual time fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which gives
// queues and resources FIFO semantics.
//
// The package carries no domain knowledge; hardware models (CPU pools,
// disks, NICs, PCIe links) are built on top of it in package hw.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Env is a simulation environment: a virtual clock plus a pending-event
// queue. The zero value is not usable; create environments with NewEnv.
type Env struct {
	now    float64
	seq    int64
	events eventHeap
	yield  chan struct{} // a process signals "I parked or finished"
	inRun  bool
	nprocs int     // live (spawned, not yet finished) processes
	procs  []*Proc // all spawned processes, for deadlock diagnostics
}

// NewEnv returns an empty environment with the clock at 0.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// event is a scheduled callback. Events may be canceled in place; canceled
// events are skipped when popped.
type event struct {
	t        float64
	seq      int64
	fn       func()
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
func (e *Env) schedule(t float64, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %g < %g", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %g", t))
	}
	e.seq++
	ev := &event{t: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// At schedules fn to run in scheduler context at absolute virtual time t.
// It may be called from driver, scheduler-callback, or process context.
func (e *Env) At(t float64, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d seconds from now.
func (e *Env) After(d float64, fn func()) { e.schedule(e.now+d, fn) }

// Run executes events until the queue is empty, then returns the final
// virtual time. If live processes remain parked when the queue drains, Run
// panics: that is a deadlock in the simulated system.
func (e *Env) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events with timestamps <= limit and returns the virtual
// time of the last executed event (or limit if events remain beyond it).
func (e *Env) RunUntil(limit float64) float64 {
	if e.inRun {
		panic("sim: Run called reentrantly")
	}
	e.inRun = true
	defer func() { e.inRun = false }()
	for len(e.events) > 0 {
		if e.events[0].t > limit {
			e.now = limit
			return e.now
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.t
		ev.fn()
	}
	if e.nprocs > 0 {
		var stuck []string
		for _, p := range e.procs {
			if !p.finished {
				stuck = append(stuck, p.Name)
				if len(stuck) == 100 {
					stuck = append(stuck, "...")
					break
				}
			}
		}
		panic(fmt.Sprintf("sim: deadlock: event queue empty with %d live process(es) parked at t=%g: %v",
			e.nprocs, e.now, stuck))
	}
	return e.now
}

// Proc is a simulation process: a goroutine that runs under the strict
// alternation protocol. All waiting methods (Delay, park) must be called
// from the process's own goroutine.
type Proc struct {
	env           *Env
	resume        chan struct{}
	Name          string
	parked        bool
	wakeScheduled bool
	finished      bool
	doneSig       *Signal
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Spawn creates a new process running fn. The process starts at the current
// virtual time (after already-scheduled events at this time). Spawn may be
// called from driver context before Run, or from any process or scheduler
// callback during the run.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, resume: make(chan struct{}), Name: name}
	p.doneSig = NewSignal(e)
	e.nprocs++
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume // wait for the start event
		fn(p)
		p.finished = true
		e.nprocs--
		p.doneSig.Fire(nil)
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, func() { e.wake(p) })
	return p
}

// Done returns a signal fired when the process function returns. Other
// processes can Wait on it to join.
func (p *Proc) Done() *Signal { return p.doneSig }

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }

// wake transfers control to p and blocks the scheduler until p parks again
// or finishes. Must be called in scheduler context only.
func (e *Env) wake(p *Proc) {
	p.wakeScheduled = false
	p.parked = false
	p.resume <- struct{}{}
	<-e.yield
}

// park suspends the calling process until some event wakes it. Must be
// called from the process's own goroutine.
func (p *Proc) park() {
	p.parked = true
	p.env.yield <- struct{}{}
	<-p.resume
}

// wakeLater schedules p to be resumed at the current virtual time. It is a
// no-op if a wake-up is already pending. It may be called from any context;
// the actual control transfer happens in scheduler context when the event
// fires.
func (e *Env) wakeLater(p *Proc) {
	if p.wakeScheduled || p.finished {
		return
	}
	p.wakeScheduled = true
	e.schedule(e.now, func() {
		if p.finished {
			return
		}
		e.wake(p)
	})
}

// Delay suspends the process for d virtual seconds. d <= 0 yields to other
// events scheduled at the current time and resumes immediately after them.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.schedule(e.now+d, func() { e.wake(p) })
	p.park()
}

// Now returns the current virtual time (convenience for p.Env().Now()).
func (p *Proc) Now() float64 { return p.env.now }
