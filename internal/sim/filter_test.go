package sim

import "testing"

// TestQueueFilterRemovesInFIFOOrder pins Filter's contract: removed items
// come back in their queue (FIFO) order, and the kept items preserve their
// relative order for subsequent Gets.
func TestQueueFilterRemovesInFIFOOrder(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	for i := 1; i <= 6; i++ {
		q.TryPut(i)
	}

	removed := q.Filter(func(v int) bool { return v%2 == 1 })
	if len(removed) != 3 || removed[0] != 2 || removed[1] != 4 || removed[2] != 6 {
		t.Fatalf("removed = %v, want [2 4 6]", removed)
	}

	var got []int
	env.Spawn("drain", func(p *Proc) {
		for q.Len() > 0 {
			v, _ := q.Get(p)
			got = append(got, v)
		}
	})
	env.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("kept = %v, want [1 3 5]", got)
	}
}

// TestQueueFilterEmptyAndKeepAll covers the no-op edges: filtering an empty
// queue and a filter that keeps everything both remove nothing.
func TestQueueFilterEmptyAndKeepAll(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env, 0)
	if removed := q.Filter(func(string) bool { return false }); len(removed) != 0 {
		t.Fatalf("filter of empty queue removed %v", removed)
	}
	q.TryPut("a")
	q.TryPut("b")
	if removed := q.Filter(func(string) bool { return true }); len(removed) != 0 {
		t.Fatalf("keep-all filter removed %v", removed)
	}
	if q.Len() != 2 {
		t.Fatalf("queue len = %d after keep-all filter, want 2", q.Len())
	}
}

// TestQueueFilterWakesBlockedPutter pins the capacity interaction used by
// node-death handling: purging items from a full queue must wake a producer
// blocked in Put, or a sender draining to a dead node would stall forever.
func TestQueueFilterWakesBlockedPutter(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 2)
	q.TryPut(10)
	q.TryPut(20)

	put := false
	env.Spawn("prod", func(p *Proc) {
		q.Put(p, 30) // blocks: the queue is full
		put = true
	})
	env.Spawn("chaos", func(p *Proc) {
		p.Delay(1e-3)
		if removed := q.Filter(func(v int) bool { return v != 10 }); len(removed) != 1 || removed[0] != 10 {
			t.Errorf("removed = %v, want [10]", removed)
		}
	})
	env.Run()

	if !put {
		t.Fatal("blocked Put did not complete after Filter opened capacity")
	}
	if q.Len() != 2 {
		t.Fatalf("queue len = %d, want 2 (20 and 30)", q.Len())
	}
}
