package native

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/kv"
)

func testRun(key, val string) *kv.Run {
	return kv.NewRun([]kv.Pair{{Key: []byte(key), Value: []byte(val)}}, false)
}

// TestStoreAddSpillError drives add into the spill path with an unwritable
// spill directory: the error must come back to the caller and via err().
func TestStoreAddSpillError(t *testing.T) {
	cfg := Config{
		Partitions:     4,
		CacheThreshold: 1, // every add over-budgets the cache
		SpillDir:       filepath.Join(t.TempDir(), "missing", "nested"),
	}.withDefaults()
	store := newPartitionStore(cfg)
	defer store.cleanup()

	var got error
	for i := 0; i < cfg.Partitions && got == nil; i++ {
		got = store.add(i, testRun(fmt.Sprintf("k%d", i), "v"))
	}
	if got == nil {
		t.Fatal("expected a spill error from an unwritable SpillDir")
	}
	store.fail(got)
	if store.err() == nil {
		t.Fatal("err() should surface the recorded failure")
	}
}

// TestStoreShardedConcurrentAdds hammers every partition from many
// goroutines with a tiny threshold (run under -race): all pairs must
// survive the spill/readback/compact machinery.
func TestStoreShardedConcurrentAdds(t *testing.T) {
	const parts, workers, perWorker = 16, 8, 50
	cfg := Config{
		Partitions:     parts,
		CacheThreshold: 256, // force constant spilling
		SpillDir:       t.TempDir(),
	}.withDefaults()
	store := newPartitionStore(cfg)
	defer store.cleanup()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g := (w*perWorker + i) % parts
				key := fmt.Sprintf("w%02d-i%03d", w, i)
				if err := store.add(g, testRun(key, "x")); err != nil {
					store.fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := store.err(); err != nil {
		t.Fatal(err)
	}
	if store.spillCount() == 0 {
		t.Fatal("expected spills under a 256-byte threshold")
	}
	if err := store.compactAll(4); err != nil {
		t.Fatal(err)
	}
	total := 0
	for g := 0; g < parts; g++ {
		iters, err := store.iterators(g)
		if err != nil {
			t.Fatal(err)
		}
		total += len(kv.Drain(kv.Merge(iters...)))
	}
	if want := workers * perWorker; total != want {
		t.Fatalf("drained %d pairs, want %d", total, want)
	}
}

// TestRunSurfacesStoreErrorWithoutDeadlock is the regression test for the
// pipeline deadlock: a partition worker that hits a store.add error used to
// return without draining partCh, wedging the map workers forever. The run
// must instead finish and surface the error.
func TestRunSurfacesStoreErrorWithoutDeadlock(t *testing.T) {
	data, _ := apps.WCData(9, 256<<10, 2000)
	blocks := dfs.SplitLines(data, 4<<10) // many chunks in flight
	spillDir := filepath.Join(t.TempDir(), "does-not-exist")
	done := make(chan error, 1)
	go func() {
		_, err := Run(apps.WordCount(), blocks, Config{
			Collector:        core.HashTable,
			CacheThreshold:   1 << 10,
			SpillDir:         spillDir,
			Buffering:        1,
			PartitionThreads: 1,
			KernelWorkers:    4,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a spill error, got success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked after a store error")
	}
}

// TestSpillStressManyPartitions runs a full job under heavy spill pressure
// with wide fan-out (run under -race in CI): spill + readback + compact
// under concurrency must preserve every count.
func TestSpillStressManyPartitions(t *testing.T) {
	data, want := apps.WCData(10, 512<<10, 1500)
	blocks := dfs.SplitLines(data, 2<<10)
	for _, compress := range []bool{false, true} {
		res, err := Run(apps.WordCount(), blocks, Config{
			Collector:        core.HashTable,
			KernelWorkers:    8,
			PartitionThreads: 8,
			Partitions:       32,
			Buffering:        3,
			CacheThreshold:   4 << 10,
			SpillDir:         t.TempDir(),
			Compress:         compress,
		})
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if res.SpillFiles == 0 {
			t.Fatalf("compress=%v: expected spill files", compress)
		}
		if err := apps.VerifyCounts(res.Output(), want); err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
	}
}
