package native

import (
	"bytes"
	"fmt"
	"testing"
)

func TestArenaCopyAndReset(t *testing.T) {
	var a arena
	// Copies must be stable and independent of the source buffer.
	src := []byte("hello")
	got := a.copyBytes(src)
	src[0] = 'X'
	if string(got) != "hello" {
		t.Fatalf("arena copy aliased its source: %q", got)
	}
	if a.copyBytes(nil) != nil || len(a.copyBytes([]byte{})) != 0 {
		t.Fatal("empty copies should be empty")
	}
	// Fill past a block boundary and with an oversized value.
	var vals [][]byte
	for i := 0; i < 2000; i++ {
		vals = append(vals, a.copyBytes([]byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte{'x'}, 100)))))
	}
	big := a.copyBytes(bytes.Repeat([]byte{'y'}, arenaBlockSize*2))
	for i, v := range vals {
		if want := fmt.Sprintf("value-%04d-", i); string(v[:len(want)]) != want {
			t.Fatalf("value %d corrupted: %q", i, v[:len(want)])
		}
	}
	if len(big) != arenaBlockSize*2 || big[0] != 'y' {
		t.Fatal("oversized copy corrupted")
	}
	// Reset reuses blocks: no growth when refilling the same volume.
	blocks := len(a.blocks)
	a.reset()
	for i := 0; i < 2000; i++ {
		a.copyBytes(bytes.Repeat([]byte{'z'}, 110))
	}
	if len(a.blocks) > blocks {
		t.Fatalf("arena grew after reset: %d -> %d blocks", blocks, len(a.blocks))
	}
}

func TestChunkStateReuse(t *testing.T) {
	// Two generations through the pool must not bleed state into each other.
	for gen := 0; gen < 3; gen++ {
		st := getChunkState()
		if len(st.entries) != 0 || len(st.out) != 0 || len(st.idx) != 0 {
			t.Fatalf("gen %d: dirty state from pool", gen)
		}
		for i := 0; i < 100; i++ {
			k := []byte(fmt.Sprintf("key-%d-%d", gen, i%10))
			st.hashEmit(k, []byte{byte(i)})
		}
		if len(st.entries) != 10 {
			t.Fatalf("gen %d: %d distinct keys, want 10", gen, len(st.entries))
		}
		for i := range st.entries {
			e := &st.entries[i]
			if len(e.vals) != 10 {
				t.Fatalf("gen %d: key %q chained %d values, want 10", gen, e.key, len(e.vals))
			}
		}
		st.release()
	}
}
