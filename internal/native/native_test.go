package native

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/workload"
)

func TestWordCountMatchesReference(t *testing.T) {
	data, want := apps.WCData(1, 512<<10, 3000)
	blocks := dfs.SplitLines(data, 32<<10)
	for _, cfg := range []Config{
		{Collector: core.HashTable, UseCombiner: true},
		{Collector: core.HashTable},
		{Collector: core.BufferPool},
		{Collector: core.HashTable, UseCombiner: true, Compress: true},
		{Collector: core.HashTable, UseCombiner: true, Buffering: 1, KernelWorkers: 1, PartitionThreads: 1, Partitions: 1},
	} {
		res, err := Run(apps.WordCount(), blocks, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if err := apps.VerifyCounts(res.Output(), want); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if res.Total <= 0 || res.InputBytes != int64(len(data)) {
			t.Fatalf("cfg %+v: bad accounting %+v", cfg, res)
		}
	}
}

func TestSpillToRealFiles(t *testing.T) {
	data, want := apps.WCData(2, 256<<10, 2000)
	blocks := dfs.SplitLines(data, 8<<10)
	for _, compress := range []bool{false, true} {
		res, err := Run(apps.WordCount(), blocks, Config{
			Collector:      core.HashTable,
			CacheThreshold: 8 << 10, // force spills
			SpillDir:       t.TempDir(),
			Compress:       compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.SpillFiles == 0 {
			t.Fatalf("compress=%v: expected spill files under an 8KiB cache threshold", compress)
		}
		if err := apps.VerifyCounts(res.Output(), want); err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
	}
}

func TestTeraSortNative(t *testing.T) {
	data := apps.TSData(3, 20000)
	blocks := dfs.SplitFixed(data, 64<<10, workload.TeraRecordSize)
	res, err := Run(apps.TeraSort(), blocks, Config{
		Collector:   core.BufferPool,
		Partitioner: apps.TeraPartitioner(data, 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyTeraSort(res.Output(), data); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansNative(t *testing.T) {
	data, spec := apps.KMData(4, 20000, 4, 32)
	blocks := dfs.SplitFixed(data, 16<<10, int64(spec.Dim*4))
	res, err := Run(apps.KMeans(spec), blocks, Config{
		Collector: core.HashTable, UseCombiner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyKMeans(res.Output(), data, spec); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulNative(t *testing.T) {
	spec := apps.MMSpec{N: 64, Tile: 16}
	input, a, b, err := apps.MMData(5, spec)
	if err != nil {
		t.Fatal(err)
	}
	blocks := dfs.SplitFixed(input, 32<<10, int64(spec.RecordSize()))
	res, err := Run(apps.MatMul(spec), blocks, Config{Collector: core.BufferPool})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyMatMul(res.Output(), a, b, spec); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(&core.App{Name: "x"}, nil, Config{}); err == nil {
		t.Error("app without kernels should fail")
	}
	if _, err := Run(apps.WordCount(), nil, Config{UseCombiner: true, Collector: core.BufferPool}); err == nil {
		t.Error("combiner with buffer pool should fail")
	}
	// Empty input is fine: empty output.
	res, err := Run(apps.WordCount(), nil, Config{Collector: core.HashTable})
	if err != nil || res.OutputPairs != 0 {
		t.Errorf("empty input: %v %+v", err, res)
	}
}

func TestQuickRandomNativeConfig(t *testing.T) {
	data, want := apps.WCData(6, 64<<10, 800)
	blocks := dfs.SplitLines(data, 4<<10)
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>8) % n
		}
		cfg := Config{
			KernelWorkers:    1 + next(8),
			PartitionThreads: 1 + next(8),
			Partitions:       1 + next(12),
			Buffering:        1 + next(3),
			Compress:         next(2) == 0,
		}
		if next(2) == 0 {
			cfg.Collector = core.HashTable
			cfg.UseCombiner = next(2) == 0
		} else {
			cfg.Collector = core.BufferPool
		}
		if next(3) == 0 {
			cfg.CacheThreshold = int64(1 << (10 + next(6)))
		}
		res, err := Run(apps.WordCount(), blocks, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := apps.CountsFromOutput(res.Output())
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelismActuallyHelps(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	// Compute-heavy KM: the parallel run should beat one worker. Wall
	// times are noisy, so only require SOME speedup over serial.
	data, spec := apps.KMData(7, 200000, 4, 64)
	blocks := dfs.SplitFixed(data, 64<<10, int64(spec.Dim*4))
	app := apps.KMeans(spec)
	run := func(workers int) float64 {
		res, err := Run(app, blocks, Config{
			Collector: core.HashTable, UseCombiner: true, KernelWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Total.Seconds()
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	t.Logf("serial %.3fs, parallel %.3fs (%.2fx)", serial, parallel, serial/parallel)
	if parallel > serial*1.1 {
		t.Errorf("parallel run (%.3fs) slower than serial (%.3fs)", parallel, serial)
	}
}

func ExampleRun() {
	blocks := [][]byte{[]byte("to be or not to be\n")}
	res, _ := Run(apps.WordCount(), blocks, Config{
		Collector: core.HashTable, UseCombiner: true, Partitions: 1,
	})
	counts, _ := apps.CountsFromOutput(res.Output())
	fmt.Println(counts["to"], counts["be"], counts["or"])
	// Output: 2 2 1
}
