// Package native executes Glasswing applications on the real host: the same
// 5-stage pipeline structure and the same App/collector semantics as the
// simulated engine in internal/core, but built from goroutines and channels,
// processing data with genuine parallelism and measuring wall-clock time.
//
// internal/core exists to reproduce the paper's cluster/GPU evaluation on
// simulated hardware; this package is the runtime a downstream user points
// at real bytes. The "compute device" is the host CPU (the paper's CPU
// driver with unified memory — Stage and Retrieve are no-ops), the "cluster"
// is one process, and the intermediate-data manager spills to real temporary
// files when the cache threshold is exceeded.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// Config tunes the native pipeline. The names mirror the paper's
// Configuration API where they apply to a single-host run.
type Config struct {
	// KernelWorkers is the map kernel worker pool size (0 = GOMAXPROCS),
	// the analog of the OpenCL global size on the CPU device.
	KernelWorkers int
	// PartitionThreads is N: concurrent partitioner workers.
	PartitionThreads int
	// Partitions is P: intermediate partitions (reduce parallelism).
	Partitions int
	// Buffering bounds how many chunks may be in flight between stages
	// (1-3, the paper's buffering levels; default 2).
	Buffering int
	// Collector picks the kernel output mechanism.
	Collector core.CollectorKind
	// UseCombiner aggregates each chunk's hash table with App.Combine.
	UseCombiner bool
	// Compress stores intermediate runs DEFLATE-compressed.
	Compress bool
	// CacheThreshold is the in-memory intermediate cache bound in bytes;
	// above it, partitions spill to temporary files (0 = never spill).
	CacheThreshold int64
	// MergeFanIn is the most cached runs a partition may hand directly to
	// its reducer; only partitions holding more are compacted in the merge
	// phase. The reducer's k-way merge visits each record once regardless
	// of fan-in, so compacting small run counts is pure extra work — a full
	// serialize/deserialize pass the reduce merge repeats anyway. 0 means
	// the default (32); 1 restores the historical compact-everything
	// behavior.
	MergeFanIn int
	// SpillDir receives spill files (default os.TempDir()).
	SpillDir string
	// Partitioner overrides hash partitioning.
	Partitioner func(key []byte, n int) int
	// Telemetry, if set, receives wall-clock stage spans (map/kernel,
	// map/partition, spill, merge, reduce) plus allocation and spill
	// counters. Nil keeps the hot path free of span and memory-stat
	// overhead; the cheap per-stage busy totals in Result.Stages are
	// collected either way.
	Telemetry *obs.Telemetry
}

func (c Config) withDefaults() Config {
	if c.KernelWorkers <= 0 {
		c.KernelWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PartitionThreads <= 0 {
		c.PartitionThreads = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if c.Partitions <= 0 {
		c.Partitions = max(1, runtime.GOMAXPROCS(0))
	}
	if c.Buffering <= 0 {
		c.Buffering = 2
	}
	if c.Buffering > 3 {
		c.Buffering = 3
	}
	if c.Partitioner == nil {
		c.Partitioner = kv.Partition
	}
	if c.MergeFanIn <= 0 {
		c.MergeFanIn = 32
	}
	return c
}

// Result reports a native run with wall-clock phase times.
type Result struct {
	App           string
	MapElapsed    time.Duration
	MergeDelay    time.Duration
	ReduceElapsed time.Duration
	Total         time.Duration

	// InputBytes and Pairs summarize the data volume.
	InputBytes        int64
	IntermediatePairs int
	OutputPairs       int
	SpillFiles        int
	// SpillBytes is the on-disk spill volume (after compression, if any).
	SpillBytes int64

	// Stages is the per-stage wall-clock busy time, summed across workers
	// (so a stage served by several goroutines can exceed the phase
	// elapsed time). Stages that never ran are absent.
	Stages map[string]time.Duration

	outputs [][]kv.Pair // per partition, key-sorted
}

// Output returns the final pairs in partition order; within a partition
// keys are sorted, so a range partitioner yields totally ordered output.
func (r *Result) Output() []kv.Pair {
	var out []kv.Pair
	for _, part := range r.outputs {
		out = append(out, part...)
	}
	return out
}

// Run executes app over the input blocks and returns the result. Blocks
// are the unit of map-chunk parallelism (split files on record boundaries;
// package dfs's SplitLines/SplitFixed do this for text and fixed records).
func Run(app *core.App, blocks [][]byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if app.Map == nil || app.Parse == nil {
		return nil, fmt.Errorf("native: app %q needs Parse and Map", app.Name)
	}
	if cfg.UseCombiner && (app.Combine == nil || cfg.Collector != core.HashTable) {
		return nil, fmt.Errorf("native: combiner requires App.Combine and the hash-table collector")
	}
	res := &Result{App: app.Name}
	for _, b := range blocks {
		res.InputBytes += int64(len(b))
	}
	start := time.Now()
	rec := newRecorder(cfg.Telemetry)

	store := newPartitionStore(cfg)
	store.rec = rec
	defer store.cleanup()

	// ---- Map phase: chunk pipeline with bounded in-flight buffers. ----
	// A chunk's output travels with its pooled state; the partition worker
	// releases the state once the output is serialized into runs. Batch
	// kernels fill the state's columnar batch; per-record kernels fill the
	// arena-backed pair slice.
	useBatch := app.MapBatch != nil && !cfg.UseCombiner
	type chunkOut struct {
		pairs []kv.Pair
		state *chunkState
	}
	chunkCh := make(chan []byte, cfg.Buffering)
	partCh := make(chan chunkOut, cfg.Buffering)

	var mapWG sync.WaitGroup
	for w := 0; w < cfg.KernelWorkers; w++ {
		mapWG.Add(1)
		go func() {
			defer mapWG.Done()
			for block := range chunkCh {
				end := rec.start(stageMapKernel)
				recs := app.Parse(block)
				var pairs []kv.Pair
				var state *chunkState
				var emitted int
				if useBatch {
					state = getChunkState()
					app.MapBatch(recs, &state.batch)
					emitted = state.batch.Len()
				} else {
					pairs, state = execChunk(app, cfg, recs)
					emitted = len(pairs)
				}
				end()
				rec.mapRecordsIn.Add(int64(len(recs)))
				rec.mapPairsOut.Add(int64(emitted))
				partCh <- chunkOut{pairs: pairs, state: state}
			}
		}()
	}

	var partWG sync.WaitGroup
	var interPairs atomic.Int64
	for w := 0; w < cfg.PartitionThreads; w++ {
		partWG.Add(1)
		go func() {
			defer partWG.Done()
			// Per-worker bucket buffers, reused across chunks (runs are
			// serialized before the next chunk overwrites them).
			buckets := make([][]kv.Pair, cfg.Partitions)
			for co := range partCh {
				// After a failure, keep draining partCh so map workers
				// blocked on send can finish; otherwise the pipeline
				// deadlocks and the error never surfaces.
				if store.err() != nil {
					co.state.release()
					continue
				}
				end := rec.start(stageMapPartition)
				var emitted int
				if useBatch {
					// Columnar path: counting-scatter the 12-byte index
					// entries by partition, sort each range in place, and
					// serialize it straight into a run — no []Pair
					// materialization, no sortedness re-verification.
					b := &co.state.batch
					emitted = b.Len()
					bounds := b.PartitionRanges(cfg.Partitioner, cfg.Partitions)
					for g := 0; g < cfg.Partitions; g++ {
						lo, hi := bounds[g], bounds[g+1]
						if lo == hi {
							continue
						}
						b.SortRange(lo, hi)
						run := b.RunRange(lo, hi, cfg.Compress)
						rec.partRecords.Add(int64(run.Records))
						rec.partRuns.Add(1)
						rec.partRawBytes.Add(run.RawBytes)
						rec.partStoredBytes.Add(run.StoredBytes())
						if err := store.add(g, run); err != nil {
							store.fail(err)
							break
						}
					}
				} else {
					emitted = len(co.pairs)
					for i := range buckets {
						buckets[i] = buckets[i][:0]
					}
					for _, pr := range co.pairs {
						g := cfg.Partitioner(pr.Key, cfg.Partitions)
						buckets[g] = append(buckets[g], pr)
					}
					for g, bucket := range buckets {
						if len(bucket) == 0 {
							continue
						}
						kv.SortPairs(bucket)
						run := kv.NewRun(bucket, cfg.Compress)
						rec.partRecords.Add(int64(run.Records))
						rec.partRuns.Add(1)
						rec.partRawBytes.Add(run.RawBytes)
						rec.partStoredBytes.Add(run.StoredBytes())
						if err := store.add(g, run); err != nil {
							store.fail(err)
							break
						}
					}
				}
				end()
				interPairs.Add(int64(emitted))
				co.state.release()
			}
		}()
	}

	for _, b := range blocks {
		chunkCh <- b
	}
	close(chunkCh)
	mapWG.Wait()
	close(partCh)
	partWG.Wait()
	if err := store.err(); err != nil {
		return nil, err
	}
	res.MapElapsed = time.Since(start)
	res.IntermediatePairs = int(interPairs.Load())

	// ---- Merge phase: compact every partition for cheap reduce fan-in. ----
	mergeStart := time.Now()
	if err := store.compactAll(cfg.PartitionThreads); err != nil {
		return nil, err
	}
	res.MergeDelay = time.Since(mergeStart)
	res.SpillFiles = store.spillCount()
	res.SpillBytes = rec.spillBytes.Load()

	// ---- Reduce phase: partitions in parallel. ----
	reduceStart := time.Now()
	res.outputs = make([][]kv.Pair, cfg.Partitions)
	var redWG sync.WaitGroup
	redErr := make(chan error, cfg.Partitions)
	sem := make(chan struct{}, cfg.KernelWorkers)
	for g := 0; g < cfg.Partitions; g++ {
		g := g
		redWG.Add(1)
		go func() {
			defer redWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			end := rec.start(stageReduce)
			out, err := reducePartition(app, store, g)
			end()
			if err != nil {
				redErr <- err
				return
			}
			res.outputs[g] = out
		}()
	}
	redWG.Wait()
	select {
	case err := <-redErr:
		return nil, err
	default:
	}
	res.ReduceElapsed = time.Since(reduceStart)
	res.Total = time.Since(start)
	for _, part := range res.outputs {
		res.OutputPairs += len(part)
	}
	res.Stages = rec.stages()
	rec.publish(res)
	return res, nil
}

// execChunk runs the map kernel over one chunk through the configured
// collector and returns the chunk's intermediate pairs. The pairs live in
// the returned pooled state's arena: the caller must release() the state
// once the pairs are consumed, and not touch them after.
//
// When the app has a batch kernel it runs once over the whole chunk and its
// output replays into the collector: the emit sequence is identical to the
// per-record path by construction (batch kernels process records in order),
// so collector and combiner behavior are byte-for-byte unchanged — but the
// per-record kernel shim's Batch setup cost is paid once per chunk, not
// once per record.
func execChunk(app *core.App, cfg Config, recs []kv.Pair) ([]kv.Pair, *chunkState) {
	st := getChunkState()
	feed := func(emit func(k, v []byte)) {
		for _, rec := range recs {
			app.Map(rec, emit)
		}
	}
	if app.MapBatch != nil {
		app.MapBatch(recs, &st.batch)
		feed = func(emit func(k, v []byte)) {
			for i := 0; i < st.batch.Len(); i++ {
				p := st.batch.Pair(i)
				emit(p.Key, p.Value)
			}
		}
	}
	if cfg.Collector == core.HashTable {
		feed(st.hashEmit)
		if cfg.UseCombiner {
			sink := st.poolEmit
			for i := range st.entries {
				e := &st.entries[i]
				app.Combine(e.key, e.vals, sink)
			}
		} else {
			for i := range st.entries {
				e := &st.entries[i]
				for _, v := range e.vals {
					st.out = append(st.out, kv.Pair{Key: e.key, Value: v})
				}
			}
		}
		return st.out, st
	}
	feed(st.poolEmit)
	return st.out, st
}

// reducePartition merges one partition's runs and applies the reduce kernel
// (or passes merged pairs through for reduce-less apps like TeraSort).
func reducePartition(app *core.App, store *partitionStore, g int) ([]kv.Pair, error) {
	rec := store.rec
	if rec == nil {
		rec = new(recorder) // store built without a recorder (tests): count into a discard
	}
	iters, err := store.iterators(g)
	if err != nil {
		return nil, err
	}
	merged := kv.Merge(iters...)
	if app.Reduce == nil && app.ReduceBatch == nil {
		out := kv.Drain(merged)
		rec.reduceRecordsIn.Add(int64(len(out)))
		rec.outputPairs.Add(int64(len(out)))
		return out, nil
	}
	if app.ReduceBatch != nil {
		// Batch path: the kernel appends output into one partition-owned
		// slab; the returned pairs are views into it (the slab outlives
		// them via the slice references), so there is no per-pair copy-out.
		batch := new(kv.Batch)
		gi := kv.NewGroupIter(merged)
		for {
			grp, ok := gi.Next()
			if !ok {
				break
			}
			rec.reduceRecordsIn.Add(int64(len(grp.Values)))
			rec.reduceGroupsIn.Add(1)
			app.ReduceBatch(grp.Key, grp.Values, batch)
		}
		out := batch.Pairs(nil)
		rec.outputPairs.Add(int64(len(out)))
		return out, nil
	}
	var out []kv.Pair
	gi := kv.NewGroupIter(merged)
	for {
		grp, ok := gi.Next()
		if !ok {
			rec.outputPairs.Add(int64(len(out)))
			return out, nil
		}
		rec.reduceRecordsIn.Add(int64(len(grp.Values)))
		rec.reduceGroupsIn.Add(1)
		app.Reduce(grp.Key, grp.Values, func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		})
	}
}
