package native

import (
	"compress/flate"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"glasswing/internal/kv"
)

// storeShard is one partition's slice of the store: its own lock, run list,
// spill-file list, and a cached-byte tally readable without the lock (the
// spill-victim scan reads P atomics instead of walking every run).
type storeShard struct {
	mu     sync.Mutex
	runs   []*kv.Run
	spills []string
	bytes  atomic.Int64
}

// partitionStore is the native intermediate-data manager: per-partition run
// lists cached in memory, spilled to real temporary files when the
// aggregate cache exceeds the configured threshold (§III-B scaled down to
// one host). The store is sharded per partition — add serializes only
// against writers of the same partition, never the whole store — and all
// methods are safe for concurrent use.
type partitionStore struct {
	cfg Config
	// rec, when set, times spill and merge work and counts spill bytes.
	rec *recorder

	shards      []storeShard
	cachedBytes atomic.Int64 // aggregate across shards
	nspill      atomic.Int64

	dirMu sync.Mutex
	dir   string

	errMu    sync.Mutex
	firstErr error
}

func newPartitionStore(cfg Config) *partitionStore {
	return &partitionStore{
		cfg:    cfg,
		shards: make([]storeShard, cfg.Partitions),
	}
}

func (s *partitionStore) fail(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.firstErr == nil {
		s.firstErr = err
	}
}

func (s *partitionStore) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// add appends a run to partition g — O(1) under g's shard lock only — then
// spills the fattest partition if the aggregate cache is over threshold.
func (s *partitionStore) add(g int, run *kv.Run) error {
	n := run.StoredBytes()
	sh := &s.shards[g]
	sh.mu.Lock()
	sh.runs = append(sh.runs, run)
	sh.bytes.Add(n)
	sh.mu.Unlock()
	if s.rec != nil {
		s.rec.storeAccepted.Add(int64(run.Records))
	}
	if total := s.cachedBytes.Add(n); s.cfg.CacheThreshold > 0 && total > s.cfg.CacheThreshold {
		return s.spillLargest()
	}
	return nil
}

// spillLargest picks the partition with the largest cached-byte tally (a
// lock-free scan of the per-shard counters), detaches its runs, and streams
// them into one spill file. Concurrent callers may race to the same victim;
// the loser finds it empty and simply returns.
func (s *partitionStore) spillLargest() error {
	big, bigBytes := -1, int64(0)
	for i := range s.shards {
		if b := s.shards[i].bytes.Load(); b > bigBytes {
			big, bigBytes = i, b
		}
	}
	if big < 0 {
		return nil
	}
	sh := &s.shards[big]
	sh.mu.Lock()
	runs := sh.runs
	sh.runs = nil
	var taken int64
	for _, r := range runs {
		taken += r.StoredBytes()
	}
	sh.bytes.Add(-taken)
	sh.mu.Unlock()
	if len(runs) == 0 {
		return nil
	}
	s.cachedBytes.Add(-taken)
	return s.spill(big, runs)
}

// spillDir lazily creates the temporary spill directory.
func (s *partitionStore) spillDir() (string, error) {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if s.dir == "" {
		dir, err := os.MkdirTemp(s.cfg.SpillDir, "glasswing-spill-")
		if err != nil {
			return "", fmt.Errorf("native: creating spill dir: %w", err)
		}
		s.dir = dir
	}
	return s.dir, nil
}

// spill merges runs and streams them into one spill file for partition g,
// DEFLATE-compressed when the job compresses intermediate data.
func (s *partitionStore) spill(g int, runs []*kv.Run) error {
	dir, err := s.spillDir()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("part%04d-%06d.run", g, s.nspill.Add(1)))
	end := s.rec.start(stageSpill)
	defer end()

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("native: creating spill: %w", err)
	}
	var out io.Writer = f
	if s.rec != nil {
		out = &countingWriter{w: f, n: &s.rec.spillBytes}
	}
	var sink = struct {
		write *kv.Writer
		close func() error
	}{}
	if s.cfg.Compress {
		fw, err := flate.NewWriter(out, flate.BestSpeed)
		if err != nil {
			f.Close()
			return err
		}
		sink.write = kv.NewWriter(fw)
		sink.close = func() error {
			if err := fw.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	} else {
		sink.write = kv.NewWriter(out)
		sink.close = f.Close
	}
	iters := make([]kv.Iterator, len(runs))
	for i, r := range runs {
		iters[i] = r.Iter()
	}
	merged := kv.Merge(iters...)
	for {
		p, ok := merged.Next()
		if !ok {
			break
		}
		if err := sink.write.Write(p); err != nil {
			sink.close()
			return fmt.Errorf("native: writing spill: %w", err)
		}
	}
	if err := sink.write.Flush(); err != nil {
		sink.close()
		return err
	}
	if err := sink.close(); err != nil {
		return fmt.Errorf("native: closing spill: %w", err)
	}
	if s.rec != nil {
		s.rec.spillRecords.Add(int64(sink.write.Count()))
		s.rec.spillRawBytes.Add(sink.write.Bytes())
	}
	sh := &s.shards[g]
	sh.mu.Lock()
	sh.spills = append(sh.spills, path)
	sh.mu.Unlock()
	return nil
}

// compactAll merges cached runs down to one, in parallel, for every
// partition holding more than the configured merge fan-in (a store built
// without defaults compacts anything with at least two runs).
func (s *partitionStore) compactAll(workers int) error {
	if workers < 1 {
		workers = 1
	}
	fanIn := s.cfg.MergeFanIn
	if fanIn < 1 {
		fanIn = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g := range s.shards {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sh := &s.shards[g]
			sh.mu.Lock()
			runs := sh.runs
			sh.mu.Unlock()
			if len(runs) < 2 || len(runs) <= fanIn {
				return
			}
			end := s.rec.start(stageMerge)
			defer end()
			merged := kv.MergeRuns(runs, s.cfg.Compress)
			var before int64
			var beforeRecs int
			for _, r := range runs {
				before += r.StoredBytes()
				beforeRecs += r.Records
			}
			if s.rec != nil {
				s.rec.mergeIn.Add(int64(beforeRecs))
				s.rec.mergeOut.Add(int64(merged.Records))
			}
			delta := merged.StoredBytes() - before
			sh.mu.Lock()
			sh.runs = []*kv.Run{merged}
			sh.bytes.Add(delta)
			sh.mu.Unlock()
			s.cachedBytes.Add(delta)
		}()
	}
	wg.Wait()
	return s.err()
}

// iterators returns sorted iterators over all of partition g's data
// (cached runs plus spill files read back from disk).
func (s *partitionStore) iterators(g int) ([]kv.Iterator, error) {
	sh := &s.shards[g]
	sh.mu.Lock()
	runs := sh.runs
	paths := sh.spills
	sh.mu.Unlock()
	var iters []kv.Iterator
	for _, r := range runs {
		iters = append(iters, r.Iter())
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("native: reading spill %s: %w", path, err)
		}
		var src = func() *kv.Reader {
			if s.cfg.Compress {
				return kv.NewReader(flate.NewReader(f))
			}
			return kv.NewReader(f)
		}()
		it := kv.NewStreamIter(src)
		// Spill files are modest; drain eagerly so the descriptor closes
		// before the merge begins.
		pairs := kv.Drain(it)
		f.Close()
		if err := it.Err(); err != nil {
			return nil, fmt.Errorf("native: decoding spill %s: %w", path, err)
		}
		iters = append(iters, kv.NewSliceIter(pairs))
	}
	return iters, nil
}

func (s *partitionStore) spillCount() int {
	return int(s.nspill.Load())
}

// cleanup removes the spill directory.
func (s *partitionStore) cleanup() {
	s.dirMu.Lock()
	dir := s.dir
	s.dirMu.Unlock()
	if dir != "" {
		os.RemoveAll(dir)
	}
}
