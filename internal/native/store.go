package native

import (
	"compress/flate"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"glasswing/internal/kv"
)

// partitionStore is the native intermediate-data manager: per-partition run
// lists cached in memory, spilled to real temporary files when the
// aggregate cache exceeds the configured threshold (§III-B scaled down to
// one host). All methods are safe for concurrent use.
type partitionStore struct {
	cfg Config

	mu          sync.Mutex
	cached      [][]*kv.Run // per partition
	cachedBytes int64
	spills      [][]string // per partition: spill file paths
	dir         string
	nspill      int
	firstErr    error
}

func newPartitionStore(cfg Config) *partitionStore {
	return &partitionStore{
		cfg:    cfg,
		cached: make([][]*kv.Run, cfg.Partitions),
		spills: make([][]string, cfg.Partitions),
	}
}

func (s *partitionStore) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstErr == nil {
		s.firstErr = err
	}
}

func (s *partitionStore) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// add appends a run to partition g, spilling the partition's cache to disk
// if the aggregate cache is over threshold.
func (s *partitionStore) add(g int, run *kv.Run) error {
	s.mu.Lock()
	s.cached[g] = append(s.cached[g], run)
	s.cachedBytes += run.StoredBytes()
	var toSpill []*kv.Run
	if s.cfg.CacheThreshold > 0 && s.cachedBytes > s.cfg.CacheThreshold {
		// Spill the largest partition (this one is as good a heuristic
		// as any under the lock; pick the biggest cache).
		big, bigBytes := -1, int64(0)
		for i, runs := range s.cached {
			var b int64
			for _, r := range runs {
				b += r.StoredBytes()
			}
			if b > bigBytes {
				big, bigBytes = i, b
			}
		}
		if big >= 0 {
			toSpill = s.cached[big]
			s.cached[big] = nil
			s.cachedBytes -= bigBytes
			g = big
		}
	}
	s.mu.Unlock()
	if toSpill == nil {
		return nil
	}
	return s.spill(g, toSpill)
}

// spill merges runs and streams them into one spill file for partition g,
// DEFLATE-compressed when the job compresses intermediate data.
func (s *partitionStore) spill(g int, runs []*kv.Run) error {
	s.mu.Lock()
	if s.dir == "" {
		dir, err := os.MkdirTemp(s.cfg.SpillDir, "glasswing-spill-")
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("native: creating spill dir: %w", err)
		}
		s.dir = dir
	}
	s.nspill++
	path := filepath.Join(s.dir, fmt.Sprintf("part%04d-%06d.run", g, s.nspill))
	s.mu.Unlock()

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("native: creating spill: %w", err)
	}
	var sink = struct {
		write *kv.Writer
		close func() error
	}{}
	if s.cfg.Compress {
		fw, err := flate.NewWriter(f, flate.BestSpeed)
		if err != nil {
			f.Close()
			return err
		}
		sink.write = kv.NewWriter(fw)
		sink.close = func() error {
			if err := fw.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	} else {
		sink.write = kv.NewWriter(f)
		sink.close = f.Close
	}
	iters := make([]kv.Iterator, len(runs))
	for i, r := range runs {
		iters[i] = r.Iter()
	}
	merged := kv.Merge(iters...)
	for {
		p, ok := merged.Next()
		if !ok {
			break
		}
		if err := sink.write.Write(p); err != nil {
			sink.close()
			return fmt.Errorf("native: writing spill: %w", err)
		}
	}
	if err := sink.write.Flush(); err != nil {
		sink.close()
		return err
	}
	if err := sink.close(); err != nil {
		return fmt.Errorf("native: closing spill: %w", err)
	}
	s.mu.Lock()
	s.spills[g] = append(s.spills[g], path)
	s.mu.Unlock()
	return nil
}

// compactAll merges each partition's cached runs down to one, in parallel.
func (s *partitionStore) compactAll(workers int) error {
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g := range s.cached {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.mu.Lock()
			runs := s.cached[g]
			s.mu.Unlock()
			if len(runs) < 2 {
				return
			}
			merged := kv.MergeRuns(runs, s.cfg.Compress)
			s.mu.Lock()
			s.cached[g] = []*kv.Run{merged}
			s.mu.Unlock()
		}()
	}
	wg.Wait()
	return s.err()
}

// iterators returns sorted iterators over all of partition g's data
// (cached runs plus spill files read back from disk).
func (s *partitionStore) iterators(g int) ([]kv.Iterator, error) {
	s.mu.Lock()
	runs := s.cached[g]
	paths := s.spills[g]
	s.mu.Unlock()
	var iters []kv.Iterator
	for _, r := range runs {
		iters = append(iters, r.Iter())
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("native: reading spill %s: %w", path, err)
		}
		var src = func() *kv.Reader {
			if s.cfg.Compress {
				return kv.NewReader(flate.NewReader(f))
			}
			return kv.NewReader(f)
		}()
		it := kv.NewStreamIter(src)
		// Spill files are modest; drain eagerly so the descriptor closes
		// before the merge begins.
		pairs := kv.Drain(it)
		f.Close()
		if err := it.Err(); err != nil {
			return nil, fmt.Errorf("native: decoding spill %s: %w", path, err)
		}
		iters = append(iters, kv.NewSliceIter(pairs))
	}
	return iters, nil
}

func (s *partitionStore) spillCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nspill
}

// cleanup removes the spill directory.
func (s *partitionStore) cleanup() {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		os.RemoveAll(dir)
	}
}
