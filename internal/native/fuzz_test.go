package native

import (
	"bytes"
	"testing"

	"glasswing/internal/kv"
)

// fuzzPairs derives a deterministic pair list from raw fuzz input, mirroring
// the scheme in internal/kv's fuzz targets so corpus entries transfer.
func fuzzPairs(data []byte) []kv.Pair {
	var pairs []kv.Pair
	for i := 0; i+2 < len(data) && len(pairs) < 512; {
		kl := int(data[i]%13) + 1
		vl := int(data[i+1] % 17)
		i += 2
		if i+kl+vl > len(data) {
			break
		}
		pairs = append(pairs, kv.Pair{Key: data[i : i+kl], Value: data[i+kl : i+kl+vl]})
		i += kl + vl
	}
	return pairs
}

// FuzzSpillMerge drives the native partitionStore through its full
// intermediate-data lifecycle — add runs, force disk spills with a tiny cache
// threshold, compact, read back through the k-way merge — and asserts the
// store neither loses, invents, nor reorders records: per partition the
// merged read-back is the key-then-value-sorted multiset of exactly the pairs
// routed there.
func FuzzSpillMerge(f *testing.F) {
	f.Add([]byte("\x02\x01the quick brown fox jumps over the lazy dog again and again"))
	f.Add([]byte{5, 0, 1, 4, 'k', 'e', 'y', 's', 1, 4, 'm', 'o', 'r', 'e'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		parts := int(data[0]%4) + 1
		compress := data[1]%2 == 1
		pairs := fuzzPairs(data[2:])

		cfg := Config{
			Partitions:     parts,
			Compress:       compress,
			CacheThreshold: 64, // tiny: nearly every add triggers a spill
			SpillDir:       t.TempDir(),
		}
		st := newPartitionStore(cfg)
		defer st.cleanup()

		// Route pairs to partitions and feed them in as small sorted runs,
		// exercising multi-run accumulation per partition.
		want := make([][]kv.Pair, parts)
		for _, p := range pairs {
			g := kv.Partition(p.Key, parts)
			want[g] = append(want[g], p)
		}
		for g, wp := range want {
			for i := 0; i < len(wp); i += 3 {
				end := i + 3
				if end > len(wp) {
					end = len(wp)
				}
				chunk := append([]kv.Pair(nil), wp[i:end]...)
				kv.SortPairs(chunk)
				if err := st.add(g, kv.NewRun(chunk, compress)); err != nil {
					t.Fatalf("add partition %d: %v", g, err)
				}
			}
		}
		if err := st.compactAll(2); err != nil {
			t.Fatalf("compactAll: %v", err)
		}

		for g := 0; g < parts; g++ {
			iters, err := st.iterators(g)
			if err != nil {
				t.Fatalf("iterators(%d): %v", g, err)
			}
			got := kv.Drain(kv.Merge(iters...))
			if !kv.PairsSorted(got) {
				t.Fatalf("partition %d merge output not sorted (%d pairs)", g, len(got))
			}
			exp := append([]kv.Pair(nil), want[g]...)
			kv.SortPairs(exp)
			if len(got) != len(exp) {
				t.Fatalf("partition %d: %d pairs read back, want %d", g, len(got), len(exp))
			}
			for i := range exp {
				if !bytes.Equal(exp[i].Key, got[i].Key) || !bytes.Equal(exp[i].Value, got[i].Value) {
					t.Fatalf("partition %d pair %d mismatch", g, i)
				}
			}
		}
	})
}
