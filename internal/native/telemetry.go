package native

import (
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"glasswing/internal/obs"
)

// Pipeline stage names for the native runtime's spans and Result.Stages.
// They reuse the sim trace vocabulary so both runtimes export onto the same
// Chrome-trace tracks.
const (
	stageMapKernel    = "map/kernel"
	stageMapPartition = "map/partition"
	stageSpill        = "spill"
	stageMerge        = "merge"
	stageReduce       = "reduce"
)

// recorder collects the native pipeline's wall-clock stage telemetry. The
// per-stage busy accumulators are plain atomics and always on (a handful of
// Add calls per chunk); spans, metrics and memory-stat deltas are recorded
// only when the caller supplied a Telemetry bundle, so benchmark runs stay
// undistorted. A nil recorder is inert.
type recorder struct {
	epoch time.Time
	tel   *obs.Telemetry

	mapKernelNs    atomic.Int64
	mapPartitionNs atomic.Int64
	spillNs        atomic.Int64
	mergeNs        atomic.Int64
	reduceNs       atomic.Int64

	chunks     atomic.Int64
	spillBytes atomic.Int64

	// Conservation ledger (the same conserv_* vocabulary as the sim core's
	// jobCounters): each pipeline boundary counts the records and bytes it
	// consumed and produced, so internal/conformance can prove the native
	// pipeline's bookkeeping balances. Always on — plain atomic adds.
	mapRecordsIn    atomic.Int64 // parsed records consumed by map kernels
	mapPairsOut     atomic.Int64 // pairs emitted by map kernels
	partRecords     atomic.Int64 // pairs serialized into partition runs
	partRuns        atomic.Int64 // runs produced by partition workers
	partRawBytes    atomic.Int64 // payload bytes entering runs
	partStoredBytes atomic.Int64 // encoded run bytes (post-compression)
	storeAccepted   atomic.Int64 // records accepted by the partition store
	spillRecords    atomic.Int64 // records written to spill files
	spillRawBytes   atomic.Int64 // payload bytes written to spill files
	mergeIn         atomic.Int64 // records entering compaction merges
	mergeOut        atomic.Int64 // records leaving compaction merges
	reduceRecordsIn atomic.Int64 // records fed into reduce-side merges
	reduceGroupsIn  atomic.Int64 // key groups consumed by reduce kernels
	outputPairs     atomic.Int64 // final pairs produced

	chunkHist *obs.Histogram
	memStart  runtime.MemStats
}

func newRecorder(tel *obs.Telemetry) *recorder {
	r := &recorder{epoch: time.Now(), tel: tel}
	if tel != nil {
		if tel.Metrics != nil {
			r.chunkHist = tel.Metrics.Histogram("native_chunk_seconds", obs.DefTimeBuckets)
		}
		runtime.ReadMemStats(&r.memStart)
	}
	return r
}

func (r *recorder) acc(stage string) *atomic.Int64 {
	switch stage {
	case stageMapKernel:
		return &r.mapKernelNs
	case stageMapPartition:
		return &r.mapPartitionNs
	case stageSpill:
		return &r.spillNs
	case stageMerge:
		return &r.mergeNs
	default:
		return &r.reduceNs
	}
}

// start begins one unit of stage work; the returned func ends it, adding the
// elapsed time to the stage accumulator and emitting a span when enabled.
func (r *recorder) start(stage string) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		r.acc(stage).Add(int64(d))
		if stage == stageMapKernel {
			r.chunks.Add(1)
			if r.chunkHist != nil {
				r.chunkHist.Observe(d.Seconds())
			}
		}
		if r.tel != nil && r.tel.Spans != nil {
			begin := t0.Sub(r.epoch).Seconds()
			r.tel.Spans.Span(obs.Span{Node: 0, Stage: stage, Start: begin, End: begin + d.Seconds()})
		}
	}
}

// stages snapshots the per-stage busy totals (stages that never ran are
// omitted).
func (r *recorder) stages() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range []struct {
		name string
		ns   *atomic.Int64
	}{
		{stageMapKernel, &r.mapKernelNs},
		{stageMapPartition, &r.mapPartitionNs},
		{stageSpill, &r.spillNs},
		{stageMerge, &r.mergeNs},
		{stageReduce, &r.reduceNs},
	} {
		if v := s.ns.Load(); v > 0 {
			out[s.name] = time.Duration(v)
		}
	}
	return out
}

// publish pushes the finished run's counters and gauges into the telemetry
// registry.
func (r *recorder) publish(res *Result) {
	if r.tel == nil || r.tel.Metrics == nil {
		return
	}
	reg := r.tel.Metrics
	reg.Counter("native_chunks_total").Add(r.chunks.Load())
	reg.Counter("native_intermediate_pairs_total").Add(int64(res.IntermediatePairs))
	reg.Counter("native_spill_files_total").Add(int64(res.SpillFiles))
	reg.Counter("native_spill_bytes_total").Add(res.SpillBytes)
	reg.Counter("native_output_pairs_total").Add(int64(res.OutputPairs))
	// Conservation ledger, under the shared conserv_* names so the same
	// reader handles both runtimes.
	reg.Counter("conserv_map_records_in_total").Add(r.mapRecordsIn.Load())
	reg.Counter("conserv_map_pairs_out_total").Add(r.mapPairsOut.Load())
	reg.Counter("conserv_partition_records_total").Add(r.partRecords.Load())
	reg.Counter("conserv_partition_runs_total").Add(r.partRuns.Load())
	reg.Counter("conserv_partition_raw_bytes_total").Add(r.partRawBytes.Load())
	reg.Counter("conserv_partition_stored_bytes_total").Add(r.partStoredBytes.Load())
	reg.Counter("conserv_store_accepted_records_total").Add(r.storeAccepted.Load())
	reg.Counter("conserv_spill_records_total").Add(r.spillRecords.Load())
	reg.Counter("conserv_spill_raw_bytes_total").Add(r.spillRawBytes.Load())
	reg.Counter("conserv_spill_stored_bytes_total").Add(r.spillBytes.Load())
	reg.Counter("conserv_merge_records_in_total").Add(r.mergeIn.Load())
	reg.Counter("conserv_merge_records_out_total").Add(r.mergeOut.Load())
	reg.Counter("conserv_reduce_records_in_total").Add(r.reduceRecordsIn.Load())
	reg.Counter("conserv_reduce_groups_in_total").Add(r.reduceGroupsIn.Load())
	reg.Counter("conserv_output_pairs_total").Add(r.outputPairs.Load())

	reg.Gauge("native_map_seconds").Set(res.MapElapsed.Seconds())
	reg.Gauge("native_merge_seconds").Set(res.MergeDelay.Seconds())
	reg.Gauge("native_reduce_seconds").Set(res.ReduceElapsed.Seconds())
	reg.Gauge("native_total_seconds").Set(res.Total.Seconds())

	// Allocation pressure across the run (ReadMemStats is stop-the-world,
	// so it only happens on instrumented runs).
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	reg.Gauge("native_mallocs_delta").Set(float64(m.Mallocs - r.memStart.Mallocs))
	reg.Gauge("native_heap_bytes_delta").Set(float64(m.TotalAlloc - r.memStart.TotalAlloc))
}

// countingWriter tallies bytes written through it into an atomic (spill
// volume as stored on disk, after any compression).
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
