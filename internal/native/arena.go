package native

import (
	"sync"

	"glasswing/internal/kv"
)

// arena is a chunk-scoped bump allocator for emitted key/value bytes. One
// emit costs a copy into the current block instead of a heap allocation;
// reset rewinds the cursor so pooled blocks are reused by the next chunk
// (the paper's per-emit buffer management done once per chunk, §IV-B1).
type arena struct {
	blocks [][]byte
	cur    int // block being filled
	off    int // write offset within blocks[cur]
}

// arenaBlockSize is the allocation granularity. Oversized values get a
// dedicated block; everything else packs into 64KiB slabs.
const arenaBlockSize = 64 << 10

// copyBytes copies b into the arena and returns the stable copy. The copy
// is valid until reset; callers hand these slices to kv.NewRun (which
// serializes them) before the owning chunk state is released.
func (a *arena) copyBytes(b []byte) []byte {
	n := len(b)
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.blocks) {
			blk := a.blocks[a.cur]
			if a.off+n <= len(blk) {
				dst := blk[a.off : a.off+n : a.off+n]
				copy(dst, b)
				a.off += n
				return dst
			}
			a.cur++
			a.off = 0
			continue
		}
		size := arenaBlockSize
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]byte, size))
	}
}

// reset rewinds the arena, keeping every block for reuse.
func (a *arena) reset() { a.cur, a.off = 0, 0 }

// hashEntry is one key's slot in the chunk hash collector: the arena-backed
// key and its chained values, in emission order.
type hashEntry struct {
	key  []byte
	vals [][]byte
}

// chunkState is the pooled per-chunk collector: the arena backing all
// emitted bytes, the hash-collector table, and the output pair buffer. A
// map worker acquires one per chunk, the partition worker releases it after
// the chunk's pairs are serialized into runs — so steady-state map output
// costs zero heap allocations beyond first-use pool warm-up.
type chunkState struct {
	ar      arena
	idx     map[string]int // key -> entries index
	entries []hashEntry
	out     []kv.Pair
	// batch is the columnar collector for batch-kernel chunks: the kernel
	// appends straight into its slab and the partition worker scatters,
	// sorts and serializes index ranges without ever materializing []Pair.
	batch kv.Batch
}

var chunkPool = sync.Pool{
	New: func() any { return &chunkState{idx: make(map[string]int, 256)} },
}

func getChunkState() *chunkState { return chunkPool.Get().(*chunkState) }

// release resets the state and returns it to the pool. The pairs returned
// by execChunk are dead after this call.
func (c *chunkState) release() {
	c.ar.reset()
	clear(c.idx)
	// Truncate entries without zeroing so each slot's vals slice keeps its
	// capacity for the next chunk (see addKey).
	c.entries = c.entries[:0]
	c.out = c.out[:0]
	c.batch.Reset()
	chunkPool.Put(c)
}

// addKey claims the next entry slot for key, reusing the slot's previous
// vals capacity when the backing array is still there.
func (c *chunkState) addKey(key []byte) int {
	if len(c.entries) < cap(c.entries) {
		c.entries = c.entries[:len(c.entries)+1]
		e := &c.entries[len(c.entries)-1]
		e.key = key
		e.vals = e.vals[:0]
	} else {
		c.entries = append(c.entries, hashEntry{key: key})
	}
	return len(c.entries) - 1
}

// hashEmit is the hash-table collector: one slot per distinct key, values
// chained in arena memory. The only per-key heap cost is the map key
// string; per-value cost is an arena copy.
func (c *chunkState) hashEmit(k, v []byte) {
	i, ok := c.idx[string(k)] // no alloc: map lookup with converted key
	if !ok {
		key := c.ar.copyBytes(k)
		i = c.addKey(key)
		c.idx[string(key)] = i
	}
	e := &c.entries[i]
	e.vals = append(e.vals, c.ar.copyBytes(v))
}

// poolEmit is the buffer-pool collector (and the combiner's output sink):
// pairs appended directly, bytes in the arena.
func (c *chunkState) poolEmit(k, v []byte) {
	c.out = append(c.out, kv.Pair{Key: c.ar.copyBytes(k), Value: c.ar.copyBytes(v)})
}
