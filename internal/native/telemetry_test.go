package native

import (
	"strings"
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/dfs"
	"glasswing/internal/obs"
)

// An instrumented run must report nonzero wall-clock busy time for every
// pipeline stage it executes, emit matching spans, and publish its counters.
func TestTelemetryInstrumentsEveryStage(t *testing.T) {
	data, want := apps.WCData(9, 256<<10, 2000)
	blocks := dfs.SplitLines(data, 16<<10)
	tel := obs.NewTelemetry()
	res, err := Run(apps.WordCount(), blocks, Config{
		Partitions: 4,
		// Low enough that spills trigger, high enough that partitions still
		// hold several cached runs for compactAll to merge.
		CacheThreshold: 64 << 10,
		// Force compaction regardless of run count: this test asserts every
		// stage (including merge) reports busy time.
		MergeFanIn: 1,
		Telemetry:  tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.SpillFiles == 0 || res.SpillBytes == 0 {
		t.Fatalf("expected spills: files=%d bytes=%d", res.SpillFiles, res.SpillBytes)
	}

	// Every stage that ran reports nonzero busy time.
	for _, stage := range []string{stageMapKernel, stageMapPartition, stageSpill, stageMerge, stageReduce} {
		if res.Stages[stage] <= 0 {
			t.Errorf("stage %q busy = %v, want > 0 (stages: %v)", stage, res.Stages[stage], res.Stages)
		}
	}

	// Spans cover the same stages, with sane bounds.
	seen := map[string]bool{}
	for _, s := range tel.Spans.Spans() {
		seen[s.Stage] = true
		if s.End <= s.Start || s.Start < 0 {
			t.Errorf("bad span %+v", s)
		}
	}
	for stage := range res.Stages {
		if !seen[stage] {
			t.Errorf("no span for stage %q (saw %v)", stage, seen)
		}
	}

	// Metrics: counters and gauges reflect the run.
	reg := tel.Metrics
	if got := reg.Counter("native_chunks_total").Value(); got != int64(len(blocks)) {
		t.Errorf("chunks counter = %d, want %d", got, len(blocks))
	}
	if got := reg.Counter("native_spill_bytes_total").Value(); got != res.SpillBytes {
		t.Errorf("spill bytes counter = %d, want %d", got, res.SpillBytes)
	}
	if got := reg.Counter("native_output_pairs_total").Value(); got != int64(res.OutputPairs) {
		t.Errorf("output pairs counter = %d, want %d", got, res.OutputPairs)
	}
	if reg.Gauge("native_total_seconds").Value() <= 0 {
		t.Error("total seconds gauge not set")
	}
	if reg.Histogram("native_chunk_seconds", nil).Count() != int64(len(blocks)) {
		t.Error("chunk histogram count mismatch")
	}
	if reg.Gauge("native_mallocs_delta").Value() <= 0 {
		t.Error("mallocs delta not recorded")
	}

	// The span set renders as a Chrome trace with native tracks present.
	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, tel.Spans.Spans()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"map/kernel"`) || !strings.Contains(sb.String(), `"spill"`) {
		t.Error("chrome trace missing native stage tracks")
	}
}

// Without a Telemetry bundle the cheap busy totals are still collected, but
// no spans exist anywhere to leak.
func TestStagesCollectedWithoutTelemetry(t *testing.T) {
	data, want := apps.WCData(10, 64<<10, 500)
	blocks := dfs.SplitLines(data, 16<<10)
	res, err := Run(apps.WordCount(), blocks, Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.Stages[stageMapKernel] <= 0 || res.Stages[stageReduce] <= 0 {
		t.Errorf("busy totals missing without telemetry: %v", res.Stages)
	}
}
