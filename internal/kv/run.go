package kv

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Run is a sorted batch of pairs in serialized (and optionally compressed)
// form — the unit in which Glasswing stores intermediate data in its
// partition cache, on disk, and on the wire (the paper stores all
// intermediate Partitions "in a serialized and compressed form", §III-B).
type Run struct {
	blob       []byte
	Records    int
	RawBytes   int64 // payload volume before encoding
	Compressed bool
}

// NewRun serializes sorted pairs into a run. It panics if the pairs are not
// sorted — runs exist to be merged.
func NewRun(pairs []Pair, compress bool) *Run {
	if !PairsSorted(pairs) {
		panic("kv: NewRun on unsorted pairs")
	}
	var raw int64
	for _, p := range pairs {
		raw += p.Size()
	}
	blob := Marshal(pairs)
	if compress {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			panic(fmt.Sprintf("kv: flate writer: %v", err))
		}
		if _, err := w.Write(blob); err != nil {
			panic(fmt.Sprintf("kv: compressing run: %v", err))
		}
		if err := w.Close(); err != nil {
			panic(fmt.Sprintf("kv: closing compressor: %v", err))
		}
		blob = buf.Bytes()
	}
	return &Run{blob: blob, Records: len(pairs), RawBytes: raw, Compressed: compress}
}

// StoredBytes returns the encoded size: what the run costs on disk and on
// the network.
func (r *Run) StoredBytes() int64 { return int64(len(r.blob)) }

// Blob exposes the encoded bytes for transport. Callers must not mutate
// the returned slice — it is the run's backing store.
func (r *Run) Blob() []byte { return r.blob }

// RunFromBlob reconstructs a run received over the wire from its encoded
// bytes and metadata. The blob is retained, not copied.
func RunFromBlob(blob []byte, records int, rawBytes int64, compressed bool) *Run {
	return &Run{blob: blob, Records: records, RawBytes: rawBytes, Compressed: compressed}
}

// Pairs decodes the run back into sorted pairs.
func (r *Run) Pairs() ([]Pair, error) {
	blob := r.blob
	if r.Compressed {
		rd := flate.NewReader(bytes.NewReader(blob))
		dec, err := io.ReadAll(rd)
		if err != nil {
			return nil, fmt.Errorf("kv: decompressing run: %w", err)
		}
		if err := rd.Close(); err != nil {
			return nil, err
		}
		blob = dec
	}
	return Unmarshal(blob)
}

// Iter returns an iterator over the run's pairs. Decoding errors panic: a
// run that fails to decode is a corrupted simulation artifact, not a
// recoverable condition.
func (r *Run) Iter() Iterator {
	pairs, err := r.Pairs()
	if err != nil {
		panic(err)
	}
	return NewSliceIter(pairs)
}

// MergeRuns merges several runs into one.
func MergeRuns(runs []*Run, compress bool) *Run {
	iters := make([]Iterator, len(runs))
	for i, r := range runs {
		iters[i] = r.Iter()
	}
	return NewRun(Drain(Merge(iters...)), compress)
}
