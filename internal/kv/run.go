package kv

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Run is a sorted batch of pairs in serialized (and optionally compressed)
// form — the unit in which Glasswing stores intermediate data in its
// partition cache, on disk, and on the wire (the paper stores all
// intermediate Partitions "in a serialized and compressed form", §III-B).
type Run struct {
	blob       []byte
	Records    int
	RawBytes   int64 // payload volume before encoding
	Compressed bool

	// view marks a run whose blob aliases a caller-owned buffer (e.g. a
	// network receive frame). Retain upgrades a view to an owning run.
	view bool
}

// Deflate compresses blob with DEFLATE at BestSpeed. Compression failures
// on an in-memory buffer are programming errors, hence the panics.
func Deflate(blob []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("kv: flate writer: %v", err))
	}
	if _, err := w.Write(blob); err != nil {
		panic(fmt.Sprintf("kv: compressing run: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("kv: closing compressor: %v", err))
	}
	return buf.Bytes()
}

// Inflate decompresses a DEFLATE blob.
func Inflate(blob []byte) ([]byte, error) {
	rd := flate.NewReader(bytes.NewReader(blob))
	dec, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("kv: inflating: %w", err)
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}
	return dec, nil
}

// NewRun serializes sorted pairs into a run. It panics if the pairs are not
// sorted — runs exist to be merged.
func NewRun(pairs []Pair, compress bool) *Run {
	if !PairsSorted(pairs) {
		panic("kv: NewRun on unsorted pairs")
	}
	var raw int64
	for _, p := range pairs {
		raw += p.Size()
	}
	blob := Marshal(pairs)
	if compress {
		blob = Deflate(blob)
	}
	return &Run{blob: blob, Records: len(pairs), RawBytes: raw, Compressed: compress}
}

// StoredBytes returns the encoded size: what the run costs on disk and on
// the network.
func (r *Run) StoredBytes() int64 { return int64(len(r.blob)) }

// Blob exposes the encoded bytes for transport. Callers must not mutate
// the returned slice — it is the run's backing store.
func (r *Run) Blob() []byte { return r.blob }

// RunFromBlob reconstructs a run received over the wire from its encoded
// bytes and metadata. The blob is retained, not copied, and the run takes
// ownership: the caller must not reuse or mutate it afterwards.
func RunFromBlob(blob []byte, records int, rawBytes int64, compressed bool) *Run {
	return &Run{blob: blob, Records: records, RawBytes: rawBytes, Compressed: compressed}
}

// NewRunView wraps encoded bytes without copying or taking ownership: the
// run aliases blob, which the caller may later overwrite (a pooled receive
// buffer, a reused frame). A view is valid only until its backing buffer
// is reused; call Retain to keep it beyond that point. Pairs decoded from
// an uncompressed view alias the same buffer and share its lifetime.
func NewRunView(blob []byte, records int, rawBytes int64, compressed bool) *Run {
	return &Run{blob: blob, Records: records, RawBytes: rawBytes, Compressed: compressed, view: true}
}

// Owned reports whether the run owns its backing bytes (false for a view
// that has not been retained).
func (r *Run) Owned() bool { return !r.view }

// Retain upgrades a view into an owning run by copying its blob out of the
// caller's buffer — copy-on-retain. It is a no-op on runs that already own
// their bytes, so it is always safe to call before storing a run whose
// provenance is unknown.
func (r *Run) Retain() {
	if r.view {
		r.blob = append([]byte(nil), r.blob...)
		r.view = false
	}
}

// Pairs decodes the run back into sorted pairs. For an uncompressed run
// the pairs alias the run's blob (and, for an unretained view, the buffer
// behind it).
func (r *Run) Pairs() ([]Pair, error) {
	blob := r.blob
	if r.Compressed {
		dec, err := Inflate(blob)
		if err != nil {
			return nil, fmt.Errorf("kv: decompressing run: %w", err)
		}
		blob = dec
	}
	return Unmarshal(blob)
}

// Iter returns an iterator over the run's pairs. Decoding errors panic: a
// run that fails to decode is a corrupted simulation artifact, not a
// recoverable condition.
func (r *Run) Iter() Iterator {
	pairs, err := r.Pairs()
	if err != nil {
		panic(err)
	}
	return NewSliceIter(pairs)
}

// MergeRuns merges several runs into one.
func MergeRuns(runs []*Run, compress bool) *Run {
	iters := make([]Iterator, len(runs))
	for i, r := range runs {
		iters[i] = r.Iter()
	}
	return NewRun(Drain(Merge(iters...)), compress)
}
