// Package kv provides the key/value machinery shared by all three MapReduce
// engines in this repository: pair representation, a compact length-prefixed
// wire/disk encoding with optional DEFLATE compression, in-memory sort
// buffers, k-way merge of sorted runs, and key grouping for reduction.
//
// Keys are ordered by bytes.Compare, matching Hadoop's BytesWritable and the
// paper's TeraSort semantics.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"slices"
)

// Pair is one key/value record.
type Pair struct {
	Key   []byte
	Value []byte
}

// Size returns the payload size in bytes (key + value).
func (p Pair) Size() int64 { return int64(len(p.Key) + len(p.Value)) }

// Compare orders pairs by key, then by value for determinism.
func (p Pair) Compare(q Pair) int {
	if c := bytes.Compare(p.Key, q.Key); c != 0 {
		return c
	}
	return bytes.Compare(p.Value, q.Value)
}

// Hash returns a stable 32-bit FNV-1a hash of the key, used for
// partitioning. Applications may override partitioning with their own
// function (the paper's Configuration API allows overloading the hash).
func Hash(key []byte) uint32 {
	h := fnv.New32a()
	h.Write(key)
	return h.Sum32()
}

// Partition maps a key to one of n partitions.
func Partition(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash(key) % uint32(n))
}

// SortPairs orders pairs by key (then value) in place. This is the shared
// sort path for every engine's partition buffers: slices.SortFunc on the
// method expression avoids the closure state and interface boxing of
// sort.Slice.
func SortPairs(pairs []Pair) { slices.SortFunc(pairs, Pair.Compare) }

// PairsSorted reports whether pairs are in key-then-value order.
func PairsSorted(pairs []Pair) bool { return slices.IsSortedFunc(pairs, Pair.Compare) }

// Buffer accumulates pairs in memory and tracks their payload volume.
type Buffer struct {
	Pairs []Pair
	bytes int64
}

// Add appends a pair.
func (b *Buffer) Add(p Pair) {
	b.Pairs = append(b.Pairs, p)
	b.bytes += p.Size()
}

// AddKV appends a key/value pair.
func (b *Buffer) AddKV(key, value []byte) { b.Add(Pair{Key: key, Value: value}) }

// Len returns the number of pairs.
func (b *Buffer) Len() int { return len(b.Pairs) }

// Bytes returns the accumulated payload volume.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Sort orders the pairs by key (then value) in place.
func (b *Buffer) Sort() { SortPairs(b.Pairs) }

// Sorted reports whether the buffer is in key order.
func (b *Buffer) Sorted() bool { return PairsSorted(b.Pairs) }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() {
	b.Pairs = b.Pairs[:0]
	b.bytes = 0
}

// Marshal encodes pairs as varint-length-prefixed frames:
// uvarint(count), then per pair uvarint(len(key)), uvarint(len(value)),
// key bytes, value bytes.
func Marshal(pairs []Pair) []byte {
	var size int
	for _, p := range pairs {
		size += 2*binary.MaxVarintLen32 + len(p.Key) + len(p.Value)
	}
	buf := make([]byte, 0, size+binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(pairs)))
	buf = append(buf, tmp[:n]...)
	for _, p := range pairs {
		n = binary.PutUvarint(tmp[:], uint64(len(p.Key)))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(len(p.Value)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, p.Key...)
		buf = append(buf, p.Value...)
	}
	return buf
}

// Unmarshal decodes a blob produced by Marshal.
func Unmarshal(blob []byte) ([]Pair, error) {
	rd := bytes.NewReader(blob)
	count, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("kv: reading pair count: %w", err)
	}
	// Every pair carries at least two framing bytes, so a count beyond the
	// blob size is corrupt; rejecting it here also bounds the preallocation
	// against hostile counts.
	if count > uint64(len(blob)) {
		return nil, fmt.Errorf("kv: pair count %d exceeds blob size %d", count, len(blob))
	}
	pairs := make([]Pair, 0, count)
	for i := uint64(0); i < count; i++ {
		kl, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("kv: pair %d key length: %w", i, err)
		}
		vl, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("kv: pair %d value length: %w", i, err)
		}
		// Validate in uint64 space before any int conversion: lengths near
		// 2^63 would otherwise overflow the bounds arithmetic.
		rem := uint64(rd.Len())
		if kl > rem || vl > rem-kl {
			return nil, fmt.Errorf("kv: pair %d overruns blob (%d+%d > %d remaining)", i, kl, vl, rem)
		}
		off := len(blob) - rd.Len()
		key := blob[off : off+int(kl)]
		val := blob[off+int(kl) : off+int(kl)+int(vl)]
		pairs = append(pairs, Pair{Key: key, Value: val})
		if _, err := rd.Seek(int64(kl+vl), 1); err != nil {
			return nil, err
		}
	}
	return pairs, nil
}
