package kv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomPairs builds count pairs with small random keys/values, biased so
// duplicate keys occur (exercising the value tie-break).
func randomPairs(rng *rand.Rand, count int) []Pair {
	pairs := make([]Pair, count)
	for i := range pairs {
		key := make([]byte, rng.Intn(6)+1)
		for j := range key {
			key[j] = byte('a' + rng.Intn(4)) // tiny alphabet: collisions guaranteed
		}
		val := make([]byte, rng.Intn(8))
		rng.Read(val)
		pairs[i] = Pair{Key: key, Value: val}
	}
	return pairs
}

// TestQuickSortPairsAgainstStdlib pits SortPairs and PairsSorted against the
// standard library's sort on the same comparator: both must agree on the
// ordering and on the sortedness predicate.
func TestQuickSortPairsAgainstStdlib(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng, int(n))
		ref := append([]Pair(nil), pairs...)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Compare(ref[j]) < 0 })

		SortPairs(pairs)
		if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Compare(pairs[j]) < 0 }) {
			return false
		}
		if PairsSorted(pairs) != true {
			return false
		}
		for i := range pairs {
			if pairs[i].Compare(ref[i]) != 0 {
				return false
			}
		}
		// PairsSorted must agree with the stdlib predicate on arbitrary
		// (mostly unsorted) slices too.
		shuffled := randomPairs(rng, int(n))
		return PairsSorted(shuffled) ==
			sort.SliceIsSorted(shuffled, func(i, j int) bool { return shuffled[i].Compare(shuffled[j]) < 0 })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartitionStable checks the default partitioner's contract: the
// result is always in [0, n), depends only on the key bytes (equal keys —
// even aliased vs copied — always land together), and is deterministic
// across calls.
func TestQuickPartitionStable(t *testing.T) {
	prop := func(key []byte, n uint8) bool {
		parts := int(n%32) + 1
		p := Partition(key, parts)
		if p < 0 || p >= parts {
			return false
		}
		cp := append([]byte(nil), key...)
		return Partition(cp, parts) == p && Partition(key, parts) == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
