package kv

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
)

// pairIdx locates one pair inside a Batch slab: the key starts at off, the
// value follows it immediately. Twelve bytes per record keeps sort swaps and
// partition scatter cheap — moving an index entry never moves payload.
type pairIdx struct {
	off  uint32
	klen uint32
	vlen uint32
}

// Batch is a columnar accumulation buffer for pairs: all key and value
// bytes live in one contiguous slab, with a parallel index slice locating
// each record. It is the batch-kernel currency — map kernels append into a
// Batch, the partitioner permutes only the 12-byte index entries, and a
// sorted index range serializes straight into a Run without touching
// intermediate []Pair storage. Appending is amortized allocation-free
// (slab and index double like any slice), and Reset retains capacity so a
// pooled Batch stops allocating entirely once warm.
//
// A Batch is not safe for concurrent use.
type Batch struct {
	data []byte
	idx  []pairIdx

	// scatter scratch, reused across PartitionRanges calls
	alt    []pairIdx
	parts  []uint32
	bounds []int

	bytes int64
}

// Len returns the number of pairs.
func (b *Batch) Len() int { return len(b.idx) }

// Bytes returns the accumulated payload volume (keys + values).
func (b *Batch) Bytes() int64 { return b.bytes }

// AppendKV copies a key/value pair into the slab.
func (b *Batch) AppendKV(key, value []byte) {
	off := len(b.data)
	if off+len(key)+len(value) > math.MaxUint32 {
		panic("kv: Batch slab exceeds 4GiB")
	}
	b.data = append(b.data, key...)
	b.data = append(b.data, value...)
	b.idx = append(b.idx, pairIdx{off: uint32(off), klen: uint32(len(key)), vlen: uint32(len(value))})
	b.bytes += int64(len(key) + len(value))
}

// Append copies a pair into the slab.
func (b *Batch) Append(p Pair) { b.AppendKV(p.Key, p.Value) }

// Pair returns record i as views aliasing the slab. The views are valid
// until the next Reset; appends never move them logically (slab growth
// copies, but the returned header was captured before).
func (b *Batch) Pair(i int) Pair {
	e := b.idx[i]
	return Pair{
		Key:   b.data[e.off : e.off+e.klen : e.off+e.klen],
		Value: b.data[e.off+e.klen : e.off+e.klen+e.vlen : e.off+e.klen+e.vlen],
	}
}

// Pairs appends views of every record to dst and returns it. The views
// alias the slab and share its lifetime.
func (b *Batch) Pairs(dst []Pair) []Pair {
	if cap(dst)-len(dst) < len(b.idx) {
		grown := make([]Pair, len(dst), len(dst)+len(b.idx))
		copy(grown, dst)
		dst = grown
	}
	for i := range b.idx {
		dst = append(dst, b.Pair(i))
	}
	return dst
}

// Reset empties the batch, retaining slab and index capacity.
func (b *Batch) Reset() {
	b.data = b.data[:0]
	b.idx = b.idx[:0]
	b.bytes = 0
}

func (b *Batch) compareIdx(x, y pairIdx) int {
	if c := bytes.Compare(b.data[x.off:x.off+x.klen], b.data[y.off:y.off+y.klen]); c != 0 {
		return c
	}
	return bytes.Compare(b.data[x.off+x.klen:x.off+x.klen+x.vlen],
		b.data[y.off+y.klen:y.off+y.klen+y.vlen])
}

// Sort orders the whole batch by key (then value). Only index entries move.
func (b *Batch) Sort() { b.SortRange(0, len(b.idx)) }

// SortRange orders records [lo,hi) by key (then value) in place.
func (b *Batch) SortRange(lo, hi int) {
	slices.SortFunc(b.idx[lo:hi], b.compareIdx)
}

// PartitionRanges reorders the index so records are grouped by partition
// (a stable counting-sort scatter: two passes over the index, no payload
// movement) and returns the group boundaries: partition p occupies records
// [bounds[p], bounds[p+1]). The returned slice is scratch owned by the
// batch — valid until the next PartitionRanges call.
func (b *Batch) PartitionRanges(part func(key []byte, n int) int, n int) []int {
	m := len(b.idx)
	if cap(b.parts) < m {
		b.parts = make([]uint32, m)
	}
	parts := b.parts[:m]
	if cap(b.bounds) < n+1 {
		b.bounds = make([]int, n+1)
	}
	bounds := b.bounds[:n+1]
	for i := range bounds {
		bounds[i] = 0
	}
	for i, e := range b.idx {
		p := part(b.data[e.off:e.off+e.klen], n)
		parts[i] = uint32(p)
		bounds[p+1]++
	}
	for p := 0; p < n; p++ {
		bounds[p+1] += bounds[p]
	}
	if cap(b.alt) < m {
		b.alt = make([]pairIdx, m)
	}
	alt := b.alt[:m]
	var cur [64]int
	var cursor []int
	if n <= len(cur) {
		cursor = cur[:n]
	} else {
		cursor = make([]int, n)
	}
	copy(cursor, bounds[:n])
	for i, e := range b.idx {
		p := parts[i]
		alt[cursor[p]] = e
		cursor[p]++
	}
	b.idx, b.alt = alt, b.idx[:0]
	return bounds
}

// RunRange serializes records [lo,hi) — which must already be sorted, e.g.
// by SortRange — directly into a Run. The encoded size is computed exactly
// up front, so the blob is built in a single allocation with no growth
// copies, and the sortedness re-verification of NewRun is skipped: the
// batch sorted this range itself.
func (b *Batch) RunRange(lo, hi int, compress bool) *Run {
	var raw, enc int64
	for _, e := range b.idx[lo:hi] {
		raw += int64(e.klen) + int64(e.vlen)
		enc += int64(uvarintLen(uint64(e.klen))) + int64(uvarintLen(uint64(e.vlen)))
	}
	enc += raw + int64(uvarintLen(uint64(hi-lo)))
	blob := make([]byte, 0, enc)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(hi-lo))
	blob = append(blob, tmp[:n]...)
	for _, e := range b.idx[lo:hi] {
		n = binary.PutUvarint(tmp[:], uint64(e.klen))
		blob = append(blob, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(e.vlen))
		blob = append(blob, tmp[:n]...)
		blob = append(blob, b.data[e.off:e.off+e.klen+e.vlen]...)
	}
	if compress {
		blob = Deflate(blob)
	}
	return &Run{blob: blob, Records: hi - lo, RawBytes: raw, Compressed: compress}
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
