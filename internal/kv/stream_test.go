package kv

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestStreamRoundTrip(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: nil, Value: []byte("empty key")},
		{Key: []byte("c"), Value: nil},
		{Key: bytes.Repeat([]byte("k"), 300), Value: bytes.Repeat([]byte("v"), 4000)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(pairs) {
		t.Fatalf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	for i, want := range pairs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Pair{Key: []byte("abcdef"), Value: []byte("ghijkl")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for cut := 1; cut < len(blob); cut++ {
		r := NewReader(bytes.NewReader(blob[:cut]))
		_, err := r.Read()
		if err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
		if errors.Is(err, io.EOF) && cut > 1 {
			t.Fatalf("truncation at %d reported as clean EOF", cut)
		}
	}
}

// jaggedReader delivers at most a few bytes per Read call, the way a TCP
// socket hands back whatever segment happens to have arrived.
type jaggedReader struct {
	data []byte
	step int
}

func (j *jaggedReader) Read(p []byte) (int, error) {
	if len(j.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + j.step%3 // 1..3 bytes per call
	j.step++
	if n > len(j.data) {
		n = len(j.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, j.data[:n])
	j.data = j.data[n:]
	return n, nil
}

// TestStreamPartialReads decodes a stream delivered in 1-3 byte fragments:
// frame boundaries never align with read boundaries, as over a socket.
func TestStreamPartialReads(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("alpha"), Value: bytes.Repeat([]byte("v"), 500)},
		{Key: bytes.Repeat([]byte("k"), 200), Value: []byte("beta")},
		{Key: nil, Value: nil},
		{Key: []byte("tail"), Value: []byte("end")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&jaggedReader{data: buf.Bytes()})
	for i, want := range pairs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("pair %d mismatch over jagged reads", i)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestStreamSocketSplit replays the shuffle plane's failure shape: a peer
// dies mid-transfer and the survivor holds a prefix that stops between the
// key and value of a record. The reader must surface truncation, not EOF,
// and deliver every record that fully arrived first.
func TestStreamSocketSplit(t *testing.T) {
	// The same segment as testdata/fuzz/FuzzStreamDecode/seed-socket-split:
	// six 18-byte records with the last one cut after its key.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 6; i++ {
		w.Write(Pair{
			Key:   []byte{'w', 'o', 'r', 'd', '-', '0', '0', byte('0' + i)},
			Value: []byte{1, 0, 0, 0, 0, 0, 0, 0},
		})
	}
	w.Flush()
	segment := buf.Bytes()[:100]

	r := NewReader(bytes.NewReader(segment))
	var got int
	for {
		_, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				t.Fatalf("mid-record split reported as clean EOF after %d records", got)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
			}
			break
		}
		got++
	}
	if got != 5 {
		t.Fatalf("decoded %d whole records before the split, want 5", got)
	}
}

func TestStreamThroughFlateFile(t *testing.T) {
	// The native runtime's spill path: stream pairs through DEFLATE into a
	// real file and back.
	rng := rand.New(rand.NewSource(5))
	pairs := randomSorted(rng, 500)
	path := filepath.Join(t.TempDir(), "spill.run")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := flate.NewWriter(f, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fw)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	it := NewStreamIter(NewReader(flate.NewReader(rf)))
	got := Drain(it)
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != len(pairs) {
		t.Fatalf("got %d pairs, want %d", len(got), len(pairs))
	}
	for i := range got {
		if got[i].Compare(pairs[i]) != 0 {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestStreamIterMergeCompat(t *testing.T) {
	// Stream iterators feed the same k-way merge as slice iterators.
	rng := rand.New(rand.NewSource(9))
	a := randomSorted(rng, 80)
	b := randomSorted(rng, 120)
	encode := func(ps []Pair) io.Reader {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range ps {
			if err := w.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	merged := Drain(Merge(
		NewStreamIter(NewReader(encode(a))),
		NewStreamIter(NewReader(encode(b))),
	))
	if len(merged) != len(a)+len(b) {
		t.Fatalf("merged %d, want %d", len(merged), len(a)+len(b))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Compare(merged[i]) > 0 {
			t.Fatal("merge output unsorted")
		}
	}
}

func TestQuickStreamRoundTrip(t *testing.T) {
	f := func(keys, vals [][]byte) bool {
		n := min(len(keys), len(vals))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := 0; i < n; i++ {
			if err := w.Write(Pair{Key: keys[i], Value: vals[i]}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for i := 0; i < n; i++ {
			p, err := r.Read()
			if err != nil || !bytes.Equal(p.Key, keys[i]) || !bytes.Equal(p.Value, vals[i]) {
				return false
			}
		}
		_, err := r.Read()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
