package kv

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// The tests in this file pin the zero-copy receive contract: a Run view
// built with NewRunView aliases its caller's buffer (a pooled recv frame),
// is torn by buffer reuse unless retained, and survives arbitrarily
// jagged/mid-record frame reassembly exactly like the owning decoder.

func sortedSample(rng *rand.Rand, n int) []Pair {
	pairs := randomPairs(rng, n)
	SortPairs(pairs)
	return pairs
}

func runMeta(pairs []Pair) (records int, raw int64) {
	for _, p := range pairs {
		raw += p.Size()
	}
	return len(pairs), raw
}

func TestRunViewAliasesRecvBuffer(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("aaa"), Value: []byte("111")},
		{Key: []byte("bbb"), Value: []byte("222")},
	}
	recv := Marshal(pairs) // stands in for the pooled frame buffer
	records, raw := runMeta(pairs)
	v := NewRunView(recv, records, raw, false)
	if v.Owned() {
		t.Fatal("view reports Owned")
	}
	got, err := v.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, pairs) {
		t.Fatal("view decode mismatch before reuse")
	}
	// Reusing the buffer scribbles the unretained view: decoded pairs are
	// views into recv, so they must observe the overwrite. This is the
	// hazard Retain exists for.
	for i := range recv {
		recv[i] = 'Z'
	}
	if bytes.Equal(got[0].Key, pairs[0].Key) {
		t.Fatal("unretained view survived buffer reuse; expected it to alias recv")
	}
}

func TestRunViewRetainSurvivesBufferReuse(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(17))
		pairs := sortedSample(rng, 60)
		src := NewRun(pairs, compressed)
		recv := append([]byte(nil), src.Blob()...)
		records, raw := runMeta(pairs)

		v := NewRunView(recv, records, raw, compressed)
		v.Retain()
		if !v.Owned() {
			t.Fatalf("compressed=%v: Retain did not take ownership", compressed)
		}
		// Simulate the next frame landing in the same buffer.
		for i := range recv {
			recv[i] ^= 0xFF
		}
		got, err := v.Pairs()
		if err != nil {
			t.Fatalf("compressed=%v: retained view failed to decode after reuse: %v", compressed, err)
		}
		if !pairsEqual(got, pairs) {
			t.Fatalf("compressed=%v: retained view torn by buffer reuse", compressed)
		}
		// Retain is idempotent and a no-op on owning runs.
		blob := v.Blob()
		v.Retain()
		if &v.Blob()[0] != &blob[0] {
			t.Fatalf("compressed=%v: second Retain copied again", compressed)
		}
		own := RunFromBlob(append([]byte(nil), src.Blob()...), records, raw, compressed)
		if !own.Owned() {
			t.Fatal("RunFromBlob run reports unowned")
		}
	}
}

// TestRunViewJaggedReassembly rebuilds a frame from 1–3 byte socket
// segments (the jagged shape the owning stream decoder is tested with),
// decodes a view straight out of the reassembly buffer, and checks it
// against the owning decoder — then reuses the buffer for a second frame
// and checks the retained first view is unaffected while the second
// decodes correctly.
func TestRunViewJaggedReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	first := sortedSample(rng, 40)
	second := sortedSample(rng, 40)
	frameA := Marshal(first)
	frameB := Marshal(second)
	if len(frameB) > len(frameA) {
		frameA, frameB = frameB, frameA
		first, second = second, first
	}

	// Reassemble frame A through jagged 1–3 byte reads into the recv buffer.
	recv := make([]byte, len(frameA))
	if _, err := io.ReadFull(&jaggedReader{data: frameA}, recv); err != nil {
		t.Fatal(err)
	}
	recA, rawA := runMeta(first)
	viewA := NewRunView(recv, recA, rawA, false)
	gotA, err := viewA.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(gotA, first) {
		t.Fatal("jagged-reassembled view disagrees with owning decode")
	}
	viewA.Retain()

	// Frame B lands in the same buffer (shorter, so the tail is stale bytes
	// from frame A — exactly what a pooled buffer holds).
	if _, err := io.ReadFull(&jaggedReader{data: frameB}, recv[:len(frameB)]); err != nil {
		t.Fatal(err)
	}
	recB, rawB := runMeta(second)
	viewB := NewRunView(recv[:len(frameB)], recB, rawB, false)
	gotB, err := viewB.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(gotB, second) {
		t.Fatal("second frame view decode mismatch")
	}
	gotA, err = viewA.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(gotA, first) {
		t.Fatal("retained view torn by buffer reuse")
	}
}

// TestRunViewMidRecordSplit feeds a view every truncation point of a frame
// — including cuts inside a length varint, inside a key, and between key
// and value — and requires a clean error (never a panic, never fabricated
// pairs beyond what fully arrived).
func TestRunViewMidRecordSplit(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("word-0001"), Value: bytes.Repeat([]byte{7}, 300)}, // 2-byte value varint
		{Key: bytes.Repeat([]byte("k"), 200), Value: []byte("v")},       // 2-byte key varint
		{Key: []byte("tail"), Value: []byte("end")},
	}
	frame := Marshal(pairs)
	records, raw := runMeta(pairs)
	for cut := 0; cut < len(frame); cut++ {
		v := NewRunView(frame[:cut], records, raw, false)
		got, err := v.Pairs()
		if err == nil {
			t.Fatalf("cut at %d/%d: truncated frame decoded without error (%d pairs)",
				cut, len(frame), len(got))
		}
	}
	// The full frame still decodes.
	if got, err := NewRunView(frame, records, raw, false).Pairs(); err != nil || !pairsEqual(got, pairs) {
		t.Fatalf("full frame decode failed: %v", err)
	}
}

// TestQuickRunViewMatchesOwningDecode: for random pair sets (compressed
// and not), a retained view decodes identically to the owning run even
// after its source buffer is scribbled.
func TestQuickRunViewMatchesOwningDecode(t *testing.T) {
	prop := func(seed int64, n uint8, compressed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := sortedSample(rng, int(n))
		src := NewRun(pairs, compressed)
		recv := append([]byte(nil), src.Blob()...)
		records, raw := runMeta(pairs)
		v := NewRunView(recv, records, raw, compressed)
		v.Retain()
		for i := range recv {
			recv[i] = byte(rng.Intn(256))
		}
		got, err := v.Pairs()
		if err != nil {
			return false
		}
		want, err := src.Pairs()
		if err != nil {
			return false
		}
		return pairsEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
