package kv

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBatchAppendAndViews(t *testing.T) {
	var b Batch
	pairs := []Pair{
		{Key: []byte("alpha"), Value: []byte("1")},
		{Key: []byte("beta"), Value: nil},
		{Key: nil, Value: []byte("orphan")},
	}
	for _, p := range pairs {
		b.Append(p)
	}
	if b.Len() != len(pairs) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(pairs))
	}
	var want int64
	for i, p := range pairs {
		got := b.Pair(i)
		if !bytes.Equal(got.Key, p.Key) || !bytes.Equal(got.Value, p.Value) {
			t.Fatalf("Pair(%d) = %q/%q, want %q/%q", i, got.Key, got.Value, p.Key, p.Value)
		}
		want += p.Size()
	}
	if b.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", b.Bytes(), want)
	}
	views := b.Pairs(nil)
	if !pairsEqual(views, pairs) {
		t.Fatalf("Pairs() mismatch")
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatalf("Reset left Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	// The batch is reusable after Reset.
	b.AppendKV([]byte("again"), []byte("x"))
	if got := b.Pair(0); string(got.Key) != "again" {
		t.Fatalf("post-Reset Pair(0).Key = %q", got.Key)
	}
}

func TestBatchAppendDoesNotAliasInput(t *testing.T) {
	var b Batch
	key := []byte("mutable")
	val := []byte("value")
	b.AppendKV(key, val)
	key[0], val[0] = 'X', 'X'
	got := b.Pair(0)
	if string(got.Key) != "mutable" || string(got.Value) != "value" {
		t.Fatalf("batch aliased caller bytes: %q/%q", got.Key, got.Value)
	}
}

func TestBatchSortRangeMatchesSortPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs := randomPairs(rng, 200)
	var b Batch
	for _, p := range pairs {
		b.Append(p)
	}
	b.Sort()
	ref := append([]Pair(nil), pairs...)
	SortPairs(ref)
	if !pairsEqual(b.Pairs(nil), ref) {
		t.Fatal("Batch.Sort disagrees with SortPairs")
	}
}

func TestBatchPartitionRangesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pairs := randomPairs(rng, 300)
	const n = 7
	var b Batch
	for _, p := range pairs {
		b.Append(p)
	}
	bounds := b.PartitionRanges(Partition, n)
	if len(bounds) != n+1 || bounds[0] != 0 || bounds[n] != len(pairs) {
		t.Fatalf("bad bounds %v", bounds)
	}
	// Reference: stable bucketing in append order.
	ref := make([][]Pair, n)
	for _, p := range pairs {
		part := Partition(p.Key, n)
		ref[part] = append(ref[part], p)
	}
	for p := 0; p < n; p++ {
		var got []Pair
		for i := bounds[p]; i < bounds[p+1]; i++ {
			got = append(got, b.Pair(i))
		}
		if !pairsEqual(got, ref[p]) {
			t.Fatalf("partition %d: scatter disagrees with reference bucketing", p)
		}
	}
}

func TestBatchRunRangeMatchesNewRun(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pairs := randomPairs(rng, 150)
	for _, compress := range []bool{false, true} {
		var b Batch
		for _, p := range pairs {
			b.Append(p)
		}
		b.Sort()
		sorted := append([]Pair(nil), pairs...)
		SortPairs(sorted)

		got := b.RunRange(0, b.Len(), compress)
		want := NewRun(sorted, compress)
		if !bytes.Equal(got.Blob(), want.Blob()) {
			t.Fatalf("compress=%v: RunRange blob differs from NewRun blob", compress)
		}
		if got.Records != want.Records || got.RawBytes != want.RawBytes || got.Compressed != want.Compressed {
			t.Fatalf("compress=%v: run metadata %d/%d/%v, want %d/%d/%v", compress,
				got.Records, got.RawBytes, got.Compressed, want.Records, want.RawBytes, want.Compressed)
		}
		// The direct encoder's size precomputation must be exact: no slack
		// capacity from growth, no reallocation.
		if !compress && cap(got.Blob()) != len(got.Blob()) {
			t.Fatalf("RunRange blob has slack: len=%d cap=%d", len(got.Blob()), cap(got.Blob()))
		}
	}
}

// TestQuickBatchPartitionPipeline drives the whole batch-side partition
// path (scatter, per-range sort, direct serialization) against the classic
// []Pair path (bucket, SortPairs, NewRun) on random inputs: every
// partition's run must be byte-identical.
func TestQuickBatchPartitionPipeline(t *testing.T) {
	prop := func(seed int64, n uint8, parts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng, int(n))
		np := int(parts%9) + 1
		var b Batch
		for _, p := range pairs {
			b.Append(p)
		}
		bounds := b.PartitionRanges(Partition, np)

		ref := make([][]Pair, np)
		for _, p := range pairs {
			part := Partition(p.Key, np)
			ref[part] = append(ref[part], p)
		}
		for p := 0; p < np; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if hi-lo != len(ref[p]) {
				return false
			}
			if lo == hi {
				continue
			}
			b.SortRange(lo, hi)
			SortPairs(ref[p])
			if !bytes.Equal(b.RunRange(lo, hi, false).Blob(), NewRun(ref[p], false).Blob()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
