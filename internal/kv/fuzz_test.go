package kv

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickUnmarshalNeverPanics: arbitrary byte corruption of a valid blob
// must produce either an error or some decoded pairs — never a panic or an
// out-of-bounds read.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	base := Marshal([]Pair{
		{Key: []byte("alpha"), Value: []byte("1234")},
		{Key: []byte("beta"), Value: bytes.Repeat([]byte("v"), 100)},
		{Key: []byte("gamma"), Value: nil},
	})
	f := func(seed int64, nmut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blob := append([]byte(nil), base...)
		for i := 0; i < int(nmut%16)+1; i++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				blob[rng.Intn(len(blob))] ^= byte(1 << rng.Intn(8))
			case 1: // truncate
				if len(blob) > 1 {
					blob = blob[:rng.Intn(len(blob))+1]
				}
			case 2: // extend with junk
				blob = append(blob, byte(rng.Intn(256)))
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("seed %d: Unmarshal panicked: %v", seed, r)
			}
		}()
		pairs, err := Unmarshal(blob)
		// Either outcome is fine; decoded pairs must be within the blob.
		if err == nil {
			for _, p := range pairs {
				_ = p.Size()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRunRoundTripRandom: random sorted pair sets survive the full
// serialize-compress-decompress-deserialize cycle bit-for-bit.
func TestQuickRunRoundTripRandom(t *testing.T) {
	f := func(seed int64, n uint8, compress bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf Buffer
		for i := 0; i < int(n); i++ {
			k := make([]byte, rng.Intn(20))
			v := make([]byte, rng.Intn(50))
			rng.Read(k)
			rng.Read(v)
			buf.AddKV(k, v)
		}
		buf.Sort()
		r := NewRun(buf.Pairs, compress)
		got, err := r.Pairs()
		if err != nil || len(got) != buf.Len() {
			return false
		}
		for i := range got {
			if got[i].Compare(buf.Pairs[i]) != 0 {
				return false
			}
		}
		return r.RawBytes == buf.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeEquivalentToSort: k-way merging sorted shards equals
// sorting the concatenation.
func TestQuickMergeEquivalentToSort(t *testing.T) {
	f := func(seed int64, shards uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(shards%6) + 1
		var all Buffer
		var iters []Iterator
		for s := 0; s < k; s++ {
			var b Buffer
			for i := 0; i < rng.Intn(60); i++ {
				key := []byte{byte('a' + rng.Intn(16))}
				val := []byte{byte(rng.Intn(256))}
				b.AddKV(key, val)
				all.AddKV(key, val)
			}
			b.Sort()
			iters = append(iters, NewSliceIter(b.Pairs))
		}
		merged := Drain(Merge(iters...))
		all.Sort()
		if len(merged) != all.Len() {
			return false
		}
		for i := range merged {
			if merged[i].Compare(all.Pairs[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
