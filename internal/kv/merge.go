package kv

import "container/heap"

// Iterator yields pairs in key order. Implementations are not safe for
// concurrent use; in the simulation each iterator is driven by one process.
type Iterator interface {
	// Next returns the next pair, or ok=false when exhausted.
	Next() (Pair, bool)
}

// SliceIter iterates over an in-memory pair slice (which must already be
// sorted if the iterator feeds a merge).
type SliceIter struct {
	pairs []Pair
	i     int
}

// NewSliceIter returns an iterator over pairs.
func NewSliceIter(pairs []Pair) *SliceIter { return &SliceIter{pairs: pairs} }

// Next implements Iterator.
func (s *SliceIter) Next() (Pair, bool) {
	if s.i >= len(s.pairs) {
		return Pair{}, false
	}
	p := s.pairs[s.i]
	s.i++
	return p, true
}

// mergeIter is a k-way merge over sorted inputs using a binary heap.
type mergeIter struct {
	h mergeHeap
}

type mergeEntry struct {
	pair Pair
	src  int
	it   Iterator
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := h[i].pair.Compare(h[j].pair); c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src // stable across equal pairs
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Merge returns an iterator producing the union of the sorted inputs in key
// order. This is the multi-way merge the paper's intermediate-data manager
// runs continuously (§III-B) and the reduce input reader runs one last time
// (§III-C).
func Merge(iters ...Iterator) Iterator {
	m := &mergeIter{}
	for i, it := range iters {
		if p, ok := it.Next(); ok {
			m.h = append(m.h, mergeEntry{pair: p, src: i, it: it})
		}
	}
	heap.Init(&m.h)
	return m
}

// Next implements Iterator.
func (m *mergeIter) Next() (Pair, bool) {
	if len(m.h) == 0 {
		return Pair{}, false
	}
	top := m.h[0]
	if p, ok := top.it.Next(); ok {
		m.h[0] = mergeEntry{pair: p, src: top.src, it: top.it}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.pair, true
}

// Group is one reduce input: a key and all of its values.
type Group struct {
	Key    []byte
	Values [][]byte
}

// Bytes returns the group payload volume.
func (g Group) Bytes() int64 {
	n := int64(len(g.Key))
	for _, v := range g.Values {
		n += int64(len(v))
	}
	return n
}

// GroupIter folds a key-sorted pair iterator into per-key groups.
type GroupIter struct {
	it      Iterator
	pending Pair
	have    bool
}

// NewGroupIter wraps a sorted iterator.
func NewGroupIter(it Iterator) *GroupIter { return &GroupIter{it: it} }

// Next returns the next key group, or ok=false at the end of input.
func (g *GroupIter) Next() (Group, bool) {
	if !g.have {
		p, ok := g.it.Next()
		if !ok {
			return Group{}, false
		}
		g.pending, g.have = p, true
	}
	grp := Group{Key: g.pending.Key, Values: [][]byte{g.pending.Value}}
	g.have = false
	for {
		p, ok := g.it.Next()
		if !ok {
			return grp, true
		}
		if string(p.Key) != string(grp.Key) {
			g.pending, g.have = p, true
			return grp, true
		}
		grp.Values = append(grp.Values, p.Value)
	}
}

// Drain collects all remaining pairs from it.
func Drain(it Iterator) []Pair {
	var out []Pair
	for {
		p, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}
