package kv

import (
	"bytes"
	"testing"
)

// Native Go fuzz targets for the kv wire formats (run with
// `go test -fuzz=Fuzz<Name> ./internal/kv/`; seed corpora live in
// testdata/fuzz/). They complement the testing/quick properties in
// fuzz_test.go with coverage-guided exploration of the decoders.

// pairsFromBytes deterministically derives a pair list from raw fuzz input:
// alternating length bytes pick key/value sizes, the payload is sliced from
// the remaining bytes. Every structured target uses the same scheme, so
// corpus entries transfer between targets.
func pairsFromBytes(data []byte) []Pair {
	var pairs []Pair
	for i := 0; i+2 < len(data) && len(pairs) < 512; {
		kl := int(data[i]%13) + 1
		vl := int(data[i+1] % 17)
		i += 2
		if i+kl+vl > len(data) {
			break
		}
		pairs = append(pairs, Pair{Key: data[i : i+kl], Value: data[i+kl : i+kl+vl]})
		i += kl + vl
	}
	return pairs
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// FuzzUnmarshal feeds arbitrary bytes to the blob decoder: it must never
// panic or over-allocate, and anything it accepts must survive a
// re-encode/decode round trip unchanged.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(nil))
	f.Add(Marshal([]Pair{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("bb"), Value: nil}}))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // absurd pair count
	f.Fuzz(func(t *testing.T, blob []byte) {
		pairs, err := Unmarshal(blob)
		if err != nil {
			return // corrupt input rejected cleanly: fine
		}
		re := Marshal(pairs)
		got, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded blob failed: %v", err)
		}
		if !pairsEqual(pairs, got) {
			t.Fatalf("round trip changed pairs: %d vs %d", len(pairs), len(got))
		}
	})
}

// FuzzStreamDecode feeds arbitrary bytes to the streaming frame reader (the
// spill-file format): it must reject corruption with an error, never panic,
// and pairs written by Writer must read back identically.
func FuzzStreamDecode(f *testing.F) {
	f.Add([]byte("\x03\x05hello world this is a stream of words"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes through the decoder: error or clean EOF only.
		it := NewStreamIter(NewReader(bytes.NewReader(data)))
		Drain(it)
		_ = it.Err()

		// Structured round trip: derived pairs through Writer then Reader.
		pairs := pairsFromBytes(data)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var raw int64
		for _, p := range pairs {
			if err := w.Write(p); err != nil {
				t.Fatalf("write: %v", err)
			}
			raw += p.Size()
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if w.Count() != len(pairs) || w.Bytes() != raw {
			t.Fatalf("writer accounting: count %d/%d bytes %d/%d", w.Count(), len(pairs), w.Bytes(), raw)
		}
		rt := NewStreamIter(NewReader(&buf))
		got := Drain(rt)
		if err := rt.Err(); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if !pairsEqual(pairs, got) {
			t.Fatalf("stream round trip changed pairs: %d vs %d", len(pairs), len(got))
		}
	})
}

// FuzzRunRoundTrip checks the run encoding both plain and DEFLATE-compressed:
// a run built from sorted pairs must iterate back the identical sequence and
// report exact record/byte tallies.
func FuzzRunRoundTrip(f *testing.F) {
	f.Add([]byte("\x01\x02compress me compress me compress me"))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		compress := data[0]%2 == 1
		pairs := pairsFromBytes(data[1:])
		SortPairs(pairs)
		run := NewRun(pairs, compress)
		var raw int64
		for _, p := range pairs {
			raw += p.Size()
		}
		if run.Records != len(pairs) || run.RawBytes != raw {
			t.Fatalf("run accounting: records %d/%d raw %d/%d", run.Records, len(pairs), run.RawBytes, raw)
		}
		got := Drain(run.Iter())
		if !pairsEqual(pairs, got) {
			t.Fatalf("run round trip changed pairs: %d vs %d", len(pairs), len(got))
		}
	})
}

// FuzzRunView feeds arbitrary bytes to the zero-copy view decoder: a
// retained view over a buffer that is then scribbled must behave exactly
// like an owning run over a private copy — same pairs or same rejection,
// never a panic, never a decode that reads the scribbled bytes.
func FuzzRunView(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add(Marshal([]Pair{{Key: []byte("a"), Value: []byte("1")}}), false)
	f.Add(NewRun([]Pair{{Key: []byte("k"), Value: bytes.Repeat([]byte("v"), 64)}}, true).Blob(), true)
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), false)
	f.Fuzz(func(t *testing.T, blob []byte, compressed bool) {
		own := RunFromBlob(append([]byte(nil), blob...), len(blob), int64(len(blob)), compressed)
		buf := append([]byte(nil), blob...)
		v := NewRunView(buf, len(blob), int64(len(blob)), compressed)
		v.Retain()
		for i := range buf {
			buf[i] ^= 0xA5
		}
		got, gerr := v.Pairs()
		want, werr := own.Pairs()
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("view/owning decode disagree: view err=%v owning err=%v", gerr, werr)
		}
		if gerr == nil && !pairsEqual(got, want) {
			t.Fatalf("retained view decoded %d pairs, owning decoded %d — contents differ",
				len(got), len(want))
		}
	})
}

// FuzzBatchRunRange drives the batch partition pipeline (scatter, range
// sort, direct serialization) against the []Pair reference path on
// arbitrary inputs: every partition's run must be byte-identical.
func FuzzBatchRunRange(f *testing.F) {
	f.Add([]byte("\x03the quick brown fox jumps over the lazy dog"), uint8(4))
	f.Add([]byte{1, 2, 3}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, np uint8) {
		n := int(np%9) + 1
		pairs := pairsFromBytes(data)
		var b Batch
		for _, p := range pairs {
			b.Append(p)
		}
		bounds := b.PartitionRanges(Partition, n)
		ref := make([][]Pair, n)
		for _, p := range pairs {
			ref[Partition(p.Key, n)] = append(ref[Partition(p.Key, n)], p)
		}
		for p := 0; p < n; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if hi-lo != len(ref[p]) {
				t.Fatalf("partition %d: %d records, want %d", p, hi-lo, len(ref[p]))
			}
			if lo == hi {
				continue
			}
			b.SortRange(lo, hi)
			SortPairs(ref[p])
			if !bytes.Equal(b.RunRange(lo, hi, false).Blob(), NewRun(ref[p], false).Blob()) {
				t.Fatalf("partition %d: batch run differs from reference run", p)
			}
		}
	})
}

// FuzzMergeRuns checks the k-way merge: pairs scattered round-robin over
// several runs must merge back to exactly the sorted whole — same multiset,
// key-then-value order preserved.
func FuzzMergeRuns(f *testing.F) {
	f.Add([]byte("\x03\x01the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		fanIn := int(data[0]%7) + 1
		compress := data[1]%2 == 1
		pairs := pairsFromBytes(data[2:])
		shards := make([][]Pair, fanIn)
		for i, p := range pairs {
			shards[i%fanIn] = append(shards[i%fanIn], p)
		}
		runs := make([]*Run, 0, fanIn)
		for _, shard := range shards {
			SortPairs(shard)
			runs = append(runs, NewRun(shard, compress))
		}
		merged := MergeRuns(runs, compress)
		got := Drain(merged.Iter())
		if !PairsSorted(got) {
			t.Fatalf("merge output not sorted (%d pairs)", len(got))
		}
		want := append([]Pair(nil), pairs...)
		SortPairs(want)
		if !pairsEqual(want, got) {
			t.Fatalf("merge changed the multiset: %d vs %d pairs", len(want), len(got))
		}
	})
}
