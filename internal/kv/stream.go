package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Writer streams pairs to an io.Writer as varint-length-prefixed frames
// (the same frame layout as Marshal, without the leading count — streams
// end at EOF). Use it for spill files and network channels where the pair
// count is not known up front.
type Writer struct {
	w     *bufio.Writer
	count int
	bytes int64
}

// NewWriter returns a streaming pair writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one pair to the stream.
func (w *Writer) Write(p Pair) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(p.Key)))
	if _, err := w.w.Write(tmp[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], uint64(len(p.Value)))
	if _, err := w.w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(p.Key); err != nil {
		return err
	}
	if _, err := w.w.Write(p.Value); err != nil {
		return err
	}
	w.count++
	w.bytes += p.Size()
	return nil
}

// Count returns the number of pairs written.
func (w *Writer) Count() int { return w.count }

// Bytes returns the payload volume written.
func (w *Writer) Bytes() int64 { return w.bytes }

// Flush commits buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// maxFrameLen guards against decoding absurd lengths from corrupt streams.
const maxFrameLen = 1 << 30

// Reader streams pairs from an io.Reader written by Writer. Read returns
// io.EOF at a clean end of stream and io.ErrUnexpectedEOF (or a framing
// error) on truncation.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a streaming pair reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next pair. The returned slices are freshly allocated
// and safe to retain.
func (r *Reader) Read() (Pair, error) {
	kl, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Pair{}, io.EOF
		}
		return Pair{}, fmt.Errorf("kv: reading key length: %w", err)
	}
	vl, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Pair{}, fmt.Errorf("kv: reading value length: %w", unexpected(err))
	}
	if kl > maxFrameLen || vl > maxFrameLen {
		return Pair{}, fmt.Errorf("kv: implausible frame lengths %d/%d", kl, vl)
	}
	key, err := readCapped(r.r, kl)
	if err != nil {
		return Pair{}, fmt.Errorf("kv: reading key: %w", unexpected(err))
	}
	val, err := readCapped(r.r, vl)
	if err != nil {
		return Pair{}, fmt.Errorf("kv: reading value: %w", unexpected(err))
	}
	return Pair{Key: key, Value: val}, nil
}

// readCapped reads exactly n bytes, growing the buffer in bounded chunks.
// A corrupt or truncated stream whose length prefix claims a huge frame
// (network streams are untrusted input — a hostile 5-byte prefix can claim
// a gigabyte) then fails with io.ErrUnexpectedEOF after at most one chunk
// of over-allocation instead of committing the full claimed length up
// front.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 64 << 10
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, chunk)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// StreamIter adapts a Reader into an Iterator. Decode errors after the
// first pair surface via Err.
type StreamIter struct {
	r   *Reader
	err error
}

// NewStreamIter wraps a streaming reader.
func NewStreamIter(r *Reader) *StreamIter { return &StreamIter{r: r} }

// Next implements Iterator.
func (s *StreamIter) Next() (Pair, bool) {
	if s.err != nil {
		return Pair{}, false
	}
	p, err := s.r.Read()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = err
		}
		return Pair{}, false
	}
	return p, true
}

// Err reports a decode error encountered mid-stream (nil on clean EOF).
func (s *StreamIter) Err() error { return s.err }
