package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPairCompare(t *testing.T) {
	cases := []struct {
		a, b Pair
		want int
	}{
		{Pair{Key: []byte("a")}, Pair{Key: []byte("b")}, -1},
		{Pair{Key: []byte("b")}, Pair{Key: []byte("a")}, 1},
		{Pair{Key: []byte("a"), Value: []byte("1")}, Pair{Key: []byte("a"), Value: []byte("2")}, -1},
		{Pair{Key: []byte("a"), Value: []byte("x")}, Pair{Key: []byte("a"), Value: []byte("x")}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%q/%q, %q/%q) = %d, want %d", c.a.Key, c.a.Value, c.b.Key, c.b.Value, got, c.want)
		}
	}
}

func TestPartitionRangeAndStability(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p := Partition(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("Partition out of range: %d", p)
		}
		if p != Partition(key, 7) {
			t.Fatal("Partition not stable")
		}
	}
	if Partition([]byte("x"), 1) != 0 || Partition([]byte("x"), 0) != 0 {
		t.Fatal("degenerate partition counts must map to 0")
	}
}

func TestBufferSortAndBytes(t *testing.T) {
	var b Buffer
	b.AddKV([]byte("zebra"), []byte("1"))
	b.AddKV([]byte("apple"), []byte("22"))
	b.AddKV([]byte("mango"), []byte("333"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Bytes() != int64(5+1+5+2+5+3) {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	if b.Sorted() {
		t.Fatal("buffer should not report sorted")
	}
	b.Sort()
	if !b.Sorted() {
		t.Fatal("buffer should be sorted after Sort")
	}
	if string(b.Pairs[0].Key) != "apple" || string(b.Pairs[2].Key) != "zebra" {
		t.Fatalf("sort order wrong: %v", b.Pairs)
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte(""), Value: []byte("empty key")},
		{Key: []byte("k3"), Value: nil},
		{Key: bytes.Repeat([]byte("x"), 1000), Value: bytes.Repeat([]byte("y"), 5000)},
	}
	got, err := Unmarshal(Marshal(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("len = %d, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if !bytes.Equal(got[i].Key, pairs[i].Key) || !bytes.Equal(got[i].Value, pairs[i].Value) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{}); err == nil {
		t.Error("empty blob should error")
	}
	blob := Marshal([]Pair{{Key: []byte("abcdef"), Value: []byte("ghijkl")}})
	if _, err := Unmarshal(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should error")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(keys, vals [][]byte) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		pairs := make([]Pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = Pair{Key: keys[i], Value: vals[i]}
		}
		got, err := Unmarshal(Marshal(pairs))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, pairs[i].Key) || !bytes.Equal(got[i].Value, pairs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomSorted(rng *rand.Rand, n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			Key:   []byte(fmt.Sprintf("k%06d", rng.Intn(n*2))),
			Value: []byte(fmt.Sprintf("v%d", rng.Intn(100))),
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Compare(pairs[j]) < 0 })
	return pairs
}

func TestMergeProducesSortedUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var iters []Iterator
	total := 0
	for i := 0; i < 5; i++ {
		ps := randomSorted(rng, 50+i*13)
		total += len(ps)
		iters = append(iters, NewSliceIter(ps))
	}
	out := Drain(Merge(iters...))
	if len(out) != total {
		t.Fatalf("merged %d pairs, want %d", len(out), total)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Compare(out[i]) > 0 {
			t.Fatalf("merge output unsorted at %d", i)
		}
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	out := Drain(Merge())
	if len(out) != 0 {
		t.Fatal("empty merge should yield nothing")
	}
	out = Drain(Merge(NewSliceIter(nil), NewSliceIter(nil)))
	if len(out) != 0 {
		t.Fatal("merge of empties should yield nothing")
	}
	one := []Pair{{Key: []byte("a"), Value: []byte("1")}}
	out = Drain(Merge(NewSliceIter(one), NewSliceIter(nil)))
	if len(out) != 1 {
		t.Fatal("merge lost the single pair")
	}
}

func TestGroupIter(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
		{Key: []byte("b"), Value: []byte("3")},
		{Key: []byte("c"), Value: []byte("4")},
		{Key: []byte("c"), Value: []byte("5")},
		{Key: []byte("c"), Value: []byte("6")},
	}
	gi := NewGroupIter(NewSliceIter(pairs))
	var keys []string
	var counts []int
	for {
		g, ok := gi.Next()
		if !ok {
			break
		}
		keys = append(keys, string(g.Key))
		counts = append(counts, len(g.Values))
	}
	if fmt.Sprint(keys) != "[a b c]" || fmt.Sprint(counts) != "[2 1 3]" {
		t.Fatalf("groups = %v %v", keys, counts)
	}
}

func TestGroupIterEmpty(t *testing.T) {
	gi := NewGroupIter(NewSliceIter(nil))
	if _, ok := gi.Next(); ok {
		t.Fatal("empty input should yield no groups")
	}
}

func TestGroupBytes(t *testing.T) {
	g := Group{Key: []byte("ab"), Values: [][]byte{[]byte("x"), []byte("yz")}}
	if g.Bytes() != 5 {
		t.Fatalf("Bytes = %d, want 5", g.Bytes())
	}
}

func TestQuickGroupCountsMatchPairCounts(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomSorted(rng, int(n)+1)
		gi := NewGroupIter(NewSliceIter(pairs))
		total := 0
		var prev []byte
		for {
			g, ok := gi.Next()
			if !ok {
				break
			}
			if prev != nil && bytes.Compare(prev, g.Key) >= 0 {
				return false // keys must be strictly increasing
			}
			prev = append([]byte(nil), g.Key...)
			total += len(g.Values)
		}
		return total == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs := randomSorted(rng, 500)
	for _, compress := range []bool{false, true} {
		r := NewRun(pairs, compress)
		if r.Records != len(pairs) {
			t.Fatalf("Records = %d", r.Records)
		}
		got, err := r.Pairs()
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if got[i].Compare(pairs[i]) != 0 {
				t.Fatalf("compress=%v: pair %d mismatch", compress, i)
			}
		}
	}
}

func TestRunCompressionShrinksRepetitiveData(t *testing.T) {
	pairs := make([]Pair, 1000)
	for i := range pairs {
		pairs[i] = Pair{Key: []byte("the-same-word"), Value: []byte{1, 0, 0, 0}}
	}
	plain := NewRun(pairs, false)
	comp := NewRun(pairs, true)
	if comp.StoredBytes() >= plain.StoredBytes()/2 {
		t.Fatalf("compression ineffective: %d vs %d", comp.StoredBytes(), plain.StoredBytes())
	}
	if comp.RawBytes != plain.RawBytes {
		t.Fatal("RawBytes must be encoding-independent")
	}
}

func TestNewRunPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted input")
		}
	}()
	NewRun([]Pair{{Key: []byte("b")}, {Key: []byte("a")}}, false)
}

func TestMergeRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var runs []*Run
	total := 0
	for i := 0; i < 4; i++ {
		ps := randomSorted(rng, 100)
		total += len(ps)
		runs = append(runs, NewRun(ps, i%2 == 0))
	}
	merged := MergeRuns(runs, true)
	if merged.Records != total {
		t.Fatalf("merged records = %d, want %d", merged.Records, total)
	}
	ps, err := merged.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Compare(ps[i]) > 0 {
			t.Fatal("merged run unsorted")
		}
	}
}

func TestSortPairsShared(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("a"), Value: []byte("9")},
		{Key: []byte("b"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("1")},
	}
	if PairsSorted(pairs) {
		t.Fatal("unsorted input reported sorted")
	}
	SortPairs(pairs)
	if !PairsSorted(pairs) {
		t.Fatal("SortPairs left pairs unsorted")
	}
	want := "a1 a9 b1 b2"
	var got string
	for i, p := range pairs {
		if i > 0 {
			got += " "
		}
		got += string(p.Key) + string(p.Value)
	}
	if got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
	if !PairsSorted(nil) || !PairsSorted(pairs[:1]) {
		t.Fatal("trivial slices are sorted")
	}
}
