// Package workload generates the synthetic datasets standing in for the
// paper's inputs: Zipf-distributed wiki-like text (the English Wikipedia
// dump used by WC), sparse web-server logs (the WikiBench traces used by
// PVC), TeraGen records (TS), multi-dimensional float points (KM) and
// square matrices (MM). All generators are deterministic given a seed; the
// distributional properties the paper's effects depend on — heavy key
// repetition for WC, a huge sparse key space for PVC, uniform 10-byte keys
// for TS — are reproduced even though absolute volumes are scaled down.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// WikiText generates roughly size bytes of text whose word frequencies
// follow a Zipf distribution over vocab distinct words — "high repetition
// of a smaller number of words beside a large number of sparse words"
// (§IV-A1).
func WikiText(seed int64, size int, vocab int) []byte {
	if vocab < 2 {
		vocab = 2
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(vocab-1))
	out := make([]byte, 0, size+64)
	col := 0
	for len(out) < size {
		w := wordFor(zipf.Uint64())
		out = append(out, w...)
		col += len(w) + 1
		if col > 70 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
		}
	}
	out = append(out, '\n')
	return out
}

// wordFor maps a rank to a pronounceable word, longer for rarer words.
func wordFor(rank uint64) []byte {
	const consonants = "bcdfghjklmnpqrstvwz"
	const vowels = "aeiou"
	var w []byte
	r := rank + 1
	for r > 0 {
		w = append(w, consonants[r%uint64(len(consonants))])
		w = append(w, vowels[(r/7)%uint64(len(vowels))])
		r /= uint64(len(consonants)) * 3
	}
	return w
}

// WebLog generates roughly size bytes of web-server log lines in a compact
// WikiBench-like format: "<counter> <url> <flag>\n". URLs are highly sparse:
// duplicates are rare, the key space is massive (§IV-A1: PVC).
func WebLog(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	// A light Zipf head (a few hot pages) over an enormous tail of
	// nearly-unique URLs.
	out := make([]byte, 0, size+128)
	n := 0
	for len(out) < size {
		var url string
		if rng.Intn(100) < 5 {
			url = fmt.Sprintf("en.wikipedia.org/wiki/Main_Page_%d", rng.Intn(20))
		} else {
			url = fmt.Sprintf("en.wikipedia.org/wiki/Article_%d_%d", rng.Intn(1<<20), n)
		}
		out = append(out, fmt.Sprintf("%d http://%s -\n", n, url)...)
		n++
	}
	return out
}

// TeraRecordSize is the TeraSort record: a 10-byte key and a 90-byte value.
const TeraRecordSize = 100

// TeraGen generates n 100-byte records with uniformly random 10-byte keys,
// the standard TeraSort input.
func TeraGen(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*TeraRecordSize)
	for i := 0; i < n; i++ {
		rec := out[i*TeraRecordSize : (i+1)*TeraRecordSize]
		for j := 0; j < 10; j++ {
			rec[j] = byte(' ' + rng.Intn(95))
		}
		for j := 10; j < TeraRecordSize; j++ {
			rec[j] = byte('A' + (i+j)%26)
		}
	}
	return out
}

// Points generates n points of dim float32 coordinates drawn around k
// well-separated centers, returning the encoded points (little-endian
// float32s, one point per dim*4 bytes) and the true centers used.
func Points(seed int64, n, dim, k int) (data []byte, centers [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	centers = make([][]float32, k)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for d := range centers[c] {
			centers[c][d] = float32(rng.Float64()*200 - 100)
		}
	}
	data = make([]byte, 0, n*dim*4)
	var buf [4]byte
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		for d := 0; d < dim; d++ {
			v := c[d] + float32(rng.NormFloat64())
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			data = append(data, buf[:]...)
		}
	}
	return data, centers
}

// InitialCenters picks k starting centers deterministically from the
// encoded point data (the first k points), as KM implementations commonly
// seed.
func InitialCenters(data []byte, dim, k int) [][]float32 {
	centers := make([][]float32, k)
	for c := 0; c < k; c++ {
		centers[c] = make([]float32, dim)
		for d := 0; d < dim; d++ {
			off := (c*dim + d) * 4
			centers[c][d] = math.Float32frombits(binary.LittleEndian.Uint32(data[off : off+4]))
		}
	}
	return centers
}

// Matrix generates an n x n float32 matrix with small deterministic values
// (kept small so tile products stay exact in float32).
func Matrix(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float32, n*n)
	for i := range m {
		m[i] = float32(rng.Intn(8)) / 4
	}
	return m
}

// MatMulRef computes C = A x B for n x n row-major matrices (the reference
// the MM experiments verify against).
func MatMulRef(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a[i*n+k]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[k*n+j]
			}
		}
	}
	return c
}
