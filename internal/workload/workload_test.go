package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWikiTextDeterministicAndSized(t *testing.T) {
	a := WikiText(1, 10000, 5000)
	b := WikiText(1, 10000, 5000)
	if !bytes.Equal(a, b) {
		t.Fatal("generator not deterministic")
	}
	if len(a) < 10000 || len(a) > 11000 {
		t.Fatalf("size %d outside requested band", len(a))
	}
	if WikiText(2, 10000, 5000)[0] == 0 {
		t.Fatal("degenerate output")
	}
}

func TestWikiTextZipfSkew(t *testing.T) {
	// The most frequent word must dominate: heavy repetition of few words
	// plus a long sparse tail (the WC dataset property).
	text := string(WikiText(7, 200000, 100000))
	counts := map[string]int{}
	for _, w := range strings.Fields(text) {
		counts[w]++
	}
	maxC, singles := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		if c == 1 {
			singles++
		}
	}
	if maxC < 1000 {
		t.Fatalf("top word count %d: no heavy head", maxC)
	}
	if singles < len(counts)/4 {
		t.Fatalf("only %d/%d singleton words: no sparse tail", singles, len(counts))
	}
}

func TestWebLogSparseURLs(t *testing.T) {
	log := WebLog(3, 300000)
	lines := strings.Split(strings.TrimSpace(string(log)), "\n")
	urls := map[string]int{}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) != 3 {
			t.Fatalf("malformed log line %q", l)
		}
		urls[f[1]]++
	}
	// Duplicate URLs must be rare: distinct/total high.
	ratio := float64(len(urls)) / float64(len(lines))
	if ratio < 0.8 {
		t.Fatalf("distinct/total URL ratio %.2f: not sparse enough", ratio)
	}
}

func TestTeraGenRecords(t *testing.T) {
	data := TeraGen(5, 1000)
	if len(data) != 1000*TeraRecordSize {
		t.Fatalf("size %d", len(data))
	}
	// Keys should be roughly uniformly distributed over the printable range;
	// check first-byte spread.
	buckets := map[byte]int{}
	for i := 0; i < 1000; i++ {
		buckets[data[i*TeraRecordSize]]++
	}
	if len(buckets) < 50 {
		t.Fatalf("only %d distinct first key bytes", len(buckets))
	}
	if !bytes.Equal(TeraGen(5, 10), TeraGen(5, 10)) {
		t.Fatal("not deterministic")
	}
}

func TestPointsAroundCenters(t *testing.T) {
	data, centers := Points(11, 2000, 4, 8)
	if len(data) != 2000*4*4 {
		t.Fatalf("size %d", len(data))
	}
	if len(centers) != 8 {
		t.Fatalf("centers %d", len(centers))
	}
	init := InitialCenters(data, 4, 8)
	if len(init) != 8 || len(init[0]) != 4 {
		t.Fatalf("initial centers malformed")
	}
}

func TestMatMulRefIdentity(t *testing.T) {
	n := 8
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	m := Matrix(9, n)
	got := MatMulRef(id, m, n)
	for i := range m {
		if got[i] != m[i] {
			t.Fatalf("identity multiply broke at %d: %g != %g", i, got[i], m[i])
		}
	}
}

func TestQuickMatMulRefLinearity(t *testing.T) {
	// (2A)B == 2(AB)
	f := func(seed int64) bool {
		n := 8
		a := Matrix(seed, n)
		b := Matrix(seed+100, n)
		a2 := make([]float32, len(a))
		for i := range a {
			a2[i] = 2 * a[i]
		}
		ab := MatMulRef(a, b, n)
		a2b := MatMulRef(a2, b, n)
		for i := range ab {
			if math.Abs(float64(a2b[i]-2*ab[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
