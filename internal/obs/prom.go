package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per metric name followed by all of that
// name's samples. Counters and gauges expose their value directly;
// histograms expose cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Output is deterministic: names sorted, samples in canonical
// label order.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	byName := make(map[string][]Metric)
	names := make([]string, 0, len(snap))
	for _, m := range snap {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		group := byName[name]
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, group[0].Type)
		for _, m := range group {
			switch m.Type {
			case "histogram":
				var cum int64
				for _, b := range m.Buckets {
					cum += b.Count
					fmt.Fprintf(&sb, "%s_bucket%s %d\n",
						name, promLabels(m.Labels, "le", b.Le), cum)
				}
				fmt.Fprintf(&sb, "%s_sum%s %s\n", name, promLabels(m.Labels), promFloat(m.Sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", name, promLabels(m.Labels), m.Count)
			default:
				fmt.Fprintf(&sb, "%s%s %s\n", name, promLabels(m.Labels), promFloat(m.Value))
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// promLabels renders a label set (plus optional extra key/value pairs, e.g.
// the histogram `le` edge) as {k1="v1",k2="v2"}, keys sorted, values
// escaped. An empty set renders as "".
func promLabels(labels map[string]string, extra ...string) string {
	n := len(labels) + len(extra)/2
	if n == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(promEscape(v))
		sb.WriteByte('"')
	}
	for _, k := range keys {
		put(k, labels[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		put(extra[i], extra[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote and newline.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
