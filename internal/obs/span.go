package obs

import "sync"

// Span is one interval of pipeline activity on one node's stage track.
// Times are seconds — virtual seconds for the simulated runtime, wall-clock
// seconds since run start for the native one.
//
// ID and Parent carry distributed trace identity: a cluster-unique span id
// and the id of the span that caused this one (0 = none). The Chrome
// exporter turns Parent links into cross-process flow arrows. Runtimes that
// don't propagate context leave both zero and the output is unchanged.
type Span struct {
	Node   int     `json:"node"`
	Stage  string  `json:"stage"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	ID     uint64  `json:"id,omitempty"`
	Parent uint64  `json:"parent,omitempty"`
	// Tags annotate the span with small key/value facts (e.g. the block
	// read's locality verdict). Nil for the common case; exporters only
	// emit them when present, so untagged output is byte-identical to
	// what it was before tags existed.
	Tags map[string]string `json:"tags,omitempty"`
}

// Instant is an instantaneous event on a node's timeline (a node death, a
// phase boundary) — a Chrome trace "instant" rather than a duration.
type Instant struct {
	Node int     `json:"node"`
	Name string  `json:"name"`
	At   float64 `json:"at"`
}

// SpanSink receives spans as they complete. Implementations must tolerate
// concurrent calls: the native runtime records from many goroutines.
type SpanSink interface {
	Span(s Span)
}

// SpanBuffer is the straightforward SpanSink: it accumulates spans (and
// instants) under a mutex for later export or analysis.
type SpanBuffer struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
}

// Span records one span. Degenerate spans (End <= Start) are dropped.
func (b *SpanBuffer) Span(s Span) {
	if b == nil || s.End <= s.Start {
		return
	}
	b.mu.Lock()
	b.spans = append(b.spans, s)
	b.mu.Unlock()
}

// Mark records one instantaneous event.
func (b *SpanBuffer) Mark(i Instant) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.instants = append(b.instants, i)
	b.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (b *SpanBuffer) Spans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Span(nil), b.spans...)
}

// Instants returns a copy of the recorded instants.
func (b *SpanBuffer) Instants() []Instant {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Instant(nil), b.instants...)
}

// TrackOrder returns a sort key placing stage tracks in pipeline execution
// order: the map group, then intermediate-data and recovery work, then the
// reduce group, then device-level (cl) tracks, then unknown stages
// lexicographically. Both the core Gantt renderer and the Chrome exporter
// use it, so the two views always agree on row order.
func TrackOrder(stage string) string {
	order := map[string]string{
		"sched/assign":  "00",
		"sched/reduce":  "01",
		"map/input":     "a0",
		"map/stage":     "a1",
		"map/kernel":    "a2",
		"map/retrieve":  "a3",
		"map/partition": "a4",
		"net/send":      "a5",
		"net/recv":      "a6",
		"merge":         "b0",
		"spill":         "b1",
		"retry":         "b2",
		"speculative":   "b3",
		"reduce/input":  "c0",
		"reduce/stage":  "c1",
		"reduce/kernel": "c2",
		"reduce":        "c2~", // native's single reduce track, next to its sim analog
		"reduce/retr":   "c3",
		"reduce/output": "c4",
		"cl/write":      "d0",
		"cl/kernel":     "d1",
		"cl/read":       "d2",
	}
	if o, ok := order[stage]; ok {
		return o
	}
	return "z" + stage
}
