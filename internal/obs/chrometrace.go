package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (JSON object
// flavor). Only the fields the catapult/Perfetto viewers need.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"` // flow-event binding id
	BP   string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// OtherData is the trace_event format's free-form metadata object;
	// chrome://tracing shows it under the Metadata button. omitempty keeps
	// meta-less output byte-identical to what golden tests pin.
	OtherData map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports spans (plus optional instants) as Chrome
// trace_event JSON: one process per node, one thread track per pipeline
// stage, tracks in pipeline order. The output opens directly in
// chrome://tracing or https://ui.perfetto.dev. Output is deterministic for
// a given input (events sorted, stable field order), so it can be pinned by
// golden tests.
func WriteChromeTrace(w io.Writer, spans []Span, instants ...Instant) error {
	return WriteChromeTraceWithMeta(w, spans, nil, instants...)
}

// WriteChromeTraceWithMeta is WriteChromeTrace plus a metadata object
// carried in the trace's otherData field — run-level facts that are not
// timeline events, like the shuffle frame-size distribution. A nil or empty
// meta writes exactly what WriteChromeTrace writes. Values must be
// JSON-encodable; encoding/json sorts map keys, so output stays
// deterministic.
func WriteChromeTraceWithMeta(w io.Writer, spans []Span, meta map[string]any, instants ...Instant) error {
	// Global track table: a stage gets the same tid on every node, so
	// cross-node comparison is one vertical scan in the viewer.
	stageSet := map[string]bool{}
	nodeSet := map[int]bool{}
	for _, s := range spans {
		stageSet[s.Stage] = true
		nodeSet[s.Node] = true
	}
	for _, i := range instants {
		nodeSet[i.Node] = true
	}
	stages := make([]string, 0, len(stageSet))
	for st := range stageSet {
		stages = append(stages, st)
	}
	sort.Slice(stages, func(i, j int) bool {
		a, b := TrackOrder(stages[i]), TrackOrder(stages[j])
		if a != b {
			return a < b
		}
		return stages[i] < stages[j]
	})
	tid := make(map[string]int, len(stages))
	for i, st := range stages {
		tid[st] = i
	}
	instantTid := len(stages)
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	var events []chromeEvent
	for _, n := range nodes {
		pname := fmt.Sprintf("node%02d", n)
		if n < 0 {
			pname = "coordinator"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: n,
			Args: map[string]any{"name": pname},
		})
		for _, st := range stages {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: n, Tid: tid[st],
				Args: map[string]any{"name": st},
			})
		}
	}
	const usec = 1e6
	body := make([]chromeEvent, 0, len(spans)+len(instants))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Stage, Ph: "X", Cat: "pipeline",
			Ts: s.Start * usec, Dur: (s.End - s.Start) * usec,
			Pid: s.Node, Tid: tid[s.Stage],
		}
		// Tagged spans (e.g. a block read's locality verdict) surface as
		// slice args; untagged spans emit exactly what they always did, so
		// golden traces stay byte-identical.
		if len(s.Tags) > 0 {
			ev.Args = make(map[string]any, len(s.Tags))
			for k, v := range s.Tags {
				ev.Args[k] = v
			}
		}
		body = append(body, ev)
	}
	for _, i := range instants {
		body = append(body, chromeEvent{
			Name: i.Name, Ph: "i", Cat: "event", S: "p",
			Ts: i.At * usec, Pid: i.Node, Tid: instantTid,
		})
	}
	// Flow arrows: a span whose Parent names another recorded span gets a
	// flow-start on the parent slice and a flow-end bound ("bp":"e") to its
	// own slice, drawing the causal arrow across processes in the viewer.
	// Flow ids are assigned sequentially over the (deterministic) span order
	// so output stays byte-stable for a given input.
	byID := make(map[uint64]Span, len(spans))
	for _, s := range spans {
		if s.ID != 0 {
			byID[s.ID] = s
		}
	}
	var flowID uint64
	for _, s := range spans {
		parent, ok := byID[s.Parent]
		if s.Parent == 0 || !ok || s.ID == s.Parent {
			continue
		}
		flowID++
		childTs := s.Start
		if childTs < parent.Start {
			childTs = parent.Start
		}
		body = append(body,
			chromeEvent{
				Name: "flow", Ph: "s", Cat: "flow", ID: flowID,
				Ts: parent.Start * usec, Pid: parent.Node, Tid: tid[parent.Stage],
			},
			chromeEvent{
				Name: "flow", Ph: "f", Cat: "flow", ID: flowID, BP: "e",
				Ts: childTs * usec, Pid: s.Node, Tid: tid[s.Stage],
			})
	}
	sort.SliceStable(body, func(i, j int) bool {
		if body[i].Ts != body[j].Ts {
			return body[i].Ts < body[j].Ts
		}
		if body[i].Pid != body[j].Pid {
			return body[i].Pid < body[j].Pid
		}
		return body[i].Tid < body[j].Tid
	})
	events = append(events, body...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if len(meta) == 0 {
		meta = nil
	}
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms", OtherData: meta})
}

// TraceMeta pulls named metrics out of reg as a trace metadata object for
// WriteChromeTraceWithMeta. Counters and gauges become their value;
// histograms become {count, sum, mean, buckets} with buckets keyed by their
// upper edge. Names with no samples recorded are omitted, so a run that
// never touched a subsystem carries no metadata for it.
func TraceMeta(reg *Registry, names ...string) map[string]any {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	meta := map[string]any{}
	for _, m := range reg.Snapshot() {
		if !want[m.Name] || len(m.Labels) > 0 {
			continue
		}
		if m.Type != "histogram" {
			if m.Value != 0 {
				meta[m.Name] = m.Value
			}
			continue
		}
		if m.Count == 0 {
			continue
		}
		buckets := map[string]int64{}
		for _, b := range m.Buckets {
			buckets["le_"+b.Le] = b.Count
		}
		meta[m.Name] = map[string]any{
			"count":   m.Count,
			"sum":     m.Sum,
			"mean":    m.Sum / float64(m.Count),
			"buckets": buckets,
		}
	}
	if len(meta) == 0 {
		return nil
	}
	return meta
}
