// Package obs is the shared observability layer consumed by both Glasswing
// runtimes: the simulated cluster (internal/core, virtual seconds) and the
// native host runtime (internal/native, wall-clock seconds).
//
// It provides three pieces, all runtime-agnostic:
//
//   - a metrics Registry — counters, gauges and fixed-bucket histograms with
//     atomic hot-path recording, labeled (node/stage/partition/...), and
//     snapshottable to JSON;
//   - a SpanSink interface plus SpanBuffer — the timeline feed: the sim
//     core's Trace, the cl command-queue profiling events and the native
//     runtime's wall-clock stage instrumentation all record Spans;
//   - consumers of the timeline: WriteChromeTrace exports any run as Chrome
//     trace_event JSON (open in chrome://tracing or Perfetto), and Analyze
//     computes the paper's §V per-stage breakdown — busy/stall time,
//     occupancy, the overlap factor and a critical-path estimate.
//
// The package depends only on the standard library, so every layer of the
// system (core, cl, native, the facade, the experiment drivers) can feed it
// without import cycles.
package obs

// Telemetry bundles the two collection surfaces a run needs: a metrics
// registry and a span buffer. It is the unit callers hand to a runtime
// (native.Config.Telemetry) or build piecemeal (the sim core takes the
// registry via core.Config.Metrics and records spans in its own Trace).
type Telemetry struct {
	Metrics *Registry
	Spans   *SpanBuffer
}

// NewTelemetry returns an empty telemetry collector.
func NewTelemetry() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Spans: &SpanBuffer{}}
}
