package obs

import (
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()

	// Empty histogram: every quantile is 0.
	empty := reg.Histogram("empty", []float64{1, 2})
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}

	// One sample in the first bucket interpolates from zero: target rank
	// 0.5 inside [0, 10) -> 5.
	first := reg.Histogram("first", []float64{10})
	first.Observe(5)
	if got := first.Quantile(0.5); got != 5 {
		t.Errorf("first-bucket p50 = %v, want 5", got)
	}

	// Four samples all inside (1, 2]: p50 lands mid-bucket at 1.5, p100 at
	// the bucket's upper edge.
	mid := reg.Histogram("mid", []float64{1, 2})
	for _, v := range []float64{1.2, 1.4, 1.6, 1.8} {
		mid.Observe(v)
	}
	if got := mid.Quantile(0.5); got != 1.5 {
		t.Errorf("mid-bucket p50 = %v, want 1.5", got)
	}
	if got := mid.Quantile(1); got != 2 {
		t.Errorf("mid-bucket p100 = %v, want 2", got)
	}

	// A rank landing in the overflow bucket reports the last finite bound,
	// and out-of-range q clamps instead of panicking.
	over := reg.Histogram("over", []float64{1, 4})
	over.Observe(100)
	if got := over.Quantile(0.99); got != 4 {
		t.Errorf("overflow p99 = %v, want last bound 4", got)
	}
	if got := over.Quantile(-3); got != over.Quantile(0) {
		t.Errorf("q<0 not clamped: %v", got)
	}
	if got := over.Quantile(7); got != over.Quantile(1) {
		t.Errorf("q>1 not clamped: %v", got)
	}

	// Snapshot surfaces the quantiles for histograms with samples.
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "mid":
			if m.P50 != 1.5 {
				t.Errorf("snapshot mid P50 = %v, want 1.5", m.P50)
			}
		case "empty":
			if m.P50 != 0 || m.P95 != 0 || m.P99 != 0 {
				t.Errorf("empty snapshot quantiles non-zero: %+v", m)
			}
		}
	}
}

// TestWriteProm pins the exposition text exactly: # TYPE per name (once,
// even with several label sets), cumulative buckets ending at +Inf,
// _sum/_count, label escaping, deterministic name order.
func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", L("tenant", "acme")).Add(3)
	reg.Counter("jobs_total", L("tenant", `we"ird\`)).Inc()
	reg.Gauge("depth").Set(2.5)
	h := reg.Histogram("latency_seconds", []float64{1, 2}, L("op", "map"))
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE depth gauge
depth 2.5
# TYPE jobs_total counter
jobs_total{tenant="acme"} 3
jobs_total{tenant="we\"ird\\"} 1
# TYPE latency_seconds histogram
latency_seconds_bucket{op="map",le="1"} 1
latency_seconds_bucket{op="map",le="2"} 2
latency_seconds_bucket{op="map",le="+Inf"} 3
latency_seconds_sum{op="map"} 7
latency_seconds_count{op="map"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("prom exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
