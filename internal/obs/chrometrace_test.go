package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func decodeTrace(t *testing.T, blob []byte) (events []map[string]any) {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, blob)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Node: 1, Stage: "map/kernel", Start: 0.5, End: 1.5},
		{Node: 0, Stage: "map/input", Start: 0, End: 1},
		{Node: 0, Stage: "map/kernel", Start: 0.25, End: 2},
	}
	instants := []Instant{{Node: 1, Name: "node-death", At: 1.25}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, instants...); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	var complete, meta, instant int
	tidByStage := map[string]float64{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			name := ev["name"].(string)
			tid := ev["tid"].(float64)
			if prev, ok := tidByStage[name]; ok && prev != tid {
				t.Errorf("stage %q has tids %g and %g; tracks must be global", name, prev, tid)
			}
			tidByStage[name] = tid
			if ev["dur"].(float64) <= 0 {
				t.Errorf("non-positive dur in %v", ev)
			}
		case "M":
			meta++
		case "i":
			instant++
			if ev["name"] != "node-death" {
				t.Errorf("instant = %v", ev)
			}
		}
	}
	if complete != len(spans) {
		t.Errorf("%d complete events, want %d", complete, len(spans))
	}
	if instant != 1 {
		t.Errorf("%d instant events, want 1", instant)
	}
	// 2 nodes x (1 process_name + 2 thread_name) metadata events.
	if meta != 6 {
		t.Errorf("%d metadata events, want 6", meta)
	}
	// map/input precedes map/kernel in pipeline track order.
	if !(tidByStage["map/input"] < tidByStage["map/kernel"]) {
		t.Errorf("track order wrong: %v", tidByStage)
	}

	// Determinism: same input, byte-identical output.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, spans, instants...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exporter output is not deterministic")
	}
}

func TestWriteChromeTraceMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Span{{Node: 0, Stage: "s", Start: 2, End: 3}}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, buf.Bytes()) {
		if ev["ph"] != "X" {
			continue
		}
		if ev["ts"].(float64) != 2e6 || ev["dur"].(float64) != 1e6 {
			t.Errorf("expected microsecond timestamps, got %v", ev)
		}
	}
}
