package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func decodeTrace(t *testing.T, blob []byte) (events []map[string]any) {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, blob)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Node: 1, Stage: "map/kernel", Start: 0.5, End: 1.5},
		{Node: 0, Stage: "map/input", Start: 0, End: 1},
		{Node: 0, Stage: "map/kernel", Start: 0.25, End: 2},
	}
	instants := []Instant{{Node: 1, Name: "node-death", At: 1.25}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, instants...); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	var complete, meta, instant int
	tidByStage := map[string]float64{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			name := ev["name"].(string)
			tid := ev["tid"].(float64)
			if prev, ok := tidByStage[name]; ok && prev != tid {
				t.Errorf("stage %q has tids %g and %g; tracks must be global", name, prev, tid)
			}
			tidByStage[name] = tid
			if ev["dur"].(float64) <= 0 {
				t.Errorf("non-positive dur in %v", ev)
			}
		case "M":
			meta++
		case "i":
			instant++
			if ev["name"] != "node-death" {
				t.Errorf("instant = %v", ev)
			}
		}
	}
	if complete != len(spans) {
		t.Errorf("%d complete events, want %d", complete, len(spans))
	}
	if instant != 1 {
		t.Errorf("%d instant events, want 1", instant)
	}
	// 2 nodes x (1 process_name + 2 thread_name) metadata events.
	if meta != 6 {
		t.Errorf("%d metadata events, want 6", meta)
	}
	// map/input precedes map/kernel in pipeline track order.
	if !(tidByStage["map/input"] < tidByStage["map/kernel"]) {
		t.Errorf("track order wrong: %v", tidByStage)
	}

	// Determinism: same input, byte-identical output.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, spans, instants...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exporter output is not deterministic")
	}
}

func TestWriteChromeTraceWithMeta(t *testing.T) {
	spans := []Span{{Node: 0, Stage: "map/kernel", Start: 0, End: 1}}

	// nil and empty meta must write exactly the meta-less document — golden
	// tests elsewhere pin WriteChromeTrace bytes.
	var plain, withNil, withEmpty bytes.Buffer
	if err := WriteChromeTrace(&plain, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWithMeta(&withNil, spans, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWithMeta(&withEmpty, spans, map[string]any{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), withNil.Bytes()) || !bytes.Equal(plain.Bytes(), withEmpty.Bytes()) {
		t.Fatal("nil/empty meta changed the trace bytes")
	}

	reg := NewRegistry()
	reg.Counter("dist_shuffle_bytes_total").Add(4096)
	h := reg.Histogram("dist_frame_bytes", []float64{1 << 10, 64 << 10})
	h.Observe(512)
	h.Observe(2048)
	reg.Counter("unrelated_total").Add(7)
	reg.Histogram("empty_hist", nil) // zero samples: omitted
	meta := TraceMeta(reg, "dist_shuffle_bytes_total", "dist_frame_bytes", "empty_hist")

	var buf bytes.Buffer
	if err := WriteChromeTraceWithMeta(&buf, spans, meta); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.OtherData["dist_shuffle_bytes_total"]; got != float64(4096) {
		t.Fatalf("counter meta = %v", got)
	}
	hist, ok := doc.OtherData["dist_frame_bytes"].(map[string]any)
	if !ok {
		t.Fatalf("histogram meta missing: %v", doc.OtherData)
	}
	if hist["count"] != float64(2) || hist["sum"] != float64(2560) {
		t.Fatalf("histogram meta = %v", hist)
	}
	buckets := hist["buckets"].(map[string]any)
	if buckets["le_1024"] != float64(1) || buckets["le_65536"] != float64(1) || buckets["le_+Inf"] != float64(0) {
		t.Fatalf("histogram buckets = %v", buckets)
	}
	if _, there := doc.OtherData["unrelated_total"]; there {
		t.Fatal("unrequested metric leaked into meta")
	}
	if _, there := doc.OtherData["empty_hist"]; there {
		t.Fatal("sample-less histogram leaked into meta")
	}

	// Determinism with meta attached.
	var buf2 bytes.Buffer
	if err := WriteChromeTraceWithMeta(&buf2, spans, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exporter output with meta is not deterministic")
	}
}

func TestWriteChromeTraceMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Span{{Node: 0, Stage: "s", Start: 2, End: 3}}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, buf.Bytes()) {
		if ev["ph"] != "X" {
			continue
		}
		if ev["ts"].(float64) != 2e6 || ev["dur"].(float64) != 1e6 {
			t.Errorf("expected microsecond timestamps, got %v", ev)
		}
	}
}
