package obs

import (
	"bytes"
	"testing"
)

// TestChromeTraceFlowEvents checks the causal-arrow emission: spans whose
// Parent names another recorded span produce an "s"/"f" flow pair — start
// anchored on the parent's slice (its pid/tid/ts), finish bound to the
// child's slice with bp="e" — while orphan parents, self-parents and
// id-less spans (every sim/native trace) produce none.
func TestChromeTraceFlowEvents(t *testing.T) {
	spans := []Span{
		{Node: -1, Stage: "sched/assign", Start: 0.0, End: 0.5, ID: 100},
		{Node: 1, Stage: "map/kernel", Start: 0.1, End: 0.4, ID: 200, Parent: 100},
		{Node: 2, Stage: "net/recv", Start: 0.05, End: 0.3, ID: 300, Parent: 200}, // starts before parent: ts clamps
		{Node: 2, Stage: "reduce", Start: 0.5, End: 0.9, ID: 400, Parent: 999},    // orphan parent: no arrow
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	type flow struct{ ts, pid, tid float64 }
	starts := map[float64]flow{}
	finishes := map[float64]flow{}
	for _, ev := range events {
		if ev["cat"] != "flow" {
			continue
		}
		id := ev["id"].(float64)
		f := flow{ts: ev["ts"].(float64), pid: ev["pid"].(float64), tid: ev["tid"].(float64)}
		switch ev["ph"] {
		case "s":
			starts[id] = f
		case "f":
			if ev["bp"] != "e" {
				t.Errorf("flow finish without bp=e: %v", ev)
			}
			finishes[id] = f
		default:
			t.Errorf("unexpected flow phase %v", ev["ph"])
		}
	}
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("%d starts / %d finishes, want 2/2 (orphan parent must not emit)", len(starts), len(finishes))
	}
	// Track ids for the anchor checks.
	tids := map[string]float64{}
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			tids[ev["args"].(map[string]any)["name"].(string)] = ev["tid"].(float64)
		}
	}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow %v has a start but no finish", id)
		}
		if f.ts < s.ts {
			t.Errorf("flow %v finishes (ts %v) before it starts (ts %v)", id, f.ts, s.ts)
		}
	}
	// The sched/assign -> map/kernel arrow: starts on the coordinator's
	// slice, finishes on worker 1's kernel track.
	found := false
	for id, s := range starts {
		f := finishes[id]
		if s.pid == -1 && s.tid == tids["sched/assign"] && f.pid == 1 && f.tid == tids["map/kernel"] {
			found = true
		}
		_ = id
	}
	if !found {
		t.Error("no flow arrow from the coordinator's sched/assign slice to worker 1's map/kernel slice")
	}

	// Id-less spans emit zero flow events — the golden traces pinned by the
	// root package stay byte-identical.
	plain := []Span{{Node: 0, Stage: "map/kernel", Start: 0, End: 1}}
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, plain); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, buf2.Bytes()) {
		if ev["cat"] == "flow" {
			t.Fatalf("id-less span produced a flow event: %v", ev)
		}
	}
}
