package obs

import (
	"fmt"
	"io"
	"sort"
)

// StageReport is the analyzer's view of one (node, stage) track over the
// traced window.
type StageReport struct {
	Node  int    `json:"node"`
	Stage string `json:"stage"`
	// Spans is the number of recorded intervals.
	Spans int `json:"spans"`
	// Busy is the summed duration of all spans. Tracks served by several
	// workers (mergers, native map workers) can exceed Active.
	Busy float64 `json:"busy"`
	// Active is the union of the spans' intervals: the time at least one
	// worker was busy on this track. Active <= window always.
	Active float64 `json:"active"`
	// Stall is window - Active: time this track sat idle while the job ran.
	Stall float64 `json:"stall"`
	// Occupancy is Active / window, in [0, 1].
	Occupancy float64 `json:"occupancy"`
}

// Report is the pipeline analysis of one traced run — the measured form of
// the paper's §V claim that the 5-stage pipeline hides I/O, PCIe and
// communication cost behind the kernel.
type Report struct {
	// Start/End/Wall delimit the traced window.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Wall  float64 `json:"wall"`
	// Rows are the per-(node, stage) breakdowns, in node then pipeline
	// order.
	Rows []StageReport `json:"rows"`
	// TotalBusy is sum of Busy over all rows.
	TotalBusy float64 `json:"total_busy"`
	// OverlapFactor is TotalBusy / Wall: how many seconds of stage work the
	// pipeline retired per wall second. 1.0 is fully serial; any overlap —
	// stages within a node or nodes against each other — pushes it above 1.
	OverlapFactor float64 `json:"overlap_factor"`
	// CriticalPath is the union of all spans: the time at least one stage
	// anywhere was busy. It lower-bounds any schedule of the same work and
	// Wall - CriticalPath is time the whole job sat idle (startup gaps,
	// phase barriers).
	CriticalPath float64 `json:"critical_path"`
}

// Analyze computes the per-stage busy/stall breakdown, occupancy, overlap
// factor and critical-path estimate from a run's spans.
func Analyze(spans []Span) *Report {
	rep := &Report{}
	if len(spans) == 0 {
		return rep
	}
	type key struct {
		node  int
		stage string
	}
	rows := map[key][]Span{}
	first, last := spans[0].Start, spans[0].End
	for _, s := range spans {
		k := key{s.Node, s.Stage}
		rows[k] = append(rows[k], s)
		if s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	rep.Start, rep.End = first, last
	rep.Wall = last - first

	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		a, b := TrackOrder(keys[i].stage), TrackOrder(keys[j].stage)
		if a != b {
			return a < b
		}
		return keys[i].stage < keys[j].stage
	})
	for _, k := range keys {
		row := StageReport{Node: k.node, Stage: k.stage, Spans: len(rows[k])}
		for _, s := range rows[k] {
			row.Busy += s.End - s.Start
		}
		row.Active = unionDuration(rows[k])
		row.Stall = rep.Wall - row.Active
		if rep.Wall > 0 {
			row.Occupancy = row.Active / rep.Wall
		}
		rep.TotalBusy += row.Busy
		rep.Rows = append(rep.Rows, row)
	}
	if rep.Wall > 0 {
		rep.OverlapFactor = rep.TotalBusy / rep.Wall
	}
	rep.CriticalPath = unionDuration(spans)
	return rep
}

// unionDuration returns the total length of the union of the spans'
// intervals.
func unionDuration(spans []Span) float64 {
	if len(spans) == 0 {
		return 0
	}
	iv := make([][2]float64, 0, len(spans))
	for _, s := range spans {
		iv = append(iv, [2]float64{s.Start, s.End})
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var total float64
	curLo, curHi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curHi {
			total += curHi - curLo
			curLo, curHi = x[0], x[1]
			continue
		}
		if x[1] > curHi {
			curHi = x[1]
		}
	}
	return total + (curHi - curLo)
}

// Busy returns the summed busy time of one (node, stage) row, 0 if absent.
func (r *Report) Busy(node int, stage string) float64 {
	for _, row := range r.Rows {
		if row.Node == node && row.Stage == stage {
			return row.Busy
		}
	}
	return 0
}

// WriteTable renders the §V-style stage-breakdown table: one row per
// (node, stage) with busy/stall/occupancy, then the summary lines.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "pipeline analysis: window %.3fs .. %.3fs (%.3fs wall)\n", r.Start, r.End, r.Wall)
	fmt.Fprintf(w, "%-6s %-16s %6s %10s %10s %10s %6s\n",
		"node", "stage", "spans", "busy(s)", "active(s)", "stall(s)", "occ")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "node%02d %-16s %6d %10.3f %10.3f %10.3f %5.0f%%\n",
			row.Node, row.Stage, row.Spans, row.Busy, row.Active, row.Stall, row.Occupancy*100)
	}
	fmt.Fprintf(w, "total stage busy  %.3fs\n", r.TotalBusy)
	fmt.Fprintf(w, "overlap factor    %.2fx (busy seconds retired per wall second; 1.0 = serial)\n", r.OverlapFactor)
	fmt.Fprintf(w, "critical path     %.3fs (>=1 stage active; %.3fs fully idle)\n",
		r.CriticalPath, r.Wall-r.CriticalPath)
}
