package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.Wall != 0 || len(rep.Rows) != 0 || rep.OverlapFactor != 0 {
		t.Errorf("empty analysis = %+v", rep)
	}
}

func TestAnalyzeHandcrafted(t *testing.T) {
	// Two nodes, two stages. Node 0's kernel track is served by two workers
	// with overlapping spans: Busy > Active, Occupancy still <= 1.
	spans := []Span{
		{Node: 0, Stage: "map/input", Start: 0, End: 1},
		{Node: 0, Stage: "map/kernel", Start: 0.5, End: 2},
		{Node: 0, Stage: "map/kernel", Start: 1, End: 3},
		{Node: 1, Stage: "map/input", Start: 0, End: 2},
	}
	rep := Analyze(spans)
	if rep.Wall != 3 {
		t.Fatalf("wall = %g, want 3", rep.Wall)
	}
	if got := rep.Busy(0, "map/kernel"); got != 1.5+2 {
		t.Errorf("kernel busy = %g, want 3.5", got)
	}
	var kernelRow *StageReport
	for i := range rep.Rows {
		if rep.Rows[i].Node == 0 && rep.Rows[i].Stage == "map/kernel" {
			kernelRow = &rep.Rows[i]
		}
	}
	if kernelRow == nil {
		t.Fatal("no kernel row")
	}
	if kernelRow.Active != 2.5 { // union of [0.5,2] and [1,3]
		t.Errorf("kernel active = %g, want 2.5", kernelRow.Active)
	}
	if kernelRow.Busy <= kernelRow.Active {
		t.Error("overlapping worker spans should make Busy > Active")
	}
	// TotalBusy = 1 + 3.5 + 2; overlap factor = 6.5/3.
	if got, want := rep.OverlapFactor, 6.5/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("overlap = %g, want %g", got, want)
	}
	if rep.CriticalPath != 3 { // the union covers the whole window here
		t.Errorf("critical path = %g, want 3", rep.CriticalPath)
	}
	// Rows come out in node, then pipeline order.
	if rep.Rows[0].Stage != "map/input" || rep.Rows[1].Stage != "map/kernel" || rep.Rows[2].Node != 1 {
		t.Errorf("row order: %+v", rep.Rows)
	}
}

func TestAnalyzeCriticalPathGap(t *testing.T) {
	spans := []Span{
		{Node: 0, Stage: "map/kernel", Start: 0, End: 1},
		{Node: 0, Stage: "reduce/kernel", Start: 2, End: 3},
	}
	rep := Analyze(spans)
	if rep.Wall != 3 || rep.CriticalPath != 2 {
		t.Errorf("wall %g critical %g, want 3 and 2", rep.Wall, rep.CriticalPath)
	}
}

// TestAnalyzeInvariants fuzzes random span sets and checks the analyzer's
// structural guarantees: occupancy in [0,1], Active <= window, Active <=
// Busy per row never violated the other way (Busy >= Active), critical path
// <= wall, and TotalBusy consistent with the rows.
func TestAnalyzeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stages := []string{"map/input", "map/kernel", "map/partition", "merge", "reduce/kernel"}
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		spans := make([]Span, 0, n)
		for i := 0; i < n; i++ {
			start := rng.Float64() * 10
			spans = append(spans, Span{
				Node:  rng.Intn(4),
				Stage: stages[rng.Intn(len(stages))],
				Start: start,
				End:   start + 0.001 + rng.Float64()*3,
			})
		}
		rep := Analyze(spans)
		const eps = 1e-9
		var totalBusy float64
		for _, row := range rep.Rows {
			if row.Occupancy < 0 || row.Occupancy > 1+eps {
				t.Fatalf("iter %d: occupancy %g out of [0,1] (%+v)", iter, row.Occupancy, row)
			}
			if row.Active > rep.Wall+eps {
				t.Fatalf("iter %d: active %g > wall %g", iter, row.Active, rep.Wall)
			}
			if row.Busy+eps < row.Active {
				t.Fatalf("iter %d: busy %g < active %g", iter, row.Busy, row.Active)
			}
			if row.Stall < -eps {
				t.Fatalf("iter %d: negative stall %g", iter, row.Stall)
			}
			totalBusy += row.Busy
		}
		if math.Abs(totalBusy-rep.TotalBusy) > eps {
			t.Fatalf("iter %d: TotalBusy %g != sum of rows %g", iter, rep.TotalBusy, totalBusy)
		}
		if rep.CriticalPath > rep.Wall+eps {
			t.Fatalf("iter %d: critical path %g > wall %g", iter, rep.CriticalPath, rep.Wall)
		}
	}
}

func TestReportTable(t *testing.T) {
	rep := Analyze([]Span{
		{Node: 0, Stage: "map/kernel", Start: 0, End: 2},
		{Node: 1, Stage: "map/kernel", Start: 0, End: 2},
	})
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"node00", "node01", "map/kernel", "overlap factor", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if rep.OverlapFactor != 2 {
		t.Errorf("two fully overlapped nodes should give overlap 2, got %g", rep.OverlapFactor)
	}
}
