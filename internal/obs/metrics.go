package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric (node, stage, partition...).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer. All methods are safe for
// concurrent use; recording is a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. Set is a single atomic store;
// Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are the inclusive upper
// edges of the buckets, fixed at registration; one extra overflow bucket
// catches everything above the last bound. Observe is a binary search plus
// three atomic adds — no locks on the hot path.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, non-cumulative
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefTimeBuckets is a general-purpose duration bucket layout (seconds),
// spanning sub-millisecond kernel launches to hundred-second phases.
var DefTimeBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the bucket that holds the target rank, assuming samples spread
// uniformly inside each bucket. The first bucket interpolates from zero; a
// rank landing in the overflow bucket reports the last finite bound (the
// estimate is a lower bound there — the histogram carries no upper edge).
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n < target || n == 0 {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(target-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds a process's metrics, keyed by name plus canonicalized
// label set. Lookup takes a read lock (hold the returned handle across a hot
// loop); recording on a handle is purely atomic.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	keys     map[string]metricKey // canonical key -> decoded identity
}

type metricKey struct {
	name   string
	typ    string
	labels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		keys:     make(map[string]metricKey),
	}
}

// canonical builds the registry key: name{k1=v1,k2=v2} with labels sorted by
// key, so the same label set always resolves to the same metric.
func canonical(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String(), ls
}

// Counter returns (registering on first use) the counter with this name and
// label set.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key, ls := canonical(name, labels)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	r.keys[key] = metricKey{name: name, typ: "counter", labels: ls}
	return c
}

// Gauge returns (registering on first use) the gauge with this name and
// label set.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key, ls := canonical(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	r.keys[key] = metricKey{name: name, typ: "gauge", labels: ls}
	return g
}

// Histogram returns (registering on first use) the histogram with this name
// and label set. Bounds are fixed by the first registration; later calls
// with the same name+labels return the existing histogram regardless of the
// bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	key, ls := canonical(name, labels)
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	h = &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[key] = h
	r.keys[key] = metricKey{name: name, typ: "histogram", labels: ls}
	return h
}

// Bucket is one histogram bucket in a snapshot: the inclusive upper edge
// ("+Inf" for the overflow bucket) and its non-cumulative sample count.
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Metric is one registry entry in a snapshot.
type Metric struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
	// Estimated quantiles, interpolated from the buckets (histograms with
	// samples only).
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Snapshot returns every metric's current value, sorted by canonical key so
// output is deterministic. Histogram Value is the sample mean.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.keys))
	for k := range r.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Metric, 0, len(keys))
	for _, k := range keys {
		id := r.keys[k]
		m := Metric{Name: id.name, Type: id.typ}
		if len(id.labels) > 0 {
			m.Labels = make(map[string]string, len(id.labels))
			for _, l := range id.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch id.typ {
		case "counter":
			m.Value = float64(r.counters[k].Value())
		case "gauge":
			m.Value = r.gauges[k].Value()
		case "histogram":
			h := r.hists[k]
			m.Count = h.Count()
			m.Sum = h.Sum()
			if m.Count > 0 {
				m.Value = m.Sum / float64(m.Count)
				m.P50 = h.Quantile(0.50)
				m.P95 = h.Quantile(0.95)
				m.P99 = h.Quantile(0.99)
			}
			for i := range h.buckets {
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmt.Sprintf("%g", h.bounds[i])
				}
				m.Buckets = append(m.Buckets, Bucket{Le: le, Count: h.buckets[i].Load()})
			}
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON writes the snapshot as a {"metrics": [...]} JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []Metric `json:"metrics"`
	}{Metrics: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
