package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("node", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", L("node", "0")); again != c {
		t.Error("same name+labels should return the same counter")
	}
	if other := r.Counter("requests_total", L("node", "1")); other == c {
		t.Error("different labels should be a different counter")
	}

	g := r.Gauge("temp")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Errorf("gauge = %g, want 1.0", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("a", "1"), L("b", "2"))
	b := r.Counter("m", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order must not matter for metric identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// 0.005 and 0.01 land in the first bucket (inclusive upper edge), 0.05
	// in the second, 0.5 in the third, 5 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("obs", DefTimeBuckets)
			g := r.Gauge("level")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("obs", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("level").Value(); got != 8000 {
		t.Errorf("concurrent gauge = %g, want 8000", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("node", "1")).Add(3)
	r.Gauge("a_seconds").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	// Sorted by canonical key: a_seconds, b_total{...}, h.
	if snap[0].Name != "a_seconds" || snap[1].Name != "b_total" || snap[2].Name != "h" {
		t.Errorf("snapshot order: %q %q %q", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[1].Labels["node"] != "1" || snap[1].Value != 3 {
		t.Errorf("counter snapshot = %+v", snap[1])
	}
	if snap[2].Count != 1 || len(snap[2].Buckets) != 2 || snap[2].Buckets[1].Le != "+Inf" {
		t.Errorf("histogram snapshot = %+v", snap[2])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Metric `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Errorf("round-tripped %d metrics, want 3", len(doc.Metrics))
	}
}
