// Package blockstore is the on-disk half of glasswing's distributed file
// story: each worker runs a Store — a directory of fixed-size input blocks
// — and the coordinator runs the namespace that says which workers hold a
// replica of which block. Files are chunked into blocks upstream (the
// coordinator's SplitBlocks), pushed to their replica holders over the
// cluster's framed TCP transport at job start, and read back at map time
// either locally (the block lives on the mapper's own disk — the Fig 3(d)
// locality case) or streamed from a remote holder.
//
// The package itself is deliberately transport-free: it knows directories,
// atomic block files, and streaming readers. Replication placement is a
// pure function (Place) so the coordinator can journal it; the wire
// messages that move blocks live in internal/dist.
package blockstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ReadChunk is the granularity of streaming reads: the readahead goroutine
// stays at most this far ahead of the consumer, and remote block serving
// ships chunks of this size, so neither side ever materializes a whole
// block just to move it.
const ReadChunk = 256 << 10

// Store is one worker's slice of the distributed block store: a directory
// holding block files. Puts are atomic (tmp file + rename), so a crashed
// ingest never leaves a torn block for a later open to trust.
type Store struct {
	dir string

	mu    sync.Mutex
	sizes map[int]int64
}

// Open opens (creating if needed) a store rooted at dir and indexes any
// blocks already present — a worker that outlives a coordinator restart
// resumes serving its replicas without re-ingest.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	s := &Store{dir: dir, sizes: make(map[int]int64)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".blk") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, ".blk"))
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.sizes[id] = info.Size()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.blk", id))
}

// Put stores one block atomically: the bytes land in a temp file that is
// renamed into place, so concurrent readers see either the whole block or
// no block.
func (s *Store) Put(id int, data []byte) error {
	f, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockstore: %w", err)
	}
	s.mu.Lock()
	s.sizes[id] = int64(len(data))
	s.mu.Unlock()
	return nil
}

// Has reports whether this store holds block id.
func (s *Store) Has(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[id]
	return ok
}

// Size returns block id's size in bytes, if held.
func (s *Store) Size(id int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.sizes[id]
	return n, ok
}

// Blocks lists the held block ids in ascending order.
func (s *Store) Blocks() []int {
	s.mu.Lock()
	ids := make([]int, 0, len(s.sizes))
	for id := range s.sizes {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Ints(ids)
	return ids
}

// Open returns a streaming reader over block id. The reader runs one
// ReadChunk of readahead on a background goroutine, so disk latency
// overlaps whatever the consumer does with the previous chunk; it never
// holds more than two chunks in memory.
func (s *Store) Open(id int) (*Reader, error) {
	s.mu.Lock()
	size, ok := s.sizes[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("blockstore: no block %d", id)
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	return newReader(f, size), nil
}

// ReadAll materializes block id. Map kernels parse whole blocks, so the
// per-task high-water mark is one block regardless of dataset size; the
// bytes still arrive through the streaming reader.
func (s *Store) ReadAll(id int) ([]byte, error) {
	r, err := s.Open(id)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, 0, r.Size())
	chunk := make([]byte, ReadChunk)
	for {
		n, err := r.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Remove deletes block id if held.
func (s *Store) Remove(id int) error {
	s.mu.Lock()
	delete(s.sizes, id)
	s.mu.Unlock()
	err := os.Remove(s.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: %w", err)
	}
	return nil
}

// Reader streams one block with background readahead.
type Reader struct {
	size   int64
	chunks chan readChunk
	stop   chan struct{}
	once   sync.Once
	cur    []byte
	err    error
}

type readChunk struct {
	data []byte
	err  error
}

func newReader(f *os.File, size int64) *Reader {
	r := &Reader{
		size:   size,
		chunks: make(chan readChunk, 1),
		stop:   make(chan struct{}),
	}
	go func() {
		defer f.Close()
		for {
			buf := make([]byte, ReadChunk)
			n, err := io.ReadFull(f, buf)
			if n > 0 {
				select {
				case r.chunks <- readChunk{data: buf[:n]}:
				case <-r.stop:
					return
				}
			}
			if err != nil {
				if err == io.ErrUnexpectedEOF {
					err = io.EOF
				}
				select {
				case r.chunks <- readChunk{err: err}:
				case <-r.stop:
				}
				return
			}
		}
	}()
	return r
}

// Size returns the block's total size in bytes.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		c := <-r.chunks
		r.cur, r.err = c.data, c.err
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close stops the readahead goroutine and releases the file.
func (r *Reader) Close() error {
	r.once.Do(func() { close(r.stop) })
	// Drain anything the goroutine already queued so it can observe stop.
	select {
	case <-r.chunks:
	default:
	}
	return nil
}

// Place computes the namespace's replica placement: block b's holders are
// the `replication` workers starting at b%nWorkers — the same round-robin
// the simulated DFS uses, so the dist scheduler's existing b%n task deal is
// automatically a local read for every block's first replica, and the Fig
// 3(d) locality preference degrades gracefully (work stealing or a dead
// holder falls back to a remote streaming read).
func Place(nBlocks, nWorkers, replication int) [][]int {
	if nWorkers < 1 {
		return nil
	}
	if replication < 1 {
		replication = 1
	}
	if replication > nWorkers {
		replication = nWorkers
	}
	holders := make([][]int, nBlocks)
	for b := range holders {
		hs := make([]int, replication)
		for j := range hs {
			hs[j] = (b + j) % nWorkers
		}
		holders[b] = hs
	}
	return holders
}
