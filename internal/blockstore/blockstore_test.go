package blockstore

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestPutOpenRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Spans multiple read chunks so the readahead path is exercised.
	data := make([]byte, ReadChunk*2+12345)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.Put(3, data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(3) || s.Has(4) {
		t.Fatalf("Has: got (%v,%v), want (true,false)", s.Has(3), s.Has(4))
	}
	if n, ok := s.Size(3); !ok || n != int64(len(data)) {
		t.Fatalf("Size(3) = (%d,%v), want (%d,true)", n, ok, len(data))
	}
	r, err := s.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("streamed read: %d bytes, want %d (content mismatch: %v)",
			len(got), len(data), !bytes.Equal(got, data))
	}
	got2, err := s.ReadAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("ReadAll mismatch")
	}
}

func TestOpenMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(9); err == nil {
		t.Fatal("Open(9) on empty store: want error")
	}
	if _, err := s.ReadAll(9); err == nil {
		t.Fatal("ReadAll(9) on empty store: want error")
	}
}

func TestReopenIndexesExistingBlocks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(7, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	// A stray temp file must not be indexed as a block.
	if err := os.WriteFile(filepath.Join(dir, "put-junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Blocks(); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("reopened Blocks() = %v, want [0 7]", got)
	}
	b, err := s2.ReadAll(7)
	if err != nil || string(b) != "beta" {
		t.Fatalf("ReadAll(7) = %q, %v", b, err)
	}
	if err := s2.Remove(7); err != nil {
		t.Fatal(err)
	}
	if s2.Has(7) {
		t.Fatal("Remove(7) left the block indexed")
	}
	if err := s2.Remove(7); err != nil {
		t.Fatal("Remove must be idempotent")
	}
}

func TestPlace(t *testing.T) {
	holders := Place(5, 3, 2)
	want := [][]int{{0, 1}, {1, 2}, {2, 0}, {0, 1}, {1, 2}}
	for b, hs := range holders {
		if len(hs) != len(want[b]) {
			t.Fatalf("block %d: %v, want %v", b, hs, want[b])
		}
		for j := range hs {
			if hs[j] != want[b][j] {
				t.Fatalf("block %d: %v, want %v", b, hs, want[b])
			}
		}
	}
	// Replication is clamped to the cluster size.
	if hs := Place(1, 2, 5)[0]; len(hs) != 2 {
		t.Fatalf("clamped replication: %v, want 2 holders", hs)
	}
	if hs := Place(1, 4, 0)[0]; len(hs) != 1 {
		t.Fatalf("zero replication: %v, want 1 holder", hs)
	}
}
