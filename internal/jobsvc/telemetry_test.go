package jobsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// TestRetryAfterDerived pins the saturation backoff hint in all three
// regimes with a gated stub runner (so nothing real races the clock):
//
//   - cold: a tenant with no completed jobs gets Config.RetryAfter
//     verbatim, and the Retry-After header is that floor rounded up;
//   - warm: with service-time samples the hint is the tenant's p50 scaled
//     by queue depth — strictly above the floor, within the 30s cap;
//   - capped: absurd service times clamp to exactly 30s.
func TestRetryAfterDerived(t *testing.T) {
	s := New(Config{
		FleetWorkers: 2,
		MaxQueue:     8,
		DefaultQuota: Quota{MaxQueued: 2, MaxRunning: 1},
		RetryAfter:   1500 * time.Millisecond,
	})
	release := make(chan struct{})
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		<-release
		return &dist.Result{}, obs.NewTelemetry(), nil
	}
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		close(release)
		s.Close()
	}()

	// Fill tenant "cold": one dispatched (gated) — wait for the scheduler
	// to actually move it to running so it stops counting against the
	// queued cap — then two queued, then reject.
	first, apiErr := s.Submit(wcRequest("cold", "low", 2))
	if apiErr != nil {
		t.Fatalf("submit 0: %v", apiErr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.JobStatus(first.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never dispatched (state %s)", first.ID, cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		if _, apiErr := s.Submit(wcRequest("cold", "low", 2)); apiErr != nil {
			t.Fatalf("submit %d: %v", i, apiErr)
		}
	}
	_, apiErr = s.Submit(wcRequest("cold", "low", 2))
	if apiErr == nil {
		t.Fatal("4th submit admitted; want tenant-queue-quota rejection")
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Reason != "tenant-queue-quota" {
		t.Fatalf("rejection: %v", apiErr)
	}
	if apiErr.RetryAfterMS != 1500 {
		t.Errorf("cold retry_after_ms = %d, want exactly 1500 (no samples -> configured floor)", apiErr.RetryAfterMS)
	}

	// Same rejection over HTTP: the header is the floor rounded up.
	body, _ := json.Marshal(Request{Tenant: "cold", App: "wc", Priority: "low", Workers: 2,
		InputB64: wcRequest("cold", "low", 2).InputB64})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("raw submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw submit status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After header = %q, want %q (1500ms rounded up)", got, "2")
	}

	// Warm: seed the tenant's service-time histogram with ~5s jobs. The
	// hint becomes p50 scaled by queue depth — above the floor, under the
	// cap. (Seeding directly keeps the test clock-free; runJob records
	// into this same histogram.)
	s.mu.Lock()
	h := s.reg.Histogram("jobsvc_service_seconds", obs.DefTimeBuckets, obs.L("tenant", "cold"))
	for i := 0; i < 3; i++ {
		h.Observe(5.0)
	}
	warm := s.retryAfterLocked("cold")
	queued := s.queuedTotal
	s.mu.Unlock()
	if warm <= 1500*time.Millisecond || warm > 30*time.Second {
		t.Errorf("warm hint %v outside (1.5s, 30s] with p50=5.5s and %d queued", warm, queued)
	}

	// Capped: service times beyond the bucket range clamp to exactly 30s.
	s.mu.Lock()
	for i := 0; i < 100; i++ {
		h.Observe(500.0)
	}
	capped := s.retryAfterLocked("cold")
	s.mu.Unlock()
	if capped != 30*time.Second {
		t.Errorf("capped hint = %v, want exactly 30s", capped)
	}
}

// TestRuntimeGauges proves the runtime sampler publishes the process
// gauges and stops cleanly on Close (the goroutine-leak check in the load
// tests would catch a sampler that outlives its service).
func TestRuntimeGauges(t *testing.T) {
	s := New(Config{RuntimeSampleEvery: 5 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.reg.Gauge("process_goroutines").Value() > 0 &&
			s.reg.Gauge("process_heap_inuse_bytes").Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runtime gauges never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	// GC pause total is cumulative and may legitimately be zero early; it
	// must at least be registered and non-negative.
	if v := s.reg.Gauge("process_gc_pause_ns").Value(); v < 0 {
		t.Errorf("process_gc_pause_ns = %v, want >= 0", v)
	}
	s.Close()

	// A negative interval disables the sampler entirely.
	s2 := New(Config{RuntimeSampleEvery: -1})
	time.Sleep(10 * time.Millisecond)
	found := false
	for _, m := range s2.reg.Snapshot() {
		if m.Name == "process_goroutines" {
			found = true
		}
	}
	if found {
		t.Error("sampler ran despite RuntimeSampleEvery < 0")
	}
	s2.Close()
}

// TestMetricsPromEndpoint checks GET /metrics?format=prom serves the
// Prometheus text exposition: the version content type, # TYPE comments,
// cumulative histogram buckets ending at +Inf, and labeled counters.
func TestMetricsPromEndpoint(t *testing.T) {
	_, srv := apiFixture(t, Config{})
	status, m := postJSON(t, srv.URL, goodBody())
	if status != 202 {
		t.Fatalf("submit: %d %v", status, m)
	}
	cli := Client{Base: srv.URL}
	if _, err := cli.WaitDone(m["id"].(string), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET prom: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text exposition 0.0.4", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE jobsvc_queue_depth gauge",
		"# TYPE jobsvc_admitted_total counter",
		`jobsvc_admitted_total{tenant="t1"} 1`,
		"# TYPE jobsvc_service_seconds histogram",
		`jobsvc_service_seconds_bucket{tenant="t1",le="+Inf"} 1`,
		`jobsvc_service_seconds_count{tenant="t1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// JSON stays the default rendering.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET json: %v", err)
	}
	defer resp2.Body.Close()
	var doc struct {
		Metrics []obs.Metric `json:"metrics"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&doc); err != nil || len(doc.Metrics) == 0 {
		t.Errorf("default /metrics not a JSON snapshot: %v (%d metrics)", err, len(doc.Metrics))
	}
}

// TestMetricsStream reads two SSE frames off GET /metrics/stream and
// checks each is a complete metrics snapshot; disconnecting the client
// must end the handler (covered by the server's own shutdown in Cleanup).
func TestMetricsStream(t *testing.T) {
	_, srv := apiFixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/metrics/stream?interval_ms=100", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	frames := 0
	for sc.Scan() && frames < 2 {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("SSE line %q lacks data: prefix", line)
		}
		var doc struct {
			Metrics []obs.Metric `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &doc); err != nil {
			t.Fatalf("SSE frame not a metrics snapshot: %v", err)
		}
		if len(doc.Metrics) == 0 {
			t.Fatal("SSE frame carries no metrics")
		}
		frames++
	}
	if frames < 2 {
		t.Fatalf("stream ended after %d frames: %v", frames, sc.Err())
	}

	// A bad interval is a structured 400.
	resp2, err := http.Get(srv.URL + "/metrics/stream?interval_ms=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval: status %d, want 400", resp2.StatusCode)
	}
}

// syncBuffer is a locked bytes.Buffer for the journal: slog records
// arrive from the scheduler and runner goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestEventJournal runs one job through a journaling service and checks
// the structured lifecycle records exist, parse as JSON, and agree on
// tenant, job id and trace id — the correlation key the trace endpoint
// serves under.
func TestEventJournal(t *testing.T) {
	var buf syncBuffer
	s := New(Config{Events: slog.New(slog.NewJSONHandler(&buf, nil))})
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		return &dist.Result{}, obs.NewTelemetry(), nil
	}
	defer s.Close()

	st, apiErr := s.Submit(wcRequest("acme", "high", 2))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if len(st.TraceID) != 16 {
		t.Fatalf("status trace_id %q, want 16 hex digits", st.TraceID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.JobStatus(st.ID)
		if cur.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}

	want := map[string]bool{"job-admitted": false, "job-dispatched": false, "job-completed": false}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line not JSON: %q", line)
		}
		msg, _ := rec["msg"].(string)
		if _, ok := want[msg]; !ok {
			continue
		}
		if rec["tenant"] != "acme" || rec["job"] != st.ID || rec["trace"] != st.TraceID {
			t.Errorf("%s keyed %v/%v/%v, want acme/%s/%s", msg, rec["tenant"], rec["job"], rec["trace"], st.ID, st.TraceID)
		}
		want[msg] = true
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("journal missing %s record", msg)
		}
	}
}
