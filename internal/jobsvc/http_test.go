package jobsvc

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// apiFixture is a service with an instant stub runner behind a test server.
func apiFixture(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		return &dist.Result{}, obs.NewTelemetry(), nil
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func goodBody() string {
	in := base64.StdEncoding.EncodeToString([]byte("a b\nc a\n"))
	return `{"tenant":"t1","app":"wc","input_b64":"` + in + `"}`
}

// postJSON posts a raw body and decodes the response JSON into a map.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response %d is not JSON (%v): %q", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, m
}

// TestAPISubmitRejections is the malformed-request table: every bad
// submission must come back as a structured JSON error with the right
// status and a stable reason slug — never a hang, a bare 500, or a panic.
func TestAPISubmitRejections(t *testing.T) {
	bigParams := base64.StdEncoding.EncodeToString(make([]byte, 200))
	bigInput := base64.StdEncoding.EncodeToString(make([]byte, 4096))
	in := base64.StdEncoding.EncodeToString([]byte("a b\n"))

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantReason string
	}{
		{"malformed json", `{"tenant":`, 400, "malformed-json"},
		{"json wrong type", `{"tenant":17}`, 400, "malformed-json"},
		{"missing tenant", `{"app":"wc","input_b64":"` + in + `"}`, 400, "missing-tenant"},
		{"unknown app", `{"tenant":"t","app":"sortzilla","input_b64":"` + in + `"}`, 400, "unknown-app"},
		{"missing app", `{"tenant":"t","input_b64":"` + in + `"}`, 400, "unknown-app"},
		{"bad priority", `{"tenant":"t","app":"wc","priority":"urgent","input_b64":"` + in + `"}`, 400, "bad-priority"},
		{"empty input", `{"tenant":"t","app":"wc"}`, 400, "empty-input"},
		{"input not base64", `{"tenant":"t","app":"wc","input_b64":"!!!"}`, 400, "bad-input-encoding"},
		{"params not base64", `{"tenant":"t","app":"wc","input_b64":"` + in + `","params_b64":"%%%"}`, 400, "bad-params-encoding"},
		{"oversized params", `{"tenant":"t","app":"wc","input_b64":"` + in + `","params_b64":"` + bigParams + `"}`, 413, "params-too-large"},
		{"oversized input", `{"tenant":"t","app":"wc","input_b64":"` + bigInput + `"}`, 413, "input-too-large"},
		{"bad collector", `{"tenant":"t","app":"wc","input_b64":"` + in + `","collector":"heap"}`, 400, "bad-collector"},
		{"negative geometry", `{"tenant":"t","app":"wc","input_b64":"` + in + `","partitions":-3}`, 400, "bad-geometry"},
		{"fault injection disabled", `{"tenant":"t","app":"wc","input_b64":"` + in + `","map_fault_mod":3}`, 400, "fault-injection-disabled"},
		{"ts without params", `{"tenant":"t","app":"ts","input_b64":"` + in + `","record_size":100}`, 400, "unknown-app"},
	}

	_, srv := apiFixture(t, Config{MaxInputBytes: 1024, MaxParamsBytes: 100})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, m := postJSON(t, srv.URL, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status %d, want %d (body %v)", status, tc.wantStatus, m)
			}
			if got, _ := m["reason"].(string); got != tc.wantReason {
				t.Errorf("reason %q, want %q", got, tc.wantReason)
			}
			if msg, _ := m["error"].(string); msg == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestAPIJobLifecycle covers the read-side endpoints: unknown IDs 404,
// results before completion 409, double result fetch is idempotent, cancel
// of finished jobs 409, and the trace/metrics endpoints serve valid JSON.
func TestAPIJobLifecycle(t *testing.T) {
	_, srv := apiFixture(t, Config{})
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Unknown IDs: every read endpoint must 404 with a structured body.
	for _, path := range []string{"/jobs/j-999", "/jobs/j-999/result", "/jobs/j-999/trace", "/jobs/j-999/metrics"} {
		status, body := get(path)
		if status != 404 {
			t.Errorf("GET %s: status %d, want 404", path, status)
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil || m["reason"] != "unknown-job" {
			t.Errorf("GET %s: body %q, want unknown-job JSON", path, body)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/j-999", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 404 {
		t.Errorf("DELETE unknown job: %v status %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Submit and wait for completion (instant stub runner).
	status, m := postJSON(t, srv.URL, goodBody())
	if status != 202 {
		t.Fatalf("submit: status %d body %v", status, m)
	}
	id := m["id"].(string)
	cli := Client{Base: srv.URL}
	fin, err := cli.WaitDone(id, 10*time.Second)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job %s: %v / %+v", id, err, fin)
	}

	// Double fetch: both 200, byte-identical payloads.
	s1, b1 := get("/jobs/" + id + "/result")
	s2, b2 := get("/jobs/" + id + "/result")
	if s1 != 200 || s2 != 200 || string(b1) != string(b2) {
		t.Errorf("double result fetch: %d/%d, identical=%v", s1, s2, string(b1) == string(b2))
	}

	// Trace and per-job metrics are valid JSON documents.
	if st, body := get("/jobs/" + id + "/trace"); st != 200 || !json.Valid(body) {
		t.Errorf("trace: status %d, valid JSON %v", st, json.Valid(body))
	}
	if st, body := get("/jobs/" + id + "/metrics"); st != 200 || !json.Valid(body) {
		t.Errorf("job metrics: status %d, valid JSON %v", st, json.Valid(body))
	}

	// Canceling a finished job is a structured 409.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE finished: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("DELETE finished job: status %d, want 409", resp.StatusCode)
	}

	// The list endpoint includes the job.
	st, body := get("/jobs")
	if st != 200 {
		t.Fatalf("GET /jobs: %d", st)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil || len(list.Jobs) == 0 {
		t.Errorf("GET /jobs: %v, %d jobs", err, len(list.Jobs))
	}
}

// TestAPIResultBeforeDone pins the 409 on reading a job that has not
// finished: a gated runner holds the job in running state.
func TestAPIResultBeforeDone(t *testing.T) {
	s := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{})
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		close(entered)
		<-release
		return &dist.Result{}, obs.NewTelemetry(), nil
	}
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		s.Close()
	}()

	status, m := postJSON(t, srv.URL, goodBody())
	if status != 202 {
		t.Fatalf("submit: %d %v", status, m)
	}
	id := m["id"].(string)
	<-entered

	resp, err := http.Get(srv.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var e map[string]any
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != 409 || e["reason"] != "not-finished" {
		t.Errorf("result while running: %d %v, want 409 not-finished", resp.StatusCode, e)
	}
	close(release)
}

// TestRecoverMiddleware proves a panicking handler surfaces as a
// structured 500, not a torn connection.
func TestRecoverMiddleware(t *testing.T) {
	h := withRecover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/anything")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if m["reason"] != "internal-panic" {
		t.Errorf("reason %v, want internal-panic", m["reason"])
	}
}

// TestAPIBodyTooLarge pins the transport-level body cap.
func TestAPIBodyTooLarge(t *testing.T) {
	_, srv := apiFixture(t, Config{MaxInputBytes: 512, MaxParamsBytes: 128})
	big := strings.Repeat("x", 1<<20)
	status, m := postJSON(t, srv.URL, `{"tenant":"t","app":"wc","input_b64":"`+big+`"}`)
	if status != 413 {
		t.Errorf("status %d, want 413 (%v)", status, m["reason"])
	}
}
