package jobsvc

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"glasswing/internal/obs"
)

// maxBodyBytes bounds a request body read: the input/params caps are
// enforced post-decode, this is the transport-level backstop (base64
// inflates by 4/3, JSON quoting adds a little more).
func (s *Service) maxBodyBytes() int64 {
	return 2*(s.cfg.MaxInputBytes+s.cfg.MaxParamsBytes) + 1<<16
}

// Handler returns the service's HTTP API:
//
//	POST   /jobs              submit (202, or 429/4xx structured errors)
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         status
//	DELETE /jobs/{id}         cancel a queued job
//	GET    /jobs/{id}/result  final pairs (base64 kv wire format)
//	GET    /jobs/{id}/trace   merged cluster Chrome trace (coordinator + workers)
//	GET    /jobs/{id}/metrics the job's private conservation-counter registry
//	GET    /metrics           service-level registry (JSON; ?format=prom for
//	                          Prometheus text exposition)
//	GET    /metrics/stream    live SSE metric snapshots (?interval_ms=...)
//
// Every error is a structured JSON object {"error", "reason", ...}; a
// panic in any handler is recovered into a structured 500, never a torn
// connection.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/stream", s.handleMetricsStream)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("POST /fleet", s.handleFleetResize)
	return withRecover(mux)
}

// FleetStatus is the GET/POST /fleet payload: the shared worker-slot
// pool's capacity and free count. Free can read negative right after a
// shrink below current usage — the deficit drains as running jobs finish.
type FleetStatus struct {
	Total int `json:"total"`
	Free  int `json:"free"`
}

func (s *Service) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, FleetStatus{Total: s.fleet.Total(), Free: s.fleet.Free()})
}

// handleFleetResize is the elastic scaling hook: POST /fleet {"workers": n}
// grows or shrinks the shared slot pool in place. Shrinking never preempts
// a running job; it only gates new dispatches until usage fits.
func (s *Service) handleFleetResize(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Workers int `json:"workers"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<12)).Decode(&req); err != nil {
		writeError(w, badRequest("malformed-json", "decoding request: %v", err))
		return
	}
	if req.Workers < 1 {
		writeError(w, badRequest("bad-fleet-size", "workers must be >= 1, got %d", req.Workers))
		return
	}
	writeJSON(w, http.StatusOK, s.ResizeFleet(req.Workers))
}

// withRecover converts handler panics into structured 500s so a malformed
// request can never tear down the resident service or leak a stack trace
// as a broken response.
func withRecover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("jobsvc: recovered panic serving %s %s: %v", r.Method, r.URL.Path, p)
				writeError(w, &APIError{Status: http.StatusInternalServerError, Reason: "internal-panic",
					Msg: "internal error"})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *APIError) {
	if e.RetryAfterMS > 0 {
		secs := (e.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.Status, e)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBodyBytes()+1))
	if err != nil {
		writeError(w, badRequest("bad-body", "reading body: %v", err))
		return
	}
	if int64(len(body)) > s.maxBodyBytes() {
		writeError(w, &APIError{Status: http.StatusRequestEntityTooLarge, Reason: "body-too-large",
			Msg: fmt.Sprintf("request body exceeds %d bytes", s.maxBodyBytes())})
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, badRequest("malformed-json", "decoding request: %v", err))
		return
	}
	st, apiErr := s.Submit(req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: s.List()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, apiErr := s.JobStatus(r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, apiErr := s.Cancel(r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// Result is the GET /jobs/{id}/result payload: the job's final pairs in
// partition order, kv wire format, base64. Fetching is idempotent — the
// result stays addressable until the service exits.
type Result struct {
	ID        string `json:"id"`
	Pairs     int    `json:"pairs"`
	OutputB64 string `json:"output_b64"`
}

// jobForRead fetches a job in a terminal-done state for the result/trace/
// metrics endpoints, mapping absence and non-terminal states to
// structured errors.
func (s *Service) jobForRead(id string) (*job, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, &APIError{Status: http.StatusNotFound, Reason: "unknown-job", Msg: fmt.Sprintf("no job %q", id)}
	}
	if !j.state.terminal() {
		return nil, &APIError{Status: http.StatusConflict, Reason: "not-finished",
			Msg: fmt.Sprintf("job %s is %s; poll GET /jobs/%s until it finishes", id, j.state, id)}
	}
	if j.state != StateDone {
		return nil, &APIError{Status: http.StatusConflict, Reason: "job-" + string(j.state),
			Msg: fmt.Sprintf("job %s finished %s: %s", id, j.state, j.errMsg)}
	}
	return j, nil
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, apiErr := s.jobForRead(r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// j.output and j.stats are immutable once the job is done; no lock
	// needed to serialize them.
	writeJSON(w, http.StatusOK, Result{
		ID:        j.id,
		Pairs:     j.stats.OutputPairs,
		OutputB64: base64.StdEncoding.EncodeToString(j.output),
	})
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, apiErr := s.jobForRead(r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The span buffer holds the merged cluster trace: the coordinator's
	// scheduling spans plus every worker's batch, clock-aligned to the
	// coordinator's epoch by the dist runtime before they landed here.
	meta := map[string]any{"trace_id": traceIDHex(j.traceID), "job": j.id, "tenant": j.tenant}
	obs.WriteChromeTraceWithMeta(w, j.tel.Spans.Spans(), meta, j.tel.Spans.Instants()...)
}

func (s *Service) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, apiErr := s.jobForRead(r.PathValue("id"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j.tel.Metrics.WriteJSON(w)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

// handleMetricsStream serves live metric snapshots as server-sent events:
// one `data:` frame per interval, each a complete {"metrics": [...]}
// snapshot. The stream ends when the client disconnects or the service
// closes. interval_ms is clamped to [100, 60000]; default 1000.
func (s *Service) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &APIError{Status: http.StatusNotImplemented, Reason: "no-streaming",
			Msg: "response writer does not support streaming"})
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, badRequest("bad-interval", "interval_ms: %v", err))
			return
		}
		interval = time.Duration(min(max(ms, 100), 60000)) * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func() bool {
		doc, err := json.Marshal(struct {
			Metrics []obs.Metric `json:"metrics"`
		}{Metrics: s.reg.Snapshot()})
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", doc); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit() {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stopCh:
			return
		case <-t.C:
			if !emit() {
				return
			}
		}
	}
}
