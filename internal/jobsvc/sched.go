package jobsvc

import (
	"fmt"
	"os"
	"time"

	"glasswing/internal/dist"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// scheduler is the dispatch loop: on every wakeup (submission, cancel,
// completion, shutdown) it re-picks the best queued job under the current
// queue state and starts it if the fleet has slots. Re-picking from
// scratch — rather than blocking on one chosen candidate — is what lets a
// high-priority submission overtake a lower one that arrived while the
// fleet was full.
func (s *Service) scheduler() {
	defer s.schedWG.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return
		}
		j, rrIdx := s.pickLocked()
		if j == nil {
			// Nothing runnable: queue empty, or every queued tenant is at
			// its running cap.
			s.cond.Wait()
			continue
		}
		// A fleet shrink after admission can leave a queued job wanting more
		// workers than the pool will ever hold again; clamp at dispatch so
		// it runs smaller instead of blocking its class forever.
		if t := s.fleet.Total(); j.workers > t {
			j.workers = t
		}
		if !s.fleet.TryAcquire(j.workers) {
			// The class leader does not fit the free slot budget. Wait for
			// a release rather than dispatching around it: bypassing would
			// let a stream of small jobs starve a big one and would break
			// strict priority order.
			s.cond.Wait()
			continue
		}
		s.dispatchLocked(j, rrIdx)
	}
}

// pickLocked chooses the next job under strict priority with round-robin
// across tenants and FIFO within a tenant's class, skipping tenants at
// their running-set quota. Returns the job plus the tenant's index in
// tenantOrder (to advance the class's RR cursor on dispatch).
func (s *Service) pickLocked() (*job, int) {
	n := len(s.tenantOrder)
	for p := numPriorities - 1; p >= 0; p-- {
		for k := 0; k < n; k++ {
			idx := (s.rr[p] + k) % n
			t := s.tenants[s.tenantOrder[idx]]
			if len(t.queued[p]) == 0 {
				continue
			}
			if t.running >= s.quotaFor(t.name).MaxRunning {
				continue
			}
			return t.queued[p][0], idx
		}
	}
	return nil, 0
}

// dispatchLocked moves a picked job (whose slots are already acquired)
// into the running set and launches its cluster goroutine.
func (s *Service) dispatchLocked(j *job, rrIdx int) {
	if s.dispatchHook != nil {
		ev := DispatchEvent{
			JobID: j.id, Tenant: j.tenant, Priority: j.pri, Workers: j.workers,
			QueuedAt:  make(map[string][numPriorities]int, len(s.tenants)),
			RunningAt: make(map[string]int, len(s.tenants)),
		}
		for name, t := range s.tenants {
			var counts [numPriorities]int
			for p := range t.queued {
				counts[p] = len(t.queued[p])
			}
			ev.QueuedAt[name] = counts
			ev.RunningAt[name] = t.running
		}
		s.dispatchHook(ev)
	}
	s.removeQueuedLocked(j)
	t := s.tenants[j.tenant]
	t.running++
	s.runningJobs++
	s.rr[j.pri] = (rrIdx + 1) % max(len(s.tenantOrder), 1)
	j.state = StateRunning
	j.started = time.Now()
	s.counter("jobsvc_dispatch_total", obs.L("tenant", j.tenant), obs.L("priority", j.pri.String())).Inc()
	s.event("job-dispatched", "tenant", j.tenant, "job", j.id, "trace", traceIDHex(j.traceID),
		"priority", j.pri.String(), "workers", j.workers, "wait_ms", j.started.Sub(j.submitted).Milliseconds())
	s.reg.Histogram("jobsvc_queue_wait_seconds", obs.DefTimeBuckets, obs.L("tenant", j.tenant)).
		Observe(j.started.Sub(j.submitted).Seconds())
	s.gaugeQueue()
	s.gaugeSlots()
	s.runWG.Add(1)
	go s.runJob(j)
}

// runJob executes one dispatched job to completion and settles it.
func (s *Service) runJob(j *job) {
	defer s.runWG.Done()
	res, tel, err := s.runFn(j)

	s.fleet.Release(j.workers)
	s.mu.Lock()
	j.finished = time.Now()
	j.tel = tel
	j.input = nil // the run consumed it; free queue-sized memory early
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.output = kv.Marshal(res.Output())
		j.stats = &JobStats{
			InputBytes:        res.InputBytes,
			IntermediatePairs: res.IntermediatePairs,
			OutputPairs:       res.OutputPairs,
			MapRetries:        res.MapRetries,
			WorkersLost:       res.WorkersLost,
			MapRecoveries:     res.MapRecoveries,
			WorkersJoined:     res.WorkersJoined,
			WorkersDrained:    res.WorkersDrained,
			Resumed:           res.Resumed,
			ReadLocalBytes:    res.ReadLocalBytes,
			ReadRemoteBytes:   res.ReadRemoteBytes,
			SpillRecords:      res.SpillRecords,
			MapMS:             res.MapElapsed.Milliseconds(),
			ReduceMS:          res.ReduceElapsed.Milliseconds(),
			TotalMS:           res.Total.Milliseconds(),
		}
	}
	t := s.tenants[j.tenant]
	t.running--
	s.runningJobs--
	s.counter("jobsvc_completed_total", obs.L("tenant", j.tenant), obs.L("state", string(j.state))).Inc()
	s.event("job-completed", "tenant", j.tenant, "job", j.id, "trace", traceIDHex(j.traceID),
		"state", string(j.state), "error", j.errMsg, "run_ms", j.finished.Sub(j.started).Milliseconds())
	s.reg.Histogram("jobsvc_service_seconds", obs.DefTimeBuckets, obs.L("tenant", j.tenant)).
		Observe(j.finished.Sub(j.started).Seconds())
	s.gaugeQueue()
	s.gaugeSlots()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// distRun is the real runner: one job-scoped loopback cluster on real
// 127.0.0.1 TCP, with a private Telemetry so this job's conservation
// ledger and spans cannot mix with any concurrent job's.
func (s *Service) distRun(j *job) (*dist.Result, *obs.Telemetry, error) {
	tel := obs.NewTelemetry()
	blocks := dist.SplitBlocks(j.input, j.chunk, j.recordSize)
	if len(blocks) == 0 {
		return nil, tel, fmt.Errorf("jobsvc: input produced no map blocks")
	}
	o := dist.Options{
		Job: dist.Job{
			App:         dist.AppSpec{Name: j.app, Params: j.params},
			Partitions:  j.partitions,
			Collector:   j.collector,
			UseCombiner: j.useCombiner,
			Compress:    j.compress,
		},
		Workers:     j.workers,
		Tuning:      s.cfg.Tuning,
		Blocks:      blocks,
		Telemetry:   tel,
		KillWorker:  -1,
		TraceID:     j.traceID,
		Journal:     s.journalFor(j),
		Blockstore:  j.blockstore,
		Replication: j.replication,
	}
	if j.spillThresh > 0 {
		o.Tuning.SpillThreshold = j.spillThresh
	}
	if j.mapFaultMod > 0 {
		mod := j.mapFaultMod
		o.MapFault = func(task, attempt int) bool { return attempt == 0 && task%mod == 0 }
	}
	if j.killWorker >= 0 {
		o.KillWorker = j.killWorker
		o.KillAfterMapDone = j.killAfter
	}
	if len(j.elastic) > 0 {
		o.Elastic = j.elastic
		if dist.HasRestart(j.elastic) {
			// Restart events resume from a checkpoint journal; the service
			// owns a throwaway one for the job's lifetime.
			jf, err := os.CreateTemp("", "jobsvc-journal-*")
			if err != nil {
				return nil, tel, fmt.Errorf("jobsvc: journal temp file: %w", err)
			}
			jf.Close()
			defer os.Remove(jf.Name())
			o.JournalPath = jf.Name()
		}
	}
	res, err := dist.RunLoopback(o)
	return res, tel, err
}
