package jobsvc_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"glasswing/internal/apps"
	"glasswing/internal/conformance"
	"glasswing/internal/dist"
	"glasswing/internal/jobsvc"
	"glasswing/internal/obs"
	"glasswing/internal/workload"
)

// startTestService boots an in-process service on a real loopback listener
// and returns a client plus a teardown that fully drains it.
func startTestService(t *testing.T, cfg jobsvc.Config) (*jobsvc.Service, *jobsvc.Client, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	svc := jobsvc.New(cfg)
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	tr := &http.Transport{}
	cli := &jobsvc.Client{
		Base: "http://" + ln.Addr().String(),
		HTTP: &http.Client{Transport: tr},
	}
	return svc, cli, func() {
		srv.Close()
		svc.Close()
		tr.CloseIdleConnections()
	}
}

// loadJob is one synthetic load-test workload: a uniquely-seeded dataset
// whose reference digest is computed up front, so result verification
// catches not just corruption but any cross-job result mixing (every job's
// digest is distinct).
type loadJob struct {
	req    jobsvc.Request
	digest string
}

func makeLoadJob(seed int64, app string, tenant string, pri string) loadJob {
	var cj conformance.Job
	req := jobsvc.Request{Tenant: tenant, App: app, Priority: pri, Workers: 2, Partitions: 3, Chunk: 2 << 10}
	switch app {
	case "wc":
		data, _ := apps.WCData(seed, 4<<10, 120)
		cj = conformance.Job{Name: "WC", New: apps.WordCount, Data: data}
		req.InputB64 = base64.StdEncoding.EncodeToString(data)
	case "ts":
		data := apps.TSData(seed, 200)
		cj = conformance.Job{Name: "TS", New: apps.TeraSort, Data: data, RecordSize: workload.TeraRecordSize}
		req.InputB64 = base64.StdEncoding.EncodeToString(data)
		req.RecordSize = workload.TeraRecordSize
		req.ParamsB64 = base64.StdEncoding.EncodeToString(dist.EncodeTSParams(apps.TeraSample(data, 16)))
		req.Collector = "pool"
	default:
		panic("unknown load app " + app)
	}
	return loadJob{req: req, digest: conformance.Reference(cj).Digest}
}

// TestServiceLoad is the service-level harness the tentpole is locked in
// by: several hundred concurrent small jobs from multiple tenants pushed
// through the HTTP API against a deliberately tight queue, so admission
// backpressure (429 + retry) engages while every accepted job must still
// byte-match its conformance reference digest. Runs under -race in CI.
func TestServiceLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	const (
		tenantCount  = 6
		jobsPerT     = 40 // 240 total, > the 200-job acceptance floor
		totalJobs    = tenantCount * jobsPerT
		submitBudget = 2 * time.Minute
	)

	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	svc, cli, stop := startTestService(t, jobsvc.Config{
		FleetWorkers: 8,
		// Tight bounds so the burst genuinely saturates: 6 tenants x 12
		// queued max, 48 service-wide.
		MaxQueue:     48,
		DefaultQuota: jobsvc.Quota{MaxQueued: 12, MaxRunning: 3},
		RetryAfter:   20 * time.Millisecond,
		Metrics:      reg,
	})

	var (
		mu        sync.Mutex
		rejected  int
		badReject []string
	)
	// Phase 1: every tenant fires its submissions back-to-back (no waiting
	// on completions), so the burst outruns the drain rate and the
	// admission gate genuinely pushes back; 429s are retried after the
	// server's hint. Phase 2 then verifies every accepted job's output
	// against its precomputed reference digest.
	type accepted struct {
		id     string
		digest string
		app    string
		label  string
		req    jobsvc.Request
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*totalJobs)
	acceptedCh := make(chan accepted, totalJobs)
	for ti := 0; ti < tenantCount; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for k := 0; k < jobsPerT; k++ {
				seed := int64(1000 + ti*jobsPerT + k)
				app := "wc"
				if (ti+k)%3 == 0 {
					app = "ts"
				}
				pri := [...]string{"low", "normal", "high"}[k%3]
				lj := makeLoadJob(seed, app, tenant, pri)

				// Submit with retry: a 429 is expected under this queue
				// pressure and must be well-formed (status, reason,
				// retry-after hint); anything else is a failure.
				var st jobsvc.Status
				deadline := time.Now().Add(submitBudget)
				for {
					var err error
					st, err = cli.Submit(lj.req)
					if err == nil {
						break
					}
					var apiErr *jobsvc.APIError
					if !errors.As(err, &apiErr) {
						errs <- fmt.Errorf("%s job %d: submit transport error: %v", tenant, k, err)
						return
					}
					mu.Lock()
					rejected++
					if apiErr.Status != http.StatusTooManyRequests || apiErr.Reason == "" || apiErr.RetryAfterMS <= 0 {
						badReject = append(badReject, apiErr.Error())
					}
					mu.Unlock()
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("%s job %d: still rejected at deadline: %v", tenant, k, apiErr)
						return
					}
					time.Sleep(time.Duration(apiErr.RetryAfterMS) * time.Millisecond)
				}
				acceptedCh <- accepted{id: st.ID, digest: lj.digest, app: app,
					label: fmt.Sprintf("%s job %d", tenant, k), req: lj.req}
			}
		}(ti)
	}
	wg.Wait()
	close(acceptedCh)

	var (
		verifyWG  sync.WaitGroup
		evictedMu sync.Mutex
		evicted   int
	)
	for a := range acceptedCh {
		verifyWG.Add(1)
		go func(a accepted) {
			defer verifyWG.Done()
			id := a.id
			// Priced admission may evict a queued low-priority job to make
			// room for a high-priority one — the txpool contract. The
			// client-side answer is to resubmit, which must eventually
			// succeed once the burst drains.
			for attempt := 0; ; attempt++ {
				fin, err := cli.WaitDone(id, 2*time.Minute)
				if err != nil {
					errs <- fmt.Errorf("%s (%s): %v", a.label, id, err)
					return
				}
				if fin.State == jobsvc.StateEvicted {
					if attempt >= 50 {
						errs <- fmt.Errorf("%s: evicted %d times, giving up", a.label, attempt)
						return
					}
					evictedMu.Lock()
					evicted++
					evictedMu.Unlock()
					// Escalate priority after repeated displacement — the
					// txpool client move (bump the price after a drop). A
					// high-priority queued job is never an eviction victim,
					// so this bounds the number of true evictions; 429s
					// during resubmission are retried on their own deadline
					// and do not count as eviction attempts.
					if attempt >= 2 {
						a.req.Priority = "high"
					}
					deadline := time.Now().Add(time.Minute)
					for {
						st, err := cli.Submit(a.req)
						if err == nil {
							id = st.ID
							break
						}
						var apiErr *jobsvc.APIError
						if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests && time.Now().Before(deadline) {
							time.Sleep(time.Duration(apiErr.RetryAfterMS) * time.Millisecond)
							continue
						}
						errs <- fmt.Errorf("%s: resubmit after eviction: %v", a.label, err)
						return
					}
					continue
				}
				if fin.State != jobsvc.StateDone {
					errs <- fmt.Errorf("%s (%s): finished %s: %s", a.label, id, fin.State, fin.Error)
					return
				}
				break
			}
			out, err := cli.ResultPairs(id)
			if err != nil {
				errs <- fmt.Errorf("%s (%s): result: %v", a.label, id, err)
				return
			}
			if got := conformance.Digest(out); got != a.digest {
				errs <- fmt.Errorf("%s (%s, %s): digest %.12s != reference %.12s",
					a.label, id, a.app, got, a.digest)
			}
		}(a)
	}
	verifyWG.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		if failures <= 20 {
			t.Error(err)
		}
	}
	if failures > 20 {
		t.Errorf("... and %d more failures", failures-20)
	}
	for _, br := range badReject {
		t.Errorf("malformed 429: %s", br)
	}
	t.Logf("load: %d jobs accepted+verified, %d transient 429 rejections, %d evictions resubmitted",
		totalJobs, rejected, evicted)

	// Per-tenant admission and queue-latency metrics must be visible over
	// the API (not just in-process).
	resp, err := cli.HTTP.Get(cli.Base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var doc struct {
		Metrics []obs.Metric `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	resp.Body.Close()
	admitted := map[string]float64{}
	waitSeen := map[string]bool{}
	var rejectedCtr float64
	for _, m := range doc.Metrics {
		switch m.Name {
		case "jobsvc_admitted_total":
			admitted[m.Labels["tenant"]] = m.Value
		case "jobsvc_queue_wait_seconds":
			if m.Count > 0 {
				waitSeen[m.Labels["tenant"]] = true
			}
		case "jobsvc_rejected_total":
			rejectedCtr += m.Value
		}
	}
	for ti := 0; ti < tenantCount; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		// Eviction resubmissions re-admit, so admitted is a floor not an
		// exact count.
		if got := admitted[tenant]; got < jobsPerT {
			t.Errorf("/metrics: admitted[%s] = %v, want >= %d", tenant, got, jobsPerT)
		}
		if !waitSeen[tenant] {
			t.Errorf("/metrics: no queue-wait histogram samples for %s", tenant)
		}
	}
	if int(rejectedCtr) < rejected {
		t.Errorf("/metrics: rejected_total %v < client-observed %d", rejectedCtr, rejected)
	}

	// Drain and verify the service leaks no goroutines: scheduler, runner
	// goroutines and HTTP machinery must all exit.
	stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+4 || time.Now().After(deadline) {
			if n > before+4 {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d before, %d after drain\n%s", before, n, buf[:runtime.Stack(buf, true)])
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = svc
}

// TestServiceSaturation429 pins the rejection contract on a service too
// small to absorb a burst: beyond the queue bound every low-priority
// submission must fail with a structured 429 (stable reason slug,
// retry-after hint, Retry-After header) — never a hang, never a panic.
// The hint is load-derived (tenant service-time p50 scaled by queue
// depth) so the burst asserts its bounds — at least the configured
// floor, at most the 30s cap — and that the header is the hint rounded
// up to whole seconds; the exact cold-path pin lives in
// TestRetryAfterDerived where the runner is stubbed.
func TestServiceSaturation429(t *testing.T) {
	svc, cli, stop := startTestService(t, jobsvc.Config{
		FleetWorkers: 2,
		MaxQueue:     4,
		DefaultQuota: jobsvc.Quota{MaxQueued: 4, MaxRunning: 1},
		RetryAfter:   1500 * time.Millisecond,
	})
	defer stop()

	// A moderately sized input keeps each run slow enough (relative to
	// ~1ms HTTP submits) that the burst saturates the 4-deep queue.
	data, _ := apps.WCData(7, 64<<10, 400)
	req := jobsvc.Request{
		Tenant:   "flood",
		App:      "wc",
		Priority: "low",
		Workers:  2,
		InputB64: base64.StdEncoding.EncodeToString(data),
	}
	got429 := 0
	for i := 0; i < 12; i++ {
		_, err := cli.Submit(req)
		if err == nil {
			continue
		}
		var apiErr *jobsvc.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("submit %d: non-API error: %v", i, err)
		}
		got429++
		if apiErr.Status != http.StatusTooManyRequests {
			t.Errorf("submit %d: status %d, want 429", i, apiErr.Status)
		}
		switch apiErr.Reason {
		case "queue-full", "tenant-queue-quota", "tenant-byte-budget":
		default:
			t.Errorf("submit %d: unexpected rejection reason %q", i, apiErr.Reason)
		}
		if apiErr.RetryAfterMS < 1500 || apiErr.RetryAfterMS > 30000 {
			t.Errorf("submit %d: retry_after_ms %d outside [1500, 30000]", i, apiErr.RetryAfterMS)
		}
		if apiErr.Msg == "" {
			t.Errorf("submit %d: empty error message", i)
		}
	}
	if got429 == 0 {
		t.Fatal("no 429s from a 12-job burst into a 4-slot queue")
	}

	// The Retry-After header must be the body's hint rounded up to whole
	// seconds.
	body, _ := json.Marshal(req)
	var hdrChecked bool
	for i := 0; i < 16 && !hdrChecked; i++ {
		resp, err := cli.HTTP.Post(cli.Base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("raw submit: %v", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			var apiErr jobsvc.APIError
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatalf("decoding 429 body: %v", err)
			}
			want := strconv.FormatInt((apiErr.RetryAfterMS+999)/1000, 10)
			if got := resp.Header.Get("Retry-After"); got != want {
				t.Errorf("Retry-After header = %q, want %q (%dms rounded up)", got, want, apiErr.RetryAfterMS)
			}
			hdrChecked = true
		}
		resp.Body.Close()
	}
	if !hdrChecked {
		t.Error("burst never produced a 429 on the raw-header probe")
	}
	_ = svc
}
