package jobsvc

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// Client is a thin typed wrapper over the HTTP API, used by the
// conformance service axis, the load tests, and the CLI. It keeps the
// same error shape as the server: API-level failures come back as
// *APIError (with the HTTP status filled in), transport failures as
// ordinary errors.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8844".
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeInto reads a response: 2xx decodes into v (when non-nil), anything
// else decodes the structured error body into an *APIError.
func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if v == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil {
		return fmt.Errorf("jobsvc client: status %d with undecodable error body: %w", resp.StatusCode, err)
	}
	return apiErr
}

// Submit posts a job. On admission it returns the queued Status; on
// rejection the error is an *APIError carrying the status code, reason,
// and any retry-after hint.
func (c *Client) Submit(req Request) (Status, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Status{}, fmt.Errorf("jobsvc client: encoding request: %w", err)
	}
	resp, err := c.httpClient().Post(c.Base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := decodeInto(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Status fetches one job's current status.
func (c *Client) Status(id string) (Status, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + id)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := decodeInto(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Cancel asks the service to drop a queued job.
func (c *Client) Cancel(id string) (Status, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/jobs/"+id, nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := decodeInto(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// WaitDone polls until the job reaches a terminal state or the deadline
// passes. It returns the terminal Status; a job that finished failed,
// canceled or evicted is not an error here — callers inspect State.
func (c *Client) WaitDone(id string, timeout time.Duration) (Status, error) {
	deadline := time.Now().Add(timeout)
	delay := 2 * time.Millisecond
	for {
		st, err := c.Status(id)
		if err != nil {
			return Status{}, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled, StateEvicted:
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("jobsvc client: job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(delay)
		if delay < 50*time.Millisecond {
			delay *= 2
		}
	}
}

// ResultPairs fetches and decodes a finished job's output pairs.
func (c *Client) ResultPairs(id string) ([]kv.Pair, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	var res Result
	if err := decodeInto(resp, &res); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(res.OutputB64)
	if err != nil {
		return nil, fmt.Errorf("jobsvc client: result payload not base64: %w", err)
	}
	pairs, err := kv.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("jobsvc client: result payload not kv wire format: %w", err)
	}
	return pairs, nil
}

// JobCounters fetches a finished job's private metric registry and
// returns its unlabeled counters by name — enough to rebuild the job's
// conservation ledger on the client side.
func (c *Client) JobCounters(id string) (map[string]int64, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + id + "/metrics")
	if err != nil {
		return nil, err
	}
	var doc struct {
		Metrics []obs.Metric `json:"metrics"`
	}
	if err := decodeInto(resp, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(doc.Metrics))
	for _, m := range doc.Metrics {
		if m.Type == "counter" && len(m.Labels) == 0 {
			out[m.Name] = int64(m.Value)
		}
	}
	return out, nil
}
