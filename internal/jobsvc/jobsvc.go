// Package jobsvc is the resident multi-tenant job service: a long-running
// coordinator that owns a shared internal/dist worker fleet and accepts
// many concurrent MapReduce jobs over a stdlib HTTP/JSON API. Where every
// run used to be a one-shot CLI invocation — build a cluster, run one job,
// exit — the service keeps a fixed budget of worker slots resident and
// multiplexes them across tenants, jobs and priorities.
//
// The admission and scheduling design borrows the structure of geth's
// transaction pool (priced admission, per-sender caps, demotion under
// pressure), translated to jobs:
//
//   - Bounded priority queue. Submissions enter one of three priority
//     classes (low/normal/high). The global queue is capped; per-tenant
//     quotas cap queued jobs, queued input bytes, and running jobs.
//   - Priced admission under saturation. When the global queue is full, a
//     new submission is admitted only by evicting a strictly
//     lower-priority queued job — the victim is the youngest job of the
//     most-backlogged tenant in the lowest populated class (the txpool's
//     "underpriced transaction dropped for a better-paying one"). Anything
//     else is rejected with 429 and a Retry-After hint.
//   - Fair dispatch. The scheduler serves classes strictly high-to-low;
//     within a class it round-robins across tenants and runs each tenant's
//     jobs FIFO, skipping tenants at their running-set quota. A job that
//     does not fit the free slot budget blocks its class (no lower-priority
//     bypass), so big jobs cannot starve.
//
// Every job runs on a job-scoped internal/dist loopback cluster whose
// worker count is drawn from the shared slot fleet; results, JobStats,
// per-job conservation counters and Chrome traces are all served back over
// the API, and service-level metrics (queue depth, admission decisions,
// per-tenant wait/service time, dispatch fairness) are published through
// an internal/obs registry at GET /metrics.
package jobsvc

import (
	"encoding/base64"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"glasswing/internal/core"
	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// Priority is a submission's scheduling class.
type Priority int

// Priority classes, lowest first. The zero value is PriLow so an explicit
// parse (defaulting to normal) decides, not the zero value.
const (
	PriLow Priority = iota
	PriNormal
	PriHigh
	numPriorities
)

// ParsePriority maps the wire spelling to a class; empty means normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return PriLow, nil
	case "", "normal":
		return PriNormal, nil
	case "high":
		return PriHigh, nil
	}
	return 0, fmt.Errorf("unknown priority %q (low, normal, high)", s)
}

func (p Priority) String() string {
	switch p {
	case PriLow:
		return "low"
	case PriHigh:
		return "high"
	default:
		return "normal"
	}
}

// State is a job's lifecycle phase.
type State string

// Job states. Terminal states are done, failed, canceled and evicted.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateEvicted  State = "evicted"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateEvicted
}

// Quota bounds one tenant's footprint in the service — the txpool's
// per-sender caps.
type Quota struct {
	// MaxQueued caps the tenant's queued (not yet running) jobs.
	MaxQueued int
	// MaxQueuedBytes caps the summed input+params bytes of the tenant's
	// queued jobs — the byte budget.
	MaxQueuedBytes int64
	// MaxRunning caps the tenant's simultaneously running jobs; the
	// scheduler skips tenants at this cap rather than rejecting.
	MaxRunning int
}

func (q Quota) withDefaults() Quota {
	if q.MaxQueued <= 0 {
		q.MaxQueued = 16
	}
	if q.MaxQueuedBytes <= 0 {
		q.MaxQueuedBytes = 16 << 20
	}
	if q.MaxRunning <= 0 {
		q.MaxRunning = 4
	}
	return q
}

// Config configures the service.
type Config struct {
	// FleetWorkers is the shared worker-slot budget (default 8): the sum
	// of all running jobs' worker counts never exceeds it.
	FleetWorkers int
	// MaxQueue caps queued jobs across all tenants (default 64).
	MaxQueue int
	// MaxInputBytes / MaxParamsBytes cap one submission's decoded input
	// and param blob (defaults 32 MiB / 1 MiB); larger requests are
	// rejected 413 before admission.
	MaxInputBytes  int64
	MaxParamsBytes int64
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	// Quotas overrides per tenant.
	Quotas map[string]Quota
	// Tuning passes through to every job's dist cluster.
	Tuning dist.Tuning
	// RetryAfter is the backoff hint attached to 429 rejections
	// (default 1s).
	RetryAfter time.Duration
	// Metrics is the service-level registry (one is created if nil). Job
	// conservation counters do NOT land here — each job owns a private
	// registry served at /jobs/{id}/metrics — so concurrent jobs cannot
	// cross-contaminate ledgers.
	Metrics *obs.Registry
	// AllowFaultInjection enables the loopback fault-injection request
	// fields (kill_worker, map_fault_mod) — conformance and CI use them to
	// drive the dist fault cells through the service path. Off, such
	// requests are rejected 400.
	AllowFaultInjection bool
	// Events, when set, receives the service's structured event journal:
	// one record per admission, rejection, eviction, dispatch, retry and
	// worker death, keyed by tenant, job id and trace id. Nil disables
	// journaling.
	Events *slog.Logger
	// RuntimeSampleEvery is the interval of the process runtime gauges
	// (goroutines, heap in-use, cumulative GC pause) published into
	// Metrics. 0 = default 1s; negative disables the sampler.
	RuntimeSampleEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.FleetWorkers <= 0 {
		c.FleetWorkers = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxInputBytes <= 0 {
		c.MaxInputBytes = 32 << 20
	}
	if c.MaxParamsBytes <= 0 {
		c.MaxParamsBytes = 1 << 20
	}
	c.DefaultQuota = c.DefaultQuota.withDefaults()
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.RuntimeSampleEvery == 0 {
		c.RuntimeSampleEvery = time.Second
	}
	return c
}

// Request is the POST /jobs submission body.
type Request struct {
	// Tenant identifies the submitter for quotas and fairness (required).
	Tenant string `json:"tenant"`
	// App names a registry application: wc, ts, km (required).
	App string `json:"app"`
	// Priority is low, normal (default) or high.
	Priority string `json:"priority,omitempty"`
	// InputB64 is the raw job input, base64 (required). RecordSize > 0
	// splits it on fixed-size records, otherwise on newlines.
	InputB64   string `json:"input_b64"`
	RecordSize int    `json:"record_size,omitempty"`
	// ParamsB64 is the app's registry parameter blob, base64 (TeraSort's
	// sampled range boundaries, KMeans' center spec).
	ParamsB64 string `json:"params_b64,omitempty"`
	// Chunk is the map block size in bytes (0 = default).
	Chunk int `json:"chunk,omitempty"`
	// Partitions is the reduce partition count (0 = default 4).
	Partitions int `json:"partitions,omitempty"`
	// Workers is the cluster size drawn from the fleet (0 = default 2;
	// clamped to the fleet size).
	Workers int `json:"workers,omitempty"`
	// Collector is "hash" (default) or "pool".
	Collector   string `json:"collector,omitempty"`
	UseCombiner bool   `json:"use_combiner,omitempty"`
	Compress    bool   `json:"compress,omitempty"`

	// Blockstore ingests the input into the cluster's worker block stores
	// before the map phase: "local" schedules splits onto replica holders
	// (locality-preferred), "remote" forces every read over the peer mesh.
	// Empty ships blocks inside task assignments. Replication is replicas
	// per block (0 = 3, capped at the cluster width); SpillThreshold makes
	// workers spill committed shuffle partitions to disk past that many
	// resident bytes.
	Blockstore     string `json:"blockstore,omitempty"`
	Replication    int    `json:"replication,omitempty"`
	SpillThreshold int64  `json:"spill_threshold,omitempty"`

	// Fault injection (Config.AllowFaultInjection only): KillWorker kills
	// that worker after KillAfterMapDone map resolutions; MapFaultMod > 0
	// fails the first attempt of every MapFaultMod-th map task.
	KillWorker       *int `json:"kill_worker,omitempty"`
	KillAfterMapDone int  `json:"kill_after_map_done,omitempty"`
	MapFaultMod      int  `json:"map_fault_mod,omitempty"`

	// Elastic (Config.AllowFaultInjection only) schedules membership churn
	// against the job's cluster in dist.ParseElastic syntax — e.g.
	// "join@2,drain:0@4,kill:1@6,restart@r1". Restart events run against a
	// throwaway checkpoint journal the service manages; the job resumes and
	// reports Resumed in its stats.
	Elastic string `json:"elastic,omitempty"`
}

// APIError is a structured request failure: an HTTP status, a stable
// machine-readable reason slug, and a human message. 429s carry the
// retry-after hint that also becomes the Retry-After header.
type APIError struct {
	Status       int    `json:"-"`
	Reason       string `json:"reason"`
	Msg          string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%d %s: %s", e.Status, e.Reason, e.Msg) }

func badRequest(reason, format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// JobStats summarizes one completed run — the dist Result minus the
// output payload.
type JobStats struct {
	InputBytes        int64 `json:"input_bytes"`
	IntermediatePairs int64 `json:"intermediate_pairs"`
	OutputPairs       int   `json:"output_pairs"`
	MapRetries        int   `json:"map_retries"`
	WorkersLost       int   `json:"workers_lost"`
	MapRecoveries     int   `json:"map_recoveries"`
	WorkersJoined     int   `json:"workers_joined,omitempty"`
	WorkersDrained    int   `json:"workers_drained,omitempty"`
	Resumed           bool  `json:"resumed,omitempty"`
	ReadLocalBytes    int64 `json:"read_local_bytes,omitempty"`
	ReadRemoteBytes   int64 `json:"read_remote_bytes,omitempty"`
	SpillRecords      int64 `json:"spill_records,omitempty"`
	MapMS             int64 `json:"map_ms"`
	ReduceMS          int64 `json:"reduce_ms"`
	TotalMS           int64 `json:"total_ms"`
}

// Status is a job's externally visible state (GET /jobs/{id} and the
// submit response).
type Status struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	App        string `json:"app"`
	Priority   string `json:"priority"`
	State      State  `json:"state"`
	Workers    int    `json:"workers"`
	Partitions int    `json:"partitions"`
	// QueueDepth is the service-wide queued-job count at response time.
	QueueDepth int `json:"queue_depth"`
	// WaitMS is time spent queued (still ticking while queued); RunMS is
	// time running (ticking while running).
	WaitMS int64     `json:"wait_ms"`
	RunMS  int64     `json:"run_ms,omitempty"`
	Stats  *JobStats `json:"stats,omitempty"`
	Error  string    `json:"error,omitempty"`
	// TraceID is the job's distributed trace id (16 hex digits), minted at
	// admission and propagated through every wire message of the job's
	// cluster; GET /jobs/{id}/trace serves the merged cluster trace it
	// names.
	TraceID string `json:"trace_id,omitempty"`
}

// job is the service's record of one submission.
type job struct {
	id      string
	seq     int64
	tenant  string
	pri     Priority
	traceID uint64

	app         string
	params      []byte
	input       []byte
	recordSize  int
	chunk       int
	partitions  int
	workers     int
	collector   core.CollectorKind
	useCombiner bool
	compress    bool
	blockstore  string
	replication int
	spillThresh int64
	cost        int64

	killWorker  int // -1 = none
	killAfter   int
	mapFaultMod int
	elastic     []dist.ElasticEvent

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string

	output []byte // kv.Marshal of the final pairs, partition order
	stats  *JobStats
	tel    *obs.Telemetry // job-scoped: conservation counters + spans
}

// tenantState tracks one tenant's queue and running-set footprint.
type tenantState struct {
	name        string
	queued      [numPriorities][]*job // FIFO per class
	queuedCount int
	queuedBytes int64
	running     int
}

// Service is the resident coordinator. Create with New, serve its
// Handler, and Close it to drain.
type Service struct {
	cfg   Config
	reg   *obs.Registry
	fleet *dist.Fleet

	mu          sync.Mutex
	cond        *sync.Cond
	jobs        map[string]*job
	order       []*job // submission order, for listing
	tenants     map[string]*tenantState
	tenantOrder []string
	rr          [numPriorities]int // round-robin cursor per class
	queuedTotal int
	runningJobs int
	nextSeq     int64
	closed      bool

	schedWG sync.WaitGroup // the scheduler goroutine
	runWG   sync.WaitGroup // running job goroutines
	bgWG    sync.WaitGroup // background samplers
	stopCh  chan struct{}  // closed by Close; stops samplers and streams

	// runFn executes one dispatched job; tests stub it to exercise the
	// scheduler without real clusters. Defaults to (*Service).distRun.
	runFn func(*job) (*dist.Result, *obs.Telemetry, error)
	// dispatchHook, when set, observes every dispatch decision under the
	// service lock (fairness property tests).
	dispatchHook func(ev DispatchEvent)
}

// DispatchEvent is one scheduler decision, captured under the service
// lock for fairness auditing: the chosen job plus, for each tenant, its
// queued-per-class counts at the moment of dispatch.
type DispatchEvent struct {
	JobID    string
	Tenant   string
	Priority Priority
	Workers  int
	// QueuedAt maps tenant -> per-class queued counts immediately BEFORE
	// this dispatch removed the chosen job.
	QueuedAt map[string][numPriorities]int
	// RunningAt maps tenant -> running count before this dispatch.
	RunningAt map[string]int
}

// New builds a Service and starts its scheduler.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Metrics,
		fleet:   dist.NewFleet(cfg.FleetWorkers),
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenantState),
		stopCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.runFn = s.distRun
	s.gaugeSlots()
	s.schedWG.Add(1)
	go s.scheduler()
	if cfg.RuntimeSampleEvery > 0 {
		s.bgWG.Add(1)
		go s.runtimeSampler(cfg.RuntimeSampleEvery)
	}
	return s
}

// Close stops admissions, cancels every queued job, waits for running
// jobs to finish (a dist cluster cannot be preempted mid-job), and stops
// the scheduler. Job records remain readable afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, t := range s.tenants {
		for p := range t.queued {
			for _, j := range t.queued[p] {
				j.state = StateCanceled
				j.finished = time.Now()
				j.errMsg = "service shutting down"
				j.input = nil
				s.counter("jobsvc_canceled_total", obs.L("tenant", j.tenant)).Inc()
			}
			t.queued[p] = nil
		}
		t.queuedCount, t.queuedBytes = 0, 0
	}
	s.queuedTotal = 0
	s.gaugeQueue()
	s.cond.Broadcast()
	close(s.stopCh)
	s.mu.Unlock()
	s.schedWG.Wait()
	s.runWG.Wait()
	s.bgWG.Wait()
}

// Metrics returns the service-level registry (queue depth, admission
// decisions, per-tenant wait/service time, dispatch fairness).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// ResizeFleet changes the shared worker-slot pool's capacity while the
// service runs — the horizontal scaling hook behind POST /fleet. Growth
// wakes the scheduler (a queued job may now fit); shrinking below current
// usage never preempts, it just gates new dispatches until running jobs
// release the deficit.
func (s *Service) ResizeFleet(n int) FleetStatus {
	total := s.fleet.Resize(n)
	s.mu.Lock()
	s.gaugeSlots()
	s.event("fleet-resized", "workers", total, "free", s.fleet.Free())
	s.counter("jobsvc_fleet_resize_total").Inc()
	s.cond.Broadcast()
	s.mu.Unlock()
	return FleetStatus{Total: total, Free: s.fleet.Free()}
}

func (s *Service) counter(name string, labels ...obs.Label) *obs.Counter {
	return s.reg.Counter(name, labels...)
}

func (s *Service) gaugeQueue() {
	s.reg.Gauge("jobsvc_queue_depth").Set(float64(s.queuedTotal))
	s.reg.Gauge("jobsvc_running_jobs").Set(float64(s.runningJobs))
}

func (s *Service) gaugeSlots() {
	s.reg.Gauge("jobsvc_fleet_slots_free").Set(float64(s.fleet.Free()))
}

// event writes one structured record to the journal, if one is configured.
func (s *Service) event(msg string, args ...any) {
	if s.cfg.Events != nil {
		s.cfg.Events.Info(msg, args...)
	}
}

// journalFor derives a job-scoped journal logger carrying the tenant, job
// and trace id on every record; nil when journaling is off.
func (s *Service) journalFor(j *job) *slog.Logger {
	if s.cfg.Events == nil {
		return nil
	}
	return s.cfg.Events.With("tenant", j.tenant, "job", j.id, "trace", traceIDHex(j.traceID))
}

func traceIDHex(id uint64) string { return fmt.Sprintf("%016x", id) }

// retryAfterLocked derives the 429 backoff hint from observed load: the
// tenant's median service time scaled by the current queue depth — "the
// queue ahead of you, at your own jobs' pace" — clamped to
// [Config.RetryAfter, 30s]. A tenant with no completed jobs yet gets the
// configured floor verbatim.
func (s *Service) retryAfterLocked(tenant string) time.Duration {
	p50 := s.reg.Histogram("jobsvc_service_seconds", obs.DefTimeBuckets, obs.L("tenant", tenant)).Quantile(0.5)
	if p50 <= 0 {
		return s.cfg.RetryAfter
	}
	d := time.Duration(p50 * float64(s.queuedTotal+1) * float64(time.Second))
	if d < s.cfg.RetryAfter {
		d = s.cfg.RetryAfter
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// runtimeSampler publishes process runtime gauges on a ticker until Close.
func (s *Service) runtimeSampler(every time.Duration) {
	defer s.bgWG.Done()
	s.sampleRuntime()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.sampleRuntime()
		}
	}
}

func (s *Service) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("process_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("process_heap_inuse_bytes").Set(float64(ms.HeapInuse))
	s.reg.Gauge("process_gc_pause_ns").Set(float64(ms.PauseTotalNs))
}

func (s *Service) quotaFor(tenant string) Quota {
	if q, ok := s.cfg.Quotas[tenant]; ok {
		return q.withDefaults()
	}
	return s.cfg.DefaultQuota
}

// parseRequest validates a submission and builds the job record (no lock,
// no admission yet).
func (s *Service) parseRequest(req Request) (*job, *APIError) {
	if req.Tenant == "" {
		return nil, badRequest("missing-tenant", "tenant is required")
	}
	pri, err := ParsePriority(req.Priority)
	if err != nil {
		return nil, badRequest("bad-priority", "%v", err)
	}
	params, err := base64.StdEncoding.DecodeString(req.ParamsB64)
	if err != nil {
		return nil, badRequest("bad-params-encoding", "params_b64: %v", err)
	}
	if int64(len(params)) > s.cfg.MaxParamsBytes {
		return nil, &APIError{Status: http.StatusRequestEntityTooLarge, Reason: "params-too-large",
			Msg: fmt.Sprintf("param blob %d bytes exceeds cap %d", len(params), s.cfg.MaxParamsBytes)}
	}
	input, err := base64.StdEncoding.DecodeString(req.InputB64)
	if err != nil {
		return nil, badRequest("bad-input-encoding", "input_b64: %v", err)
	}
	if len(input) == 0 {
		return nil, badRequest("empty-input", "input_b64 is required and must decode to non-empty input")
	}
	if int64(len(input)) > s.cfg.MaxInputBytes {
		return nil, &APIError{Status: http.StatusRequestEntityTooLarge, Reason: "input-too-large",
			Msg: fmt.Sprintf("input %d bytes exceeds cap %d", len(input), s.cfg.MaxInputBytes)}
	}
	// Resolve the app now: an unknown name or corrupt param blob fails the
	// submission, not the run.
	if _, _, err := dist.RegistryResolver(dist.AppSpec{Name: req.App, Params: params}); err != nil {
		return nil, badRequest("unknown-app", "%v", err)
	}
	var collector core.CollectorKind
	switch req.Collector {
	case "", "hash":
		collector = core.HashTable
	case "pool":
		collector = core.BufferPool
	default:
		return nil, badRequest("bad-collector", "unknown collector %q (hash, pool)", req.Collector)
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 2
	}
	// Clamp to the live fleet capacity, not the boot-time config — the
	// fleet can be resized while the service runs (POST /fleet).
	if t := s.fleet.Total(); workers > t {
		workers = t
	}
	if req.RecordSize < 0 || req.Chunk < 0 || req.Partitions < 0 {
		return nil, badRequest("bad-geometry", "record_size, chunk and partitions must be non-negative")
	}
	switch req.Blockstore {
	case "", "local", "remote":
	default:
		return nil, badRequest("bad-blockstore", "unknown blockstore mode %q (local, remote)", req.Blockstore)
	}
	if req.Replication < 0 || req.SpillThreshold < 0 {
		return nil, badRequest("bad-blockstore", "replication and spill_threshold must be non-negative")
	}
	j := &job{
		tenant:      req.Tenant,
		pri:         pri,
		app:         req.App,
		params:      params,
		input:       input,
		recordSize:  req.RecordSize,
		chunk:       req.Chunk,
		partitions:  req.Partitions,
		workers:     workers,
		collector:   collector,
		useCombiner: req.UseCombiner,
		compress:    req.Compress,
		blockstore:  req.Blockstore,
		replication: req.Replication,
		spillThresh: req.SpillThreshold,
		cost:        int64(len(input) + len(params)),
		killWorker:  -1,
	}
	if req.KillWorker != nil || req.MapFaultMod != 0 || req.Elastic != "" {
		if !s.cfg.AllowFaultInjection {
			return nil, badRequest("fault-injection-disabled", "fault-injection fields require AllowFaultInjection")
		}
		if req.MapFaultMod < 0 {
			return nil, badRequest("bad-fault", "map_fault_mod must be non-negative")
		}
		j.mapFaultMod = req.MapFaultMod
		if req.KillWorker != nil {
			if *req.KillWorker < 0 || *req.KillWorker >= workers {
				return nil, badRequest("bad-fault", "kill_worker %d outside worker range [0,%d)", *req.KillWorker, workers)
			}
			j.killWorker = *req.KillWorker
			j.killAfter = req.KillAfterMapDone
		}
		if req.Elastic != "" {
			evs, err := dist.ParseElastic(req.Elastic)
			if err != nil {
				return nil, badRequest("bad-elastic", "%v", err)
			}
			// Drain/kill targets must name a worker that can exist: the
			// initial cluster plus every join the schedule itself adds.
			maxID := workers
			for _, ev := range evs {
				if ev.Kind == "join" {
					maxID++
				}
				if (ev.Kind == "drain" || ev.Kind == "kill") && ev.Worker >= maxID {
					return nil, badRequest("bad-elastic", "%s target %d outside worker range [0,%d)", ev.Kind, ev.Worker, maxID)
				}
			}
			j.elastic = evs
		}
	}
	return j, nil
}

// Submit validates, admits and enqueues one job, returning its status or
// a structured rejection. This is the txpool-style admission gate: tenant
// quotas first, then global saturation with priced eviction.
func (s *Service) Submit(req Request) (Status, *APIError) {
	j, apiErr := s.parseRequest(req)
	if apiErr != nil {
		s.counter("jobsvc_rejected_total", obs.L("reason", apiErr.Reason)).Inc()
		return Status{}, apiErr
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter("jobsvc_submitted_total", obs.L("tenant", j.tenant)).Inc()

	reject := func(reason, format string, args ...any) (Status, *APIError) {
		s.counter("jobsvc_rejected_total", obs.L("reason", reason)).Inc()
		s.event("job-rejected", "tenant", j.tenant, "reason", reason)
		return Status{}, &APIError{
			Status: http.StatusTooManyRequests, Reason: reason,
			Msg:          fmt.Sprintf(format, args...),
			RetryAfterMS: s.retryAfterLocked(j.tenant).Milliseconds(),
		}
	}

	if s.closed {
		s.counter("jobsvc_rejected_total", obs.L("reason", "shutting-down")).Inc()
		return Status{}, &APIError{Status: http.StatusServiceUnavailable, Reason: "shutting-down", Msg: "service is shutting down"}
	}

	q := s.quotaFor(j.tenant)
	t := s.tenantLocked(j.tenant)
	if t.queuedCount >= q.MaxQueued {
		return reject("tenant-queue-quota", "tenant %q has %d jobs queued (cap %d)", j.tenant, t.queuedCount, q.MaxQueued)
	}
	if t.queuedBytes+j.cost > q.MaxQueuedBytes {
		return reject("tenant-byte-budget", "tenant %q queued bytes %d + %d exceed budget %d",
			j.tenant, t.queuedBytes, j.cost, q.MaxQueuedBytes)
	}
	if s.queuedTotal >= s.cfg.MaxQueue {
		// Saturation: priced admission. Only a strictly lower-priority
		// victim may be demoted for the newcomer.
		v := s.evictionVictimLocked()
		if v == nil || v.pri >= j.pri {
			return reject("queue-full", "queue full (%d jobs) and no lower-priority job to displace", s.queuedTotal)
		}
		s.evictLocked(v)
	}

	s.nextSeq++
	j.seq = s.nextSeq
	j.id = fmt.Sprintf("j-%d", j.seq)
	j.state = StateQueued
	j.submitted = time.Now()
	// Mint the job's distributed trace id at admission so the journal can
	// correlate queue-side events with the cluster trace; the low seq bits
	// disambiguate same-nanosecond admissions.
	j.traceID = uint64(j.submitted.UnixNano())<<8 | uint64(j.seq&0xff)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	t.queued[j.pri] = append(t.queued[j.pri], j)
	t.queuedCount++
	t.queuedBytes += j.cost
	s.queuedTotal++
	s.counter("jobsvc_admitted_total", obs.L("tenant", j.tenant)).Inc()
	s.event("job-admitted", "tenant", j.tenant, "job", j.id, "trace", traceIDHex(j.traceID),
		"priority", j.pri.String(), "app", j.app, "queue_depth", s.queuedTotal)
	s.gaugeQueue()
	s.cond.Broadcast()
	return s.statusLocked(j), nil
}

// tenantLocked returns (creating on first sight) the tenant's state.
func (s *Service) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name}
		s.tenants[name] = t
		s.tenantOrder = append(s.tenantOrder, name)
	}
	return t
}

// evictionVictimLocked picks the queued job priced admission would drop:
// lowest populated class; within it, the most-backlogged tenant's
// youngest job (the txpool demotes the worst-positioned transaction of
// the most over-quota sender).
func (s *Service) evictionVictimLocked() *job {
	for p := PriLow; p < numPriorities; p++ {
		var victim *job
		victimBacklog := -1
		for _, name := range s.tenantOrder {
			t := s.tenants[name]
			fifo := t.queued[p]
			if len(fifo) == 0 {
				continue
			}
			if t.queuedCount > victimBacklog {
				victim = fifo[len(fifo)-1]
				victimBacklog = t.queuedCount
			}
		}
		if victim != nil {
			return victim
		}
	}
	return nil
}

// evictLocked removes a queued job as demoted-under-pressure.
func (s *Service) evictLocked(v *job) {
	s.removeQueuedLocked(v)
	v.state = StateEvicted
	v.finished = time.Now()
	v.errMsg = "evicted under queue pressure by a higher-priority submission"
	v.input = nil
	s.counter("jobsvc_evicted_total", obs.L("tenant", v.tenant)).Inc()
	s.event("job-evicted", "tenant", v.tenant, "job", v.id, "trace", traceIDHex(v.traceID),
		"priority", v.pri.String())
}

// removeQueuedLocked unlinks a queued job from its tenant FIFO and the
// global accounting. The job must currently be queued.
func (s *Service) removeQueuedLocked(v *job) {
	t := s.tenants[v.tenant]
	fifo := t.queued[v.pri]
	for i, cand := range fifo {
		if cand == v {
			t.queued[v.pri] = append(fifo[:i:i], fifo[i+1:]...)
			break
		}
	}
	t.queuedCount--
	t.queuedBytes -= v.cost
	s.queuedTotal--
	s.gaugeQueue()
}

// Cancel cancels a queued job. Running jobs cannot be preempted (a dist
// cluster runs to completion); terminal jobs are already settled.
func (s *Service) Cancel(id string) (Status, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Status{}, &APIError{Status: http.StatusNotFound, Reason: "unknown-job", Msg: fmt.Sprintf("no job %q", id)}
	}
	if j.state != StateQueued {
		return Status{}, &APIError{Status: http.StatusConflict, Reason: "not-queued",
			Msg: fmt.Sprintf("job %s is %s; only queued jobs can be canceled", id, j.state)}
	}
	s.removeQueuedLocked(j)
	j.state = StateCanceled
	j.finished = time.Now()
	j.errMsg = "canceled by client"
	j.input = nil
	s.counter("jobsvc_canceled_total", obs.L("tenant", j.tenant)).Inc()
	s.event("job-canceled", "tenant", j.tenant, "job", j.id, "trace", traceIDHex(j.traceID))
	s.cond.Broadcast()
	return s.statusLocked(j), nil
}

// JobStatus returns one job's status.
func (s *Service) JobStatus(id string) (Status, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Status{}, &APIError{Status: http.StatusNotFound, Reason: "unknown-job", Msg: fmt.Sprintf("no job %q", id)}
	}
	return s.statusLocked(j), nil
}

func (s *Service) statusLocked(j *job) Status {
	st := Status{
		ID:         j.id,
		Tenant:     j.tenant,
		App:        j.app,
		Priority:   j.pri.String(),
		State:      j.state,
		Workers:    j.workers,
		Partitions: j.partitions,
		QueueDepth: s.queuedTotal,
		Stats:      j.stats,
		Error:      j.errMsg,
	}
	if j.traceID != 0 {
		st.TraceID = traceIDHex(j.traceID)
	}
	switch {
	case j.state == StateQueued:
		st.WaitMS = time.Since(j.submitted).Milliseconds()
	case !j.started.IsZero():
		st.WaitMS = j.started.Sub(j.submitted).Milliseconds()
		if j.state == StateRunning {
			st.RunMS = time.Since(j.started).Milliseconds()
		} else {
			st.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	default: // canceled or evicted while queued
		st.WaitMS = j.finished.Sub(j.submitted).Milliseconds()
	}
	return st
}

// List returns every job's status in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.statusLocked(j))
	}
	return out
}
