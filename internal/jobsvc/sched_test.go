package jobsvc

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"glasswing/internal/dist"
	"glasswing/internal/obs"
)

// wcRequest builds a minimal valid submission for tests.
func wcRequest(tenant, pri string, workers int) Request {
	return Request{
		Tenant:   tenant,
		App:      "wc",
		Priority: pri,
		Workers:  workers,
		InputB64: base64.StdEncoding.EncodeToString([]byte("alpha beta\ngamma alpha\n")),
	}
}

// TestSchedulerOrder pins the dispatch order deterministically: a stub
// runner gated on a channel runs one job at a time (2-slot fleet, 2-worker
// jobs), a filler occupies the fleet while nine jobs from three tenants
// queue up, and the drain order must be strict priority with round-robin
// across tenants and FIFO within a tenant's class.
func TestSchedulerOrder(t *testing.T) {
	started := make(chan *job)
	release := make(chan struct{})
	s := New(Config{FleetWorkers: 2})
	defer s.Close()
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		started <- j
		<-release
		return &dist.Result{}, obs.NewTelemetry(), nil
	}

	submit := func(tenant, pri string) string {
		t.Helper()
		st, apiErr := s.Submit(wcRequest(tenant, pri, 2))
		if apiErr != nil {
			t.Fatalf("submit %s/%s: %v", tenant, pri, apiErr)
		}
		return st.ID
	}

	// The filler grabs both fleet slots, freezing dispatch while the real
	// workload queues behind it.
	submit("filler", "high")
	<-started

	// Submission order is deliberately adversarial: lows first, highs
	// scattered. (Tenant first-sight order: filler, A, B, C.)
	submit("A", "low")
	submit("B", "low")
	submit("A", "high")
	submit("C", "normal")
	submit("B", "high")
	submit("C", "high")
	submit("A", "normal")
	submit("B", "normal")
	submit("C", "low")

	want := []string{
		"A/high", "B/high", "C/high", // strict priority, RR across tenants
		"A/normal", "B/normal", "C/normal",
		"A/low", "B/low", "C/low",
	}
	release <- struct{}{} // let the filler finish
	for i, w := range want {
		var j *job
		select {
		case j = <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("dispatch %d: scheduler stalled waiting for %s", i, w)
		}
		if got := j.tenant + "/" + j.pri.String(); got != w {
			t.Fatalf("dispatch %d: got %s, want %s", i, got, w)
		}
		release <- struct{}{}
	}
}

// TestSchedulerProperties drives a randomized schedule — tenants x
// priorities x worker sizes x cancellations — through a fast stub runner
// and checks the invariants that must hold for every dispatch and after
// the drain:
//
//  1. Within a tenant, a job never dispatches while that tenant has a
//     higher-priority job queued.
//  2. Across tenants, a dispatch at priority p is only legal if every
//     tenant with higher-priority queued work is at its running cap.
//  3. Every admitted job reaches a terminal state (no starvation).
//  4. After the drain, all quota accounting returns exactly to zero and
//     every fleet slot is free.
func TestSchedulerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		tenants = 4
		jobs    = 150
	)
	s := New(Config{
		FleetWorkers: 3,
		MaxQueue:     jobs + 1, // no saturation evictions; admission is not under test
		DefaultQuota: Quota{MaxQueued: jobs + 1, MaxRunning: 2},
	})
	defer s.Close()
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		// Varied but deterministic run times; rng itself is not
		// goroutine-safe so derive from the job's sequence number.
		time.Sleep(time.Duration(j.seq*37%200) * time.Microsecond)
		return &dist.Result{}, obs.NewTelemetry(), nil
	}

	var violations []string
	s.dispatchHook = func(ev DispatchEvent) {
		q := ev.QueuedAt[ev.Tenant]
		for p := int(ev.Priority) + 1; p < int(numPriorities); p++ {
			if q[p] > 0 {
				violations = append(violations, fmt.Sprintf(
					"%s dispatched %s for %s while it had %d queued at %s",
					ev.JobID, ev.Priority, ev.Tenant, q[p], Priority(p)))
			}
		}
		for tenant, tq := range ev.QueuedAt {
			if tenant == ev.Tenant {
				continue
			}
			for p := int(ev.Priority) + 1; p < int(numPriorities); p++ {
				if tq[p] > 0 && ev.RunningAt[tenant] < s.quotaFor(tenant).MaxRunning {
					violations = append(violations, fmt.Sprintf(
						"%s dispatched at %s while %s had %d runnable jobs queued at %s",
						ev.JobID, ev.Priority, tenant, tq[p], Priority(p)))
				}
			}
		}
	}

	pris := []string{"low", "normal", "high"}
	var ids []string
	for i := 0; i < jobs; i++ {
		tenant := fmt.Sprintf("t%d", rng.Intn(tenants))
		st, apiErr := s.Submit(wcRequest(tenant, pris[rng.Intn(3)], 1+rng.Intn(3)))
		if apiErr != nil {
			t.Fatalf("submit %d: %v", i, apiErr)
		}
		ids = append(ids, st.ID)
		// Randomly cancel a recent submission: racing the scheduler is the
		// point, so "already running" (409) is an acceptable outcome.
		if rng.Intn(10) == 0 {
			victim := ids[rng.Intn(len(ids))]
			if _, apiErr := s.Cancel(victim); apiErr != nil && apiErr.Status != 409 && apiErr.Status != 404 {
				t.Fatalf("cancel %s: %v", victim, apiErr)
			}
		}
	}

	// Drain: every admitted job must reach a terminal state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		pending := s.queuedTotal + s.runningJobs
		s.mu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled with %d jobs pending", pending)
		}
		time.Sleep(time.Millisecond)
	}

	for _, v := range violations {
		t.Errorf("fairness violation: %s", v)
	}
	for _, id := range ids {
		st, apiErr := s.JobStatus(id)
		if apiErr != nil {
			t.Fatalf("status %s: %v", id, apiErr)
		}
		switch st.State {
		case StateDone, StateCanceled:
		default:
			t.Errorf("job %s stranded in state %s", id, st.State)
		}
	}

	// Quota accounting must return exactly to zero.
	s.mu.Lock()
	if s.queuedTotal != 0 || s.runningJobs != 0 {
		t.Errorf("after drain: queuedTotal=%d runningJobs=%d, want 0/0", s.queuedTotal, s.runningJobs)
	}
	for name, ts := range s.tenants {
		if ts.queuedCount != 0 || ts.queuedBytes != 0 || ts.running != 0 {
			t.Errorf("tenant %s accounting not zero after drain: queued=%d bytes=%d running=%d",
				name, ts.queuedCount, ts.queuedBytes, ts.running)
		}
		for p := range ts.queued {
			if len(ts.queued[p]) != 0 {
				t.Errorf("tenant %s: %d jobs left in class %s", name, len(ts.queued[p]), Priority(p))
			}
		}
	}
	s.mu.Unlock()
	if free, total := s.fleet.Free(), s.fleet.Total(); free != total {
		t.Errorf("fleet slots leaked: %d/%d free after drain", free, total)
	}
}

// TestEvictionIsPriced pins the admission-under-saturation contract: with
// the queue full, a submission may only displace a strictly lower-priority
// job, and the victim is marked evicted.
func TestEvictionIsPriced(t *testing.T) {
	started := make(chan *job)
	release := make(chan struct{})
	s := New(Config{FleetWorkers: 2, MaxQueue: 2})
	s.runFn = func(j *job) (*dist.Result, *obs.Telemetry, error) {
		started <- j
		<-release
		return &dist.Result{}, obs.NewTelemetry(), nil
	}

	// Fill the fleet, then the queue: [low, normal] queued.
	if _, apiErr := s.Submit(wcRequest("hold", "high", 2)); apiErr != nil {
		t.Fatalf("filler: %v", apiErr)
	}
	<-started
	lowSt, apiErr := s.Submit(wcRequest("A", "low", 2))
	if apiErr != nil {
		t.Fatalf("low: %v", apiErr)
	}
	if _, apiErr = s.Submit(wcRequest("B", "normal", 2)); apiErr != nil {
		t.Fatalf("normal: %v", apiErr)
	}

	// Equal priority must NOT displace: normal vs queued [low, normal] —
	// the victim search finds the low job, but a same-class newcomer is
	// rejected when only the low is below it... normal > low, so this IS
	// admitted and evicts the low. A low newcomer, with no class below it,
	// must bounce.
	if _, apiErr = s.Submit(wcRequest("C", "low", 2)); apiErr == nil {
		t.Fatal("low submission admitted into a full queue with no lower class to displace")
	} else if apiErr.Status != 429 || apiErr.Reason != "queue-full" {
		t.Fatalf("low rejection: got %v, want 429 queue-full", apiErr)
	}

	// A high newcomer displaces the lowest-class victim: the low job.
	if _, apiErr = s.Submit(wcRequest("C", "high", 2)); apiErr != nil {
		t.Fatalf("high submission not admitted into full queue over a low job: %v", apiErr)
	}
	vic, apiErr := s.JobStatus(lowSt.ID)
	if apiErr != nil {
		t.Fatalf("victim status: %v", apiErr)
	}
	if vic.State != StateEvicted {
		t.Fatalf("victim state %s, want %s", vic.State, StateEvicted)
	}
	if s.reg.Counter("jobsvc_evicted_total", obs.L("tenant", "A")).Value() != 1 {
		t.Error("jobsvc_evicted_total{tenant=A} != 1")
	}

	// Drain: auto-release every remaining dispatch, let the filler finish,
	// then shut down (Close cancels whatever is still queued).
	go func() {
		for range started {
			release <- struct{}{}
		}
	}()
	release <- struct{}{}
	s.Close()
	close(started)
}
