package hw

import (
	"math"
	"testing"

	"glasswing/internal/sim"
)

func almost(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	tol := rel * math.Max(math.Abs(want), 1e-12)
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, d := range []DeviceProfile{XeonE5620, XeonE5, GTX480, GTX680, K20m, XeonPhi} {
		if d.HWThreads <= 0 || d.ThreadOps <= 0 || d.MemBW <= 0 {
			t.Errorf("%s: non-positive core parameters: %+v", d.Name, d)
		}
		if !d.Unified && d.PCIeBW <= 0 {
			t.Errorf("%s: discrete device without PCIe bandwidth", d.Name)
		}
		if d.Peak() <= 0 {
			t.Errorf("%s: zero peak", d.Name)
		}
	}
	// The paper's single-node GPU/CPU gap for compute-bound work is about
	// an order of magnitude (KM: 20x over Hadoop, ~2x of which is
	// Glasswing-CPU vs Hadoop). Check the profiles put GTX480/CPU in a
	// 5x..20x band.
	ratio := GTX480.Peak() / XeonE5620.Peak()
	if ratio < 5 || ratio > 20 {
		t.Errorf("GTX480/XeonE5620 peak ratio %g outside [5,20]", ratio)
	}
	// Successive GPU generations must be ordered.
	if !(K20m.Peak() > GTX480.Peak()) {
		t.Error("K20m should outrun GTX480")
	}
}

func TestDiskSequentialBandwidth(t *testing.T) {
	env := sim.NewEnv()
	n := NewNode(env, 0, Type1(false))
	var end float64
	env.Spawn("r", func(p *sim.Proc) {
		n.Disk.Read(p, 200e6) // 200 MB at 200 MB/s + one seek
		end = p.Now()
	})
	env.Run()
	almost(t, end, 1.0+RAID2x1TB.SeekTime, 0.01, "sequential read time")
}

func TestDiskContentionShares(t *testing.T) {
	env := sim.NewEnv()
	n := NewNode(env, 0, Type1(false))
	var ends []float64
	for i := 0; i < 2; i++ {
		env.Spawn("r", func(p *sim.Proc) {
			n.Disk.Read(p, 100e6)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	// Two concurrent 100MB reads on a 200MB/s disk: ~1s each (plus seeks).
	for _, e := range ends {
		almost(t, e, 1.0+2*RAID2x1TB.SeekTime, 0.05, "contended read")
	}
}

func TestCPUDeviceSharesWithHostWork(t *testing.T) {
	// A 16-thread kernel and 16 single-thread host workers on a 16-thread
	// CPU: total weight 32 on capacity 16 -> everything takes 2x as long
	// as uncontended.
	env := sim.NewEnv()
	n := NewNode(env, 0, Type1(false))
	ops := XeonE5620.ThreadOps // 1 second of single-thread work
	var kernelEnd float64
	env.Spawn("kernel", func(p *sim.Proc) {
		n.CPU.Use(p, 16*ops, 16)
		kernelEnd = p.Now()
	})
	for i := 0; i < 16; i++ {
		env.Spawn("host", func(p *sim.Proc) { n.HostWork(p, ops, 1) })
	}
	env.Run()
	almost(t, kernelEnd, 2.0, 0.01, "kernel under 2x oversubscription")
}

func TestAcceleratorIsDedicated(t *testing.T) {
	// Host work must not slow a GPU kernel down.
	env := sim.NewEnv()
	n := NewNode(env, 0, Type1(true))
	gpu := n.Accelerator()
	if gpu == nil || gpu.Profile.Name != GTX480.Name {
		t.Fatalf("Type1(true) should carry a GTX480, got %+v", gpu)
	}
	ops := gpu.Profile.Peak() // 1 second of full-device work
	var end float64
	env.Spawn("kernel", func(p *sim.Proc) {
		gpu.Compute.Use(p, ops, float64(gpu.Profile.HWThreads))
		end = p.Now()
	})
	for i := 0; i < 32; i++ {
		env.Spawn("host", func(p *sim.Proc) { n.HostWork(p, 1e9, 1) })
	}
	env.Run()
	almost(t, end, 1.0, 0.01, "GPU kernel with busy host")
}

func TestPCIeTransfer(t *testing.T) {
	env := sim.NewEnv()
	n := NewNode(env, 0, Type1(true))
	gpu := n.Accelerator()
	var end float64
	env.Spawn("x", func(p *sim.Proc) {
		gpu.Transfer(p, int64(GTX480.PCIeBW)) // 1 second of PCIe
		end = p.Now()
	})
	env.Run()
	almost(t, end, 1.0+GTX480.TransferOverhead, 0.01, "PCIe transfer")

	// Unified device transfers are free.
	env2 := sim.NewEnv()
	n2 := NewNode(env2, 0, Type1(false))
	env2.Spawn("x", func(p *sim.Proc) {
		n2.CPUDevice().Transfer(p, 1<<30)
		if p.Now() != 0 {
			t.Errorf("unified transfer advanced time to %g", p.Now())
		}
	})
	env2.Run()
}

func TestClusterTransferBandwidthAndLatency(t *testing.T) {
	env := sim.NewEnv()
	c := NewCluster(env, 2, Type1(false))
	bytes := int64(IPoIB.BW) // 1 second at line rate
	var end float64
	env.Spawn("t", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], bytes)
		end = p.Now()
	})
	env.Run()
	if end < 1.0 || end > 1.15 {
		t.Fatalf("2-node transfer of 1s payload took %g, want ~1s (+latency+cpu)", end)
	}
}

func TestClusterIncastContention(t *testing.T) {
	// 4 senders to one receiver: the receiver's down pipe is the
	// bottleneck; each transfer takes ~4x the uncontended time.
	env := sim.NewEnv()
	c := NewCluster(env, 5, Type1(false))
	bytes := int64(IPoIB.BW / 4) // 0.25s uncontended
	var ends []float64
	for i := 1; i <= 4; i++ {
		src := c.Nodes[i]
		env.Spawn("t", func(p *sim.Proc) {
			c.Transfer(p, src, c.Nodes[0], bytes)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	for _, e := range ends {
		if e < 0.95 || e > 1.2 {
			t.Fatalf("incast transfer finished at %g, want ~1s", e)
		}
	}
}

func TestLocalTransferCheap(t *testing.T) {
	env := sim.NewEnv()
	c := NewCluster(env, 1, Type1(false))
	var end float64
	env.Spawn("t", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[0], 100<<20)
		end = p.Now()
	})
	env.Run()
	if end > 0.05 {
		t.Fatalf("local hand-off of 100MB took %g, want << network time", end)
	}
}

func TestBroadcast(t *testing.T) {
	env := sim.NewEnv()
	c := NewCluster(env, 4, Type1(false))
	var end float64
	env.Spawn("b", func(p *sim.Proc) {
		c.Broadcast(p, c.Nodes[0], 1<<20)
		end = p.Now()
	})
	env.Run()
	if end <= 0 {
		t.Fatal("broadcast cost nothing")
	}
}

func TestNodeSpecDefaults(t *testing.T) {
	env := sim.NewEnv()
	n := NewNode(env, 3, NodeSpec{CPU: XeonE5620, Disk: RAID2x1TB, NIC: GigE})
	if n.MemBytes != 24<<30 {
		t.Errorf("default host mem = %d", n.MemBytes)
	}
	if n.Name != "node003" {
		t.Errorf("name = %q", n.Name)
	}
	if n.Accelerator() != nil {
		t.Error("unexpected accelerator")
	}
	if n.CPUDevice().Profile.Class != ClassCPU {
		t.Error("device 0 must be the CPU")
	}
}
