package hw

import (
	"fmt"

	"glasswing/internal/sim"
)

// Node is one machine in the simulated cluster: a CPU pool that host threads
// and CPU-device kernels contend for, a disk, a NIC, and zero or more
// discrete accelerators.
type Node struct {
	ID   int
	Name string

	// CPU is the weighted processor-sharing pool of hardware threads. All
	// host-side work (partitioning, merging, sorting, protocol processing,
	// Hadoop tasks) and OpenCL kernels on the CPU device flow through it,
	// which reproduces the contention effects in the paper's Table II/III
	// and Fig 4.
	CPU        *sim.Shared
	CPUProfile DeviceProfile

	Disk *Disk
	NIC  *NIC

	// Devices are the compute devices available to OpenCL, index 0 always
	// being the CPU itself.
	Devices []*Device

	// MemBytes is host RAM, used by in-core frameworks (GPMR) to check
	// dataset fit.
	MemBytes int64

	env *sim.Env
}

// Env returns the node's simulation environment.
func (n *Node) Env() *sim.Env { return n.env }

// Device is a compute device attached to a node: either the node's own CPU
// (unified memory, compute shared with host threads) or a discrete
// accelerator with its own compute pool and a PCIe link.
type Device struct {
	Profile DeviceProfile
	Node    *Node

	// Compute serves kernel ops. For the CPU device this aliases
	// Node.CPU; for accelerators it is a dedicated pool.
	Compute *sim.Shared
	// PCIe is the host<->device transfer pipe (nil for unified devices).
	PCIe *sim.Shared
	// MemBytes is device memory (buffer budget for multiple buffering).
	MemBytes int64
}

// Transfer moves n bytes across the device's PCIe link, blocking p for the
// transfer duration. Transfers share the link bandwidth with each other
// (stage vs. retrieve overlap under double/triple buffering). Unified
// devices return immediately.
func (d *Device) Transfer(p *sim.Proc, bytes int64) {
	if d.Profile.Unified || bytes <= 0 {
		return
	}
	if d.Profile.TransferOverhead > 0 {
		p.Delay(d.Profile.TransferOverhead)
	}
	d.PCIe.Use(p, float64(bytes), 1)
}

// Disk is a node-local storage device: a bandwidth pipe shared by all
// concurrent readers/writers, plus a fixed per-operation seek charged as
// bandwidth-equivalent bytes so that contention still shares fairly.
type Disk struct {
	Profile DiskProfile
	pipe    *sim.Shared
}

// NewDisk returns a disk following profile.
func NewDisk(env *sim.Env, profile DiskProfile) *Disk {
	return &Disk{Profile: profile, pipe: sim.NewShared(env, profile.BW, 1)}
}

func (d *Disk) access(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	seekEquiv := d.Profile.SeekTime * d.Profile.BW
	d.pipe.Use(p, float64(bytes)+seekEquiv, 1)
}

// Read charges a read of n bytes.
func (d *Disk) Read(p *sim.Proc, bytes int64) { d.access(p, bytes) }

// Write charges a write of n bytes.
func (d *Disk) Write(p *sim.Proc, bytes int64) { d.access(p, bytes) }

// NIC is a full-duplex network interface: independent up and down pipes.
type NIC struct {
	Profile NICProfile
	Up      *sim.Shared
	Down    *sim.Shared
}

// NewNIC returns a NIC following profile.
func NewNIC(env *sim.Env, profile NICProfile) *NIC {
	return &NIC{
		Profile: profile,
		Up:      sim.NewShared(env, profile.BW, 1),
		Down:    sim.NewShared(env, profile.BW, 1),
	}
}

// NodeSpec configures one node.
type NodeSpec struct {
	CPU  DeviceProfile
	Disk DiskProfile
	NIC  NICProfile
	// Accels are discrete devices (GPUs, Xeon Phi) attached to the node.
	Accels []DeviceProfile
	// MemBytes is host RAM (default 24 GiB, the Type-1 spec).
	MemBytes int64
	// DeviceMemBytes is accelerator memory (default 1.5 GiB, GTX480).
	DeviceMemBytes int64
}

// Type1 returns the spec of a DAS-4 Type-1 node (dual quad-core Xeon,
// 24 GB RAM, 2x1TB RAID disk, IPoIB), optionally with a GTX480.
func Type1(withGPU bool) NodeSpec {
	s := NodeSpec{CPU: XeonE5620, Disk: RAID2x1TB, NIC: IPoIB, MemBytes: 24 << 30, DeviceMemBytes: 1536 << 20}
	if withGPU {
		s.Accels = []DeviceProfile{GTX480}
	}
	return s
}

// Type2 returns the spec of a DAS-4 Type-2 node (dual 6-core Xeon, 64 GB
// RAM), optionally with a K20m.
func Type2(withGPU bool) NodeSpec {
	s := NodeSpec{CPU: XeonE5, Disk: SSDLocal, NIC: IPoIB, MemBytes: 64 << 30, DeviceMemBytes: 5 << 30}
	if withGPU {
		s.Accels = []DeviceProfile{K20m}
	}
	return s
}

// NewNode builds a node from spec.
func NewNode(env *sim.Env, id int, spec NodeSpec) *Node {
	if spec.MemBytes == 0 {
		spec.MemBytes = 24 << 30
	}
	if spec.DeviceMemBytes == 0 {
		spec.DeviceMemBytes = 1536 << 20
	}
	n := &Node{
		ID:         id,
		Name:       fmt.Sprintf("node%03d", id),
		CPU:        sim.NewShared(env, spec.CPU.ThreadOps, float64(spec.CPU.HWThreads)),
		CPUProfile: spec.CPU,
		Disk:       NewDisk(env, spec.Disk),
		NIC:        NewNIC(env, spec.NIC),
		MemBytes:   spec.MemBytes,
		env:        env,
	}
	cpuDev := &Device{Profile: spec.CPU, Node: n, Compute: n.CPU, MemBytes: spec.MemBytes}
	n.Devices = append(n.Devices, cpuDev)
	for _, ap := range spec.Accels {
		n.Devices = append(n.Devices, &Device{
			Profile:  ap,
			Node:     n,
			Compute:  sim.NewShared(env, ap.ThreadOps, float64(ap.HWThreads)),
			PCIe:     sim.NewShared(env, ap.PCIeBW, 1),
			MemBytes: spec.DeviceMemBytes,
		})
	}
	return n
}

// CPUDevice returns the node's CPU as an OpenCL device.
func (n *Node) CPUDevice() *Device { return n.Devices[0] }

// Accelerator returns the first non-CPU device, or nil.
func (n *Node) Accelerator() *Device {
	if len(n.Devices) > 1 {
		return n.Devices[1]
	}
	return nil
}

// HostWork charges w ops of host-side work using the given number of
// software threads against the node's CPU pool.
func (n *Node) HostWork(p *sim.Proc, ops float64, threads int) {
	if threads < 1 {
		threads = 1
	}
	n.CPU.Use(p, ops, float64(threads))
}

// Slowed returns a copy of the spec with every bandwidth and compute rate
// divided by m, leaving fixed latencies (seeks, kernel launch overhead,
// network latency) untouched.
//
// This is the time-dilation device that lets MB-scale real datasets stand in
// for the paper's GB/TB-scale ones: a dataset of S bytes on hardware slowed
// by m produces the same virtual timeline as a dataset of S*m bytes on
// full-speed hardware, up to per-operation fixed costs (which amortize at
// real scale anyway). Experiments pick m so that realSize*m matches the
// paper's dataset size; DESIGN.md documents the substitution.
func (s NodeSpec) Slowed(m float64) NodeSpec {
	if m <= 0 {
		panic("hw: slowdown factor must be positive")
	}
	s.CPU = s.CPU.Slow(m)
	s.Disk.BW /= m
	s.NIC.BW /= m
	s.NIC.CPUPerByte *= 1 // ops are on the slowed CPU already
	accels := make([]DeviceProfile, len(s.Accels))
	for i, a := range s.Accels {
		accels[i] = a.Slow(m)
	}
	s.Accels = accels
	return s
}
