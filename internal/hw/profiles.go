// Package hw models the hardware of the DAS-4 cluster the paper evaluates
// on: compute devices (multi-core CPUs, NVidia GPUs, Intel Xeon Phi), disks,
// NICs and the cluster fabric. All models run on the deterministic
// discrete-event kernel in package sim.
//
// Compute capability is expressed in abstract "ops": one op is roughly one
// simple arithmetic operation on generic (not hand-vectorized) code. Kernel
// cost models in the applications report their work in the same unit, and a
// device executes ops at ThreadOps per hardware thread, subject to the
// roofline memory-bandwidth bound. The constants below come from public spec
// sheets derated to realistic sustained throughput; see DESIGN.md for the
// calibration anchors.
package hw

// DeviceClass distinguishes host processors from discrete accelerators.
type DeviceClass int

const (
	// ClassCPU is a host multi-core processor with unified memory.
	ClassCPU DeviceClass = iota
	// ClassGPU is a discrete GPU behind a PCIe link.
	ClassGPU
	// ClassAccelerator is a many-core accelerator card (Xeon Phi).
	ClassAccelerator
)

func (c DeviceClass) String() string {
	switch c {
	case ClassCPU:
		return "CPU"
	case ClassGPU:
		return "GPU"
	case ClassAccelerator:
		return "ACC"
	}
	return "unknown"
}

// DeviceProfile describes the performance envelope of one compute device.
type DeviceProfile struct {
	Name  string
	Class DeviceClass

	// HWThreads is the number of hardware threads (CPU) or lanes (GPU/MIC)
	// the device can run fully in parallel.
	HWThreads int
	// ThreadOps is the sustained ops/sec of a single hardware thread.
	ThreadOps float64
	// MemBW is the device memory bandwidth in bytes/sec; kernels are
	// bounded by max(compute, traffic/MemBW) (roofline).
	MemBW float64
	// Unified reports whether the device shares host memory: the pipeline's
	// Stage and Retrieve stages are disabled for unified devices (paper
	// §III-A), and kernels contend with host threads for the CPU pool.
	Unified bool
	// PCIeBW is the host<->device transfer bandwidth in bytes/sec
	// (meaningless when Unified).
	PCIeBW float64
	// LaunchOverhead is the fixed cost of one kernel invocation in seconds
	// (driver + dispatch). It is what makes one-key-per-launch reduction
	// catastrophic in Fig 5.
	LaunchOverhead float64
	// ThreadSpawn is the per-kernel-thread creation/scheduling cost in ops.
	// Amortized by KeysPerThread in the reduce pipeline (paper §III-C).
	ThreadSpawn float64
	// AtomicFactor multiplies the cost of atomic operations (hash-table
	// insertion probes). High key repetition on a GPU makes this matter
	// (paper §IV-B1/B2).
	AtomicFactor float64
	// TransferOverhead is a fixed per-transfer cost in seconds, modeling
	// driver coupling between memory transfers and kernel executions that
	// the paper observes on the NVidia OpenCL stack (§IV-B2).
	TransferOverhead float64
}

// Peak returns the device's aggregate compute throughput in ops/sec.
func (d DeviceProfile) Peak() float64 { return float64(d.HWThreads) * d.ThreadOps }

// Profiles for the hardware in the paper's evaluation (DAS-4 at VU
// Amsterdam). Derations keep single-node framework ratios inside the bands
// the paper reports.
var (
	// XeonE5620 models the Type-1 node CPU: dual quad-core Intel Xeon
	// 2.4GHz with hyperthreading (16 hardware threads).
	XeonE5620 = DeviceProfile{
		Name:           "dual-Xeon-E5620",
		Class:          ClassCPU,
		HWThreads:      16,
		ThreadOps:      1.5e9, // HT thread on generic scalar code
		MemBW:          25e9,
		Unified:        true,
		LaunchOverhead: 20e-6,
		ThreadSpawn:    2000,
		AtomicFactor:   1.5,
	}

	// XeonE5 models the Type-2 node CPU: dual 6-core Xeon 2GHz.
	XeonE5 = DeviceProfile{
		Name:           "dual-Xeon-E5-2620",
		Class:          ClassCPU,
		HWThreads:      24,
		ThreadOps:      1.4e9,
		MemBW:          40e9,
		Unified:        true,
		LaunchOverhead: 20e-6,
		ThreadSpawn:    2000,
		AtomicFactor:   1.5,
	}

	// GTX480 is the Fermi GPU on 32 of the Type-1 nodes.
	GTX480 = DeviceProfile{
		Name:             "NVidia-GTX480",
		Class:            ClassGPU,
		HWThreads:        480,
		ThreadOps:        0.7e9,
		MemBW:            150e9,
		PCIeBW:           5e9,
		LaunchOverhead:   15e-6,
		ThreadSpawn:      200,
		AtomicFactor:     4,
		TransferOverhead: 30e-6,
	}

	// GTX680 is the Kepler GPU on one additional Type-2 node.
	GTX680 = DeviceProfile{
		Name:             "NVidia-GTX680",
		Class:            ClassGPU,
		HWThreads:        1536,
		ThreadOps:        0.35e9,
		MemBW:            180e9,
		PCIeBW:           6e9,
		LaunchOverhead:   12e-6,
		ThreadSpawn:      150,
		AtomicFactor:     3,
		TransferOverhead: 25e-6,
	}

	// K20m is the Kepler GPU on the Type-2 nodes.
	K20m = DeviceProfile{
		Name:             "NVidia-K20m",
		Class:            ClassGPU,
		HWThreads:        2496,
		ThreadOps:        0.28e9,
		MemBW:            200e9,
		PCIeBW:           6e9,
		LaunchOverhead:   12e-6,
		ThreadSpawn:      150,
		AtomicFactor:     3,
		TransferOverhead: 25e-6,
	}

	// XeonPhi is the Intel Xeon Phi 5110P on two Type-2 nodes (used with
	// Intel's OpenCL SDK 3.0, MIC support).
	XeonPhi = DeviceProfile{
		Name:             "Intel-XeonPhi-5110P",
		Class:            ClassAccelerator,
		HWThreads:        240,
		ThreadOps:        1.0e9,
		MemBW:            160e9,
		PCIeBW:           6e9,
		LaunchOverhead:   40e-6, // MIC offload dispatch is slower
		ThreadSpawn:      800,
		AtomicFactor:     2,
		TransferOverhead: 60e-6,
	}
)

// DiskProfile describes a node-local storage device.
type DiskProfile struct {
	Name string
	// BW is sustained sequential bandwidth in bytes/sec.
	BW float64
	// SeekTime is the fixed per-operation positioning cost in seconds.
	SeekTime float64
}

// RAID2x1TB models the Type-1 nodes' two 1TB disks in software RAID0.
var RAID2x1TB = DiskProfile{Name: "2x1TB-RAID0", BW: 200e6, SeekTime: 6e-3}

// SSDLocal models the Type-2 nodes' faster local storage.
var SSDLocal = DiskProfile{Name: "local-ssd", BW: 450e6, SeekTime: 0.2e-3}

// NICProfile describes a network interface.
type NICProfile struct {
	Name string
	// BW is the per-direction bandwidth in bytes/sec (full duplex).
	BW float64
	// Latency is the one-way message latency in seconds.
	Latency float64
	// CPUPerByte is the host-CPU protocol-processing cost in ops/byte,
	// charged on both sender and receiver.
	CPUPerByte float64
}

// GigE is plain Gigabit Ethernet.
var GigE = NICProfile{Name: "GbE", BW: 118e6, Latency: 80e-6, CPUPerByte: 0.5}

// IPoIB is IP over QDR InfiniBand, the transport the paper uses for both
// HDFS and the frameworks' data paths.
var IPoIB = NICProfile{Name: "IPoIB-QDR", BW: 1.0e9, Latency: 25e-6, CPUPerByte: 0.15}

// Slow returns a copy of the profile with every rate divided by m and all
// fixed latencies unchanged. See NodeSpec.Slowed.
func (d DeviceProfile) Slow(m float64) DeviceProfile {
	d.ThreadOps /= m
	d.MemBW /= m
	d.PCIeBW /= m
	return d
}
