package hw

import (
	"testing"
	"testing/quick"

	"glasswing/internal/sim"
)

// TestQuickTimeDilationEquivalence is the property DESIGN.md's scaling
// substitution rests on: processing S bytes on hardware slowed by m takes
// exactly m times as long as at full speed — equivalently, the same time as
// S*m bytes at full speed — for disk, CPU and network alike (fixed
// latencies excluded, which is why the property is checked on bulk work).
func TestQuickTimeDilationEquivalence(t *testing.T) {
	run := func(m float64, bytes int64, ops float64) float64 {
		env := sim.NewEnv()
		spec := Type1(false)
		if m > 1 {
			spec = spec.Slowed(m)
		}
		c := NewCluster(env, 2, spec)
		var end float64
		env.Spawn("work", func(p *sim.Proc) {
			c.Nodes[0].Disk.Read(p, bytes)
			c.Nodes[0].HostWork(p, ops, 4)
			c.Transfer(p, c.Nodes[0], c.Nodes[1], bytes)
			end = p.Now()
		})
		env.Run()
		return end
	}
	f := func(mRaw, bRaw uint16) bool {
		m := 2 + float64(mRaw%500)
		bytes := int64(bRaw)*1000 + 32<<20
		ops := float64(bytes) * 3
		slow := run(m, bytes, ops)
		fast := run(1, bytes, ops)
		// Bulk terms scale exactly by m; fixed latencies (seek, NIC
		// latency) do not, so allow a small tolerance.
		ratio := slow / fast
		return ratio > m*0.9 && ratio < m*1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowedPreservesFixedLatencies(t *testing.T) {
	s := Type1(true).Slowed(100)
	if s.Disk.SeekTime != RAID2x1TB.SeekTime {
		t.Error("seek time must not dilate")
	}
	if s.NIC.Latency != IPoIB.Latency {
		t.Error("NIC latency must not dilate")
	}
	if s.Accels[0].LaunchOverhead != GTX480.LaunchOverhead {
		t.Error("kernel launch overhead must not dilate")
	}
	if s.CPU.ThreadOps*100 != XeonE5620.ThreadOps {
		t.Error("CPU rate must dilate by exactly m")
	}
	if s.Accels[0].PCIeBW*100 != GTX480.PCIeBW {
		t.Error("PCIe bandwidth must dilate by exactly m")
	}
}

func TestSlowedInvalidFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive factor")
		}
	}()
	Type1(false).Slowed(0)
}
