package hw

import "glasswing/internal/sim"

// Cluster is a set of nodes joined by a non-blocking fabric (the paper's
// DAS-4 uses QDR InfiniBand with full bisection bandwidth, so the only
// contention points are the per-node NICs).
type Cluster struct {
	Env   *sim.Env
	Nodes []*Node
}

// NewCluster builds n identical nodes from spec.
func NewCluster(env *sim.Env, n int, spec NodeSpec) *Cluster {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return NewClusterWithSpecs(env, specs)
}

// NewClusterWithSpecs builds one node per spec — a heterogeneous cluster
// (mixed node generations, or a straggler: one node with an extra Slowed
// factor).
func NewClusterWithSpecs(env *sim.Env, specs []NodeSpec) *Cluster {
	c := &Cluster{Env: env}
	for i, spec := range specs {
		c.Nodes = append(c.Nodes, NewNode(env, i, spec))
	}
	return c
}

// Transfer moves bytes from src to dst, blocking p until the data has
// arrived. The sender's up pipe and the receiver's down pipe are both
// charged; to avoid store-and-forward double counting, the transfer is
// split into windows so the two pipes overlap, converging to the bottleneck
// pipe's rate for bulk transfers. Protocol processing is charged to both
// hosts' CPU pools. Local transfers (src == dst) cost one memcpy.
func (c *Cluster) Transfer(p *sim.Proc, src, dst *Node, bytes int64) {
	if bytes <= 0 {
		return
	}
	if src == dst {
		// In-process hand-off: charge a memcpy at host memory bandwidth.
		src.CPU.Use(p, float64(bytes)*0.1, 1)
		return
	}
	prof := src.NIC.Profile
	p.Delay(prof.Latency)
	cpuOps := prof.CPUPerByte * float64(bytes)
	src.CPU.Use(p, cpuOps/2, 1)
	// The sender's up pipe and the receiver's down pipe are occupied
	// concurrently (cut-through, non-blocking core); the transfer finishes
	// when the slower of the two shares delivers the last byte. A helper
	// process drives the sender side so both pipes are held at once, which
	// makes incast at a reducer cost what it should.
	upDone := sim.NewSignal(c.Env)
	c.Env.Spawn(p.Name+"/xfer-up", func(q *sim.Proc) {
		src.NIC.Up.Use(q, float64(bytes), 1)
		upDone.Fire(nil)
	})
	dst.NIC.Down.Use(p, float64(bytes), 1)
	upDone.Wait(p)
	dst.CPU.Use(p, cpuOps/2, 1)
}

// Broadcast sends bytes from src to every other node (used by KM to ship
// the cluster centers, mirroring Hadoop's DistributedCache).
func (c *Cluster) Broadcast(p *sim.Proc, src *Node, bytes int64) {
	for _, n := range c.Nodes {
		if n != src {
			c.Transfer(p, src, n, bytes)
		}
	}
}
