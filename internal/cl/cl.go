// Package cl is the OpenCL-like middleware Glasswing programs against: it
// exposes compute devices behind a uniform API — contexts, device buffers,
// NDRange kernel launches with work-item semantics, and host<->device
// transfers — exactly the role OpenCL plays in the paper.
//
// Because no OpenCL runtime or accelerator hardware is available, kernels
// here are real Go functions executed over the real data, and the *time*
// a launch takes is charged to the simulated device under a roofline model:
//
//	launch = LaunchOverhead
//	       + max( (ops + atomics*AtomicFactor + threads*ThreadSpawn) / rate(threads),
//	              bytes / MemBW )
//
// where rate(threads) = ThreadOps * min(threads, HWThreads). Kernels run on
// the device's processor-sharing compute pool, so CPU kernels contend with
// host threads (partitioners, mergers) while accelerator kernels are
// dedicated — the asymmetry behind the paper's Table III and Fig 4.
package cl

import (
	"fmt"

	"glasswing/internal/hw"
	"glasswing/internal/obs"
	"glasswing/internal/sim"
)

// Context binds to one compute device, tracking buffer allocations against
// the device's memory budget (multiple buffering on a GPU is limited by
// device memory, §III-D).
type Context struct {
	Device *hw.Device

	// Sink, if set, receives one span per completed command-queue operation
	// ("cl/write", "cl/kernel", "cl/read" tracks), timed from the queue's
	// profiling timestamps. Node labels the spans. Synchronous calls
	// (Launch, EnqueueWrite/Read) are not sinked: their time is already
	// covered by the caller's own pipeline spans.
	Sink obs.SpanSink
	Node int

	allocated int64
	// Profiling counters (virtual seconds / launches), in the spirit of
	// clGetEventProfilingInfo.
	KernelTime   float64
	TransferTime float64
	Launches     int
}

// NewContext returns a context on device.
func NewContext(device *hw.Device) *Context {
	if device == nil {
		panic("cl: nil device")
	}
	return &Context{Device: device}
}

// Unified reports whether the device shares host memory (Stage and Retrieve
// pipeline stages are disabled on unified devices).
func (c *Context) Unified() bool { return c.Device.Profile.Unified }

// Buffer is a device memory allocation.
type Buffer struct {
	Name string
	Size int64
	ctx  *Context
	free bool
}

// Alloc reserves size bytes of device memory.
func (c *Context) Alloc(name string, size int64) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("cl: negative allocation %q", name)
	}
	if c.allocated+size > c.Device.MemBytes {
		return nil, fmt.Errorf("cl: device %s out of memory: %d + %d > %d",
			c.Device.Profile.Name, c.allocated, size, c.Device.MemBytes)
	}
	c.allocated += size
	return &Buffer{Name: name, Size: size, ctx: c}, nil
}

// Allocated returns the bytes currently reserved.
func (c *Context) Allocated() int64 { return c.allocated }

// Free releases the buffer. Double frees panic.
func (b *Buffer) Free() {
	if b.free {
		panic(fmt.Sprintf("cl: double free of buffer %q", b.Name))
	}
	b.free = true
	b.ctx.allocated -= b.Size
}

// EnqueueWrite moves n bytes host->device, blocking p for the transfer.
// No-op on unified devices.
func (c *Context) EnqueueWrite(p *sim.Proc, n int64) {
	t0 := p.Now()
	c.Device.Transfer(p, n)
	c.TransferTime += p.Now() - t0
}

// EnqueueRead moves n bytes device->host, blocking p for the transfer.
// No-op on unified devices.
func (c *Context) EnqueueRead(p *sim.Proc, n int64) {
	t0 := p.Now()
	c.Device.Transfer(p, n)
	c.TransferTime += p.Now() - t0
}

// Stats is the work one kernel launch performs, accumulated by the engine
// while it executes the kernel body over the real data.
type Stats struct {
	// Ops is plain arithmetic/logic work.
	Ops float64
	// AtomicOps is work serialized through atomic operations (hash-table
	// probes, shared-pool bump allocations); multiplied by the device's
	// AtomicFactor.
	AtomicOps float64
	// Bytes is device memory traffic (roofline memory-bound term).
	Bytes float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Ops += other.Ops
	s.AtomicOps += other.AtomicOps
	s.Bytes += other.Bytes
}

// LaunchTime returns the uncontended roofline time of a launch, without
// executing anything. Useful for tests and for the GPMR model.
func (c *Context) LaunchTime(threads int, st Stats) float64 {
	prof := c.Device.Profile
	if threads < 1 {
		threads = 1
	}
	effThreads := threads
	if effThreads > prof.HWThreads {
		effThreads = prof.HWThreads
	}
	ops := st.Ops + st.AtomicOps*prof.AtomicFactor + float64(threads)*prof.ThreadSpawn
	compute := ops / (prof.ThreadOps * float64(effThreads))
	mem := st.Bytes / prof.MemBW
	t := compute
	if mem > t {
		t = mem
	}
	return prof.LaunchOverhead + t
}

// Launch charges one kernel invocation of the given global work size to the
// device and blocks p for its (possibly contended) duration. It returns the
// elapsed virtual time. The caller has already executed the kernel body and
// accumulated st.
func (c *Context) Launch(p *sim.Proc, threads int, st Stats) float64 {
	prof := c.Device.Profile
	if threads < 1 {
		threads = 1
	}
	effThreads := threads
	if effThreads > prof.HWThreads {
		effThreads = prof.HWThreads
	}
	t0 := p.Now()
	p.Delay(prof.LaunchOverhead)
	ops := st.Ops + st.AtomicOps*prof.AtomicFactor + float64(threads)*prof.ThreadSpawn
	// Convert the memory-bound term into ops-equivalents at this thread
	// count so a single processor-sharing charge covers the roofline max.
	memOpsEquiv := st.Bytes / prof.MemBW * prof.ThreadOps * float64(effThreads)
	amount := ops
	if memOpsEquiv > amount {
		amount = memOpsEquiv
	}
	c.Device.Compute.Use(p, amount, float64(effThreads))
	elapsed := p.Now() - t0
	c.KernelTime += elapsed
	c.Launches++
	return elapsed
}

// Range divides n work items among the given number of kernel threads the
// way Glasswing's OpenCL middleware does ("these compute kernels divide the
// available number of records between them", §III-A), invoking body with
// each thread's half-open item range. Threads with no items are skipped.
func Range(n, threads int, body func(tid, lo, hi int)) {
	if threads < 1 {
		threads = 1
	}
	per := n / threads
	rem := n % threads
	lo := 0
	for tid := 0; tid < threads && lo < n; tid++ {
		hi := lo + per
		if tid < rem {
			hi++
		}
		if hi > lo {
			body(tid, lo, hi)
		}
		lo = hi
	}
}
