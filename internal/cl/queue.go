package cl

import (
	"fmt"

	"glasswing/internal/obs"
	"glasswing/internal/sim"
)

// Event is the handle returned by asynchronous enqueues, mirroring
// cl_event: it fires when the operation completes and carries profiling
// timestamps (CL_PROFILING_COMMAND_START/END).
type Event struct {
	Name  string
	done  *sim.Signal
	start float64
	end   float64
}

// Wait blocks p until the event completes.
func (e *Event) Wait(p *sim.Proc) { e.done.Wait(p) }

// Completed reports whether the operation has finished.
func (e *Event) Completed() bool { return e.done.Fired() }

// Profile returns the operation's start and end virtual times. It panics if
// the event has not completed (matching OpenCL, where profiling info is
// only available after completion).
func (e *Event) Profile() (start, end float64) {
	if !e.done.Fired() {
		panic(fmt.Sprintf("cl: Profile on incomplete event %q", e.Name))
	}
	return e.start, e.end
}

// Duration returns end-start of a completed event.
func (e *Event) Duration() float64 {
	s, en := e.Profile()
	return en - s
}

// CommandQueue issues operations on a context's device asynchronously, in
// order (an in-order OpenCL command queue): each enqueue returns
// immediately with an Event; the queue's worker executes the operations
// back to back. This is what lets the pipeline's Stage run ahead of Kernel
// under double/triple buffering.
type CommandQueue struct {
	ctx  *Context
	env  *sim.Env
	ops  *sim.Queue[queuedOp]
	idle *sim.Proc
}

type queuedOp struct {
	ev  *Event
	run func(p *sim.Proc)
}

// NewQueue creates an in-order command queue on the context.
func (c *Context) NewQueue(env *sim.Env, name string) *CommandQueue {
	q := &CommandQueue{ctx: c, env: env, ops: sim.NewQueue[queuedOp](env, 0)}
	q.idle = env.Spawn(name, func(p *sim.Proc) {
		for {
			op, ok := q.ops.Get(p)
			if !ok {
				return
			}
			op.ev.start = p.Now()
			op.run(p)
			op.ev.end = p.Now()
			if q.ctx.Sink != nil {
				q.ctx.Sink.Span(obs.Span{Node: q.ctx.Node, Stage: "cl/" + op.ev.Name,
					Start: op.ev.start, End: op.ev.end})
			}
			op.ev.done.Fire(nil)
		}
	})
	return q
}

// enqueue registers an operation and returns its event.
func (q *CommandQueue) enqueue(name string, run func(p *sim.Proc)) *Event {
	ev := &Event{Name: name, done: sim.NewSignal(q.env)}
	q.ops.TryPut(queuedOp{ev: ev, run: run})
	return ev
}

// EnqueueWriteAsync schedules a host->device transfer.
func (q *CommandQueue) EnqueueWriteAsync(n int64) *Event {
	return q.enqueue("write", func(p *sim.Proc) { q.ctx.EnqueueWrite(p, n) })
}

// EnqueueReadAsync schedules a device->host transfer.
func (q *CommandQueue) EnqueueReadAsync(n int64) *Event {
	return q.enqueue("read", func(p *sim.Proc) { q.ctx.EnqueueRead(p, n) })
}

// EnqueueKernelAsync schedules a kernel launch whose work is described by
// st at the given global size. The kernel body must already have been
// executed by the caller (package cl charges time; the engine computes).
func (q *CommandQueue) EnqueueKernelAsync(threads int, st Stats) *Event {
	return q.enqueue("kernel", func(p *sim.Proc) { q.ctx.Launch(p, threads, st) })
}

// Finish closes the queue and blocks p until every enqueued operation has
// completed (clFinish + release).
func (q *CommandQueue) Finish(p *sim.Proc) {
	q.ops.Close()
	q.idle.Done().Wait(p)
}
