package cl

import (
	"math"
	"testing"

	"glasswing/internal/hw"
	"glasswing/internal/obs"
	"glasswing/internal/sim"
)

func TestCommandQueueInOrder(t *testing.T) {
	env, ctx := gpuCtx()
	q := ctx.NewQueue(env, "q")
	prof := ctx.Device.Profile
	var evs []*Event
	env.Spawn("driver", func(p *sim.Proc) {
		evs = append(evs, q.EnqueueWriteAsync(int64(prof.PCIeBW)))                       // 1s
		evs = append(evs, q.EnqueueKernelAsync(prof.HWThreads, Stats{Ops: prof.Peak()})) // ~1s
		evs = append(evs, q.EnqueueReadAsync(int64(prof.PCIeBW/2)))                      // 0.5s
		q.Finish(p)
	})
	env.Run()
	for i, ev := range evs {
		if !ev.Completed() {
			t.Fatalf("event %d incomplete after Finish", i)
		}
	}
	// In-order: each op starts no earlier than the previous ends.
	for i := 1; i < len(evs); i++ {
		_, prevEnd := evs[i-1].Profile()
		start, _ := evs[i].Profile()
		if start < prevEnd-1e-12 {
			t.Fatalf("op %d started at %g before op %d ended at %g", i, start, i-1, prevEnd)
		}
	}
	if d := evs[0].Duration(); math.Abs(d-(1.0+ctx.Device.Profile.TransferOverhead)) > 0.01 {
		t.Fatalf("write duration %g, want ~1s", d)
	}
}

func TestCommandQueueOverlapsWithDriver(t *testing.T) {
	// The driver enqueues and keeps working; the queue drains concurrently.
	env := sim.NewEnv()
	node := hw.NewNode(env, 0, hw.Type1(true))
	ctx := NewContext(node.Accelerator())
	q := ctx.NewQueue(env, "q")
	prof := ctx.Device.Profile
	var driverDone, xferDone float64
	env.Spawn("driver", func(p *sim.Proc) {
		ev := q.EnqueueWriteAsync(int64(prof.PCIeBW))  // 1s of PCIe
		node.HostWork(p, node.CPUProfile.ThreadOps, 1) // 1s of host work, concurrent
		driverDone = p.Now()
		ev.Wait(p)
		xferDone = p.Now()
		q.Finish(p)
	})
	env.Run()
	if driverDone < 0.99 {
		t.Fatalf("driver host work took %g, want ~1s", driverDone)
	}
	// Transfer overlapped the host work: total well under 2s.
	if xferDone > 1.5 {
		t.Fatalf("transfer did not overlap: done at %g", xferDone)
	}
}

func TestEventProfilePanicsBeforeCompletion(t *testing.T) {
	env, ctx := gpuCtx()
	q := ctx.NewQueue(env, "q")
	ev := &Event{Name: "x", done: sim.NewSignal(env)}
	defer func() {
		if recover() == nil {
			t.Fatal("Profile before completion should panic")
		}
		// Drain the queue so the env is clean.
		env.Spawn("fin", func(p *sim.Proc) { q.Finish(p) })
		env.Run()
	}()
	ev.Profile()
}

func TestCommandQueueSpanSink(t *testing.T) {
	env, ctx := gpuCtx()
	sink := &obs.SpanBuffer{}
	ctx.Sink, ctx.Node = sink, 3
	q := ctx.NewQueue(env, "q")
	prof := ctx.Device.Profile
	env.Spawn("driver", func(p *sim.Proc) {
		q.EnqueueWriteAsync(int64(prof.PCIeBW))
		q.EnqueueKernelAsync(prof.HWThreads, Stats{Ops: prof.Peak()})
		q.EnqueueReadAsync(int64(prof.PCIeBW / 2))
		q.Finish(p)
	})
	env.Run()
	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("sinked %d spans, want 3", len(spans))
	}
	wantStages := []string{"cl/write", "cl/kernel", "cl/read"}
	for i, s := range spans {
		if s.Stage != wantStages[i] {
			t.Errorf("span %d stage = %q, want %q", i, s.Stage, wantStages[i])
		}
		if s.Node != 3 {
			t.Errorf("span %d node = %d, want 3", i, s.Node)
		}
		if s.End <= s.Start {
			t.Errorf("span %d has no duration: %+v", i, s)
		}
	}
}
