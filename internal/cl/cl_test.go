package cl

import (
	"math"
	"testing"
	"testing/quick"

	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

func gpuCtx() (*sim.Env, *Context) {
	env := sim.NewEnv()
	n := hw.NewNode(env, 0, hw.Type1(true))
	return env, NewContext(n.Accelerator())
}

func cpuCtx() (*sim.Env, *hw.Node, *Context) {
	env := sim.NewEnv()
	n := hw.NewNode(env, 0, hw.Type1(false))
	return env, n, NewContext(n.CPUDevice())
}

func almost(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Max(math.Abs(want), 1e-12) {
		t.Fatalf("%s: got %g, want %g", msg, got, want)
	}
}

func TestLaunchComputeBound(t *testing.T) {
	env, ctx := gpuCtx()
	prof := ctx.Device.Profile
	ops := prof.Peak() // one second of full-device compute
	var elapsed float64
	env.Spawn("k", func(p *sim.Proc) {
		elapsed = ctx.Launch(p, prof.HWThreads, Stats{Ops: ops})
	})
	env.Run()
	spawn := float64(prof.HWThreads) * prof.ThreadSpawn / prof.Peak()
	almost(t, elapsed, 1.0+prof.LaunchOverhead+spawn, 0.01, "compute-bound launch")
}

func TestLaunchMemoryBound(t *testing.T) {
	env, ctx := gpuCtx()
	prof := ctx.Device.Profile
	var elapsed float64
	env.Spawn("k", func(p *sim.Proc) {
		// Tiny compute, 1 second of memory traffic.
		elapsed = ctx.Launch(p, prof.HWThreads, Stats{Ops: 1000, Bytes: prof.MemBW})
	})
	env.Run()
	almost(t, elapsed, 1.0+prof.LaunchOverhead, 0.01, "memory-bound launch")
}

func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	env, ctx := gpuCtx()
	prof := ctx.Device.Profile
	var total float64
	env.Spawn("k", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			total += ctx.Launch(p, 1, Stats{Ops: 10})
		}
	})
	env.Run()
	if total < 100*prof.LaunchOverhead {
		t.Fatalf("100 tiny launches took %g, want >= %g of pure overhead", total, 100*prof.LaunchOverhead)
	}
}

func TestAtomicFactorInflatesCost(t *testing.T) {
	_, ctx := gpuCtx()
	prof := ctx.Device.Profile
	plain := ctx.LaunchTime(prof.HWThreads, Stats{Ops: 1e9})
	atomic := ctx.LaunchTime(prof.HWThreads, Stats{AtomicOps: 1e9})
	wantRatio := prof.AtomicFactor
	gotRatio := (atomic - prof.LaunchOverhead) / (plain - prof.LaunchOverhead)
	// Thread-spawn cost shifts the ratio slightly.
	if gotRatio < wantRatio*0.8 || gotRatio > wantRatio*1.2 {
		t.Fatalf("atomic/plain ratio = %g, want ~%g", gotRatio, wantRatio)
	}
}

func TestFewThreadsUnderusesDevice(t *testing.T) {
	_, ctx := gpuCtx()
	prof := ctx.Device.Profile
	full := ctx.LaunchTime(prof.HWThreads, Stats{Ops: 1e10})
	one := ctx.LaunchTime(1, Stats{Ops: 1e10})
	if one < full*float64(prof.HWThreads)*0.9 {
		t.Fatalf("single-thread launch (%g) should be ~%dx slower than full (%g)", one, prof.HWThreads, full)
	}
	// More threads than hardware gives no further speedup (beyond spawn cost).
	over := ctx.LaunchTime(prof.HWThreads*4, Stats{Ops: 1e10})
	if over < full {
		t.Fatalf("oversubscribed launch (%g) faster than full (%g)", over, full)
	}
}

func TestCPUKernelContendsWithHostWork(t *testing.T) {
	// The same kernel, alone vs. with 16 host threads active: Table III's
	// partitioning-contention effect.
	run := func(hostThreads int) float64 {
		env, node, ctx := cpuCtx()
		prof := ctx.Device.Profile
		var elapsed float64
		env.Spawn("k", func(p *sim.Proc) {
			elapsed = ctx.Launch(p, prof.HWThreads, Stats{Ops: prof.Peak()})
		})
		for i := 0; i < hostThreads; i++ {
			env.Spawn("host", func(p *sim.Proc) { node.HostWork(p, prof.Peak()/16, 1) })
		}
		env.Run()
		return elapsed
	}
	alone := run(0)
	contended := run(16)
	if contended < alone*1.5 {
		t.Fatalf("CPU kernel with 16 host threads (%g) should be much slower than alone (%g)", contended, alone)
	}
}

func TestGPUKernelIgnoresHostWork(t *testing.T) {
	run := func(hostThreads int) float64 {
		env := sim.NewEnv()
		node := hw.NewNode(env, 0, hw.Type1(true))
		ctx := NewContext(node.Accelerator())
		prof := ctx.Device.Profile
		var elapsed float64
		env.Spawn("k", func(p *sim.Proc) {
			elapsed = ctx.Launch(p, prof.HWThreads, Stats{Ops: prof.Peak()})
		})
		for i := 0; i < hostThreads; i++ {
			env.Spawn("host", func(p *sim.Proc) { node.HostWork(p, 1e9, 1) })
		}
		env.Run()
		return elapsed
	}
	almost(t, run(16), run(0), 0.01, "GPU kernel must be independent of host load")
}

func TestTransfersChargedOnlyForDiscrete(t *testing.T) {
	env, ctx := gpuCtx()
	var end float64
	env.Spawn("x", func(p *sim.Proc) {
		ctx.EnqueueWrite(p, int64(ctx.Device.Profile.PCIeBW/2)) // 0.5s
		ctx.EnqueueRead(p, int64(ctx.Device.Profile.PCIeBW/2))  // 0.5s
		end = p.Now()
	})
	env.Run()
	almost(t, end, 1.0+2*ctx.Device.Profile.TransferOverhead, 0.01, "PCIe round trip")
	if ctx.TransferTime <= 0.9 {
		t.Fatalf("TransferTime = %g", ctx.TransferTime)
	}

	env2, _, cctx := cpuCtx()
	env2.Spawn("x", func(p *sim.Proc) {
		cctx.EnqueueWrite(p, 1<<30)
		if p.Now() != 0 {
			t.Error("unified write should be free")
		}
	})
	env2.Run()
}

func TestAllocBudget(t *testing.T) {
	_, ctx := gpuCtx()
	mem := ctx.Device.MemBytes
	b1, err := ctx.Alloc("half", mem/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Alloc("too-big", mem); err == nil {
		t.Fatal("over-allocation should fail")
	}
	b2, err := ctx.Alloc("rest", mem-mem/2)
	if err != nil {
		t.Fatal(err)
	}
	b1.Free()
	b2.Free()
	if ctx.Allocated() != 0 {
		t.Fatalf("Allocated = %d after frees", ctx.Allocated())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	b1.Free()
}

func TestRangeCoversAllItems(t *testing.T) {
	f := func(nRaw, thRaw uint16) bool {
		n := int(nRaw % 5000)
		threads := int(thRaw%300) + 1
		covered := make([]bool, n)
		calls := 0
		Range(n, threads, func(tid, lo, hi int) {
			calls++
			if tid < 0 || tid >= threads || lo >= hi {
				t.Errorf("bad range call tid=%d lo=%d hi=%d", tid, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					return
				}
				covered[i] = true
			}
		})
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return calls <= threads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBalance(t *testing.T) {
	var sizes []int
	Range(10, 3, func(tid, lo, hi int) { sizes = append(sizes, hi-lo) })
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v, want [4 3 3]", sizes)
	}
}
