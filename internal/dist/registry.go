package dist

import (
	"fmt"
	"math"

	"glasswing/internal/apps"
	"glasswing/internal/core"
)

// The registry resolves AppSpec names to application kernels for
// multi-process workers — code never crosses the wire, only the app name
// and a parameter blob. Loopback callers usually bypass this with
// Options.NewApp, but the registry entries are what `cmd/distnode` uses.

// RegistryResolver resolves the built-in applications: "wc" (word count,
// no params), "ts" (TeraSort; params = EncodeTSParams sample boundaries),
// "km" (KMeans; params = EncodeKMParams center spec).
func RegistryResolver(spec AppSpec) (*core.App, func(key []byte, n int) int, error) {
	switch spec.Name {
	case "wc":
		return apps.WordCount(), nil, nil
	case "ts":
		sample, err := DecodeTSParams(spec.Params)
		if err != nil {
			return nil, nil, err
		}
		return apps.TeraSort(), apps.RangePartitioner(sample), nil
	case "km":
		ksp, err := DecodeKMParams(spec.Params)
		if err != nil {
			return nil, nil, err
		}
		return apps.KMeans(ksp), nil, nil
	default:
		return nil, nil, fmt.Errorf("dist: unknown app %q", spec.Name)
	}
}

// EncodeTSParams packs a TeraSort key sample (the range-partitioner
// boundaries every node must agree on) into an AppSpec params blob.
func EncodeTSParams(sample [][]byte) []byte {
	var e enc
	e.u(uint64(len(sample)))
	for _, k := range sample {
		e.bytes(k)
	}
	return e.buf
}

// DecodeTSParams unpacks EncodeTSParams.
func DecodeTSParams(p []byte) ([][]byte, error) {
	d := dec{buf: p}
	n := d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	sample := make([][]byte, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		sample = append(sample, append([]byte(nil), d.bytes()...))
	}
	return sample, d.fin("ts-params")
}

// EncodeKMParams packs a KMeans spec into an AppSpec params blob.
func EncodeKMParams(s apps.KMeansSpec) []byte {
	var e enc
	e.u(uint64(s.Dim))
	e.u(uint64(s.ModelCenters))
	e.u(uint64(len(s.Centers)))
	for _, c := range s.Centers {
		e.u(uint64(len(c)))
		for _, v := range c {
			e.u(uint64(math.Float32bits(v)))
		}
	}
	return e.buf
}

// DecodeKMParams unpacks EncodeKMParams.
func DecodeKMParams(p []byte) (apps.KMeansSpec, error) {
	d := dec{buf: p}
	var s apps.KMeansSpec
	s.Dim = int(d.u())
	s.ModelCenters = int(d.u())
	k := d.u()
	if k > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < k && d.err == nil; i++ {
		dim := d.u()
		if dim > uint64(len(p)) {
			d.err = errCorrupt
			break
		}
		c := make([]float32, 0, dim)
		for j := uint64(0); j < dim && d.err == nil; j++ {
			c = append(c, math.Float32frombits(uint32(d.u())))
		}
		s.Centers = append(s.Centers, c)
	}
	return s, d.fin("km-params")
}

// SplitBlocks cuts input into map blocks of roughly chunk bytes, on record
// boundaries: recordSize > 0 splits on fixed-size records (TeraSort's
// 100-byte rows, KMeans' packed points), otherwise on newlines.
func SplitBlocks(data []byte, chunk int, recordSize int) [][]byte {
	if chunk <= 0 {
		chunk = 96 << 10
	}
	var blocks [][]byte
	if recordSize > 0 {
		per := chunk / recordSize
		if per < 1 {
			per = 1
		}
		step := per * recordSize
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			blocks = append(blocks, data[off:end])
		}
		return blocks
	}
	for off := 0; off < len(data); {
		end := off + chunk
		if end >= len(data) {
			blocks = append(blocks, data[off:])
			break
		}
		// Extend to the next newline so no record straddles blocks.
		for end < len(data) && data[end-1] != '\n' {
			end++
		}
		blocks = append(blocks, data[off:end])
		off = end
	}
	return blocks
}
