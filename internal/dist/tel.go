package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"glasswing/internal/obs"
)

// ledger is the dist runtime's conservation and stage-time account, using
// the same conserv_* vocabulary as internal/core's jobCounters and
// internal/native's recorder plus the wire counters this runtime adds. In
// loopback mode one ledger is shared by every node in the process (the
// counters are atomics), matching how conformance reads a single registry;
// a multi-process worker owns a private one.
type ledger struct {
	tel   *obs.Telemetry
	epoch time.Time

	mapRecordsIn atomic.Int64
	mapPairsOut  atomic.Int64
	partRecords  atomic.Int64
	partRuns     atomic.Int64
	partRaw      atomic.Int64
	partStored   atomic.Int64

	storeAccepted   atomic.Int64
	storeDupDropped atomic.Int64
	storeLost       atomic.Int64
	storeSettled    atomic.Int64 // records a final accepted reduce consumed before their store died
	handoffOut      atomic.Int64 // committed records shipped off a re-homed partition
	handoffIn       atomic.Int64 // committed records adopted at a partition's new home

	reduceRecordsIn atomic.Int64
	reduceGroupsIn  atomic.Int64
	outputPairs     atomic.Int64

	netRecordsSent atomic.Int64
	netBytesSent   atomic.Int64
	netRecordsRecv atomic.Int64
	netBytesRecv   atomic.Int64
	netRecordsLost atomic.Int64
	netBytesLost   atomic.Int64

	// Block-store locality: bytes of map input read from the mapper's own
	// store versus streamed from a remote holder (or shipped embedded by
	// the coordinator as a last resort). Their sum is the input volume, so
	// local/(local+remote) is the Fig 3(d) locality hit ratio.
	readLocalBytes  atomic.Int64
	readRemoteBytes atomic.Int64
	// blockIngestBytes counts block replica bytes pushed to this node's
	// store at ingest (replication included), kept apart from the shuffle
	// wire counters so the conservation ledger stays about records.
	blockIngestBytes atomic.Int64

	// Out-of-core reduce: committed shuffle runs evicted to disk when a
	// node's resident intermediate data exceeds Tuning.SpillThreshold.
	// Same conserv_spill_* vocabulary as the native runtime's spill path.
	spillRecords     atomic.Int64
	spillRawBytes    atomic.Int64
	spillStoredBytes atomic.Int64
	spillFiles       atomic.Int64

	mapKernelNs    atomic.Int64
	mapInputNs     atomic.Int64
	mapPartitionNs atomic.Int64
	netSendNs      atomic.Int64
	netRecvNs      atomic.Int64
	spillNs        atomic.Int64
	reduceNs       atomic.Int64

	// net/send split: queue residence vs socket write, summed per bulk
	// frame by the connection write pumps. netSendNs above is the span sum
	// (queue + write); these tell congestion apart from a slow wire.
	netQueueNs atomic.Int64
	netWriteNs atomic.Int64
}

// distFrameBuckets bucket outbound shuffle frame sizes in bytes, from
// lone-run frames up to fully coalesced multi-megabyte batches.
var distFrameBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// frameBytes records one outbound shuffle frame's wire size.
func (l *ledger) frameBytes(n int64) {
	if l.tel != nil && l.tel.Metrics != nil {
		l.tel.Metrics.Histogram("dist_frame_bytes", distFrameBuckets).Observe(float64(n))
	}
}

// bulkTiming accumulates one written bulk frame's queue/write split, both
// as running totals (the counters -report splits net/send by) and as
// per-frame latency histograms whose estimated quantiles expose the tail.
func (l *ledger) bulkTiming(queueNs, writeNs int64) {
	l.netQueueNs.Add(queueNs)
	l.netWriteNs.Add(writeNs)
	if l.tel != nil && l.tel.Metrics != nil {
		l.tel.Metrics.Histogram("dist_net_queue_seconds", obs.DefTimeBuckets).Observe(float64(queueNs) / 1e9)
		l.tel.Metrics.Histogram("dist_net_write_seconds", obs.DefTimeBuckets).Observe(float64(writeNs) / 1e9)
	}
}

func newLedger(tel *obs.Telemetry) *ledger {
	return &ledger{tel: tel, epoch: time.Now()}
}

// flushAttempt folds one winning map attempt's stats into the ledger.
// Failed and killed attempts flush nothing, so the map-side counters stay
// exact even on retry runs.
func (l *ledger) flushAttempt(s attemptStats) {
	l.mapRecordsIn.Add(s.RecordsIn)
	l.mapPairsOut.Add(s.PairsOut)
	l.partRecords.Add(s.PartRecords)
	l.partRuns.Add(s.PartRuns)
	l.partRaw.Add(s.PartRaw)
	l.partStored.Add(s.PartStored)
}

func (l *ledger) netSent(records, bytes int64) {
	l.netRecordsSent.Add(records)
	l.netBytesSent.Add(bytes)
}

func (l *ledger) netRecv(records, bytes int64) {
	l.netRecordsRecv.Add(records)
	l.netBytesRecv.Add(bytes)
}

func (l *ledger) netLost(records, bytes int64) {
	l.netRecordsLost.Add(records)
	l.netBytesLost.Add(bytes)
}

func (l *ledger) nsAcc(stage string) *atomic.Int64 {
	switch stage {
	case stageMapKernel:
		return &l.mapKernelNs
	case stageMapInput:
		return &l.mapInputNs
	case stageMapPartition:
		return &l.mapPartitionNs
	case stageNetSend:
		return &l.netSendNs
	case stageNetRecv:
		return &l.netRecvNs
	case stageSpill:
		return &l.spillNs
	default:
		return &l.reduceNs
	}
}

// tracer records one node's trace spans against that node's own wall clock
// and mints cluster-unique span ids. Workers ship their tracer's buffer to
// the coordinator in a span-batch at job end; the coordinator rebases every
// batch onto its own epoch (minus the estimated clock offset) and emits one
// merged trace. The ledger reference (nil for the coordinator) feeds the
// per-stage busy accumulators exactly as the old per-ledger spans did.
type tracer struct {
	led   *ledger
	node  int
	epoch time.Time
	ctr   atomic.Uint64
	buf   obs.SpanBuffer
}

// spanIDBits is how many id bits belong to the per-tracer counter; the bits
// above carry the node salt (node+2, so the coordinator's node -1 salts as
// 1 and node 0 as 2 — never 0, which marks "no span").
const spanIDBits = 48

func newTracer(led *ledger, node int) *tracer {
	return &tracer{led: led, node: node, epoch: time.Now()}
}

// newID mints a cluster-unique span id: node salt in the high bits, a
// per-tracer counter below.
func (t *tracer) newID() uint64 {
	return uint64(t.node+2)<<spanIDBits | (t.ctr.Add(1) & (1<<spanIDBits - 1))
}

// span starts one unit of stage work with a fresh id; the returned func
// ends and records it. The id is returned up front so it can parent child
// spans (or cross the wire) before the work completes.
func (t *tracer) span(stage string, parent uint64) (uint64, func()) {
	id := t.newID()
	return id, t.spanWithID(id, stage, parent)
}

// spanWithID starts stage work under a pre-minted id — the net/send path,
// where the coalescer mints the id so it can embed it in the frame payload
// before the connection pump starts the span.
func (t *tracer) spanWithID(id uint64, stage string, parent uint64) func() {
	t0 := time.Now()
	return func() { t.recordAt(id, stage, t0, time.Now(), parent) }
}

// record books a completed interval with a fresh id, returning the id.
func (t *tracer) record(stage string, start, end time.Time, parent uint64) uint64 {
	id := t.newID()
	t.recordAt(id, stage, start, end, parent)
	return id
}

// recordTagged is record with span tags attached — the per-split locality
// verdict on map/input spans, for one.
func (t *tracer) recordTagged(stage string, start, end time.Time, parent uint64, tags map[string]string) uint64 {
	id := t.newID()
	d := end.Sub(start)
	if t.led != nil {
		t.led.nsAcc(stage).Add(int64(d))
	}
	begin := start.Sub(t.epoch).Seconds()
	t.buf.Span(obs.Span{
		Node: t.node, Stage: stage,
		Start: begin, End: begin + d.Seconds(),
		ID: id, Parent: parent, Tags: tags,
	})
	return id
}

func (t *tracer) recordAt(id uint64, stage string, start, end time.Time, parent uint64) {
	d := end.Sub(start)
	if t.led != nil {
		t.led.nsAcc(stage).Add(int64(d))
	}
	begin := start.Sub(t.epoch).Seconds()
	t.buf.Span(obs.Span{
		Node: t.node, Stage: stage,
		Start: begin, End: begin + d.Seconds(),
		ID: id, Parent: parent,
	})
}

// spans returns the recorded spans.
func (t *tracer) spans() []obs.Span { return t.buf.Spans() }

// clockEstimator holds the NTP-style offset estimate for one remote node,
// fed by heartbeat probe/reply timestamp exchanges. The estimate kept is
// the one observed at minimum round-trip time — the sample least distorted
// by queuing — and its error is bounded by rtt/2.
type clockEstimator struct {
	mu       sync.Mutex
	have     bool
	bestRTT  int64   // nanoseconds
	offsetNs float64 // remote clock minus local clock at min-RTT
}

// sample folds in one exchange: t1 local send, t2 remote receive, t3 remote
// send, t4 local receive (all unix nanoseconds, two different clocks).
func (ce *clockEstimator) sample(t1, t2, t3, t4 int64) {
	rtt := (t4 - t1) - (t3 - t2)
	if rtt < 0 {
		return // timestamps out of order: a clock stepped mid-exchange
	}
	theta := (float64(t2-t1) + float64(t3-t4)) / 2
	ce.mu.Lock()
	if !ce.have || rtt < ce.bestRTT {
		ce.have, ce.bestRTT, ce.offsetNs = true, rtt, theta
	}
	ce.mu.Unlock()
}

// estimate returns the current offset (remote minus local, nanoseconds) and
// the round-trip time it was measured at. ok is false before any sample.
func (ce *clockEstimator) estimate() (offsetNs float64, rttNs int64, ok bool) {
	if ce == nil {
		return 0, 0, false
	}
	ce.mu.Lock()
	defer ce.mu.Unlock()
	return ce.offsetNs, ce.bestRTT, ce.have
}

// stages snapshots per-stage busy totals (stages that never ran are
// omitted), the same shape the native recorder reports.
func (l *ledger) stages() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range []struct {
		name string
		ns   *atomic.Int64
	}{
		{stageMapKernel, &l.mapKernelNs},
		{stageMapInput, &l.mapInputNs},
		{stageMapPartition, &l.mapPartitionNs},
		{stageNetSend, &l.netSendNs},
		{stageNetRecv, &l.netRecvNs},
		{stageSpill, &l.spillNs},
		{stageReduce, &l.reduceNs},
	} {
		if v := s.ns.Load(); v > 0 {
			out[s.name] = time.Duration(v)
		}
	}
	return out
}

// publish pushes the settled counters into the telemetry registry. Call
// once, after every node has quiesced.
func (l *ledger) publish() {
	if l.tel == nil || l.tel.Metrics == nil {
		return
	}
	reg := l.tel.Metrics
	reg.Counter("conserv_map_records_in_total").Add(l.mapRecordsIn.Load())
	reg.Counter("conserv_map_pairs_out_total").Add(l.mapPairsOut.Load())
	reg.Counter("conserv_partition_records_total").Add(l.partRecords.Load())
	reg.Counter("conserv_partition_runs_total").Add(l.partRuns.Load())
	reg.Counter("conserv_partition_raw_bytes_total").Add(l.partRaw.Load())
	reg.Counter("conserv_partition_stored_bytes_total").Add(l.partStored.Load())
	reg.Counter("conserv_store_accepted_records_total").Add(l.storeAccepted.Load())
	reg.Counter("conserv_store_dup_dropped_records_total").Add(l.storeDupDropped.Load())
	reg.Counter("conserv_store_lost_records_total").Add(l.storeLost.Load())
	reg.Counter("conserv_store_settled_records_total").Add(l.storeSettled.Load())
	reg.Counter("conserv_store_handoff_out_records_total").Add(l.handoffOut.Load())
	reg.Counter("conserv_store_handoff_in_records_total").Add(l.handoffIn.Load())
	reg.Counter("conserv_reduce_records_in_total").Add(l.reduceRecordsIn.Load())
	reg.Counter("conserv_reduce_groups_in_total").Add(l.reduceGroupsIn.Load())
	reg.Counter("conserv_output_pairs_total").Add(l.outputPairs.Load())
	reg.Counter("conserv_net_records_sent_total").Add(l.netRecordsSent.Load())
	reg.Counter("conserv_net_bytes_sent_total").Add(l.netBytesSent.Load())
	reg.Counter("conserv_net_records_recv_total").Add(l.netRecordsRecv.Load())
	reg.Counter("conserv_net_bytes_recv_total").Add(l.netBytesRecv.Load())
	reg.Counter("conserv_net_records_lost_total").Add(l.netRecordsLost.Load())
	reg.Counter("conserv_net_bytes_lost_total").Add(l.netBytesLost.Load())
	reg.Counter("dist_shuffle_bytes_total").Add(l.netBytesSent.Load())
	reg.Counter("dist_net_queue_ns_total").Add(l.netQueueNs.Load())
	reg.Counter("dist_net_write_ns_total").Add(l.netWriteNs.Load())
	// Block-store and spill counters only appear on runs that used those
	// subsystems, so metric snapshots of every pre-existing run shape stay
	// byte-identical.
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"dist_read_local_bytes_total", l.readLocalBytes.Load()},
		{"dist_read_remote_bytes_total", l.readRemoteBytes.Load()},
		{"dist_block_ingest_bytes_total", l.blockIngestBytes.Load()},
		{"conserv_spill_records_total", l.spillRecords.Load()},
		{"conserv_spill_raw_bytes_total", l.spillRawBytes.Load()},
		{"conserv_spill_stored_bytes_total", l.spillStoredBytes.Load()},
		{"conserv_spill_files_total", l.spillFiles.Load()},
	} {
		if c.v != 0 {
			reg.Counter(c.name).Add(c.v)
		}
	}
}
