package dist

import (
	"sync/atomic"
	"time"

	"glasswing/internal/obs"
)

// ledger is the dist runtime's conservation and stage-time account, using
// the same conserv_* vocabulary as internal/core's jobCounters and
// internal/native's recorder plus the wire counters this runtime adds. In
// loopback mode one ledger is shared by every node in the process (the
// counters are atomics), matching how conformance reads a single registry;
// a multi-process worker owns a private one.
type ledger struct {
	tel   *obs.Telemetry
	epoch time.Time

	mapRecordsIn atomic.Int64
	mapPairsOut  atomic.Int64
	partRecords  atomic.Int64
	partRuns     atomic.Int64
	partRaw      atomic.Int64
	partStored   atomic.Int64

	storeAccepted   atomic.Int64
	storeDupDropped atomic.Int64
	storeLost       atomic.Int64

	reduceRecordsIn atomic.Int64
	reduceGroupsIn  atomic.Int64
	outputPairs     atomic.Int64

	netRecordsSent atomic.Int64
	netBytesSent   atomic.Int64
	netRecordsRecv atomic.Int64
	netBytesRecv   atomic.Int64
	netRecordsLost atomic.Int64
	netBytesLost   atomic.Int64

	mapKernelNs    atomic.Int64
	mapPartitionNs atomic.Int64
	netSendNs      atomic.Int64
	netRecvNs      atomic.Int64
	reduceNs       atomic.Int64

	// net/send split: queue residence vs socket write, summed per bulk
	// frame by the connection write pumps. netSendNs above is the span sum
	// (queue + write); these tell congestion apart from a slow wire.
	netQueueNs atomic.Int64
	netWriteNs atomic.Int64
}

// distFrameBuckets bucket outbound shuffle frame sizes in bytes, from
// lone-run frames up to fully coalesced multi-megabyte batches.
var distFrameBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// frameBytes records one outbound shuffle frame's wire size.
func (l *ledger) frameBytes(n int64) {
	if l.tel != nil && l.tel.Metrics != nil {
		l.tel.Metrics.Histogram("dist_frame_bytes", distFrameBuckets).Observe(float64(n))
	}
}

// bulkTiming accumulates one written bulk frame's queue/write split.
func (l *ledger) bulkTiming(queueNs, writeNs int64) {
	l.netQueueNs.Add(queueNs)
	l.netWriteNs.Add(writeNs)
}

func newLedger(tel *obs.Telemetry) *ledger {
	return &ledger{tel: tel, epoch: time.Now()}
}

// flushAttempt folds one winning map attempt's stats into the ledger.
// Failed and killed attempts flush nothing, so the map-side counters stay
// exact even on retry runs.
func (l *ledger) flushAttempt(s attemptStats) {
	l.mapRecordsIn.Add(s.RecordsIn)
	l.mapPairsOut.Add(s.PairsOut)
	l.partRecords.Add(s.PartRecords)
	l.partRuns.Add(s.PartRuns)
	l.partRaw.Add(s.PartRaw)
	l.partStored.Add(s.PartStored)
}

func (l *ledger) netSent(records, bytes int64) {
	l.netRecordsSent.Add(records)
	l.netBytesSent.Add(bytes)
}

func (l *ledger) netRecv(records, bytes int64) {
	l.netRecordsRecv.Add(records)
	l.netBytesRecv.Add(bytes)
}

func (l *ledger) netLost(records, bytes int64) {
	l.netRecordsLost.Add(records)
	l.netBytesLost.Add(bytes)
}

func (l *ledger) nsAcc(stage string) *atomic.Int64 {
	switch stage {
	case stageMapKernel:
		return &l.mapKernelNs
	case stageMapPartition:
		return &l.mapPartitionNs
	case stageNetSend:
		return &l.netSendNs
	case stageNetRecv:
		return &l.netRecvNs
	default:
		return &l.reduceNs
	}
}

// span starts one unit of stage work on node's track; the returned func
// ends it, feeding both the busy accumulator and (when telemetry is on)
// the span buffer.
func (l *ledger) span(node int, stage string) func() {
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		l.nsAcc(stage).Add(int64(d))
		if l.tel != nil && l.tel.Spans != nil {
			begin := t0.Sub(l.epoch).Seconds()
			l.tel.Spans.Span(obs.Span{Node: node, Stage: stage, Start: begin, End: begin + d.Seconds()})
		}
	}
}

// stages snapshots per-stage busy totals (stages that never ran are
// omitted), the same shape the native recorder reports.
func (l *ledger) stages() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range []struct {
		name string
		ns   *atomic.Int64
	}{
		{stageMapKernel, &l.mapKernelNs},
		{stageMapPartition, &l.mapPartitionNs},
		{stageNetSend, &l.netSendNs},
		{stageNetRecv, &l.netRecvNs},
		{stageReduce, &l.reduceNs},
	} {
		if v := s.ns.Load(); v > 0 {
			out[s.name] = time.Duration(v)
		}
	}
	return out
}

// publish pushes the settled counters into the telemetry registry. Call
// once, after every node has quiesced.
func (l *ledger) publish() {
	if l.tel == nil || l.tel.Metrics == nil {
		return
	}
	reg := l.tel.Metrics
	reg.Counter("conserv_map_records_in_total").Add(l.mapRecordsIn.Load())
	reg.Counter("conserv_map_pairs_out_total").Add(l.mapPairsOut.Load())
	reg.Counter("conserv_partition_records_total").Add(l.partRecords.Load())
	reg.Counter("conserv_partition_runs_total").Add(l.partRuns.Load())
	reg.Counter("conserv_partition_raw_bytes_total").Add(l.partRaw.Load())
	reg.Counter("conserv_partition_stored_bytes_total").Add(l.partStored.Load())
	reg.Counter("conserv_store_accepted_records_total").Add(l.storeAccepted.Load())
	reg.Counter("conserv_store_dup_dropped_records_total").Add(l.storeDupDropped.Load())
	reg.Counter("conserv_store_lost_records_total").Add(l.storeLost.Load())
	reg.Counter("conserv_reduce_records_in_total").Add(l.reduceRecordsIn.Load())
	reg.Counter("conserv_reduce_groups_in_total").Add(l.reduceGroupsIn.Load())
	reg.Counter("conserv_output_pairs_total").Add(l.outputPairs.Load())
	reg.Counter("conserv_net_records_sent_total").Add(l.netRecordsSent.Load())
	reg.Counter("conserv_net_bytes_sent_total").Add(l.netBytesSent.Load())
	reg.Counter("conserv_net_records_recv_total").Add(l.netRecordsRecv.Load())
	reg.Counter("conserv_net_bytes_recv_total").Add(l.netBytesRecv.Load())
	reg.Counter("conserv_net_records_lost_total").Add(l.netRecordsLost.Load())
	reg.Counter("conserv_net_bytes_lost_total").Add(l.netBytesLost.Load())
	reg.Counter("dist_shuffle_bytes_total").Add(l.netBytesSent.Load())
	reg.Counter("dist_net_queue_ns_total").Add(l.netQueueNs.Load())
	reg.Counter("dist_net_write_ns_total").Add(l.netWriteNs.Load())
}
