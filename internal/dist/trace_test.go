package dist

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/obs"
)

// TestTraceMergedCluster is the tentpole integration test: a 3-worker
// loopback run must yield ONE merged trace — coordinator scheduling spans
// on node -1, every worker's spans rebased to the coordinator's clock —
// with intact cross-process parent links, per-worker clock estimates whose
// residual skew is bounded by RTT/2, and enough genuine concurrency that
// the analyzer's overlap factor exceeds 1.
func TestTraceMergedCluster(t *testing.T) {
	tel := obs.NewTelemetry()
	data, _ := apps.WCData(21, 256<<10, 1200)
	o := Options{
		Job:        Job{App: AppSpec{Name: "WC"}, Partitions: 6, Collector: core.HashTable},
		Workers:    3,
		Blocks:     SplitBlocks(data, 8<<10, 0),
		Telemetry:  tel,
		NewApp:     testResolver(apps.WordCount, nil),
		KillWorker: -1,
	}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("no trace id minted")
	}

	spans := tel.Spans.Spans()
	byID := make(map[uint64]obs.Span)
	nodes := make(map[int]bool)
	for _, s := range spans {
		nodes[s.Node] = true
		if s.ID != 0 {
			if _, dup := byID[s.ID]; dup {
				t.Fatalf("duplicate span id %#x across the merged trace", s.ID)
			}
			byID[s.ID] = s
		}
	}
	for _, n := range []int{-1, 0, 1, 2} {
		if !nodes[n] {
			t.Fatalf("merged trace missing node %d (have %v)", n, nodes)
		}
	}

	// Cross-process causality: every map/kernel span must parent on a
	// coordinator sched/assign span; at least one net/recv must parent on
	// a net/send recorded by a DIFFERENT node (the shuffle's wire edge).
	kernels, crossRecv := 0, 0
	for _, s := range spans {
		switch s.Stage {
		case stageMapKernel:
			kernels++
			p, ok := byID[s.Parent]
			if !ok || p.Node != -1 || p.Stage != stageSchedAssign {
				t.Fatalf("map/kernel span parent %#x not a coordinator sched/assign span (%+v)", s.Parent, p)
			}
		case stageNetRecv:
			if p, ok := byID[s.Parent]; ok && p.Stage == stageNetSend && p.Node != s.Node {
				crossRecv++
			}
		case stageReduce:
			p, ok := byID[s.Parent]
			if !ok || p.Node != -1 || p.Stage != stageSchedReduce {
				t.Fatalf("reduce span parent %#x not a coordinator sched/reduce span", s.Parent)
			}
		}
	}
	if kernels == 0 {
		t.Fatal("no map/kernel spans in the merged trace")
	}
	if crossRecv == 0 {
		t.Fatal("no net/recv span parents on another node's net/send: cross-process links lost in the merge")
	}

	// Clock alignment: each worker reported an estimate, the loopback
	// residual skew honors the estimator's RTT/2 error bound (both clocks
	// are the same physical clock, so the estimate IS the residual), and
	// rebased timestamps stay sane and ordered.
	for w := 0; w < 3; w++ {
		off, ok := res.ClockOffsets[w]
		if !ok {
			t.Fatalf("no clock estimate for worker %d", w)
		}
		rtt := res.ClockRTTs[w]
		if rtt <= 0 {
			t.Fatalf("worker %d: non-positive RTT %v", w, rtt)
		}
		if off < 0 {
			off = -off
		}
		if off > rtt/2+1e-3 {
			t.Fatalf("worker %d: residual skew %.6fs exceeds RTT/2 bound (%.6fs)", w, off, rtt/2)
		}
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %s on node %d runs backwards after rebasing: [%f, %f]", s.Stage, s.Node, s.Start, s.End)
		}
		if s.Start < -0.1 {
			t.Fatalf("span %s on node %d starts %.3fs before the coordinator epoch", s.Stage, s.Node, s.Start)
		}
	}

	// The merged trace still proves compute/communication overlap.
	if rep := obs.Analyze(spans); rep.OverlapFactor <= 1.0 {
		t.Fatalf("merged-trace overlap factor %.2f <= 1.0", rep.OverlapFactor)
	}
}

// TestClockEstimatorProperty drives the NTP-style estimator through
// randomized trials — true offsets from nanoseconds to minutes, wildly
// asymmetric path delays — and checks the textbook invariant: the
// estimate's error never exceeds half the round-trip of the sample it
// kept, and that sample is the minimum-RTT one.
func TestClockEstimatorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		theta := rng.Int63n(120e9) - 60e9 // worker - coordinator, ±60s
		est := &clockEstimator{}
		minRTT := int64(1<<62 - 1)
		for probe := 0; probe < 20; probe++ {
			d1 := rng.Int63n(5e6) + 1000 // outbound wire delay, 1µs..5ms
			d2 := rng.Int63n(5e6) + 1000 // return delay, independent => asymmetric
			proc := rng.Int63n(1e5)      // remote processing time
			t1 := int64(1e9) + rng.Int63n(1e9)
			t2 := t1 + d1 + theta
			t3 := t2 + proc
			t4 := t1 + d1 + proc + d2
			est.sample(t1, t2, t3, t4)
			if rtt := d1 + d2; rtt < minRTT {
				minRTT = rtt
			}
		}
		off, rtt, ok := est.estimate()
		if !ok {
			t.Fatalf("trial %d: no estimate from 20 samples", trial)
		}
		if rtt != minRTT {
			t.Fatalf("trial %d: kept rtt %d, want minimum %d", trial, rtt, minRTT)
		}
		errNs := off - float64(theta)
		if errNs < 0 {
			errNs = -errNs
		}
		if errNs > float64(rtt)/2 {
			t.Fatalf("trial %d: offset error %.0fns exceeds RTT/2 = %.0fns (theta %d)",
				trial, errNs, float64(rtt)/2, theta)
		}
	}

	// Degenerate inputs: negative-RTT samples (clock stepped mid-probe)
	// are rejected, and an empty estimator reports !ok.
	var empty clockEstimator
	if _, _, ok := empty.estimate(); ok {
		t.Fatal("empty estimator claims an estimate")
	}
	empty.sample(100, 50, 60, 90) // t3-t2 > t4-t1 => rtt < 0
	if _, _, ok := empty.estimate(); ok {
		t.Fatal("negative-RTT sample accepted")
	}
	var nilEst *clockEstimator
	if _, _, ok := nilEst.estimate(); ok {
		t.Fatal("nil estimator claims an estimate")
	}
}

// TestClockProbeOverLink exercises the probe/reply protocol end to end on
// a real socket pair: only the probing side accumulates samples, and the
// loopback estimate lands near zero.
func TestClockProbeOverLink(t *testing.T) {
	a, b := tcpPair(t)
	est := &clockEstimator{}
	ca := newConn(a, "prober", Tuning{HeartbeatEvery: time.Hour}, nil)
	cb := newConn(b, "echo", Tuning{HeartbeatEvery: time.Hour}, nil)
	defer ca.close()
	defer cb.close()
	ca.enableClock(est, 10*time.Millisecond)
	// Both sides must keep reading: probes and replies ride heartbeats,
	// which recv consumes.
	errc := make(chan error, 2)
	go func() { _, _, err := ca.recv(); errc <- err }()
	go func() { _, _, err := cb.recv(); errc <- err }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, rtt, ok := est.estimate(); ok && rtt > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no clock sample within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	off, rtt, _ := est.estimate()
	if off < 0 {
		off = -off
	}
	if off > float64(rtt)/2+float64(time.Millisecond) {
		t.Fatalf("loopback offset %.0fns exceeds RTT/2 %.0fns", off, float64(rtt)/2)
	}
}

// FuzzSpanBatch fuzzes the span-batch decoder: arbitrary bytes must never
// panic, and anything that decodes must re-encode to a byte-identical
// payload (the codec is canonical).
func FuzzSpanBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(spanBatchMsg{TraceID: 1, Node: 0, EpochUnixNano: 42}.encode())
	f.Add(spanBatchMsg{
		TraceID: 0xdeadbeef, Node: 2, EpochUnixNano: 1700000000000000000,
		Spans: []obs.Span{
			{Node: 2, Stage: "map/kernel", Start: 0.5, End: 1.5, ID: 2<<48 | 7, Parent: 1 << 48},
			{Node: 2, Stage: "net/send", Start: 1, End: 2, ID: 2<<48 | 8},
		},
	}.encode())
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := decodeSpanBatch(p)
		if err != nil {
			return
		}
		re := m.encode()
		m2, err := decodeSpanBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-encode round trip diverged:\n got %+v\nwant %+v", m2, m)
		}
	})
}
