package dist

import (
	"path/filepath"
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/obs"
)

// bsWC builds a WC job with block-store input: enough tasks over 3 workers
// with replication 2 that placement actually matters (repl == workers would
// make every read trivially local).
func bsWC(tel *obs.Telemetry, mode string) (Options, map[string]uint64) {
	data, want := apps.WCData(31, 96<<10, 1200)
	return Options{
		Job:         Job{App: AppSpec{Name: "WC"}, Partitions: 5, Collector: core.HashTable},
		Workers:     3,
		Blocks:      SplitBlocks(data, 8<<10, 0), // ~12 blocks
		Telemetry:   tel,
		NewApp:      testResolver(apps.WordCount, nil),
		KillWorker:  -1,
		Blockstore:  mode,
		Replication: 2,
	}, want
}

// TestBlockstoreLocalPreferred: with local-preferred scheduling every block
// should be read off the mapper's own disk — byte-identical output to the
// embedded-dispatch run, full replication ingested, and the read ledger
// conserving exactly: local + remote == input bytes.
func TestBlockstoreLocalPreferred(t *testing.T) {
	oRef, want := bsWC(nil, "")
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := bsWC(tel, "local")
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("block-store run diverged from embedded-dispatch run")
	}
	if got := res.ReadLocalBytes + res.ReadRemoteBytes; got != ref.InputBytes {
		t.Fatalf("read ledger leak: local %d + remote %d != input %d",
			res.ReadLocalBytes, res.ReadRemoteBytes, ref.InputBytes)
	}
	// The affinity deal sends every task to its first replica holder; a
	// fault-free static cluster should read (almost) everything locally.
	// Work stealing can legitimately move a task, so assert the ratio, not
	// perfection.
	if 2*res.ReadLocalBytes < ref.InputBytes {
		t.Fatalf("local reads %d < half of input %d under local-preferred placement",
			res.ReadLocalBytes, ref.InputBytes)
	}
	ingest := tel.Metrics.Counter("dist_block_ingest_bytes_total").Value()
	if want := 2 * ref.InputBytes; ingest != want {
		t.Fatalf("ingested %d replica bytes, want replication*input = %d", ingest, want)
	}
	checkWire(t, tel.Metrics, false)
}

// TestBlockstoreForcedRemote pins the locality-off baseline: every task is
// dealt away from its replicas with AllowLocal off, so every input byte
// streams over the peer mesh and zero reads are local.
func TestBlockstoreForcedRemote(t *testing.T) {
	tel := obs.NewTelemetry()
	o, want := bsWC(tel, "remote")
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.ReadLocalBytes != 0 {
		t.Fatalf("forced-remote run read %d bytes locally", res.ReadLocalBytes)
	}
	if res.ReadRemoteBytes != res.InputBytes {
		t.Fatalf("remote reads %d != input %d", res.ReadRemoteBytes, res.InputBytes)
	}
	checkWire(t, tel.Metrics, false)
}

// TestBlockstoreSpill drives the out-of-core reduce: a spill threshold far
// below the shuffle volume forces committed partitions to disk, and the
// reduce merge streams them back — output still byte-identical.
func TestBlockstoreSpill(t *testing.T) {
	oRef, want := bsWC(nil, "")
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := bsWC(tel, "local")
	o.Tuning.SpillThreshold = 4 << 10
	o.Tuning.WorkDir = t.TempDir()
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("spilling run diverged from resident run")
	}
	if res.SpillRecords == 0 || res.SpillBytes == 0 {
		t.Fatalf("threshold %d forced no spills (records %d, bytes %d)",
			o.Tuning.SpillThreshold, res.SpillRecords, res.SpillBytes)
	}
	if files := tel.Metrics.Counter("conserv_spill_files_total").Value(); files == 0 {
		t.Fatal("spill files counter did not move")
	}
	checkWire(t, tel.Metrics, false)
}

// TestBlockstoreKillRecovers: killing a replica holder mid-job must not
// fail the run — surviving replicas (or the coordinator's embedded
// fallback) feed the re-executed tasks.
func TestBlockstoreKillRecovers(t *testing.T) {
	tel := obs.NewTelemetry()
	o, want := bsWC(tel, "local")
	o.KillWorker = 1
	o.KillAfterMapDone = 2
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", res.WorkersLost)
	}
	checkWire(t, tel.Metrics, true)
}

// TestBlockstoreRestartResume: a coordinator crash and journal resume must
// reconstruct the namespace (jrNamespace) instead of re-ingesting — the
// workers' disks still hold their replicas — and finish byte-identical.
func TestBlockstoreRestartResume(t *testing.T) {
	oRef, want := bsWC(nil, "")
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := bsWC(tel, "local")
	o.JournalPath = filepath.Join(t.TempDir(), "coord.journal")
	o.Elastic = []ElasticEvent{{Kind: "restart", AfterMapDone: 4}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("job did not go through the resume path")
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("resumed block-store run diverged")
	}
	checkWire(t, tel.Metrics, false)
}
