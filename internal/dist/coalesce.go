package dist

import (
	"sync"
	"time"

	"glasswing/internal/kv"
)

// coalescer batches the shuffle runs bound for one peer into large
// mRunBatch frames. Runs are produced one per map chunk per partition —
// cheap to make, expensive to ship alone: each frame costs a header, a
// socket write, send-window bookkeeping and (compressed jobs) its own
// DEFLATE stream. Buffering entries and shipping them together pays those
// costs once per batch.
//
// A buffered batch flushes on three triggers:
//
//   - size: the body crosses the CoalesceBytes budget (checked on add);
//   - time: the oldest buffered entry has waited CoalesceDelay (the
//     worker's flusher goroutine, so a batch never idles while peers
//     starve for data);
//   - barrier: the sender is about to emit the attempt's end-of-attempt
//     marker, which must follow every run of that attempt on the FIFO
//     connection (runMap flushes before each mark).
//
// Wire accounting happens at frame granularity, at flush: netSent counts
// the frame's payload bytes the moment the frame is enqueued, and the
// connection's drop path reports the same figure lost if the frame never
// reaches the socket. Entries buffered in a closed coalescer are discarded
// without ever being counted sent, so sent == recv + lost stays exact
// across worker kills.
type coalescer struct {
	cc       *conn
	led      *ledger
	tr       *tracer
	traceID  uint64
	limit    int64
	compress bool

	mu      sync.Mutex
	body    enc
	records int64
	parent  uint64    // span parent of the batch: first contributing kernel
	oldest  time.Time // enqueue time of the oldest buffered entry
	closed  bool
}

func newCoalescer(cc *conn, led *ledger, tr *tracer, traceID uint64, limit int64, compress bool) *coalescer {
	return &coalescer{cc: cc, led: led, tr: tr, traceID: traceID, limit: limit, compress: compress}
}

// add buffers one run for shipment, flushing when the body crosses the
// size budget. parent is the map-kernel span that produced the run; the
// batch's net/send span parents on the first contributor (a frame holds
// runs from many kernels but a span holds one parent — first-in is the one
// whose latency the frame's tenure actually extends). Adds to a closed
// coalescer (dying link) are discarded — never counted sent, so no loss
// entry is owed.
func (co *coalescer) add(task, attempt, part int, r *kv.Run, parent uint64, epoch int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return
	}
	if len(co.body.buf) == 0 {
		co.oldest = time.Now()
		co.parent = parent
	}
	appendRunEntry(&co.body, runEntry{
		Task: task, Attempt: attempt, Partition: part,
		Records: r.Records, RawBytes: r.RawBytes, Epoch: epoch, Blob: r.Blob(),
	})
	co.records += int64(r.Records)
	if int64(len(co.body.buf)) >= co.limit {
		co.flushLocked()
	}
}

// flush ships whatever is buffered. Called before an attempt's markers go
// out so every run precedes its mark on the connection.
func (co *coalescer) flush() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.flushLocked()
}

// flushIfStale ships the buffer only when its oldest entry has waited at
// least maxAge — the flusher goroutine's time trigger.
func (co *coalescer) flushIfStale(maxAge time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.body.buf) > 0 && time.Since(co.oldest) >= maxAge {
		co.flushLocked()
	}
}

func (co *coalescer) flushLocked() {
	if co.closed || len(co.body.buf) == 0 {
		return
	}
	// Mint the frame's net/send span id here so it can ride inside the
	// payload: the receiver parents its net/recv staging span on it, which
	// is the cross-process edge of the trace.
	var sendSpan uint64
	if co.tr != nil {
		sendSpan = co.tr.newID()
	}
	payload := encodeRunBatchBody(co.body.buf, co.compress, co.traceID, sendSpan)
	records := co.records
	parent := co.parent
	co.body.buf = co.body.buf[:0] // payload holds its own copy of the body
	co.records = 0
	co.parent = 0
	co.led.netSent(records, int64(len(payload)))
	co.led.frameBytes(5 + int64(len(payload))) // wire size incl. frame header
	// send may block on the send window; adds from the executor then block
	// on co.mu, which is the same backpressure they would feel sending
	// directly. A concurrent seal/close of the conn unblocks it.
	co.cc.send(frame{
		typ: mRunBatch, payload: payload, bulk: true,
		records: records, acct: int64(len(payload)),
		spanID: sendSpan, spanParent: parent,
	})
}

// close discards buffered entries and rejects future adds. The discarded
// entries were never counted sent, so the wire ledger balances without a
// matching loss entry.
func (co *coalescer) close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.closed = true
	co.body = enc{}
	co.records = 0
}
