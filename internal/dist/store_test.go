package dist

import (
	"testing"

	"glasswing/internal/kv"
)

func storeRun(t *testing.T, n int) *kv.Run {
	t.Helper()
	pairs := make([]kv.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv.Pair{Key: []byte{byte('a' + i)}, Value: []byte{1}}
	}
	return kv.NewRun(pairs, false)
}

// TestStoreEpochFenceAfterHandoff is the regression test for the
// re-delivery double-commit bug: a run staged at this node by a worker that
// was then drained — its partition handed off to a new home and eventually
// handed *back* — must not commit a second copy on top of the adopted one.
// The per-(task, partition) `have` set alone cannot catch it, because
// takePartition cleared those entries when the partition left; the staged
// run's epoch is the fence.
func TestStoreEpochFenceAfterHandoff(t *testing.T) {
	s := newShuffleStore()
	const part, task = 2, 7

	// Epoch 0: a sender stages task 7's partition 2 here, but its marker is
	// still in flight when the membership transition begins.
	s.stage(task, 0, part, storeRun(t, 3), 0)

	// Epoch 1: the partition is re-homed away (this node hands it off) —
	// nothing committed yet, so the handoff is empty — and epoch 2 hands it
	// back, now carrying the committed copy its interim home accepted.
	s.setEpoch(1)
	s.takePartition(part)
	s.setEpoch(2)
	s.stageHandoff(part, 2, task, storeRun(t, 3))
	if adopted, dupped := s.adoptHandoff(part, 2); adopted != 3 || dupped != 0 {
		t.Fatalf("adopt: accepted %d dupped %d, want 3/0", adopted, dupped)
	}

	// The stale epoch-0 marker finally lands: its staged run must be fenced
	// out as a duplicate, not committed alongside the adopted copy.
	acc, dup := s.commit(task, 0)
	if acc != 0 || dup != 3 {
		t.Fatalf("stale commit: accepted %d dupped %d, want 0/3", acc, dup)
	}
	iters, records, closeIters, _ := s.partitionIters(part)
	closeIters()
	if got := len(iters); got != 1 || records != 3 {
		t.Fatalf("partition holds %d runs / %d records, want exactly the adopted one (1/3)", got, records)
	}
}

// TestStoreHandoffEpochFence mirrors the same fence on the handoff path: a
// handoff staged for an epoch the store has already moved past (the
// transition was overtaken by a death) is dropped, not adopted.
func TestStoreHandoffEpochFence(t *testing.T) {
	s := newShuffleStore()
	s.stageHandoff(4, 1, 0, storeRun(t, 5))
	s.setEpoch(2)
	if adopted, dupped := s.adoptHandoff(4, 1); adopted != 0 || dupped != 5 {
		t.Fatalf("stale handoff: adopted %d dupped %d, want 0/5", adopted, dupped)
	}
	iters, _, closeIters, _ := s.partitionIters(4)
	closeIters()
	if iters != nil {
		t.Fatal("stale handoff runs became visible to reduce")
	}
}

// TestStoreDedupAcrossAttempts: after a death, a re-executed attempt may
// legitimately add partitions of a task whose other partitions are already
// committed here — per-task dedup would wrongly drop them; per-(task,
// partition) dedup must accept the new partition and drop the repeat.
func TestStoreDedupAcrossAttempts(t *testing.T) {
	s := newShuffleStore()
	s.stage(3, 0, 0, storeRun(t, 2), 0)
	s.commit(3, 0)

	// Attempt 1 (post-death re-execution) re-delivers partition 0 and newly
	// delivers partition 1 (inherited by this node in the re-homing).
	s.stage(3, 1, 0, storeRun(t, 2), 0)
	s.stage(3, 1, 1, storeRun(t, 4), 0)
	acc, dup := s.commit(3, 1)
	if acc != 4 || dup != 2 {
		t.Fatalf("re-execution commit: accepted %d dupped %d, want 4/2", acc, dup)
	}
}
