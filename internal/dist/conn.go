package dist

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// frame is one queued outbound message.
type frame struct {
	typ        byte
	payload    []byte
	bulk       bool      // counts against the send window (shuffle data)
	records    int64     // kv records carried, for loss accounting
	acct       int64     // kv encoded bytes carried, for loss accounting
	spanID     uint64    // pre-minted net/send span id (bulk, traced)
	spanParent uint64    // parent span of the net/send span
	endSpan    func()    // closes the frame's net/send span (set at enqueue)
	enq        time.Time // when the frame entered the queue (bulk only)
}

// conn wraps one TCP connection with the transport policies every link in
// the cluster shares:
//
//   - a write pump: all sends enqueue and return; a single goroutine owns
//     the socket's write side, so shuffle transfers overlap the caller's
//     compute and no two goroutines interleave frames.
//   - a bounded send window: bulk (mRun) frames block the sender while
//     more than Tuning.SendWindow bytes are queued or in flight —
//     backpressure from a slow receiver propagates to the map executor.
//     Control frames bypass the window: acks and death notices must flow
//     even when a window is wedged, or two workers shuffling into each
//     other could deadlock.
//   - heartbeats: a keep-alive frame every Tuning.HeartbeatEvery, and a
//     read deadline of Tuning.HeartbeatTimeout — a peer that goes silent
//     past the timeout surfaces as a recv error, which callers treat as
//     death.
//
// Frames are written with a single Write call each, so a connection torn
// down between frames never delivers a truncated frame; a frame that never
// (fully) reached the socket is reported to onDrop for loss accounting.
//
// Teardown comes in two flavors. close() is a hard teardown: the socket
// closes both ways and unwritten frames are dropped. seal() half-closes:
// the write side drains its queue as dropped and sends FIN, but the read
// side stays open — used around a worker death, where frames already on
// the wire must still be drained (and accounted) by whichever side
// survives, so sent == received + lost stays exact.
type conn struct {
	c    net.Conn
	br   *bufio.Reader
	name string

	hbTimeout time.Duration

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []frame
	queuedBulk int64 // bytes of bulk frames queued or being written
	window     int64
	writing    bool
	closed     bool
	onDrop     func(records, acct int64)
	// onBulkWrite, if set, is invoked when a bulk frame is admitted to the
	// queue; the returned func runs when its socket write completes (or the
	// frame drops at teardown). The worker hooks net/send span recording
	// here, so the span covers the frame's whole tenure in the transfer
	// pipeline — queue residence plus the write. That is the interval
	// during which the data is in flight concurrently with whatever the
	// executor computes next, i.e. the overlap the trace must show. The
	// frame is passed so the hook can read the pre-minted span id and
	// parent the coalescer stamped on it.
	onBulkWrite func(f *frame) func()
	// onBulkTiming, if set, receives the split of each successfully written
	// bulk frame's tenure: nanoseconds spent waiting in the queue versus
	// nanoseconds inside the socket write. The net/send span above is their
	// sum; the split tells queue congestion apart from a slow wire.
	onBulkTiming func(queueNs, writeNs int64)
	// clock, if set by enableClock, receives the timestamp exchange of
	// every heartbeat reply this side's reader drains.
	clock *clockEstimator

	done chan struct{}
}

// newConn starts the write pump and heartbeat sender for c. onDrop (may be
// nil) receives the record/byte accounting of every bulk frame that was
// accepted by send but never written to the socket.
func newConn(c net.Conn, name string, t Tuning, onDrop func(records, acct int64)) *conn {
	t = t.withDefaults()
	cc := &conn{
		c:         c,
		br:        bufio.NewReader(c),
		name:      name,
		hbTimeout: t.HeartbeatTimeout,
		window:    t.SendWindow,
		onDrop:    onDrop,
		done:      make(chan struct{}),
	}
	cc.cond = sync.NewCond(&cc.mu)
	go cc.pump()
	go cc.heartbeat(t.HeartbeatEvery)
	return cc
}

// send enqueues one frame. Bulk frames block while the window is full
// (unless the connection closes, which unblocks everything). A frame
// offered after close is immediately reported dropped.
func (cc *conn) send(f frame) {
	cc.mu.Lock()
	if f.bulk {
		debit := int64(len(f.payload))
		for !cc.closed && cc.queuedBulk > 0 && cc.queuedBulk+debit > cc.window {
			cc.cond.Wait()
		}
	}
	if cc.closed {
		cc.mu.Unlock()
		cc.drop(f)
		return
	}
	if f.bulk {
		cc.queuedBulk += int64(len(f.payload))
		f.enq = time.Now()
		if cc.onBulkWrite != nil {
			f.endSpan = cc.onBulkWrite(&f)
		}
	}
	cc.queue = append(cc.queue, f)
	cc.cond.Broadcast()
	cc.mu.Unlock()
}

func (cc *conn) drop(f frame) {
	if f.endSpan != nil {
		f.endSpan()
	}
	if cc.onDrop != nil && f.bulk {
		cc.onDrop(f.records, f.acct)
	}
}

// pump owns the socket's write side, draining the queue in FIFO order.
// On teardown the queue is drained as dropped — by the pump itself on a
// write error, by teardown() otherwise.
func (cc *conn) pump() {
	for {
		cc.mu.Lock()
		for len(cc.queue) == 0 && !cc.closed {
			cc.cond.Wait()
		}
		if cc.closed {
			cc.mu.Unlock()
			return
		}
		f := cc.queue[0]
		cc.queue = cc.queue[1:]
		cc.writing = true
		cc.mu.Unlock()

		var w0 time.Time
		if f.bulk {
			w0 = time.Now()
		}
		err := writeFrame(cc.c, f.typ, f.payload)
		if err == nil {
			if f.bulk && cc.onBulkTiming != nil {
				cc.onBulkTiming(w0.Sub(f.enq).Nanoseconds(), time.Since(w0).Nanoseconds())
			}
			if f.endSpan != nil {
				f.endSpan()
			}
		}

		cc.mu.Lock()
		cc.writing = false
		if f.bulk {
			cc.queuedBulk -= int64(len(f.payload))
		}
		if err != nil {
			if !cc.closed {
				cc.closed = true
				close(cc.done)
			}
			rest := cc.queue
			cc.queue = nil
			cc.queuedBulk = 0
			cc.cond.Broadcast()
			cc.mu.Unlock()
			cc.c.Close()
			cc.drop(f) // conservatively lost: a partial write is discarded by the peer's framing
			for _, r := range rest {
				cc.drop(r)
			}
			return
		}
		cc.cond.Broadcast()
		cc.mu.Unlock()
	}
}

// heartbeat keeps the link warm so the peer's read deadline only fires on
// genuine silence.
func (cc *conn) heartbeat(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-cc.done:
			return
		case <-t.C:
			cc.send(frame{typ: mHeartbeat})
		}
	}
}

// enableClock arms the NTP-style clock exchange on this link: est receives
// every reply's timestamps, and a prober goroutine sends a short burst of
// probes immediately (so even sub-second jobs get samples) and then one per
// `every`. Only one side of a link probes (the coordinator); the other side
// just echoes, which recv does unconditionally.
func (cc *conn) enableClock(est *clockEstimator, every time.Duration) {
	cc.mu.Lock()
	cc.clock = est
	cc.mu.Unlock()
	go cc.probeClock(every)
}

func (cc *conn) probeClock(every time.Duration) {
	probe := func() {
		cc.send(frame{typ: mHeartbeat, payload: hbMsg{Kind: hbProbe, T1: time.Now().UnixNano()}.encode()})
	}
	// An immediate burst: the first samples arrive before bulk traffic can
	// queue behind the probes and inflate the RTT, and the min-RTT filter
	// keeps whichever was cleanest.
	for i := 0; i < 3; i++ {
		probe()
		select {
		case <-cc.done:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-cc.done:
			return
		case <-t.C:
			probe()
		}
	}
}

// recv returns the next non-heartbeat frame. Heartbeats are consumed here:
// a clock probe is answered with a reply carrying our receive/send stamps,
// a reply feeds the link's clock estimator, and a plain (or malformed —
// it's only a keepalive) payload is skipped. Any error — including a read
// deadline expiring after HeartbeatTimeout of silence — means the peer is
// gone as far as this link is concerned.
func (cc *conn) recv() (byte, []byte, error) {
	for {
		if cc.hbTimeout > 0 {
			cc.c.SetReadDeadline(time.Now().Add(cc.hbTimeout))
		}
		typ, payload, err := readFrame(cc.br)
		if err != nil {
			return 0, nil, err
		}
		if typ == mHeartbeat {
			cc.handleHeartbeat(payload)
			continue
		}
		return typ, payload, nil
	}
}

func (cc *conn) handleHeartbeat(payload []byte) {
	if len(payload) == 0 {
		return // plain keep-alive
	}
	now := time.Now().UnixNano()
	hb, err := decodeHB(payload)
	if err != nil {
		return
	}
	switch hb.Kind {
	case hbProbe:
		cc.send(frame{typ: mHeartbeat, payload: hbMsg{
			Kind: hbReply, T1: hb.T1, T2: now, T3: time.Now().UnixNano(),
		}.encode()})
	case hbReply:
		cc.mu.Lock()
		est := cc.clock
		cc.mu.Unlock()
		if est != nil {
			est.sample(hb.T1, hb.T2, hb.T3, now)
		}
	}
}

// flush blocks until every queued frame has been written (or the
// connection closed underneath the queue).
func (cc *conn) flush() {
	cc.mu.Lock()
	for !cc.closed && (len(cc.queue) > 0 || cc.writing) {
		cc.cond.Wait()
	}
	cc.mu.Unlock()
}

// close hard-tears the connection down: both socket directions close,
// blocked senders wake, unwritten frames are dropped. Idempotent.
func (cc *conn) close() { cc.teardown(true) }

// seal closes only the write side: queued frames drop (accounted lost),
// new sends drop, the socket gets FIN — but reads continue, so the peer's
// in-flight frames can still be drained. Idempotent; a later close()
// finishes the job.
func (cc *conn) seal() { cc.teardown(false) }

func (cc *conn) teardown(full bool) {
	cc.mu.Lock()
	if !cc.closed {
		cc.closed = true
		close(cc.done)
	}
	cc.cond.Broadcast()
	if full {
		// Close the socket first so an in-flight pump write errors out
		// instead of blocking teardown behind a peer that stopped reading.
		cc.mu.Unlock()
		cc.c.Close()
		cc.mu.Lock()
	}
	for cc.writing {
		cc.cond.Wait()
	}
	rest := cc.queue
	cc.queue = nil
	cc.queuedBulk = 0
	cc.cond.Broadcast()
	cc.mu.Unlock()
	for _, f := range rest {
		cc.drop(f)
	}
	if !full {
		// Half-close: FIN the write side, leave reads open. A sealed
		// write on a non-TCP conn (tests use net.Pipe) falls back to a
		// full close.
		if cw, ok := cc.c.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			cc.c.Close()
		}
	}
}

// shutdown flushes the queue, then closes. Use for orderly teardown where
// the final frames (job-end, map-done) must reach the peer.
func (cc *conn) shutdown() {
	cc.flush()
	cc.close()
}
