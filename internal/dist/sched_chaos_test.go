package dist

import (
	"math/rand"
	"testing"
)

// schedChaos drives one dsched through a random interleaving of assigns,
// completions, failures, ghost (stale) reports, kills, joins and drains,
// checking after every membership change that no task can be lost — every
// unresolved task is queued exactly once or in flight at its current
// attempt — and at the end that every task resolved exactly once at its
// final attempt number.
type schedChaos struct {
	t    *testing.T
	rng  *rand.Rand
	s    *dsched
	seed int64

	alive    []bool // scheduler-visible liveness (drained ⇒ false)
	inflight []chaosAttempt
	ghosts   []chaosAttempt // reports from superseded attempts, delivered late
	// resolutions[t] counts done() acceptances; the final one must stand.
	resolutions []int
	finalAt     []int // attempt number each task last resolved at
}

type chaosAttempt struct {
	task, attempt, wkr int
}

func (c *schedChaos) liveWorkers() []int {
	var ids []int
	for w, a := range c.alive {
		if a {
			ids = append(ids, w)
		}
	}
	return ids
}

// checkConservation asserts the liveness invariant: every unresolved task is
// queued exactly once, or in flight on a live worker at its current attempt.
// A task satisfying neither can never resolve — the scheduler lost it.
func (c *schedChaos) checkConservation() {
	c.t.Helper()
	queued := make(map[int]int)
	for _, q := range c.s.queues {
		for _, t := range q {
			queued[t]++
		}
	}
	current := make(map[int]bool)
	for _, a := range c.inflight {
		if c.alive[a.wkr] && a.attempt == c.s.attempt[a.task] {
			current[a.task] = true
		}
	}
	for t := 0; t < c.s.total; t++ {
		if queued[t] > 1 {
			c.t.Fatalf("seed %d: task %d queued %d times", c.seed, t, queued[t])
		}
		if c.s.resolved[t] {
			if queued[t] > 0 {
				c.t.Fatalf("seed %d: resolved task %d still queued", c.seed, t)
			}
			continue
		}
		if queued[t] == 0 && !current[t] {
			c.t.Fatalf("seed %d: unresolved task %d neither queued nor live in flight — lost", c.seed, t)
		}
	}
}

func (c *schedChaos) step() {
	switch op := c.rng.Intn(100); {
	case op < 35: // assign: one task to one random live worker
		live := c.liveWorkers()
		if len(live) == 0 {
			return
		}
		w := live[c.rng.Intn(len(live))]
		if t, ok := c.s.next(w, c.alive); ok {
			c.inflight = append(c.inflight, chaosAttempt{t, c.s.attempt[t], w})
		}
	case op < 70: // complete a random in-flight attempt
		if len(c.inflight) == 0 {
			return
		}
		i := c.rng.Intn(len(c.inflight))
		a := c.inflight[i]
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
		if c.s.done(a.task, a.attempt) {
			if a.attempt != c.s.attempt[a.task] {
				c.t.Fatalf("seed %d: task %d accepted at stale attempt %d (current %d)",
					c.seed, a.task, a.attempt, c.s.attempt[a.task])
			}
			c.resolutions[a.task]++
			c.finalAt[a.task] = a.attempt
		}
	case op < 78: // fail a random in-flight attempt
		if len(c.inflight) == 0 {
			return
		}
		i := c.rng.Intn(len(c.inflight))
		a := c.inflight[i]
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
		if err := c.s.fail(a.task, a.attempt, a.wkr, c.alive, ""); err != nil {
			c.t.Fatalf("seed %d: %v", c.seed, err)
		}
	case op < 84: // deliver a ghost report: done or fail from a dead attempt
		if len(c.ghosts) == 0 {
			return
		}
		i := c.rng.Intn(len(c.ghosts))
		g := c.ghosts[i]
		c.ghosts = append(c.ghosts[:i], c.ghosts[i+1:]...)
		if g.attempt == c.s.attempt[g.task] && !c.s.resolved[g.task] {
			// The attempt was never superseded (kill happened before its
			// worker shipped anything that mattered) — it is a legitimate
			// report, not a ghost after all. Treat as a completion.
			if c.s.done(g.task, g.attempt) {
				c.resolutions[g.task]++
				c.finalAt[g.task] = g.attempt
			}
			return
		}
		if c.s.done(g.task, g.attempt) && c.finalAt[g.task] != g.attempt {
			c.t.Fatalf("seed %d: stale attempt (%d,%d) accepted over current %d",
				c.seed, g.task, g.attempt, c.s.attempt[g.task])
		}
		c.s.fail(g.task, g.attempt, g.wkr, c.alive, "") // stale fail: must be a no-op
	case op < 90: // kill a random live worker (never the last)
		live := c.liveWorkers()
		if len(live) < 2 {
			return
		}
		w := live[c.rng.Intn(len(live))]
		c.alive[w] = false
		// Its in-flight attempts become ghosts that may report later; death
		// supersedes every other in-flight attempt too, but those workers
		// still report normally (and get refused as stale).
		keep := c.inflight[:0]
		for _, a := range c.inflight {
			if a.wkr == w {
				c.ghosts = append(c.ghosts, a)
			} else {
				keep = append(keep, a)
			}
		}
		c.inflight = keep
		// Live in-flight attempts are also superseded by death's re-queue:
		// move them to ghosts half the time to model arbitrary arrival order.
		if c.rng.Intn(2) == 0 {
			c.ghosts = append(c.ghosts, c.inflight...)
			c.inflight = c.inflight[:0]
		}
		c.s.death(w, c.alive)
		c.checkConservation()
	case op < 95: // join a fresh worker
		if len(c.alive) >= 9 {
			return
		}
		id := len(c.alive)
		c.s.join(id)
		c.alive = append(c.alive, true)
		c.checkConservation()
	default: // drain: coordinator quiesces the cluster first, so model that
		if len(c.inflight) > 0 {
			return
		}
		live := c.liveWorkers()
		if len(live) < 2 {
			return
		}
		w := live[c.rng.Intn(len(live))]
		c.alive[w] = false
		c.s.drain(w, c.alive)
		c.checkConservation()
	}
}

// TestSchedChaos is the randomized conformance harness for dsched: 300
// seeded schedules interleaving join, kill, drain, steal, completion,
// failure and stale ghost reports. Every schedule must terminate with every
// task resolved exactly once at its final attempt number, with no task ever
// lost along the way.
func TestSchedChaos(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 4 + rng.Intn(37)
		nWorkers := 2 + rng.Intn(4)
		c := &schedChaos{
			t: t, rng: rng, seed: seed,
			s:           newSched(nTasks, nWorkers, 1000),
			alive:       make([]bool, nWorkers),
			resolutions: make([]int, nTasks),
			finalAt:     make([]int, nTasks),
		}
		for i := range c.alive {
			c.alive[i] = true
		}
		steps := 0
		for c.s.resolvedCount < c.s.total {
			c.step()
			if steps++; steps > 200000 {
				t.Fatalf("seed %d: schedule did not terminate (%d/%d resolved)",
					seed, c.s.resolvedCount, c.s.total)
			}
		}
		for task := 0; task < nTasks; task++ {
			if !c.s.resolved[task] {
				t.Fatalf("seed %d: task %d unresolved at end", seed, task)
			}
			if c.resolutions[task] == 0 {
				t.Fatalf("seed %d: task %d resolved with no accepted report", seed, task)
			}
			if c.finalAt[task] != c.s.attempt[task] {
				t.Fatalf("seed %d: task %d final resolution at attempt %d, scheduler expects %d",
					seed, task, c.finalAt[task], c.s.attempt[task])
			}
		}
		// Exactly-once: acceptances beyond one per task must each have been
		// explicitly superseded by a death (recoveries counts those).
		extra := 0
		for _, r := range c.resolutions {
			extra += r - 1
		}
		if extra > c.s.recoveries {
			t.Fatalf("seed %d: %d duplicate acceptances but only %d recoveries", seed, extra, c.s.recoveries)
		}
	}
}
