package dist

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseElastic parses a comma-separated elastic schedule into the events
// Options.Elastic takes. Each event is spelled
//
//	kind[:worker]@threshold
//
// where kind is join, drain, kill or restart; worker is the target id
// (required for drain and kill, forbidden for join and restart); and
// threshold is either N — fire once N map tasks have resolved — or rN —
// fire once N reduce partitions have been accepted. Example:
//
//	join@2,join@3,kill:1@6,drain:0@8,restart@r1
func ParseElastic(spec string) ([]ElasticEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var evs []ElasticEvent
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		head, thresh, ok := strings.Cut(field, "@")
		if !ok {
			return nil, fmt.Errorf("dist: elastic event %q: missing @threshold", field)
		}
		kind, workerStr, hasWorker := strings.Cut(head, ":")
		ev := ElasticEvent{Kind: kind}
		switch kind {
		case "drain", "kill":
			if !hasWorker {
				return nil, fmt.Errorf("dist: elastic event %q: %s needs a target (%s:worker@threshold)", field, kind, kind)
			}
			w, err := strconv.Atoi(workerStr)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("dist: elastic event %q: bad worker id %q", field, workerStr)
			}
			ev.Worker = w
		case "join", "restart":
			if hasWorker {
				return nil, fmt.Errorf("dist: elastic event %q: %s takes no target", field, kind)
			}
		default:
			return nil, fmt.Errorf("dist: elastic event %q: unknown kind %q (join, drain, kill, restart)", field, kind)
		}
		if rest, isReduce := strings.CutPrefix(thresh, "r"); isReduce {
			n, err := strconv.Atoi(rest)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("dist: elastic event %q: bad reduce threshold %q", field, thresh)
			}
			ev.AfterReduceDone = n
		} else {
			n, err := strconv.Atoi(thresh)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dist: elastic event %q: bad map threshold %q", field, thresh)
			}
			ev.AfterMapDone = n
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// HasRestart reports whether a schedule contains a coordinator restart —
// callers must configure Options.JournalPath before running one.
func HasRestart(evs []ElasticEvent) bool {
	for _, ev := range evs {
		if ev.Kind == "restart" {
			return true
		}
	}
	return false
}
