package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// The wire format is deliberately tiny: every frame is
//
//	[4-byte big-endian length][1-byte type][payload]
//
// where length counts the type byte plus the payload. Payloads are encoded
// with uvarints and length-prefixed byte strings (the same primitives as
// kv's stream framing). Bulk shuffle data rides in mRunBatch frames: many
// small per-chunk runs coalesced into one large frame per destination, so
// the per-frame costs (syscall, header, send-window bookkeeping, one
// DEFLATE stream when the job compresses) are paid once per batch instead
// of once per run.

// maxFrame bounds one frame; a length prefix beyond it means a corrupt or
// hostile stream, not a big transfer (runs are produced per map chunk and
// sit far below this).
const maxFrame = 1 << 28

// Message types. Control frames are small and never window-limited;
// mRunBatch is the only bulk type.
const (
	mHello      byte = iota + 1 // worker→coord: listen addr (legacy alias of mJoin)
	mWelcome                    // coord→worker: assigned worker id, cluster size
	mJobStart                   // coord→worker: job spec, peer addrs, partition homes
	mMapTask                    // coord→worker: task, attempt, input block
	mMapDone                    // worker→coord: task, attempt, attempt stats
	mMapFailed                  // worker→coord: task, attempt, reason
	mRunBatch                   // worker→worker: coalesced partition runs (bulk)
	mMark                       // worker→worker: attempt complete, commit staged runs
	mAck                        // worker→worker: mark processed
	mReduceTask                 // coord→worker: partition, attempt
	mReduceDone                 // worker→coord: partition, attempt, output pairs
	mReduceFailed               // worker→coord: partition, attempt, reason
	mWorkerDead                 // coord→worker: dead id, reassigned partition homes
	mJobEnd                     // coord→worker: job over, shut down
	mHeartbeat                  // both directions: keep-alive / clock probe
	mPeerHello                  // worker→worker on dial: my worker id
	mSpanBatch                  // worker→coord: this node's trace spans, at job end
	mJoin                       // worker→coord: join request (formation or live), listen addr
	mJoinReady                  // worker→coord: live joiner's peer mesh is connected
	mRejoin                     // worker→coord: re-attach to a resumed coordinator
	mRehome                     // coord→worker: new membership epoch + partition homes
	mDrain                      // coord→worker: stop expecting work, prepare to hand off
	mDrained                    // coord→worker: handoff complete, exit cleanly
	mHandoff                    // worker→worker: committed runs of one re-homed partition (bulk)
	mHandoffMark                // worker→worker: one partition's handoff is complete
	mHandoffDone                // worker→coord: destination committed a handed-off partition
	mBlockPut                   // coord→worker: ingest one input-block replica into the worker's store (bulk)
	mBlockFetch                 // worker→worker: request a streamed read of one stored block
	mBlockChunk                 // worker→worker: one chunk of a fetched block
)

func typeName(t byte) string {
	names := [...]string{
		mHello: "hello", mWelcome: "welcome", mJobStart: "job-start",
		mMapTask: "map-task", mMapDone: "map-done", mMapFailed: "map-failed",
		mRunBatch: "run-batch", mMark: "mark", mAck: "ack",
		mReduceTask: "reduce-task", mReduceDone: "reduce-done", mReduceFailed: "reduce-failed",
		mWorkerDead: "worker-dead", mJobEnd: "job-end", mHeartbeat: "heartbeat",
		mPeerHello: "peer-hello", mSpanBatch: "span-batch",
		mJoin: "join", mJoinReady: "join-ready", mRejoin: "rejoin",
		mRehome: "rehome", mDrain: "drain", mDrained: "drained",
		mHandoff: "handoff", mHandoffMark: "handoff-mark", mHandoffDone: "handoff-done",
		mBlockPut: "block-put", mBlockFetch: "block-fetch", mBlockChunk: "block-chunk",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("type-%d", t)
}

// writeFrame emits one frame. It performs a single Write call per frame
// (header and payload pre-assembled) so a connection torn down between
// frames never leaves a truncated frame behind — the kill accounting in
// loopback mode relies on whole-frame delivery.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	frame := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(1+len(payload)))
	frame[4] = typ
	copy(frame[5:], payload)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one frame, tolerating arbitrary short reads from the
// socket (io.ReadFull reassembles TCP segmentation).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	return body[0], body[1:], nil
}

// enc assembles a payload from uvarints and length-prefixed byte strings.
type enc struct{ buf []byte }

func (e *enc) u(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}

func (e *enc) i(v int64) { e.u(uint64(v)) }

func (e *enc) bytes(b []byte) {
	e.u(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) str(s string) { e.bytes([]byte(s)) }

func (e *enc) bool(b bool) {
	if b {
		e.u(1)
	} else {
		e.u(0)
	}
}

var errCorrupt = errors.New("dist: corrupt payload")

// dec decodes a payload; the first malformed field latches err and every
// later read returns zero values, so decode paths check err once at the
// end.
type dec struct {
	buf []byte
	err error
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errCorrupt
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) i() int64 { return int64(d.u()) }

func (d *dec) bytes() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = errCorrupt
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) bool() bool { return d.u() != 0 }

// fin returns the latched decode error, also flagging trailing garbage.
func (d *dec) fin(what string) error {
	if d.err != nil {
		return fmt.Errorf("dist: decoding %s: %w", what, d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("dist: decoding %s: %d trailing bytes", what, len(d.buf))
	}
	return nil
}

// --- message payloads ---

type helloMsg struct {
	ListenAddr string // where this worker accepts peer connections
}

func (m helloMsg) encode() []byte {
	var e enc
	e.str(m.ListenAddr)
	return e.buf
}

func decodeHello(p []byte) (helloMsg, error) {
	d := dec{buf: p}
	m := helloMsg{ListenAddr: d.str()}
	return m, d.fin("hello")
}

type welcomeMsg struct {
	WorkerID int
	Workers  int
}

func (m welcomeMsg) encode() []byte {
	var e enc
	e.i(int64(m.WorkerID))
	e.i(int64(m.Workers))
	return e.buf
}

func decodeWelcome(p []byte) (welcomeMsg, error) {
	d := dec{buf: p}
	m := welcomeMsg{WorkerID: int(d.i()), Workers: int(d.i())}
	return m, d.fin("welcome")
}

type jobStartMsg struct {
	Job     Job
	TraceID uint64   // job-wide trace id, minted by the coordinator
	Peers   []string // worker id → listen addr ("" = departed/dead, don't dial)
	Homes   []int    // partition → home worker id
	Epoch   int      // membership epoch the homes belong to
	Live    bool     // true when this worker is joining a job already underway
}

func (m jobStartMsg) encode() []byte {
	var e enc
	e.u(m.TraceID)
	e.str(m.Job.App.Name)
	e.bytes(m.Job.App.Params)
	e.i(int64(m.Job.Partitions))
	e.u(uint64(m.Job.Collector))
	e.bool(m.Job.UseCombiner)
	e.bool(m.Job.Compress)
	e.i(int64(m.Job.MaxAttempts))
	e.u(uint64(len(m.Peers)))
	for _, p := range m.Peers {
		e.str(p)
	}
	e.u(uint64(len(m.Homes)))
	for _, h := range m.Homes {
		e.i(int64(h))
	}
	e.i(int64(m.Epoch))
	e.bool(m.Live)
	return e.buf
}

func decodeJobStart(p []byte) (jobStartMsg, error) {
	d := dec{buf: p}
	var m jobStartMsg
	m.TraceID = d.u()
	m.Job.App.Name = d.str()
	m.Job.App.Params = append([]byte(nil), d.bytes()...)
	m.Job.Partitions = int(d.i())
	m.Job.Collector = core.CollectorKind(d.u())
	m.Job.UseCombiner = d.bool()
	m.Job.Compress = d.bool()
	m.Job.MaxAttempts = int(d.i())
	np := d.u()
	if np > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < np && d.err == nil; i++ {
		m.Peers = append(m.Peers, d.str())
	}
	nh := d.u()
	if nh > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < nh && d.err == nil; i++ {
		m.Homes = append(m.Homes, int(d.i()))
	}
	m.Epoch = int(d.i())
	m.Live = d.bool()
	return m, d.fin("job-start")
}

type mapTaskMsg struct {
	Task    int
	Attempt int
	// SpanID is the coordinator's sched/assign span for this attempt — the
	// parent of every span the attempt produces on the worker.
	SpanID uint64
	Block  []byte
	// Block-store reference fields. With Ref set the task's input is block
	// <Task> of the distributed store: Block is empty and the worker reads
	// it locally or streams it from one of Holders (live replica holders,
	// coordinator's view at dispatch). A Ref task may still carry embedded
	// Block bytes — the coordinator's fallback when no holder survives —
	// which the worker accounts as a remote read. AllowLocal false forces a
	// remote fetch even on a holder (the conformance forced-remote axis).
	Ref        bool
	BlockSize  int64
	Holders    []int
	AllowLocal bool
}

func (m mapTaskMsg) encode() []byte {
	var e enc
	e.i(int64(m.Task))
	e.i(int64(m.Attempt))
	e.u(m.SpanID)
	e.bytes(m.Block)
	e.bool(m.Ref)
	e.i(m.BlockSize)
	e.u(uint64(len(m.Holders)))
	for _, h := range m.Holders {
		e.i(int64(h))
	}
	e.bool(m.AllowLocal)
	return e.buf
}

func decodeMapTask(p []byte) (mapTaskMsg, error) {
	d := dec{buf: p}
	m := mapTaskMsg{Task: int(d.i()), Attempt: int(d.i()), SpanID: d.u()}
	m.Block = append([]byte(nil), d.bytes()...)
	m.Ref = d.bool()
	m.BlockSize = d.i()
	n := d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Holders = append(m.Holders, int(d.i()))
	}
	m.AllowLocal = d.bool()
	return m, d.fin("map-task")
}

// attemptStats is the map-side conservation slice of one successful
// attempt, flushed into the shared ledger only when the attempt wins.
type attemptStats struct {
	RecordsIn   int64
	PairsOut    int64
	PartRecords int64
	PartRuns    int64
	PartRaw     int64
	PartStored  int64
}

type mapDoneMsg struct {
	Task    int
	Attempt int
	Stats   attemptStats
}

func (m mapDoneMsg) encode() []byte {
	var e enc
	e.i(int64(m.Task))
	e.i(int64(m.Attempt))
	e.i(m.Stats.RecordsIn)
	e.i(m.Stats.PairsOut)
	e.i(m.Stats.PartRecords)
	e.i(m.Stats.PartRuns)
	e.i(m.Stats.PartRaw)
	e.i(m.Stats.PartStored)
	return e.buf
}

func decodeMapDone(p []byte) (mapDoneMsg, error) {
	d := dec{buf: p}
	m := mapDoneMsg{Task: int(d.i()), Attempt: int(d.i())}
	m.Stats = attemptStats{
		RecordsIn: d.i(), PairsOut: d.i(),
		PartRecords: d.i(), PartRuns: d.i(), PartRaw: d.i(), PartStored: d.i(),
	}
	return m, d.fin("map-done")
}

type taskFailMsg struct {
	Task    int
	Attempt int
	Reason  string
}

func (m taskFailMsg) encode() []byte {
	var e enc
	e.i(int64(m.Task))
	e.i(int64(m.Attempt))
	e.str(m.Reason)
	return e.buf
}

func decodeTaskFail(p []byte) (taskFailMsg, error) {
	d := dec{buf: p}
	m := taskFailMsg{Task: int(d.i()), Attempt: int(d.i()), Reason: d.str()}
	return m, d.fin("task-fail")
}

// runEntry is one partition's run inside a coalesced shuffle frame. Blob is
// always an uncompressed kv.Run encoding — when the job compresses, the
// whole frame body is DEFLATEd once, so every run in the batch shares one
// compression context instead of paying per-run stream overhead.
type runEntry struct {
	Task      int
	Attempt   int
	Partition int
	Records   int
	RawBytes  int64
	Epoch     int // membership epoch the sender routed under
	Blob      []byte
}

// runBatchMsg is the bulk shuffle frame: the runs one sender has buffered
// for one destination, shipped back to back. The body carries the entries
// with no count prefix — the coalescer appends entries incrementally and
// the decoder consumes until the body is exhausted. TraceID and SendSpan
// are the trace context the frame propagates: the receiver parents its
// net/recv staging span on the sender's net/send span.
type runBatchMsg struct {
	TraceID    uint64
	SendSpan   uint64 // sender's net/send span id (0 = untraced)
	Compressed bool   // body DEFLATEd as one stream on the wire
	Entries    []runEntry
}

// appendRunEntry serializes one entry onto a body under construction.
func appendRunEntry(e *enc, re runEntry) {
	e.i(int64(re.Task))
	e.i(int64(re.Attempt))
	e.i(int64(re.Partition))
	e.i(int64(re.Records))
	e.i(re.RawBytes)
	e.i(int64(re.Epoch))
	e.bytes(re.Blob)
}

func (m runBatchMsg) encode() []byte {
	var body enc
	for _, re := range m.Entries {
		appendRunEntry(&body, re)
	}
	return encodeRunBatchBody(body.buf, m.Compressed, m.TraceID, m.SendSpan)
}

// encodeRunBatchBody wraps an assembled entry body into the frame payload,
// compressing it when asked and prefixing the frame's trace context.
func encodeRunBatchBody(body []byte, compress bool, traceID, sendSpan uint64) []byte {
	if compress {
		body = kv.Deflate(body)
	}
	var e enc
	e.u(traceID)
	e.u(sendSpan)
	e.bool(compress)
	e.bytes(body)
	return e.buf
}

// decodeRunBatch decodes a coalesced shuffle frame. Entry blobs alias the
// payload (or, for a compressed frame, the freshly inflated body) — this is
// the zero-copy receive path: callers wrap blobs in kv.NewRunView and must
// keep them only as long as the backing buffer lives, or Retain the views.
func decodeRunBatch(p []byte) (runBatchMsg, error) {
	d := dec{buf: p}
	var m runBatchMsg
	m.TraceID = d.u()
	m.SendSpan = d.u()
	m.Compressed = d.bool()
	body := d.bytes()
	if err := d.fin("run-batch"); err != nil {
		return m, err
	}
	if m.Compressed {
		var err error
		if body, err = kv.Inflate(body); err != nil {
			return m, fmt.Errorf("dist: inflating run batch: %w", err)
		}
	}
	bd := dec{buf: body}
	for len(bd.buf) > 0 && bd.err == nil {
		re := runEntry{
			Task: int(bd.i()), Attempt: int(bd.i()), Partition: int(bd.i()),
			Records: int(bd.i()), RawBytes: bd.i(), Epoch: int(bd.i()),
		}
		re.Blob = bd.bytes()
		if bd.err == nil {
			m.Entries = append(m.Entries, re)
		}
	}
	if bd.err != nil {
		return m, fmt.Errorf("dist: decoding run-batch entries: %w", bd.err)
	}
	return m, nil
}

type markMsg struct {
	Task    int
	Attempt int
}

func (m markMsg) encode() []byte {
	var e enc
	e.i(int64(m.Task))
	e.i(int64(m.Attempt))
	return e.buf
}

func decodeMark(p []byte) (markMsg, error) {
	d := dec{buf: p}
	m := markMsg{Task: int(d.i()), Attempt: int(d.i())}
	return m, d.fin("mark")
}

type reduceTaskMsg struct {
	Partition int
	Attempt   int
	// SpanID is the coordinator's sched/reduce span for this partition — the
	// parent of the worker's reduce span.
	SpanID uint64
}

func (m reduceTaskMsg) encode() []byte {
	var e enc
	e.i(int64(m.Partition))
	e.i(int64(m.Attempt))
	e.u(m.SpanID)
	return e.buf
}

func decodeReduceTask(p []byte) (reduceTaskMsg, error) {
	d := dec{buf: p}
	m := reduceTaskMsg{Partition: int(d.i()), Attempt: int(d.i()), SpanID: d.u()}
	return m, d.fin("reduce-task")
}

type reduceDoneMsg struct {
	Partition int
	Attempt   int
	RecordsIn int64
	GroupsIn  int64
	Output    []byte // kv.Marshal of the partition's final pairs
}

func (m reduceDoneMsg) encode() []byte {
	var e enc
	e.i(int64(m.Partition))
	e.i(int64(m.Attempt))
	e.i(m.RecordsIn)
	e.i(m.GroupsIn)
	e.bytes(m.Output)
	return e.buf
}

func decodeReduceDone(p []byte) (reduceDoneMsg, error) {
	d := dec{buf: p}
	m := reduceDoneMsg{
		Partition: int(d.i()), Attempt: int(d.i()),
		RecordsIn: d.i(), GroupsIn: d.i(),
	}
	m.Output = append([]byte(nil), d.bytes()...)
	return m, d.fin("reduce-done")
}

type workerDeadMsg struct {
	Dead    int
	Homes   []int  // full partition → home map after reassignment
	Epoch   int    // membership epoch after the death
	Settled []bool // partitions whose accepted output settled: never re-ship them
}

func (m workerDeadMsg) encode() []byte {
	var e enc
	e.i(int64(m.Dead))
	e.u(uint64(len(m.Homes)))
	for _, h := range m.Homes {
		e.i(int64(h))
	}
	e.i(int64(m.Epoch))
	e.u(uint64(len(m.Settled)))
	for _, s := range m.Settled {
		e.bool(s)
	}
	return e.buf
}

func decodeWorkerDead(p []byte) (workerDeadMsg, error) {
	d := dec{buf: p}
	m := workerDeadMsg{Dead: int(d.i())}
	n := d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Homes = append(m.Homes, int(d.i()))
	}
	m.Epoch = int(d.i())
	n = d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Settled = append(m.Settled, d.bool())
	}
	return m, d.fin("worker-dead")
}

type peerHelloMsg struct {
	WorkerID int
}

func (m peerHelloMsg) encode() []byte {
	var e enc
	e.i(int64(m.WorkerID))
	return e.buf
}

func decodePeerHello(p []byte) (peerHelloMsg, error) {
	d := dec{buf: p}
	m := peerHelloMsg{WorkerID: int(d.i())}
	return m, d.fin("peer-hello")
}

// spanBatchMsg ships one node's recorded trace spans to the coordinator at
// job end. Span times are seconds relative to the node's own tracer epoch;
// EpochUnixNano anchors that epoch on the node's wall clock so the
// coordinator can rebase the batch onto its own timeline after subtracting
// the estimated clock offset. Span nodes are implied by Node (one batch per
// node), not serialized per span.
type spanBatchMsg struct {
	TraceID       uint64
	Node          int
	EpochUnixNano int64
	Spans         []obs.Span
}

func (m spanBatchMsg) encode() []byte {
	var e enc
	e.u(m.TraceID)
	e.i(int64(m.Node))
	e.i(m.EpochUnixNano)
	e.u(uint64(len(m.Spans)))
	for _, s := range m.Spans {
		e.str(s.Stage)
		e.u(math.Float64bits(s.Start))
		e.u(math.Float64bits(s.End))
		e.u(s.ID)
		e.u(s.Parent)
		e.u(uint64(len(s.Tags)))
		keys := make([]string, 0, len(s.Tags))
		for k := range s.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic wire bytes for map-ordered tags
		for _, k := range keys {
			e.str(k)
			e.str(s.Tags[k])
		}
	}
	return e.buf
}

func decodeSpanBatch(p []byte) (spanBatchMsg, error) {
	d := dec{buf: p}
	var m spanBatchMsg
	m.TraceID = d.u()
	m.Node = int(d.i())
	m.EpochUnixNano = d.i()
	n := d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		s := obs.Span{Node: m.Node, Stage: d.str()}
		s.Start = math.Float64frombits(d.u())
		s.End = math.Float64frombits(d.u())
		s.ID = d.u()
		s.Parent = d.u()
		nt := d.u()
		if nt > uint64(len(p)) {
			d.err = errCorrupt
		}
		for j := uint64(0); j < nt && d.err == nil; j++ {
			k := d.str()
			v := d.str()
			if d.err == nil {
				if s.Tags == nil {
					s.Tags = make(map[string]string, nt)
				}
				s.Tags[k] = v
			}
		}
		if d.err == nil {
			m.Spans = append(m.Spans, s)
		}
	}
	return m, d.fin("span-batch")
}

// Heartbeat payload kinds. A plain keep-alive carries no payload (legacy
// frames from older nodes decode as plain too); probe/reply frames carry
// the NTP-style timestamp exchange the coordinator uses to estimate each
// worker's clock offset: the probe echoes the sender's send time t1, the
// reply adds the receiver's receive time t2 and send time t3, and the
// prober stamps t4 on arrival.
const (
	hbPlain = 0
	hbProbe = 1
	hbReply = 2
)

type hbMsg struct {
	Kind       uint64
	T1, T2, T3 int64 // unix nanoseconds; unused fields are zero
}

func (m hbMsg) encode() []byte {
	var e enc
	e.u(m.Kind)
	e.i(m.T1)
	e.i(m.T2)
	e.i(m.T3)
	return e.buf
}

func decodeHB(p []byte) (hbMsg, error) {
	d := dec{buf: p}
	m := hbMsg{Kind: d.u(), T1: d.i(), T2: d.i(), T3: d.i()}
	return m, d.fin("heartbeat")
}

// --- elastic membership payloads ---

// rejoinMsg re-attaches a surviving worker to a coordinator that restarted
// and resumed from its journal. Epoch is the worker's last-seen membership
// epoch; the coordinator refuses the resume if any worker is ahead of the
// journal (a torn membership transition it cannot reconstruct).
type rejoinMsg struct {
	WorkerID   int
	ListenAddr string
	Epoch      int
}

func (m rejoinMsg) encode() []byte {
	var e enc
	e.i(int64(m.WorkerID))
	e.str(m.ListenAddr)
	e.i(int64(m.Epoch))
	return e.buf
}

func decodeRejoin(p []byte) (rejoinMsg, error) {
	d := dec{buf: p}
	m := rejoinMsg{WorkerID: int(d.i()), ListenAddr: d.str(), Epoch: int(d.i())}
	return m, d.fin("rejoin")
}

// rehomeMsg announces a membership transition: a new epoch with the full
// partition→home map after a join or drain (Joined/Left are -1 when the
// transition has no joiner/leaver — a resumed coordinator broadcasts such a
// refresh to re-sync homes without moving anything). Workers owning a
// partition whose home changed away from them hand its committed runs to
// the new home.
type rehomeMsg struct {
	Epoch      int
	Homes      []int
	Alive      []bool // cluster-wide liveness as the coordinator sees it
	Joined     int    // worker id that joined, -1 = none
	JoinedAddr string // joiner's peer listen addr
	Left       int    // worker id being drained, -1 = none
}

func (m rehomeMsg) encode() []byte {
	var e enc
	e.i(int64(m.Epoch))
	e.u(uint64(len(m.Homes)))
	for _, h := range m.Homes {
		e.i(int64(h))
	}
	e.u(uint64(len(m.Alive)))
	for _, a := range m.Alive {
		b := uint64(0)
		if a {
			b = 1
		}
		e.u(b)
	}
	e.i(int64(m.Joined))
	e.str(m.JoinedAddr)
	e.i(int64(m.Left))
	return e.buf
}

func decodeRehome(p []byte) (rehomeMsg, error) {
	d := dec{buf: p}
	m := rehomeMsg{Epoch: int(d.i())}
	n := d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Homes = append(m.Homes, int(d.i()))
	}
	n = d.u()
	if n > uint64(len(p)) {
		d.err = errCorrupt
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Alive = append(m.Alive, d.u() != 0)
	}
	m.Joined = int(d.i())
	m.JoinedAddr = d.str()
	m.Left = int(d.i())
	return m, d.fin("rehome")
}

// handoffEntry is one committed run travelling to a partition's new home.
// Unlike runEntry there is no attempt: these runs already won their commit
// race at the old home; the destination re-keys them by (task, partition)
// under the transition's epoch.
type handoffEntry struct {
	Task     int
	Records  int
	RawBytes int64
	Blob     []byte
}

// handoffBatchMsg is the bulk frame carrying part of one re-homed
// partition's committed runs. Entries are consumed until the body is
// exhausted, mirroring runBatchMsg.
type handoffBatchMsg struct {
	Epoch     int
	Partition int
	Entries   []handoffEntry
}

func (m handoffBatchMsg) encode() []byte {
	var e enc
	e.i(int64(m.Epoch))
	e.i(int64(m.Partition))
	for _, he := range m.Entries {
		e.i(int64(he.Task))
		e.i(int64(he.Records))
		e.i(he.RawBytes)
		e.bytes(he.Blob)
	}
	return e.buf
}

func decodeHandoffBatch(p []byte) (handoffBatchMsg, error) {
	d := dec{buf: p}
	m := handoffBatchMsg{Epoch: int(d.i()), Partition: int(d.i())}
	for len(d.buf) > 0 && d.err == nil {
		he := handoffEntry{Task: int(d.i()), Records: int(d.i()), RawBytes: d.i()}
		he.Blob = d.bytes()
		if d.err == nil {
			m.Entries = append(m.Entries, he)
		}
	}
	if d.err != nil {
		return m, fmt.Errorf("dist: decoding handoff entries: %w", d.err)
	}
	return m, nil
}

// handoffMarkMsg closes one partition's handoff: everything staged for it
// under this epoch is complete and the destination should adopt it.
type handoffMarkMsg struct {
	Epoch     int
	Partition int
	Runs      int
	Records   int64
}

func (m handoffMarkMsg) encode() []byte {
	var e enc
	e.i(int64(m.Epoch))
	e.i(int64(m.Partition))
	e.i(int64(m.Runs))
	e.i(m.Records)
	return e.buf
}

func decodeHandoffMark(p []byte) (handoffMarkMsg, error) {
	d := dec{buf: p}
	m := handoffMarkMsg{
		Epoch: int(d.i()), Partition: int(d.i()),
		Runs: int(d.i()), Records: d.i(),
	}
	return m, d.fin("handoff-mark")
}

// handoffDoneMsg tells the coordinator one re-homed partition has been
// adopted by its new home; the transition completes when every moved
// partition reports.
type handoffDoneMsg struct {
	Epoch     int
	Partition int
}

func (m handoffDoneMsg) encode() []byte {
	var e enc
	e.i(int64(m.Epoch))
	e.i(int64(m.Partition))
	return e.buf
}

func decodeHandoffDone(p []byte) (handoffDoneMsg, error) {
	d := dec{buf: p}
	m := handoffDoneMsg{Epoch: int(d.i()), Partition: int(d.i())}
	return m, d.fin("handoff-done")
}

// --- block-store payloads ---

// blockPutMsg ingests one input-block replica into a worker's on-disk
// store. The coordinator pushes these on each holder's control connection
// right after JobStart — FIFO framing guarantees every replica is durable
// on its holder before the first MapTask that might reference it arrives.
type blockPutMsg struct {
	ID   int
	Data []byte
}

func (m blockPutMsg) encode() []byte {
	var e enc
	e.i(int64(m.ID))
	e.bytes(m.Data)
	return e.buf
}

func decodeBlockPut(p []byte) (blockPutMsg, error) {
	d := dec{buf: p}
	m := blockPutMsg{ID: int(d.i())}
	m.Data = d.bytes() // aliases the payload; the store writes it straight to disk
	return m, d.fin("block-put")
}

// blockFetchMsg asks a peer holding block ID to stream it back. Nonce
// correlates the reply chunks with the waiting fetch on the requester.
type blockFetchMsg struct {
	ID    int
	Nonce uint64
}

func (m blockFetchMsg) encode() []byte {
	var e enc
	e.i(int64(m.ID))
	e.u(m.Nonce)
	return e.buf
}

func decodeBlockFetch(p []byte) (blockFetchMsg, error) {
	d := dec{buf: p}
	m := blockFetchMsg{ID: int(d.i()), Nonce: d.u()}
	return m, d.fin("block-fetch")
}

// blockChunkMsg is one chunk of a streamed block read (blockstore.ReadChunk
// granularity — the serving side never materializes the whole block). Last
// marks the final chunk; OK false aborts the fetch (block not held, or the
// holder's disk failed mid-stream).
type blockChunkMsg struct {
	ID    int
	Nonce uint64
	OK    bool
	Last  bool
	Data  []byte
}

func (m blockChunkMsg) encode() []byte {
	var e enc
	e.i(int64(m.ID))
	e.u(m.Nonce)
	e.bool(m.OK)
	e.bool(m.Last)
	e.bytes(m.Data)
	return e.buf
}

func decodeBlockChunk(p []byte) (blockChunkMsg, error) {
	d := dec{buf: p}
	m := blockChunkMsg{ID: int(d.i()), Nonce: d.u(), OK: d.bool(), Last: d.bool()}
	m.Data = append([]byte(nil), d.bytes()...)
	return m, d.fin("block-chunk")
}
