package dist

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// loopCluster is the job-scoped state of one in-process cluster: the
// worker registration table the kill hook consults, the per-worker error
// slots, and the job's ledger. Nothing here is package- or process-global
// — every RunLoopback call owns a fresh loopCluster, which is what makes
// concurrent jobs in one process (the resident job service's steady state)
// unable to cross-contaminate each other's ledgers, kill targets or
// results.
type loopCluster struct {
	led *ledger

	regMu      sync.Mutex
	registered map[int]*worker

	wg         sync.WaitGroup
	workerErrs []error
}

// kill finds the registered worker with this cluster id and murders it.
// Registration happens at welcome time, strictly before any map task
// resolves, so a kill (which only fires after KillAfterMapDone
// resolutions) always finds the worker; the poll is a safety margin, not a
// synchronization mechanism.
func (lc *loopCluster) kill(id int) {
	for i := 0; i < 500; i++ {
		lc.regMu.Lock()
		w := lc.registered[id]
		lc.regMu.Unlock()
		if w != nil {
			w.kill()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RunLoopback runs one distributed job entirely in-process: the coordinator
// and o.Workers worker nodes are goroutines connected through real
// 127.0.0.1 TCP sockets, so every shuffle byte crosses the kernel's TCP
// stack and every transport policy (framing, windows, heartbeats, death
// detection) is exercised exactly as in a multi-process deployment. All
// nodes share one conservation ledger, published into o.Telemetry after the
// whole cluster has quiesced.
//
// RunLoopback is safe for concurrent use: every call builds its own
// cluster (listener, workers, kill table, ledger), so a process may run
// many jobs at once — give each call its own o.Telemetry and each job's
// counters and spans stay independent.
func RunLoopback(o Options) (*Result, error) {
	if o.Workers <= 0 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", o.Workers)
	}
	resolve := o.NewApp
	if resolve == nil {
		resolve = RegistryResolver
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: loopback listen: %w", err)
	}
	defer ln.Close()

	lc := &loopCluster{
		led:        newLedger(o.Telemetry),
		registered: make(map[int]*worker),
		workerErrs: make([]error, o.Workers),
	}

	for i := 0; i < o.Workers; i++ {
		lc.wg.Add(1)
		go func(i int) {
			defer lc.wg.Done()
			killed, err := runWorker(workerConfig{
				coordAddr:  ln.Addr().String(),
				listenAddr: "127.0.0.1:0",
				tun:        o.Tuning,
				led:        lc.led,
				resolve:    resolve,
				mapFault:   o.MapFault,
				onWelcome: func(w *worker) {
					lc.regMu.Lock()
					lc.registered[w.id] = w
					lc.regMu.Unlock()
				},
			})
			if !killed {
				lc.workerErrs[i] = err
			}
		}(i)
	}

	res, err := serve(ln, o, lc.kill)

	// Close the listener before waiting: a worker stuck in cluster
	// formation (possible only if serve already failed) errors out instead
	// of hanging.
	ln.Close()
	lc.wg.Wait()
	lc.led.publish()

	if err != nil {
		return nil, err
	}
	for i, werr := range lc.workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("dist: worker goroutine %d: %w", i, werr)
		}
	}
	return res, nil
}
