package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// loopCluster is the job-scoped state of one in-process cluster: the
// worker registration table the kill hook consults, the worker error list,
// and the job's ledger. Nothing here is package- or process-global —
// every RunLoopback call owns a fresh loopCluster, which is what makes
// concurrent jobs in one process (the resident job service's steady state)
// unable to cross-contaminate each other's ledgers, kill targets or
// results.
type loopCluster struct {
	led *ledger

	regMu      sync.Mutex
	registered map[int]*worker

	wg         sync.WaitGroup
	errMu      sync.Mutex
	workerErrs []error
}

func (lc *loopCluster) fail(err error) {
	lc.errMu.Lock()
	lc.workerErrs = append(lc.workerErrs, err)
	lc.errMu.Unlock()
}

// kill finds the registered worker with this cluster id and murders it.
// Registration happens at welcome time, strictly before any map task
// resolves, so a kill (which only fires after AfterMapDone resolutions)
// always finds the worker; the poll is a safety margin, not a
// synchronization mechanism.
func (lc *loopCluster) kill(id int) {
	for i := 0; i < 500; i++ {
		lc.regMu.Lock()
		w := lc.registered[id]
		lc.regMu.Unlock()
		if w != nil {
			w.kill()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// retryListen re-binds addr, retrying while the dying coordinator's socket
// lingers in the kernel — the restart path needs the exact address back
// because every surviving worker is redialing it.
func retryListen(addr string) (net.Listener, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("dist: restart re-listen %s: %w", addr, lastErr)
}

// RunLoopback runs one distributed job entirely in-process: the coordinator
// and o.Workers worker nodes are goroutines connected through real
// 127.0.0.1 TCP sockets, so every shuffle byte crosses the kernel's TCP
// stack and every transport policy (framing, windows, heartbeats, death
// detection) is exercised exactly as in a multi-process deployment. All
// nodes share one conservation ledger, published into o.Telemetry after the
// whole cluster has quiesced.
//
// Elasticity is fully wired: o.Elastic join events spawn fresh worker
// goroutines mid-job, drains hand partitions off and release their worker,
// kills exercise death recovery, and restart events crash the coordinator —
// which RunLoopback then relaunches on the same address, resuming from
// o.JournalPath while the surviving workers redial in.
//
// RunLoopback is safe for concurrent use: every call builds its own
// cluster (listener, workers, kill table, ledger), so a process may run
// many jobs at once — give each call its own o.Telemetry and each job's
// counters and spans stay independent.
func RunLoopback(o Options) (*Result, error) {
	if o.Workers <= 0 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", o.Workers)
	}
	resolve := o.NewApp
	if resolve == nil {
		resolve = RegistryResolver
	}

	// Fold the legacy single-kill knob into the elastic schedule so the
	// coordinator has one churn pipeline.
	if o.KillWorker >= 0 && o.KillWorker < o.Workers {
		o.Elastic = append(append([]ElasticEvent(nil), o.Elastic...), ElasticEvent{
			Kind: "kill", Worker: o.KillWorker, AfterMapDone: o.KillAfterMapDone,
		})
		o.KillWorker = -1
	}
	hasRestart := false
	for _, e := range o.Elastic {
		if e.Kind == "restart" {
			hasRestart = true
		}
	}
	if hasRestart && o.JournalPath == "" {
		return nil, fmt.Errorf("dist: restart events require Options.JournalPath")
	}
	// Workers must outlive a coordinator restart: give them a redial grace
	// window unless the caller tuned one explicitly.
	wtun := o.Tuning
	if wtun.RejoinGrace == 0 && (hasRestart || o.JournalPath != "") {
		wtun.RejoinGrace = 15 * time.Second
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: loopback listen: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	lc := &loopCluster{
		led:        newLedger(o.Telemetry),
		registered: make(map[int]*worker),
	}

	spawn := func() {
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			killed, err := runWorker(workerConfig{
				coordAddr:  addr,
				listenAddr: "127.0.0.1:0",
				tun:        wtun,
				led:        lc.led,
				resolve:    resolve,
				mapFault:   o.MapFault,
				onWelcome: func(w *worker) {
					lc.regMu.Lock()
					lc.registered[w.id] = w
					lc.regMu.Unlock()
				},
			})
			if !killed && err != nil {
				lc.fail(err)
			}
		}()
	}
	for i := 0; i < o.Workers; i++ {
		spawn()
	}
	hooks := loopHooks{kill: lc.kill, spawn: spawn}

	// The restart loop: a scheduled coordinator crash surfaces as
	// restartCrash; re-listen on the same address and resume from the
	// journal with the already-fired elastic events sliced off.
	so := o
	var res *Result
	for {
		res, err = serve(ln, so, lc.led, hooks)
		var rc *restartCrash
		if err != nil && errors.As(err, &rc) {
			ln.Close()
			if rc.fired <= len(so.Elastic) {
				so.Elastic = so.Elastic[rc.fired:]
			} else {
				so.Elastic = nil
			}
			so.Resume = true
			so.KillWorker = -1
			ln, err = retryListen(addr)
			if err != nil {
				break
			}
			continue
		}
		break
	}

	// Close the listener before waiting: a worker stuck in cluster
	// formation (possible only if serve already failed) errors out instead
	// of hanging.
	ln.Close()
	lc.wg.Wait()
	lc.led.publish()

	if err != nil {
		return nil, err
	}
	lc.errMu.Lock()
	defer lc.errMu.Unlock()
	for _, werr := range lc.workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("dist: worker goroutine: %w", werr)
		}
	}
	// Loopback shares one ledger across the cluster, so the job's locality
	// and spill totals are readable directly (multi-process workers report
	// theirs in their own metrics snapshots instead).
	res.ReadLocalBytes = lc.led.readLocalBytes.Load()
	res.ReadRemoteBytes = lc.led.readRemoteBytes.Load()
	res.SpillRecords = lc.led.spillRecords.Load()
	res.SpillBytes = lc.led.spillStoredBytes.Load()
	return res, nil
}
