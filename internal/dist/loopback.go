package dist

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// RunLoopback runs one distributed job entirely in-process: the coordinator
// and o.Workers worker nodes are goroutines connected through real
// 127.0.0.1 TCP sockets, so every shuffle byte crosses the kernel's TCP
// stack and every transport policy (framing, windows, heartbeats, death
// detection) is exercised exactly as in a multi-process deployment. All
// nodes share one conservation ledger, published into o.Telemetry after the
// whole cluster has quiesced.
func RunLoopback(o Options) (*Result, error) {
	if o.Workers <= 0 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", o.Workers)
	}
	resolve := o.NewApp
	if resolve == nil {
		resolve = RegistryResolver
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: loopback listen: %w", err)
	}
	defer ln.Close()

	led := newLedger(o.Telemetry)

	// Workers register here once the coordinator assigns their id, so the
	// kill hook can find its victim. Registration happens at welcome time,
	// strictly before any map task resolves, so a kill (which only fires
	// after KillAfterMapDone resolutions) always finds the worker; the poll
	// is a safety margin, not a synchronization mechanism.
	var regMu sync.Mutex
	registered := make(map[int]*worker)
	kill := func(id int) {
		for i := 0; i < 500; i++ {
			regMu.Lock()
			w := registered[id]
			regMu.Unlock()
			if w != nil {
				w.kill()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, o.Workers)
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			killed, err := runWorker(workerConfig{
				coordAddr:  ln.Addr().String(),
				listenAddr: "127.0.0.1:0",
				tun:        o.Tuning,
				led:        led,
				resolve:    resolve,
				mapFault:   o.MapFault,
				onWelcome: func(w *worker) {
					regMu.Lock()
					registered[w.id] = w
					regMu.Unlock()
				},
			})
			if !killed {
				workerErrs[i] = err
			}
		}(i)
	}

	res, err := serve(ln, o, kill)

	// Close the listener before waiting: a worker stuck in cluster
	// formation (possible only if serve already failed) errors out instead
	// of hanging.
	ln.Close()
	wg.Wait()
	led.publish()

	if err != nil {
		return nil, err
	}
	for i, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("dist: worker goroutine %d: %w", i, werr)
		}
	}
	return res, nil
}
