package dist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// TestConcurrentJobsIndependentLedgers is the job-scoping regression test:
// several jobs run concurrently in one process (the resident job service's
// steady state), each with its own Telemetry, and every per-job ledger must
// balance against that job's own input — not against the union. Any
// cluster state that leaked to package/process scope (a shared kill table,
// a shared conservation ledger, a shared counters baseline) would make the
// per-job counters absorb a neighbor's records and fail here.
func TestConcurrentJobsIndependentLedgers(t *testing.T) {
	type spec struct {
		name    string
		workers int
		size    int
	}
	specs := []spec{
		{"wc", 2, 48 << 10},
		{"wc", 3, 96 << 10},
		{"ts", 2, 40 * 100},
		{"ts", 3, 80 * 100},
	}

	type run struct {
		reg     *obs.Registry
		records int64 // expected map input records for this job alone
		outputs []kv.Pair
		verify  func([]kv.Pair) error
		err     error
	}
	runs := make([]*run, len(specs))

	var wg sync.WaitGroup
	for i, sp := range specs {
		r := &run{}
		runs[i] = r
		seed := int64(100 + i)

		var job Job
		var blocks [][]byte
		switch sp.name {
		case "wc":
			data, want := apps.WCData(seed, sp.size, 300)
			job = Job{App: AppSpec{Name: "wc"}, Collector: core.HashTable}
			blocks = SplitBlocks(data, 8<<10, 0)
			r.records = int64(bytes.Count(data, []byte("\n")))
			r.verify = func(out []kv.Pair) error { return apps.VerifyCounts(out, want) }
		case "ts":
			data := apps.TSData(seed, sp.size/100)
			job = Job{
				App:       AppSpec{Name: "ts", Params: EncodeTSParams(apps.TeraSample(data, 16))},
				Collector: core.BufferPool,
			}
			blocks = SplitBlocks(data, 8<<10, 100)
			r.records = int64(sp.size / 100)
			r.verify = func(out []kv.Pair) error { return apps.VerifyTeraSort(out, data) }
		}

		tel := obs.NewTelemetry()
		r.reg = tel.Metrics
		o := Options{
			Job:        job,
			Workers:    sp.workers,
			Blocks:     blocks,
			Telemetry:  tel,
			KillWorker: -1,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunLoopback(o)
			if err != nil {
				r.err = err
				return
			}
			r.outputs = res.Output()
		}()
	}
	wg.Wait()

	for i, r := range runs {
		name := fmt.Sprintf("job %d (%s)", i, specs[i].name)
		if r.err != nil {
			t.Errorf("%s: %v", name, r.err)
			continue
		}
		if err := r.verify(r.outputs); err != nil {
			t.Errorf("%s: output: %v", name, err)
		}
		c := func(n string) int64 { return r.reg.Counter(n).Value() }

		// The job's ledger must account for exactly its own input — a
		// shared ledger would show every job the sum of all four.
		if got := c("conserv_map_records_in_total"); got != r.records {
			t.Errorf("%s: map records in = %d, want %d (cross-job contamination?)", name, got, r.records)
		}
		// And it must balance independently: nothing lost, everything
		// serialized was accepted, the wire conserved.
		if got, want := c("conserv_store_accepted_records_total"), c("conserv_partition_records_total"); got != want {
			t.Errorf("%s: store accepted %d != partition records %d", name, got, want)
		}
		if got := c("conserv_store_lost_records_total"); got != 0 {
			t.Errorf("%s: %d records lost on a fault-free run", name, got)
		}
		sent, recv, lost := c("conserv_net_records_sent_total"), c("conserv_net_records_recv_total"), c("conserv_net_records_lost_total")
		if sent != recv+lost {
			t.Errorf("%s: wire ledger unbalanced: sent %d != recv %d + lost %d", name, sent, recv, lost)
		}
		if lost != 0 {
			t.Errorf("%s: %d wire records lost on a fault-free run", name, lost)
		}
		if specs[i].workers > 1 && sent == 0 {
			t.Errorf("%s: multi-worker job moved no shuffle data", name)
		}
	}
}

// TestFleet exercises the shared slot pool's accounting.
func TestFleet(t *testing.T) {
	f := NewFleet(4)
	if f.Total() != 4 || f.Free() != 4 {
		t.Fatalf("fresh fleet: total %d free %d, want 4/4", f.Total(), f.Free())
	}
	if !f.TryAcquire(3) {
		t.Fatal("TryAcquire(3) on an empty fleet failed")
	}
	if f.TryAcquire(2) {
		t.Fatal("TryAcquire(2) succeeded with 1 slot free")
	}
	if !f.TryAcquire(1) {
		t.Fatal("TryAcquire(1) with 1 slot free failed")
	}
	f.Release(2)
	if f.Free() != 2 {
		t.Fatalf("free after release = %d, want 2", f.Free())
	}
	f.Release(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-release did not panic")
			}
		}()
		f.Release(1)
	}()
}
