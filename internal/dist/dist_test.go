package dist

import (
	"fmt"
	"net"
	"testing"
	"time"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
	"glasswing/internal/workload"
)

// testResolver injects app and partitioner directly, the way conformance
// loopback cells do.
func testResolver(app func() *core.App, prt func([]byte, int) int) Resolver {
	return func(AppSpec) (*core.App, func([]byte, int) int, error) {
		return app(), prt, nil
	}
}

func wcOptions(workers int, tel *obs.Telemetry) (Options, map[string]uint64) {
	data, want := apps.WCData(21, 96<<10, 1200)
	return Options{
		Job:       Job{App: AppSpec{Name: "WC"}, Partitions: 4, Collector: core.HashTable},
		Workers:   workers,
		Blocks:    SplitBlocks(data, 16<<10, 0),
		Telemetry: tel,
		NewApp:    testResolver(apps.WordCount, nil),
		KillWorker: -1,
	}, want
}

// netCounters reads the wire-conservation counters back out of a registry.
func netCounters(reg *obs.Registry) (sent, recv, lost, bsent, brecv, blost int64) {
	c := func(n string) int64 { return reg.Counter(n).Value() }
	return c("conserv_net_records_sent_total"), c("conserv_net_records_recv_total"),
		c("conserv_net_records_lost_total"), c("conserv_net_bytes_sent_total"),
		c("conserv_net_bytes_recv_total"), c("conserv_net_bytes_lost_total")
}

func TestLoopbackWordCount(t *testing.T) {
	tel := obs.NewTelemetry()
	o, want := wcOptions(3, tel)
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	sent, recv, lost, bsent, brecv, blost := netCounters(tel.Metrics)
	if sent == 0 {
		t.Fatal("3-worker run shuffled nothing over the wire")
	}
	if lost != 0 || blost != 0 {
		t.Fatalf("fault-free run lost data: %d records, %d bytes", lost, blost)
	}
	if sent != recv || bsent != brecv {
		t.Fatalf("wire leak: sent %d/%dB, recv %d/%dB", sent, bsent, recv, brecv)
	}
	if res.WorkersLost != 0 || res.MapRetries != 0 {
		t.Fatalf("unexpected faults: %+v", res)
	}
}

func TestLoopbackSingleWorker(t *testing.T) {
	// One node: no peers, no wire shuffle, the no-barrier map-done path.
	tel := obs.NewTelemetry()
	o, want := wcOptions(1, tel)
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if sent, _, _, _, _, _ := netCounters(tel.Metrics); sent != 0 {
		t.Fatalf("single worker sent %d records over the wire", sent)
	}
}

func TestLoopbackTeraSort(t *testing.T) {
	data := apps.TSData(22, 2000)
	o := Options{
		Job: Job{
			App:        AppSpec{Name: "TS"},
			Partitions: 6,
			Collector:  core.BufferPool,
		},
		Workers:    3,
		Blocks:     SplitBlocks(data, 32<<10, int(workload.TeraRecordSize)),
		NewApp:     testResolver(apps.TeraSort, apps.TeraPartitioner(data, 16)),
		KillWorker: -1,
	}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	// Range partitioning + partition-ordered assembly must yield a total
	// order; VerifyTeraSort checks order and content.
	if err := apps.VerifyTeraSort(res.Output(), data); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackKMeans(t *testing.T) {
	data, spec := apps.KMData(23, 4096, 4, 8)
	o := Options{
		Job: Job{
			App:        AppSpec{Name: "KM"},
			Partitions: 4,
			Collector:  core.HashTable,
			// Combiner stays off: float sums are not associative.
		},
		Workers:    3,
		Blocks:     SplitBlocks(data, 8<<10, spec.Dim*4),
		NewApp:     testResolver(func() *core.App { return apps.KMeans(spec) }, nil),
		KillWorker: -1,
	}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyKMeans(res.Output(), data, spec); err != nil {
		t.Fatal(err)
	}
}

func TestMapFaultRetry(t *testing.T) {
	tel := obs.NewTelemetry()
	o, want := wcOptions(3, tel)
	o.Telemetry = tel
	o.MapFault = func(task, attempt int) bool { return attempt == 0 && task%3 == 0 }
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.MapRetries == 0 {
		t.Fatal("injected faults produced no retries")
	}
	// Failed attempts die before partitioning, so the wire never sees them:
	// retry cells stay byte-exact with zero loss.
	if _, _, lost, _, _, blost := netCounters(tel.Metrics); lost != 0 || blost != 0 {
		t.Fatalf("retry run lost data: %d records, %d bytes", lost, blost)
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	o, _ := wcOptions(2, nil)
	o.Job.MaxAttempts = 2
	o.MapFault = func(task, attempt int) bool { return task == 1 } // always fails
	if _, err := RunLoopback(o); err == nil {
		t.Fatal("want job failure after exhausting attempts")
	}
}

func TestWorkerKill(t *testing.T) {
	tel := obs.NewTelemetry()
	data, want := apps.WCData(21, 96<<10, 1200)
	o := Options{
		Job:       Job{App: AppSpec{Name: "WC"}, Partitions: 5, Collector: core.HashTable},
		Workers:   3,
		Blocks:    SplitBlocks(data, 8<<10, 0), // ~12 tasks: plenty left at kill time
		Telemetry: tel,
		NewApp:    testResolver(apps.WordCount, nil),
		KillWorker:       1,
		KillAfterMapDone: 2,
	}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", res.WorkersLost)
	}
	if res.MapRecoveries == 0 {
		t.Fatal("kill after resolved map tasks must re-execute them")
	}
	// The wire ledger must balance exactly across the kill: every record and
	// byte enqueued was either received by a live worker or flushed as lost.
	sent, recv, lost, bsent, brecv, blost := netCounters(tel.Metrics)
	if sent != recv+lost {
		t.Fatalf("net records leak: sent %d != recv %d + lost %d", sent, recv, lost)
	}
	if bsent != brecv+blost {
		t.Fatalf("net bytes leak: sent %d != recv %d + lost %d", bsent, brecv, blost)
	}
	// Store conservation: reduce consumed exactly what survived.
	c := func(n string) int64 { return tel.Metrics.Counter(n).Value() }
	if got, want := c("conserv_reduce_records_in_total"),
		c("conserv_store_accepted_records_total")-c("conserv_store_lost_records_total"); got != want {
		t.Fatalf("reduce records in %d != store accepted - lost %d", got, want)
	}
}

// TestWireConservationCompression runs the same 3-worker job over both wire
// encodings and proves the byte ledger balances exactly on each: sent ==
// recv + lost with lost == 0 on a fault-free run, identical record counts
// either way, and the DEFLATE wire moving strictly fewer bytes. It also
// pins the coalescer's whole reason to exist: far fewer frames ship than
// partition runs, and the dist_frame_bytes histogram accounts for every
// wire byte (frame header included) without slack.
func TestWireConservationCompression(t *testing.T) {
	data, want := apps.WCData(21, 96<<10, 1200)
	recordsSent := map[bool]int64{}
	bytesSent := map[bool]int64{}
	for _, compress := range []bool{false, true} {
		tel := obs.NewTelemetry()
		o := Options{
			// 9 partitions over 3 workers: each attempt produces ~6 remote
			// runs, so an uncoalesced wire would ship ~3x more frames than
			// the two per-peer flushes the barrier forces.
			Job: Job{
				App: AppSpec{Name: "WC"}, Partitions: 9,
				Collector: core.HashTable, Compress: compress,
			},
			Workers:    3,
			Blocks:     SplitBlocks(data, 16<<10, 0),
			Telemetry:  tel,
			NewApp:     testResolver(apps.WordCount, nil),
			KillWorker: -1,
		}
		res, err := RunLoopback(o)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if err := apps.VerifyCounts(res.Output(), want); err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		sent, recv, lost, bsent, brecv, blost := netCounters(tel.Metrics)
		if lost != 0 || blost != 0 {
			t.Fatalf("compress=%v: fault-free run lost %d records, %d bytes", compress, lost, blost)
		}
		if sent != recv+lost || bsent != brecv+blost {
			t.Fatalf("compress=%v: ledger leak: sent %d/%dB, recv %d/%dB, lost %d/%dB",
				compress, sent, bsent, recv, brecv, lost, blost)
		}
		recordsSent[compress], bytesSent[compress] = sent, bsent

		frames := tel.Metrics.Histogram("dist_frame_bytes", nil)
		runs := tel.Metrics.Counter("conserv_partition_runs_total").Value()
		if frames.Count() == 0 {
			t.Fatalf("compress=%v: no shuffle frames recorded", compress)
		}
		if frames.Count()*2 > runs {
			t.Fatalf("compress=%v: %d frames for %d runs: coalescing is not batching",
				compress, frames.Count(), runs)
		}
		// Histogram records wire size (5-byte header + payload); the ledger
		// records payload. The two must reconcile exactly.
		if int64(frames.Sum()) != bsent+5*frames.Count() {
			t.Fatalf("compress=%v: frame bytes %d != payload %d + headers %d",
				compress, int64(frames.Sum()), bsent, 5*frames.Count())
		}
	}
	if recordsSent[true] != recordsSent[false] {
		t.Fatalf("record count depends on wire encoding: %d compressed vs %d plain",
			recordsSent[true], recordsSent[false])
	}
	if bytesSent[true] >= bytesSent[false] {
		t.Fatalf("DEFLATE wire did not shrink: %d compressed vs %d plain bytes",
			bytesSent[true], bytesSent[false])
	}
}

// TestOverlap is the paper's stage-4 claim made measurable: with shuffle
// pushed through asynchronous write pumps, network transfer intervals
// overlap map kernel intervals, and the whole 3-worker run retires more
// than one busy-second per wall-second.
func TestOverlap(t *testing.T) {
	tel := obs.NewTelemetry()
	data, _ := apps.WCData(21, 256<<10, 1200)
	o := Options{
		Job:       Job{App: AppSpec{Name: "WC"}, Partitions: 6, Collector: core.HashTable},
		Workers:   3,
		Blocks:    SplitBlocks(data, 8<<10, 0),
		Telemetry: tel,
		NewApp:    testResolver(apps.WordCount, nil),
		KillWorker: -1,
	}
	if _, err := RunLoopback(o); err != nil {
		t.Fatal(err)
	}
	spans := tel.Spans.Spans()
	var sends, kernels []obs.Span
	for _, s := range spans {
		switch s.Stage {
		case stageNetSend:
			sends = append(sends, s)
		case stageMapKernel:
			kernels = append(kernels, s)
		}
	}
	if len(sends) == 0 {
		t.Fatal("no net/send spans recorded")
	}
	overlapped := false
	for _, s := range sends {
		for _, k := range kernels {
			if s.Start < k.End && k.Start < s.End {
				overlapped = true
				break
			}
		}
		if overlapped {
			break
		}
	}
	if !overlapped {
		t.Fatal("no net/send span overlaps any map/kernel span: shuffle is not concurrent with compute")
	}
	rep := obs.Analyze(spans)
	if rep.OverlapFactor <= 1.0 {
		t.Fatalf("overlap factor %.2f <= 1.0: the cluster ran serially", rep.OverlapFactor)
	}
}

// TestGeometryInvariance: the same job across worker counts, partition
// counts and compression produces identical sorted output.
func TestGeometryInvariance(t *testing.T) {
	data, want := apps.WCData(21, 64<<10, 800)
	ref := ""
	for _, g := range []struct {
		name             string
		workers, parts   int
		chunk            int
		compress         bool
	}{
		{"w3-p4", 3, 4, 16 << 10, false},
		{"w2-p7", 2, 7, 16 << 10, false},
		{"w4-p3-small", 4, 3, 4 << 10, false},
		{"w3-p4-deflate", 3, 4, 16 << 10, true},
	} {
		o := Options{
			Job: Job{
				App: AppSpec{Name: "WC"}, Partitions: g.parts,
				Collector: core.HashTable, Compress: g.compress,
			},
			Workers:    g.workers,
			Blocks:     SplitBlocks(data, g.chunk, 0),
			NewApp:     testResolver(apps.WordCount, nil),
			KillWorker: -1,
		}
		res, err := RunLoopback(o)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if err := apps.VerifyCounts(res.Output(), want); err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		out := res.Output()
		kv.SortPairs(out)
		dig := fmt.Sprintf("%x", kv.Marshal(out))
		if ref == "" {
			ref = dig
		} else if dig != ref {
			t.Fatalf("%s: output diverged from first geometry", g.name)
		}
	}
}

// TestServeJoin exercises the multi-process entry points (registry app
// resolution, separate ledgers) inside one test process.
func TestServeJoin(t *testing.T) {
	data, want := apps.WCData(21, 64<<10, 800)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type served struct {
		res *Result
		err error
	}
	ch := make(chan served, 1)
	go func() {
		res, err := serve(ln, Options{
			Job:     Job{App: AppSpec{Name: "wc"}, Partitions: 4, Collector: core.HashTable},
			Workers: 2,
			Blocks:  SplitBlocks(data, 16<<10, 0),
		}, nil, loopHooks{})
		ch <- served{res, err}
	}()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			errs <- Join(ln.Addr().String(), "127.0.0.1:0", Tuning{}, obs.NewTelemetry())
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s := <-ch
	if s.err != nil {
		t.Fatal(s.err)
	}
	if err := apps.VerifyCounts(s.res.Output(), want); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryParamRoundTrip(t *testing.T) {
	data := apps.TSData(7, 500)
	sample := apps.TeraSample(data, 16)
	got, err := DecodeTSParams(EncodeTSParams(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sample) {
		t.Fatalf("sample length %d != %d", len(got), len(sample))
	}
	for i := range got {
		if string(got[i]) != string(sample[i]) {
			t.Fatalf("sample[%d] mismatch", i)
		}
	}

	_, spec := apps.KMData(5, 64, 3, 4)
	gs, err := DecodeKMParams(EncodeKMParams(spec))
	if err != nil {
		t.Fatal(err)
	}
	if gs.Dim != spec.Dim || gs.ModelCenters != spec.ModelCenters || len(gs.Centers) != len(spec.Centers) {
		t.Fatalf("spec mismatch: %+v vs %+v", gs, spec)
	}
	for i := range gs.Centers {
		for d := range gs.Centers[i] {
			if gs.Centers[i][d] != spec.Centers[i][d] {
				t.Fatalf("center (%d,%d) mismatch", i, d)
			}
		}
	}

	if _, _, err := RegistryResolver(AppSpec{Name: "nope"}); err == nil {
		t.Fatal("unknown app must fail resolution")
	}
}

func TestSchedDeathRequeuesEverything(t *testing.T) {
	s := newSched(6, 3, 4)
	alive := []bool{true, true, true}
	// Worker 0 resolves tasks 0 and 3; task 1 in flight on worker 1.
	for _, w := range []int{0, 1, 2} {
		for {
			if _, ok := s.next(w, alive); !ok {
				break
			}
		}
	}
	s.done(0, 0)
	s.done(3, 0)
	alive[1] = false
	s.death(1, alive)
	if s.recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (both resolved tasks)", s.recoveries)
	}
	if s.resolvedCount != 0 {
		t.Fatalf("resolvedCount = %d, want 0", s.resolvedCount)
	}
	// Every task must be requeued with a bumped attempt, and stale attempt-0
	// reports must now be ignored.
	if s.done(0, 0) {
		t.Fatal("stale attempt accepted after death bump")
	}
	queued := 0
	for _, q := range s.queues {
		queued += len(q)
	}
	if queued != 6 {
		t.Fatalf("queued = %d, want all 6 tasks", queued)
	}
}

func TestSchedFailExhaustion(t *testing.T) {
	s := newSched(1, 1, 2)
	alive := []bool{true}
	if _, ok := s.next(0, alive); !ok {
		t.Fatal("no task")
	}
	if err := s.fail(0, 0, 0, alive, ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.next(0, alive); !ok {
		t.Fatal("retry not queued")
	}
	if err := s.fail(0, 1, 0, alive, ""); err == nil {
		t.Fatal("want exhaustion error on second failure")
	}
}

func TestHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	// A link with a short read timeout but regular heartbeats must survive
	// an idle period several timeouts long.
	a, b := tcpPair(t)
	tun := Tuning{HeartbeatEvery: 20 * time.Millisecond, HeartbeatTimeout: 120 * time.Millisecond}
	ca := newConn(a, "a", tun, nil)
	defer ca.close()
	cb := newConn(b, "b", tun, nil)
	defer cb.close()

	done := make(chan error, 1)
	go func() {
		_, _, err := cb.recv() // only heartbeats arrive until the real frame
		done <- err
	}()
	time.Sleep(500 * time.Millisecond)
	ca.send(frame{typ: mMark, payload: markMsg{Task: 1}.encode()})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle link died despite heartbeats: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame never arrived")
	}
}
