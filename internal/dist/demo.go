package dist

import (
	"fmt"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/workload"
)

// DemoJob builds one registry application end to end: the Job (params
// encoded so remote workers can resolve the kernel without seeing the
// input), the generated input blocks, and an output verifier. Both
// cmd/glasswing's loopback mode and cmd/distnode's coordinator mode run
// jobs through this, so an in-process cluster and a multi-process one
// execute the identical workload.
//
// size is the approximate input volume in bytes, chunk the map block size
// (0 for the default). Seeds are fixed: a demo job is reproducible across
// machines by construction.
func DemoJob(name string, size, partitions, chunk int) (Job, [][]byte, func(*Result) error, error) {
	if size <= 0 {
		size = 1 << 20
	}
	job := Job{App: AppSpec{Name: name}, Partitions: partitions}
	switch name {
	case "wc":
		data, want := apps.WCData(1, size, size/400)
		job.Collector = core.HashTable
		job.UseCombiner = true
		verify := func(r *Result) error { return apps.VerifyCounts(r.Output(), want) }
		return job, SplitBlocks(data, chunk, 0), verify, nil
	case "ts":
		data := apps.TSData(3, size/workload.TeraRecordSize)
		job.App.Params = EncodeTSParams(apps.TeraSample(data, 16))
		job.Collector = core.BufferPool
		verify := func(r *Result) error { return apps.VerifyTeraSort(r.Output(), data) }
		return job, SplitBlocks(data, chunk, workload.TeraRecordSize), verify, nil
	case "km":
		data, spec := apps.KMData(4, size/16, 4, 64)
		job.App.Params = EncodeKMParams(spec)
		job.Collector = core.HashTable
		verify := func(r *Result) error { return apps.VerifyKMeans(r.Output(), data, spec) }
		return job, SplitBlocks(data, chunk, spec.Dim*4), verify, nil
	default:
		return Job{}, nil, nil, fmt.Errorf("dist: no demo job %q (wc, ts, km)", name)
	}
}

// FileJob builds a job over caller-supplied input bytes — a file produced
// by cmd/datagen or ingested from elsewhere — instead of generating the
// dataset in place. The returned verifier recomputes the reference answer
// from the same bytes, so correctness checking works on arbitrary inputs,
// not just the fixed-seed demo datasets. useCombiner toggles the map-side
// combiner (out-of-core runs turn it off to maximize shuffle volume).
func FileJob(name string, data []byte, partitions, chunk int, useCombiner bool) (Job, [][]byte, func(*Result) error, error) {
	job := Job{App: AppSpec{Name: name}, Partitions: partitions}
	switch name {
	case "wc":
		want := apps.WCRef(data)
		job.Collector = core.HashTable
		job.UseCombiner = useCombiner
		verify := func(r *Result) error { return apps.VerifyCounts(r.Output(), want) }
		return job, SplitBlocks(data, chunk, 0), verify, nil
	case "ts":
		if len(data)%workload.TeraRecordSize != 0 {
			return Job{}, nil, nil, fmt.Errorf("dist: ts input is %d bytes, not a multiple of the %d-byte record", len(data), workload.TeraRecordSize)
		}
		job.App.Params = EncodeTSParams(apps.TeraSample(data, 16))
		job.Collector = core.BufferPool
		verify := func(r *Result) error { return apps.VerifyTeraSort(r.Output(), data) }
		return job, SplitBlocks(data, chunk, workload.TeraRecordSize), verify, nil
	default:
		return Job{}, nil, nil, fmt.Errorf("dist: no file job %q (wc, ts)", name)
	}
}
