package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// Join connects one worker process to the coordinator at coordAddr,
// executes its share of the job, and returns when the job ends. The
// application is resolved by name through the registry; listenAddr is the
// peer-facing listener (use ":0" to let the kernel pick). Telemetry (may be
// nil) receives this process's slice of the conservation ledger.
func Join(coordAddr, listenAddr string, tun Tuning, tel *obs.Telemetry) error {
	led := newLedger(tel)
	_, err := runWorker(workerConfig{
		coordAddr:  coordAddr,
		listenAddr: listenAddr,
		tun:        tun,
		led:        led,
		resolve:    RegistryResolver,
		localSpans: true,
	})
	led.publish()
	return err
}

// Resolver reconstructs an application from its wire spec. Code never
// crosses the network: both ends run the same binary and look the app up
// locally (registry.go provides the default; loopback injects the job's
// App directly).
type Resolver func(spec AppSpec) (*core.App, func(key []byte, n int) int, error)

// workerConfig configures one worker node.
type workerConfig struct {
	coordAddr  string
	listenAddr string // peer-facing listener ("127.0.0.1:0" for loopback)
	tun        Tuning
	led        *ledger // shared in loopback; nil = private
	resolve    Resolver
	// mapFault, if set, fails map attempts after the kernel but before any
	// partitioning or sends — the same injection point as the sim core's
	// FaultInjector, so failed attempts have no observable shuffle effect.
	mapFault func(task, attempt int) bool
	// onWelcome is called once the coordinator assigns this worker's id
	// (loopback uses it to wire the kill hook).
	onWelcome func(w *worker)
	// localSpans additionally copies this worker's trace spans into its own
	// telemetry bundle after the job (multi-process Join, where the local
	// process wants its own view). Loopback leaves it off: there the
	// coordinator's merged, clock-aligned trace is the only copy, so spans
	// are never duplicated into the shared buffer.
	localSpans bool
}

// pendingDone tracks the commit barrier of one finished map attempt: the
// peers whose acks are still outstanding, and the attempt's stats to flush
// when the last ack lands.
type pendingDone struct {
	acks  map[int]bool
	stats attemptStats
}

// worker is one node of the distributed runtime.
type worker struct {
	cfg workerConfig
	tun Tuning
	led *ledger
	tr  *tracer

	id      int
	n       int
	job     Job
	traceID uint64
	app     *core.App
	prt     func(key []byte, n int) int

	coord     *conn
	peers     []*conn      // index by worker id; nil at own slot
	coal      []*coalescer // per-peer outbound run coalescers, parallel to peers
	peerAddrs []string

	execCh chan execItem
	stop   chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	store   *shuffleStore
	homes   []int
	alive   []bool
	killed  bool
	ackWait map[attemptKey]*pendingDone
}

type execItem struct {
	reduce  bool
	mapTask mapTaskMsg
	redTask reduceTaskMsg
}

// runWorker joins the coordinator at cfg.coordAddr, executes one job, and
// returns whether the worker was killed mid-job (loopback fault cells) and
// any unexpected error.
func runWorker(cfg workerConfig) (killed bool, err error) {
	tun := cfg.tun.withDefaults()
	led := cfg.led
	ownLed := led == nil
	if ownLed {
		led = newLedger(nil)
	}
	w := &worker{
		cfg:     cfg,
		tun:     tun,
		led:     led,
		execCh:  make(chan execItem, 4096),
		stop:    make(chan struct{}),
		store:   newShuffleStore(),
		ackWait: make(map[attemptKey]*pendingDone),
	}

	ln, err := net.Listen("tcp", cfg.listenAddr)
	if err != nil {
		return false, fmt.Errorf("dist: worker listen: %w", err)
	}
	defer ln.Close()

	c, err := net.Dial("tcp", cfg.coordAddr)
	if err != nil {
		return false, fmt.Errorf("dist: dialing coordinator: %w", err)
	}
	w.coord = newConn(c, "coord", tun, nil)
	defer w.coord.close()

	w.coord.send(frame{typ: mHello, payload: helloMsg{ListenAddr: ln.Addr().String()}.encode()})

	if err := w.join(); err != nil {
		return false, err
	}
	if cfg.onWelcome != nil {
		cfg.onWelcome(w)
	}
	if err := w.connectPeers(ln); err != nil {
		return false, err
	}

	for j, pc := range w.peers {
		if pc == nil {
			continue
		}
		w.wg.Add(1)
		go w.peerReader(j, pc)
	}
	w.wg.Add(1)
	go w.executor()
	if w.n > 1 {
		w.wg.Add(1)
		go w.coalesceFlusher()
	}

	err = w.coordLoop()

	close(w.stop)
	w.mu.Lock()
	wasKilled := w.killed
	w.mu.Unlock()
	if err == nil && !wasKilled {
		// Ship this node's trace spans before closing the coordinator link.
		// The FIFO connection guarantees the batch precedes our EOF, so the
		// coordinator always has it by the time its reader drains. A killed
		// or failed worker sends nothing — its partial timeline died with it.
		w.coord.send(frame{typ: mSpanBatch, payload: spanBatchMsg{
			TraceID:       w.traceID,
			Node:          w.id,
			EpochUnixNano: w.tr.epoch.UnixNano(),
			Spans:         w.tr.spans(),
		}.encode()})
		w.coord.flush()
	}
	w.coord.close()
	for _, pc := range w.peers {
		if pc == nil {
			continue
		}
		if wasKilled {
			pc.seal() // already sealed by kill; idempotent
		} else {
			pc.shutdown()
		}
	}
	w.wg.Wait()
	for _, pc := range w.peers {
		if pc != nil {
			pc.close()
		}
	}
	if ownLed {
		led.publish()
	}
	if cfg.localSpans && led.tel != nil && led.tel.Spans != nil {
		for _, s := range w.tr.spans() {
			led.tel.Spans.Span(s)
		}
	}
	if wasKilled {
		return true, nil
	}
	return false, err
}

// join completes the hello/welcome/job-start handshake.
func (w *worker) join() error {
	typ, p, err := w.coord.recv()
	if err != nil {
		return fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	if typ != mWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", typeName(typ))
	}
	wel, err := decodeWelcome(p)
	if err != nil {
		return err
	}
	w.id, w.n = wel.WorkerID, wel.Workers
	w.tr = newTracer(w.led, w.id)

	typ, p, err = w.coord.recv()
	if err != nil {
		return fmt.Errorf("dist: awaiting job start: %w", err)
	}
	if typ != mJobStart {
		return fmt.Errorf("dist: expected job-start, got %s", typeName(typ))
	}
	js, err := decodeJobStart(p)
	if err != nil {
		return err
	}
	w.job = js.Job.withDefaults()
	w.traceID = js.TraceID
	w.homes = js.Homes
	w.alive = make([]bool, w.n)
	for i := range w.alive {
		w.alive[i] = true
	}
	w.peerAddrs = js.Peers

	app, prt, err := w.cfg.resolve(w.job.App)
	if err != nil {
		return fmt.Errorf("dist: resolving app %q: %w", w.job.App.Name, err)
	}
	if prt == nil {
		prt = kv.Partition
	}
	w.app, w.prt = app, prt
	return nil
}

// connectPeers establishes the worker mesh: this worker dials every peer
// with a lower id and accepts a connection from every peer with a higher
// one, identifying dialers by their peer-hello frame.
func (w *worker) connectPeers(ln net.Listener) error {
	w.peers = make([]*conn, w.n)
	onDrop := func(records, acct int64) { w.led.netLost(records, acct) }
	// net/send spans are recorded on the pump goroutine, where the socket
	// write actually happens — that is the wall-clock interval that
	// overlaps the executor's map/kernel spans in the trace. The span id
	// was minted by the coalescer (it rides inside the frame payload, so
	// the receiver can parent on it); the parent is the map kernel that
	// first contributed to the batch.
	onBulkWrite := func(f *frame) func() { return w.tr.spanWithID(f.spanID, stageNetSend, f.spanParent) }
	onBulkTiming := w.led.bulkTiming

	type res struct {
		id  int
		cc  *conn
		err error
	}
	ch := make(chan res, w.n)
	for j := 0; j < w.id; j++ {
		go func(j int) {
			c, err := net.Dial("tcp", w.peerAddrs[j])
			if err != nil {
				ch <- res{err: fmt.Errorf("dist: dialing peer %d: %w", j, err)}
				return
			}
			cc := newConn(c, fmt.Sprintf("peer%d", j), w.tun, onDrop)
			cc.onBulkWrite = onBulkWrite
			cc.onBulkTiming = onBulkTiming
			cc.send(frame{typ: mPeerHello, payload: peerHelloMsg{WorkerID: w.id}.encode()})
			ch <- res{id: j, cc: cc}
		}(j)
	}
	accepts := w.n - 1 - w.id
	go func() {
		for i := 0; i < accepts; i++ {
			c, err := ln.Accept()
			if err != nil {
				ch <- res{err: fmt.Errorf("dist: accepting peer: %w", err)}
				return
			}
			cc := newConn(c, "peer?", w.tun, onDrop)
			cc.onBulkWrite = onBulkWrite
			cc.onBulkTiming = onBulkTiming
			typ, p, err := cc.recv()
			if err != nil || typ != mPeerHello {
				cc.close()
				ch <- res{err: fmt.Errorf("dist: bad peer hello (%s): %v", typeName(typ), err)}
				return
			}
			ph, err := decodePeerHello(p)
			if err != nil {
				cc.close()
				ch <- res{err: err}
				return
			}
			ch <- res{id: ph.WorkerID, cc: cc}
		}
	}()
	for i := 0; i < w.n-1; i++ {
		r := <-ch
		if r.err != nil {
			return r.err
		}
		if r.id < 0 || r.id >= w.n || r.id == w.id || w.peers[r.id] != nil {
			r.cc.close()
			return fmt.Errorf("dist: peer id %d invalid or duplicate", r.id)
		}
		w.peers[r.id] = r.cc
	}
	w.coal = make([]*coalescer, w.n)
	for j, pc := range w.peers {
		if pc != nil {
			w.coal[j] = newCoalescer(pc, w.led, w.tr, w.traceID, w.tun.CoalesceBytes, w.job.Compress)
		}
	}
	return nil
}

// coalesceFlusher is the coalescers' time trigger: a buffered run batch
// whose oldest entry has waited CoalesceDelay ships even if no size or
// marker trigger arrives — bounded latency without sacrificing batching.
func (w *worker) coalesceFlusher() {
	defer w.wg.Done()
	t := time.NewTicker(w.tun.CoalesceDelay)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			for _, co := range w.coal {
				if co != nil {
					co.flushIfStale(w.tun.CoalesceDelay)
				}
			}
		}
	}
}

// coordLoop dispatches coordinator frames until job end, death of the
// coordinator, or our own (expected) kill.
func (w *worker) coordLoop() error {
	for {
		typ, p, err := w.coord.recv()
		if err != nil {
			w.mu.Lock()
			killed := w.killed
			w.mu.Unlock()
			if killed {
				return nil
			}
			return fmt.Errorf("dist: lost coordinator: %w", err)
		}
		switch typ {
		case mMapTask:
			m, err := decodeMapTask(p)
			if err != nil {
				return err
			}
			w.execCh <- execItem{mapTask: m}
		case mReduceTask:
			m, err := decodeReduceTask(p)
			if err != nil {
				return err
			}
			w.execCh <- execItem{reduce: true, redTask: m}
		case mWorkerDead:
			m, err := decodeWorkerDead(p)
			if err != nil {
				return err
			}
			w.handleDeath(m)
		case mJobEnd:
			return nil
		default:
			return fmt.Errorf("dist: unexpected %s from coordinator", typeName(typ))
		}
	}
}

// executor runs map and reduce tasks serially; shuffle sends are
// asynchronous (the connection write pumps own the sockets), so task k's
// network transfer overlaps task k+1's kernel — the paper's stage-4
// compute/communication overlap.
func (w *worker) executor() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case it := <-w.execCh:
			if it.reduce {
				w.runReduce(it.redTask)
			} else {
				w.runMap(it.mapTask)
			}
		}
	}
}

// execMapKernel runs the map kernel over one block through the configured
// collector: the hash table groups values per key (enabling the combiner),
// the buffer pool appends pairs directly. Either way the emitted multiset
// is identical (the combiner is the only semantic difference), matching
// the native pipeline's collector behavior.
func execMapKernel(app *core.App, job Job, recs []kv.Pair) []kv.Pair {
	var out []kv.Pair
	emitCopy := func(k, v []byte) {
		out = append(out, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	// With a batch kernel, run it once over the whole block and replay its
	// output into the collector: the emit sequence matches the per-record
	// path by construction, without paying the per-record shim's Batch setup
	// for every record.
	feed := func(emit func(k, v []byte)) {
		for _, rec := range recs {
			app.Map(rec, emit)
		}
	}
	if app.MapBatch != nil {
		var b kv.Batch
		app.MapBatch(recs, &b)
		feed = func(emit func(k, v []byte)) {
			for i := 0; i < b.Len(); i++ {
				p := b.Pair(i)
				emit(p.Key, p.Value)
			}
		}
	}
	if job.Collector == core.HashTable {
		idx := make(map[string]int)
		var keys [][]byte
		var vals [][][]byte
		emit := func(k, v []byte) {
			i, ok := idx[string(k)]
			if !ok {
				i = len(keys)
				idx[string(k)] = i
				keys = append(keys, append([]byte(nil), k...))
				vals = append(vals, nil)
			}
			vals[i] = append(vals[i], append([]byte(nil), v...))
		}
		feed(emit)
		if job.UseCombiner && app.Combine != nil {
			for i := range keys {
				app.Combine(keys[i], vals[i], emitCopy)
			}
		} else {
			for i := range keys {
				for _, v := range vals[i] {
					out = append(out, kv.Pair{Key: keys[i], Value: v})
				}
			}
		}
		return out
	}
	feed(emitCopy)
	return out
}

// runMap executes one map attempt: kernel, partition, push runs to their
// home workers, then mark every live peer. The attempt reports done to the
// coordinator only when every live peer has acked its marker — at which
// point its output is committed everywhere it needs to be.
//
// Runs are always built uncompressed here: wire compression is applied once
// per coalesced frame by the coalescer, and the local store holds runs the
// reducer can decode without an inflate pass.
func (w *worker) runMap(m mapTaskMsg) {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()

	// Batch kernels skip the per-record emit path: pairs land in a columnar
	// batch whose index entries are scattered and sorted without moving
	// payload, mirroring internal/native's fast path. The combiner needs
	// per-key grouping, so combiner jobs stay on the per-record collector.
	useBatch := w.app.MapBatch != nil && !w.job.UseCombiner

	// The kernel span parents on the coordinator's sched/assign span for
	// this attempt; everything downstream (partitioning, the shuffle sends)
	// parents on the kernel, forming the causal chain the merged trace
	// draws as flow arrows.
	kernelID, end := w.tr.span(stageMapKernel, m.SpanID)
	recs := w.app.Parse(m.Block)
	var batch kv.Batch
	var pairs []kv.Pair
	if useBatch {
		w.app.MapBatch(recs, &batch)
	} else {
		pairs = execMapKernel(w.app, w.job, recs)
	}
	end()

	if w.cfg.mapFault != nil && w.cfg.mapFault(m.Task, m.Attempt) {
		// Fail before partitioning: like the sim core, a failed attempt has
		// produced nothing durable and nothing has touched the wire.
		w.coord.send(frame{typ: mMapFailed, payload: taskFailMsg{
			Task: m.Task, Attempt: m.Attempt, Reason: "injected fault",
		}.encode()})
		return
	}

	P := w.job.Partitions
	_, end = w.tr.span(stageMapPartition, kernelID)
	runs := make([]*kv.Run, P)
	stats := attemptStats{RecordsIn: int64(len(recs))}
	if useBatch {
		stats.PairsOut = int64(batch.Len())
		bounds := batch.PartitionRanges(w.prt, P)
		for p := 0; p < P; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if lo == hi {
				continue
			}
			batch.SortRange(lo, hi)
			runs[p] = batch.RunRange(lo, hi, false)
		}
	} else {
		stats.PairsOut = int64(len(pairs))
		buckets := make([][]kv.Pair, P)
		for _, pr := range pairs {
			p := w.prt(pr.Key, P)
			buckets[p] = append(buckets[p], pr)
		}
		for p, b := range buckets {
			if len(b) == 0 {
				continue
			}
			kv.SortPairs(b)
			runs[p] = kv.NewRun(b, false)
		}
	}
	for _, r := range runs {
		if r == nil {
			continue
		}
		stats.PartRecords += int64(r.Records)
		stats.PartRuns++
		stats.PartRaw += r.RawBytes
		stats.PartStored += r.StoredBytes()
	}
	end()

	// Register the ack barrier and commit our own partitions under one
	// lock, against a consistent homes/alive snapshot: a death processed
	// before this point is excluded from the barrier, one processed after
	// will prune it.
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	homes := append([]int(nil), w.homes...)
	var livePeers []int
	for j := 0; j < w.n; j++ {
		if j != w.id && w.alive[j] {
			livePeers = append(livePeers, j)
		}
	}
	for p, r := range runs {
		if r != nil && homes[p] == w.id {
			w.store.stage(m.Task, m.Attempt, p, r)
		}
	}
	acc, dup := w.store.commit(m.Task, m.Attempt)
	w.led.storeAccepted.Add(acc)
	w.led.storeDupDropped.Add(dup)
	var pd *pendingDone
	if len(livePeers) > 0 {
		pd = &pendingDone{acks: make(map[int]bool, len(livePeers)), stats: stats}
		for _, j := range livePeers {
			pd.acks[j] = true
		}
		w.ackWait[attemptKey{m.Task, m.Attempt}] = pd
	}
	w.mu.Unlock()

	// Push remote partitions through the per-peer coalescers. The send
	// window may block here — that is the backpressure path — but the
	// frames stream out through the pumps while this executor moves on to
	// the next task. Each peer's coalescer flushes before its mark goes
	// out, so on the FIFO connection every run still precedes its marker.
	for p := 0; p < P; p++ {
		r := runs[p]
		if r == nil || homes[p] == w.id {
			continue
		}
		w.coal[homes[p]].add(m.Task, m.Attempt, p, r, kernelID)
	}
	mark := markMsg{Task: m.Task, Attempt: m.Attempt}.encode()
	for _, j := range livePeers {
		w.coal[j].flush()
		w.peers[j].send(frame{typ: mMark, payload: mark})
	}
	if pd == nil {
		// Single-node cluster (or every peer dead): no barrier to wait on.
		w.led.flushAttempt(stats)
		w.coord.send(frame{typ: mMapDone, payload: mapDoneMsg{Task: m.Task, Attempt: m.Attempt, Stats: stats}.encode()})
	}
}

// runReduce merges one home partition's committed runs and applies the
// reduce kernel (or drains merged pairs for reduce-less apps), reporting
// the partition's output to the coordinator.
func (w *worker) runReduce(rt reduceTaskMsg) {
	_, end := w.tr.span(stageReduce, rt.SpanID)
	w.mu.Lock()
	runs := append([]*kv.Run(nil), w.store.runsFor(rt.Partition)...)
	w.mu.Unlock()

	var recordsIn int64
	iters := make([]kv.Iterator, len(runs))
	for i, r := range runs {
		recordsIn += int64(r.Records)
		iters[i] = r.Iter()
	}
	merged := kv.Merge(iters...)
	var out []kv.Pair
	var groups int64
	if w.app.Reduce != nil {
		emit := func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		}
		gi := kv.NewGroupIter(merged)
		for {
			g, ok := gi.Next()
			if !ok {
				break
			}
			groups++
			w.app.Reduce(g.Key, g.Values, emit)
		}
	} else {
		out = kv.Drain(merged)
	}
	w.led.reduceRecordsIn.Add(recordsIn)
	w.led.reduceGroupsIn.Add(groups)
	w.led.outputPairs.Add(int64(len(out)))
	end()

	w.coord.send(frame{typ: mReduceDone, payload: reduceDoneMsg{
		Partition: rt.Partition, Attempt: rt.Attempt,
		RecordsIn: recordsIn, GroupsIn: groups, Output: kv.Marshal(out),
	}.encode()})
}

// peerReader owns the inbound side of one peer link.
func (w *worker) peerReader(j int, cc *conn) {
	defer w.wg.Done()
	for {
		typ, p, err := cc.recv()
		if err != nil {
			cc.close()
			return
		}
		switch typ {
		case mRunBatch:
			w.onRunBatch(p)
		case mMark:
			w.onMark(cc, p)
		case mAck:
			w.onAck(j, p)
		}
	}
}

// onRunBatch stages every run in one coalesced shuffle frame — or, on a
// killed worker, drains the whole frame as lost so the wire ledger still
// balances. Wire accounting is at frame granularity: the payload byte count
// here mirrors exactly what the sender counted at flush.
//
// Staged runs are kv views aliasing the frame's receive buffer — the
// zero-copy path: readFrame allocates a fresh buffer per frame and nothing
// reuses it, so the views stay valid for the life of the shuffle store. (A
// pooled receive buffer would need Retain before staging.)
func (w *worker) onRunBatch(p []byte) {
	t0 := time.Now()
	var parent uint64
	// The staging span parents on the sender's net/send span id carried in
	// the frame payload — the cross-process edge of the trace (parent stays
	// 0 when decode fails; the span still books the busy time).
	defer func() { w.tr.record(stageNetRecv, t0, time.Now(), parent) }()
	msg, err := decodeRunBatch(p)
	if err != nil {
		return
	}
	parent = msg.SendSpan
	var records int64
	for _, re := range msg.Entries {
		records += int64(re.Records)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		w.led.netLost(records, int64(len(p)))
		return
	}
	w.led.netRecv(records, int64(len(p)))
	for _, re := range msg.Entries {
		run := kv.NewRunView(re.Blob, re.Records, re.RawBytes, false)
		w.store.stage(re.Task, re.Attempt, re.Partition, run)
	}
}

// onMark commits an attempt's staged runs and acks the sender. A killed
// worker neither commits nor acks — the sender's barrier is released by
// the coordinator's death notice instead.
func (w *worker) onMark(cc *conn, p []byte) {
	msg, err := decodeMark(p)
	if err != nil {
		return
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	acc, dup := w.store.commit(msg.Task, msg.Attempt)
	w.led.storeAccepted.Add(acc)
	w.led.storeDupDropped.Add(dup)
	w.mu.Unlock()
	cc.send(frame{typ: mAck, payload: p})
}

// onAck releases one peer from an attempt's commit barrier; the last ack
// flushes the attempt's stats and reports map-done.
func (w *worker) onAck(j int, p []byte) {
	msg, err := decodeMark(p)
	if err != nil {
		return
	}
	k := attemptKey{msg.Task, msg.Attempt}
	var done *pendingDone
	w.mu.Lock()
	if pd := w.ackWait[k]; pd != nil {
		delete(pd.acks, j)
		if len(pd.acks) == 0 {
			delete(w.ackWait, k)
			done = pd
		}
	}
	w.mu.Unlock()
	if done != nil {
		w.led.flushAttempt(done.stats)
		w.coord.send(frame{typ: mMapDone, payload: mapDoneMsg{Task: k.task, Attempt: k.attempt, Stats: done.stats}.encode()})
	}
}

// handleDeath applies a coordinator death notice: mark the peer dead,
// adopt the re-homed partition map, release the dead peer from every
// commit barrier, and seal our link to it (queued frames are accounted
// lost; already-delivered bytes will still be drained by the dying peer).
func (w *worker) handleDeath(m workerDeadMsg) {
	type flushed struct {
		k  attemptKey
		pd *pendingDone
	}
	var done []flushed
	w.mu.Lock()
	if m.Dead >= 0 && m.Dead < w.n {
		w.alive[m.Dead] = false
	}
	if len(m.Homes) == len(w.homes) {
		w.homes = m.Homes
	}
	for k, pd := range w.ackWait {
		if pd.acks[m.Dead] {
			delete(pd.acks, m.Dead)
			if len(pd.acks) == 0 {
				delete(w.ackWait, k)
				done = append(done, flushed{k, pd})
			}
		}
	}
	w.mu.Unlock()
	if m.Dead >= 0 && m.Dead < len(w.peers) && w.peers[m.Dead] != nil {
		w.peers[m.Dead].seal()
		// Runs buffered for the dead peer were never counted sent; discard
		// them so a later flush cannot ship data nobody will commit.
		w.coal[m.Dead].close()
	}
	for _, d := range done {
		w.led.flushAttempt(d.pd.stats)
		w.coord.send(frame{typ: mMapDone, payload: mapDoneMsg{Task: d.k.task, Attempt: d.k.attempt, Stats: d.pd.stats}.encode()})
	}
}

// kill simulates this worker dying mid-job (loopback fault cells): the
// store's committed records are written off as lost, outbound pumps seal
// (queued frames become net-lost), inbound links switch to drain
// accounting, and the coordinator link drops — which is how the
// coordinator finds out.
func (w *worker) kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	lost := w.store.lostAll()
	w.led.storeLost.Add(lost)
	w.ackWait = make(map[attemptKey]*pendingDone)
	w.mu.Unlock()
	for _, pc := range w.peers {
		if pc != nil {
			pc.seal()
		}
	}
	// Seal before closing coalescers: a flush blocked on a full send window
	// holds its coalescer's lock until the sealed conn releases it.
	for _, co := range w.coal {
		if co != nil {
			co.close()
		}
	}
	w.coord.close()
}
